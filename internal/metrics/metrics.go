// Package metrics provides the derived measures the paper reports:
// misses per 1000 instructions (MPKI), miss rates, prefetch speedups,
// and instruction/time-synchronized series built from CB samples.
package metrics

import "fmt"

// MPKI returns events per 1000 instructions.
func MPKI(events, instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(events) * 1000 / float64(instructions)
}

// Rate returns part/whole, or 0 for an empty denominator.
func Rate(part, whole uint64) float64 {
	if whole == 0 {
		return 0
	}
	return float64(part) / float64(whole)
}

// SpeedupPct returns the percentage performance gain of after vs before
// in cycles (lower cycles = faster): (before/after - 1) * 100.
func SpeedupPct(beforeCycles, afterCycles float64) float64 {
	if afterCycles == 0 {
		return 0
	}
	return (beforeCycles/afterCycles - 1) * 100
}

// Point is one (x, y) measurement of a sweep series.
type Point struct {
	X float64
	Y float64
}

// Series is a named sweep curve (one line of a paper figure).
type Series struct {
	Name   string
	Points []Point
}

// Add appends one point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// YAt returns the y value at the given x, or an error if absent.
func (s *Series) YAt(x float64) (float64, error) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, nil
		}
	}
	return 0, fmt.Errorf("metrics: series %q has no point at x=%g", s.Name, x)
}

// Knee returns the smallest x at which y falls to within `ratio` of the
// final (largest-x) value — the working-set knee used to read
// Figures 4-6. The series must be ordered by increasing x. When no
// earlier point crosses the threshold (a still-falling curve, or a
// ratio below 1 that even the final point cannot meet), the knee is the
// final point's x: the sweep never saw the curve flatten before its
// largest configuration. Only an empty series has no knee.
func (s *Series) Knee(ratio float64) (float64, bool) {
	if len(s.Points) == 0 {
		return 0, false
	}
	final := s.Points[len(s.Points)-1].Y
	for _, p := range s.Points {
		if p.Y <= final*ratio {
			return p.X, true
		}
	}
	return s.Points[len(s.Points)-1].X, true
}

// Flatness returns max(y)/min(y) over the series — ~1 for the flat MDS
// curve of Figure 4. A single point is trivially flat (1) even at y=0;
// an empty series has no flatness (0).
func (s *Series) Flatness() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	if len(s.Points) == 1 {
		return 1
	}
	min, max := s.Points[0].Y, s.Points[0].Y
	for _, p := range s.Points[1:] {
		if p.Y < min {
			min = p.Y
		}
		if p.Y > max {
			max = p.Y
		}
	}
	if min == 0 {
		return 0
	}
	return max / min
}
