package metrics

import (
	"testing"
	"testing/quick"
)

func TestMPKI(t *testing.T) {
	if got := MPKI(500, 1_000_000); got != 0.5 {
		t.Errorf("MPKI = %v, want 0.5", got)
	}
	if MPKI(10, 0) != 0 {
		t.Error("zero instructions must give 0")
	}
}

func TestRate(t *testing.T) {
	if got := Rate(1, 4); got != 0.25 {
		t.Errorf("Rate = %v", got)
	}
	if Rate(1, 0) != 0 {
		t.Error("zero denominator must give 0")
	}
}

func TestSpeedupPct(t *testing.T) {
	if got := SpeedupPct(150, 100); got != 50 {
		t.Errorf("SpeedupPct = %v, want 50", got)
	}
	if got := SpeedupPct(100, 100); got != 0 {
		t.Errorf("no-change speedup = %v, want 0", got)
	}
	if SpeedupPct(1, 0) != 0 {
		t.Error("zero after-cycles must give 0")
	}
}

func TestSeriesYAt(t *testing.T) {
	var s Series
	s.Name = "x"
	s.Add(4, 10)
	s.Add(8, 5)
	if y, err := s.YAt(8); err != nil || y != 5 {
		t.Errorf("YAt(8) = %v, %v", y, err)
	}
	if _, err := s.YAt(99); err == nil {
		t.Error("missing x should error")
	}
}

func TestKnee(t *testing.T) {
	var s Series
	for _, p := range []Point{{4, 100}, {8, 90}, {16, 20}, {32, 11}, {64, 10}} {
		s.Points = append(s.Points, p)
	}
	// Knee at 1.2x of final value (12): first x with y <= 12 is 32.
	if k, ok := s.Knee(1.2); !ok || k != 32 {
		t.Errorf("Knee = %v, %v; want 32", k, ok)
	}
	var empty Series
	if _, ok := empty.Knee(1.2); ok {
		t.Error("empty series cannot have a knee")
	}
}

func TestFlatness(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 10)
	if f := s.Flatness(); f != 1 {
		t.Errorf("flat series flatness = %v", f)
	}
	s.Add(3, 20)
	if f := s.Flatness(); f != 2 {
		t.Errorf("flatness = %v, want 2", f)
	}
	var zero Series
	if zero.Flatness() != 0 {
		t.Error("empty series flatness must be 0")
	}
	var withZero Series
	withZero.Add(1, 0)
	withZero.Add(2, 5)
	if withZero.Flatness() != 0 {
		t.Error("zero-valued series flatness must be 0 (undefined ratio)")
	}
}

// Property: MPKI is linear in events.
func TestMPKILinear(t *testing.T) {
	check := func(a, b uint32, inst uint32) bool {
		if inst == 0 {
			return true
		}
		lhs := MPKI(uint64(a), uint64(inst)) + MPKI(uint64(b), uint64(inst))
		rhs := MPKI(uint64(a)+uint64(b), uint64(inst))
		diff := lhs - rhs
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-6*(1+rhs)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
