package metrics

import (
	"testing"
	"testing/quick"
)

func TestMPKI(t *testing.T) {
	if got := MPKI(500, 1_000_000); got != 0.5 {
		t.Errorf("MPKI = %v, want 0.5", got)
	}
	if MPKI(10, 0) != 0 {
		t.Error("zero instructions must give 0")
	}
}

func TestRate(t *testing.T) {
	if got := Rate(1, 4); got != 0.25 {
		t.Errorf("Rate = %v", got)
	}
	if Rate(1, 0) != 0 {
		t.Error("zero denominator must give 0")
	}
}

func TestSpeedupPct(t *testing.T) {
	if got := SpeedupPct(150, 100); got != 50 {
		t.Errorf("SpeedupPct = %v, want 50", got)
	}
	if got := SpeedupPct(100, 100); got != 0 {
		t.Errorf("no-change speedup = %v, want 0", got)
	}
	if SpeedupPct(1, 0) != 0 {
		t.Error("zero after-cycles must give 0")
	}
}

func TestSeriesYAt(t *testing.T) {
	var s Series
	s.Name = "x"
	s.Add(4, 10)
	s.Add(8, 5)
	if y, err := s.YAt(8); err != nil || y != 5 {
		t.Errorf("YAt(8) = %v, %v", y, err)
	}
	if _, err := s.YAt(99); err == nil {
		t.Error("missing x should error")
	}
}

func TestKnee(t *testing.T) {
	var s Series
	for _, p := range []Point{{4, 100}, {8, 90}, {16, 20}, {32, 11}, {64, 10}} {
		s.Points = append(s.Points, p)
	}
	// Knee at 1.2x of final value (12): first x with y <= 12 is 32.
	if k, ok := s.Knee(1.2); !ok || k != 32 {
		t.Errorf("Knee = %v, %v; want 32", k, ok)
	}
	var empty Series
	if _, ok := empty.Knee(1.2); ok {
		t.Error("empty series cannot have a knee")
	}
}

// TestKneeEdgeCases pins the boundary behavior: when no earlier point
// crosses the threshold the knee is the final point's x, never a silent
// (0, false).
func TestKneeEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		points []Point
		ratio  float64
		wantX  float64
		wantOK bool
	}{
		{name: "empty", points: nil, ratio: 1.2, wantX: 0, wantOK: false},
		{name: "single point", points: []Point{{4, 10}}, ratio: 1.2, wantX: 4, wantOK: true},
		{name: "single zero point", points: []Point{{4, 0}}, ratio: 1.2, wantX: 4, wantOK: true},
		// Still falling at the end of the sweep: nothing is within 1.0x
		// of the final value before the final point itself.
		{name: "no early crossing", points: []Point{{4, 100}, {8, 50}, {16, 25}}, ratio: 1.0, wantX: 16, wantOK: true},
		// ratio < 1 demands y strictly below the final value; even the
		// final point fails, so the knee clamps to the last x.
		{name: "sub-unit ratio", points: []Point{{4, 100}, {8, 50}}, ratio: 0.5, wantX: 8, wantOK: true},
		// Non-monotonic y: a dip below the threshold counts even if the
		// curve rises afterwards (the scan wants the smallest such x).
		{name: "non-monotonic dip", points: []Point{{4, 100}, {8, 5}, {16, 60}, {32, 10}}, ratio: 1.0, wantX: 8, wantOK: true},
		// Final value larger than everything before it: the first point
		// already qualifies.
		{name: "rising curve", points: []Point{{4, 10}, {8, 20}, {16, 40}}, ratio: 1.0, wantX: 4, wantOK: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Series{Name: tc.name, Points: tc.points}
			x, ok := s.Knee(tc.ratio)
			if x != tc.wantX || ok != tc.wantOK {
				t.Errorf("Knee(%v) = (%v, %v), want (%v, %v)", tc.ratio, x, ok, tc.wantX, tc.wantOK)
			}
		})
	}
}

// TestFlatnessEdgeCases covers the degenerate series shapes.
func TestFlatnessEdgeCases(t *testing.T) {
	cases := []struct {
		name   string
		points []Point
		want   float64
	}{
		{name: "empty", points: nil, want: 0},
		{name: "single point", points: []Point{{4, 10}}, want: 1},
		{name: "single zero point", points: []Point{{4, 0}}, want: 1},
		{name: "non-monotonic", points: []Point{{4, 10}, {8, 40}, {16, 20}}, want: 4},
		{name: "zero min", points: []Point{{4, 0}, {8, 10}}, want: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Series{Name: tc.name, Points: tc.points}
			if got := s.Flatness(); got != tc.want {
				t.Errorf("Flatness() = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestFlatness(t *testing.T) {
	var s Series
	s.Add(1, 10)
	s.Add(2, 10)
	if f := s.Flatness(); f != 1 {
		t.Errorf("flat series flatness = %v", f)
	}
	s.Add(3, 20)
	if f := s.Flatness(); f != 2 {
		t.Errorf("flatness = %v, want 2", f)
	}
	var zero Series
	if zero.Flatness() != 0 {
		t.Error("empty series flatness must be 0")
	}
	var withZero Series
	withZero.Add(1, 0)
	withZero.Add(2, 5)
	if withZero.Flatness() != 0 {
		t.Error("zero-valued series flatness must be 0 (undefined ratio)")
	}
}

// Property: MPKI is linear in events.
func TestMPKILinear(t *testing.T) {
	check := func(a, b uint32, inst uint32) bool {
		if inst == 0 {
			return true
		}
		lhs := MPKI(uint64(a), uint64(inst)) + MPKI(uint64(b), uint64(inst))
		rhs := MPKI(uint64(a)+uint64(b), uint64(inst))
		diff := lhs - rhs
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-6*(1+rhs)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
