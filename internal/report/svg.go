// SVG rendering: publication-style line charts for the paper's figures,
// generated with nothing but string building (the stdlib has no plotting
// package, but SVG is just XML).

package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"cmpmem/internal/metrics"
)

// svgPalette holds distinguishable series colors (8 workloads).
var svgPalette = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728",
	"#9467bd", "#8c564b", "#e377c2", "#17becf",
}

// SVGOptions tune the chart.
type SVGOptions struct {
	Title  string
	XLabel string
	YLabel string
	// LogX spaces the x axis logarithmically (cache-size sweeps are
	// powers of two).
	LogX bool
	// Width and Height are the canvas size in pixels (defaults 720x440).
	Width, Height int
}

// SVG renders the series as a line chart. All series must be non-empty;
// they may have different x values.
func SVG(w io.Writer, opt SVGOptions, series []metrics.Series) error {
	if opt.Width == 0 {
		opt.Width = 720
	}
	if opt.Height == 0 {
		opt.Height = 440
	}
	const marginL, marginR, marginT, marginB = 70, 150, 40, 50
	plotW := float64(opt.Width - marginL - marginR)
	plotH := float64(opt.Height - marginT - marginB)

	// Data ranges.
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymax := 0.0
	for _, s := range series {
		for _, p := range s.Points {
			xmin = math.Min(xmin, p.X)
			xmax = math.Max(xmax, p.X)
			ymax = math.Max(ymax, p.Y)
		}
	}
	if len(series) == 0 || math.IsInf(xmin, 1) {
		_, err := fmt.Fprint(w, `<svg xmlns="http://www.w3.org/2000/svg"/>`)
		return err
	}
	if ymax == 0 {
		ymax = 1
	}
	ymax *= 1.05

	xpos := func(x float64) float64 {
		if xmax == xmin {
			return float64(marginL) + plotW/2
		}
		if opt.LogX && xmin > 0 {
			return float64(marginL) + plotW*(math.Log2(x)-math.Log2(xmin))/(math.Log2(xmax)-math.Log2(xmin))
		}
		return float64(marginL) + plotW*(x-xmin)/(xmax-xmin)
	}
	ypos := func(y float64) float64 {
		return float64(marginT) + plotH*(1-y/ymax)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`,
		opt.Width, opt.Height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="16" font-weight="bold">%s</text>`,
		marginL, xmlEscape(opt.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, marginT, marginL, opt.Height-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`,
		marginL, opt.Height-marginB, opt.Width-marginR, opt.Height-marginB)
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`,
		marginL+int(plotW/2), opt.Height-12, xmlEscape(opt.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" font-size="12" transform="rotate(-90 16 %d)" text-anchor="middle">%s</text>`,
		marginT+int(plotH/2), marginT+int(plotH/2), xmlEscape(opt.YLabel))

	// Y grid: 5 ticks.
	for i := 0; i <= 5; i++ {
		y := ymax * float64(i) / 5
		py := ypos(y)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`,
			marginL, py, opt.Width-marginR, py)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">%s</text>`,
			marginL-6, py+3, trimFloat(y))
	}
	// X ticks at the first series' points.
	for _, p := range series[0].Points {
		px := xpos(p.X)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`,
			px, opt.Height-marginB, px, opt.Height-marginB+4)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>`,
			px, opt.Height-marginB+16, trimNum(p.X))
	}

	// Series.
	for si, s := range series {
		color := svgPalette[si%len(svgPalette)]
		var path strings.Builder
		for i, p := range s.Points {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, xpos(p.X), ypos(p.Y))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.8"/>`,
			strings.TrimSpace(path.String()), color)
		for _, p := range s.Points {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.6" fill="%s"/>`,
				xpos(p.X), ypos(p.Y), color)
		}
		// Legend entry.
		ly := marginT + 14 + si*18
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`,
			opt.Width-marginR+10, ly, opt.Width-marginR+34, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`,
			opt.Width-marginR+40, ly+4, xmlEscape(s.Name))
	}
	b.WriteString(`</svg>`)
	_, err := io.WriteString(w, b.String())
	return err
}

// trimFloat renders an axis value compactly.
func trimFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// xmlEscape escapes text content for SVG.
func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
