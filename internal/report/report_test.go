package report

import (
	"strings"
	"testing"

	"cmpmem/internal/metrics"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Headers: []string{"a", "bbbb"},
	}
	tab.AddRow("xxxxxx", "1")
	tab.AddRow("y", "22")
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"T", "a", "bbbb", "xxxxxx", "22", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + rule + 2 rows.
	if len(lines) != 5 {
		t.Errorf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
}

func twoSeries() []metrics.Series {
	a := metrics.Series{Name: "A"}
	a.Add(4, 1.5)
	a.Add(8, 1.0)
	b := metrics.Series{Name: "B"}
	b.Add(4, 3)
	b.Add(8, 2)
	return []metrics.Series{a, b}
}

func TestCSV(t *testing.T) {
	var sb strings.Builder
	if err := CSV(&sb, "size", twoSeries()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "size,A,B" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	if !strings.HasPrefix(lines[1], "4,1.5") {
		t.Errorf("row 1 = %q", lines[1])
	}
}

func TestCSVEmpty(t *testing.T) {
	var sb strings.Builder
	if err := CSV(&sb, "x", nil); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Error("empty series should emit nothing")
	}
}

func TestPlot(t *testing.T) {
	var sb strings.Builder
	if err := Plot(&sb, "title", "xlab", "ylab", twoSeries(), 8); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"title", "ylab", "xlab", "legend:", "o=A", "x=B"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// Marks present.
	if !strings.Contains(out, "o") || !strings.Contains(out, "x") {
		t.Error("plot missing data marks")
	}
}

func TestPlotEmpty(t *testing.T) {
	var sb strings.Builder
	if err := Plot(&sb, "t", "x", "y", nil, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty plot should say so")
	}
}

func TestTrimNum(t *testing.T) {
	cases := map[float64]string{
		64:      "64",
		1024:    "1KB",
		4 << 20: "4MB",
		12345:   "12345",
		2 << 20: "2MB",
		1536:    "1536", // not a whole KB multiple... (1.5KB) stays raw
	}
	for in, want := range cases {
		if got := trimNum(in); got != want {
			t.Errorf("trimNum(%g) = %q, want %q", in, got, want)
		}
	}
}
