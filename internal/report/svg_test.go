package report

import (
	"encoding/xml"
	"strings"
	"testing"

	"cmpmem/internal/metrics"
)

func TestSVGWellFormed(t *testing.T) {
	var sb strings.Builder
	err := SVG(&sb, SVGOptions{
		Title: "Figure 4 <test> & more", XLabel: "cache", YLabel: "MPKI", LogX: true,
	}, twoSeries())
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// The output must be well-formed XML (escaping included).
	dec := xml.NewDecoder(strings.NewReader(out))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("malformed SVG: %v", err)
		}
	}
	for _, want := range []string{"<svg", "Figure 4 &lt;test&gt; &amp; more", "MPKI", "path", "circle", "A", "B"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestSVGEmptySeries(t *testing.T) {
	var sb strings.Builder
	if err := SVG(&sb, SVGOptions{Title: "empty"}, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<svg") {
		t.Error("empty chart must still be an svg element")
	}
}

func TestSVGAllZeroY(t *testing.T) {
	s := metrics.Series{Name: "z"}
	s.Add(1, 0)
	s.Add(2, 0)
	var sb strings.Builder
	if err := SVG(&sb, SVGOptions{}, []metrics.Series{s}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "NaN") || strings.Contains(sb.String(), "Inf") {
		t.Error("zero-valued series produced NaN/Inf coordinates")
	}
}

func TestSVGSinglePoint(t *testing.T) {
	s := metrics.Series{Name: "one"}
	s.Add(64, 3)
	var sb strings.Builder
	if err := SVG(&sb, SVGOptions{LogX: true}, []metrics.Series{s}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "NaN") {
		t.Error("single-point series produced NaN coordinates")
	}
}
