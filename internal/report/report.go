// Package report renders the experiment outputs as aligned text tables,
// CSV, and ASCII line plots, so `cosim` can print every table and figure
// the paper reports.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"cmpmem/internal/metrics"
)

// Table is a simple aligned-column text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; cells are formatted by the caller.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes series as comma-separated values: one column of x values
// followed by one column per series. All series must share x values.
func CSV(w io.Writer, xLabel string, series []metrics.Series) error {
	if len(series) == 0 {
		return nil
	}
	var b strings.Builder
	b.WriteString(xLabel)
	for _, s := range series {
		b.WriteByte(',')
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	for i, p := range series[0].Points {
		fmt.Fprintf(&b, "%g", p.X)
		for _, s := range series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, ",%.4f", s.Points[i].Y)
			} else {
				b.WriteByte(',')
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Plot renders series as an ASCII chart: x positions are the sweep
// points (log-spaced sweeps render evenly), y is linear.
func Plot(w io.Writer, title, xLabel, yLabel string, series []metrics.Series, height int) error {
	if height <= 0 {
		height = 16
	}
	if len(series) == 0 || len(series[0].Points) == 0 {
		_, err := fmt.Fprintf(w, "%s: (no data)\n", title)
		return err
	}
	nx := len(series[0].Points)
	colW := 9
	var ymax float64
	for _, s := range series {
		for _, p := range s.Points {
			if p.Y > ymax {
				ymax = p.Y
			}
		}
	}
	if ymax == 0 {
		ymax = 1
	}
	marks := "ox+*#@%&"
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", nx*colW))
	}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i, p := range s.Points {
			row := int(math.Round(float64(height-1) * (1 - p.Y/ymax)))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			col := i*colW + colW/2
			grid[row][col] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s (max %.2f)\n", title, yLabel, ymax)
	for _, row := range grid {
		fmt.Fprintf(&b, "|%s\n", string(row))
	}
	b.WriteString("+" + strings.Repeat("-", nx*colW) + "\n ")
	for _, p := range series[0].Points {
		cell := fmt.Sprintf("%-*s", colW, trimNum(p.X))
		b.WriteString(cell)
	}
	fmt.Fprintf(&b, " %s\nlegend:", xLabel)
	for si, s := range series {
		fmt.Fprintf(&b, " %c=%s", marks[si%len(marks)], s.Name)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// trimNum renders sweep x values compactly (sizes as MB when large).
func trimNum(x float64) string {
	switch {
	case x >= 1<<20 && math.Mod(x, 1<<20) == 0:
		return fmt.Sprintf("%gMB", x/(1<<20))
	case x >= 1<<10 && math.Mod(x, 1<<10) == 0:
		return fmt.Sprintf("%gKB", x/(1<<10))
	default:
		return fmt.Sprintf("%g", x)
	}
}
