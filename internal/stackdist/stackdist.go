// Package stackdist implements single-pass Mattson stack-distance (LRU
// reuse-distance) analysis. One pass over a trace yields the miss count
// of a fully-associative LRU cache of *every* capacity simultaneously,
// which makes cache-size sweeps (Figures 4-6 of the paper) cheap and
// provides an independent oracle for property-testing the direct cache
// simulator: a fully-associative cache of N lines must miss exactly
// hist[>=N] + cold times.
//
// Algorithm: classic Bentley/Olken counting. For each line we remember
// the time of its previous access; a Fenwick tree over time positions
// holds a 1 at the *most recent* access time of every distinct line, so
// the number of 1s after the previous access time is exactly the LRU
// stack depth of the line being re-referenced. The tree is compacted
// whenever the live fraction of slots drops below 1/2, keeping memory
// proportional to the number of distinct lines rather than trace length.
package stackdist

import (
	"math"
	"sort"

	"cmpmem/internal/mem"
)

// Infinite is the distance reported for a cold (first-ever) reference.
const Infinite = math.MaxUint32

// Analyzer accumulates reuse distances, line-granular.
type Analyzer struct {
	lineShift uint
	lastTime  map[uint64]int32 // line number -> slot of its latest access
	bit       []int32          // Fenwick tree over slots, 1-based
	slots     int32            // slots handed out so far
	live      int32            // slots currently holding a 1

	// hist[d] counts references with stack distance exactly d, for
	// d < len(hist); deeper ones fall into overflow.
	hist     []uint64
	overflow uint64
	cold     uint64
	total    uint64
}

// New returns an Analyzer for the given line size (power of two) that
// keeps an exact histogram up to maxLines distinct lines of depth.
func New(lineSize uint64, maxLines int) *Analyzer {
	a := &Analyzer{
		lastTime: make(map[uint64]int32),
		bit:      make([]int32, 1),
		hist:     make([]uint64, maxLines),
	}
	for s := lineSize; s > 1; s >>= 1 {
		a.lineShift++
	}
	return a
}

// bitAdd adds delta at slot i (1-based).
func (a *Analyzer) bitAdd(i, delta int32) {
	for ; int(i) < len(a.bit); i += i & (-i) {
		a.bit[i] += delta
	}
}

// bitSum returns the prefix sum over slots [1,i].
func (a *Analyzer) bitSum(i int32) int32 {
	var s int32
	for ; i > 0; i -= i & (-i) {
		s += a.bit[i]
	}
	return s
}

// newSlot appends a slot holding 1 and returns its index. A Fenwick
// tree cannot be grown by zero-extension (new covering nodes would miss
// prior contributions), so growth triggers a compacting rebuild.
func (a *Analyzer) newSlot() int32 {
	if int(a.slots)+1 >= len(a.bit) {
		a.compact()
	}
	a.slots++
	a.bitAdd(a.slots, 1)
	a.live++
	return a.slots
}

// compact rebuilds the tree keeping only live slots, preserving order,
// with room for at least as many again.
func (a *Analyzer) compact() {
	type pair struct {
		line uint64
		slot int32
	}
	pairs := make([]pair, 0, len(a.lastTime))
	for ln, s := range a.lastTime {
		pairs = append(pairs, pair{ln, s})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].slot < pairs[j].slot })
	a.bit = make([]int32, 2*len(pairs)+64)
	a.slots = 0
	a.live = 0
	for _, p := range pairs {
		a.slots++
		a.bitAdd(a.slots, 1)
		a.live++
		a.lastTime[p.line] = a.slots
	}
}

// Record processes one reference to addr and returns its stack distance
// (Infinite for cold references).
func (a *Analyzer) Record(addr mem.Addr) uint32 {
	a.total++
	ln := uint64(addr) >> a.lineShift
	prev, seen := a.lastTime[ln]
	var dist uint32
	if !seen {
		a.cold++
		dist = Infinite
	} else {
		// Stack depth = number of distinct lines accessed after prev.
		d := a.bitSum(a.slots) - a.bitSum(prev)
		dist = uint32(d)
		a.bitAdd(prev, -1)
		a.live--
		// Drop the stale mapping before newSlot: a compaction inside
		// newSlot rebuilds from lastTime and must not resurrect the
		// slot we just retired.
		delete(a.lastTime, ln)
		if int(dist) < len(a.hist) {
			a.hist[dist]++
		} else {
			a.overflow++
		}
	}
	a.lastTime[ln] = a.newSlot()
	if a.slots > 64 && a.live*2 < a.slots {
		a.compact()
	}
	return dist
}

// Total returns the number of references recorded.
func (a *Analyzer) Total() uint64 { return a.total }

// Cold returns the number of cold (first-touch) references.
func (a *Analyzer) Cold() uint64 { return a.cold }

// DistinctLines returns the number of distinct lines touched.
func (a *Analyzer) DistinctLines() int { return len(a.lastTime) }

// MissesForLines returns the miss count of a fully-associative LRU cache
// holding the given number of lines: cold misses plus every reference
// whose stack distance is >= lines.
func (a *Analyzer) MissesForLines(lines int) uint64 {
	misses := a.cold + a.overflow
	if lines < 0 {
		lines = 0
	}
	hi := len(a.hist)
	if lines < hi {
		for d := lines; d < hi; d++ {
			misses += a.hist[d]
		}
	}
	return misses
}

// MissCurve evaluates MissesForLines at each capacity (in lines),
// returning one miss count per entry.
func (a *Analyzer) MissCurve(capacities []int) []uint64 {
	out := make([]uint64, len(capacities))
	for i, c := range capacities {
		out[i] = a.MissesForLines(c)
	}
	return out
}

// Histogram returns a copy of the exact distance histogram and the
// overflow (too-deep) count.
func (a *Analyzer) Histogram() (hist []uint64, overflow uint64) {
	h := make([]uint64, len(a.hist))
	copy(h, a.hist)
	return h, a.overflow
}

// FinalDepths calls fn once per tracked line with the line's final LRU
// stack depth (0 = most recently used, 1 = next, ...). A line's final
// depth decides its end-of-trace residency in an LRU cache of any
// capacity: it is resident in a cache of A lines iff depth < A.
// Iteration order is unspecified. The analyzer is not mutated.
func (a *Analyzer) FinalDepths(fn func(line uint64, depth int)) {
	total := a.bitSum(a.slots)
	for ln, slot := range a.lastTime {
		fn(ln, int(total-a.bitSum(slot)))
	}
}

// WorkingSetLines returns the smallest capacity (in lines) at which the
// miss ratio falls below the given threshold, or -1 if even the full
// histogram depth does not achieve it. This operationalizes the paper's
// notion of a "working-set size": the knee of the miss curve.
func (a *Analyzer) WorkingSetLines(threshold float64) int {
	if a.total == 0 {
		return -1
	}
	// Binary search over capacities: miss count is non-increasing.
	lo, hi := 0, len(a.hist)
	if float64(a.MissesForLines(hi))/float64(a.total) > threshold {
		return -1
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if float64(a.MissesForLines(mid))/float64(a.total) <= threshold {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
