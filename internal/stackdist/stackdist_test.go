package stackdist

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cmpmem/internal/cache"
	"cmpmem/internal/mem"
)

func TestColdAndRepeat(t *testing.T) {
	a := New(64, 1024)
	if d := a.Record(0x1000); d != Infinite {
		t.Errorf("first touch distance = %d, want Infinite", d)
	}
	if d := a.Record(0x1000); d != 0 {
		t.Errorf("immediate re-reference distance = %d, want 0", d)
	}
	if d := a.Record(0x1010); d != 0 {
		t.Errorf("same-line offset distance = %d, want 0", d)
	}
	a.Record(0x2000)
	if d := a.Record(0x1000); d != 1 {
		t.Errorf("distance after one intervening line = %d, want 1", d)
	}
}

func TestDistinctLinesAndCold(t *testing.T) {
	a := New(64, 128)
	for i := 0; i < 10; i++ {
		a.Record(mem.Addr(i * 64))
	}
	if a.DistinctLines() != 10 || a.Cold() != 10 {
		t.Errorf("distinct=%d cold=%d, want 10/10", a.DistinctLines(), a.Cold())
	}
	if a.Total() != 10 {
		t.Errorf("total=%d, want 10", a.Total())
	}
}

// TestOracleAgainstFullyAssociativeCache: the central property — for any
// trace and any capacity, MissesForLines(N) equals the misses of a
// direct-simulated fully-associative LRU cache of N lines.
func TestOracleAgainstFullyAssociativeCache(t *testing.T) {
	check := func(seed int64, spread uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nLines := int(spread)%60 + 4
		an := New(64, 4096)
		caches := map[int]*cache.Cache{}
		for _, n := range []int{1, 2, 4, 8, 16, 32} {
			c, err := cache.New(cache.Config{Name: "fa", Size: uint64(n) * 64, LineSize: 64, Assoc: 0})
			if err != nil {
				return false
			}
			caches[n] = c
		}
		for i := 0; i < 2000; i++ {
			addr := mem.Addr(rng.Intn(nLines) * 64)
			an.Record(addr)
			for _, c := range caches {
				c.Access(addr, 8, mem.Load, 0)
			}
		}
		for n, c := range caches {
			if an.MissesForLines(n) != c.Stats().Misses {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestCompaction: long traces with shifting working sets force tree
// growth and compaction; the oracle must stay exact throughout.
func TestCompactionCorrectness(t *testing.T) {
	an := New(64, 1<<16)
	c, _ := cache.New(cache.Config{Name: "fa", Size: 128 * 64, LineSize: 64, Assoc: 0})
	rng := rand.New(rand.NewSource(7))
	base := 0
	for phase := 0; phase < 20; phase++ {
		base += 1000 // shift the working set to churn dead slots
		for i := 0; i < 3000; i++ {
			addr := mem.Addr((base + rng.Intn(500)) * 64)
			an.Record(addr)
			c.Access(addr, 8, mem.Load, 0)
		}
	}
	if got, want := an.MissesForLines(128), c.Stats().Misses; got != want {
		t.Errorf("after compactions: oracle %d, cache %d", got, want)
	}
}

// TestMissCurveMonotone: more capacity never means more misses.
func TestMissCurveMonotone(t *testing.T) {
	an := New(64, 4096)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		an.Record(mem.Addr(rng.Intn(3000) * 64))
	}
	caps := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	curve := an.MissCurve(caps)
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1] {
			t.Errorf("miss curve not monotone at %d lines: %d > %d", caps[i], curve[i], curve[i-1])
		}
	}
	if curve[0] != an.Total() {
		// Capacity 1: every reference to a different line misses; with
		// random addresses over 3000 lines, hits at distance 0 are rare
		// but possible — only assert it is bounded by total.
		if curve[0] > an.Total() {
			t.Errorf("misses at capacity 1 exceed total")
		}
	}
}

func TestHistogramAccounting(t *testing.T) {
	an := New(64, 8)
	// Distance pattern: touch 4 lines then re-touch the first (depth 3).
	for i := 0; i < 4; i++ {
		an.Record(mem.Addr(i * 64))
	}
	an.Record(0)
	hist, overflow := an.Histogram()
	if hist[3] != 1 {
		t.Errorf("hist[3] = %d, want 1", hist[3])
	}
	if overflow != 0 {
		t.Errorf("overflow = %d, want 0", overflow)
	}
}

func TestOverflowBucket(t *testing.T) {
	an := New(64, 4) // histogram depth 4
	for i := 0; i < 10; i++ {
		an.Record(mem.Addr(i * 64))
	}
	an.Record(0) // depth 9 -> overflow
	_, overflow := an.Histogram()
	if overflow != 1 {
		t.Errorf("overflow = %d, want 1", overflow)
	}
	// Deep references count as misses for any in-histogram capacity.
	if an.MissesForLines(4) != 11 {
		t.Errorf("MissesForLines(4) = %d, want 11 (10 cold + 1 deep)", an.MissesForLines(4))
	}
}

func TestWorkingSetLines(t *testing.T) {
	an := New(64, 1024)
	// Cyclic scan over 100 lines, many passes: knee at exactly 100.
	for rep := 0; rep < 50; rep++ {
		for i := 0; i < 100; i++ {
			an.Record(mem.Addr(i * 64))
		}
	}
	ws := an.WorkingSetLines(0.02)
	if ws != 100 {
		t.Errorf("working set = %d lines, want 100", ws)
	}
	if got := an.WorkingSetLines(-1); got != -1 {
		t.Errorf("impossible threshold returned %d, want -1", got)
	}
}

func TestMissesForNegativeLines(t *testing.T) {
	an := New(64, 16)
	an.Record(0)
	if an.MissesForLines(-5) != an.MissesForLines(0) {
		t.Error("negative capacity should clamp to 0")
	}
}

func BenchmarkRecord(b *testing.B) {
	an := New(64, 1<<16)
	rng := rand.New(rand.NewSource(1))
	addrs := make([]mem.Addr, 1<<16)
	for i := range addrs {
		addrs[i] = mem.Addr(rng.Intn(1<<14) * 64)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		an.Record(addrs[i&(1<<16-1)])
	}
}
