// Stream digest: an order-sensitive fingerprint of bus traffic.
//
// Every delivery guarantee the pipeline makes — serial == batched,
// live == replay, no event lost or reordered per snooper — collapses to
// one checkable claim: two deliveries of the same run produce the same
// digest. The digest is FNV-1a over each event's fields in delivery
// order, so a single dropped, duplicated, mutated, or reordered event
// changes it with overwhelming probability. internal/verify attaches
// digests beside the emulators to turn "bit-identical by construction"
// into a measured property.

package fsb

import "cmpmem/internal/trace"

// fnv64 constants (FNV-1a).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// StreamDigest fingerprints the event stream it snoops. It implements
// Snooper; attach it to a live bus or a replay alongside the emulators.
// Read Sum only after the bus has closed (batched delivery runs the
// digest on a worker goroutine until then).
type StreamDigest struct {
	sum    uint64
	events uint64
}

// NewStreamDigest returns a digest in its initial state.
func NewStreamDigest() *StreamDigest {
	return &StreamDigest{sum: fnvOffset}
}

// mix folds one 64-bit word into the digest byte by byte.
func (d *StreamDigest) mix(v uint64) {
	s := d.sum
	for i := 0; i < 8; i++ {
		s ^= v & 0xFF
		s *= fnvPrime
		v >>= 8
	}
	d.sum = s
}

// OnRef implements Snooper.
func (d *StreamDigest) OnRef(r trace.Ref) {
	d.events++
	d.mix(uint64(r.Addr))
	d.mix(uint64(r.Core)<<16 | uint64(r.Size)<<8 | uint64(r.Kind))
}

// OnMsg implements Snooper. Messages are domain-separated from refs so
// a message can never alias a memory transaction in the digest.
func (d *StreamDigest) OnMsg(m Message) {
	d.events++
	d.mix(^uint64(0))
	d.mix(uint64(m.Kind)<<48 | uint64(m.Core)<<40 | m.Value)
}

// Sum returns the digest over everything observed so far.
func (d *StreamDigest) Sum() uint64 { return d.sum }

// Events returns the number of events observed (refs plus messages).
func (d *StreamDigest) Events() uint64 { return d.events }
