package fsb

import (
	"strings"
	"sync/atomic"
	"testing"

	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
)

// finalizingSnooper records events plus the Finalize/AttachAsync calls.
type finalizingSnooper struct {
	recordingSnooper
	asyncAttached bool
	finalized     bool
}

func (s *finalizingSnooper) AttachAsync() { s.asyncAttached = true }
func (s *finalizingSnooper) Finalize()    { s.finalized = true }

// TestBatchedBusOrderIdentical: every snooper on a batched bus must see
// the exact event sequence a synchronous bus delivers, regardless of
// batch size (including partial final batches).
func TestBatchedBusOrderIdentical(t *testing.T) {
	const n = 10_000
	feed := func(b *Bus) {
		for i := 0; i < n; i++ {
			if i%97 == 0 {
				b.Msg(Message{Kind: MsgCoreID, Core: uint8(i % 32)})
			}
			b.Ref(trace.Ref{Addr: mem.Addr(i * 64), Core: uint8(i % 8), Size: 8, Kind: mem.Load})
		}
	}

	serial := NewBus()
	var want recordingSnooper
	serial.Attach(&want)
	feed(serial)
	if err := serial.Close(); err != nil {
		t.Fatal(err)
	}

	for _, batch := range []int{1, 7, 64, DefaultBatch, 3 * n} {
		bus := NewBatchedBus(batch)
		var a, b recordingSnooper
		bus.Attach(&a)
		bus.Attach(&b)
		feed(bus)
		if err := bus.Close(); err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		for name, got := range map[string]*recordingSnooper{"a": &a, "b": &b} {
			if len(got.refs) != len(want.refs) || len(got.msgs) != len(want.msgs) {
				t.Fatalf("batch=%d %s: %d refs %d msgs, want %d refs %d msgs",
					batch, name, len(got.refs), len(got.msgs), len(want.refs), len(want.msgs))
			}
			for i := range want.refs {
				if got.refs[i] != want.refs[i] {
					t.Fatalf("batch=%d %s: ref %d = %+v, want %+v", batch, name, i, got.refs[i], want.refs[i])
				}
			}
			for i := range want.msgs {
				if got.msgs[i] != want.msgs[i] {
					t.Fatalf("batch=%d %s: msg %d = %+v, want %+v", batch, name, i, got.msgs[i], want.msgs[i])
				}
			}
		}
		if bus.Events() != serial.Events() || bus.Messages() != serial.Messages() {
			t.Errorf("batch=%d: counters %d/%d, want %d/%d",
				batch, bus.Events(), bus.Messages(), serial.Events(), serial.Messages())
		}
	}
}

// countingSnooper atomically counts deliveries (safe to read mid-run).
type countingSnooper struct {
	refs atomic.Uint64
	msgs atomic.Uint64
}

func (s *countingSnooper) OnRef(trace.Ref) { s.refs.Add(1) }
func (s *countingSnooper) OnMsg(Message)   { s.msgs.Add(1) }

// TestBatchedBusFlushOnClose: events still sitting in a partial batch at
// Close time must reach every snooper before Close returns.
func TestBatchedBusFlushOnClose(t *testing.T) {
	bus := NewBatchedBus(1 << 20) // batch never fills on its own
	var s countingSnooper
	bus.Attach(&s)
	for i := 0; i < 1000; i++ {
		bus.Ref(trace.Ref{Addr: mem.Addr(i), Size: 8})
	}
	bus.Msg(Message{Kind: MsgStop})
	if err := bus.Close(); err != nil {
		t.Fatal(err)
	}
	if s.refs.Load() != 1000 || s.msgs.Load() != 1 {
		t.Fatalf("after Close: %d refs %d msgs, want 1000 and 1", s.refs.Load(), s.msgs.Load())
	}
}

// TestBatchedBusLifecycleHooks: AttachAsync fires at attach, Finalize at
// Close; a synchronous bus finalizes but never attaches async.
func TestBatchedBusLifecycleHooks(t *testing.T) {
	bus := NewBatchedBus(8)
	var s finalizingSnooper
	bus.Attach(&s)
	if !s.asyncAttached {
		t.Error("AttachAsync not called on batched attach")
	}
	if s.finalized {
		t.Error("finalized before Close")
	}
	bus.Ref(trace.Ref{Addr: 64, Size: 8})
	if err := bus.Close(); err != nil {
		t.Fatal(err)
	}
	if !s.finalized {
		t.Error("Finalize not called by Close")
	}

	sync := NewBus()
	var s2 finalizingSnooper
	sync.Attach(&s2)
	if s2.asyncAttached {
		t.Error("AttachAsync called on synchronous bus")
	}
	if err := sync.Close(); err != nil {
		t.Fatal(err)
	}
	if !s2.finalized {
		t.Error("synchronous Close must still finalize")
	}
}

// panickingSnooper blows up on the nth ref.
type panickingSnooper struct {
	n     int
	seen  int
	after atomic.Uint64 // refs delivered after the panic (must stay 0)
}

func (s *panickingSnooper) OnRef(trace.Ref) {
	s.seen++
	if s.seen == s.n {
		panic("emulator fault")
	}
	if s.seen > s.n {
		s.after.Add(1)
	}
}
func (s *panickingSnooper) OnMsg(Message) {}

// TestBatchedBusPanicPropagation: a panicking snooper must not deadlock
// the producer; its panic surfaces as an error from Close, the poisoned
// worker stops delivering, and healthy snoopers still get everything.
func TestBatchedBusPanicPropagation(t *testing.T) {
	bus := NewBatchedBus(16)
	bad := &panickingSnooper{n: 100}
	var good countingSnooper
	bus.Attach(bad)
	bus.Attach(&good)
	for i := 0; i < 5000; i++ {
		bus.Ref(trace.Ref{Addr: mem.Addr(i * 64), Size: 8})
	}
	err := bus.Close()
	if err == nil {
		t.Fatal("snooper panic not propagated from Close")
	}
	if !strings.Contains(err.Error(), "emulator fault") {
		t.Errorf("panic cause lost: %v", err)
	}
	if got := good.refs.Load(); got != 5000 {
		t.Errorf("healthy snooper got %d refs, want 5000", got)
	}
	if bad.after.Load() != 0 {
		t.Errorf("poisoned worker delivered %d refs after panic", bad.after.Load())
	}
}

// TestBatchedBusMisuse: the batched bus fails loudly on API misuse
// instead of silently corrupting the stream.
func TestBatchedBusMisuse(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}

	bus := NewBatchedBus(4)
	var s countingSnooper
	bus.Attach(&s)
	bus.Ref(trace.Ref{Addr: 64, Size: 8})
	expectPanic("late attach", func() { bus.Attach(&countingSnooper{}) })
	if err := bus.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bus.Close(); err != nil {
		t.Fatalf("Close not idempotent: %v", err)
	}
	expectPanic("ref after close", func() { bus.Ref(trace.Ref{Addr: 128, Size: 8}) })
	expectPanic("attach after close", func() { bus.Attach(&countingSnooper{}) })
}

// TestBatchedBusDefaultBatch: batchSize <= 0 selects DefaultBatch.
func TestBatchedBusDefaultBatch(t *testing.T) {
	bus := NewBatchedBus(0)
	if bus.batchSize != DefaultBatch {
		t.Fatalf("batchSize = %d, want %d", bus.batchSize, DefaultBatch)
	}
	if !bus.Batched() {
		t.Fatal("not batched")
	}
	if NewBus().Batched() {
		t.Fatal("synchronous bus claims batched")
	}
}
