package fsb

import (
	"testing"
	"testing/quick"

	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
)

func TestMessageRoundTrip(t *testing.T) {
	msgs := []Message{
		{Kind: MsgStart},
		{Kind: MsgStop},
		{Kind: MsgCoreID, Core: 31},
		{Kind: MsgInstRetired, Core: 7, Value: 123_456_789},
		{Kind: MsgCycles, Value: (1 << 44) - 1},
	}
	for _, m := range msgs {
		r := EncodeMessage(m)
		if !IsMessage(r) {
			t.Errorf("%v: encoded ref not recognized as message", m.Kind)
		}
		got, ok := DecodeMessage(r)
		if !ok {
			t.Fatalf("%v: decode failed", m.Kind)
		}
		if got != m {
			t.Errorf("round trip: got %+v, want %+v", got, m)
		}
	}
}

// TestMessageRoundTripProperty: any message with a 44-bit payload
// round-trips exactly.
func TestMessageRoundTripProperty(t *testing.T) {
	check := func(kind uint8, core uint8, value uint64) bool {
		m := Message{
			Kind:  MsgKind(kind%5 + 1),
			Core:  core,
			Value: value & msgValueMask,
		}
		got, ok := DecodeMessage(EncodeMessage(m))
		return ok && got == m
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestOrdinaryRefIsNotMessage(t *testing.T) {
	r := trace.Ref{Addr: 0x4000_0000, Size: 8}
	if IsMessage(r) {
		t.Error("arena-range address classified as message")
	}
	if _, ok := DecodeMessage(r); ok {
		t.Error("DecodeMessage accepted ordinary ref")
	}
}

func TestMsgKindString(t *testing.T) {
	for k, want := range map[MsgKind]string{
		MsgStart:       "start",
		MsgStop:        "stop",
		MsgCoreID:      "core-id",
		MsgInstRetired: "inst-retired",
		MsgCycles:      "cycles",
		MsgKind(99):    "msg(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("String(%d) = %q, want %q", k, got, want)
		}
	}
}

// recordingSnooper captures delivered events in order.
type recordingSnooper struct {
	refs []trace.Ref
	msgs []Message
}

func (s *recordingSnooper) OnRef(r trace.Ref) { s.refs = append(s.refs, r) }
func (s *recordingSnooper) OnMsg(m Message)   { s.msgs = append(s.msgs, m) }

func TestBusBroadcastOrder(t *testing.T) {
	bus := NewBus()
	var a, b recordingSnooper
	bus.Attach(&a)
	bus.Attach(&b)
	bus.Msg(Message{Kind: MsgStart})
	bus.Ref(trace.Ref{Addr: 1, Size: 8, Kind: mem.Load})
	bus.Ref(trace.Ref{Addr: 2, Size: 8, Kind: mem.Store})
	bus.Msg(Message{Kind: MsgStop})

	for name, s := range map[string]*recordingSnooper{"a": &a, "b": &b} {
		if len(s.refs) != 2 || len(s.msgs) != 2 {
			t.Fatalf("%s: got %d refs, %d msgs; want 2, 2", name, len(s.refs), len(s.msgs))
		}
		if s.refs[0].Addr != 1 || s.refs[1].Addr != 2 {
			t.Errorf("%s: delivery out of order", name)
		}
	}
	if bus.Events() != 4 || bus.Messages() != 2 {
		t.Errorf("bus counted %d events, %d msgs; want 4, 2", bus.Events(), bus.Messages())
	}
}

func TestBandwidthAccounting(t *testing.T) {
	bw := NewBandwidth(8, 4)
	if c := bw.Demand(64); c != 4+8 {
		t.Errorf("64B demand cost = %d, want 12", c)
	}
	if c := bw.Prefetch(1); c != 4+1 {
		t.Errorf("1B prefetch cost = %d, want 5", c)
	}
	if bw.DemandCycles() != 12 || bw.PrefetchCycles() != 5 {
		t.Errorf("accumulators wrong: %d, %d", bw.DemandCycles(), bw.PrefetchCycles())
	}
	if bw.TotalCycles() != 17 {
		t.Errorf("total = %d, want 17", bw.TotalCycles())
	}
	if got := bw.Utilization(170); got != 0.1 {
		t.Errorf("utilization = %v, want 0.1", got)
	}
	if bw.Utilization(0) != 0 {
		t.Error("zero-window utilization must be 0")
	}
	bw.Reset()
	if bw.TotalCycles() != 0 {
		t.Error("Reset left cycles behind")
	}
}

func TestBandwidthDefaultWidth(t *testing.T) {
	bw := NewBandwidth(0, 0)
	if bw.BytesPerCycle != 8 {
		t.Errorf("default width = %d, want 8", bw.BytesPerCycle)
	}
}

// TestMessagesSurviveBusAsRefs: a message encoded as a transaction and
// delivered as a ref must be decodable by the receiver (the physical
// path: messages ARE memory transactions).
func TestMessagesSurviveBusAsRefs(t *testing.T) {
	bus := NewBus()
	var s recordingSnooper
	bus.Attach(&s)
	m := Message{Kind: MsgInstRetired, Core: 5, Value: 42}
	bus.Ref(EncodeMessage(m))
	if len(s.refs) != 1 {
		t.Fatal("encoded message not delivered as ref")
	}
	got, ok := DecodeMessage(s.refs[0])
	if !ok || got != m {
		t.Errorf("decode after bus transit: %+v, %v", got, ok)
	}
}
