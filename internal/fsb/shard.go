// Sharded delivery: an address-partitioned SPSC fan-out for intra-run
// parallelism. Where the batched Bus broadcasts the full event stream
// to every snooper (inter-experiment parallelism: N configs, one
// stream), the Sharder routes each event to exactly one of N consumers
// by a key the producer derives from the address — bank-interleave bits
// for the Dragonhead CC banks. Each consumer owns a disjoint address
// partition, so the shards proceed independently with no locks and no
// cross-shard ordering; per-shard delivery order is exactly producer
// order, which is what makes sharded results bit-identical to serial
// (the bank-neutrality invariant machine-checked by
// verify.BankPartition).
package fsb

import (
	"fmt"
	"strconv"

	"cmpmem/internal/telemetry"
	"cmpmem/internal/trace"
)

// Sharder fans events out to per-shard workers over the same bounded
// SPSC batch rings as NewBatchedBus: one chan []Event of depth
// batchDepth per shard, batches shared read-only with the worker, the
// producer blocking only when a shard falls batchDepth batches behind.
//
// The producer side (Ref, Broadcast, Close) must stay on one goroutine,
// and consumer state may only be read after Close has returned.
type Sharder struct {
	workers   []*busWorker
	pending   [][]Event
	batchSize int
	counts    []uint64 // events routed per shard (producer-side)
	nrefs     uint64   // refs routed (each exactly once)
	msgs      uint64   // broadcasts issued
	closed    bool

	tel  *shardTelemetry
	span *telemetry.Span
}

// shardTelemetry holds the sharder's registered metrics.
type shardTelemetry struct {
	events    *telemetry.Counter   // <prefix>_events_total: refs routed + broadcasts fanned out
	refs      *telemetry.Counter   // <prefix>_refs_total: refs routed (each exactly once)
	batches   *telemetry.Counter   // <prefix>_batches_total: batches published
	occupancy *telemetry.Histogram // <prefix>_batch_occupancy: events per published batch
	shardLoad *telemetry.Histogram // <prefix>_occupancy: per-shard event totals at Close
}

// NewSharder returns a sharder delivering to one worker per consumer.
// batchSize <= 0 selects DefaultBatch. Consumers implementing
// AsyncSnooper are notified that their events will arrive on a worker
// goroutine.
func NewSharder(consumers []Snooper, batchSize int) *Sharder {
	if len(consumers) == 0 {
		panic("fsb: NewSharder with no consumers")
	}
	if batchSize <= 0 {
		batchSize = DefaultBatch
	}
	s := &Sharder{
		batchSize: batchSize,
		pending:   make([][]Event, len(consumers)),
		counts:    make([]uint64, len(consumers)),
	}
	for i, c := range consumers {
		if a, ok := c.(AsyncSnooper); ok {
			a.AttachAsync()
		}
		s.pending[i] = make([]Event, 0, batchSize)
		w := &busWorker{s: c, ch: make(chan []Event, batchDepth), done: make(chan struct{})}
		s.workers = append(s.workers, w)
		go w.run()
	}
	return s
}

// Instrument registers the sharder's metrics into r under the given
// prefix (nil r disables). Call before the first event. As with the
// bus, totals push at batch/close granularity so the per-event hot path
// carries no atomics.
func (s *Sharder) Instrument(r *telemetry.Registry, prefix string) {
	if r == nil {
		return
	}
	s.tel = &shardTelemetry{
		events:    r.Counter(prefix + "_events_total"),
		refs:      r.Counter(prefix + "_refs_total"),
		batches:   r.Counter(prefix + "_batches_total"),
		occupancy: r.Histogram(prefix + "_batch_occupancy"),
		shardLoad: r.Histogram(prefix + "_occupancy"),
	}
}

// TraceSpan attaches parent as the span under which Close records the
// fan-out's measured shard busy times: one "shards" child carrying the
// critical-path (max) worker busy time, with one sealed "shard<i>"
// span per worker beneath it. All of them are marked
// telemetry.AttrConcurrent — they overlap the producer's execute/replay
// phase, so reconciliation sums must not double-count them. Like
// Instrument, call before the first event: the timed flag reaches each
// worker through its batch channel's happens-before edge. Nil parent
// disables (the free path). Timing costs two clock reads per delivered
// batch, never per event.
func (s *Sharder) TraceSpan(parent *telemetry.Span) {
	if parent == nil {
		return
	}
	s.span = parent
	for _, w := range s.workers {
		w.timed = true
	}
}

// Shards returns the number of consumers.
func (s *Sharder) Shards() int { return len(s.workers) }

// Ref routes one memory transaction to the given shard.
func (s *Sharder) Ref(shard int, r trace.Ref) {
	if s.closed {
		panic("fsb: event published after Sharder.Close")
	}
	s.counts[shard]++
	s.nrefs++
	b := append(s.pending[shard], Event{Ref: r})
	if len(b) >= s.batchSize {
		s.publish(shard, b)
		return
	}
	s.pending[shard] = b
}

// Broadcast delivers one control message to every shard, ordered after
// all previously routed refs and before all later ones on each shard —
// the property the per-shard sample replicas rely on.
func (s *Sharder) Broadcast(m Message) {
	if s.closed {
		panic("fsb: event published after Sharder.Close")
	}
	s.msgs++
	// One shared Message per broadcast: workers only read it.
	msg := &m
	for i := range s.pending {
		s.counts[i]++
		b := append(s.pending[i], Event{Msg: msg})
		if len(b) >= s.batchSize {
			s.publish(i, b)
			continue
		}
		s.pending[i] = b
	}
}

// publish hands a full batch to one shard's worker. The slice is
// shared: the worker only reads it, the producer never touches it
// again.
func (s *Sharder) publish(shard int, batch []Event) {
	if len(batch) == 0 {
		return
	}
	if s.tel != nil {
		s.tel.batches.Inc()
		s.tel.occupancy.Observe(uint64(len(batch)))
	}
	s.workers[shard].ch <- batch
	s.pending[shard] = make([]Event, 0, s.batchSize)
}

// Close flushes partial batches, waits for every worker to drain, and
// reports the first consumer panic as an error. Idempotent; after Close
// the sharder accepts no more events. Consumer state (the merge) is the
// owner's business once Close has returned.
func (s *Sharder) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	for i, b := range s.pending {
		s.publish(i, b)
		s.pending[i] = nil
	}
	for _, w := range s.workers {
		close(w.ch)
	}
	var err error
	for i, w := range s.workers {
		<-w.done
		if w.panicked != nil && err == nil {
			err = fmt.Errorf("fsb: shard %d (%T) panicked during delivery: %v", i, w.s, w.panicked)
		}
	}
	if s.tel != nil {
		var total uint64
		for _, n := range s.counts {
			s.tel.shardLoad.Observe(n)
			total += n
		}
		s.tel.events.Add(total)
		s.tel.refs.Add(s.nrefs)
	}
	if s.span != nil {
		var critical uint64
		for _, w := range s.workers {
			if w.busyNS > critical {
				critical = w.busyNS
			}
		}
		group := s.span.AddTimedChild("shards", 0, critical)
		group.SetAttr(telemetry.AttrConcurrent, "true")
		group.SetAttr("n", strconv.Itoa(len(s.workers)))
		for i, w := range s.workers {
			c := group.AddTimedChild("shard"+strconv.Itoa(i), 0, w.busyNS)
			c.SetAttr(telemetry.AttrConcurrent, "true")
			c.SetAttr("events", strconv.FormatUint(s.counts[i], 10))
		}
	}
	return err
}

// ShardEvents returns the number of events (refs routed plus broadcast
// copies) delivered to each shard. Only meaningful after Close.
func (s *Sharder) ShardEvents() []uint64 {
	out := make([]uint64, len(s.counts))
	copy(out, s.counts)
	return out
}
