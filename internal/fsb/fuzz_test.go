package fsb

import (
	"testing"

	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
)

// FuzzMessageCodec: every encodable message round-trips; every
// transaction classifies as exactly one of message / ordinary.
func FuzzMessageCodec(f *testing.F) {
	f.Add(uint8(1), uint8(0), uint64(0))
	f.Add(uint8(5), uint8(127), uint64(1)<<44-1)
	f.Add(uint8(3), uint8(31), uint64(123456789))
	f.Fuzz(func(t *testing.T, kind uint8, core uint8, value uint64) {
		m := Message{
			Kind:  MsgKind(kind%5 + 1),
			Core:  core,
			Value: value & msgValueMask,
		}
		r := EncodeMessage(m)
		if !IsMessage(r) {
			t.Fatalf("encoded message not classified as message: %+v", r)
		}
		got, ok := DecodeMessage(r)
		if !ok || got != m {
			t.Fatalf("round trip: got %+v (%v), want %+v", got, ok, m)
		}
	})
}

// FuzzWindowDiscrimination: ordinary guest addresses (below the message
// window) never decode as messages.
func FuzzWindowDiscrimination(f *testing.F) {
	f.Add(uint64(0x4000_0000), uint8(8))
	f.Add(uint64(0), uint8(1))
	f.Fuzz(func(t *testing.T, addr uint64, size uint8) {
		addr &= (1 << 48) - 1 // any address in the guest range
		r := trace.Ref{Addr: mem.Addr(addr), Size: size, Kind: mem.Load}
		if IsMessage(r) {
			t.Fatalf("guest address %#x classified as message", addr)
		}
		if _, ok := DecodeMessage(r); ok {
			t.Fatalf("guest address %#x decoded as message", addr)
		}
	})
}
