package fsb

import (
	"strings"
	"testing"

	"cmpmem/internal/mem"
	"cmpmem/internal/telemetry"
	"cmpmem/internal/trace"
)

// TestSharderRoutesAndOrders: each shard sees exactly its own refs, in
// producer order, with broadcasts interleaved at the right points.
func TestSharderRoutesAndOrders(t *testing.T) {
	const shards = 4
	consumers := make([]Snooper, shards)
	recs := make([]*recordingSnooper, shards)
	for i := range consumers {
		recs[i] = &recordingSnooper{}
		consumers[i] = recs[i]
	}
	// Small batch size so the test crosses several publish boundaries.
	s := NewSharder(consumers, 8)
	if s.Shards() != shards {
		t.Fatalf("Shards() = %d, want %d", s.Shards(), shards)
	}

	s.Broadcast(Message{Kind: MsgStart})
	const refs = 1000
	for i := 0; i < refs; i++ {
		r := trace.Ref{Addr: mem.Addr(i * 64), Size: 8, Kind: mem.Load}
		s.Ref(i%shards, r)
		if i == refs/2 {
			s.Broadcast(Message{Kind: MsgCycles, Value: uint64(i)})
		}
	}
	s.Broadcast(Message{Kind: MsgStop})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	for sh, rec := range recs {
		if len(rec.msgs) != 3 {
			t.Fatalf("shard %d: %d msgs, want 3 (start, cycles, stop)", sh, len(rec.msgs))
		}
		if rec.msgs[0].Kind != MsgStart || rec.msgs[1].Kind != MsgCycles || rec.msgs[2].Kind != MsgStop {
			t.Errorf("shard %d: broadcast order %v %v %v", sh, rec.msgs[0].Kind, rec.msgs[1].Kind, rec.msgs[2].Kind)
		}
		if len(rec.refs) != refs/shards {
			t.Fatalf("shard %d: %d refs, want %d", sh, len(rec.refs), refs/shards)
		}
		for j, r := range rec.refs {
			want := mem.Addr((j*shards + sh) * 64)
			if r.Addr != want {
				t.Fatalf("shard %d ref %d: addr %#x, want %#x (reordered or misrouted)", sh, j, r.Addr, want)
			}
		}
	}
	ev := s.ShardEvents()
	for sh, n := range ev {
		if want := uint64(refs/shards + 3); n != want {
			t.Errorf("ShardEvents[%d] = %d, want %d", sh, n, want)
		}
	}
}

// panickySnooper blows up on a designated address.
type panickySnooper struct {
	bad mem.Addr
}

func (p *panickySnooper) OnRef(r trace.Ref) {
	if r.Addr == p.bad {
		panic("poisoned address")
	}
}
func (p *panickySnooper) OnMsg(Message) {}

// TestSharderPanicPropagation: a consumer panic surfaces as a Close
// error naming the shard, and never deadlocks the producer.
func TestSharderPanicPropagation(t *testing.T) {
	consumers := []Snooper{&recordingSnooper{}, &panickySnooper{bad: 0xDEAD}}
	s := NewSharder(consumers, 4)
	for i := 0; i < 100; i++ {
		s.Ref(i%2, trace.Ref{Addr: mem.Addr(i), Size: 8})
	}
	s.Ref(1, trace.Ref{Addr: 0xDEAD, Size: 8})
	for i := 0; i < 100; i++ {
		s.Ref(i%2, trace.Ref{Addr: mem.Addr(0x1000 + i), Size: 8})
	}
	err := s.Close()
	if err == nil {
		t.Fatal("consumer panic did not surface from Close")
	}
	if !strings.Contains(err.Error(), "shard 1") {
		t.Errorf("error does not name the failing shard: %v", err)
	}
	if s.Close() != nil {
		t.Error("second Close must be a nil no-op")
	}
}

// TestSharderMatchesSerialDigest: for any routing function, the
// concatenation of per-shard streams in per-shard order is a
// permutation of the input that preserves each shard's subsequence —
// checked by running a StreamDigest per shard and comparing against
// serially-filtered digests.
func TestSharderMatchesSerialDigest(t *testing.T) {
	const shards = 2
	shardOf := func(r trace.Ref) int { return int(r.Addr>>6) & (shards - 1) }

	stream := make([]trace.Ref, 5000)
	for i := range stream {
		stream[i] = trace.Ref{Addr: mem.Addr(i * 13 * 64), Size: 8, Kind: mem.Load, Core: uint8(i % 4)}
	}

	// Serial reference: filter the stream per shard.
	want := make([]*StreamDigest, shards)
	for i := range want {
		want[i] = NewStreamDigest()
	}
	for _, r := range stream {
		want[shardOf(r)].OnRef(r)
	}

	got := make([]*StreamDigest, shards)
	consumers := make([]Snooper, shards)
	for i := range got {
		got[i] = NewStreamDigest()
		consumers[i] = got[i]
	}
	s := NewSharder(consumers, 0)
	for _, r := range stream {
		s.Ref(shardOf(r), r)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Sum() != want[i].Sum() || got[i].Events() != want[i].Events() {
			t.Errorf("shard %d digest %#x (%d events), want %#x (%d events)",
				i, got[i].Sum(), got[i].Events(), want[i].Sum(), want[i].Events())
		}
	}
}

// TestSharderTelemetry: the sharder's registered counters reconcile
// with its own producer-side accounting.
func TestSharderTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	recs := []Snooper{&recordingSnooper{}, &recordingSnooper{}}
	s := NewSharder(recs, 16)
	s.Instrument(reg, "core_shard")
	for i := 0; i < 100; i++ {
		s.Ref(i%2, trace.Ref{Addr: mem.Addr(i), Size: 8})
	}
	s.Broadcast(Message{Kind: MsgStop})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["core_shard_events_total"]; got != 102 {
		t.Errorf("events_total = %d, want 102", got)
	}
	if got := snap.Counters["core_shard_refs_total"]; got != 100 {
		t.Errorf("refs_total = %d, want 100", got)
	}
	if snap.Counters["core_shard_batches_total"] == 0 {
		t.Error("batches_total never incremented")
	}
	if h, ok := snap.Histograms["core_shard_occupancy"]; !ok || h.Count != 2 {
		t.Errorf("core_shard_occupancy histogram missing or wrong sample count: %+v", h)
	}
}
