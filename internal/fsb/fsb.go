// Package fsb models the front-side bus that couples the execution
// engine (SoftSDV DEX) to the cache emulator (Dragonhead).
//
// Two things travel on the bus:
//
//   - ordinary memory transactions (trace.Ref), snooped by Dragonhead's
//     logic-analyzer interface; and
//   - control messages, which the paper encodes as memory transactions to
//     reserved addresses: StartEmulation, StopEmulation, CoreID,
//     InstructionsRetired, and CyclesCompleted. They delimit the
//     measurement window, attribute accesses to virtual cores, and let
//     the emulator synchronize its counters with simulation time (the
//     two sides run in separate time domains).
//
// The package also provides a bandwidth model (token bucket in bus
// cycles) used by the prefetching study: prefetch transactions compete
// with demand misses for bus slots, so bandwidth-saturated workloads see
// little prefetch benefit — the Figure 8 effect.
package fsb

import (
	"fmt"
	"time"

	"cmpmem/internal/mem"
	"cmpmem/internal/telemetry"
	"cmpmem/internal/trace"
)

// MsgKind enumerates the control messages of the co-simulation protocol.
type MsgKind uint8

const (
	// MsgStart opens the emulation window: subsequent transactions are
	// part of the simulated workload and must be counted.
	MsgStart MsgKind = iota + 1
	// MsgStop closes the emulation window: subsequent transactions are
	// host/simulator noise and must be ignored.
	MsgStop
	// MsgCoreID announces the virtual core about to execute; all
	// following transactions belong to it until the next MsgCoreID.
	MsgCoreID
	// MsgInstRetired reports the cumulative instructions retired by the
	// current core, for instruction-synchronized statistics (MPKI).
	MsgInstRetired
	// MsgCycles reports cumulative simulated cycles, for
	// time-synchronized statistics (miss rate over time).
	MsgCycles
)

// String names the message kind.
func (k MsgKind) String() string {
	switch k {
	case MsgStart:
		return "start"
	case MsgStop:
		return "stop"
	case MsgCoreID:
		return "core-id"
	case MsgInstRetired:
		return "inst-retired"
	case MsgCycles:
		return "cycles"
	default:
		return fmt.Sprintf("msg(%d)", uint8(k))
	}
}

// msgWindowBase is the reserved guest-address window used to encode
// control messages as memory transactions, mirroring the paper's use of
// predefined FSB transactions. It sits far above any arena address.
// Layout of an encoded message address:
//
//	bits 48..63  window tag (0xFFFF)
//	bits 44..47  message kind
//	bits  0..43  payload (instructions/cycles; 2^44 covers the paper's
//	             largest run, 357 billion instructions, with headroom)
const (
	msgWindowBase mem.Addr = 0xFFFF_0000_0000_0000
	msgKindShift           = 44
	msgValueMask           = (uint64(1) << msgKindShift) - 1
)

// Message is one control message.
type Message struct {
	Kind MsgKind
	// Core is the payload of MsgCoreID.
	Core uint8
	// Value is the payload of MsgInstRetired / MsgCycles.
	Value uint64
}

// Event is the unit that flows over the bus: either a memory reference
// or a control message (Msg != nil).
type Event struct {
	Ref trace.Ref
	Msg *Message
}

// EncodeMessage converts a control message into the reserved-address
// memory transaction that carries it on a physical bus.
func EncodeMessage(m Message) trace.Ref {
	addr := msgWindowBase |
		mem.Addr(uint64(m.Kind))<<msgKindShift |
		mem.Addr(m.Value&msgValueMask)
	return trace.Ref{Addr: addr, Core: m.Core, Size: 8, Kind: mem.Store}
}

// DecodeMessage recovers the control message carried by a
// reserved-window transaction. ok is false if r is an ordinary
// transaction.
func DecodeMessage(r trace.Ref) (m Message, ok bool) {
	if !IsMessage(r) {
		return Message{}, false
	}
	off := uint64(r.Addr - msgWindowBase)
	return Message{
		Kind:  MsgKind(off >> msgKindShift),
		Core:  r.Core,
		Value: off & msgValueMask,
	}, true
}

// IsMessage reports whether a transaction address falls in the reserved
// message window.
func IsMessage(r trace.Ref) bool {
	return r.Addr >= msgWindowBase
}

// Bus carries events from the execution engine to any number of snoopers
// (the Dragonhead emulator, trace writers, bandwidth meters).
//
// A Bus built with NewBus delivers synchronously and in order on the
// producer's goroutine — the software analogue of a physical bus. A Bus
// built with NewBatchedBus restores the paper's producer/consumer
// decoupling: the execution engine appends events to a batch buffer and
// publishes full batches to one bounded SPSC channel per snooper, each
// drained by a dedicated worker goroutine — the software analogue of the
// FPGAs passively consuming the bus in parallel with SoftSDV. Every
// snooper still observes the complete event stream in the exact order it
// was produced, so per-snooper results are bit-identical to synchronous
// delivery; only cross-snooper timing changes.
//
// In batched mode the producer side (Ref, Msg, Close, Events, Messages)
// must stay on one goroutine, and results held by the snoopers may only
// be read after Close has returned.
type Bus struct {
	snoopers []Snooper
	events   uint64
	msgs     uint64

	// Batched asynchronous delivery (nil/zero for a synchronous bus).
	batchSize int
	batch     []Event
	workers   []*busWorker
	started   bool // events have flowed; attaching now would lose history
	closed    bool

	// tel is nil unless Instrument attached a registry; all pushes go
	// through nil-safe handles at batch/close granularity, so the
	// per-event hot path is untouched.
	tel *busTelemetry
}

// busTelemetry holds the bus's registered metrics.
type busTelemetry struct {
	events     *telemetry.Counter   // fsb_events_total: refs + msgs broadcast
	msgs       *telemetry.Counter   // fsb_msgs_total: control messages broadcast
	deliveries *telemetry.Counter   // fsb_deliveries_total: events fanned out (events x snoopers)
	batches    *telemetry.Counter   // fsb_batches_total: batches published
	occupancy  *telemetry.Histogram // fsb_batch_occupancy: events per published batch
	queueDepth *telemetry.Histogram // fsb_snooper_queue_depth: batches queued per snooper at publish
}

// Instrument registers the bus's metrics into r (nil r disables). Call
// before the first event.
func (b *Bus) Instrument(r *telemetry.Registry) {
	if r == nil {
		return
	}
	b.tel = &busTelemetry{
		events:     r.Counter("fsb_events_total"),
		msgs:       r.Counter("fsb_msgs_total"),
		deliveries: r.Counter("fsb_deliveries_total"),
		batches:    r.Counter("fsb_batches_total"),
		occupancy:  r.Histogram("fsb_batch_occupancy"),
		queueDepth: r.Histogram("fsb_snooper_queue_depth"),
	}
}

// Snooper observes bus traffic. OnRef is called for memory transactions,
// OnMsg for control messages.
type Snooper interface {
	OnRef(r trace.Ref)
	OnMsg(m Message)
}

// Finalizer is implemented by snoopers that need to know when the event
// stream is complete — e.g. to seal counters so that reading them is
// known to be safe. Bus.Close calls Finalize on every attached snooper
// that implements it, after all deliveries have drained.
type Finalizer interface {
	Finalize()
}

// AsyncSnooper is implemented by snoopers that want to be told their
// events will arrive on a worker goroutine (batched bus) rather than the
// producer's. Dragonhead uses this to reject racy stats reads loudly.
type AsyncSnooper interface {
	AttachAsync()
}

// DefaultBatch is the default events-per-batch of a batched bus. Large
// enough to amortize channel handoffs over tens of microseconds of
// emulation, small enough that per-batch buffers stay cache-friendly.
const DefaultBatch = 4096

// batchDepth bounds each snooper's channel (in batches). The producer
// blocks when a snooper falls this far behind — the backpressure that
// keeps memory bounded.
const batchDepth = 4

// busWorker drains one snooper's SPSC batch channel.
type busWorker struct {
	s    Snooper
	ch   chan []Event
	done chan struct{}
	// panicked is written only by the worker goroutine and read only
	// after done is closed.
	panicked any
	// timed, when set before the worker starts, accumulates per-batch
	// delivery wall time into busyNS (two clock reads per batch — far
	// off the per-event path). Same ownership rule as panicked.
	timed  bool
	busyNS uint64
}

// NewBus returns an empty synchronous bus.
func NewBus() *Bus { return &Bus{} }

// NewBatchedBus returns a bus in batched asynchronous delivery mode.
// batchSize <= 0 selects DefaultBatch.
func NewBatchedBus(batchSize int) *Bus {
	if batchSize <= 0 {
		batchSize = DefaultBatch
	}
	return &Bus{batchSize: batchSize, batch: make([]Event, 0, batchSize)}
}

// Batched reports whether the bus delivers asynchronously.
func (b *Bus) Batched() bool { return b.batchSize > 0 }

// Attach registers a snooper. Order of attachment is delivery order on a
// synchronous bus. On a batched bus, Attach starts the snooper's worker
// and must happen before the first event.
func (b *Bus) Attach(s Snooper) {
	if b.closed {
		panic("fsb: Attach on closed bus")
	}
	b.snoopers = append(b.snoopers, s)
	if !b.Batched() {
		return
	}
	if b.started {
		panic("fsb: Attach after delivery started on batched bus")
	}
	if a, ok := s.(AsyncSnooper); ok {
		a.AttachAsync()
	}
	w := &busWorker{s: s, ch: make(chan []Event, batchDepth), done: make(chan struct{})}
	b.workers = append(b.workers, w)
	go w.run()
}

// Ref broadcasts a memory transaction.
func (b *Bus) Ref(r trace.Ref) {
	b.events++
	if b.Batched() {
		b.enqueue(Event{Ref: r})
		return
	}
	for _, s := range b.snoopers {
		s.OnRef(r)
	}
}

// Msg broadcasts a control message.
func (b *Bus) Msg(m Message) {
	b.events++
	b.msgs++
	if b.Batched() {
		b.enqueue(Event{Msg: &m})
		return
	}
	for _, s := range b.snoopers {
		s.OnMsg(m)
	}
}

// enqueue appends one event to the current batch, publishing when full.
func (b *Bus) enqueue(ev Event) {
	if b.closed {
		panic("fsb: event published after Close")
	}
	b.started = true
	b.batch = append(b.batch, ev)
	if len(b.batch) >= b.batchSize {
		b.publish()
	}
}

// publish hands the current batch to every worker. The slice is shared:
// workers only read it, and the producer never touches it again — a
// fresh buffer is allocated for the next batch.
func (b *Bus) publish() {
	if len(b.batch) == 0 {
		return
	}
	batch := b.batch
	if b.tel != nil {
		b.tel.batches.Inc()
		b.tel.occupancy.Observe(uint64(len(batch)))
	}
	for _, w := range b.workers {
		if b.tel != nil {
			b.tel.queueDepth.Observe(uint64(len(w.ch)))
		}
		w.ch <- batch
	}
	b.batch = make([]Event, 0, b.batchSize)
}

// run is the worker loop: deliver each batch in order to one snooper.
// A panicking snooper poisons the worker, which then keeps draining
// (without delivering) so the producer is never blocked by a corpse;
// the panic value resurfaces from Close.
func (w *busWorker) run() {
	defer close(w.done)
	for batch := range w.ch {
		if w.panicked != nil {
			continue
		}
		w.deliver(batch)
	}
}

func (w *busWorker) deliver(batch []Event) {
	defer func() {
		if r := recover(); r != nil {
			w.panicked = r
		}
	}()
	if w.timed {
		start := time.Now()
		defer func() { w.busyNS += uint64(time.Since(start)) }()
	}
	for _, ev := range batch {
		if ev.Msg != nil {
			w.s.OnMsg(*ev.Msg)
		} else {
			w.s.OnRef(ev.Ref)
		}
	}
}

// Close flushes the partial batch, waits for every worker to drain, and
// finalizes snoopers. On a batched bus it reports the first snooper
// panic as an error; on a synchronous bus it only finalizes. Close is
// idempotent; after Close the bus accepts no more events.
func (b *Bus) Close() error {
	if b.closed {
		return nil
	}
	b.closed = true
	if b.tel != nil {
		// Totals push once at close: per-event increments would put two
		// atomic adds in the producer's hot loop for no extra fidelity.
		b.tel.events.Add(b.events)
		b.tel.msgs.Add(b.msgs)
		b.tel.deliveries.Add(b.events * uint64(len(b.snoopers)))
	}
	var err error
	if b.Batched() {
		b.publish()
		for _, w := range b.workers {
			close(w.ch)
		}
		for i, w := range b.workers {
			<-w.done
			if w.panicked != nil && err == nil {
				err = fmt.Errorf("fsb: snooper %d (%T) panicked during delivery: %v", i, w.s, w.panicked)
			}
		}
	}
	if err != nil {
		return err
	}
	for _, s := range b.snoopers {
		if f, ok := s.(Finalizer); ok {
			f.Finalize()
		}
	}
	return nil
}

// Events returns the total events (refs + msgs) broadcast.
func (b *Bus) Events() uint64 { return b.events }

// Messages returns the control messages broadcast.
func (b *Bus) Messages() uint64 { return b.msgs }

// Bandwidth models bus occupancy in bus cycles. Each transaction of n
// bytes costs ceil(n/BytesPerCycle) cycles plus a fixed arbitration
// overhead. Demand and prefetch traffic are accounted separately so the
// prefetch study can tell how much headroom prefetching had.
type Bandwidth struct {
	// BytesPerCycle is the data-path width (e.g. 8 for a 64-bit FSB).
	BytesPerCycle uint64
	// ArbCycles is the fixed per-transaction overhead.
	ArbCycles uint64

	demandCycles   uint64
	prefetchCycles uint64
	demandTx       uint64
	prefetchTx     uint64
}

// NewBandwidth returns a bandwidth meter with the given data-path width
// and arbitration cost.
func NewBandwidth(bytesPerCycle, arbCycles uint64) *Bandwidth {
	if bytesPerCycle == 0 {
		bytesPerCycle = 8
	}
	return &Bandwidth{BytesPerCycle: bytesPerCycle, ArbCycles: arbCycles}
}

// cost returns the bus cycles consumed by an n-byte transfer.
func (bw *Bandwidth) cost(n uint64) uint64 {
	return bw.ArbCycles + (n+bw.BytesPerCycle-1)/bw.BytesPerCycle
}

// Demand accounts an n-byte demand transfer and returns its cost.
func (bw *Bandwidth) Demand(n uint64) uint64 {
	c := bw.cost(n)
	bw.demandCycles += c
	bw.demandTx++
	return c
}

// Prefetch accounts an n-byte prefetch transfer and returns its cost.
func (bw *Bandwidth) Prefetch(n uint64) uint64 {
	c := bw.cost(n)
	bw.prefetchCycles += c
	bw.prefetchTx++
	return c
}

// DemandCycles returns cumulative demand occupancy.
func (bw *Bandwidth) DemandCycles() uint64 { return bw.demandCycles }

// PrefetchCycles returns cumulative prefetch occupancy.
func (bw *Bandwidth) PrefetchCycles() uint64 { return bw.prefetchCycles }

// TotalCycles returns total bus occupancy.
func (bw *Bandwidth) TotalCycles() uint64 { return bw.demandCycles + bw.prefetchCycles }

// Utilization returns occupancy relative to a window of busCycles.
func (bw *Bandwidth) Utilization(busCycles uint64) float64 {
	if busCycles == 0 {
		return 0
	}
	return float64(bw.TotalCycles()) / float64(busCycles)
}

// Reset clears all accounting.
func (bw *Bandwidth) Reset() {
	bw.demandCycles, bw.prefetchCycles, bw.demandTx, bw.prefetchTx = 0, 0, 0, 0
}
