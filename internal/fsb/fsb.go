// Package fsb models the front-side bus that couples the execution
// engine (SoftSDV DEX) to the cache emulator (Dragonhead).
//
// Two things travel on the bus:
//
//   - ordinary memory transactions (trace.Ref), snooped by Dragonhead's
//     logic-analyzer interface; and
//   - control messages, which the paper encodes as memory transactions to
//     reserved addresses: StartEmulation, StopEmulation, CoreID,
//     InstructionsRetired, and CyclesCompleted. They delimit the
//     measurement window, attribute accesses to virtual cores, and let
//     the emulator synchronize its counters with simulation time (the
//     two sides run in separate time domains).
//
// The package also provides a bandwidth model (token bucket in bus
// cycles) used by the prefetching study: prefetch transactions compete
// with demand misses for bus slots, so bandwidth-saturated workloads see
// little prefetch benefit — the Figure 8 effect.
package fsb

import (
	"fmt"

	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
)

// MsgKind enumerates the control messages of the co-simulation protocol.
type MsgKind uint8

const (
	// MsgStart opens the emulation window: subsequent transactions are
	// part of the simulated workload and must be counted.
	MsgStart MsgKind = iota + 1
	// MsgStop closes the emulation window: subsequent transactions are
	// host/simulator noise and must be ignored.
	MsgStop
	// MsgCoreID announces the virtual core about to execute; all
	// following transactions belong to it until the next MsgCoreID.
	MsgCoreID
	// MsgInstRetired reports the cumulative instructions retired by the
	// current core, for instruction-synchronized statistics (MPKI).
	MsgInstRetired
	// MsgCycles reports cumulative simulated cycles, for
	// time-synchronized statistics (miss rate over time).
	MsgCycles
)

// String names the message kind.
func (k MsgKind) String() string {
	switch k {
	case MsgStart:
		return "start"
	case MsgStop:
		return "stop"
	case MsgCoreID:
		return "core-id"
	case MsgInstRetired:
		return "inst-retired"
	case MsgCycles:
		return "cycles"
	default:
		return fmt.Sprintf("msg(%d)", uint8(k))
	}
}

// msgWindowBase is the reserved guest-address window used to encode
// control messages as memory transactions, mirroring the paper's use of
// predefined FSB transactions. It sits far above any arena address.
// Layout of an encoded message address:
//
//	bits 48..63  window tag (0xFFFF)
//	bits 44..47  message kind
//	bits  0..43  payload (instructions/cycles; 2^44 covers the paper's
//	             largest run, 357 billion instructions, with headroom)
const (
	msgWindowBase mem.Addr = 0xFFFF_0000_0000_0000
	msgKindShift           = 44
	msgValueMask           = (uint64(1) << msgKindShift) - 1
)

// Message is one control message.
type Message struct {
	Kind MsgKind
	// Core is the payload of MsgCoreID.
	Core uint8
	// Value is the payload of MsgInstRetired / MsgCycles.
	Value uint64
}

// Event is the unit that flows over the bus: either a memory reference
// or a control message (Msg != nil).
type Event struct {
	Ref trace.Ref
	Msg *Message
}

// EncodeMessage converts a control message into the reserved-address
// memory transaction that carries it on a physical bus.
func EncodeMessage(m Message) trace.Ref {
	addr := msgWindowBase |
		mem.Addr(uint64(m.Kind))<<msgKindShift |
		mem.Addr(m.Value&msgValueMask)
	return trace.Ref{Addr: addr, Core: m.Core, Size: 8, Kind: mem.Store}
}

// DecodeMessage recovers the control message carried by a
// reserved-window transaction. ok is false if r is an ordinary
// transaction.
func DecodeMessage(r trace.Ref) (m Message, ok bool) {
	if !IsMessage(r) {
		return Message{}, false
	}
	off := uint64(r.Addr - msgWindowBase)
	return Message{
		Kind:  MsgKind(off >> msgKindShift),
		Core:  r.Core,
		Value: off & msgValueMask,
	}, true
}

// IsMessage reports whether a transaction address falls in the reserved
// message window.
func IsMessage(r trace.Ref) bool {
	return r.Addr >= msgWindowBase
}

// Bus carries events from the execution engine to any number of snoopers
// (the Dragonhead emulator, trace writers, bandwidth meters). Delivery
// is synchronous and in order — the software analogue of a physical bus.
type Bus struct {
	snoopers []Snooper
	events   uint64
	msgs     uint64
}

// Snooper observes bus traffic. OnRef is called for memory transactions,
// OnMsg for control messages.
type Snooper interface {
	OnRef(r trace.Ref)
	OnMsg(m Message)
}

// NewBus returns an empty bus.
func NewBus() *Bus { return &Bus{} }

// Attach registers a snooper. Order of attachment is delivery order.
func (b *Bus) Attach(s Snooper) { b.snoopers = append(b.snoopers, s) }

// Ref broadcasts a memory transaction.
func (b *Bus) Ref(r trace.Ref) {
	b.events++
	for _, s := range b.snoopers {
		s.OnRef(r)
	}
}

// Msg broadcasts a control message.
func (b *Bus) Msg(m Message) {
	b.events++
	b.msgs++
	for _, s := range b.snoopers {
		s.OnMsg(m)
	}
}

// Events returns the total events (refs + msgs) broadcast.
func (b *Bus) Events() uint64 { return b.events }

// Messages returns the control messages broadcast.
func (b *Bus) Messages() uint64 { return b.msgs }

// Bandwidth models bus occupancy in bus cycles. Each transaction of n
// bytes costs ceil(n/BytesPerCycle) cycles plus a fixed arbitration
// overhead. Demand and prefetch traffic are accounted separately so the
// prefetch study can tell how much headroom prefetching had.
type Bandwidth struct {
	// BytesPerCycle is the data-path width (e.g. 8 for a 64-bit FSB).
	BytesPerCycle uint64
	// ArbCycles is the fixed per-transaction overhead.
	ArbCycles uint64

	demandCycles   uint64
	prefetchCycles uint64
	demandTx       uint64
	prefetchTx     uint64
}

// NewBandwidth returns a bandwidth meter with the given data-path width
// and arbitration cost.
func NewBandwidth(bytesPerCycle, arbCycles uint64) *Bandwidth {
	if bytesPerCycle == 0 {
		bytesPerCycle = 8
	}
	return &Bandwidth{BytesPerCycle: bytesPerCycle, ArbCycles: arbCycles}
}

// cost returns the bus cycles consumed by an n-byte transfer.
func (bw *Bandwidth) cost(n uint64) uint64 {
	return bw.ArbCycles + (n+bw.BytesPerCycle-1)/bw.BytesPerCycle
}

// Demand accounts an n-byte demand transfer and returns its cost.
func (bw *Bandwidth) Demand(n uint64) uint64 {
	c := bw.cost(n)
	bw.demandCycles += c
	bw.demandTx++
	return c
}

// Prefetch accounts an n-byte prefetch transfer and returns its cost.
func (bw *Bandwidth) Prefetch(n uint64) uint64 {
	c := bw.cost(n)
	bw.prefetchCycles += c
	bw.prefetchTx++
	return c
}

// DemandCycles returns cumulative demand occupancy.
func (bw *Bandwidth) DemandCycles() uint64 { return bw.demandCycles }

// PrefetchCycles returns cumulative prefetch occupancy.
func (bw *Bandwidth) PrefetchCycles() uint64 { return bw.prefetchCycles }

// TotalCycles returns total bus occupancy.
func (bw *Bandwidth) TotalCycles() uint64 { return bw.demandCycles + bw.prefetchCycles }

// Utilization returns occupancy relative to a window of busCycles.
func (bw *Bandwidth) Utilization(busCycles uint64) float64 {
	if busCycles == 0 {
		return 0
	}
	return float64(bw.TotalCycles()) / float64(busCycles)
}

// Reset clears all accounting.
func (bw *Bandwidth) Reset() {
	bw.demandCycles, bw.prefetchCycles, bw.demandTx, bw.prefetchTx = 0, 0, 0, 0
}
