package hier

import (
	"testing"

	"cmpmem/internal/cache"
	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/prefetch"
	"cmpmem/internal/trace"
)

func ref(core uint8, addr uint64, kind mem.Kind) trace.Ref {
	return trace.Ref{Addr: mem.Addr(addr), Core: core, Size: 8, Kind: kind}
}

func TestValidation(t *testing.T) {
	bad := PentiumIV(1)
	bad.Cores = 0
	if _, err := New(bad); err == nil {
		t.Error("0 cores accepted")
	}
	bad = PentiumIV(1)
	bad.DL1.LineSize = 48
	if _, err := New(bad); err == nil {
		t.Error("bad DL1 accepted")
	}
	bad = PentiumIV(1)
	pf := prefetch.Config{}
	bad.Prefetch = &pf
	if _, err := New(bad); err == nil {
		t.Error("bad prefetch config accepted")
	}
}

func TestIPCWithoutMisses(t *testing.T) {
	m, err := New(PentiumIV(1))
	if err != nil {
		t.Fatal(err)
	}
	// Touch one line repeatedly: 1 cold L1 miss then pure hits.
	for i := 0; i < 1000; i++ {
		m.OnRef(ref(0, 0x4000_0000, mem.Load))
	}
	m.OnMsg(fsb.Message{Kind: fsb.MsgInstRetired, Core: 0, Value: 1000})
	ipc := m.IPC()
	want := 1 / PentiumIV(1).Lat.BaseCPI
	if ipc < want*0.6 || ipc > want {
		t.Errorf("hit-only IPC = %.3f, want near %.3f", ipc, want)
	}
}

func TestMissesReduceIPC(t *testing.T) {
	mHit, _ := New(PentiumIV(1))
	mMiss, _ := New(PentiumIV(1))
	for i := 0; i < 2000; i++ {
		mHit.OnRef(ref(0, 0x4000_0000, mem.Load))
		// Random-ish strided pattern defeating the 512 KB L2.
		mMiss.OnRef(ref(0, 0x4000_0000+uint64(i*7919)*64, mem.Load))
	}
	mHit.OnMsg(fsb.Message{Kind: fsb.MsgInstRetired, Core: 0, Value: 2000})
	mMiss.OnMsg(fsb.Message{Kind: fsb.MsgInstRetired, Core: 0, Value: 2000})
	if mMiss.IPC() >= mHit.IPC() {
		t.Errorf("missing IPC %.3f not below hitting IPC %.3f", mMiss.IPC(), mHit.IPC())
	}
	if mMiss.L2Stats().Misses == 0 {
		t.Error("expected L2 misses in the missing run")
	}
}

func TestStreamingCheaperThanRandom(t *testing.T) {
	stream, _ := New(PentiumIV(1))
	random, _ := New(PentiumIV(1))
	for i := 0; i < 5000; i++ {
		stream.OnRef(ref(0, 0x4000_0000+uint64(i)*64, mem.Load))
		random.OnRef(ref(0, 0x4000_0000+uint64((i*2654435761)%(1<<28))&^63, mem.Load))
	}
	stream.OnMsg(fsb.Message{Kind: fsb.MsgInstRetired, Core: 0, Value: 5000})
	random.OnMsg(fsb.Message{Kind: fsb.MsgInstRetired, Core: 0, Value: 5000})
	// Both miss every access, but streaming misses overlap.
	if stream.Cycles() >= random.Cycles() {
		t.Errorf("streaming cycles %.0f not below random cycles %.0f",
			stream.Cycles(), random.Cycles())
	}
}

func TestL1FiltersL2(t *testing.T) {
	m, _ := New(PentiumIV(1))
	for i := 0; i < 100; i++ {
		m.OnRef(ref(0, 0x4000_0000, mem.Load))
	}
	if got := m.L2Stats().Accesses; got != 1 {
		t.Errorf("L2 saw %d accesses, want 1 (L1 filters hits)", got)
	}
	if got := m.L1Stats().Accesses; got != 100 {
		t.Errorf("L1 saw %d accesses, want 100", got)
	}
}

func TestPerCoreIsolationOfCaches(t *testing.T) {
	cfg := Xeon16(2, 1, nil)
	m, _ := New(cfg)
	// Core 0 warms a line; core 1 touching the same line must miss
	// (private caches).
	m.OnRef(ref(0, 0x4000_0000, mem.Load))
	m.OnRef(ref(1, 0x4000_0000, mem.Load))
	if got := m.L1Stats().Misses; got != 2 {
		t.Errorf("private L1s recorded %d misses, want 2", got)
	}
}

func TestIgnoresUnknownCores(t *testing.T) {
	m, _ := New(PentiumIV(1))
	m.OnRef(ref(9, 0x4000_0000, mem.Load)) // only core 0 exists
	if m.L1Stats().Accesses != 0 {
		t.Error("out-of-range core not ignored")
	}
}

func TestPrefetchingReducesCycles(t *testing.T) {
	pf := prefetch.DefaultConfig(64)
	off, _ := New(Xeon16(1, 1, nil))
	on, _ := New(Xeon16(1, 1, &pf))
	// Long unit-stride stream over 4 MB: ideal for the stride prefetcher.
	for i := 0; i < 60000; i++ {
		addr := 0x4000_0000 + uint64(i)*64
		off.OnRef(ref(0, addr, mem.Load))
		on.OnRef(ref(0, addr, mem.Load))
	}
	off.OnMsg(fsb.Message{Kind: fsb.MsgInstRetired, Core: 0, Value: 60000})
	on.OnMsg(fsb.Message{Kind: fsb.MsgInstRetired, Core: 0, Value: 60000})
	if on.Prefetches().Issued == 0 {
		t.Fatal("prefetcher never fired")
	}
	if on.Cycles() >= off.Cycles() {
		t.Errorf("prefetch-on cycles %.0f not below prefetch-off %.0f",
			on.Cycles(), off.Cycles())
	}
	gain := off.Cycles()/on.Cycles() - 1
	t.Logf("stream prefetch gain: %.1f%%", gain*100)
}

func TestBusSaturationDropsPrefetches(t *testing.T) {
	pf := prefetch.DefaultConfig(64)
	cfg := Xeon16(8, 1, &pf)
	cfg.BusCapacity = 200 // starve the bus
	m, _ := New(cfg)
	for i := 0; i < 20000; i++ {
		core := uint8(i % 8)
		m.OnRef(ref(core, 0x4000_0000+uint64(core)<<24+uint64(i/8)*64, mem.Load))
	}
	rep := m.Prefetches()
	if rep.Dropped == 0 {
		t.Errorf("no prefetches dropped under a starved bus: %+v", rep)
	}
}

func TestContentionIncreasesLatency(t *testing.T) {
	low := Xeon16(1, 1, nil)
	high := Xeon16(1, 1, nil)
	high.BusCapacity = 100 // tiny window capacity: always saturated
	mLow, _ := New(low)
	mHigh, _ := New(high)
	for i := 0; i < 20000; i++ {
		addr := 0x4000_0000 + uint64(i*97)*64
		mLow.OnRef(ref(0, addr, mem.Load))
		mHigh.OnRef(ref(0, addr, mem.Load))
	}
	mLow.OnMsg(fsb.Message{Kind: fsb.MsgInstRetired, Core: 0, Value: 20000})
	mHigh.OnMsg(fsb.Message{Kind: fsb.MsgInstRetired, Core: 0, Value: 20000})
	if mHigh.Cycles() <= mLow.Cycles() {
		t.Errorf("contended cycles %.0f not above uncontended %.0f",
			mHigh.Cycles(), mLow.Cycles())
	}
}

func TestMessagesDecodedFromRawRefs(t *testing.T) {
	m, _ := New(PentiumIV(1))
	m.OnRef(fsb.EncodeMessage(fsb.Message{Kind: fsb.MsgInstRetired, Core: 0, Value: 777}))
	if m.Instructions() != 777 {
		t.Errorf("instructions = %d, want 777", m.Instructions())
	}
}

func TestSplitAccessServicesBothLines(t *testing.T) {
	m, _ := New(PentiumIV(1))
	m.OnRef(trace.Ref{Addr: 0x4000_003C, Core: 0, Size: 8, Kind: mem.Load})
	if got := m.L1Stats().Misses; got != 2 {
		t.Errorf("straddling access caused %d L1 misses, want 2", got)
	}
	if got := m.L2Stats().Accesses; got != 2 {
		t.Errorf("L2 serviced %d lines, want 2", got)
	}
}

func TestDefaultBusParamsApplied(t *testing.T) {
	cfg := PentiumIV(1) // no bus params set
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.cfg.BusWindowCycles == 0 || m.cfg.BusCapacity == 0 {
		t.Error("bus window defaults not applied")
	}
}

func TestAggregateStats(t *testing.T) {
	m, _ := New(Xeon16(4, 1, nil))
	for c := uint8(0); c < 4; c++ {
		m.OnRef(ref(c, 0x4000_0000+uint64(c)<<20, mem.Store))
	}
	l1 := m.L1Stats()
	if l1.Accesses != 4 || l1.Stores != 4 || l1.Misses != 4 {
		t.Errorf("aggregate L1 stats wrong: %+v", l1)
	}
	_ = cache.Stats{}
}
