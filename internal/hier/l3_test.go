package hier

import (
	"testing"

	"cmpmem/internal/cache"
	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
)

func withL3(cores int, l3Size uint64) Config {
	cfg := Xeon16(cores, 1, nil)
	cfg.L3 = &cache.Config{Name: "L3", Size: l3Size, LineSize: 64, Assoc: 16}
	return cfg
}

func TestL3ServicesL2Misses(t *testing.T) {
	m, err := New(withL3(1, 64<<20))
	if err != nil {
		t.Fatal(err)
	}
	// Stream 8 MB (beyond DL2) twice: second pass hits the L3.
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 8<<20/64; i++ {
			m.OnRef(ref(0, 0x4000_0000+uint64(i)*64, mem.Load))
		}
	}
	l3 := m.L3Stats()
	if l3.Accesses == 0 {
		t.Fatal("L3 never accessed")
	}
	// Second pass should be nearly all L3 hits.
	if l3.Misses > l3.Accesses*6/10 {
		t.Errorf("L3 hit rate too low: %d misses / %d accesses", l3.Misses, l3.Accesses)
	}
}

func TestL3ReducesCycles(t *testing.T) {
	without, _ := New(Xeon16(1, 1, nil))
	with, err := New(withL3(1, 64<<20))
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < 4<<20/64; i++ {
			addr := 0x4000_0000 + uint64(i)*64
			without.OnRef(ref(0, addr, mem.Load))
			with.OnRef(ref(0, addr, mem.Load))
		}
	}
	without.OnMsg(fsb.Message{Kind: fsb.MsgInstRetired, Core: 0, Value: 200_000})
	with.OnMsg(fsb.Message{Kind: fsb.MsgInstRetired, Core: 0, Value: 200_000})
	if with.Cycles() >= without.Cycles() {
		t.Errorf("DRAM L3 did not help: %.0f vs %.0f cycles", with.Cycles(), without.Cycles())
	}
}

func TestL3StatsZeroWithoutL3(t *testing.T) {
	m, _ := New(Xeon16(1, 1, nil))
	if m.L3Stats() != (cache.Stats{}) {
		t.Error("L3 stats should be zero without an L3")
	}
}

func TestL3ConfigValidated(t *testing.T) {
	cfg := withL3(1, 100) // invalid size
	if _, err := New(cfg); err == nil {
		t.Error("invalid L3 accepted")
	}
}

func coherentCfg(cores int) Config {
	cfg := Xeon16(cores, 1, nil)
	cfg.Coherent = true
	return cfg
}

func TestCoherenceInvalidatesRemoteCopies(t *testing.T) {
	m, err := New(coherentCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	addr := uint64(0x4000_0000)
	m.OnRef(ref(0, addr, mem.Load))  // core 0 caches the line
	m.OnRef(ref(1, addr, mem.Load))  // core 1 caches the line
	m.OnRef(ref(0, addr, mem.Store)) // core 0 writes: invalidate core 1
	if m.Invalidations() == 0 {
		t.Fatal("no invalidation recorded")
	}
	// Core 1 must now re-miss.
	before := m.L1Stats().Misses
	m.OnRef(ref(1, addr, mem.Load))
	if m.L1Stats().Misses != before+1 {
		t.Error("remote copy survived the store")
	}
}

func TestCoherencePingPongCostsCycles(t *testing.T) {
	coherent, _ := New(coherentCfg(2))
	plain, _ := New(Xeon16(2, 1, nil))
	for i := 0; i < 1000; i++ {
		core := uint8(i % 2)
		coherent.OnRef(ref(core, 0x4000_0000, mem.Store))
		plain.OnRef(ref(core, 0x4000_0000, mem.Store))
	}
	coherent.OnMsg(fsb.Message{Kind: fsb.MsgInstRetired, Core: 0, Value: 1000})
	plain.OnMsg(fsb.Message{Kind: fsb.MsgInstRetired, Core: 0, Value: 1000})
	if coherent.Cycles() <= plain.Cycles() {
		t.Errorf("write ping-pong free under coherence: %.0f vs %.0f",
			coherent.Cycles(), plain.Cycles())
	}
	if coherent.Invalidations() < 400 {
		t.Errorf("only %d invalidations for 1000 alternating stores", coherent.Invalidations())
	}
}

func TestCoherencePrivateDataUnaffected(t *testing.T) {
	coherent, _ := New(coherentCfg(2))
	plain, _ := New(Xeon16(2, 1, nil))
	// Disjoint per-core streams: coherence must not change anything.
	for i := 0; i < 5000; i++ {
		for core := uint8(0); core < 2; core++ {
			addr := 0x4000_0000 + uint64(core)<<28 + uint64(i%512)*64
			coherent.OnRef(ref(core, addr, mem.Store))
			plain.OnRef(ref(core, addr, mem.Store))
		}
	}
	if coherent.Invalidations() != 0 {
		t.Errorf("%d invalidations on disjoint data", coherent.Invalidations())
	}
	if coherent.L1Stats().Misses != plain.L1Stats().Misses {
		t.Error("coherence changed miss counts of private streams")
	}
}

func TestSharerMask(t *testing.T) {
	var s sharerMask
	s.set(5)
	s.set(97)
	if s.empty() {
		t.Fatal("mask with sharers reports empty")
	}
	others := s.othersThan(5)
	if others[0] != 0 || others[1] == 0 {
		t.Errorf("othersThan(5) wrong: %v", others)
	}
	if !s.othersThan(5).othersThan(97).empty() {
		t.Error("removing both sharers should empty the mask")
	}
	s.clearAll(3)
	if s.othersThan(3) != (sharerMask{}) {
		t.Error("clearAll should leave only the writer")
	}
}
