// Package hier models a per-core cache hierarchy (DL1 + DL2) in front of
// main memory, with an in-order timing model. It plays two roles from
// the paper:
//
//   - the VTune-instrumented Pentium 4 (8 KB L1, 512 KB L2) that produced
//     Table 2's single-threaded workload characteristics (IPC, instruction
//     mix, per-level misses per 1000 instructions); and
//   - the 16-way Xeon SMP used for the Figure 8 hardware-prefetching
//     study, where per-core stride prefetchers compete with demand misses
//     for front-side-bus bandwidth.
//
// The timing model is deliberately simple and documented: a base CPI for
// issue/execute, plus a per-miss stall, with streaming (unit-stride)
// misses charged a reduced stall to reflect the memory-level parallelism
// of pipelined stream accesses. Absolute IPC therefore depends on this
// latency table, but relative orderings across workloads follow from the
// measured miss behaviour.
package hier

import (
	"fmt"

	"cmpmem/internal/cache"
	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/prefetch"
	"cmpmem/internal/trace"
	"cmpmem/internal/workloads"
)

// Latencies is the timing table, in core cycles.
type Latencies struct {
	// BaseCPI is the no-miss cycles per instruction (issue width).
	BaseCPI float64
	// L2Hit is the extra stall for an L1 miss that hits in L2.
	L2Hit float64
	// Mem is the extra stall for an L2 miss serviced by memory.
	Mem float64
	// StreamOverlap divides the stall of a unit-stride (streaming) miss,
	// modelling the MLP of pipelined sequential accesses.
	StreamOverlap float64
	// L3Hit is the extra stall for a DL2 miss that hits the shared L3
	// (only meaningful when Config.L3 is set). An SRAM LLC sits near
	// 40 cycles; a DRAM cache near 120 — still far below Mem.
	L3Hit float64
	// PfHit is the stall charged for the first demand hit on a
	// prefetched line: prefetches are not perfectly timely, so they
	// hide most — not all — of a miss (the reason the paper's measured
	// gains top out near 33% rather than at the full miss latency).
	PfHit float64
	// QueueFactor scales added memory latency under bus contention:
	// extra = Mem * QueueFactor * max(0, utilization-queueFloor).
	QueueFactor float64
	// InvCost is the stall charged to a store that must invalidate
	// remote copies (Coherent mode only).
	InvCost float64
}

// queueFloor is the bus utilization at which queueing delay begins.
const queueFloor = 0.4

// DefaultLatencies approximates the paper's 3 GHz-era machines.
func DefaultLatencies() Latencies {
	return Latencies{BaseCPI: 0.8, L2Hit: 18, L3Hit: 120, Mem: 400,
		StreamOverlap: 4, PfHit: 70, QueueFactor: 2, InvCost: 40}
}

// pfDropUtil is the bus utilization above which prefetches are dropped.
const pfDropUtil = 0.75

// Config describes the modelled machine.
type Config struct {
	// Cores is the number of cores, each with private DL1 and DL2.
	Cores int
	// DL1 and DL2 are per-core cache configurations.
	DL1 cache.Config
	DL2 cache.Config
	// Lat is the timing table.
	Lat Latencies
	// L3, if non-nil, adds a shared last-level cache between the
	// per-core DL2s and memory. Combined with Lat.L3Hit it models the
	// paper's proposed DRAM-based large LLCs (eDRAM / off-die DRAM /
	// 3D-stacked): huge capacity, hit latency between SRAM and DRAM.
	L3 *cache.Config
	// Coherent enables invalidation-based coherence between the
	// private hierarchies: a store invalidates the line in every other
	// core's DL1/DL2 (directory-tracked, conservatively). The paper's
	// Dragonhead emulated a shared LLC and did not model private-cache
	// coherence; this switch quantifies what that omission hides.
	Coherent bool
	// Prefetch, if non-nil, enables a per-core stride prefetcher that
	// trains on DL2 accesses and fills DL2, subject to bus bandwidth.
	Prefetch *prefetch.Config
	// BusWindowCycles is the sliding-window size for bus utilization
	// accounting; BusCapacity is the transfer cycles available per
	// window (shared across cores).
	BusWindowCycles uint64
	BusCapacity     uint64
}

// scaledCache rounds paperBytes*scale down to a power of two, floored.
// A zero scale means "harness default", matching workloads.Params.
func scaledCache(paperBytes uint64, scale float64, floor uint64) uint64 {
	if scale == 0 {
		scale = workloads.DefaultScale
	}
	if scale < 0 || scale > 1 {
		scale = 1
	}
	target := float64(paperBytes) * scale
	size := floor
	for float64(size*2) <= target {
		size *= 2
	}
	return size
}

// PentiumIV returns the Table 2 profiling machine: 8 KB / 4-way DL1 and
// 512 KB / 8-way DL2, 64 B lines, one core. The DL2 scales with the
// workload scale so the cache-to-working-set proportions of the paper's
// measurements are preserved (the DL1 stays full size: the hot inner
// structures of the kernels do not shrink with the footprint scale).
func PentiumIV(scale float64) Config {
	return Config{
		Cores: 1,
		DL1:   cache.Config{Name: "DL1", Size: 8 << 10, LineSize: 64, Assoc: 4},
		DL2: cache.Config{Name: "DL2", Size: scaledCache(512<<10, scale, 8<<10),
			LineSize: 64, Assoc: 8},
		Lat: DefaultLatencies(),
	}
}

// Xeon16 returns the Figure 8 machine: cores × (16 KB DL1 + 1 MB DL2,
// scaled) sharing one front-side bus.
func Xeon16(cores int, scale float64, pf *prefetch.Config) Config {
	return Config{
		Cores: cores,
		DL1:   cache.Config{Name: "DL1", Size: 16 << 10, LineSize: 64, Assoc: 4},
		DL2: cache.Config{Name: "DL2", Size: scaledCache(1<<20, scale, 16<<10),
			LineSize: 64, Assoc: 8},
		Lat:             DefaultLatencies(),
		Prefetch:        pf,
		BusWindowCycles: 10_000,
		BusCapacity:     60_000,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Cores < 1 || c.Cores > cache.MaxCores {
		return fmt.Errorf("hier: cores must be in [1,%d], got %d", cache.MaxCores, c.Cores)
	}
	if err := c.DL1.Validate(); err != nil {
		return err
	}
	if err := c.DL2.Validate(); err != nil {
		return err
	}
	if c.L3 != nil {
		if err := c.L3.Validate(); err != nil {
			return err
		}
	}
	if c.Prefetch != nil {
		if err := c.Prefetch.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// missStreams is the number of concurrent miss streams whose MLP the
// timing model tracks per core (hardware MSHR/stream buffers).
const missStreams = 4

// coreState is the private hierarchy of one core.
type coreState struct {
	l1      *cache.Cache
	l2      *cache.Cache
	pf      *prefetch.Prefetcher
	streams [missStreams]uint64 // recent miss line numbers
	nextStr int
	pfBuf   []mem.Addr
}

// Machine is the modelled multiprocessor. It implements fsb.Snooper so
// it can sit on the same bus as the Dragonhead emulator.
type Machine struct {
	cfg   Config
	cores []*coreState
	l3    *cache.Cache // shared LLC, nil unless Config.L3 is set
	bw    *fsb.Bandwidth

	stall float64 // accumulated stall cycles
	inst  [cache.MaxCores]uint64

	// Bus windowing: wall-clock time advances with every memory
	// instruction (cores run concurrently, so each reference represents
	// CPI/cores machine cycles); transfers consume window capacity.
	timePerRef   float64
	timeNow      float64
	windowStart  float64
	windowDemand uint64 // demand transfer cycles this window
	windowPf     uint64 // prefetch transfer cycles this window

	pfDropped   uint64
	pfIssued    uint64
	l2LineShift uint

	utilSum     float64
	utilSamples uint64

	// Coherence directory: line number -> bitmask of cores that may
	// hold the line. Conservative (sharers are never removed on silent
	// eviction; stale entries self-correct because invalidating a
	// non-resident line is a no-op).
	directory     map[uint64]sharerMask
	invalidations uint64
}

// sharerMask is a 128-core bitset.
type sharerMask [2]uint64

func (s *sharerMask) set(core uint8)      { s[core>>6] |= 1 << (core & 63) }
func (s *sharerMask) clearAll(core uint8) { *s = sharerMask{}; s.set(core) }
func (s sharerMask) othersThan(core uint8) sharerMask {
	s[core>>6] &^= 1 << (core & 63)
	return s
}
func (s sharerMask) empty() bool { return s[0] == 0 && s[1] == 0 }

// New builds the machine.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.BusWindowCycles == 0 {
		cfg.BusWindowCycles = 10_000
	}
	if cfg.BusCapacity == 0 {
		cfg.BusCapacity = 6 * cfg.BusWindowCycles
	}
	m := &Machine{cfg: cfg, bw: fsb.NewBandwidth(8, 4)}
	if cfg.L3 != nil {
		l3, err := cache.New(*cfg.L3)
		if err != nil {
			return nil, err
		}
		m.l3 = l3
	}
	m.timePerRef = 2.0 / float64(cfg.Cores)
	for s := cfg.DL2.LineSize; s > 1; s >>= 1 {
		m.l2LineShift++
	}
	for i := 0; i < cfg.Cores; i++ {
		cs := &coreState{}
		var err error
		if cs.l1, err = cache.New(cfg.DL1); err != nil {
			return nil, err
		}
		if cs.l2, err = cache.New(cfg.DL2); err != nil {
			return nil, err
		}
		if cfg.Prefetch != nil {
			if cs.pf, err = prefetch.New(*cfg.Prefetch); err != nil {
				return nil, err
			}
		}
		m.cores = append(m.cores, cs)
	}
	return m, nil
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// OnRef implements fsb.Snooper: one memory instruction from some core.
func (m *Machine) OnRef(r trace.Ref) {
	if fsb.IsMessage(r) {
		if msg, ok := fsb.DecodeMessage(r); ok {
			m.OnMsg(msg)
		}
		return
	}
	if int(r.Core) >= len(m.cores) {
		return
	}
	// Advance wall time and roll the bus window.
	m.timeNow += m.timePerRef
	if m.timeNow-m.windowStart >= float64(m.cfg.BusWindowCycles) {
		m.windowStart = m.timeNow
		m.windowDemand = 0
		m.windowPf = 0
	}
	cs := m.cores[r.Core]
	// Touch each line of the access individually so that exactly the
	// missing lines — and only those — are serviced through L2 (a
	// straddling access may hit in its first line and miss in its
	// second).
	lineSize := m.cfg.DL1.LineSize
	first := cs.l1.LineAddr(r.Addr)
	last := cs.l1.LineAddr(r.Addr + mem.Addr(r.Size) - 1)
	for lineAddr := first; lineAddr <= last; lineAddr += mem.Addr(lineSize) {
		if m.cfg.Coherent {
			m.coherence(lineAddr, r.Kind, r.Core)
		}
		if cs.l1.Touch(lineAddr, r.Kind, r.Core) {
			m.serviceL2(cs, lineAddr, r.Kind, r.Core)
		}
	}
}

// coherence applies the invalidation protocol for one line access: a
// store removes the line from every other core's private hierarchy and
// pays the invalidation round trip; any access records the issuer as a
// sharer.
func (m *Machine) coherence(lineAddr mem.Addr, kind mem.Kind, core uint8) {
	if m.directory == nil {
		m.directory = make(map[uint64]sharerMask, 1<<16)
	}
	blk := uint64(lineAddr) >> m.l2LineShift
	mask := m.directory[blk]
	if kind == mem.Store {
		if others := mask.othersThan(core); !others.empty() {
			invalidated := false
			for c := range m.cores {
				if uint8(c) == core {
					continue
				}
				if others[c>>6]&(1<<(uint(c)&63)) == 0 {
					continue
				}
				r1, _ := m.cores[c].l1.Invalidate(lineAddr)
				r2, _ := m.cores[c].l2.Invalidate(lineAddr)
				if r1 || r2 {
					invalidated = true
					m.invalidations++
				}
			}
			if invalidated {
				m.stall += m.cfg.Lat.InvCost
			}
		}
		mask.clearAll(core)
	} else {
		mask.set(core)
	}
	m.directory[blk] = mask
}

// Invalidations returns the coherence-invalidation count (zero unless
// Coherent mode is on).
func (m *Machine) Invalidations() uint64 { return m.invalidations }

// serviceL2 handles one L1-miss line at L2 and, on L2 miss, at memory,
// charging stall cycles and training the prefetcher.
func (m *Machine) serviceL2(cs *coreState, lineAddr mem.Addr, kind mem.Kind, core uint8) {
	if cs.pf != nil {
		cs.pfBuf = cs.pf.Train(core, lineAddr, cs.pfBuf[:0])
	}
	miss, pfHit := cs.l2.TouchPF(lineAddr, kind, core)
	if miss && m.l3 != nil && !m.l3.Touch(lineAddr, kind, core) {
		// DL2 miss serviced by the shared L3 (SRAM or DRAM LLC): no
		// memory access, no front-side-bus transfer.
		m.stall += m.cfg.Lat.L3Hit
		return
	}
	if miss {
		blk := uint64(lineAddr) >> m.l2LineShift
		stall := m.cfg.Lat.Mem
		// A miss adjacent to any tracked stream overlaps with the
		// pipelined fetches of that stream (MLP).
		overlapped := false
		for i, s := range cs.streams {
			if s != 0 && (blk == s+1 || blk+1 == s) {
				stall /= m.cfg.Lat.StreamOverlap
				cs.streams[i] = blk
				overlapped = true
				break
			}
		}
		if !overlapped {
			cs.streams[cs.nextStr] = blk
			cs.nextStr = (cs.nextStr + 1) % missStreams
		}
		// Bus contention: queueing delay grows with utilization.
		util := m.busUtil()
		m.utilSum += util
		m.utilSamples++
		if util > queueFloor {
			stall += m.cfg.Lat.Mem * m.cfg.Lat.QueueFactor * (util - queueFloor)
		}
		m.stall += stall
		m.windowDemand += m.bw.Demand(m.cfg.DL2.LineSize)
	} else if pfHit {
		m.stall += m.cfg.Lat.PfHit
	} else {
		m.stall += m.cfg.Lat.L2Hit
	}
	// Issue prefetches predicted by this access, bandwidth permitting.
	// Prefetching converts misses into earlier transfers of the same
	// lines — it does not reduce bus occupancy — so the drop decision
	// uses total occupancy: on a saturated bus there is simply no slot
	// for a prefetch (the Figure 8 SNP/MDS effect).
	if cs.pf != nil {
		for _, p := range cs.pfBuf {
			if m.busUtil() >= pfDropUtil {
				m.pfDropped++
				continue
			}
			if cs.l2.Fill(p, core) {
				m.pfIssued++
				m.windowPf += m.bw.Prefetch(m.cfg.DL2.LineSize)
			}
		}
		cs.pfBuf = cs.pfBuf[:0]
	}
}

// busUtil returns total (demand + prefetch) utilization of the current
// bus window.
func (m *Machine) busUtil() float64 {
	return float64(m.windowDemand+m.windowPf) / float64(m.cfg.BusCapacity)
}

// OnMsg implements fsb.Snooper.
func (m *Machine) OnMsg(msg fsb.Message) {
	if msg.Kind == fsb.MsgInstRetired && int(msg.Core) < cache.MaxCores {
		m.inst[msg.Core] = msg.Value
	}
}

// Instructions returns total retired instructions seen so far.
func (m *Machine) Instructions() uint64 {
	var n uint64
	for _, v := range m.inst {
		n += v
	}
	return n
}

// Cycles returns the modelled execution time in core cycles.
func (m *Machine) Cycles() float64 {
	return float64(m.Instructions())*m.cfg.Lat.BaseCPI + m.stall
}

// IPC returns instructions per cycle.
func (m *Machine) IPC() float64 {
	c := m.Cycles()
	if c == 0 {
		return 0
	}
	return float64(m.Instructions()) / c
}

// L1Stats aggregates DL1 counters across cores.
func (m *Machine) L1Stats() cache.Stats {
	return m.aggregate(func(cs *coreState) *cache.Cache { return cs.l1 })
}

// L2Stats aggregates DL2 counters across cores.
func (m *Machine) L2Stats() cache.Stats {
	return m.aggregate(func(cs *coreState) *cache.Cache { return cs.l2 })
}

// L3Stats returns the shared LLC's counters (zero value when no L3 is
// configured).
func (m *Machine) L3Stats() cache.Stats {
	if m.l3 == nil {
		return cache.Stats{}
	}
	return *m.l3.Stats()
}

func (m *Machine) aggregate(pick func(*coreState) *cache.Cache) cache.Stats {
	var out cache.Stats
	for _, cs := range m.cores {
		s := pick(cs).Stats()
		out.Accesses += s.Accesses
		out.Misses += s.Misses
		out.Loads += s.Loads
		out.Stores += s.Stores
		out.LoadMisses += s.LoadMisses
		out.Writebacks += s.Writebacks
		out.Evictions += s.Evictions
	}
	return out
}

// AvgBusUtil returns the mean bus-window utilization observed at demand
// misses (a contention diagnostic for the Figure 8 study).
func (m *Machine) AvgBusUtil() float64 {
	if m.utilSamples == 0 {
		return 0
	}
	return m.utilSum / float64(m.utilSamples)
}

// PrefetcherStats aggregates the detector-level counters across cores
// (predictions made, streams detected), as opposed to Prefetches(),
// which reports fills that actually reached the cache.
func (m *Machine) PrefetcherStats() prefetch.Stats {
	var out prefetch.Stats
	for _, cs := range m.cores {
		if cs.pf != nil {
			s := cs.pf.Stats()
			out.Trainings += s.Trainings
			out.Issued += s.Issued
			out.Streams += s.Streams
		}
	}
	return out
}

// PrefetchReport summarizes prefetcher effectiveness.
type PrefetchReport struct {
	Issued  uint64
	Dropped uint64
}

// Prefetches returns issue/drop counts (zero when prefetch is disabled).
func (m *Machine) Prefetches() PrefetchReport {
	return PrefetchReport{Issued: m.pfIssued, Dropped: m.pfDropped}
}
