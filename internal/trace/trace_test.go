package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cmpmem/internal/mem"
)

func TestCodecRoundTripSmall(t *testing.T) {
	refs := []Ref{
		{Addr: 0x1000, Core: 0, Size: 8, Kind: mem.Load},
		{Addr: 0xFFFF_FFFF_FFFF, Core: 31, Size: 1, Kind: mem.Store},
		{Addr: 0, Core: 255, Size: 255, Kind: mem.Load},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != uint64(len(refs)) {
		t.Errorf("Count = %d, want %d", w.Count(), len(refs))
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range refs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Errorf("record %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

// TestCodecRoundTripProperty: any sequence of records round-trips.
func TestCodecRoundTripProperty(t *testing.T) {
	check := func(addrs []uint64, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		want := make([]Ref, len(addrs))
		for i, a := range addrs {
			want[i] = Ref{
				Addr: mem.Addr(a),
				Core: uint8(rng.Intn(256)),
				Size: uint8(rng.Intn(255) + 1),
				Kind: mem.Kind(rng.Intn(2)),
			}
			if err := w.Write(want[i]); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for _, wr := range want {
			got, err := r.Read()
			if err != nil || got != wr {
				return false
			}
		}
		_, err = r.Read()
		return err == io.EOF
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	_, err := NewReader(strings.NewReader("NOTATRACEFILE###"))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("got %v, want ErrBadMagic", err)
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Write(Ref{Addr: 1, Size: 8})
	w.Flush()
	data := buf.Bytes()[:buf.Len()-5] // chop mid-record
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil {
		t.Error("expected error on truncated record")
	}
}

func TestWriterStickyError(t *testing.T) {
	w, err := NewWriter(&failAfter{n: 1})
	if err != nil {
		t.Fatal(err)
	}
	var last error
	for i := 0; i < 1<<14; i++ {
		last = w.Write(Ref{Addr: mem.Addr(i), Size: 8})
		if last != nil {
			break
		}
	}
	if last == nil {
		last = w.Flush()
	}
	if last == nil {
		t.Fatal("expected write failure")
	}
	if err := w.Write(Ref{}); err == nil {
		t.Error("error must be sticky")
	}
}

// failAfter errors after n successful writes.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("boom")
	}
	f.n--
	return len(p), nil
}

func TestBuffer(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 10; i++ {
		b.Append(Ref{Addr: mem.Addr(i)})
	}
	if b.Len() != 10 {
		t.Fatalf("Len = %d, want 10", b.Len())
	}
	if b.Refs()[9].Addr != 9 {
		t.Error("wrong tail element")
	}
	b.Reset()
	if b.Len() != 0 {
		t.Error("Reset did not empty buffer")
	}
}

func TestRefString(t *testing.T) {
	s := Ref{Addr: 0x40, Core: 3, Size: 8, Kind: mem.Store}.String()
	if !strings.Contains(s, "core3") || !strings.Contains(s, "store") {
		t.Errorf("unhelpful Ref string: %q", s)
	}
}
