// Package trace defines the canonical memory-reference record exchanged
// between the execution engine and the cache emulator, plus compact
// binary codecs so traces can be captured once (cmd/tracegen, the
// memoized trace store) and replayed through many cache configurations
// (cmd/cachesim, core.ReplayBus).
//
// Two wire formats share one file header ("CMPT" + version byte):
//
//   - v1 is the original fixed 16-byte record: 8-byte address plus
//     core/size/kind bytes and padding. Simple, seekable, alignment-
//     friendly.
//   - v2 is a delta-varint encoding: one packed header byte (kind,
//     core-elision, size-elision flags), optional core and size bytes,
//     and the reference address as a zigzag varint delta against the
//     issuing core's previous address. Because the DEX scheduler emits
//     long same-core slices of spatially local references, typical
//     records shrink to 2-4 bytes — a 4-8x footprint reduction that
//     lets full-scale streams stay resident in the trace store.
//
// NewReader auto-detects the version, so every consumer reads both.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cmpmem/internal/mem"
)

// Ref is one memory reference as observed on the front-side bus.
type Ref struct {
	// Addr is the guest physical address.
	Addr mem.Addr
	// Core is the virtual core that issued the reference.
	Core uint8
	// Size is the access size in bytes (1..255).
	Size uint8
	// Kind is load or store.
	Kind mem.Kind
}

// String renders the reference for diagnostics.
func (r Ref) String() string {
	return fmt.Sprintf("core%-2d %-5s %#x/%d", r.Core, r.Kind, uint64(r.Addr), r.Size)
}

// Version1 and Version2 identify the two wire formats.
const (
	Version1 = 1
	Version2 = 2
)

// magicFor builds the 8-byte file header for a codec version.
func magicFor(version byte) [8]byte {
	return [8]byte{'C', 'M', 'P', 'T', version, 0, 0, 0}
}

// recSizeV1 is the v1 on-disk record size: 8 (addr) + 1 (core) +
// 1 (size) + 1 (kind) + 5 reserved/padding = 16 bytes, keeping records
// naturally aligned and the format stable.
const recSizeV1 = 16

// maxRecSizeV2 bounds a v2 record: header + core + size + 10-byte
// varint.
const maxRecSizeV2 = 13

// v2 header-byte flags. The remaining bits are reserved and must be
// zero; the reader rejects records that set them, so corrupt or
// misdetected streams fail loudly instead of decoding to garbage.
const (
	hdrStore    = 1 << 0 // kind is store (load otherwise)
	hdrSameCore = 1 << 1 // core byte elided: same core as previous record
	hdrSize8    = 1 << 2 // size byte elided: the common 8-byte access
	hdrReserved = ^byte(hdrStore | hdrSameCore | hdrSize8)
)

// ErrBadMagic reports a trace stream that does not begin with the
// expected file header.
var ErrBadMagic = errors.New("trace: bad magic (not a cmpmem trace file)")

// Writer encodes Refs to an io.Writer in the selected codec version.
type Writer struct {
	w       *bufio.Writer
	version byte
	buf     [recSizeV1]byte
	count   uint64
	err     error

	// v2 delta state: last address per issuing core, and the previous
	// record's core for the same-core elision.
	last     [256]mem.Addr
	prevCore uint8
}

// NewWriter writes a v1 file header and returns a Writer (the original
// fixed 16-byte format, kept for compatibility).
func NewWriter(w io.Writer) (*Writer, error) {
	return newWriter(w, Version1)
}

// NewWriterV2 writes a v2 file header and returns a delta-varint
// Writer. v2 traces are typically 4-8x smaller than v1 and are the
// default capture format.
func NewWriterV2(w io.Writer) (*Writer, error) {
	return newWriter(w, Version2)
}

func newWriter(w io.Writer, version byte) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	magic := magicFor(version)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw, version: version}, nil
}

// Version returns the codec version being written.
func (w *Writer) Version() int { return int(w.version) }

// Write appends one record. Errors are sticky.
func (w *Writer) Write(r Ref) error {
	if w.err != nil {
		return w.err
	}
	var err error
	if w.version == Version2 {
		err = w.writeV2(r)
	} else {
		err = w.writeV1(r)
	}
	if err != nil {
		w.err = err
		return err
	}
	w.count++
	return nil
}

func (w *Writer) writeV1(r Ref) error {
	binary.LittleEndian.PutUint64(w.buf[0:8], uint64(r.Addr))
	w.buf[8] = r.Core
	w.buf[9] = r.Size
	w.buf[10] = byte(r.Kind)
	w.buf[11], w.buf[12], w.buf[13], w.buf[14], w.buf[15] = 0, 0, 0, 0, 0
	if _, err := w.w.Write(w.buf[:recSizeV1]); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	return nil
}

func (w *Writer) writeV2(r Ref) error {
	if r.Kind > mem.Store {
		return fmt.Errorf("trace: v2 codec cannot encode kind %d (load/store only)", r.Kind)
	}
	hdr := byte(0)
	if r.Kind == mem.Store {
		hdr |= hdrStore
	}
	n := 1
	if r.Core == w.prevCore {
		hdr |= hdrSameCore
	} else {
		w.buf[n] = r.Core
		n++
	}
	if r.Size == 8 {
		hdr |= hdrSize8
	} else {
		w.buf[n] = r.Size
		n++
	}
	delta := int64(uint64(r.Addr) - uint64(w.last[r.Core]))
	zig := uint64(delta)<<1 ^ uint64(delta>>63)
	n += binary.PutUvarint(w.buf[n:], zig)
	w.buf[0] = hdr
	if _, err := w.w.Write(w.buf[:n]); err != nil {
		return fmt.Errorf("trace: writing record: %w", err)
	}
	w.last[r.Core] = r.Addr
	w.prevCore = r.Core
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader decodes Refs from an io.Reader, auto-detecting the codec
// version from the file header.
type Reader struct {
	r       *bufio.Reader
	version byte
	buf     [recSizeV1]byte

	// v2 delta state, mirroring the Writer.
	last     [256]mem.Addr
	prevCore uint8
}

// NewReader validates the file header, detects the codec version, and
// returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	switch {
	case hdr == magicFor(Version1):
		return &Reader{r: br, version: Version1}, nil
	case hdr == magicFor(Version2):
		return &Reader{r: br, version: Version2}, nil
	}
	return nil, ErrBadMagic
}

// Version returns the detected codec version.
func (r *Reader) Version() int { return int(r.version) }

// Read returns the next record, or io.EOF at end of trace.
func (r *Reader) Read() (Ref, error) {
	if r.version == Version2 {
		return r.readV2()
	}
	return r.readV1()
}

func (r *Reader) readV1() (Ref, error) {
	if _, err := io.ReadFull(r.r, r.buf[:recSizeV1]); err != nil {
		if err == io.EOF {
			return Ref{}, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Ref{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		return Ref{}, fmt.Errorf("trace: reading record: %w", err)
	}
	ref, err := decodeV1Record(r.buf[:recSizeV1])
	if err != nil {
		return Ref{}, err
	}
	return ref, nil
}

// decodeV1Record validates and decodes one fixed-width v1 record. The
// kind byte and the five reserved bytes are checked so corrupt or
// misaligned streams fail loudly instead of decoding to garbage refs.
func decodeV1Record(b []byte) (Ref, error) {
	if k := mem.Kind(b[10]); k > mem.Store {
		return Ref{}, fmt.Errorf("trace: corrupt v1 record (kind byte %d)", b[10])
	}
	if b[11]|b[12]|b[13]|b[14]|b[15] != 0 {
		return Ref{}, fmt.Errorf("trace: corrupt v1 record (reserved bytes set)")
	}
	return Ref{
		Addr: mem.Addr(binary.LittleEndian.Uint64(b[0:8])),
		Core: b[8],
		Size: b[9],
		Kind: mem.Kind(b[10]),
	}, nil
}

func (r *Reader) readV2() (Ref, error) {
	hdr, err := r.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return Ref{}, io.EOF
		}
		return Ref{}, fmt.Errorf("trace: reading record: %w", err)
	}
	if hdr&hdrReserved != 0 {
		return Ref{}, fmt.Errorf("trace: corrupt v2 record (reserved header bits %#x set)", hdr&hdrReserved)
	}
	core := r.prevCore
	if hdr&hdrSameCore == 0 {
		core, err = r.r.ReadByte()
		if err != nil {
			return Ref{}, truncated(err)
		}
	}
	size := uint8(8)
	if hdr&hdrSize8 == 0 {
		size, err = r.r.ReadByte()
		if err != nil {
			return Ref{}, truncated(err)
		}
	}
	zig, err := binary.ReadUvarint(r.r)
	if err != nil {
		return Ref{}, truncated(err)
	}
	delta := int64(zig>>1) ^ -int64(zig&1)
	addr := mem.Addr(uint64(r.last[core]) + uint64(delta))
	kind := mem.Load
	if hdr&hdrStore != 0 {
		kind = mem.Store
	}
	r.last[core] = addr
	r.prevCore = core
	return Ref{Addr: addr, Core: core, Size: size, Kind: kind}, nil
}

// truncated normalizes a mid-record read error.
func truncated(err error) error {
	if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("trace: truncated record: %w", io.ErrUnexpectedEOF)
	}
	return fmt.Errorf("trace: reading record: %w", err)
}

// ReadAll decodes an entire trace stream into memory (auto-detecting
// the version) — the load path of the memoized trace store.
func ReadAll(rd io.Reader) ([]Ref, error) {
	r, err := NewReader(rd)
	if err != nil {
		return nil, err
	}
	refs := make([]Ref, 0, 1<<16)
	for {
		ref, err := r.Read()
		if err == io.EOF {
			return refs, nil
		}
		if err != nil {
			return nil, err
		}
		refs = append(refs, ref)
	}
}

// Player iterates an in-memory captured stream for replay. It performs
// no allocation per reference — the replay engine's inner loop is a
// slice walk — and can be rewound, so one captured execution drives any
// number of cache configurations ("execute once, replay many").
type Player struct {
	refs []Ref
	pos  int
}

// NewPlayer returns a Player over refs. The slice is not copied; the
// caller must not mutate it while replaying.
func NewPlayer(refs []Ref) *Player { return &Player{refs: refs} }

// Len returns the total stream length.
func (p *Player) Len() int { return len(p.refs) }

// Remaining returns how many references are left to play.
func (p *Player) Remaining() int { return len(p.refs) - p.pos }

// Next returns the next reference, or ok=false at end of stream.
func (p *Player) Next() (Ref, bool) {
	if p.pos >= len(p.refs) {
		return Ref{}, false
	}
	r := p.refs[p.pos]
	p.pos++
	return r, true
}

// Rewind resets the Player to the start of the stream.
func (p *Player) Rewind() { p.pos = 0 }

// StreamPlayer decodes an encoded trace stream (v1 or v2, including the
// file header) directly from a byte slice: the memoized trace store
// keeps streams v2-compressed in memory (~4x smaller than []Ref), and
// the replay engine walks them through this decoder with no per-record
// allocation and no io.Reader indirection.
type StreamPlayer struct {
	data    []byte
	pos     int
	version byte
	err     error

	// v2 delta state, mirroring the Writer.
	last     [256]mem.Addr
	prevCore uint8
}

// NewStreamPlayer validates the header and returns a player positioned
// at the first record.
func NewStreamPlayer(data []byte) (*StreamPlayer, error) {
	if len(data) < 8 {
		return nil, ErrBadMagic
	}
	var hdr [8]byte
	copy(hdr[:], data)
	var version byte
	switch {
	case hdr == magicFor(Version1):
		version = Version1
	case hdr == magicFor(Version2):
		version = Version2
	default:
		return nil, ErrBadMagic
	}
	return &StreamPlayer{data: data, pos: 8, version: version}, nil
}

// Version returns the detected codec version.
func (p *StreamPlayer) Version() int { return int(p.version) }

// Err returns the decode error that terminated playback, or nil after a
// clean end of stream.
func (p *StreamPlayer) Err() error { return p.err }

// Rewind resets the player to the first record.
func (p *StreamPlayer) Rewind() {
	p.pos = 8
	p.err = nil
	p.last = [256]mem.Addr{}
	p.prevCore = 0
}

// Next returns the next record, or ok=false at end of stream or on a
// decode error (check Err to distinguish).
func (p *StreamPlayer) Next() (Ref, bool) {
	if p.err != nil || p.pos >= len(p.data) {
		return Ref{}, false
	}
	if p.version == Version1 {
		if p.pos+recSizeV1 > len(p.data) {
			p.err = fmt.Errorf("trace: truncated record: %w", io.ErrUnexpectedEOF)
			return Ref{}, false
		}
		b := p.data[p.pos:]
		p.pos += recSizeV1
		ref, err := decodeV1Record(b)
		if err != nil {
			p.err = err
			return Ref{}, false
		}
		return ref, true
	}
	hdr := p.data[p.pos]
	p.pos++
	if hdr&hdrReserved != 0 {
		p.err = fmt.Errorf("trace: corrupt v2 record (reserved header bits %#x set)", hdr&hdrReserved)
		return Ref{}, false
	}
	core := p.prevCore
	if hdr&hdrSameCore == 0 {
		if p.pos >= len(p.data) {
			return Ref{}, p.truncate()
		}
		core = p.data[p.pos]
		p.pos++
	}
	size := uint8(8)
	if hdr&hdrSize8 == 0 {
		if p.pos >= len(p.data) {
			return Ref{}, p.truncate()
		}
		size = p.data[p.pos]
		p.pos++
	}
	zig, n := binary.Uvarint(p.data[p.pos:])
	if n == 0 {
		return Ref{}, p.truncate()
	}
	if n < 0 {
		p.err = fmt.Errorf("trace: corrupt v2 record (address delta varint overflows 64 bits)")
		return Ref{}, false
	}
	p.pos += n
	delta := int64(zig>>1) ^ -int64(zig&1)
	addr := mem.Addr(uint64(p.last[core]) + uint64(delta))
	kind := mem.Load
	if hdr&hdrStore != 0 {
		kind = mem.Store
	}
	p.last[core] = addr
	p.prevCore = core
	return Ref{Addr: addr, Core: core, Size: size, Kind: kind}, true
}

// truncate records a mid-record end of data and stops playback.
func (p *StreamPlayer) truncate() bool {
	p.err = fmt.Errorf("trace: truncated record: %w", io.ErrUnexpectedEOF)
	return false
}

// NextBatch decodes up to len(dst) records into dst and returns how
// many were produced. It is the replay hot path's entry point: the v2
// decode loop runs with the cursor and the same-core state in locals,
// so the per-record cost is the varint decode itself rather than a call
// into Next per record. A short return means end of stream or a decode
// error (check Err). Record-for-record, the output is identical to
// repeated Next calls.
func (p *StreamPlayer) NextBatch(dst []Ref) int {
	if p.version == Version1 {
		n := 0
		for n < len(dst) {
			r, ok := p.Next()
			if !ok {
				break
			}
			dst[n] = r
			n++
		}
		return n
	}
	if p.err != nil {
		return 0
	}
	data := p.data
	pos := p.pos
	core := p.prevCore
	n := 0
	for n < len(dst) && pos < len(data) {
		hdr := data[pos]
		pos++
		if hdr&hdrReserved != 0 {
			p.err = fmt.Errorf("trace: corrupt v2 record (reserved header bits %#x set)", hdr&hdrReserved)
			break
		}
		if hdr&hdrSameCore == 0 {
			if pos >= len(data) {
				p.truncate()
				break
			}
			core = data[pos]
			pos++
		}
		size := uint8(8)
		if hdr&hdrSize8 == 0 {
			if pos >= len(data) {
				p.truncate()
				break
			}
			size = data[pos]
			pos++
		}
		zig, vn := binary.Uvarint(data[pos:])
		if vn == 0 {
			p.truncate()
			break
		}
		if vn < 0 {
			p.err = fmt.Errorf("trace: corrupt v2 record (address delta varint overflows 64 bits)")
			break
		}
		pos += vn
		delta := int64(zig>>1) ^ -int64(zig&1)
		addr := mem.Addr(uint64(p.last[core]) + uint64(delta))
		kind := mem.Load
		if hdr&hdrStore != 0 {
			kind = mem.Store
		}
		p.last[core] = addr
		dst[n] = Ref{Addr: addr, Core: core, Size: size, Kind: kind}
		n++
	}
	p.pos = pos
	p.prevCore = core
	return n
}

// Buffer is an in-memory trace used by tests and by the DEX scheduler
// to batch one time slice of references before handing them to the bus.
type Buffer struct {
	refs []Ref
}

// NewBuffer returns a Buffer with the given capacity hint.
func NewBuffer(capHint int) *Buffer {
	return &Buffer{refs: make([]Ref, 0, capHint)}
}

// Append adds one reference.
func (b *Buffer) Append(r Ref) { b.refs = append(b.refs, r) }

// Len returns the number of buffered references.
func (b *Buffer) Len() int { return len(b.refs) }

// Refs returns the underlying slice (valid until the next Reset).
func (b *Buffer) Refs() []Ref { return b.refs }

// Reset empties the buffer, retaining capacity.
func (b *Buffer) Reset() { b.refs = b.refs[:0] }
