// Package trace defines the canonical memory-reference record exchanged
// between the execution engine and the cache emulator, plus a compact
// binary codec so traces can be captured once (cmd/tracegen) and replayed
// through many cache configurations (cmd/cachesim).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cmpmem/internal/mem"
)

// Ref is one memory reference as observed on the front-side bus.
type Ref struct {
	// Addr is the guest physical address.
	Addr mem.Addr
	// Core is the virtual core that issued the reference.
	Core uint8
	// Size is the access size in bytes (1..255).
	Size uint8
	// Kind is load or store.
	Kind mem.Kind
}

// String renders the reference for diagnostics.
func (r Ref) String() string {
	return fmt.Sprintf("core%-2d %-5s %#x/%d", r.Core, r.Kind, uint64(r.Addr), r.Size)
}

// magic identifies a trace file: "CMPT" + version 1.
var magic = [8]byte{'C', 'M', 'P', 'T', 1, 0, 0, 0}

// recSize is the on-disk record size: 8 (addr) + 1 (core) + 1 (size) +
// 1 (kind) + 5 reserved/padding for future fields = 16 bytes, keeping
// records naturally aligned and the format stable.
const recSize = 16

// ErrBadMagic reports a trace stream that does not begin with the
// expected file header.
var ErrBadMagic = errors.New("trace: bad magic (not a cmpmem trace file)")

// Writer encodes Refs to an io.Writer.
type Writer struct {
	w     *bufio.Writer
	buf   [recSize]byte
	count uint64
	err   error
}

// NewWriter writes the file header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing header: %w", err)
	}
	return &Writer{w: bw}, nil
}

// Write appends one record. Errors are sticky.
func (w *Writer) Write(r Ref) error {
	if w.err != nil {
		return w.err
	}
	binary.LittleEndian.PutUint64(w.buf[0:8], uint64(r.Addr))
	w.buf[8] = r.Core
	w.buf[9] = r.Size
	w.buf[10] = byte(r.Kind)
	w.buf[11], w.buf[12], w.buf[13], w.buf[14], w.buf[15] = 0, 0, 0, 0, 0
	if _, err := w.w.Write(w.buf[:]); err != nil {
		w.err = fmt.Errorf("trace: writing record: %w", err)
		return w.err
	}
	w.count++
	return nil
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

// Reader decodes Refs from an io.Reader.
type Reader struct {
	r   *bufio.Reader
	buf [recSize]byte
}

// NewReader validates the file header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr != magic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// Read returns the next record, or io.EOF at end of trace.
func (r *Reader) Read() (Ref, error) {
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		if err == io.EOF {
			return Ref{}, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Ref{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		return Ref{}, fmt.Errorf("trace: reading record: %w", err)
	}
	return Ref{
		Addr: mem.Addr(binary.LittleEndian.Uint64(r.buf[0:8])),
		Core: r.buf[8],
		Size: r.buf[9],
		Kind: mem.Kind(r.buf[10]),
	}, nil
}

// Buffer is an in-memory trace used by tests and by the DEX scheduler
// to batch one time slice of references before handing them to the bus.
type Buffer struct {
	refs []Ref
}

// NewBuffer returns a Buffer with the given capacity hint.
func NewBuffer(capHint int) *Buffer {
	return &Buffer{refs: make([]Ref, 0, capHint)}
}

// Append adds one reference.
func (b *Buffer) Append(r Ref) { b.refs = append(b.refs, r) }

// Len returns the number of buffered references.
func (b *Buffer) Len() int { return len(b.refs) }

// Refs returns the underlying slice (valid until the next Reset).
func (b *Buffer) Refs() []Ref { return b.refs }

// Reset empties the buffer, retaining capacity.
func (b *Buffer) Reset() { b.refs = b.refs[:0] }
