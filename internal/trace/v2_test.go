package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"cmpmem/internal/mem"
)

// encodeAll writes refs through the given writer constructor and
// returns the encoded bytes.
func encodeAll(t testing.TB, refs []Ref, newW func(w io.Writer) (*Writer, error)) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := newW(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestV2RoundTripSmall(t *testing.T) {
	refs := []Ref{
		{Addr: 0x1000, Core: 0, Size: 8, Kind: mem.Load},
		{Addr: 0x1008, Core: 0, Size: 8, Kind: mem.Load},  // +8 delta, elided core+size
		{Addr: 0x0FF8, Core: 0, Size: 8, Kind: mem.Store}, // negative delta
		{Addr: 0xFFFF_FFFF_FFFF, Core: 31, Size: 1, Kind: mem.Store},
		{Addr: 0, Core: 255, Size: 255, Kind: mem.Load},
		{Addr: ^mem.Addr(0), Core: 255, Size: 8, Kind: mem.Store}, // wrap-scale delta
		{Addr: 4, Core: 31, Size: 4, Kind: mem.Load},              // per-core state kept across interleave
	}
	data := encodeAll(t, refs, NewWriterV2)
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != Version2 {
		t.Fatalf("detected version %d, want 2", r.Version())
	}
	for i, want := range refs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != want {
			t.Errorf("record %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

// TestV2RoundTripProperty: any load/store sequence round-trips through
// the delta codec, including adversarial core interleavings.
func TestV2RoundTripProperty(t *testing.T) {
	check := func(addrs []uint64, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		want := make([]Ref, len(addrs))
		for i, a := range addrs {
			want[i] = Ref{
				Addr: mem.Addr(a),
				Core: uint8(rng.Intn(256)),
				Size: uint8(rng.Intn(255) + 1),
				Kind: mem.Kind(rng.Intn(2)),
			}
		}
		var buf bytes.Buffer
		w, err := NewWriterV2(&buf)
		if err != nil {
			return false
		}
		for _, r := range want {
			if err := w.Write(r); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		got, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil || len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestV2ShrinksSequentialStream: a same-core strided stream must encode
// far below v1's 16 bytes per record (2 bytes: header + 1-byte varint).
func TestV2ShrinksSequentialStream(t *testing.T) {
	refs := make([]Ref, 10000)
	for i := range refs {
		refs[i] = Ref{Addr: mem.Addr(0x4000 + 8*i), Core: 2, Size: 8, Kind: mem.Load}
	}
	v1 := encodeAll(t, refs, NewWriter)
	v2 := encodeAll(t, refs, NewWriterV2)
	if ratio := float64(len(v1)) / float64(len(v2)); ratio < 6 {
		t.Errorf("v1/v2 = %.2fx on a sequential stream, want >= 6x (v1 %d B, v2 %d B)",
			ratio, len(v1), len(v2))
	}
}

func TestV2RejectsExoticKind(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriterV2(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Ref{Addr: 1, Size: 8, Kind: mem.Kind(7)}); err == nil {
		t.Error("v2 writer accepted an unencodable kind")
	}
	if err := w.Write(Ref{Addr: 1, Size: 8}); err == nil {
		t.Error("writer error must be sticky")
	}
}

func TestV2RejectsReservedHeaderBits(t *testing.T) {
	magic := magicFor(Version2)
	data := append(magic[:], 0x80, 0x10) // reserved bit set
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil {
		t.Error("reader accepted reserved header bits")
	}
}

func TestV2TruncatedRecord(t *testing.T) {
	refs := []Ref{{Addr: 0xDEADBEEF, Core: 9, Size: 4, Kind: mem.Store}}
	data := encodeAll(t, refs, NewWriterV2)
	for cut := len(data) - 1; cut > 8; cut-- {
		r, err := NewReader(bytes.NewReader(data[:cut]))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Read(); err == nil || err == io.EOF {
			t.Errorf("cut at %d: want a truncation error, got %v", cut, err)
		}
	}
}

// TestCrossVersionDetection: each header version routes to its own
// decoder, and the same records written both ways read back identically.
func TestCrossVersionDetection(t *testing.T) {
	refs := []Ref{
		{Addr: 0x10_0000, Core: 1, Size: 8, Kind: mem.Load},
		{Addr: 0x10_0040, Core: 1, Size: 2, Kind: mem.Store},
		{Addr: 0xFFFF_0000_0000_0000, Core: 0, Size: 8, Kind: mem.Store},
	}
	v1 := encodeAll(t, refs, NewWriter)
	v2 := encodeAll(t, refs, NewWriterV2)
	got1, err := ReadAll(bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	got2, err := ReadAll(bytes.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range refs {
		if got1[i] != refs[i] || got2[i] != refs[i] {
			t.Errorf("record %d diverges across versions: v1 %+v, v2 %+v, want %+v",
				i, got1[i], got2[i], refs[i])
		}
	}
}

func TestPlayer(t *testing.T) {
	refs := []Ref{{Addr: 1}, {Addr: 2}, {Addr: 3}}
	p := NewPlayer(refs)
	if p.Len() != 3 || p.Remaining() != 3 {
		t.Fatalf("Len/Remaining = %d/%d, want 3/3", p.Len(), p.Remaining())
	}
	for i, want := range refs {
		got, ok := p.Next()
		if !ok || got != want {
			t.Fatalf("Next %d: got %+v ok=%v", i, got, ok)
		}
	}
	if _, ok := p.Next(); ok {
		t.Error("Next past end returned ok")
	}
	p.Rewind()
	if p.Remaining() != 3 {
		t.Error("Rewind did not reset position")
	}
	if r, ok := p.Next(); !ok || r.Addr != 1 {
		t.Error("replay after Rewind diverges")
	}
}

// TestPlayerZeroAlloc: the replay inner loop must not allocate.
func TestPlayerZeroAlloc(t *testing.T) {
	refs := make([]Ref, 4096)
	for i := range refs {
		refs[i] = Ref{Addr: mem.Addr(i * 64), Size: 8}
	}
	p := NewPlayer(refs)
	var sink uint64
	allocs := testing.AllocsPerRun(10, func() {
		p.Rewind()
		for r, ok := p.Next(); ok; r, ok = p.Next() {
			sink += uint64(r.Addr)
		}
	})
	if allocs != 0 {
		t.Errorf("replay loop allocates %.1f objects per pass, want 0", allocs)
	}
	_ = sink
}

func TestStreamPlayerMatchesReader(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	refs := make([]Ref, 5000)
	for i := range refs {
		refs[i] = Ref{
			Addr: mem.Addr(rng.Uint64()),
			Core: uint8(rng.Intn(64)),
			Size: uint8(1 + rng.Intn(64)),
			Kind: mem.Kind(rng.Intn(2)),
		}
	}
	for name, newW := range map[string]func(w io.Writer) (*Writer, error){
		"v1": NewWriter, "v2": NewWriterV2,
	} {
		data := encodeAll(t, refs, newW)
		p, err := NewStreamPlayer(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for pass := 0; pass < 2; pass++ {
			for i, want := range refs {
				got, ok := p.Next()
				if !ok {
					t.Fatalf("%s pass %d: stream ended at record %d: %v", name, pass, i, p.Err())
				}
				if got != want {
					t.Fatalf("%s pass %d record %d: got %+v, want %+v", name, pass, i, got, want)
				}
			}
			if _, ok := p.Next(); ok || p.Err() != nil {
				t.Fatalf("%s pass %d: want clean end of stream, ok=%v err=%v", name, pass, ok, p.Err())
			}
			p.Rewind()
		}
	}
}

// TestStreamPlayerNextBatch pins the batch decode to Next record for
// record: arbitrary batch sizes, both codec versions, resume after a
// partial batch, and the same truncation errors.
func TestStreamPlayerNextBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	refs := make([]Ref, 5000)
	for i := range refs {
		refs[i] = Ref{
			Addr: mem.Addr(rng.Uint64()),
			Core: uint8(rng.Intn(64)),
			Size: uint8(1 + rng.Intn(64)),
			Kind: mem.Kind(rng.Intn(2)),
		}
	}
	for name, newW := range map[string]func(w io.Writer) (*Writer, error){
		"v1": NewWriter, "v2": NewWriterV2,
	} {
		data := encodeAll(t, refs, newW)
		for _, batch := range []int{1, 3, 64, 4096} {
			p, err := NewStreamPlayer(data)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			dst := make([]Ref, batch)
			var got []Ref
			for {
				n := p.NextBatch(dst)
				if n == 0 {
					break
				}
				got = append(got, dst[:n]...)
			}
			if p.Err() != nil {
				t.Fatalf("%s batch=%d: %v", name, batch, p.Err())
			}
			if len(got) != len(refs) {
				t.Fatalf("%s batch=%d: decoded %d records, want %d", name, batch, len(got), len(refs))
			}
			for i := range refs {
				if got[i] != refs[i] {
					t.Fatalf("%s batch=%d record %d: got %+v, want %+v", name, batch, i, got[i], refs[i])
				}
			}
		}
		// Truncated streams must surface the same error through the
		// batch path.
		p, err := NewStreamPlayer(data[:len(data)-1])
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]Ref, 64)
		for p.NextBatch(dst) != 0 {
		}
		if p.Err() == nil {
			t.Fatalf("%s: truncated stream decoded cleanly via NextBatch", name)
		}
	}
}

func TestStreamPlayerErrors(t *testing.T) {
	if _, err := NewStreamPlayer([]byte("CMPT")); err != ErrBadMagic {
		t.Errorf("short header: got %v, want ErrBadMagic", err)
	}
	if _, err := NewStreamPlayer([]byte("notatrace")); err != ErrBadMagic {
		t.Errorf("bad magic: got %v, want ErrBadMagic", err)
	}
	refs := []Ref{{Addr: 0x5000, Core: 3, Size: 8, Kind: mem.Store}}
	for name, newW := range map[string]func(w io.Writer) (*Writer, error){
		"v1": NewWriter, "v2": NewWriterV2,
	} {
		data := encodeAll(t, refs, newW)
		p, err := NewStreamPlayer(data[:len(data)-1])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, ok := p.Next(); ok {
			t.Fatalf("%s: truncated record decoded", name)
		}
		if p.Err() == nil {
			t.Fatalf("%s: truncated record reported clean end of stream", name)
		}
	}
	// Reserved header bits must be rejected, exactly like Reader.
	bad := append([]byte(nil), magicV2()...)
	bad = append(bad, 0x80, 0x00)
	p, err := NewStreamPlayer(bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Next(); ok || p.Err() == nil {
		t.Fatalf("reserved bits: ok=%v err=%v, want decode error", ok, p.Err())
	}
}

func magicV2() []byte {
	m := magicFor(Version2)
	return m[:]
}

func TestStreamPlayerZeroAlloc(t *testing.T) {
	refs := make([]Ref, 4096)
	for i := range refs {
		refs[i] = Ref{Addr: mem.Addr(i * 64), Core: uint8(i % 8), Size: 8, Kind: mem.Load}
	}
	data := encodeAll(t, refs, NewWriterV2)
	p, err := NewStreamPlayer(data)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	allocs := testing.AllocsPerRun(10, func() {
		p.Rewind()
		n = 0
		for _, ok := p.Next(); ok; _, ok = p.Next() {
			n++
		}
	})
	if n != len(refs) {
		t.Fatalf("decoded %d records, want %d", n, len(refs))
	}
	if allocs != 0 {
		t.Errorf("replay decode allocates %.1f per pass, want 0", allocs)
	}
}
