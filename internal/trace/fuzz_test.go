package trace

import (
	"bytes"
	"io"
	"testing"

	"cmpmem/internal/mem"
)

// FuzzCodecRoundTrip: any record the writer accepts must read back
// identically.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint64(0x1000), uint8(3), uint8(8), false)
	f.Add(uint64(0), uint8(255), uint8(1), true)
	f.Add(^uint64(0), uint8(127), uint8(255), false)
	f.Fuzz(func(t *testing.T, addr uint64, core uint8, size uint8, store bool) {
		kind := mem.Load
		if store {
			kind = mem.Store
		}
		want := Ref{Addr: mem.Addr(addr), Core: core, Size: size, Kind: kind}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(want); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	})
}

// FuzzReaderRobustness: arbitrary bytes must never panic the reader —
// they either parse as records or fail with an error.
func FuzzReaderRobustness(f *testing.F) {
	f.Add([]byte("CMPT\x01\x00\x00\x00garbagegarbage"))
	f.Add([]byte("NOTAHEADER"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected header: fine
		}
		for {
			_, err := r.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // malformed tail: fine
			}
		}
	})
}
