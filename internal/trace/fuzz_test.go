package trace

import (
	"bytes"
	"io"
	"testing"

	"cmpmem/internal/mem"
)

// FuzzCodecRoundTrip: any record the writer accepts must read back
// identically.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint64(0x1000), uint8(3), uint8(8), false)
	f.Add(uint64(0), uint8(255), uint8(1), true)
	f.Add(^uint64(0), uint8(127), uint8(255), false)
	f.Fuzz(func(t *testing.T, addr uint64, core uint8, size uint8, store bool) {
		kind := mem.Load
		if store {
			kind = mem.Store
		}
		want := Ref{Addr: mem.Addr(addr), Core: core, Size: size, Kind: kind}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(want); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.Read()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	})
}

// FuzzCodecV2RoundTrip: a short sequence of records derived from the
// fuzz inputs must encode and decode identically through the v2 delta
// codec, with the same bytes never misparsing as v1 (the version byte
// is part of the header, so cross-version detection is exact).
func FuzzCodecV2RoundTrip(f *testing.F) {
	f.Add(uint64(0x1000), uint64(8), uint8(3), uint8(8), true)
	f.Add(uint64(0), ^uint64(0), uint8(255), uint8(1), false)
	f.Add(^uint64(0), uint64(1), uint8(0), uint8(255), true)
	f.Fuzz(func(t *testing.T, addr, stride uint64, core, size uint8, store bool) {
		kind := mem.Load
		if store {
			kind = mem.Store
		}
		if size == 0 {
			size = 1
		}
		// Three records exercise delta state: same core twice (elision
		// path), then a core switch back to an earlier address.
		want := []Ref{
			{Addr: mem.Addr(addr), Core: core, Size: size, Kind: kind},
			{Addr: mem.Addr(addr + stride), Core: core, Size: 8, Kind: kind},
			{Addr: mem.Addr(addr), Core: core ^ 1, Size: size, Kind: mem.Store},
		}
		var buf bytes.Buffer
		w, err := NewWriterV2(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range want {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		got, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("decoded %d records, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
			}
		}
		// Cross-version detection: the v2 payload with a v1 version byte
		// must not silently decode — v1 either errors on the truncated
		// tail or returns records; it must never panic, and the original
		// stream must keep auto-detecting as v2.
		r2, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil || r2.Version() != Version2 {
			t.Fatalf("v2 stream misdetected: version=%v err=%v", r2, err)
		}
		forged := append([]byte{}, buf.Bytes()...)
		forged[4] = Version1
		if fr, err := NewReader(bytes.NewReader(forged)); err == nil {
			for {
				if _, err := fr.Read(); err != nil {
					break
				}
			}
		}
	})
}

// FuzzReaderRobustness: arbitrary bytes must never panic the reader —
// they either parse as records or fail with an error. Covers both
// version headers.
func FuzzReaderRobustness(f *testing.F) {
	f.Add([]byte("CMPT\x01\x00\x00\x00garbagegarbage"))
	f.Add([]byte("CMPT\x02\x00\x00\x00\x07\x22\xff\x81\x80"))
	f.Add([]byte("CMPT\x03\x00\x00\x00notaversion"))
	f.Add([]byte("NOTAHEADER"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // rejected header: fine
		}
		for {
			_, err := r.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // malformed tail: fine
			}
		}
	})
}

// FuzzFaultDecode is the fault-injection differential: build a valid v2
// stream, flip one byte, and require (a) no decoder ever panics, and
// (b) the two independent decode paths — the io.Reader-based Reader and
// the zero-alloc StreamPlayer — agree exactly on the corrupted bytes:
// same records, same success/error outcome. A disagreement would mean
// replay could silently diverge from capture on a corrupt spill.
func FuzzFaultDecode(f *testing.F) {
	f.Add(uint64(0x1000), uint64(64), uint8(8), 9, byte(0x81))
	f.Add(uint64(0xFFFF0000), uint64(1), uint8(30), 0, byte(0x01))
	f.Add(uint64(7), ^uint64(0)/3, uint8(3), 12, byte(0xFF))
	f.Add(uint64(0), uint64(0), uint8(2), 4, byte(0x20)) // header region
	f.Fuzz(func(t *testing.T, addr, stride uint64, n uint8, off int, mask byte) {
		// Build a small, structurally varied v2 stream.
		var buf bytes.Buffer
		w, err := NewWriterV2(&buf)
		if err != nil {
			t.Fatal(err)
		}
		records := int(n%32) + 2
		for i := 0; i < records; i++ {
			kind := mem.Load
			if i%3 == 0 {
				kind = mem.Store
			}
			if err := w.Write(Ref{
				Addr: mem.Addr(addr + uint64(i)*stride),
				Core: uint8(i % 5),
				Size: uint8(1 << (i % 4)),
				Kind: kind,
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		enc := buf.Bytes()

		// Flip exactly one byte (offset wrapped into range).
		if mask == 0 {
			mask = 1
		}
		if off < 0 {
			off = -off
		}
		bad := append([]byte(nil), enc...)
		bad[off%len(bad)] ^= mask

		// Path 1: Reader.
		var rRefs []Ref
		var rErr error
		if rd, err := NewReader(bytes.NewReader(bad)); err != nil {
			rErr = err
		} else {
			for {
				rec, err := rd.Read()
				if err == io.EOF {
					break
				}
				if err != nil {
					rErr = err
					break
				}
				rRefs = append(rRefs, rec)
			}
		}

		// Path 2: StreamPlayer.
		var pRefs []Ref
		var pErr error
		if sp, err := NewStreamPlayer(bad); err != nil {
			pErr = err
		} else {
			for rec, ok := sp.Next(); ok; rec, ok = sp.Next() {
				pRefs = append(pRefs, rec)
			}
			pErr = sp.Err()
		}

		if (rErr == nil) != (pErr == nil) {
			t.Fatalf("decoders disagree on outcome: Reader err=%v, StreamPlayer err=%v", rErr, pErr)
		}
		if len(rRefs) != len(pRefs) {
			t.Fatalf("decoders disagree on length: Reader %d records, StreamPlayer %d (errs %v / %v)",
				len(rRefs), len(pRefs), rErr, pErr)
		}
		for i := range rRefs {
			if rRefs[i] != pRefs[i] {
				t.Fatalf("record %d diverges: Reader %+v, StreamPlayer %+v", i, rRefs[i], pRefs[i])
			}
		}
	})
}
