package fimi

import (
	"fmt"
	"sort"
	"testing"

	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/softsdv"
	"cmpmem/internal/workloads"
)

func run(t *testing.T, threads int, scale float64, seed int64) *Workload {
	t.Helper()
	w := New(workloads.Params{Seed: seed, Scale: scale})
	bus := fsb.NewBus()
	sched, err := softsdv.NewScheduler(softsdv.Config{Cores: threads, Quantum: 20000}, bus)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := w.Build(mem.NewSpace(), sched, threads)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(prog); err != nil {
		t.Fatal(err)
	}
	return w
}

// key canonicalizes an itemset for set comparison.
func key(items []int32) string {
	s := append([]int32(nil), items...)
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	return fmt.Sprint(s)
}

// bruteForce counts every itemset of size <= maxPatternLen appearing in
// the database and returns those meeting minsup.
func bruteForce(w *Workload) map[string]int32 {
	db := w.DB()
	// First pass: item counts (to prune enumeration like FP-growth's
	// frequent-item filter).
	counts := map[int32]int32{}
	for i := 0; i < db.Count(); i++ {
		for _, it := range db.Get(i) {
			counts[it]++
		}
	}
	frequent := map[int32]bool{}
	for it, c := range counts {
		if c >= w.MinSupport() {
			frequent[it] = true
		}
	}
	sup := map[string]int32{}
	var rec func(items []int32, start int, tx []int32)
	for i := 0; i < db.Count(); i++ {
		raw := db.Get(i)
		tx := make([]int32, 0, len(raw))
		for _, it := range raw {
			if frequent[it] {
				tx = append(tx, it)
			}
		}
		sort.Slice(tx, func(a, b int) bool { return tx[a] < tx[b] })
		var items []int32
		rec = func(items []int32, start int, tx []int32) {
			if len(items) > 0 {
				sup[key(items)]++
			}
			if len(items) == maxPatternLen {
				return
			}
			for k := start; k < len(tx); k++ {
				rec(append(items, tx[k]), k+1, tx)
			}
		}
		rec(items, 0, tx)
	}
	out := map[string]int32{}
	for k, c := range sup {
		if c >= w.MinSupport() {
			out[k] = c
		}
	}
	return out
}

// TestMatchesBruteForce: FP-growth must find exactly the frequent
// itemsets (with exact supports) that exhaustive counting finds.
func TestMatchesBruteForce(t *testing.T) {
	w := run(t, 2, 1.0/512, 5)
	want := bruteForce(w)
	got := map[string]int32{}
	for _, is := range w.Frequent {
		got[key(is.Items)] = is.Support
	}
	if len(got) == 0 {
		t.Fatal("no frequent itemsets mined")
	}
	for k, sup := range want {
		if got[k] != sup {
			t.Errorf("itemset %s: fp-growth support %d, brute force %d", k, got[k], sup)
		}
	}
	for k, sup := range got {
		if want[k] != sup {
			t.Errorf("itemset %s: spurious or wrong support %d (want %d)", k, sup, want[k])
		}
	}
	t.Logf("matched %d frequent itemsets (minsup=%d)", len(want), w.MinSupport())
}

// TestThreadCountInvariance: the mined set is independent of the
// parallel decomposition.
func TestThreadCountInvariance(t *testing.T) {
	w1 := run(t, 1, 1.0/512, 9)
	w4 := run(t, 4, 1.0/512, 9)
	if len(w1.Frequent) != len(w4.Frequent) {
		t.Fatalf("itemset count differs: %d vs %d", len(w1.Frequent), len(w4.Frequent))
	}
	for i := range w1.Frequent {
		if key(w1.Frequent[i].Items) != key(w4.Frequent[i].Items) ||
			w1.Frequent[i].Support != w4.Frequent[i].Support {
			t.Fatalf("itemset %d differs across thread counts", i)
		}
	}
}

func TestSingleItemSupportsMatchCounts(t *testing.T) {
	w := run(t, 2, 1.0/512, 13)
	db := w.DB()
	counts := map[int32]int32{}
	for i := 0; i < db.Count(); i++ {
		for _, it := range db.Get(i) {
			counts[it]++
		}
	}
	for _, is := range w.Frequent {
		if len(is.Items) != 1 {
			continue
		}
		if counts[is.Items[0]] != is.Support {
			t.Errorf("item %d: mined support %d, true count %d",
				is.Items[0], is.Support, counts[is.Items[0]])
		}
	}
}

func TestMetadata(t *testing.T) {
	w := New(workloads.Params{Seed: 1})
	if w.Name() != "FIMI" {
		t.Errorf("name = %q", w.Name())
	}
	if w.Category() != workloads.MixedWS {
		t.Error("FIMI must be in the mixed-sharing category")
	}
	if w.MinSupport() < 2 {
		t.Error("support threshold collapsed")
	}
}
