// Package fimi implements the paper's FIMI workload: frequent-itemset
// mining with FP-growth (the FP-Zhu package's three stages — first scan,
// FP-tree construction, and mining; Section 2.3).
//
// Memory behaviour (paper findings this reproduces): all threads share
// the read-only global FP-tree and each mines a disjoint set of frequent
// items, allocating private conditional pattern trees for the recursion.
// The shared tree dominates the footprint, so the working set grows only
// 20-30% per core doubling (Figures 5-6, mixed-sharing category). The
// nodelink and parent-chain walks are pointer chases, which is why FIMI
// gains less from large cache lines than the streaming workloads
// (Figure 7).
package fimi

import (
	"fmt"
	"sort"

	"cmpmem/internal/datasets"
	"cmpmem/internal/mem"
	"cmpmem/internal/softsdv"
	"cmpmem/internal/workloads"
)

// Paper parameters: 990k transactions, mini-support 800 (Kosarak).
const (
	paperTransactions = 990_000
	paperSupportFrac  = 800.0 / 990_000
	paperItems        = 41_000
	meanTxLen         = 8
	maxPatternLen     = 4 // recursion depth bound
)

// node field layout within the SoA arrays.
const nodeFields = 6 // item, count, parent, nodelink, child, sibling

// Itemset is one mined frequent itemset.
type Itemset struct {
	Items   []int32 // original item ids, ascending
	Support int32
}

// tree is an FP-tree in SoA form over simulated buffers. Node 0 is the
// root (item -1).
type tree struct {
	nodes    mem.Int32s // nodeFields int32 per node
	cap      int
	next     int
	headLink mem.Int32s // per item-rank: head of nodelink chain, -1 none
	headCnt  mem.Int32s // per item-rank: total support
	nitems   int
}

// Workload is the FIMI instance.
type Workload struct {
	p workloads.Params

	ntx     int
	nitems  int
	minsup  int32
	db      *datasets.Transactions
	threads int

	// Shared simulated structures.
	items   mem.Int32s // transaction items
	offsets mem.Int32s
	counts  mem.Int32s // first-scan item counts
	rank    mem.Int32s // item -> frequency rank (-1 infrequent)
	rankItm mem.Int32s // rank -> item
	global  *tree

	// Result (host side, merged by core 0).
	perThread [][]Itemset
	Frequent  []Itemset
}

// New builds a FIMI workload description.
func New(p workloads.Params) *Workload {
	p = p.WithDefaults()
	// Transaction count scales with the dataset; /4 keeps the simulated
	// instruction volume of the mining stage in the harness budget
	// while preserving the tree-vs-private footprint ratio.
	ntx := p.ScaleInt(paperTransactions/4, 2000)
	nitems := p.ScaleInt(paperItems, 512)
	minsup := int32(float64(ntx) * paperSupportFrac * 4)
	if minsup < 2 {
		minsup = 2
	}
	return &Workload{p: p, ntx: ntx, nitems: nitems, minsup: minsup}
}

// Name implements workloads.Workload.
func (w *Workload) Name() string { return "FIMI" }

// Description implements workloads.Workload.
func (w *Workload) Description() string {
	return "FP-growth frequent-itemset mining (first scan, FP-tree construction, recursive mining)"
}

// Table1 implements workloads.Workload.
func (w *Workload) Table1() (string, string) {
	return fmt.Sprintf("%dk transactions and mini-support=%d (scaled)", w.ntx/1000, w.minsup),
		workloads.MiB(uint64(w.ntx) * meanTxLen * 4)
}

// Category implements workloads.Categorizer.
func (w *Workload) Category() workloads.SharingCategory { return workloads.MixedWS }

// MinSupport returns the scaled absolute support threshold.
func (w *Workload) MinSupport() int32 { return w.minsup }

// DB returns the generated transaction database (after Build).
func (w *Workload) DB() *datasets.Transactions { return w.db }

// newTree allocates a tree in the arena with the given capacity.
func newTree(a *mem.Arena, capNodes, nitems int) *tree {
	tr := &tree{
		nodes:    a.Int32s(capNodes * nodeFields),
		cap:      capNodes,
		headLink: a.Int32s(nitems),
		headCnt:  a.Int32s(nitems),
		nitems:   nitems,
	}
	tr.reset(nil, nitems)
	return tr
}

// reset re-initializes the tree for nitems item ranks. Host-side
// initialization (rec==nil) is used at build time; traced resets pass
// the thread recorder.
func (tr *tree) reset(t *softsdv.Thread, nitems int) {
	tr.nitems = nitems
	tr.next = 1
	if t == nil {
		raw := tr.nodes.Raw()
		for f := 0; f < nodeFields; f++ {
			raw[f] = -1
		}
		hl, hc := tr.headLink.Raw(), tr.headCnt.Raw()
		for i := 0; i < nitems; i++ {
			hl[i] = -1
			hc[i] = 0
		}
		return
	}
	for f := 0; f < nodeFields; f++ {
		tr.nodes.Set(t, f, -1)
	}
	for i := 0; i < nitems; i++ {
		tr.headLink.Set(t, i, -1)
		tr.headCnt.Set(t, i, 0)
	}
}

// field accessors (traced).
func (tr *tree) get(t *softsdv.Thread, n int, f int) int32 {
	return tr.nodes.At(t, n*nodeFields+f)
}
func (tr *tree) set(t *softsdv.Thread, n int, f int, v int32) {
	tr.nodes.Set(t, n*nodeFields+f, v)
}

const (
	fItem = iota
	fCount
	fParent
	fNodelink
	fChild
	fSibling
)

// insert adds a path of item ranks with the given support to the tree.
func (tr *tree) insert(t *softsdv.Thread, ranks []int32, support int32) {
	cur := 0
	for _, r := range ranks {
		// Search cur's children for rank r.
		child := tr.get(t, cur, fChild)
		found := -1
		for child != -1 {
			if tr.get(t, int(child), fItem) == r {
				found = int(child)
				break
			}
			child = tr.get(t, int(child), fSibling)
			t.Exec(3) // compare + index arithmetic + branch
		}
		if found >= 0 {
			tr.set(t, found, fCount, tr.get(t, found, fCount)+support)
			cur = found
			continue
		}
		if tr.next >= tr.cap {
			// Tree full: drop the rest of the path. Capacities are
			// sized so this only triggers under adversarial tests.
			return
		}
		n := tr.next
		tr.next++
		tr.set(t, n, fItem, r)
		tr.set(t, n, fCount, support)
		tr.set(t, n, fParent, int32(cur))
		tr.set(t, n, fChild, -1)
		tr.set(t, n, fSibling, tr.get(t, cur, fChild))
		tr.set(t, cur, fChild, int32(n))
		tr.set(t, n, fNodelink, tr.headLink.At(t, int(r)))
		tr.headLink.Set(t, int(r), int32(n))
		cur = n
	}
}

// Build implements workloads.Workload.
func (w *Workload) Build(sp *mem.Space, sched *softsdv.Scheduler, threads int) (softsdv.Program, error) {
	if threads < 1 {
		return nil, fmt.Errorf("fimi: threads must be >= 1, got %d", threads)
	}
	w.threads = threads
	w.db = datasets.GenTransactions(w.p.Seed, w.ntx, w.nitems, meanTxLen)

	dbArena := sp.NewArena("fimi/db", uint64(len(w.db.Items))*4+uint64(len(w.db.Offsets))*4+1<<12)
	w.items = dbArena.Int32s(len(w.db.Items))
	copy(w.items.Raw(), w.db.Items)
	w.offsets = dbArena.Int32s(len(w.db.Offsets))
	copy(w.offsets.Raw(), w.db.Offsets)

	treeCap := len(w.db.Items) + 1
	shared := sp.NewArena("fimi/tree",
		uint64(treeCap)*nodeFields*4+uint64(w.nitems)*16+1<<16)
	w.counts = shared.Int32s(w.nitems)
	w.rank = shared.Int32s(w.nitems)
	w.global = newTree(shared, treeCap, w.nitems)
	w.rankItm = shared.Int32s(w.nitems)

	w.perThread = make([][]Itemset, threads)
	barrier := sched.NewBarrier(threads)

	return softsdv.ProgramFunc(func(t *softsdv.Thread, core int) {
		// Stage 1: first scan — item frequency counts. Threads stripe
		// over transactions; execution is DEX-serialized, so the shared
		// read-modify-write counters behave like the paper's per-thread
		// counters merged at the barrier.
		for tx := core; tx < w.ntx; tx += w.threads {
			start := int(w.offsets.At(t, tx))
			end := int(w.offsets.At(t, tx+1))
			for k := start; k < end; k++ {
				it := w.items.At(t, k)
				// The shared counter increment is a lock-protected
				// read-modify-write in the parallel first scan.
				t.Critical(func() {
					w.counts.Set(t, int(it), w.counts.At(t, int(it))+1)
				})
				t.Exec(1)
			}
		}
		barrier.Wait(t)

		// Core 0 ranks the frequent items by descending support.
		if core == 0 {
			type ic struct{ item, cnt int32 }
			freq := make([]ic, 0, 256)
			for i := 0; i < w.nitems; i++ {
				c := w.counts.At(t, i)
				t.Exec(1)
				if c >= w.minsup {
					freq = append(freq, ic{int32(i), c})
				}
			}
			sort.Slice(freq, func(a, b int) bool { return freq[a].cnt > freq[b].cnt })
			for i := 0; i < w.nitems; i++ {
				w.rank.Set(t, i, -1)
			}
			for r, f := range freq {
				w.rank.Set(t, int(f.item), int32(r))
				w.rankItm.Set(t, r, f.item)
			}
			w.global.reset(t, len(freq))
		}
		barrier.Wait(t)
		nfreq := w.global.nitems

		// Stage 2: FP-tree construction. Each thread inserts its
		// transactions (filtered to frequent items, sorted by rank).
		ranks := make([]int32, 0, 64)
		for tx := core; tx < w.ntx; tx += w.threads {
			start := int(w.offsets.At(t, tx))
			end := int(w.offsets.At(t, tx+1))
			ranks = ranks[:0]
			for k := start; k < end; k++ {
				it := w.items.At(t, k)
				if r := w.rank.At(t, int(it)); r >= 0 {
					ranks = append(ranks, r)
				}
				t.Exec(1)
			}
			sortRanks(ranks)
			if len(ranks) > 0 {
				// Tree insertion mutates shared child lists and
				// nodelink heads: a lock-protected section on real
				// hardware, a no-preemption section under DEX.
				t.Critical(func() {
					w.global.insert(t, ranks, 1)
					for _, r := range ranks {
						w.global.headCnt.Set(t, int(r), w.global.headCnt.At(t, int(r))+1)
					}
				})
			}
		}
		barrier.Wait(t)

		// Stage 3: mining. Threads take frequent items round-robin,
		// least frequent (deepest rank) first, building private
		// conditional trees.
		priv := sp.NewArena(fmt.Sprintf("fimi/cond%d", core),
			uint64(maxPatternLen)*condCap*nodeFields*4+uint64(maxPatternLen)*uint64(nfreq)*8+1<<16)
		condPool := make([]*tree, maxPatternLen)
		for d := range condPool {
			condPool[d] = newTree(priv, condCap, nfreq)
		}
		var out []Itemset
		suffix := make([]int32, 0, maxPatternLen)
		for r := nfreq - 1 - core; r >= 0; r -= w.threads {
			sup := w.global.headCnt.At(t, r)
			if sup < w.minsup {
				continue
			}
			item := w.rankItm.At(t, r)
			suffix = suffix[:0]
			suffix = append(suffix, item)
			out = append(out, Itemset{Items: itemsetOf(suffix), Support: sup})
			out = w.mine(t, w.global, r, suffix, condPool, 0, out)
		}
		w.perThread[core] = out
		barrier.Wait(t)
		if core == 0 {
			w.Frequent = w.Frequent[:0]
			for _, part := range w.perThread {
				w.Frequent = append(w.Frequent, part...)
			}
			sortItemsets(w.Frequent)
		}
	}), nil
}

// condCap bounds each conditional tree's node count.
const condCap = 2048

// mine builds the conditional tree of item-rank r in src and recurses.
func (w *Workload) mine(t *softsdv.Thread, src *tree, r int, suffix []int32,
	pool []*tree, depth int, out []Itemset) []Itemset {
	if depth >= len(pool) || len(suffix) >= maxPatternLen {
		return out
	}
	cond := pool[depth]
	cond.reset(t, cond.nitems)

	// Walk r's nodelink chain; for each node, walk the parent chain to
	// collect the prefix path, then insert it into the conditional tree.
	path := make([]int32, 0, 32)
	n := src.headLink.At(t, r)
	for n != -1 {
		cnt := src.get(t, int(n), fCount)
		path = path[:0]
		p := src.get(t, int(n), fParent)
		for p > 0 { // stop at root (node 0)
			path = append(path, src.get(t, int(p), fItem))
			p = src.get(t, int(p), fParent)
			t.Exec(3) // path append + index arithmetic + loop test
		}
		if len(path) > 0 {
			reverse(path)
			cond.insert(t, path, cnt)
			for _, pr := range path {
				cond.headCnt.Set(t, int(pr), cond.headCnt.At(t, int(pr))+cnt)
			}
		}
		n = src.get(t, int(n), fNodelink)
		t.Exec(1)
	}

	// Emit frequent extensions and recurse.
	for cr := cond.nitems - 1; cr >= 0; cr-- {
		sup := cond.headCnt.At(t, cr)
		t.Exec(1)
		if sup < w.minsup {
			continue
		}
		item := w.rankItm.At(t, cr)
		next := append(suffix, item)
		out = append(out, Itemset{Items: itemsetOf(next), Support: sup})
		out = w.mine(t, cond, cr, next, pool, depth+1, out)
	}
	return out
}

// sortRanks sorts ascending (rank 0 = most frequent first in the path).
func sortRanks(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// reverse flips a path in place.
func reverse(a []int32) {
	for i, j := 0, len(a)-1; i < j; i, j = i+1, j-1 {
		a[i], a[j] = a[j], a[i]
	}
}

// itemsetOf copies and canonicalizes (ascending item id) an itemset.
func itemsetOf(items []int32) []int32 {
	out := append([]int32(nil), items...)
	sortRanks(out)
	return out
}

// sortItemsets orders results deterministically for comparison.
func sortItemsets(sets []Itemset) {
	sort.Slice(sets, func(a, b int) bool {
		x, y := sets[a].Items, sets[b].Items
		for i := 0; i < len(x) && i < len(y); i++ {
			if x[i] != y[i] {
				return x[i] < y[i]
			}
		}
		if len(x) != len(y) {
			return len(x) < len(y)
		}
		return sets[a].Support < sets[b].Support
	})
}
