package workloads

import (
	"strings"
	"testing"
)

func TestWithDefaults(t *testing.T) {
	p := Params{}.WithDefaults()
	if p.Scale != DefaultScale {
		t.Errorf("default scale = %v, want %v", p.Scale, DefaultScale)
	}
	q := Params{Scale: 0.5}.WithDefaults()
	if q.Scale != 0.5 {
		t.Error("explicit scale overwritten")
	}
}

func TestScaleInt(t *testing.T) {
	p := Params{Scale: 1.0 / 16}
	if got := p.ScaleInt(1600, 10); got != 100 {
		t.Errorf("ScaleInt = %d, want 100", got)
	}
	if got := p.ScaleInt(32, 10); got != 10 {
		t.Errorf("floor not applied: %d", got)
	}
}

func TestScaleSqrt(t *testing.T) {
	p := Params{Scale: 1.0 / 16}
	if got := p.ScaleSqrt(400, 1); got != 100 {
		t.Errorf("ScaleSqrt = %d, want 100 (400/4)", got)
	}
	zero := Params{}
	if got := zero.ScaleSqrt(400, 1); got != 100 {
		t.Errorf("zero scale should default: got %d", got)
	}
	if got := p.ScaleSqrt(4, 50); got != 50 {
		t.Errorf("floor not applied: %d", got)
	}
}

func TestMiB(t *testing.T) {
	cases := map[uint64]string{
		512:           "512B",
		2048:          "2.0KB",
		3 << 20:       "3.0MB",
		1<<20 + 52429: "1.1MB",
	}
	for in, want := range cases {
		if got := MiB(in); got != want {
			t.Errorf("MiB(%d) = %q, want %q", in, got, want)
		}
	}
	if !strings.HasSuffix(MiB(1<<30), "MB") {
		t.Error("large sizes render as MB")
	}
}
