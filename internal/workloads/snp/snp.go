// Package snp implements the paper's SNP workload: learning the
// structure of a Bayesian network from single-nucleotide-polymorphism
// haplotype data by hill climbing (Section 2.1). The search starts from
// an empty structure and repeatedly moves to the highest-scoring
// neighbor (single-edge addition under a topological ordering, which
// keeps the graph acyclic) until a local maximum.
//
// The computation has two memory phases, which produce the two
// working-set knees the paper reports (16 MB and 128 MB
// paper-equivalent):
//
//  1. Sufficient statistics: pairwise joint counts for all site pairs,
//     computed with bit-parallel popcounts over packed columns, written
//     into an S×S mutual-information matrix — the large working set.
//  2. Hill climbing: candidate edges screened through the MI matrix and
//     exact BIC deltas re-scored by scanning unpacked data columns — the
//     smaller, hot working set.
//
// All threads share the data matrix and the MI matrix, so cache
// performance is invariant with thread count (sharing category (a)).
package snp

import (
	"fmt"
	"math"
	"math/bits"

	"cmpmem/internal/datasets"
	"cmpmem/internal/mem"
	"cmpmem/internal/softsdv"
	"cmpmem/internal/workloads"
)

// Paper-equivalent footprints: the MI matrix is the 128 MB structure,
// the haplotype matrix the 16 MB one.
const (
	paperMIBytes   = 128 << 20
	paperDataBytes = 16 << 20
	maxParents     = 2
	climbEdges     = 5 // hill-climbing iterations (edges added)
)

// Workload is the SNP instance.
type Workload struct {
	p workloads.Params

	sites int // S: variables of the network
	seqs  int // N: observations

	data *datasets.SNPMatrix

	// Simulated buffers.
	cols   mem.Bytes  // unpacked data, column-major: cols[s*N+n]
	packed mem.Int64s // packed columns: packed[s*wpc+w]
	wpc    int
	mi     mem.Float64s // S×S mutual information
	shortl mem.Int32s   // per-node best candidate parent
	bestSc mem.Float64s // per-thread best delta (reduction)
	bestIJ mem.Int32s   // per-thread best edge (2 slots each)

	threads int

	// Edges holds the learned structure (parent -> child), for tests.
	Edges [][2]int32
	// Score is the accumulated structure score.
	Score float64
}

// New builds an SNP workload description.
func New(p workloads.Params) *Workload {
	p = p.WithDefaults()
	// MI matrix: S*S*8 = paperMIBytes * Scale  =>  S = sqrt(target/8).
	target := float64(paperMIBytes) * p.Scale
	s := int(math.Sqrt(target / 8))
	if s < 64 {
		s = 64
	}
	// Data matrix: S*N = paperDataBytes * Scale  =>  N = target2/S.
	n := int(float64(paperDataBytes) * p.Scale / float64(s))
	if n < 128 {
		n = 128
	}
	return &Workload{p: p, sites: s, seqs: n}
}

// Name implements workloads.Workload.
func (w *Workload) Name() string { return "SNP" }

// Description implements workloads.Workload.
func (w *Workload) Description() string {
	return "Bayesian-network structure learning over SNP haplotypes by hill climbing"
}

// Table1 implements workloads.Workload.
func (w *Workload) Table1() (string, string) {
	return fmt.Sprintf("%d sequences, %d sites (scaled)", w.seqs, w.sites),
		workloads.MiB(uint64(w.seqs) * uint64(w.sites))
}

// Category implements workloads.Categorizer.
func (w *Workload) Category() workloads.SharingCategory { return workloads.SharedWS }

// Build implements workloads.Workload.
func (w *Workload) Build(sp *mem.Space, sched *softsdv.Scheduler, threads int) (softsdv.Program, error) {
	if threads < 1 {
		return nil, fmt.Errorf("snp: threads must be >= 1, got %d", threads)
	}
	w.threads = threads
	S, N := w.sites, w.seqs
	w.data = datasets.GenSNP(w.p.Seed, N, S, 8)
	w.wpc = (N + 63) / 64

	dataArena := sp.NewArena("snp/data", uint64(S)*uint64(N)+uint64(S)*uint64(w.wpc)*8+1<<16)
	w.cols = dataArena.Bytes(S * N)
	w.packed = dataArena.Int64s(S * w.wpc)
	// Column-major copy + packing (dataset loading, untraced).
	for s := 0; s < S; s++ {
		col := w.cols.Raw()[s*N : (s+1)*N]
		for n := 0; n < N; n++ {
			a := byte(w.data.Alleles[n*S+s])
			col[n] = a
			if a == 1 {
				w.packed.Raw()[s*w.wpc+n/64] |= 1 << (n % 64)
			}
		}
	}

	miArena := sp.NewArena("snp/mi", uint64(S)*uint64(S)*8+uint64(S)*4+uint64(threads)*32+1<<12)
	w.mi = miArena.Float64s(S * S)
	w.shortl = miArena.Int32s(S)
	w.bestSc = miArena.Float64s(threads)
	w.bestIJ = miArena.Int32s(threads * 2)

	barrier := sched.NewBarrier(threads)
	parents := make([][]int32, S) // host-side structure bookkeeping

	return softsdv.ProgramFunc(func(t *softsdv.Thread, core int) {
		// Phase 1: pairwise sufficient statistics -> MI matrix.
		// Pairs (i,j), i<j, striped across threads by i.
		for i := core; i < S; i += w.threads {
			for j := i + 1; j < S; j++ {
				m := w.pairMI(t, i, j)
				w.mi.Set(t, i*S+j, m)
				w.mi.Set(t, j*S+i, m)
			}
		}
		barrier.Wait(t)

		// Phase 2: screening — per-node best candidate parent by MI.
		for j := core; j < S; j += w.threads {
			best, bestMI := int32(-1), -1.0
			for i := 0; i < j; i++ {
				v := w.mi.At(t, j*S+i)
				t.Exec(1)
				if v > bestMI {
					bestMI, best = v, int32(i)
				}
			}
			w.shortl.Set(t, j, best)
		}
		barrier.Wait(t)

		// Phase 3: hill climbing — each iteration exactly re-scores the
		// shortlisted candidate of every node against the data columns,
		// takes the best single-edge addition, applies it, and rescreens
		// the winner's node.
		for it := 0; it < climbEdges; it++ {
			var localBest float64 = -math.MaxFloat64
			var localI, localJ int32 = -1, -1
			for j := core; j < S; j += w.threads {
				if len(parents[j]) >= maxParents {
					continue
				}
				cand := w.shortl.At(t, j)
				if cand < 0 || hasParent(parents[j], cand) {
					continue
				}
				delta := w.bicDelta(t, int(cand), j, parents[j])
				if delta > localBest {
					localBest, localI, localJ = delta, cand, int32(j)
				}
			}
			w.bestSc.Set(t, core, localBest)
			w.bestIJ.Set(t, core*2, localI)
			w.bestIJ.Set(t, core*2+1, localJ)
			barrier.Wait(t)

			if core == 0 {
				// Reduce and apply the winning edge.
				winner := 0
				winBest := w.bestSc.At(t, 0)
				for k := 1; k < w.threads; k++ {
					if v := w.bestSc.At(t, k); v > winBest {
						winBest, winner = v, k
					}
				}
				i := w.bestIJ.At(t, winner*2)
				j := w.bestIJ.At(t, winner*2+1)
				if i >= 0 && winBest > 0 {
					parents[j] = append(parents[j], i)
					w.Edges = append(w.Edges, [2]int32{i, j})
					w.Score += winBest
					// Rescreen node j: next-best unused candidate.
					best, bestMI := int32(-1), -1.0
					for c := 0; c < int(j); c++ {
						if hasParent(parents[j], int32(c)) {
							continue
						}
						v := w.mi.At(t, int(j)*S+c)
						if v > bestMI {
							bestMI, best = v, int32(c)
						}
					}
					w.shortl.Set(t, int(j), best)
				}
			}
			barrier.Wait(t)
		}
	}), nil
}

// hasParent reports membership (host bookkeeping).
func hasParent(ps []int32, c int32) bool {
	for _, p := range ps {
		if p == c {
			return true
		}
	}
	return false
}

// pairMI computes the mutual information of sites i and j from packed
// columns via popcounts (traced word loads).
func (w *Workload) pairMI(t *softsdv.Thread, i, j int) float64 {
	N := w.seqs
	var n11, n1x, nx1 int
	for wd := 0; wd < w.wpc; wd++ {
		a := uint64(w.packed.At(t, i*w.wpc+wd))
		b := uint64(w.packed.At(t, j*w.wpc+wd))
		n11 += bits.OnesCount64(a & b)
		n1x += bits.OnesCount64(a)
		nx1 += bits.OnesCount64(b)
		t.Exec(4)
	}
	return miFromCounts(N, n1x, nx1, n11)
}

// miFromCounts computes MI of two binary variables from joint counts.
func miFromCounts(n, a, b, ab int) float64 {
	if n == 0 {
		return 0
	}
	fn := float64(n)
	p := [2][2]float64{}
	p[1][1] = float64(ab) / fn
	p[1][0] = float64(a-ab) / fn
	p[0][1] = float64(b-ab) / fn
	p[0][0] = 1 - p[1][1] - p[1][0] - p[0][1]
	pa := [2]float64{1 - float64(a)/fn, float64(a) / fn}
	pb := [2]float64{1 - float64(b)/fn, float64(b) / fn}
	var mi float64
	for x := 0; x < 2; x++ {
		for y := 0; y < 2; y++ {
			if p[x][y] > 0 && pa[x] > 0 && pb[y] > 0 {
				mi += p[x][y] * math.Log(p[x][y]/(pa[x]*pb[y]))
			}
		}
	}
	return mi
}

// bicDelta computes the exact BIC improvement of adding parent i to node
// j given its existing parents, by scanning the unpacked data columns.
// Parent configurations are enumerated over at most maxParents+1 binary
// parents.
func (w *Workload) bicDelta(t *softsdv.Thread, i, j int, ps []int32) float64 {
	N := w.seqs
	newPs := make([]int, 0, maxParents+1)
	for _, p := range ps {
		newPs = append(newPs, int(p))
	}
	withI := append(append([]int(nil), newPs...), i)

	llOld := w.logLik(t, j, newPs)
	llNew := w.logLik(t, j, withI)
	// BIC penalty: extra free parameters = 2^|ps| (doubling configs).
	penalty := 0.5 * math.Log(float64(N)) * float64(int(1)<<len(newPs))
	return (llNew - llOld) - penalty
}

// logLik computes the log-likelihood of node j's column given parent
// columns, scanning rows (traced).
func (w *Workload) logLik(t *softsdv.Thread, j int, ps []int) float64 {
	N := w.seqs
	nCfg := 1 << len(ps)
	counts := make([]int, nCfg*2)
	for n := 0; n < N; n++ {
		cfg := 0
		for k, p := range ps {
			if w.cols.At(t, p*N+n) != 0 {
				cfg |= 1 << k
			}
		}
		v := w.cols.At(t, j*N+n)
		counts[cfg*2+int(v)]++
		t.Exec(2)
	}
	var ll float64
	for c := 0; c < nCfg; c++ {
		n0, n1 := counts[c*2], counts[c*2+1]
		tot := n0 + n1
		if tot == 0 {
			continue
		}
		if n0 > 0 {
			ll += float64(n0) * math.Log(float64(n0)/float64(tot))
		}
		if n1 > 0 {
			ll += float64(n1) * math.Log(float64(n1)/float64(tot))
		}
	}
	return ll
}
