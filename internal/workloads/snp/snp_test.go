package snp

import (
	"testing"

	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/softsdv"
	"cmpmem/internal/workloads"
)

func run(t *testing.T, threads int, scale float64) *Workload {
	t.Helper()
	w := New(workloads.Params{Seed: 21, Scale: scale})
	bus := fsb.NewBus()
	sched, err := softsdv.NewScheduler(softsdv.Config{Cores: threads, Quantum: 20000}, bus)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := w.Build(mem.NewSpace(), sched, threads)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(prog); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestLearnsLocalStructure: the generator correlates sites within LD
// blocks of width 8, so hill climbing must pick parents within-block:
// every learned edge should be local.
func TestLearnsLocalStructure(t *testing.T) {
	w := run(t, 2, 1.0/512)
	if len(w.Edges) == 0 {
		t.Fatal("no edges learned")
	}
	local := 0
	for _, e := range w.Edges {
		if e[0] >= e[1] {
			t.Errorf("edge (%d->%d) violates topological ordering", e[0], e[1])
		}
		if e[1]-e[0] < int32(w.data.BlockSize) {
			local++
		}
	}
	if local*2 < len(w.Edges) {
		t.Errorf("only %d/%d edges are within an LD block; structure not recovered",
			local, len(w.Edges))
	}
}

func TestScoreImproves(t *testing.T) {
	w := run(t, 2, 1.0/512)
	if w.Score <= 0 {
		t.Errorf("accumulated BIC improvement %v, want > 0", w.Score)
	}
}

// TestThreadInvariance: the learned structure is a function of the data,
// not of the parallel decomposition (deterministic reduction order).
func TestThreadInvariance(t *testing.T) {
	e1 := run(t, 1, 1.0/512).Edges
	e4 := run(t, 4, 1.0/512).Edges
	if len(e1) != len(e4) {
		t.Fatalf("edge count differs: %d vs %d", len(e1), len(e4))
	}
	for i := range e1 {
		if e1[i] != e4[i] {
			t.Errorf("edge %d differs: %v vs %v", i, e1[i], e4[i])
		}
	}
}

func TestMIIsSymmetricAndInformative(t *testing.T) {
	// Direct MI check on a small instance: correlated neighbor sites
	// must carry more mutual information than distant sites on average.
	w := run(t, 1, 1.0/512)
	S := w.sites
	raw := w.mi.Raw()
	var near, far float64
	var nNear, nFar int
	for i := 0; i < S-1; i++ {
		near += raw[i*S+i+1]
		nNear++
		j := (i + S/2) % S
		if j != i {
			far += raw[i*S+j]
			nFar++
		}
	}
	if near/float64(nNear) <= far/float64(nFar) {
		t.Errorf("adjacent-site MI (%.4f) not above distant-site MI (%.4f)",
			near/float64(nNear), far/float64(nFar))
	}
	// Symmetry.
	for i := 0; i < S; i += S / 7 {
		for j := 0; j < S; j += S / 5 {
			if raw[i*S+j] != raw[j*S+i] {
				t.Fatalf("MI not symmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestParentLimitRespected(t *testing.T) {
	w := run(t, 2, 1.0/512)
	parents := map[int32]int{}
	for _, e := range w.Edges {
		parents[e[1]]++
		if parents[e[1]] > maxParents {
			t.Errorf("node %d has %d parents, max %d", e[1], parents[e[1]], maxParents)
		}
	}
}

func TestMetadata(t *testing.T) {
	w := New(workloads.Params{Seed: 1})
	if w.Name() != "SNP" {
		t.Errorf("name = %q", w.Name())
	}
	if w.Category() != workloads.SharedWS {
		t.Error("SNP must be in the shared-working-set category")
	}
}

func TestMIFromCounts(t *testing.T) {
	// Perfectly correlated variables: MI = H(X) = ln 2 for p=1/2.
	mi := miFromCounts(100, 50, 50, 50)
	if mi < 0.69 || mi > 0.70 {
		t.Errorf("MI of identical fair coins = %v, want ~ln2", mi)
	}
	// Independent variables: joint = product -> MI 0.
	mi = miFromCounts(100, 50, 50, 25)
	if mi > 1e-12 {
		t.Errorf("MI of independent vars = %v, want 0", mi)
	}
	if miFromCounts(0, 0, 0, 0) != 0 {
		t.Error("empty sample MI must be 0")
	}
}
