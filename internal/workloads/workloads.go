// Package workloads defines the common contract implemented by the eight
// parallel data-mining applications of the paper (Table 1): SNP, SVM-RFE,
// RSEARCH, FIMI, PLSA, MDS, SHOT, and VIEWTYPE.
//
// Each workload is a real implementation of the underlying algorithm; it
// performs its computation on Go data while reporting every load and
// store — with simulated guest addresses — through the executing
// softsdv.Thread. Problem sizes derive from a single Scale knob:
// Scale=1 reproduces the paper's footprints (30 MB-300 MB structures);
// the default harness scale of 1/16 shrinks every structure and the cache
// sweep by the same factor, preserving the position of each working-set
// knee relative to the cache sizes.
package workloads

import (
	"fmt"
	"math"

	"cmpmem/internal/mem"
	"cmpmem/internal/softsdv"
)

// DefaultScale is the harness default: 1/16 of paper-size footprints.
const DefaultScale = 1.0 / 16

// Params control problem sizing for every workload.
type Params struct {
	// Seed makes datasets and any algorithmic tie-breaking deterministic.
	Seed int64
	// Scale is the footprint scale relative to the paper (1.0 = paper).
	Scale float64
}

// WithDefaults fills zero fields.
func (p Params) WithDefaults() Params {
	if p.Scale == 0 {
		p.Scale = DefaultScale
	}
	return p
}

// ScaleInt scales a paper-sized integer dimension, keeping a floor.
func (p Params) ScaleInt(paperSize int, floor int) int {
	v := int(float64(paperSize) * p.Scale)
	if v < floor {
		v = floor
	}
	return v
}

// ScaleSqrt scales a dimension by sqrt(Scale), for 2-D structures whose
// footprint must scale linearly while both dimensions shrink.
func (p Params) ScaleSqrt(paperSize int, floor int) int {
	s := p.Scale
	if s <= 0 {
		s = DefaultScale
	}
	v := int(float64(paperSize) * math.Sqrt(s))
	if v < floor {
		v = floor
	}
	return v
}

// Workload is one parallel data-mining application.
type Workload interface {
	// Name is the paper's short name (e.g. "FIMI").
	Name() string
	// Description summarizes the algorithm (Table 1 / Section 2).
	Description() string
	// Table1 returns the "Parameters" and "Size of Data Input" columns
	// at the configured scale.
	Table1() (params, datasetSize string)
	// Build allocates the workload's datasets and data structures in
	// the given address space (untraced, as dataset loading precedes
	// the measured region) and returns the guest program for the given
	// thread count. sched provides scheduler-integrated barriers.
	Build(sp *mem.Space, sched *softsdv.Scheduler, threads int) (softsdv.Program, error)
}

// SharingCategory classifies thread-scaling behaviour (Section 4.3).
type SharingCategory int

const (
	// SharedWS: all threads share a primary data structure; cache
	// performance does not vary with thread count (SNP, SVM-RFE, MDS,
	// PLSA).
	SharedWS SharingCategory = iota
	// MixedWS: a large shared structure plus per-thread private data;
	// misses grow 20-30% with core doublings (FIMI, RSEARCH).
	MixedWS
	// PrivateWS: threads work on private structures; the working set
	// grows linearly with cores (SHOT, VIEWTYPE).
	PrivateWS
)

// Categorizer is implemented by workloads that declare their sharing
// category for reporting.
type Categorizer interface {
	Category() SharingCategory
}

// MiB formats a byte count for Table 1.
func MiB(n uint64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
