// Package svmrfe implements the paper's SVM-RFE workload: a linear
// support-vector machine trained by dual coordinate descent, wrapped in
// Recursive Feature Elimination — after each training round the genes
// with the smallest squared weights are discarded and the model is
// retrained on the survivors (Section 2.2). This is the gene-selection
// method used in disease finding on micro-array data.
//
// Memory behaviour (paper findings this reproduces): training streams
// the expression matrix row by row with the data-blocking optimization
// the paper's footnote mentions — samples are processed in cache-sized
// blocks with several inner sweeps per block, so the measured working
// set is the block, not the full matrix. The parallel decomposition is
// a cascade: threads train on disjoint sample shards of the one shared
// matrix and average their weight vectors each epoch, so the shared
// matrix dominates the footprint and cache behaviour is invariant with
// thread count (category (a)); the full-row unit-stride sweeps make the
// workload prefetch- and large-line-friendly.
package svmrfe

import (
	"fmt"
	"math"
	"sort"

	"cmpmem/internal/datasets"
	"cmpmem/internal/mem"
	"cmpmem/internal/softsdv"
	"cmpmem/internal/workloads"
)

// Paper-equivalent sizes: 253 tissue samples with 15k genes (30 MB
// matrix); the blocked working set is 4 MB.
const (
	paperSamples = 253
	paperGenes   = 15000
	// paperBlockWS is the blocked training working set. The paper's
	// footnote attributes SVM-RFE's small working set to data-blocking
	// optimizations; its Table 2 DL2 miss rate (2.96/1k on a 512 KB L2)
	// implies the block was sized to the L2, so we block at 512 KB
	// paper-equivalent. The Figure 4 curve is flat from the smallest
	// measured cache (4 MB) either way, as in the paper.
	paperBlockWS   = 512 << 10
	rfeSteps       = 3   // elimination rounds
	rfeKeep        = 0.5 // fraction of genes kept per round
	innerSweeps    = 6   // sweeps per sample block (the blocking knob)
	outerEpochs    = 4   // full passes per training round
	regularization = 1.0 // SVM C parameter
)

// Workload is the SVM-RFE instance.
type Workload struct {
	p workloads.Params

	samples int
	genes   int
	block   int // samples per training block

	data *datasets.Microarray

	// Simulated buffers: ping-pong matrices for RFE compaction.
	x       [2]mem.Float64s // row-major samples × activeGenes
	y       mem.Float64s
	w       mem.Float64s   // consensus weight vector (active genes)
	wLocal  []mem.Float64s // per-thread cascade weight vectors
	alpha   mem.Float64s
	geneIDs [2]mem.Int32s // active gene ids (for final ranking)

	threads int

	// Ranking is the final surviving gene list, most recently trained
	// model first; for validation against the planted informative set.
	Ranking []int32
}

// New builds an SVM-RFE workload description.
func New(p workloads.Params) *Workload {
	p = p.WithDefaults()
	// Matrix bytes = samples*genes*8 scaled from 30 MB.
	genes := int(float64(paperGenes) * p.Scale)
	if genes < 128 {
		genes = 128
	}
	samples := paperSamples
	// Block: rows per block so that block*genes*8 ≈ paperBlockWS*Scale.
	rowBytes := genes * 8
	block := int(float64(paperBlockWS) * p.Scale / float64(rowBytes))
	if block < 8 {
		block = 8
	}
	if block > samples {
		block = samples
	}
	return &Workload{p: p, samples: samples, genes: genes, block: block}
}

// Name implements workloads.Workload.
func (w *Workload) Name() string { return "SVM-RFE" }

// Description implements workloads.Workload.
func (w *Workload) Description() string {
	return "linear SVM (dual coordinate descent) with recursive feature elimination on micro-array data"
}

// Table1 implements workloads.Workload.
func (w *Workload) Table1() (string, string) {
	return fmt.Sprintf("%d tissue samples, each with %d genes (scaled)", w.samples, w.genes),
		workloads.MiB(uint64(w.samples) * uint64(w.genes) * 8)
}

// Category implements workloads.Categorizer.
func (w *Workload) Category() workloads.SharingCategory { return workloads.SharedWS }

// Build implements workloads.Workload.
func (w *Workload) Build(sp *mem.Space, sched *softsdv.Scheduler, threads int) (softsdv.Program, error) {
	if threads < 1 {
		return nil, fmt.Errorf("svmrfe: threads must be >= 1, got %d", threads)
	}
	w.threads = threads
	w.data = datasets.GenMicroarray(w.p.Seed, w.samples, w.genes, 0.05)

	matBytes := uint64(w.samples) * uint64(w.genes) * 8
	arena := sp.NewArena("svmrfe/matrix", 2*matBytes+2*uint64(w.genes)*4+1<<16)
	for k := 0; k < 2; k++ {
		w.x[k] = arena.Float64s(w.samples * w.genes)
		w.geneIDs[k] = arena.Int32s(w.genes)
	}
	copy(w.x[0].Raw(), w.data.X)
	for g := 0; g < w.genes; g++ {
		w.geneIDs[0].Raw()[g] = int32(g)
	}
	vec := sp.NewArena("svmrfe/vectors",
		uint64(w.genes)*8*uint64(threads+1)+uint64(w.samples)*16+1<<12)
	w.w = vec.Float64s(w.genes)
	w.y = vec.Float64s(w.samples)
	copy(w.y.Raw(), w.data.Y)
	w.alpha = vec.Float64s(w.samples)
	w.wLocal = make([]mem.Float64s, threads)
	for k := 0; k < threads; k++ {
		w.wLocal[k] = vec.Float64s(w.genes)
	}

	barrier := sched.NewBarrier(threads)

	return softsdv.ProgramFunc(func(t *softsdv.Thread, core int) {
		active := w.genes
		cur := 0
		for step := 0; ; step++ {
			w.train(t, core, cur, active, barrier)
			if step == rfeSteps {
				break
			}
			active = w.eliminate(t, core, cur, active, barrier)
			cur = 1 - cur
		}
		if core == 0 {
			w.Ranking = append([]int32(nil), w.geneIDs[cur].Raw()[:active]...)
		}
		barrier.Wait(t)
	}), nil
}

// train runs the cascade: each thread performs blocked dual coordinate
// descent on its own sample shard against its local weight vector, and
// the shard models are averaged into the consensus vector after every
// epoch (threads partition the gene dimension for the reduction).
func (w *Workload) train(t *softsdv.Thread, core, cur, active int, barrier *softsdv.Barrier) {
	x := w.x[cur]
	wl := w.wLocal[core]

	// Sample shard of this thread.
	sLo := core * w.samples / w.threads
	sHi := (core + 1) * w.samples / w.threads
	// Gene slice of this thread (for consensus averaging).
	gLo := core * active / w.threads
	gHi := (core + 1) * active / w.threads

	// Reset shard model.
	for i := sLo; i < sHi; i++ {
		w.alpha.Set(t, i, 0)
	}
	for g := 0; g < active; g++ {
		wl.Set(t, g, 0)
	}
	barrier.Wait(t)

	// Shrinking (the "data blocking optimizations" of the paper's
	// footnote, as implemented by liblinear-style solvers): rows whose
	// dual variable is stuck at a bound are dropped from later sweeps,
	// so after the first epoch only the support-vector rows stream —
	// this is what keeps the measured working set far below the matrix.
	rowActive := make([]bool, sHi-sLo)
	for i := range rowActive {
		rowActive[i] = true
	}
	// Diagonal of the Gram matrix (row norms), accumulated during the
	// first sweep's row reads — the proper DCD step size divisor.
	qii := make([]float64, sHi-sLo)

	for epoch := 0; epoch < outerEpochs; epoch++ {
		// Un-shrink at epoch start: the consensus model changed, so
		// previously bounded rows may move again (periodic shrinking
		// reset, as production solvers do).
		for i := range rowActive {
			rowActive[i] = true
		}
		for b0 := sLo; b0 < sHi; b0 += w.block {
			b1 := b0 + w.block
			if b1 > sHi {
				b1 = sHi
			}
			for sweep := 0; sweep < innerSweeps; sweep++ {
				for i := b0; i < b1; i++ {
					if !rowActive[i-sLo] {
						continue
					}
					row := i * w.genes
					// Full-row dot product against the local model.
					var dot float64
					if epoch == 0 && sweep == 0 {
						var q float64
						for g := 0; g < active; g++ {
							xv := x.At(t, row+g)
							dot += xv * wl.At(t, g)
							q += xv * xv
							t.Exec(3)
						}
						qii[i-sLo] = q
					} else {
						for g := 0; g < active; g++ {
							dot += x.At(t, row+g) * wl.At(t, g)
							t.Exec(2)
						}
					}
					yi := w.y.At(t, i)
					// Dual coordinate descent step for L1-loss SVM.
					grad := yi*dot - 1
					a := w.alpha.At(t, i)
					q := qii[i-sLo]
					if q == 0 {
						q = 1
					}
					na := a - grad/q
					if na < 0 {
						na = 0
					} else if na > regularization {
						na = regularization
					}
					dy := (na - a) * yi
					w.alpha.Set(t, i, na)
					t.Exec(8)
					if dy != 0 {
						for g := 0; g < active; g++ {
							wl.Set(t, g, wl.At(t, g)+dy*x.At(t, row+g))
							t.Exec(2)
						}
					} else if na == 0 || na == regularization {
						// Bounded and not moving: shrink the row out.
						rowActive[i-sLo] = false
					}
				}
			}
		}
		// Consensus: average the shard models, gene-sliced per thread.
		barrier.Wait(t)
		inv := 1 / float64(w.threads)
		for g := gLo; g < gHi; g++ {
			var sum float64
			for k := 0; k < w.threads; k++ {
				sum += w.wLocal[k].At(t, g)
				t.Exec(1)
			}
			w.w.Set(t, g, sum*inv)
		}
		barrier.Wait(t)
		// Shards restart each epoch from the consensus model.
		for g := 0; g < active; g++ {
			wl.Set(t, g, w.w.At(t, g))
		}
		barrier.Wait(t)
	}
}

// eliminate drops the lowest-|w| half of the active genes, compacting
// the matrix into the other ping-pong buffer in parallel (threads
// partition the sample rows). Returns the new active count.
func (w *Workload) eliminate(t *softsdv.Thread, core, cur, active int, barrier *softsdv.Barrier) int {
	next := 1 - cur
	keep := int(float64(active) * rfeKeep)
	if keep < 8 {
		keep = 8
	}

	// Core 0 ranks genes by squared weight (reads traced, sort is host
	// bookkeeping) and publishes the keep list through geneIDs[next].
	if core == 0 {
		type gw struct {
			g  int32
			w2 float64
		}
		ranked := make([]gw, active)
		for g := 0; g < active; g++ {
			v := w.w.At(t, g)
			ranked[g] = gw{int32(g), v * v}
			t.Exec(1)
		}
		sort.Slice(ranked, func(a, b int) bool { return ranked[a].w2 > ranked[b].w2 })
		kept := ranked[:keep]
		sort.Slice(kept, func(a, b int) bool { return kept[a].g < kept[b].g })
		for k, r := range kept {
			// Map through the current id table to global gene ids.
			gid := w.geneIDs[cur].At(t, int(r.g))
			w.geneIDs[next].Set(t, k, gid)
			// Stash the source column index in the upper table half so
			// compaction threads can read it (host slice keeps it too).
			w.geneIDs[next].Raw()[w.genes-keep+k] = r.g
		}
	}
	barrier.Wait(t)

	srcCols := w.geneIDs[next].Raw()[w.genes-keep : w.genes]
	rlo := core * w.samples / w.threads
	rhi := (core + 1) * w.samples / w.threads
	for i := rlo; i < rhi; i++ {
		src := i * w.genes
		dst := i * w.genes
		for k := 0; k < keep; k++ {
			v := w.x[cur].At(t, src+int(srcCols[k]))
			w.x[next].Set(t, dst+k, v)
			t.Exec(1)
		}
	}
	barrier.Wait(t)
	return keep
}

// ReferenceAccuracy trains natively (untraced) with the same algorithm
// and returns the fraction of planted informative genes surviving RFE —
// used by tests to validate the learner.
func (w *Workload) ReferenceAccuracy() float64 {
	data := datasets.GenMicroarray(w.p.Seed, w.samples, w.genes, 0.05)
	x := append([]float64(nil), data.X...)
	ids := make([]int32, w.genes)
	for i := range ids {
		ids[i] = int32(i)
	}
	active := w.genes
	wv := make([]float64, w.genes)
	alpha := make([]float64, w.samples)
	for step := 0; ; step++ {
		for i := range alpha {
			alpha[i] = 0
		}
		for g := 0; g < active; g++ {
			wv[g] = 0
		}
		for epoch := 0; epoch < outerEpochs*innerSweeps; epoch++ {
			for i := 0; i < w.samples; i++ {
				row := i * w.genes
				var dot, q float64
				for g := 0; g < active; g++ {
					dot += x[row+g] * wv[g]
					q += x[row+g] * x[row+g]
				}
				if q == 0 {
					q = 1
				}
				yi := data.Y[i]
				grad := yi*dot - 1
				na := alpha[i] - grad/q
				if na < 0 {
					na = 0
				} else if na > regularization {
					na = regularization
				}
				d := (na - alpha[i]) * yi
				alpha[i] = na
				if d != 0 {
					for g := 0; g < active; g++ {
						wv[g] += d * x[row+g]
					}
				}
			}
		}
		if step == rfeSteps {
			break
		}
		keep := int(float64(active) * rfeKeep)
		if keep < 8 {
			keep = 8
		}
		idx := make([]int, active)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return math.Abs(wv[idx[a]]) > math.Abs(wv[idx[b]])
		})
		srcs := append([]int(nil), idx[:keep]...)
		sort.Ints(srcs)
		newIDs := make([]int32, keep)
		for k, s := range srcs {
			newIDs[k] = ids[s]
		}
		for i := 0; i < w.samples; i++ {
			row := i * w.genes
			for k, s := range srcs {
				x[row+k] = x[row+s]
			}
			_ = row
		}
		copy(ids, newIDs)
		active = keep
	}
	inf := make(map[int32]bool, len(data.Informative))
	for _, g := range data.Informative {
		inf[int32(g)] = true
	}
	hits := 0
	for _, g := range ids[:active] {
		if inf[g] {
			hits++
		}
	}
	// Fraction of survivors that are informative.
	return float64(hits) / float64(active)
}
