package svmrfe

import (
	"testing"

	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/softsdv"
	"cmpmem/internal/workloads"
)

func run(t *testing.T, threads int, scale float64) *Workload {
	t.Helper()
	w := New(workloads.Params{Seed: 31, Scale: scale})
	bus := fsb.NewBus()
	sched, err := softsdv.NewScheduler(softsdv.Config{Cores: threads, Quantum: 20000}, bus)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := w.Build(mem.NewSpace(), sched, threads)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(prog); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestRFEEnrichesInformativeGenes: the generator plants 5% informative
// genes; after 3 halvings (12.5% of genes survive), the surviving set
// must be strongly enriched in informative genes — far beyond the 5%
// base rate.
func TestRFEEnrichesInformativeGenes(t *testing.T) {
	w := run(t, 2, 1.0/512)
	if len(w.Ranking) == 0 {
		t.Fatal("no surviving genes")
	}
	inf := map[int32]bool{}
	for _, g := range w.data.Informative {
		inf[int32(g)] = true
	}
	hits := 0
	for _, g := range w.Ranking {
		if inf[g] {
			hits++
		}
	}
	frac := float64(hits) / float64(len(w.Ranking))
	base := float64(len(w.data.Informative)) / float64(w.genes)
	t.Logf("informative fraction among survivors: %.2f (base rate %.2f)", frac, base)
	if frac < 3*base {
		t.Errorf("survivors not enriched: %.3f vs base %.3f", frac, base)
	}
}

// TestParallelStillLearns: the cascade decomposition (sample shards +
// weight averaging) trains a different — but equally valid — model per
// thread count; every configuration must stay strongly enriched in
// informative genes.
func TestParallelStillLearns(t *testing.T) {
	for _, threads := range []int{1, 2, 4, 8} {
		w := run(t, threads, 1.0/512)
		inf := map[int32]bool{}
		for _, g := range w.data.Informative {
			inf[int32(g)] = true
		}
		hits := 0
		for _, g := range w.Ranking {
			if inf[g] {
				hits++
			}
		}
		frac := float64(hits) / float64(len(w.Ranking))
		base := float64(len(w.data.Informative)) / float64(w.genes)
		if frac < 3*base {
			t.Errorf("threads=%d: survivors not enriched: %.3f vs base %.3f",
				threads, frac, base)
		}
	}
}

func TestSurvivorCountFollowsSchedule(t *testing.T) {
	w := run(t, 2, 1.0/512)
	want := w.genes
	for i := 0; i < rfeSteps; i++ {
		want = int(float64(want) * rfeKeep)
		if want < 8 {
			want = 8
		}
	}
	if len(w.Ranking) != want {
		t.Errorf("survivors = %d, want %d", len(w.Ranking), want)
	}
}

func TestReferenceAccuracyAgrees(t *testing.T) {
	w := New(workloads.Params{Seed: 31, Scale: 1.0 / 512})
	acc := w.ReferenceAccuracy()
	if acc < 0.15 {
		t.Errorf("native reference accuracy %.3f too low — learner broken", acc)
	}
}

func TestMetadata(t *testing.T) {
	w := New(workloads.Params{Seed: 1})
	if w.Name() != "SVM-RFE" {
		t.Errorf("name = %q", w.Name())
	}
	if w.Category() != workloads.SharedWS {
		t.Error("SVM-RFE must be in the shared-working-set category")
	}
	if w.block <= 0 || w.block > w.samples {
		t.Errorf("block size %d out of range", w.block)
	}
}
