package rsearch

import (
	"testing"

	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/softsdv"
	"cmpmem/internal/workloads"
)

func run(t *testing.T, threads int, scale float64) *Workload {
	t.Helper()
	w := New(workloads.Params{Seed: 41, Scale: scale})
	bus := fsb.NewBus()
	sched, err := softsdv.NewScheduler(softsdv.Config{Cores: threads, Quantum: 20000}, bus)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := w.Build(mem.NewSpace(), sched, threads)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(prog); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestFindsPlantedHomologs: the database carries 16 mutated copies of
// the query; the top hits must land near planted positions far more
// often than chance.
func TestFindsPlantedHomologs(t *testing.T) {
	w := run(t, 4, 1.0/256)
	if len(w.Hits) == 0 {
		t.Fatal("no hits returned")
	}
	nearPlanted := func(pos int32) bool {
		for _, p := range w.Planted() {
			d := int(pos) - p
			if d < 0 {
				d = -d
			}
			if d <= queryLen {
				return true
			}
		}
		return false
	}
	top := w.Hits
	if len(top) > 8 {
		top = top[:8]
	}
	found := 0
	for _, h := range top {
		if nearPlanted(h.Pos) {
			found++
		}
	}
	t.Logf("%d/%d top hits near planted homologs (planted at %v)", found, len(top), w.Planted())
	if found == 0 {
		t.Error("no top hit near any planted homolog")
	}
}

// TestHitsSortedByScore: merged results are descending.
func TestHitsSortedByScore(t *testing.T) {
	w := run(t, 2, 1.0/256)
	for i := 1; i < len(w.Hits); i++ {
		if w.Hits[i].Score > w.Hits[i-1].Score {
			t.Fatalf("hits not sorted at %d: %d > %d", i, w.Hits[i].Score, w.Hits[i-1].Score)
		}
	}
}

// TestStructureBonusMatters: the CYK score of the true query (which
// matches its own annotated structure) must exceed the score of a
// random window of the same composition.
func TestCYKScoresQueryHighest(t *testing.T) {
	w := run(t, 1, 1.0/256)
	// The best hit score should reflect base pairing + structure
	// bonuses, i.e. clearly above zero.
	if w.Hits[0].Score <= 0 {
		t.Errorf("top CYK score %d, want > 0", w.Hits[0].Score)
	}
}

func TestCanPair(t *testing.T) {
	pairs := [][2]byte{{0, 3}, {3, 0}, {1, 2}, {2, 1}, {2, 3}, {3, 2}}
	for _, p := range pairs {
		if !canPair(p[0], p[1]) {
			t.Errorf("canPair(%d,%d) = false, want true", p[0], p[1])
		}
	}
	nonPairs := [][2]byte{{0, 0}, {0, 1}, {1, 3}, {2, 2}}
	for _, p := range nonPairs {
		if canPair(p[0], p[1]) {
			t.Errorf("canPair(%d,%d) = true, want false", p[0], p[1])
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, 4, 1.0/256)
	b := run(t, 4, 1.0/256)
	if len(a.Hits) != len(b.Hits) {
		t.Fatalf("hit counts differ: %d vs %d", len(a.Hits), len(b.Hits))
	}
	for i := range a.Hits {
		if a.Hits[i] != b.Hits[i] {
			t.Fatalf("hit %d differs: %+v vs %+v", i, a.Hits[i], b.Hits[i])
		}
	}
}

func TestMetadata(t *testing.T) {
	w := New(workloads.Params{Seed: 1})
	if w.Name() != "RSEARCH" {
		t.Errorf("name = %q", w.Name())
	}
	if w.Category() != workloads.MixedWS {
		t.Error("RSEARCH must be in the mixed-sharing category")
	}
}
