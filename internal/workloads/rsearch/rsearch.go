// Package rsearch implements the paper's RSEARCH workload: searching a
// nucleotide database for homologs of a structured RNA query
// (Section 2.2). RSEARCH proper decodes a stochastic context-free
// grammar with the CYK parsing algorithm; this implementation keeps the
// CYK core — an O(L³)-family dynamic program over substring spans that
// maximizes structure-weighted base pairing (Nussinov-CYK) — and bounds
// total work with a sequence-similarity prefilter, scoring every window
// with a cheap k-mer pass and running the full CYK parse only on the
// best candidates. The substitution is documented in DESIGN.md: the
// memory structure (streaming database scan + private per-thread
// triangular DP matrices) is what the characterization measures.
//
// Memory behaviour (paper findings this reproduces): the database is
// shared and streamed; every thread owns private DP matrices and
// candidate buffers, so the working set grows with thread count
// (Figures 5-6; ~0.5 MB paper-equivalent per thread), and the absolute
// miss rate stays low (Table 2) because the DP tiles are cache-resident.
package rsearch

import (
	"fmt"
	"sort"

	"cmpmem/internal/datasets"
	"cmpmem/internal/mem"
	"cmpmem/internal/softsdv"
	"cmpmem/internal/workloads"
)

// Paper parameters: 100 MB database, query length 100.
const (
	paperDBBytes = 100 << 20
	queryLen     = 48 // scaled query (window) length
	windowStep   = 32 // database scan stride
	kmerLen      = 6  // prefilter k-mer length
	totalParses  = 32 // CYK parses across the whole run (split by thread)
	pairMin      = 4  // minimum hairpin loop length for pairing
)

// Hit is one reported homolog candidate.
type Hit struct {
	Pos   int32
	Score int32
}

// Workload is the RSEARCH instance.
type Workload struct {
	p workloads.Params

	dbLen   int
	threads int
	query   []byte

	// Shared simulated buffers.
	db    mem.Bytes
	qbuf  mem.Bytes
	qpair mem.Int32s // query structure: pairing partner or -1

	// Host-side results.
	perThread [][]Hit
	planted   []int
	// Hits is the merged result list (descending score).
	Hits []Hit
}

// New builds an RSEARCH workload description.
func New(p workloads.Params) *Workload {
	p = p.WithDefaults()
	dbLen := p.ScaleInt(paperDBBytes, 1<<14)
	return &Workload{p: p, dbLen: dbLen}
}

// Name implements workloads.Workload.
func (w *Workload) Name() string { return "RSEARCH" }

// Description implements workloads.Workload.
func (w *Workload) Description() string {
	return "RNA homology search: k-mer prefilter + CYK structural parse over database windows"
}

// Table1 implements workloads.Workload.
func (w *Workload) Table1() (string, string) {
	return fmt.Sprintf("%s database, search sequence size %d (scaled)",
			workloads.MiB(uint64(w.dbLen)), queryLen),
		workloads.MiB(uint64(w.dbLen))
}

// Category implements workloads.Categorizer.
func (w *Workload) Category() workloads.SharingCategory { return workloads.MixedWS }

// Planted returns the positions where homologs were embedded.
func (w *Workload) Planted() []int { return w.planted }

// Build implements workloads.Workload.
func (w *Workload) Build(sp *mem.Space, sched *softsdv.Scheduler, threads int) (softsdv.Program, error) {
	if threads < 1 {
		return nil, fmt.Errorf("rsearch: threads must be >= 1, got %d", threads)
	}
	w.threads = threads
	w.query = datasets.Nucleotides(w.p.Seed^0x9a, queryLen)
	dbRaw := datasets.Nucleotides(w.p.Seed, w.dbLen)
	w.planted = datasets.PlantHomologs(w.p.Seed^0x51, dbRaw, w.query, 16)

	shared := sp.NewArena("rsearch/db", uint64(w.dbLen)+queryLen*8+1<<12)
	w.db = shared.Bytes(w.dbLen)
	copy(w.db.Raw(), dbRaw)
	w.qbuf = shared.Bytes(queryLen)
	copy(w.qbuf.Raw(), w.query)
	w.qpair = shared.Int32s(queryLen)
	// Query secondary structure: a deterministic stem-loop — position i
	// pairs with queryLen-1-i for the outer third (a hairpin).
	for i := 0; i < queryLen; i++ {
		w.qpair.Raw()[i] = -1
	}
	for i := 0; i < queryLen/3; i++ {
		j := queryLen - 1 - i
		w.qpair.Raw()[i] = int32(j)
		w.qpair.Raw()[j] = int32(i)
	}

	w.perThread = make([][]Hit, threads)
	barrier := sched.NewBarrier(threads)

	return softsdv.ProgramFunc(func(t *softsdv.Thread, core int) {
		// Private per-thread DP matrix (triangular, queryLen²/2) and
		// window buffer — the structures that grow the working set with
		// thread count.
		priv := sp.NewArena(fmt.Sprintf("rsearch/dp%d", core),
			uint64(queryLen)*uint64(queryLen)*4+queryLen+uint64(4*totalParses)*8+4*(1<<(2*kmerLen))+1<<12)
		dp := priv.Int32s(queryLen * queryLen)
		window := priv.Bytes(queryLen)
		// The CYK budget is global: each thread parses its share, so
		// the total structural-parse work is thread-count invariant.
		perThread := totalParses / threads
		if perThread < 2 {
			perThread = 2
		}
		candPos := priv.Int32s(perThread)
		candScore := priv.Int32s(perThread)
		// Private query k-mer table, indexed by 2-bit-packed k-mer: the
		// hot per-thread structure the prefilter probes at every
		// database position.
		qk := priv.Int32s(1 << (2 * kmerLen))
		var h uint32
		for i := 0; i < queryLen; i++ {
			h = (h<<2 | uint32(w.qbuf.At(t, i))) & (1<<(2*kmerLen) - 1)
			if i >= kmerLen-1 {
				qk.Set(t, int(h), 1)
			}
		}

		// Phase 1: streaming prefilter over this thread's database
		// shard. Rolling k-mer hash; score = matching k-mers per window.
		shard := (w.dbLen + w.threads - 1) / w.threads
		lo := core * shard
		hi := lo + shard
		if hi > w.dbLen {
			hi = w.dbLen
		}
		nc := 0
		worst := -1
		h = 0
		match := 0
		for pos := lo; pos < hi; pos++ {
			h = (h<<2 | uint32(w.db.At(t, pos))) & (1<<(2*kmerLen) - 1)
			if pos-lo >= kmerLen-1 && qk.At(t, int(h)) != 0 {
				match++
			}
			t.Exec(2)
			if (pos-lo)%windowStep == windowStep-1 && pos-lo >= queryLen {
				w0 := pos - queryLen + 1
				score := int32(match)
				match = match / 2 // decayed carry into next window
				nc, worst = keepCandidate(t, candPos, candScore, nc, &worst, int32(w0), score)
			}
		}

		// Phase 2: full CYK parse of the surviving candidates.
		var hits []Hit
		for c := 0; c < nc; c++ {
			p0 := int(candPos.At(t, c))
			for i := 0; i < queryLen; i++ {
				b := w.db.At(t, p0+i)
				window.Set(t, i, b)
			}
			score := w.cyk(t, dp, window)
			hits = append(hits, Hit{Pos: int32(p0), Score: score})
		}
		sort.Slice(hits, func(a, b int) bool { return hits[a].Score > hits[b].Score })
		w.perThread[core] = hits
		barrier.Wait(t)
		if core == 0 {
			w.Hits = w.Hits[:0]
			for _, part := range w.perThread {
				w.Hits = append(w.Hits, part...)
			}
			sort.Slice(w.Hits, func(a, b int) bool { return w.Hits[a].Score > w.Hits[b].Score })
		}
	}), nil
}

// keepCandidate maintains the top-N candidate arrays (traced stores).
func keepCandidate(t *softsdv.Thread, pos, score mem.Int32s, n int, worst *int, p, s int32) (int, int) {
	if n < pos.Len() {
		pos.Set(t, n, p)
		score.Set(t, n, s)
		return n + 1, -1
	}
	// Find/replace the worst (lazy cache of its index).
	wi := *worst
	if wi < 0 {
		wi = 0
		ws := score.At(t, 0)
		for k := 1; k < n; k++ {
			if v := score.At(t, k); v < ws {
				ws, wi = v, k
			}
		}
	}
	if s > score.At(t, wi) {
		pos.Set(t, wi, p)
		score.Set(t, wi, s)
		return n, -1
	}
	return n, wi
}

// cyk runs the structure-weighted Nussinov-CYK parse on the window:
// dp[i][j] = best weighted pairing score of window[i..j], with pairs
// that mirror the query's annotated structure earning a bonus.
func (w *Workload) cyk(t *softsdv.Thread, dp mem.Int32s, win mem.Bytes) int32 {
	L := queryLen
	idx := func(i, j int) int { return i*L + j }
	for span := 0; span < pairMin; span++ {
		for i := 0; i+span < L; i++ {
			dp.Set(t, idx(i, i+span), 0)
		}
	}
	for span := pairMin; span < L; span++ {
		for i := 0; i+span < L; i++ {
			j := i + span
			// Case 1: j unpaired.
			best := dp.At(t, idx(i, j-1))
			// Case 2: j pairs with k in [i, j-pairMin].
			bj := win.At(t, j)
			for k := i; k <= j-pairMin; k++ {
				bk := win.At(t, k)
				if !canPair(bk, bj) {
					t.Exec(1)
					continue
				}
				var left int32
				if k > i {
					left = dp.At(t, idx(i, k-1))
				}
				inner := dp.At(t, idx(k+1, j-1))
				bonus := int32(1)
				if w.qpair.At(t, k) == int32(j) {
					bonus = 3 // pair matches the query structure
				}
				if v := left + inner + bonus; v > best {
					best = v
				}
				t.Exec(3)
			}
			dp.Set(t, idx(i, j), best)
		}
	}
	return dp.At(t, idx(0, L-1))
}

// canPair reports Watson-Crick/wobble pairing of two bases (0..3 =
// A,C,G,U).
func canPair(a, b byte) bool {
	switch {
	case a == 0 && b == 3, a == 3 && b == 0: // A-U
		return true
	case a == 1 && b == 2, a == 2 && b == 1: // C-G
		return true
	case a == 2 && b == 3, a == 3 && b == 2: // G-U wobble
		return true
	}
	return false
}
