// Package viewtype implements the paper's VIEWTYPE workload: sports
// video view-type classification (Section 2.6). For each key frame the
// pipeline converts RGB to HSV, adaptively trains the playfield's
// dominant color by accumulating an HSV histogram over many frames,
// segments the playfield by dominant-color thresholding, runs
// connected-component analysis on the segmentation mask, and classifies
// the frame as global, medium, close-up, or out-of-view from the
// playfield area (and largest-component) statistics.
//
// Memory behaviour (paper findings this reproduces): each thread decodes
// and segments its own key frames — frame, HSV, mask and label planes
// are thread-private (~1 MB paper-equivalent per thread), so the working
// set scales linearly with thread count (Figures 5-6). The plane sweeps
// are unit-stride, so VIEWTYPE profits from prefetching, especially in
// parallel mode (Figure 8).
package viewtype

import (
	"fmt"

	"cmpmem/internal/datasets"
	"cmpmem/internal/mem"
	"cmpmem/internal/softsdv"
	"cmpmem/internal/workloads"
)

// Paper parameters: 10-minute MPEG-2 clip at 720×576; segmentation runs
// at half resolution (the low-level processing the paper describes).
const (
	paperWidth      = 360
	paperHeight     = 288
	hueBins         = 64
	framesPerThread = 24
	hueTolerance    = 6 // bins around the dominant hue kept as playfield
)

// Result is the per-frame classification.
type Result struct {
	Frame int32
	View  datasets.ViewKind
}

// Workload is the VIEWTYPE instance.
type Workload struct {
	p workloads.Params

	width, height int
	video         *datasets.Video
	threads       int

	perThread [][]Result
	// Results holds all per-frame classifications after a run.
	Results []Result
}

// New builds a VIEWTYPE workload description.
func New(p workloads.Params) *Workload {
	p = p.WithDefaults()
	w := p.ScaleSqrt(paperWidth, 40)
	h := p.ScaleSqrt(paperHeight, 32)
	return &Workload{p: p, width: w, height: h}
}

// Name implements workloads.Workload.
func (w *Workload) Name() string { return "VIEWTYPE" }

// Description implements workloads.Workload.
func (w *Workload) Description() string {
	return "view-type classification: HSV dominant-color playfield segmentation + connected components"
}

// Table1 implements workloads.Workload.
func (w *Workload) Table1() (string, string) {
	threads := w.threads
	if threads < 1 {
		threads = 1
	}
	frames := framesPerThread * threads
	return fmt.Sprintf("%d key frames of %dx%d video (scaled)", frames, w.width, w.height),
		workloads.MiB(uint64(frames) * uint64(w.width) * uint64(w.height) * 3)
}

// Category implements workloads.Categorizer.
func (w *Workload) Category() workloads.SharingCategory { return workloads.PrivateWS }

// Video returns the ground-truth clip (after Build).
func (w *Workload) Video() *datasets.Video { return w.video }

// Build implements workloads.Workload.
func (w *Workload) Build(sp *mem.Space, sched *softsdv.Scheduler, threads int) (softsdv.Program, error) {
	if threads < 1 {
		return nil, fmt.Errorf("viewtype: threads must be >= 1, got %d", threads)
	}
	w.threads = threads
	totalFrames := framesPerThread * threads
	w.video = datasets.GenVideo(w.p.Seed, datasets.FrameSpec{
		Width: w.width, Height: w.height,
		Frames: totalFrames, MeanShotLen: 8,
	})
	w.perThread = make([][]Result, threads)
	barrier := sched.NewBarrier(threads)
	W, H := w.width, w.height
	frameBytes := W * H * 3
	pixels := W * H

	return softsdv.ProgramFunc(func(t *softsdv.Thread, core int) {
		priv := sp.NewArena(fmt.Sprintf("viewtype/planes%d", core),
			uint64(frameBytes)+uint64(pixels)*2+uint64(pixels)*4+hueBins*8+4096*4+1<<12)
		frame := priv.Bytes(frameBytes)
		hue := priv.Bytes(pixels)
		mask := priv.Bytes(pixels)
		labels := priv.Int32s(pixels)
		hist := priv.Int64s(hueBins)
		parent := priv.Int32s(4096) // union-find for label equivalences

		lo := core * framesPerThread
		hi := lo + framesPerThread
		scratch := make([]byte, frameBytes)
		var results []Result
		for f := lo; f < hi; f++ {
			// Decode into the private frame plane.
			w.video.RenderRGB(f, scratch)
			copy(frame.Raw(), scratch)
			for p := 0; p < frameBytes; p += 3 {
				t.Access(frame.Addr(p), 3, mem.Store)
				t.Exec(1)
			}

			// HSV conversion (hue plane) + adaptive dominant-color
			// training: the histogram accumulates across frames.
			raw := frame.Raw()
			for p := 0; p < pixels; p++ {
				t.Access(frame.Addr(p*3), 3, mem.Load)
				hv := rgbToHueBin(raw[p*3], raw[p*3+1], raw[p*3+2])
				hue.Set(t, p, hv)
				hist.Set(t, int(hv), hist.At(t, int(hv))+1)
				t.Exec(4)
			}

			// Dominant hue = histogram peak (trained so far).
			dom := 0
			peak := hist.At(t, 0)
			for b := 1; b < hueBins; b++ {
				if v := hist.At(t, b); v > peak {
					peak, dom = v, b
				}
				t.Exec(1)
			}

			// Playfield segmentation by dominant-color threshold.
			for p := 0; p < pixels; p++ {
				h := int(hue.At(t, p))
				d := h - dom
				if d < 0 {
					d = -d
				}
				if d <= hueTolerance {
					mask.Set(t, p, 1)
				} else {
					mask.Set(t, p, 0)
				}
				t.Exec(2)
			}

			// Connected components: two-pass labeling with union-find.
			next := int32(1)
			for i := 0; i < parent.Len(); i++ {
				parent.Raw()[i] = int32(i) // host reset; equivalences are rebuilt per frame
			}
			for y := 0; y < H; y++ {
				for x := 0; x < W; x++ {
					p := y*W + x
					if mask.At(t, p) == 0 {
						labels.Set(t, p, 0)
						continue
					}
					var left, up int32
					if x > 0 {
						left = labels.At(t, p-1)
					}
					if y > 0 {
						up = labels.At(t, p-W)
					}
					switch {
					case left == 0 && up == 0:
						if int(next) < parent.Len() {
							labels.Set(t, p, next)
							next++
						} else {
							labels.Set(t, p, next-1)
						}
					case left != 0 && up == 0:
						labels.Set(t, p, left)
					case left == 0 && up != 0:
						labels.Set(t, p, up)
					default:
						labels.Set(t, p, left)
						if left != up {
							union(t, parent, left, up)
						}
					}
					t.Exec(2)
				}
			}
			// Second pass: resolve labels, count component sizes and
			// the playfield area.
			sizes := make(map[int32]int, 64)
			area := 0
			for p := 0; p < pixels; p++ {
				l := labels.At(t, p)
				t.Exec(1)
				if l == 0 {
					continue
				}
				root := find(t, parent, l)
				sizes[root]++
				area++
			}
			largest := 0
			for _, s := range sizes {
				if s > largest {
					largest = s
				}
			}

			// Classification from playfield share (and fragment size).
			share := float64(area) / float64(pixels)
			var view datasets.ViewKind
			switch {
			case share >= 0.60:
				view = datasets.ViewGlobal
			case share >= 0.30:
				view = datasets.ViewMedium
			case share >= 0.08:
				view = datasets.ViewCloseUp
			default:
				view = datasets.ViewOutOfView
			}
			_ = largest
			results = append(results, Result{Frame: int32(f), View: view})
		}
		w.perThread[core] = results
		barrier.Wait(t)
		if core == 0 {
			w.Results = w.Results[:0]
			for _, part := range w.perThread {
				w.Results = append(w.Results, part...)
			}
		}
	}), nil
}

// rgbToHueBin converts an RGB pixel to a quantized hue bin. Saturation
// and value gate low-chroma pixels into bin 0 (never playfield).
func rgbToHueBin(r, g, b byte) byte {
	mx := r
	if g > mx {
		mx = g
	}
	if b > mx {
		mx = b
	}
	mn := r
	if g < mn {
		mn = g
	}
	if b < mn {
		mn = b
	}
	c := int(mx) - int(mn)
	if c < 8 || mx < 32 {
		return 0
	}
	var hue int // 0..359
	switch mx {
	case r:
		hue = (60*(int(g)-int(b))/c + 360) % 360
	case g:
		hue = 60*(int(b)-int(r))/c + 120
	default:
		hue = 60*(int(r)-int(g))/c + 240
	}
	bin := hue * (hueBins - 1) / 360
	if bin < 1 {
		bin = 1
	}
	return byte(bin)
}

// find resolves a union-find root with path halving (traced).
func find(t *softsdv.Thread, parent mem.Int32s, x int32) int32 {
	for {
		p := parent.At(t, int(x))
		if p == x {
			return x
		}
		gp := parent.At(t, int(p))
		parent.Set(t, int(x), gp)
		x = gp
		t.Exec(1)
	}
}

// union merges two equivalence classes (traced).
func union(t *softsdv.Thread, parent mem.Int32s, a, b int32) {
	ra, rb := find(t, parent, a), find(t, parent, b)
	if ra != rb {
		if ra < rb {
			parent.Set(t, int(rb), ra)
		} else {
			parent.Set(t, int(ra), rb)
		}
	}
}
