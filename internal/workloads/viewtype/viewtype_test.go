package viewtype

import (
	"testing"

	"cmpmem/internal/datasets"
	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/softsdv"
	"cmpmem/internal/workloads"
)

func run(t *testing.T, threads int, scale float64, seed int64) *Workload {
	t.Helper()
	w := New(workloads.Params{Seed: seed, Scale: scale})
	bus := fsb.NewBus()
	sched, err := softsdv.NewScheduler(softsdv.Config{Cores: threads, Quantum: 20000}, bus)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := w.Build(mem.NewSpace(), sched, threads)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(prog); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestClassificationAccuracy: after the dominant color has been trained
// (skip each thread's first few frames), view-type decisions should
// match the generator's ground truth most of the time. Shots whose
// background hue collides with the playfield hue are inherently
// ambiguous, so the bar is far above chance (25%) but below perfect.
func TestClassificationAccuracy(t *testing.T) {
	const threads = 4
	w := run(t, threads, 1.0/256, 71)
	if len(w.Results) != framesPerThread*threads {
		t.Fatalf("got %d results, want %d", len(w.Results), framesPerThread*threads)
	}
	correct, total := 0, 0
	for _, r := range w.Results {
		if int(r.Frame)%framesPerThread < 6 {
			continue // dominant-color warmup
		}
		total++
		if w.Video().ShotOf(int(r.Frame)).View == r.View {
			correct++
		}
	}
	acc := float64(correct) / float64(total)
	t.Logf("view-type accuracy after warmup: %.2f (%d/%d)", acc, correct, total)
	if acc < 0.5 {
		t.Errorf("accuracy %.2f below 0.5", acc)
	}
}

// TestGlobalVsOutOfView: the easiest pair to separate — full-field vs
// no-field frames — must be near-perfectly distinguished after warmup.
func TestGlobalVsOutOfView(t *testing.T) {
	const threads = 4
	w := run(t, threads, 1.0/256, 71)
	confusions := 0
	checked := 0
	for _, r := range w.Results {
		if int(r.Frame)%framesPerThread < 6 {
			continue
		}
		truth := w.Video().ShotOf(int(r.Frame)).View
		if truth == datasets.ViewGlobal && r.View == datasets.ViewOutOfView {
			confusions++
		}
		if truth == datasets.ViewOutOfView && r.View == datasets.ViewGlobal {
			confusions++
		}
		if truth == datasets.ViewGlobal || truth == datasets.ViewOutOfView {
			checked++
		}
	}
	if checked > 0 && confusions*4 > checked {
		t.Errorf("global/out-of-view confusion rate %d/%d too high", confusions, checked)
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, 2, 1.0/256, 5)
	b := run(t, 2, 1.0/256, 5)
	if len(a.Results) != len(b.Results) {
		t.Fatal("result counts differ")
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			t.Fatalf("result %d differs", i)
		}
	}
}

func TestHueConversion(t *testing.T) {
	// Pure green must land near bin for 120 degrees.
	greenBin := int(rgbToHueBin(0, 255, 0))
	want := 120 * (hueBins - 1) / 360
	if greenBin < want-2 || greenBin > want+2 {
		t.Errorf("green hue bin = %d, want ~%d", greenBin, want)
	}
	// Greys (low chroma) are gated to bin 0.
	if rgbToHueBin(100, 100, 100) != 0 {
		t.Error("achromatic pixel not gated to bin 0")
	}
	if rgbToHueBin(10, 12, 11) != 0 {
		t.Error("dark pixel not gated to bin 0")
	}
}

func TestViewKindString(t *testing.T) {
	if datasets.ViewGlobal.String() != "global" || datasets.ViewOutOfView.String() != "out-of-view" {
		t.Error("ViewKind strings wrong")
	}
}

func TestMetadata(t *testing.T) {
	w := New(workloads.Params{Seed: 1})
	if w.Name() != "VIEWTYPE" {
		t.Errorf("name = %q", w.Name())
	}
	if w.Category() != workloads.PrivateWS {
		t.Error("VIEWTYPE must be in the private-working-set category")
	}
}
