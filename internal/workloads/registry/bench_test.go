package registry

import (
	"testing"

	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/softsdv"
	"cmpmem/internal/workloads"
)

// BenchmarkWorkloads measures each kernel's end-to-end simulation cost
// (build + run on 4 virtual cores, bus attached but unobserved) and
// reports simulated instructions per wall second.
func BenchmarkWorkloads(b *testing.B) {
	for _, name := range Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			var inst uint64
			for i := 0; i < b.N; i++ {
				w, err := New(name, workloads.Params{Seed: 1, Scale: 1.0 / 128})
				if err != nil {
					b.Fatal(err)
				}
				bus := fsb.NewBus()
				sched, err := softsdv.NewScheduler(softsdv.Config{Cores: 4}, bus)
				if err != nil {
					b.Fatal(err)
				}
				prog, err := w.Build(mem.NewSpace(), sched, 4)
				if err != nil {
					b.Fatal(err)
				}
				if err := sched.Run(prog); err != nil {
					b.Fatal(err)
				}
				inst += sched.Instructions()
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(inst)/sec/1e6, "MIPS")
			}
		})
	}
}
