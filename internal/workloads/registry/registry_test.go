package registry

import (
	"strings"
	"testing"

	"cmpmem/internal/workloads"
)

func TestNamesMatchPaperOrder(t *testing.T) {
	want := []string{"SNP", "SVM-RFE", "RSEARCH", "FIMI", "PLSA", "MDS", "SHOT", "VIEWTYPE"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("got %d names, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("name %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestNewByName(t *testing.T) {
	p := workloads.Params{Seed: 1, Scale: 1.0 / 512}
	for _, name := range Names() {
		w, err := New(name, p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w.Name() != name {
			t.Errorf("constructed workload reports name %q, want %q", w.Name(), name)
		}
		if w.Description() == "" {
			t.Errorf("%s: empty description", name)
		}
		params, size := w.Table1()
		if params == "" || size == "" {
			t.Errorf("%s: empty Table 1 fields", name)
		}
	}
}

func TestNewUnknown(t *testing.T) {
	_, err := New("NOPE", workloads.Params{})
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	if !strings.Contains(err.Error(), "NOPE") {
		t.Errorf("error does not name the offender: %v", err)
	}
}

func TestAllCategorized(t *testing.T) {
	// Every workload declares its Section 4.3 sharing category, and the
	// paper's assignment is preserved.
	want := map[string]workloads.SharingCategory{
		"SNP":      workloads.SharedWS,
		"SVM-RFE":  workloads.SharedWS,
		"MDS":      workloads.SharedWS,
		"PLSA":     workloads.SharedWS,
		"FIMI":     workloads.MixedWS,
		"RSEARCH":  workloads.MixedWS,
		"SHOT":     workloads.PrivateWS,
		"VIEWTYPE": workloads.PrivateWS,
	}
	for _, w := range All(workloads.Params{Seed: 1}) {
		c, ok := w.(workloads.Categorizer)
		if !ok {
			t.Errorf("%s does not declare a sharing category", w.Name())
			continue
		}
		if c.Category() != want[w.Name()] {
			t.Errorf("%s category = %v, want %v", w.Name(), c.Category(), want[w.Name()])
		}
	}
}

func TestAllReturnsFreshInstances(t *testing.T) {
	a := All(workloads.Params{Seed: 1})
	b := All(workloads.Params{Seed: 1})
	for i := range a {
		if a[i] == b[i] {
			t.Errorf("All returned a shared instance for %s (workloads are single-use)", a[i].Name())
		}
	}
}
