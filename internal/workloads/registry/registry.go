// Package registry enumerates the eight data-mining workloads and
// constructs them by name. It lives apart from package workloads so the
// individual workload packages can depend on the shared contract without
// an import cycle.
package registry

import (
	"fmt"
	"sort"

	"cmpmem/internal/workloads"
	"cmpmem/internal/workloads/fimi"
	"cmpmem/internal/workloads/mds"
	"cmpmem/internal/workloads/plsa"
	"cmpmem/internal/workloads/rsearch"
	"cmpmem/internal/workloads/shot"
	"cmpmem/internal/workloads/snp"
	"cmpmem/internal/workloads/svmrfe"
	"cmpmem/internal/workloads/viewtype"
)

// Factory builds a workload instance from sizing parameters.
type Factory func(p workloads.Params) workloads.Workload

// factories maps canonical names to constructors, in the paper's
// Table 1/Table 2 presentation order.
var factories = map[string]Factory{
	"SNP":      func(p workloads.Params) workloads.Workload { return snp.New(p) },
	"SVM-RFE":  func(p workloads.Params) workloads.Workload { return svmrfe.New(p) },
	"RSEARCH":  func(p workloads.Params) workloads.Workload { return rsearch.New(p) },
	"FIMI":     func(p workloads.Params) workloads.Workload { return fimi.New(p) },
	"PLSA":     func(p workloads.Params) workloads.Workload { return plsa.New(p) },
	"MDS":      func(p workloads.Params) workloads.Workload { return mds.New(p) },
	"SHOT":     func(p workloads.Params) workloads.Workload { return shot.New(p) },
	"VIEWTYPE": func(p workloads.Params) workloads.Workload { return viewtype.New(p) },
}

// order is the paper's Table 1 ordering.
var order = []string{"SNP", "SVM-RFE", "RSEARCH", "FIMI", "PLSA", "MDS", "SHOT", "VIEWTYPE"}

// Names returns all workload names in Table 1 order.
func Names() []string { return append([]string(nil), order...) }

// New constructs the named workload, or an error listing valid names.
func New(name string, p workloads.Params) (workloads.Workload, error) {
	f, ok := factories[name]
	if !ok {
		valid := Names()
		sort.Strings(valid)
		return nil, fmt.Errorf("registry: unknown workload %q (valid: %v)", name, valid)
	}
	return f(p), nil
}

// All constructs every workload in Table 1 order.
func All(p workloads.Params) []workloads.Workload {
	out := make([]workloads.Workload, 0, len(order))
	for _, n := range order {
		w, err := New(n, p)
		if err != nil {
			panic("registry: internal inconsistency: " + err.Error())
		}
		out = append(out, w)
	}
	return out
}
