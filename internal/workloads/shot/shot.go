// Package shot implements the paper's SHOT workload: video shot-boundary
// detection (Section 2.6). Each frame is decoded into a thread-private
// buffer; a 48-bin RGB color histogram (16 bins per channel) and a
// pixel-wise difference against the previous frame are computed, and a
// shot cut is declared when the combined discontinuity exceeds an
// adaptive threshold.
//
// Memory behaviour (paper findings this reproduces): each thread owns a
// pair of frame buffers and iterates over them with constant stride —
// a private working set of ~4 MB paper-equivalent per thread that
// scales linearly with thread count (Figures 5-6), with streaming
// accesses that love large cache lines (Figure 7: near-linear miss
// reduction to 256 B) and hardware prefetching (Figure 8).
package shot

import (
	"fmt"

	"cmpmem/internal/datasets"
	"cmpmem/internal/mem"
	"cmpmem/internal/softsdv"
	"cmpmem/internal/workloads"
)

// Paper parameters: 10-minute MPEG-2 clip at 720×576.
const (
	paperWidth      = 720
	paperHeight     = 576
	histBins        = 48 // 16 per RGB channel
	framesPerThread = 12
	histStride      = 2 // histogram subsampling (every 2nd pixel)
)

// Workload is the SHOT instance.
type Workload struct {
	p workloads.Params

	width, height int
	video         *datasets.Video
	threads       int

	// Cuts holds detected cut frame numbers (merged, ascending).
	Cuts []int32

	perThread [][]int32
}

// New builds a SHOT workload description.
func New(p workloads.Params) *Workload {
	p = p.WithDefaults()
	// Scale frame area by Scale: each dimension by sqrt(Scale).
	w := p.ScaleSqrt(paperWidth, 45)
	h := p.ScaleSqrt(paperHeight, 36)
	return &Workload{p: p, width: w, height: h}
}

// Name implements workloads.Workload.
func (w *Workload) Name() string { return "SHOT" }

// Description implements workloads.Workload.
func (w *Workload) Description() string {
	return "shot-boundary detection: 48-bin RGB histograms + pixel-wise frame difference"
}

// Table1 implements workloads.Workload.
func (w *Workload) Table1() (string, string) {
	threads := w.threads
	if threads < 1 {
		threads = 1
	}
	frames := framesPerThread * threads
	return fmt.Sprintf("%d frames of %dx%d video (scaled)", frames, w.width, w.height),
		workloads.MiB(uint64(frames) * uint64(w.width) * uint64(w.height) * 3)
}

// Category implements workloads.Categorizer.
func (w *Workload) Category() workloads.SharingCategory { return workloads.PrivateWS }

// Video returns the ground-truth clip (after Build), for validation.
func (w *Workload) Video() *datasets.Video { return w.video }

// Build implements workloads.Workload.
func (w *Workload) Build(sp *mem.Space, sched *softsdv.Scheduler, threads int) (softsdv.Program, error) {
	if threads < 1 {
		return nil, fmt.Errorf("shot: threads must be >= 1, got %d", threads)
	}
	w.threads = threads
	totalFrames := framesPerThread * threads
	w.video = datasets.GenVideo(w.p.Seed, datasets.FrameSpec{
		Width: w.width, Height: w.height,
		Frames: totalFrames, MeanShotLen: 6,
	})
	w.perThread = make([][]int32, threads)
	barrier := sched.NewBarrier(threads)
	frameBytes := w.width * w.height * 3

	return softsdv.ProgramFunc(func(t *softsdv.Thread, core int) {
		priv := sp.NewArena(fmt.Sprintf("shot/frames%d", core),
			uint64(frameBytes)*2+histBins*8*2+1<<12)
		cur := priv.Bytes(frameBytes)
		prev := priv.Bytes(frameBytes)
		histCur := priv.Int64s(histBins)
		histPrev := priv.Int64s(histBins)

		lo := core * framesPerThread
		hi := lo + framesPerThread
		var cuts []int32
		scratch := make([]byte, frameBytes)
		var prevDiff float64
		for f := lo; f < hi; f++ {
			// "Decode": the synthetic renderer produces the frame
			// host-side; the stores into the private frame buffer model
			// the decoder's output traffic. Pixels move at 3-byte (RGB)
			// granularity, matching a byte-planar decoder's writes.
			w.video.RenderRGB(f, scratch)
			copy(cur.Raw(), scratch)
			for p := 0; p < frameBytes; p += 3 {
				t.Access(cur.Addr(p), 3, mem.Store)
				t.Exec(1)
			}

			// Histogram pass: one 3-byte load per pixel, bin updates.
			for b := 0; b < histBins; b++ {
				histCur.Set(t, b, 0)
			}
			raw := cur.Raw()
			for p := 0; p < frameBytes; p += 3 * histStride {
				t.Access(cur.Addr(p), 3, mem.Load)
				r16 := int(raw[p]) >> 4
				g16 := int(raw[p+1]) >> 4
				b16 := int(raw[p+2]) >> 4
				histCur.Set(t, r16, histCur.At(t, r16)+1)
				histCur.Set(t, 16+g16, histCur.At(t, 16+g16)+1)
				histCur.Set(t, 32+b16, histCur.At(t, 32+b16)+1)
				t.Exec(3)
			}

			if f > lo {
				// Histogram difference.
				var hd int64
				for b := 0; b < histBins; b++ {
					d := histCur.At(t, b) - histPrev.At(t, b)
					if d < 0 {
						d = -d
					}
					hd += d
					t.Exec(2)
				}
				// Pixel-wise difference (supplementary spatial cue).
				var pd int64
				praw := prev.Raw()
				for p := 0; p < frameBytes; p += 3 {
					t.Access(cur.Addr(p), 3, mem.Load)
					t.Access(prev.Addr(p), 3, mem.Load)
					d := int(raw[p]) - int(praw[p])
					if d < 0 {
						d = -d
					}
					pd += int64(d)
					t.Exec(2)
				}
				pixels := float64(frameBytes / 3)
				hdn := float64(hd) / (3 * pixels / histStride)
				pdn := float64(pd) / (255 * pixels)
				diff := 0.6*hdn + 0.4*pdn
				// Adaptive threshold: a cut is a large jump relative to
				// the running inter-frame difference.
				if diff > 0.18 && diff > 3*prevDiff {
					cuts = append(cuts, int32(f))
				}
				prevDiff = 0.5*prevDiff + 0.5*diff
			}

			cur, prev = prev, cur
			histCur, histPrev = histPrev, histCur
		}
		w.perThread[core] = cuts
		barrier.Wait(t)
		if core == 0 {
			w.Cuts = w.Cuts[:0]
			for _, part := range w.perThread {
				w.Cuts = append(w.Cuts, part...)
			}
		}
	}), nil
}
