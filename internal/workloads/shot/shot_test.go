package shot

import (
	"testing"

	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/softsdv"
	"cmpmem/internal/workloads"
)

func run(t *testing.T, threads int, scale float64, seed int64) *Workload {
	t.Helper()
	w := New(workloads.Params{Seed: seed, Scale: scale})
	bus := fsb.NewBus()
	sched, err := softsdv.NewScheduler(softsdv.Config{Cores: threads, Quantum: 20000}, bus)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := w.Build(mem.NewSpace(), sched, threads)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(prog); err != nil {
		t.Fatal(err)
	}
	return w
}

// detectable lists ground-truth cuts that fall strictly inside some
// thread's frame range (a cut at a range boundary has no previous frame
// on that thread, exactly like the first frame of a real video chunk).
func detectable(w *Workload, threads int) map[int32]bool {
	out := map[int32]bool{}
	for f := 0; f < framesPerThread*threads; f++ {
		if f%framesPerThread == 0 {
			continue
		}
		if w.Video().IsCut(f) {
			out[int32(f)] = true
		}
	}
	return out
}

// TestDetectsCuts: recall on the synthetic ground truth must be high —
// hard cuts between solid-color shots are the easy case the histogram
// detector is built for.
func TestDetectsCuts(t *testing.T) {
	const threads = 4
	w := run(t, threads, 1.0/256, 61)
	truth := detectable(w, threads)
	if len(truth) == 0 {
		t.Skip("no detectable cuts in this clip")
	}
	found := 0
	for _, c := range w.Cuts {
		if truth[c] {
			found++
		}
	}
	recall := float64(found) / float64(len(truth))
	precision := 1.0
	if len(w.Cuts) > 0 {
		precision = float64(found) / float64(len(w.Cuts))
	}
	t.Logf("cuts: truth=%d detected=%d recall=%.2f precision=%.2f",
		len(truth), len(w.Cuts), recall, precision)
	if recall < 0.5 {
		t.Errorf("recall %.2f too low", recall)
	}
	if precision < 0.5 {
		t.Errorf("precision %.2f too low (detector fires on noise)", precision)
	}
}

// TestDetectionsAreTrueCuts: every detected cut must coincide with a
// ground-truth shot boundary — the synthetic clip has hard cuts only,
// so there is no excuse for off-by-one detections.
func TestDetectionsAreTrueCuts(t *testing.T) {
	w := run(t, 4, 1.0/256, 61)
	for _, c := range w.Cuts {
		if !w.Video().IsCut(int(c)) {
			t.Errorf("detected cut at frame %d is not a shot boundary", c)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, 2, 1.0/256, 7)
	b := run(t, 2, 1.0/256, 7)
	if len(a.Cuts) != len(b.Cuts) {
		t.Fatalf("cut counts differ: %d vs %d", len(a.Cuts), len(b.Cuts))
	}
	for i := range a.Cuts {
		if a.Cuts[i] != b.Cuts[i] {
			t.Fatalf("cut %d differs", i)
		}
	}
}

func TestMetadata(t *testing.T) {
	w := New(workloads.Params{Seed: 1})
	if w.Name() != "SHOT" {
		t.Errorf("name = %q", w.Name())
	}
	if w.Category() != workloads.PrivateWS {
		t.Error("SHOT must be in the private-working-set category")
	}
}
