// Package mds implements the paper's MDS workload: multi-document
// summarization combining a graph-based sentence-ranking algorithm
// (power iteration over a sentence-similarity matrix, personalized by
// the query) with Maximum Marginal Relevance (MMR) selection to
// de-duplicate the summary (Section 2.5).
//
// Memory behaviour (paper findings this reproduces): the ranking phase
// streams a sparse similarity matrix of ~300 MB paper-equivalent — far
// larger than every simulated cache — so the LLC miss curve is flat
// across the whole size sweep (Figure 4) and only the line-size study
// helps (the CSR stream is constant-stride, Figure 7). All threads share
// the matrix, so thread scaling leaves the curve unchanged (Figures
// 5-6).
package mds

import (
	"fmt"
	"math"

	"cmpmem/internal/datasets"
	"cmpmem/internal/mem"
	"cmpmem/internal/softsdv"
	"cmpmem/internal/workloads"
)

// paperMatrixBytes sizes the frequently-referenced sparse matrix. The
// paper reports ~300 MB; we size at 384 MB-equivalent so the matrix
// exceeds the largest swept cache (256 MB) with enough margin that
// set-associative near-capacity retention effects cannot bend the flat
// curve the paper shows.
const paperMatrixBytes = 384 << 20

// Algorithm constants.
const (
	// alpha is the damping of the graph-ranking walk. Query-focused
	// summarization uses a strong personalization restart so that the
	// ranking stays anchored to the query topic.
	alpha      = 0.6
	iterations = 4  // power-iteration steps in the measured region
	summaryLen = 10 // sentences selected by MMR
	mmrLambda  = 0.7
	mmrPool    = 200 // top-ranked candidates entering MMR
)

// Workload is the MDS instance.
type Workload struct {
	p workloads.Params

	nSent int
	nnz   int

	corpus *datasets.Corpus

	// CSR similarity matrix (row-normalized), simulated buffers. The
	// (column, value) pairs are interleaved in one packed array — one
	// stream with maximal spatial locality, and the single structure
	// whose 300 MB-class footprint defeats every cache in Figure 4.
	rowptr  mem.Int32s
	entries mem.Int64s // low 32 bits: column; high 32 bits: float32 value
	x, xn   mem.Float32s
	q       mem.Float32s
	// Flattened sentence term vectors for MMR.
	termOff mem.Int32s
	termIDs mem.Int32s
	termWts mem.Float32s
	// Output.
	selected mem.Int32s

	threads int

	// Summary holds the selected sentence indices after a run.
	Summary []int32
}

// New builds an MDS workload description.
func New(p workloads.Params) *Workload {
	p = p.WithDefaults()
	target := float64(paperMatrixBytes) * p.Scale
	// CSR cost is 8 bytes per nonzero. With ~25 terms per sentence the
	// posting-list chaining yields an effective degree of ≈30 after
	// de-duplication and zero-similarity pruning (measured), which both
	// sizes the matrix and keeps the rank vectors small relative to it,
	// as in the paper (whose curve is flat because only the matrix
	// matters at LLC sizes).
	nnzTarget := int(target / 8)
	nSent := nnzTarget / 30
	if nSent < 256 {
		nSent = 256
	}
	return &Workload{p: p, nSent: nSent}
}

// Name implements workloads.Workload.
func (w *Workload) Name() string { return "MDS" }

// Description implements workloads.Workload.
func (w *Workload) Description() string {
	return "multi-document summarization: query-personalized graph ranking + MMR selection"
}

// Table1 implements workloads.Workload.
func (w *Workload) Table1() (string, string) {
	nnz := w.nnz
	if nnz == 0 {
		nnz = w.nSent * 30 // planned density before Build
	}
	return fmt.Sprintf("%d sentences, %d-nnz similarity graph (scaled)", w.nSent, nnz),
		workloads.MiB(uint64(nnz) * 8)
}

// Category implements workloads.Categorizer.
func (w *Workload) Category() workloads.SharingCategory { return workloads.SharedWS }

// Build implements workloads.Workload.
func (w *Workload) Build(sp *mem.Space, sched *softsdv.Scheduler, threads int) (softsdv.Program, error) {
	if threads < 1 {
		return nil, fmt.Errorf("mds: threads must be >= 1, got %d", threads)
	}
	w.threads = threads
	sentPerDoc := 25
	docs := (w.nSent + sentPerDoc - 1) / sentPerDoc
	w.corpus = datasets.GenCorpus(w.p.Seed, docs, sentPerDoc, 25, 20000, 16)
	n := len(w.corpus.Sentences)
	w.nSent = n

	// Build the similarity graph untraced (corpus loading/indexing
	// precedes the measured ranking region). Sentences sharing a term
	// are chained through the term's posting list; edge weight is the
	// true cosine similarity of the two term vectors.
	rows := make([][]int32, n)
	wts := make([][]float32, n)
	last := make(map[int32]int32, w.corpus.Vocab)
	addEdge := func(i, j int32) {
		if i == j {
			return
		}
		for _, c := range rows[i] {
			if c == j {
				return
			}
		}
		s := cosine(w.corpus, int(i), int(j))
		if s <= 0 {
			return
		}
		rows[i] = append(rows[i], j)
		wts[i] = append(wts[i], s)
		rows[j] = append(rows[j], i)
		wts[j] = append(wts[j], s)
	}
	for i := 0; i < n; i++ {
		for _, term := range w.corpus.Sentences[i] {
			if prev, ok := last[term]; ok {
				addEdge(prev, int32(i))
			}
			last[term] = int32(i)
		}
	}

	// Row-normalize into CSR.
	w.nnz = 0
	for i := range rows {
		w.nnz += len(rows[i])
	}
	arena := sp.NewArena("mds/matrix", uint64(w.nnz)*8+uint64(n)*32+1<<16)
	w.rowptr = arena.Int32s(n + 1)
	w.entries = arena.Int64s(w.nnz)
	pos := 0
	rp := w.rowptr.Raw()
	for i := 0; i < n; i++ {
		rp[i] = int32(pos)
		var sum float32
		for _, v := range wts[i] {
			sum += v
		}
		if sum == 0 {
			sum = 1
		}
		for k, c := range rows[i] {
			w.entries.Raw()[pos] = packEntry(c, wts[i][k]/sum)
			pos++
		}
	}
	rp[n] = int32(pos)

	// Rank vectors and personalization (query relevance).
	vecArena := sp.NewArena("mds/vectors", uint64(n)*16+1<<12)
	w.x = vecArena.Float32s(n)
	w.xn = vecArena.Float32s(n)
	w.q = vecArena.Float32s(n)
	var qsum float32
	for i := 0; i < n; i++ {
		r := querySim(w.corpus, i)
		w.q.Raw()[i] = r
		qsum += r
	}
	if qsum == 0 {
		qsum = 1
	}
	for i := 0; i < n; i++ {
		w.q.Raw()[i] /= qsum
		w.x.Raw()[i] = 1 / float32(n)
	}

	// Flattened term vectors for the MMR phase.
	total := 0
	for _, s := range w.corpus.Sentences {
		total += len(s)
	}
	termArena := sp.NewArena("mds/terms", uint64(total)*8+uint64(n+1)*4+uint64(summaryLen)*4+1<<12)
	w.termOff = termArena.Int32s(n + 1)
	w.termIDs = termArena.Int32s(total)
	w.termWts = termArena.Float32s(total)
	pos = 0
	for i, s := range w.corpus.Sentences {
		w.termOff.Raw()[i] = int32(pos)
		copy(w.termIDs.Raw()[pos:], s)
		copy(w.termWts.Raw()[pos:], w.corpus.Weights[i])
		pos += len(s)
	}
	w.termOff.Raw()[n] = int32(pos)
	w.selected = termArena.Int32s(summaryLen)

	barrier := sched.NewBarrier(threads)
	blk := (n + threads - 1) / threads

	return softsdv.ProgramFunc(func(t *softsdv.Thread, core int) {
		lo := core * blk
		hi := lo + blk
		if hi > n {
			hi = n
		}
		cur, next := w.x, w.xn
		for it := 0; it < iterations; it++ {
			w.rankRows(t, cur, next, lo, hi)
			barrier.Wait(t)
			cur, next = next, cur
		}
		// MMR selection runs on core 0 over the shared rank vector; the
		// paper's final summary assembly is likewise serial.
		if core == 0 {
			w.mmr(t, cur)
		}
		barrier.Wait(t)
	}), nil
}

// packEntry packs a (column, value) pair into one 64-bit matrix entry.
func packEntry(col int32, val float32) int64 {
	return int64(uint64(uint32(col)) | uint64(math.Float32bits(val))<<32)
}

// unpackEntry recovers the (column, value) pair.
func unpackEntry(e int64) (int32, float32) {
	return int32(uint32(uint64(e))), math.Float32frombits(uint32(uint64(e) >> 32))
}

// rankRows computes next[lo:hi) = (1-alpha)*q + alpha * P*cur.
func (w *Workload) rankRows(t *softsdv.Thread, cur, next mem.Float32s, lo, hi int) {
	for i := lo; i < hi; i++ {
		start := int(w.rowptr.At(t, i))
		end := int(w.rowptr.At(t, i+1))
		var acc float32
		for k := start; k < end; k++ {
			c, v := unpackEntry(w.entries.At(t, k))
			acc += v * cur.At(t, int(c))
			t.Exec(3) // unpack + multiply-accumulate + loop overhead
		}
		next.Set(t, i, (1-alpha)*w.q.At(t, i)+alpha*acc)
		t.Exec(2)
	}
}

// mmr greedily selects summaryLen sentences maximizing
// lambda*rank - (1-lambda)*max-sim-to-selected over the top-ranked pool.
func (w *Workload) mmr(t *softsdv.Thread, rank mem.Float32s) {
	n := w.nSent
	pool := mmrPool
	if pool > n {
		pool = n
	}
	// Partial selection of the top `pool` ranked sentences: one traced
	// pass over the rank vector feeding a host-side min-heap keyed by
	// the values just read (heap maintenance is ALU work).
	type scored struct {
		val float32
		idx int32
	}
	heap := make([]scored, 0, pool)
	down := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < len(heap) && heap[l].val < heap[small].val {
				small = l
			}
			if r < len(heap) && heap[r].val < heap[small].val {
				small = r
			}
			if small == i {
				return
			}
			heap[i], heap[small] = heap[small], heap[i]
			i = small
		}
	}
	for i := 0; i < n; i++ {
		r := rank.At(t, i)
		t.Exec(2)
		if len(heap) < pool {
			heap = append(heap, scored{r, int32(i)})
			for c := len(heap) - 1; c > 0; {
				p := (c - 1) / 2
				if heap[p].val <= heap[c].val {
					break
				}
				heap[p], heap[c] = heap[c], heap[p]
				c = p
			}
		} else if r > heap[0].val {
			heap[0] = scored{r, int32(i)}
			down(0)
		}
	}
	cand := make([]int32, len(heap))
	for k := range heap {
		cand[k] = heap[k].idx
	}
	w.Summary = w.Summary[:0]
	taken := make([]bool, len(cand))
	for s := 0; s < summaryLen && s < len(cand); s++ {
		bestK, bestScore := -1, float32(math.Inf(-1))
		for k, c := range cand {
			if taken[k] {
				continue
			}
			var maxSim float32
			for _, sel := range w.Summary {
				sim := w.simTraced(t, int(c), int(sel))
				if sim > maxSim {
					maxSim = sim
				}
			}
			score := mmrLambda*rank.At(t, int(c)) - (1-mmrLambda)*maxSim
			t.Exec(2)
			if score > bestScore {
				bestK, bestScore = k, score
			}
		}
		taken[bestK] = true
		w.Summary = append(w.Summary, cand[bestK])
		w.selected.Set(t, s, cand[bestK])
	}
}

// simTraced computes cosine similarity of two sentences through the
// simulated term arrays (sorted-id merge).
func (w *Workload) simTraced(t *softsdv.Thread, a, b int) float32 {
	ai, ae := int(w.termOff.At(t, a)), int(w.termOff.At(t, a+1))
	bi, be := int(w.termOff.At(t, b)), int(w.termOff.At(t, b+1))
	var dot float32
	for ai < ae && bi < be {
		ta := w.termIDs.At(t, ai)
		tb := w.termIDs.At(t, bi)
		t.Exec(1)
		switch {
		case ta == tb:
			dot += w.termWts.At(t, ai) * w.termWts.At(t, bi)
			ai++
			bi++
		case ta < tb:
			ai++
		default:
			bi++
		}
	}
	return dot
}

// cosine computes (untraced) cosine similarity during graph building.
func cosine(c *datasets.Corpus, a, b int) float32 {
	ta, wa := c.Sentences[a], c.Weights[a]
	tb, wb := c.Sentences[b], c.Weights[b]
	var dot float32
	i, j := 0, 0
	for i < len(ta) && j < len(tb) {
		switch {
		case ta[i] == tb[j]:
			dot += wa[i] * wb[j]
			i++
			j++
		case ta[i] < tb[j]:
			i++
		default:
			j++
		}
	}
	return dot
}

// querySim computes (untraced) the query relevance of sentence i.
func querySim(c *datasets.Corpus, i int) float32 {
	ts, ws := c.Sentences[i], c.Weights[i]
	var dot float32
	a, b := 0, 0
	for a < len(ts) && b < len(c.QueryTerms) {
		switch {
		case ts[a] == c.QueryTerms[b]:
			dot += ws[a] * c.QueryWeights[b]
			a++
			b++
		case ts[a] < c.QueryTerms[b]:
			a++
		default:
			b++
		}
	}
	return dot
}
