package mds

import (
	"testing"

	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/softsdv"
	"cmpmem/internal/workloads"
)

func run(t *testing.T, threads int, scale float64) *Workload {
	t.Helper()
	w := New(workloads.Params{Seed: 51, Scale: scale})
	bus := fsb.NewBus()
	sched, err := softsdv.NewScheduler(softsdv.Config{Cores: threads, Quantum: 20000}, bus)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := w.Build(mem.NewSpace(), sched, threads)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(prog); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSummaryShapeAndUniqueness(t *testing.T) {
	w := run(t, 2, 1.0/512)
	if len(w.Summary) != summaryLen {
		t.Fatalf("summary has %d sentences, want %d", len(w.Summary), summaryLen)
	}
	seen := map[int32]bool{}
	for _, s := range w.Summary {
		if seen[s] {
			t.Errorf("sentence %d selected twice (MMR must de-duplicate)", s)
		}
		seen[s] = true
		if s < 0 || int(s) >= w.nSent {
			t.Errorf("sentence index %d out of range", s)
		}
	}
}

// TestQueryBias: the query is drawn from topic 0's vocabulary, so
// query-personalized ranking should overselect topic-0 sentences
// relative to the 1/16 topic share.
func TestQueryBias(t *testing.T) {
	w := run(t, 2, 1.0/512)
	topic0 := 0
	for _, s := range w.Summary {
		doc := w.corpus.DocOf[s]
		if doc%16 == 0 { // topic = doc % topics, topics = 16
			topic0++
		}
	}
	t.Logf("topic-0 sentences in summary: %d/%d", topic0, len(w.Summary))
	if topic0 < len(w.Summary)/4 {
		t.Errorf("summary not biased toward the query topic: %d/%d", topic0, len(w.Summary))
	}
}

// TestRankMassConserved: the personalized PageRank iteration preserves
// probability mass approximately (row-stochastic matrix + restart).
func TestRankMassConserved(t *testing.T) {
	w := run(t, 1, 1.0/512)
	var mass float64
	for _, v := range w.x.Raw() {
		mass += float64(v)
	}
	var mass2 float64
	for _, v := range w.xn.Raw() {
		mass2 += float64(v)
	}
	// One of the two ping-pong buffers holds the final ranks. With a
	// row-normalized (not column-normalized) similarity matrix the
	// iteration is a graph-ranking smoother rather than a strict Markov
	// chain, so mass is only approximately conserved: dangling rows
	// leak and high-in-degree sentences concentrate a little.
	best := mass
	if mass2 > best {
		best = mass2
	}
	if best < 0.5 || best > 1.5 {
		t.Errorf("rank mass %v implausible (want in (0.5, 1.5])", best)
	}
}

func TestThreadInvariance(t *testing.T) {
	s1 := run(t, 1, 1.0/512).Summary
	s4 := run(t, 4, 1.0/512).Summary
	if len(s1) != len(s4) {
		t.Fatalf("summary lengths differ")
	}
	for i := range s1 {
		if s1[i] != s4[i] {
			t.Errorf("summary[%d] differs: %d vs %d", i, s1[i], s4[i])
		}
	}
}

func TestGraphIsSparse(t *testing.T) {
	w := run(t, 1, 1.0/512)
	if w.nnz == 0 {
		t.Fatal("empty similarity graph")
	}
	avgDeg := float64(w.nnz) / float64(w.nSent)
	if avgDeg < 2 || avgDeg > 200 {
		t.Errorf("average degree %.1f implausible for the sparse ranking graph", avgDeg)
	}
}

func TestMetadata(t *testing.T) {
	w := New(workloads.Params{Seed: 1})
	if w.Name() != "MDS" {
		t.Errorf("name = %q", w.Name())
	}
	if w.Category() != workloads.SharedWS {
		t.Error("MDS must be in the shared-working-set category")
	}
}
