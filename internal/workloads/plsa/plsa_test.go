package plsa

import (
	"testing"

	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/softsdv"
	"cmpmem/internal/workloads"
)

func run(t *testing.T, threads int, scale float64) *Workload {
	t.Helper()
	w := New(workloads.Params{Seed: 11, Scale: scale})
	bus := fsb.NewBus()
	sched, err := softsdv.NewScheduler(softsdv.Config{Cores: threads, Quantum: 5000}, bus)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := w.Build(mem.NewSpace(), sched, threads)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Run(prog); err != nil {
		t.Fatal(err)
	}
	return w
}

// TestParallelMatchesSerialReference: the pipelined-wavefront kernel
// must compute exactly the serial Smith-Waterman score.
func TestParallelMatchesSerialReference(t *testing.T) {
	for _, threads := range []int{1, 2, 4, 8} {
		w := run(t, threads, 1.0/512)
		want := w.Reference()
		if w.Best != want {
			t.Errorf("threads=%d: parallel score %d != serial %d", threads, w.Best, want)
		}
		if w.Best <= 0 {
			t.Errorf("threads=%d: no alignment found (score %d)", threads, w.Best)
		}
	}
}

// TestHomologyScoresAboveRandom: sequence b is a mutated copy of a
// prefix of a, so the local alignment score must be a large fraction of
// the query length.
func TestHomologyScoresAboveRandom(t *testing.T) {
	w := run(t, 2, 1.0/512)
	if int(w.Best) < w.m/2 {
		t.Errorf("alignment score %d too low for homologous input (m=%d)", w.Best, w.m)
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, 4, 1.0/512)
	b := run(t, 4, 1.0/512)
	if a.Best != b.Best {
		t.Errorf("non-deterministic: %d vs %d", a.Best, b.Best)
	}
}

func TestThreadCountInvariance(t *testing.T) {
	// The score is a pure function of the input, not the decomposition.
	s1 := run(t, 1, 1.0/512).Best
	s8 := run(t, 8, 1.0/512).Best
	if s1 != s8 {
		t.Errorf("score depends on thread count: %d vs %d", s1, s8)
	}
}

func TestBuildRejectsBadThreads(t *testing.T) {
	w := New(workloads.Params{Seed: 1, Scale: 1.0 / 512})
	bus := fsb.NewBus()
	sched, _ := softsdv.NewScheduler(softsdv.Config{Cores: 1}, bus)
	if _, err := w.Build(mem.NewSpace(), sched, 0); err == nil {
		t.Error("threads=0 accepted")
	}
}

func TestMetadata(t *testing.T) {
	w := New(workloads.Params{Seed: 1})
	if w.Name() != "PLSA" {
		t.Errorf("name = %q", w.Name())
	}
	if w.Category() != workloads.SharedWS {
		t.Error("PLSA must be in the shared-working-set category")
	}
	p, s := w.Table1()
	if p == "" || s == "" {
		t.Error("empty Table 1 fields")
	}
}

func TestScaleControlsFootprint(t *testing.T) {
	small := New(workloads.Params{Seed: 1, Scale: 1.0 / 256})
	big := New(workloads.Params{Seed: 1, Scale: 1.0 / 16})
	if small.n >= big.n {
		t.Errorf("scaling broken: n(%g)=%d >= n(%g)=%d", 1.0/256, small.n, 1.0/16, big.n)
	}
}
