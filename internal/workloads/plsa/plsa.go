// Package plsa implements the paper's PLSA workload: Smith-Waterman
// local sequence alignment (linear gap penalty, linear-space rows), the
// optimization workload of Section 2.4. The parallelization follows the
// pipelined-wavefront scheme of the PLSA algorithm (Li et al.,
// Euro-Par'05): the score matrix is partitioned into column blocks, one
// per thread; in round k, thread t computes row k-t of its block, so all
// dependencies (vertical, diagonal, and the horizontal dependency
// crossing the block boundary) come from earlier rounds. Threads
// exchange block-boundary cells through a small shared ring and meet at
// a barrier every round.
//
// Memory behaviour (paper findings this reproduces): the working set is
// two row buffers shared by all threads — small (4 MB paper-equivalent)
// and invariant with thread count; the access pattern is a perfect
// unit-stride stream, giving PLSA the lowest L2 miss rate, the highest
// memory-instruction share (83%), and strong prefetcher affinity.
package plsa

import (
	"fmt"

	"cmpmem/internal/datasets"
	"cmpmem/internal/mem"
	"cmpmem/internal/softsdv"
	"cmpmem/internal/workloads"
)

// The paper's sequences are 30k long, giving ~0.25 MB of DP rows — the
// structure behind PLSA's near-zero DL2 miss rate in Table 2 (the rows
// fit the profiling machine's 512 KB L2) and its from-the-first-point-
// flat curve in Figure 4 (the paper reports the working set as "4 MB",
// the smallest cache it measured).
const (
	paperWorkingSet = 256 << 10
	paperRows       = 300 // rows of the scaled score matrix (query prefix)
)

// Match/mismatch/gap scoring (standard nucleotide defaults).
const (
	scoreMatch    = 2
	scoreMismatch = -1
	scoreGap      = 1
)

// Workload is the PLSA instance.
type Workload struct {
	p workloads.Params
	n int // columns (length of sequence a)
	m int // rows processed (prefix of sequence b)

	a, b []byte // untraced dataset copies

	// Simulated buffers, allocated in Build.
	seqA    mem.Bytes
	seqB    mem.Bytes
	rows    []mem.Int32s // one (prev,cur) pair per thread block? no: shared two rows
	bounds  mem.Int32s   // boundary ring [threads][ringSize]
	best    mem.Int32s   // per-thread best score
	threads int

	// Best is the final alignment score, for validation.
	Best int32
}

// ringSize is the boundary ring depth (see package comment).
const ringSize = 4

// New builds a PLSA workload description.
func New(p workloads.Params) *Workload {
	p = p.WithDefaults()
	// Row footprint: two int32 rows of n columns ≈ WS target.
	target := int(float64(paperWorkingSet) * p.Scale)
	n := target / (2 * 4)
	if n < 512 {
		n = 512
	}
	return &Workload{p: p, n: n, m: paperRows}
}

// Name implements workloads.Workload.
func (w *Workload) Name() string { return "PLSA" }

// Description implements workloads.Workload.
func (w *Workload) Description() string {
	return "Smith-Waterman local alignment with pipelined-wavefront parallel decomposition (linear space)"
}

// Table1 implements workloads.Workload.
func (w *Workload) Table1() (string, string) {
	return fmt.Sprintf("two sequences in %dk length (scaled)", w.n/1000),
		workloads.MiB(uint64(w.n + w.m))
}

// Category implements workloads.Categorizer.
func (w *Workload) Category() workloads.SharingCategory { return workloads.SharedWS }

// Build implements workloads.Workload.
func (w *Workload) Build(sp *mem.Space, sched *softsdv.Scheduler, threads int) (softsdv.Program, error) {
	if threads < 1 {
		return nil, fmt.Errorf("plsa: threads must be >= 1, got %d", threads)
	}
	w.threads = threads
	w.a = datasets.Nucleotides(w.p.Seed, w.n)
	w.b = datasets.Mutate(w.p.Seed^1, w.a[:w.m+w.m/4], 0.2, 0.05)
	if len(w.b) < w.m {
		w.m = len(w.b)
	}

	shared := sp.NewArena("plsa/shared", uint64(w.n)*10+uint64(w.m)+uint64(threads)*64+4096)
	w.seqA = shared.Bytes(w.n)
	copy(w.seqA.Raw(), w.a)
	w.seqB = shared.Bytes(w.m)
	copy(w.seqB.Raw(), w.b[:w.m])
	// Two shared score rows: prev and cur, swapped per round per block.
	prev := shared.Int32s(w.n)
	cur := shared.Int32s(w.n)
	w.rows = []mem.Int32s{prev, cur}
	w.bounds = shared.Int32s(threads * ringSize * 2) // H and diag per slot
	w.best = shared.Int32s(threads)

	barrier := sched.NewBarrier(threads)
	n, m := w.n, w.m
	blk := (n + threads - 1) / threads

	return softsdv.ProgramFunc(func(t *softsdv.Thread, core int) {
		lo := core * blk
		hi := lo + blk
		if hi > n {
			hi = n
		}
		var localBest int32
		rounds := m + threads - 1
		for k := 0; k < rounds; k++ {
			row := k - core
			if row >= 0 && row < m && lo < hi {
				w.computeRow(t, core, row, lo, hi, &localBest)
			}
			barrier.Wait(t)
		}
		w.best.Set(t, core, localBest)
		barrier.Wait(t)
		if core == 0 {
			best := int32(0)
			for i := 0; i < threads; i++ {
				if v := w.best.At(t, i); v > best {
					best = v
				}
			}
			w.Best = best
		}
	}), nil
}

// computeRow fills columns [lo,hi) of the given row for thread `core`.
// Rows alternate between the two shared row buffers; because thread t is
// always exactly one row behind thread t-1, the parity of `row` selects
// a consistent (prev, cur) pair per thread.
func (w *Workload) computeRow(t *softsdv.Thread, core, row, lo, hi int, localBest *int32) {
	prev := w.rows[(row+1)&1]
	cur := w.rows[row&1]
	bc := w.seqB.At(t, row)

	// Boundary values from the left neighbor (or zero at the matrix
	// edge): hLeft = H[row][lo-1], diag = H[row-1][lo-1].
	var hLeft, diag int32
	if lo > 0 {
		slot := (core-1)*ringSize*2 + (row%ringSize)*2
		hLeft = w.bounds.At(t, slot)
		prevSlot := (core-1)*ringSize*2 + ((row-1+ringSize)%ringSize)*2
		if row > 0 {
			diag = w.bounds.At(t, prevSlot)
		}
	}

	for j := lo; j < hi; j++ {
		var up int32
		if row > 0 {
			up = prev.At(t, j)
		}
		s := int32(scoreMismatch)
		if w.seqA.At(t, j) == bc {
			s = scoreMatch
		}
		h := diag + s
		if v := up - scoreGap; v > h {
			h = v
		}
		if v := hLeft - scoreGap; v > h {
			h = v
		}
		if h < 0 {
			h = 0
		}
		cur.Set(t, j, h)
		diag = up
		hLeft = h
		if h > *localBest {
			*localBest = h
		}
		// One ALU op per cell keeps the memory-instruction share near
		// the paper's 83%.
		if j&1 == 0 {
			t.Exec(1)
		}
	}

	// Publish this row's block-end boundary for the right neighbor.
	if core < w.threads-1 {
		slot := core*ringSize*2 + (row%ringSize)*2
		w.bounds.Set(t, slot, hLeft)
	}
}

// Reference computes the alignment score serially without simulation,
// for validating the parallel kernel.
func (w *Workload) Reference() int32 {
	if w.a == nil {
		w.a = datasets.Nucleotides(w.p.Seed, w.n)
		w.b = datasets.Mutate(w.p.Seed^1, w.a[:w.m+w.m/4], 0.2, 0.05)
		if len(w.b) < w.m {
			w.m = len(w.b)
		}
	}
	prev := make([]int32, w.n)
	cur := make([]int32, w.n)
	var best int32
	for i := 0; i < w.m; i++ {
		var hLeft, diag int32
		bc := w.b[i]
		for j := 0; j < w.n; j++ {
			up := prev[j]
			s := int32(scoreMismatch)
			if w.a[j] == bc {
				s = scoreMatch
			}
			h := diag + s
			if v := up - scoreGap; v > h {
				h = v
			}
			if v := hLeft - scoreGap; v > h {
				h = v
			}
			if h < 0 {
				h = 0
			}
			cur[j] = h
			diag = up
			hLeft = h
			if h > best {
				best = h
			}
		}
		prev, cur = cur, prev
	}
	return best
}
