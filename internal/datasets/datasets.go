// Package datasets generates the synthetic inputs that stand in for the
// paper's proprietary datasets (Table 1). Each generator is seeded and
// deterministic, and draws from the same distribution family as the real
// data it replaces:
//
//	SNP        — HGBASE haplotypes      → correlated binary site matrix
//	SVM-RFE    — cancer micro-array     → two-class expression matrix
//	RSEARCH    — GenBank sequences      → random nucleotides + planted
//	                                      structural homologs
//	FIMI       — Kosarak click-stream   → power-law transaction database
//	PLSA       — GenBank DNA            → mutated sequence pairs
//	MDS        — web search documents   → Zipf term-frequency sentences
//	SHOT/VIEW  — MPEG-2 sports footage  → synthetic frame stream with
//	                                      shot cuts and playfield regions
//
// What matters for memory characterization is the *shape* of the data
// (matrix dimensions, item skew, sequence lengths, frame sizes), which
// these generators control explicitly.
package datasets

import "math/rand"

// Rng returns the package's canonical deterministic source for a seed.
// All generators accept a seed rather than a shared source so that each
// dataset is independently reproducible.
func Rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Zipf draws n samples in [0, vocab) with Zipf skew s using the given
// seed. Used by the transaction and document generators.
func Zipf(seed int64, s float64, vocab uint64, n int) []int {
	r := Rng(seed)
	z := rand.NewZipf(r, s, 1, vocab-1)
	out := make([]int, n)
	for i := range out {
		out[i] = int(z.Uint64())
	}
	return out
}
