package datasets

// Synthetic video for the SHOT and VIEWTYPE workloads: a frame stream
// with the MPEG-2 dimensions used in the paper (720×576), organized into
// shots separated by hard cuts, with per-shot color statistics and — for
// the sports footage VIEWTYPE expects — a dominant "playfield" region
// whose on-screen share varies with the camera's view type.

// FrameSpec describes a synthetic video.
type FrameSpec struct {
	Width, Height int
	// Frames is the total frame count.
	Frames int
	// MeanShotLen is the average frames per shot.
	MeanShotLen int
}

// ViewKind is the ground-truth view type of a shot (VIEWTYPE classes).
type ViewKind uint8

// The four view types distinguished by the paper's workload.
const (
	ViewGlobal ViewKind = iota
	ViewMedium
	ViewCloseUp
	ViewOutOfView
)

// String names the view kind.
func (v ViewKind) String() string {
	switch v {
	case ViewGlobal:
		return "global"
	case ViewMedium:
		return "medium"
	case ViewCloseUp:
		return "close-up"
	default:
		return "out-of-view"
	}
}

// Shot is one ground-truth shot.
type Shot struct {
	Start, End int // frame range [Start, End)
	View       ViewKind
	// baseR/G/B are the shot's color statistics center.
	baseR, baseG, baseB uint8
	// fieldShare is the fraction of the frame covered by playfield.
	fieldShare float64
	noiseSeed  int64
}

// Video generates frames lazily: holding a 200 MB clip in memory is
// unnecessary because the workloads stream it frame by frame, exactly as
// the decoders in the paper did.
type Video struct {
	Spec  FrameSpec
	Shots []Shot
}

// GenVideo plans the shot structure of a synthetic clip.
func GenVideo(seed int64, spec FrameSpec) *Video {
	r := Rng(seed)
	v := &Video{Spec: spec}
	frame := 0
	for frame < spec.Frames {
		length := 1 + r.Intn(2*spec.MeanShotLen-1)
		end := frame + length
		if end > spec.Frames {
			end = spec.Frames
		}
		view := ViewKind(r.Intn(4))
		share := map[ViewKind]float64{
			ViewGlobal:    0.75,
			ViewMedium:    0.45,
			ViewCloseUp:   0.15,
			ViewOutOfView: 0.0,
		}[view]
		v.Shots = append(v.Shots, Shot{
			Start: frame, End: end, View: view,
			baseR:      uint8(40 + r.Intn(180)),
			baseG:      uint8(40 + r.Intn(180)),
			baseB:      uint8(40 + r.Intn(180)),
			fieldShare: share + 0.05*r.Float64(),
			noiseSeed:  r.Int63(),
		})
		frame = end
	}
	return v
}

// ShotOf returns the shot containing the given frame.
func (v *Video) ShotOf(frame int) *Shot {
	lo, hi := 0, len(v.Shots)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if v.Shots[mid].End <= frame {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return &v.Shots[lo]
}

// IsCut reports whether frame is the first frame of a new shot
// (ground truth for SHOT's detector).
func (v *Video) IsCut(frame int) bool {
	if frame == 0 {
		return false
	}
	return v.ShotOf(frame).Start == frame
}

// RenderRGB fills dst (len = 3*W*H, packed RGB) with the given frame.
// Within a shot, frames differ by deterministic pixel noise; across a
// cut, the base color jumps. The playfield (a green-ish horizontal band
// whose height follows the shot's fieldShare) occupies the lower part of
// the frame, as in sports footage.
func (v *Video) RenderRGB(frame int, dst []byte) {
	s := v.ShotOf(frame)
	w, h := v.Spec.Width, v.Spec.Height
	fieldTop := h - int(float64(h)*s.fieldShare)
	// xorshift noise keyed by shot and frame: cheap and deterministic.
	state := uint64(s.noiseSeed) ^ (uint64(frame) * 0x9E3779B97F4A7C15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for y := 0; y < h; y++ {
		rowIsField := y >= fieldTop
		base := y * w * 3
		for x := 0; x < w; x++ {
			n := next()
			jr := uint8(n & 15)
			jg := uint8((n >> 4) & 15)
			jb := uint8((n >> 8) & 15)
			var r, g, b uint8
			if rowIsField {
				// Playfield: dominant green hue.
				r, g, b = 30+jr, 150+jg, 40+jb
			} else {
				r, g, b = s.baseR+jr, s.baseG+jg, s.baseB+jb
			}
			dst[base+x*3+0] = r
			dst[base+x*3+1] = g
			dst[base+x*3+2] = b
		}
	}
}
