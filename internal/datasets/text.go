package datasets

import "math"

// Document corpora for multi-document summarization (MDS). Sentences
// are term-frequency vectors over a Zipf vocabulary; documents cluster
// around topics so the similarity graph has genuine block structure,
// which is what makes the ranking matrix large and sparse.

// Corpus is a collection of sentence vectors grouped into documents.
type Corpus struct {
	// Vocab is the vocabulary size.
	Vocab int
	// Sentences holds, for each sentence, its sorted term ids.
	Sentences [][]int32
	// Weights holds the matching term frequencies.
	Weights [][]float32
	// DocOf maps sentence index to document index.
	DocOf []int32
	// Query is the user query's term vector (ids + weights).
	QueryTerms   []int32
	QueryWeights []float32
}

// GenCorpus builds docs documents of sentencesPerDoc sentences each,
// termsPerSentence terms per sentence, over a vocabulary of vocab terms
// split across topics. The first quarter of the vocabulary is a shared
// "stopword" range every topic draws from; the rest is partitioned into
// per-topic ranges, so topical similarity is genuine rather than an
// artifact of Zipf head terms.
func GenCorpus(seed int64, docs, sentencesPerDoc, termsPerSentence, vocab, topics int) *Corpus {
	r := Rng(seed)
	if topics < 1 {
		topics = 1
	}
	c := &Corpus{Vocab: vocab}
	global := vocab / 4
	perTopic := (vocab - global) / topics
	zipfGlobal := randZipf(seed^0x7e97, global)
	zipfTopic := randZipf(seed^0x3b1d, perTopic)
	topicBase := make([]int, topics)
	for t := range topicBase {
		topicBase[t] = global + perTopic*t
	}
	for d := 0; d < docs; d++ {
		topic := d % topics
		for s := 0; s < sentencesPerDoc; s++ {
			terms := make(map[int32]float32, termsPerSentence)
			for k := 0; k < termsPerSentence; k++ {
				var id int32
				if r.Float64() < 0.6 {
					// Topic-local term.
					id = int32(topicBase[topic] + zipfTopic())
				} else {
					id = int32(zipfGlobal())
				}
				terms[id]++
			}
			ids := make([]int32, 0, len(terms))
			for id := range terms {
				ids = append(ids, id)
			}
			sortInt32s(ids)
			ws := make([]float32, len(ids))
			var norm float64
			for i, id := range ids {
				ws[i] = terms[id]
				norm += float64(ws[i]) * float64(ws[i])
			}
			norm = math.Sqrt(norm)
			for i := range ws {
				ws[i] = float32(float64(ws[i]) / norm)
			}
			c.Sentences = append(c.Sentences, ids)
			c.Weights = append(c.Weights, ws)
			c.DocOf = append(c.DocOf, int32(d))
		}
	}
	// Query: a few terms from topic 0's local range.
	qt := make(map[int32]float32, 8)
	for k := 0; k < 8; k++ {
		qt[int32(topicBase[0]+zipfTopic())]++
	}
	for id := range qt {
		c.QueryTerms = append(c.QueryTerms, id)
	}
	sortInt32s(c.QueryTerms)
	c.QueryWeights = make([]float32, len(c.QueryTerms))
	for i, id := range c.QueryTerms {
		c.QueryWeights[i] = qt[id]
	}
	return c
}

// sortInt32s sorts in place (insertion sort: sentence vectors are tiny).
func sortInt32s(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
