package datasets

import (
	"testing"
	"testing/quick"
)

func TestSNPDeterministicAndCorrelated(t *testing.T) {
	a := GenSNP(5, 200, 64, 8)
	b := GenSNP(5, 200, 64, 8)
	for i := range a.Alleles {
		if a.Alleles[i] != b.Alleles[i] {
			t.Fatal("same seed produced different matrices")
		}
	}
	// Within-block adjacent sites must agree far more often than
	// across-block distant sites.
	agree := func(s1, s2 int) float64 {
		n := 0
		for seq := 0; seq < a.Sequences; seq++ {
			if a.Alleles[seq*a.Sites+s1] == a.Alleles[seq*a.Sites+s2] {
				n++
			}
		}
		return float64(n) / float64(a.Sequences)
	}
	near := agree(8, 9)   // same block
	far := agree(8, 8+32) // different block
	if near < far+0.1 {
		t.Errorf("no LD structure: near-agreement %.2f, far %.2f", near, far)
	}
}

func TestSNPAllelesBinary(t *testing.T) {
	m := GenSNP(1, 50, 20, 8)
	for _, v := range m.Alleles {
		if v != 0 && v != 1 {
			t.Fatalf("non-binary allele %d", v)
		}
	}
}

func TestMicroarrayInformativeSignal(t *testing.T) {
	m := GenMicroarray(9, 100, 500, 0.04)
	if len(m.Informative) != 20 {
		t.Fatalf("informative count = %d, want 20", len(m.Informative))
	}
	// Class-conditional mean of an informative gene must separate; of a
	// random other gene, not.
	meanByClass := func(g int) (pos, neg float64) {
		var np, nn int
		for s := 0; s < m.Samples; s++ {
			v := m.X[s*m.Genes+g]
			if m.Y[s] > 0 {
				pos += v
				np++
			} else {
				neg += v
				nn++
			}
		}
		return pos / float64(np), neg / float64(nn)
	}
	pos, neg := meanByClass(m.Informative[0])
	if pos-neg < 1.0 {
		t.Errorf("informative gene separation %.2f too weak", pos-neg)
	}
	if len(m.Y) != m.Samples {
		t.Error("label length mismatch")
	}
}

func TestNucleotidesRange(t *testing.T) {
	seq := Nucleotides(3, 1000)
	counts := [4]int{}
	for _, b := range seq {
		if b > 3 {
			t.Fatalf("base %d out of range", b)
		}
		counts[b]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("base %d never generated", i)
		}
	}
}

// kmerSet returns the set of 6-mers of a sequence (shift-invariant
// similarity basis: positional identity is meaningless under indels).
func kmerSet(seq []byte) map[uint32]bool {
	out := map[uint32]bool{}
	var h uint32
	for i, b := range seq {
		h = (h<<2 | uint32(b)) & (1<<12 - 1)
		if i >= 5 {
			out[h] = true
		}
	}
	return out
}

// kmerOverlap returns |A∩B| / |A|.
func kmerOverlap(a, b map[uint32]bool) float64 {
	if len(a) == 0 {
		return 0
	}
	n := 0
	for k := range a {
		if b[k] {
			n++
		}
	}
	return float64(n) / float64(len(a))
}

func TestMutatePreservesKmerContent(t *testing.T) {
	seq := Nucleotides(4, 2000)
	mut := Mutate(5, seq, 0.1, 0.02)
	if len(mut) < len(seq)*9/10 || len(mut) > len(seq)*11/10 {
		t.Errorf("mutated length %d far from original %d", len(mut), len(seq))
	}
	ov := kmerOverlap(kmerSet(seq), kmerSet(mut))
	random := Nucleotides(99, 2000)
	base := kmerOverlap(kmerSet(seq), kmerSet(random))
	if ov < base+0.05 {
		t.Errorf("mutation destroyed homology: overlap %.2f vs random baseline %.2f", ov, base)
	}
}

func TestPlantHomologs(t *testing.T) {
	db := Nucleotides(6, 1<<16)
	motif := Nucleotides(7, 64)
	pos := PlantHomologs(8, db, motif, 10)
	if len(pos) != 10 {
		t.Fatalf("planted %d homologs, want 10", len(pos))
	}
	mk := kmerSet(motif)
	strong := 0
	for _, p := range pos {
		if kmerOverlap(mk, kmerSet(db[p:p+len(motif)])) > 0.3 {
			strong++
		}
	}
	// Mutation occasionally degrades a copy; most must stay findable.
	if strong < 7 {
		t.Errorf("only %d/10 planted homologs retain k-mer similarity", strong)
	}
}

func TestPlantHomologsEdgeCases(t *testing.T) {
	if got := PlantHomologs(1, make([]byte, 10), make([]byte, 64), 5); got != nil {
		t.Error("planting into a too-small db should yield nothing")
	}
	if got := PlantHomologs(1, make([]byte, 1000), nil, 5); got != nil {
		t.Error("empty motif should yield nothing")
	}
}

func TestTransactionsShape(t *testing.T) {
	db := GenTransactions(11, 500, 200, 8)
	if db.Count() != 500 {
		t.Fatalf("count = %d, want 500", db.Count())
	}
	if db.Offsets[len(db.Offsets)-1] != int32(len(db.Items)) {
		t.Error("final offset != item count")
	}
	totalLen := 0
	for i := 0; i < db.Count(); i++ {
		tx := db.Get(i)
		totalLen += len(tx)
		seen := map[int32]bool{}
		for _, it := range tx {
			if it < 0 || int(it) >= db.NumItems {
				t.Fatalf("item %d out of range", it)
			}
			if seen[it] {
				t.Fatalf("tx %d contains duplicate item %d", i, it)
			}
			seen[it] = true
		}
	}
	mean := float64(totalLen) / float64(db.Count())
	if mean < 4 || mean > 20 {
		t.Errorf("mean transaction length %.1f implausible for meanLen 8", mean)
	}
}

func TestTransactionsSkew(t *testing.T) {
	db := GenTransactions(13, 2000, 500, 8)
	counts := make([]int, db.NumItems)
	for _, it := range db.Items {
		counts[it]++
	}
	// Head items must be much more popular than tail items.
	var head, tail int
	for i := 0; i < 10; i++ {
		head += counts[i]
	}
	for i := 400; i < 410; i++ {
		tail += counts[i]
	}
	if head < 5*tail {
		t.Errorf("item popularity not skewed: head=%d tail=%d", head, tail)
	}
}

func TestCorpusShape(t *testing.T) {
	c := GenCorpus(17, 8, 10, 12, 4000, 4)
	if len(c.Sentences) != 80 {
		t.Fatalf("sentences = %d, want 80", len(c.Sentences))
	}
	for i, s := range c.Sentences {
		if len(s) == 0 || len(s) != len(c.Weights[i]) {
			t.Fatalf("sentence %d malformed", i)
		}
		var norm float64
		for j := 1; j < len(s); j++ {
			if s[j] <= s[j-1] {
				t.Fatalf("sentence %d term ids not strictly ascending", i)
			}
		}
		for _, w := range c.Weights[i] {
			norm += float64(w) * float64(w)
		}
		if norm < 0.99 || norm > 1.01 {
			t.Fatalf("sentence %d weights not normalized: %f", i, norm)
		}
	}
	if len(c.QueryTerms) == 0 || len(c.QueryTerms) != len(c.QueryWeights) {
		t.Error("malformed query")
	}
}

func TestVideoShotStructure(t *testing.T) {
	v := GenVideo(19, FrameSpec{Width: 32, Height: 24, Frames: 200, MeanShotLen: 10})
	if len(v.Shots) == 0 {
		t.Fatal("no shots planned")
	}
	prevEnd := 0
	for i, s := range v.Shots {
		if s.Start != prevEnd {
			t.Fatalf("shot %d starts at %d, want %d (contiguous)", i, s.Start, prevEnd)
		}
		if s.End <= s.Start {
			t.Fatalf("shot %d empty", i)
		}
		prevEnd = s.End
	}
	if prevEnd != 200 {
		t.Fatalf("shots cover %d frames, want 200", prevEnd)
	}
	// ShotOf and IsCut agree with the plan.
	for _, s := range v.Shots {
		if v.ShotOf(s.Start) != &v.Shots[indexOf(v, s.Start)] {
			t.Fatal("ShotOf disagrees with plan")
		}
		if s.Start > 0 && !v.IsCut(s.Start) {
			t.Errorf("frame %d should be a cut", s.Start)
		}
		if v.IsCut(s.Start+(s.End-s.Start)/2) && (s.End-s.Start) > 1 {
			t.Errorf("mid-shot frame flagged as cut")
		}
	}
}

func indexOf(v *Video, frame int) int {
	for i, s := range v.Shots {
		if frame >= s.Start && frame < s.End {
			return i
		}
	}
	return -1
}

func TestVideoRenderDeterministic(t *testing.T) {
	v := GenVideo(23, FrameSpec{Width: 16, Height: 12, Frames: 10, MeanShotLen: 4})
	a := make([]byte, 16*12*3)
	b := make([]byte, 16*12*3)
	v.RenderRGB(3, a)
	v.RenderRGB(3, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("rendering not deterministic")
		}
	}
}

func TestVideoPlayfieldIsGreen(t *testing.T) {
	v := GenVideo(29, FrameSpec{Width: 16, Height: 16, Frames: 40, MeanShotLen: 40})
	// Force a known global shot for the check.
	v.Shots[0].fieldShare = 0.5
	buf := make([]byte, 16*16*3)
	v.RenderRGB(0, buf)
	// Bottom rows are playfield: green-dominant.
	p := (15*16 + 8) * 3
	if !(buf[p+1] > buf[p] && buf[p+1] > buf[p+2]) {
		t.Errorf("playfield pixel not green-dominant: %v", buf[p:p+3])
	}
	// Top rows follow the shot's base color distribution (any hue).
}

// TestZipfHelper sanity-checks the exported sampler.
func TestZipfHelper(t *testing.T) {
	samples := Zipf(31, 1.3, 1000, 5000)
	if len(samples) != 5000 {
		t.Fatal("wrong sample count")
	}
	small := 0
	for _, s := range samples {
		if s < 0 || s >= 1000 {
			t.Fatalf("sample %d out of range", s)
		}
		if s < 10 {
			small++
		}
	}
	if small < len(samples)/4 {
		t.Errorf("Zipf head too light: %d/%d below 10", small, len(samples))
	}
}

// TestRngIndependence: generators with different seeds differ.
func TestRngIndependence(t *testing.T) {
	check := func(s1, s2 int64) bool {
		if s1 == s2 {
			return true
		}
		a := Nucleotides(s1, 64)
		b := Nucleotides(s2, 64)
		same := 0
		for i := range a {
			if a[i] == b[i] {
				same++
			}
		}
		return same < 50 // different seeds should not be near-identical
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
