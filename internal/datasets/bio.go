package datasets

// Bioinformatics inputs: SNP haplotypes, micro-array expression data,
// and nucleotide sequences.

// SNPMatrix is a sequences × sites haplotype matrix with 0/1 alleles.
// Sites are generated in linkage-disequilibrium blocks: within a block,
// alleles are correlated, giving the Bayesian-network learner real
// structure to find (and realistic column-scan behaviour).
type SNPMatrix struct {
	Sequences int
	Sites     int
	// Alleles is row-major: Alleles[seq*Sites+site].
	Alleles []int8
	// BlockSize is the LD block width used during generation.
	BlockSize int
}

// GenSNP builds a haplotype matrix. Correlation within a block decays
// with distance from the block's founder site.
func GenSNP(seed int64, sequences, sites, blockSize int) *SNPMatrix {
	if blockSize < 1 {
		blockSize = 8
	}
	r := Rng(seed)
	m := &SNPMatrix{
		Sequences: sequences,
		Sites:     sites,
		Alleles:   make([]int8, sequences*sites),
		BlockSize: blockSize,
	}
	for s := 0; s < sequences; s++ {
		row := m.Alleles[s*sites : (s+1)*sites]
		for b := 0; b < sites; b += blockSize {
			founder := int8(r.Intn(2))
			end := b + blockSize
			if end > sites {
				end = sites
			}
			for j := b; j < end; j++ {
				// Flip probability grows with distance from founder.
				pFlip := 0.05 + 0.02*float64(j-b)
				if r.Float64() < pFlip {
					row[j] = 1 - founder
				} else {
					row[j] = founder
				}
			}
		}
	}
	return m
}

// Microarray is a samples × genes expression matrix with binary class
// labels. A subset of genes is informative: their expression is shifted
// by class, so SVM-RFE has a real signal to recover.
type Microarray struct {
	Samples int
	Genes   int
	// X is row-major: X[sample*Genes+gene], standardized.
	X []float64
	// Y holds class labels in {-1,+1}.
	Y []float64
	// Informative lists the indices of the signal-carrying genes.
	Informative []int
}

// GenMicroarray builds an expression matrix with the given fraction of
// informative genes (e.g. 0.02 for a cancer-style dataset).
func GenMicroarray(seed int64, samples, genes int, informativeFrac float64) *Microarray {
	r := Rng(seed)
	m := &Microarray{
		Samples: samples,
		Genes:   genes,
		X:       make([]float64, samples*genes),
		Y:       make([]float64, samples),
	}
	nInf := int(float64(genes) * informativeFrac)
	if nInf < 1 {
		nInf = 1
	}
	perm := r.Perm(genes)
	m.Informative = append([]int(nil), perm[:nInf]...)
	isInf := make(map[int]bool, nInf)
	for _, g := range m.Informative {
		isInf[g] = true
	}
	for s := 0; s < samples; s++ {
		y := float64(1)
		if s%2 == 1 {
			y = -1
		}
		m.Y[s] = y
		row := m.X[s*genes : (s+1)*genes]
		for g := 0; g < genes; g++ {
			v := r.NormFloat64()
			if isInf[g] {
				v += 1.5 * y
			}
			row[g] = v
		}
	}
	return m
}

// Nucleotides generates a random sequence over ACGU (as 0..3 bytes).
func Nucleotides(seed int64, n int) []byte {
	r := Rng(seed)
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(r.Intn(4))
	}
	return out
}

// Mutate returns a copy of seq with the given substitution and indel
// rates, for building homologous pairs (PLSA alignment inputs).
func Mutate(seed int64, seq []byte, subRate, indelRate float64) []byte {
	r := Rng(seed)
	out := make([]byte, 0, len(seq))
	for _, c := range seq {
		switch {
		case r.Float64() < indelRate/2:
			// deletion: skip
		case r.Float64() < indelRate/2:
			// insertion
			out = append(out, byte(r.Intn(4)), c)
		case r.Float64() < subRate:
			out = append(out, byte((int(c)+1+r.Intn(3))%4))
		default:
			out = append(out, c)
		}
	}
	return out
}

// PlantHomologs embeds copies of motif (with mutations) into db at
// roughly uniform spacing, returning the positions used. RSEARCH then
// has true homologs to find.
func PlantHomologs(seed int64, db []byte, motif []byte, count int) []int {
	if count <= 0 || len(motif) == 0 || len(db) < len(motif)+2 {
		return nil
	}
	r := Rng(seed)
	positions := make([]int, 0, count)
	stride := len(db) / (count + 1)
	if stride < len(motif) {
		stride = len(motif)
	}
	for i := 1; i <= count; i++ {
		pos := i*stride - len(motif)/2
		if pos+len(motif) > len(db) {
			break
		}
		mutated := Mutate(r.Int63(), motif, 0.08, 0.005)
		if len(mutated) > len(motif) {
			mutated = mutated[:len(motif)]
		}
		copy(db[pos:], mutated)
		positions = append(positions, pos)
	}
	return positions
}
