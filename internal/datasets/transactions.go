package datasets

import "math"

// Transaction databases for frequent-itemset mining (FIMI). The
// generator mimics the Kosarak click-stream's shape: heavy-tailed item
// popularity and short, bursty transactions, with planted frequent
// patterns so FP-growth has real structure to mine.

// Transactions is a transaction database.
type Transactions struct {
	// Items holds all transactions back to back.
	Items []int32
	// Offsets[i] is the start of transaction i in Items;
	// Offsets[len(Offsets)-1] == len(Items).
	Offsets []int32
	// NumItems is the size of the item vocabulary.
	NumItems int
}

// Count returns the number of transactions.
func (t *Transactions) Count() int { return len(t.Offsets) - 1 }

// Get returns transaction i as a sub-slice of Items.
func (t *Transactions) Get(i int) []int32 {
	return t.Items[t.Offsets[i]:t.Offsets[i+1]]
}

// GenTransactions builds a database of n transactions over a vocabulary
// of numItems, with mean transaction length meanLen. A small set of
// pattern itemsets is planted into a fraction of transactions so that
// frequent itemsets exist at realistic supports.
func GenTransactions(seed int64, n, numItems, meanLen int) *Transactions {
	r := Rng(seed)
	zipf := randZipf(seed^0x7a11, numItems)

	// Plant patterns: a handful of itemsets of size 2..5.
	type pattern struct {
		items []int32
		prob  float64
	}
	numPatterns := 8
	patterns := make([]pattern, numPatterns)
	for i := range patterns {
		size := 2 + r.Intn(4)
		items := make([]int32, size)
		for j := range items {
			items[j] = int32(zipf())
		}
		patterns[i] = pattern{items: items, prob: 0.02 + r.Float64()*0.05}
	}

	t := &Transactions{
		Items:    make([]int32, 0, n*meanLen),
		Offsets:  make([]int32, 1, n+1),
		NumItems: numItems,
	}
	seen := make(map[int32]bool, 64)
	for i := 0; i < n; i++ {
		clear(seen)
		// Geometric-ish transaction length around meanLen.
		length := 1 + r.Intn(2*meanLen-1)
		for _, p := range patterns {
			if r.Float64() < p.prob {
				for _, it := range p.items {
					if !seen[it] {
						seen[it] = true
						t.Items = append(t.Items, it)
					}
				}
			}
		}
		for j := 0; j < length; j++ {
			it := int32(zipf())
			if !seen[it] {
				seen[it] = true
				t.Items = append(t.Items, it)
			}
		}
		t.Offsets = append(t.Offsets, int32(len(t.Items)))
	}
	return t
}

// randZipf returns a sampler over [0, n) drawing from a discrete power
// law p(k) ∝ 1/(k+2)^1.2 via inverse-CDF, matching click-stream skew.
func randZipf(seed int64, n int) func() int {
	r := Rng(seed)
	cum := make([]float64, n)
	var total float64
	for k := 0; k < n; k++ {
		total += 1.0 / math.Pow(float64(k)+2, 1.2)
		cum[k] = total
	}
	for k := range cum {
		cum[k] /= total
	}
	return func() int {
		u := r.Float64()
		lo, hi := 0, n-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
}
