// Package dragonhead is a software model of Intel's Dragonhead FPGA
// cache emulator, the performance-model half of the paper's co-simulation
// platform. The physical board has six FPGAs; the model reproduces the
// same pipeline:
//
//	AF  — address filter: receives FSB transactions from the logic
//	      analyzer interface, honors the start/stop emulation window,
//	      decodes control messages, regulates accesses to line-granular
//	      requests, and routes them to a cache-controller bank.
//	CC0..CC3 — cache controllers: four address-interleaved banks that
//	      together emulate one shared last-level cache with true LRU.
//	      Banking by the low line-number bits is exact: the union of the
//	      banks' sets is precisely the monolithic cache's set space.
//	CB  — control block: configures AF/CC and collects performance
//	      counters; the host reads them every 500 µs of emulated time,
//	      which the model reproduces by sampling on the cycles-completed
//	      messages from the execution engine.
//
// Like the hardware, the emulator is passive: it never stalls the
// execution side; it only observes and counts.
package dragonhead

import (
	"fmt"

	"cmpmem/internal/cache"
	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/telemetry"
	"cmpmem/internal/trace"
)

// DefaultBanks is the number of CC FPGAs on the physical board.
const DefaultBanks = 4

// DefaultSamplePeriod is the host's counter-collection period in seconds
// of emulated time (500 µs).
const DefaultSamplePeriod = 500e-6

// Config describes one emulated LLC.
type Config struct {
	// LLC is the shared last-level cache being emulated. The physical
	// emulator supports 1 MB to 256 MB with 64 B to 4096 B lines.
	LLC cache.Config
	// Banks is the number of CC banks (default 4). Must divide the set
	// count and be a power of two.
	Banks int
	// PrivatePerCore, if positive, reconfigures the emulator as that
	// many private per-core LLC slices instead of one shared LLC: each
	// core gets LLC.Size / PrivatePerCore of isolated capacity and
	// requests route by core ID rather than by address. This answers
	// the shared-vs-private LLC design question the related work
	// debates (Liu et al., Zhang & Asanovic) with the same emulator.
	PrivatePerCore int
	// Shards, if > 1, spreads one run's bank lookups across that many
	// worker goroutines, partitioned by the same low line-number bits
	// that select the CC bank (see shard.go). Must be a power of two;
	// values above Banks are clamped to Banks. 0 or 1 means serial.
	// Results are bit-identical to serial execution. Ignored in the
	// private organization, which routes by core ID, not address.
	Shards int
	// ClockHz converts cycles-completed messages into emulated seconds
	// for CB sampling. The paper's virtual cores are timed against the
	// platform clock; 3.0 GHz matches the Xeon reference machine.
	ClockHz float64
	// SamplePeriod is the CB collection period in emulated seconds.
	SamplePeriod float64
	// Telemetry, when non-nil, registers the emulator's counters (AF
	// drops, per-CC-bank accesses/misses, CB samples). Deltas push at
	// CB-sample and Finalize boundaries — the lookup hot path is never
	// touched, so enabling telemetry does not slow emulation.
	Telemetry *telemetry.Registry
	// Trace, when non-nil and Shards > 1, parents the sharded fan-out's
	// per-shard busy-time spans (recorded when the sharder closes at
	// Finalize). Timing is per delivered batch, never per event.
	Trace *telemetry.Span
}

// DefaultConfig returns a Dragonhead emulating the given LLC with the
// physical board's bank count and sampling period.
func DefaultConfig(llc cache.Config) Config {
	return Config{LLC: llc, Banks: DefaultBanks, ClockHz: 3e9, SamplePeriod: DefaultSamplePeriod}
}

// Sample is one CB counter snapshot.
type Sample struct {
	// Cycles is the cumulative cycles-completed at collection time.
	Cycles uint64
	// Instructions is the cumulative instructions retired (all cores).
	Instructions uint64
	// Accesses and Misses are cumulative LLC counters.
	Accesses uint64
	Misses   uint64
}

// Emulator is the Dragonhead model. It implements fsb.Snooper.
type Emulator struct {
	cfg       Config
	banks     []*cache.Cache
	bankMask  uint64
	bankShift uint
	lineShift uint

	// AF state.
	window      bool
	currentCore uint8
	ignored     uint64 // transactions dropped outside the window

	// CB state.
	instRetired   [cache.MaxCores]uint64
	cycles        uint64
	samples       []Sample
	nextSampleAt  uint64
	cyclesPerTick uint64

	// Delivery state. live is set while the emulator is attached to a
	// batched (asynchronous) bus: its counters are then owned by the
	// delivery worker, and reading them would race. Finalize — called by
	// fsb.Bus.Close after the worker drains — clears it. Like the
	// hardware, where the host may only read the CB after emulation
	// stops, misuse fails loudly instead of returning racy numbers.
	live bool

	// Sharded delivery state (see shard.go). nshards > 1 enables the
	// intra-run sharded path; sharder/shardCons exist only between the
	// first event of a run and Finalize.
	nshards   int
	sharder   *fsb.Sharder
	shardCons []*emuShard

	// tel is nil unless Config.Telemetry attached a registry.
	tel *emuTelemetry
}

// emuTelemetry holds the emulator's registered metrics plus the
// already-pushed watermarks, so repeated pushes (every CB sample, then
// Finalize) emit exact deltas. Counters are shared across emulators on
// one registry; totals are process-cumulative.
type emuTelemetry struct {
	afDropped *telemetry.Counter // dragonhead_af_dropped_total
	cbSamples *telemetry.Counter // dragonhead_cb_samples_total
	bankAcc   []*telemetry.Counter
	bankMiss  []*telemetry.Counter

	pushedDropped  uint64
	pushedSamples  uint64
	pushedBankAcc  []uint64
	pushedBankMiss []uint64
}

// newEmuTelemetry resolves the emulator's counters. Bank counters are
// per CC index (dragonhead_cc0_accesses_total ...), mirroring the four
// physical CC FPGAs; a private organization registers one pair per
// slice the same way.
func newEmuTelemetry(r *telemetry.Registry, banks int) *emuTelemetry {
	t := &emuTelemetry{
		afDropped:      r.Counter("dragonhead_af_dropped_total"),
		cbSamples:      r.Counter("dragonhead_cb_samples_total"),
		bankAcc:        make([]*telemetry.Counter, banks),
		bankMiss:       make([]*telemetry.Counter, banks),
		pushedBankAcc:  make([]uint64, banks),
		pushedBankMiss: make([]uint64, banks),
	}
	for i := 0; i < banks; i++ {
		t.bankAcc[i] = r.Counter(fmt.Sprintf("dragonhead_cc%d_accesses_total", i))
		t.bankMiss[i] = r.Counter(fmt.Sprintf("dragonhead_cc%d_misses_total", i))
	}
	return t
}

// push emits the delta between the emulator's raw counters and the last
// push. Runs on whichever goroutine delivers events (the CB path) or on
// the closing goroutine (Finalize) — never both at once, because
// Finalize happens only after delivery drains.
func (e *Emulator) push() {
	t := e.tel
	if t == nil {
		return
	}
	t.afDropped.Add(e.ignored - t.pushedDropped)
	t.pushedDropped = e.ignored
	n := uint64(len(e.samples))
	t.cbSamples.Add(n - t.pushedSamples)
	t.pushedSamples = n
	for i, b := range e.banks {
		s := b.Stats()
		t.bankAcc[i].Add(s.Accesses - t.pushedBankAcc[i])
		t.pushedBankAcc[i] = s.Accesses
		t.bankMiss[i].Add(s.Misses - t.pushedBankMiss[i])
		t.pushedBankMiss[i] = s.Misses
	}
}

// New builds an emulator. The LLC configuration is validated and split
// across the banks.
func New(cfg Config) (*Emulator, error) {
	if err := cfg.LLC.Validate(); err != nil {
		return nil, err
	}
	if cfg.Banks == 0 {
		cfg.Banks = DefaultBanks
	}
	if cfg.Banks&(cfg.Banks-1) != 0 {
		return nil, fmt.Errorf("dragonhead: bank count %d is not a power of two", cfg.Banks)
	}
	if cfg.ClockHz <= 0 {
		cfg.ClockHz = 3e9
	}
	if cfg.SamplePeriod <= 0 {
		cfg.SamplePeriod = DefaultSamplePeriod
	}
	lines := cfg.LLC.Size / cfg.LLC.LineSize
	assoc := uint64(cfg.LLC.Assoc)
	if cfg.LLC.Assoc == 0 {
		assoc = lines
	}
	sets := lines / assoc
	if uint64(cfg.Banks) > sets {
		return nil, fmt.Errorf("dragonhead: %d banks exceed %d sets", cfg.Banks, sets)
	}
	if cfg.PrivatePerCore > 0 {
		cfg.Shards = 1 // private routes by core, not address: sharding off
	}
	if cfg.Shards > 1 && cfg.Shards&(cfg.Shards-1) != 0 {
		return nil, fmt.Errorf("dragonhead: shard count %d is not a power of two", cfg.Shards)
	}
	if cfg.Shards > cfg.Banks {
		cfg.Shards = cfg.Banks
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}

	e := &Emulator{cfg: cfg, bankMask: uint64(cfg.Banks - 1), nshards: cfg.Shards}
	for b := cfg.Banks; b > 1; b >>= 1 {
		e.bankShift++
	}
	for s := cfg.LLC.LineSize; s > 1; s >>= 1 {
		e.lineShift++
	}
	if n := cfg.PrivatePerCore; n > 0 {
		// Private organization: one slice per core, routed by core ID.
		sliceCfg := cfg.LLC
		sliceCfg.Size = cfg.LLC.Size / uint64(n)
		for i := 0; i < n; i++ {
			sliceCfg.Name = fmt.Sprintf("%s/P%d", cfg.LLC.Name, i)
			c, err := cache.New(sliceCfg)
			if err != nil {
				return nil, fmt.Errorf("dragonhead: private slice %d: %w", i, err)
			}
			e.banks = append(e.banks, c)
		}
		e.cyclesPerTick = uint64(cfg.SamplePeriod * cfg.ClockHz)
		if e.cyclesPerTick == 0 {
			e.cyclesPerTick = 1
		}
		e.nextSampleAt = e.cyclesPerTick
		if cfg.Telemetry != nil {
			e.tel = newEmuTelemetry(cfg.Telemetry, len(e.banks))
		}
		return e, nil
	}
	bankCfg := cfg.LLC
	bankCfg.Size = cfg.LLC.Size / uint64(cfg.Banks)
	for i := 0; i < cfg.Banks; i++ {
		bankCfg.Name = fmt.Sprintf("%s/CC%d", cfg.LLC.Name, i)
		c, err := cache.New(bankCfg)
		if err != nil {
			return nil, fmt.Errorf("dragonhead: bank %d: %w", i, err)
		}
		e.banks = append(e.banks, c)
	}
	e.cyclesPerTick = uint64(cfg.SamplePeriod * cfg.ClockHz)
	if e.cyclesPerTick == 0 {
		e.cyclesPerTick = 1
	}
	e.nextSampleAt = e.cyclesPerTick
	if cfg.Telemetry != nil {
		e.tel = newEmuTelemetry(cfg.Telemetry, len(e.banks))
	}
	return e, nil
}

// Config returns the emulator configuration.
func (e *Emulator) Config() Config { return e.cfg }

// AttachAsync implements fsb.AsyncSnooper: events will arrive on a
// delivery worker, so counter reads are unsafe until Finalize.
func (e *Emulator) AttachAsync() { e.live = true }

// Finalize implements fsb.Finalizer: the event stream has drained and
// counters are sealed; reads are safe again. fsb.Bus.Close calls it
// after joining the delivery worker — call it directly only when
// driving OnRef/OnMsg by hand. Finalize also pushes the run's remaining
// telemetry deltas (the tail since the last CB sample).
func (e *Emulator) Finalize() {
	e.closeSharder()
	e.live = false
	e.push()
}

// mustBeQuiesced guards every counter read: while a delivery worker
// owns the emulator, results would race, so fail loudly instead.
func (e *Emulator) mustBeQuiesced(what string) {
	if e.live || e.sharder != nil {
		panic(fmt.Sprintf(
			"dragonhead: %s called before Finalize while delivery is asynchronous (close the bus or call Finalize first; results would race with the delivery workers)",
			what))
	}
}

// OnRef implements fsb.Snooper: the AF stage for memory transactions.
func (e *Emulator) OnRef(r trace.Ref) {
	if fsb.IsMessage(r) {
		if m, ok := fsb.DecodeMessage(r); ok {
			e.OnMsg(m)
		}
		return
	}
	if !e.window {
		e.ignored++
		return
	}
	// Regulate: split into line-granular requests, route to banks.
	first := uint64(r.Addr) >> e.lineShift
	last := (uint64(r.Addr) + uint64(r.Size) - 1) >> e.lineShift
	if e.nshards > 1 {
		// Sharded path: the AF has already regulated to lines, so route
		// the raw block number to the worker owning its bank. shardMask
		// is a subset of bankMask (nshards divides Banks), so
		// blk mod nshards picks the same partition as bank mod nshards.
		e.ensureSharder()
		for blk := first; blk <= last; blk++ {
			e.sharder.Ref(int(blk)&(e.nshards-1), trace.Ref{Addr: mem.Addr(blk), Kind: r.Kind, Core: r.Core})
		}
		return
	}
	for blk := first; blk <= last; blk++ {
		e.lookupLine(blk, r.Kind, r.Core)
	}
}

// lookupLine routes one line request to its CC bank. In the shared
// organization, bank select uses the low line-number bits and the bank
// sees the line number with the bank bits stripped, so the union of
// bank set spaces equals the monolithic mapping exactly. In the
// private organization, requests route by issuing core.
func (e *Emulator) lookupLine(blk uint64, kind mem.Kind, core uint8) {
	if e.cfg.PrivatePerCore > 0 {
		slice := e.banks[int(core)%len(e.banks)]
		slice.Touch(mem.Addr(blk)<<e.lineShift, kind, core)
		return
	}
	bank := e.banks[blk&e.bankMask]
	bank.Touch(mem.Addr(blk>>e.bankShift)<<e.lineShift, kind, core)
}

// OnMsg implements fsb.Snooper: the AF stage for control messages.
func (e *Emulator) OnMsg(m fsb.Message) {
	switch m.Kind {
	case fsb.MsgStart:
		e.window = true
	case fsb.MsgStop:
		e.window = false
	case fsb.MsgCoreID:
		e.currentCore = m.Core
	case fsb.MsgInstRetired:
		e.instRetired[m.Core] = m.Value
	case fsb.MsgCycles:
		if m.Value > e.cycles {
			e.cycles = m.Value
		}
		if e.nshards > 1 {
			// Sharded CB: broadcast the cycle count so every sampling
			// replica crosses the same boundaries, and keep only the
			// skeleton (boundary + instructions, both producer-owned)
			// here. Bank counters are worker-owned until Finalize, which
			// sums the per-shard partials into these skeletons.
			e.ensureSharder()
			e.sharder.Broadcast(m)
			for e.cycles >= e.nextSampleAt {
				e.samples = append(e.samples, Sample{
					Cycles:       e.nextSampleAt,
					Instructions: e.instructions(),
				})
				e.nextSampleAt += e.cyclesPerTick
			}
			return
		}
		for e.cycles >= e.nextSampleAt {
			e.collect()
			e.nextSampleAt += e.cyclesPerTick
		}
	}
}

// collect is the CB host read: snapshot cumulative counters. Each
// collection also pushes telemetry deltas — the software equivalent of
// the host reading the CB every 500 µs of emulated time.
func (e *Emulator) collect() {
	acc, miss := e.totals()
	e.samples = append(e.samples, Sample{
		Cycles:       e.nextSampleAt,
		Instructions: e.instructions(),
		Accesses:     acc,
		Misses:       miss,
	})
	e.push()
}

// totals sums counters across banks.
func (e *Emulator) totals() (accesses, misses uint64) {
	for _, b := range e.banks {
		s := b.Stats()
		accesses += s.Accesses
		misses += s.Misses
	}
	return accesses, misses
}

// Stats returns the aggregate LLC statistics across all banks.
func (e *Emulator) Stats() cache.Stats {
	e.mustBeQuiesced("Stats")
	var out cache.Stats
	for _, b := range e.banks {
		s := b.Stats()
		out.Accesses += s.Accesses
		out.Misses += s.Misses
		out.Loads += s.Loads
		out.Stores += s.Stores
		out.LoadMisses += s.LoadMisses
		out.Writebacks += s.Writebacks
		out.Evictions += s.Evictions
		out.SectorFetches += s.SectorFetches
		out.TrafficBytes += s.TrafficBytes
		for c := 0; c < cache.MaxCores; c++ {
			out.PerCoreAccesses[c] += s.PerCoreAccesses[c]
			out.PerCoreMisses[c] += s.PerCoreMisses[c]
		}
	}
	return out
}

// Banks returns the number of CC banks (or private slices).
func (e *Emulator) Banks() int { return len(e.banks) }

// Shards returns the effective shard count (1 when serial).
func (e *Emulator) Shards() int { return e.nshards }

// BankStats returns one CC bank's counters — the per-FPGA view the
// verification layer uses to prove the address interleave partitions
// the stream (per-bank totals must sum to Stats with no overlap).
func (e *Emulator) BankStats(i int) cache.Stats {
	e.mustBeQuiesced("BankStats")
	return *e.banks[i].Stats()
}

// Instructions returns the total instructions retired across cores, per
// the latest inst-retired messages.
func (e *Emulator) Instructions() uint64 {
	e.mustBeQuiesced("Instructions")
	return e.instructions()
}

// instructions is the unguarded total for the CB's own sampling path,
// which runs on whichever goroutine delivers the events.
func (e *Emulator) instructions() uint64 {
	var total uint64
	for _, v := range e.instRetired {
		total += v
	}
	return total
}

// MPKI returns LLC misses per 1000 retired instructions.
func (e *Emulator) MPKI() float64 {
	e.mustBeQuiesced("MPKI")
	inst := e.instructions()
	if inst == 0 {
		return 0
	}
	_, misses := e.totals()
	return float64(misses) * 1000 / float64(inst)
}

// Samples returns a copy of the CB time series collected so far. The
// copy keeps callers from aliasing internal state: the slice they hold
// stays valid across a later Reset or reconfiguration.
func (e *Emulator) Samples() []Sample {
	e.mustBeQuiesced("Samples")
	out := make([]Sample, len(e.samples))
	copy(out, e.samples)
	return out
}

// Ignored returns the number of transactions dropped outside the
// start/stop window (host and simulator noise).
func (e *Emulator) Ignored() uint64 {
	e.mustBeQuiesced("Ignored")
	return e.ignored
}

// InWindow reports whether the emulation window is currently open.
func (e *Emulator) InWindow() bool { return e.window }

// CurrentCore returns the core announced by the latest core-ID message.
func (e *Emulator) CurrentCore() uint8 { return e.currentCore }

// Reset clears cache contents, counters, and CB state.
func (e *Emulator) Reset() {
	e.mustBeQuiesced("Reset")
	for _, b := range e.banks {
		b.Reset()
	}
	e.window = false
	e.currentCore = 0
	e.ignored = 0
	e.instRetired = [cache.MaxCores]uint64{}
	e.cycles = 0
	e.samples = nil
	e.nextSampleAt = e.cyclesPerTick
	if e.tel != nil {
		// Cache stats restart from zero; restart the push watermarks too
		// so the next delta does not underflow. Registry totals remain
		// monotonic (they accumulate across runs by design).
		e.tel.pushedDropped = 0
		e.tel.pushedSamples = 0
		for i := range e.tel.pushedBankAcc {
			e.tel.pushedBankAcc[i] = 0
			e.tel.pushedBankMiss[i] = 0
		}
	}
}
