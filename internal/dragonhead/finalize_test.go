package dragonhead

import (
	"strings"
	"testing"

	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
)

// The emulator must participate in the batched bus's lifecycle.
var (
	_ fsb.Snooper      = (*Emulator)(nil)
	_ fsb.AsyncSnooper = (*Emulator)(nil)
	_ fsb.Finalizer    = (*Emulator)(nil)
)

// TestLiveReadsPanic: once attached async, every counter reader must
// fail loudly until Finalize, then work normally.
func TestLiveReadsPanic(t *testing.T) {
	e := newEmu(t, Config{LLC: llc(1 << 20)})
	e.AttachAsync()
	readers := map[string]func(){
		"Stats":        func() { e.Stats() },
		"Samples":      func() { e.Samples() },
		"MPKI":         func() { e.MPKI() },
		"Instructions": func() { e.Instructions() },
		"Ignored":      func() { e.Ignored() },
		"Reset":        func() { e.Reset() },
	}
	for name, read := range readers {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("%s: no panic while live", name)
					return
				}
				if !strings.Contains(r.(string), name) {
					t.Errorf("%s: panic message %q does not name the call", name, r)
				}
			}()
			read()
		}()
	}
	e.Finalize()
	for _, read := range readers {
		read() // must not panic once sealed
	}
}

// TestFinalizeViaBatchedBus: the canonical path — bus.Close seals the
// emulator and the counters match synchronous delivery exactly.
func TestFinalizeViaBatchedBus(t *testing.T) {
	run := func(bus *fsb.Bus, e *Emulator) {
		bus.Attach(e)
		bus.Msg(fsb.Message{Kind: fsb.MsgStart})
		for i := 0; i < 10_000; i++ {
			bus.Ref(trace.Ref{Addr: mem.Addr(i * 64 % (1 << 22)), Core: uint8(i % 4), Size: 8, Kind: mem.Load})
		}
		bus.Msg(fsb.Message{Kind: fsb.MsgInstRetired, Core: 0, Value: 10_000})
		bus.Msg(fsb.Message{Kind: fsb.MsgCycles, Value: 10_000})
		bus.Msg(fsb.Message{Kind: fsb.MsgStop})
		if err := bus.Close(); err != nil {
			t.Fatal(err)
		}
	}
	serial := newEmu(t, Config{LLC: llc(256 << 10)})
	run(fsb.NewBus(), serial)
	batched := newEmu(t, Config{LLC: llc(256 << 10)})
	run(fsb.NewBatchedBus(64), batched)

	if serial.Stats() != batched.Stats() {
		t.Errorf("stats diverge: serial %+v, batched %+v", serial.Stats(), batched.Stats())
	}
	if serial.MPKI() != batched.MPKI() {
		t.Errorf("MPKI diverges: %v vs %v", serial.MPKI(), batched.MPKI())
	}
	if len(serial.Samples()) != len(batched.Samples()) {
		t.Fatalf("sample counts diverge: %d vs %d", len(serial.Samples()), len(batched.Samples()))
	}
	for i := range serial.Samples() {
		if serial.Samples()[i] != batched.Samples()[i] {
			t.Errorf("sample %d diverges", i)
		}
	}
}
