package dragonhead

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cmpmem/internal/cache"
	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
)

func llc(size uint64) cache.Config {
	return cache.Config{Name: "LLC", Size: size, LineSize: 64, Assoc: 16}
}

func newEmu(t *testing.T, cfg Config) *Emulator {
	t.Helper()
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{LLC: cache.Config{Name: "x", Size: 100, LineSize: 64, Assoc: 1}}); err == nil {
		t.Error("invalid LLC accepted")
	}
	if _, err := New(Config{LLC: llc(1 << 20), Banks: 3}); err == nil {
		t.Error("non-power-of-two bank count accepted")
	}
	if _, err := New(Config{LLC: cache.Config{Name: "x", Size: 1 << 10, LineSize: 64, Assoc: 0}, Banks: 4}); err == nil {
		t.Error("more banks than sets accepted")
	}
}

func TestDefaultsApplied(t *testing.T) {
	e := newEmu(t, Config{LLC: llc(1 << 20)})
	if got := e.Config().Banks; got != DefaultBanks {
		t.Errorf("banks = %d, want %d", got, DefaultBanks)
	}
	if e.Config().SamplePeriod != DefaultSamplePeriod {
		t.Error("sample period default not applied")
	}
}

func TestWindowGating(t *testing.T) {
	e := newEmu(t, Config{LLC: llc(1 << 20)})
	r := trace.Ref{Addr: 0x4000_0000, Size: 8, Kind: mem.Load}
	e.OnRef(r) // window closed: ignored
	if e.Stats().Accesses != 0 || e.Ignored() != 1 {
		t.Fatalf("pre-window access counted (acc=%d ignored=%d)", e.Stats().Accesses, e.Ignored())
	}
	e.OnMsg(fsb.Message{Kind: fsb.MsgStart})
	if !e.InWindow() {
		t.Fatal("window should be open")
	}
	e.OnRef(r)
	if e.Stats().Accesses != 1 {
		t.Fatal("in-window access not counted")
	}
	e.OnMsg(fsb.Message{Kind: fsb.MsgStop})
	e.OnRef(r)
	if e.Stats().Accesses != 1 || e.Ignored() != 2 {
		t.Error("post-window access counted")
	}
}

func TestMessagesDecodedFromRefs(t *testing.T) {
	// The AF must decode control messages arriving as raw transactions.
	e := newEmu(t, Config{LLC: llc(1 << 20)})
	e.OnRef(fsb.EncodeMessage(fsb.Message{Kind: fsb.MsgStart}))
	e.OnRef(fsb.EncodeMessage(fsb.Message{Kind: fsb.MsgCoreID, Core: 9}))
	if !e.InWindow() || e.CurrentCore() != 9 {
		t.Errorf("window=%v core=%d; want true, 9", e.InWindow(), e.CurrentCore())
	}
}

func TestInstructionsAndMPKI(t *testing.T) {
	e := newEmu(t, Config{LLC: llc(1 << 20)})
	e.OnMsg(fsb.Message{Kind: fsb.MsgStart})
	for i := 0; i < 100; i++ {
		e.OnRef(trace.Ref{Addr: mem.Addr(0x4000_0000 + i*4096), Size: 8, Kind: mem.Load, Core: 1})
	}
	e.OnMsg(fsb.Message{Kind: fsb.MsgInstRetired, Core: 1, Value: 50_000})
	e.OnMsg(fsb.Message{Kind: fsb.MsgInstRetired, Core: 2, Value: 50_000})
	if e.Instructions() != 100_000 {
		t.Fatalf("instructions = %d, want 100000", e.Instructions())
	}
	// 100 cold misses over 100k instructions = 1.0 MPKI.
	if got := e.MPKI(); got != 1.0 {
		t.Errorf("MPKI = %v, want 1.0", got)
	}
}

func TestInstRetiredIsCumulative(t *testing.T) {
	e := newEmu(t, Config{LLC: llc(1 << 20)})
	e.OnMsg(fsb.Message{Kind: fsb.MsgInstRetired, Core: 0, Value: 100})
	e.OnMsg(fsb.Message{Kind: fsb.MsgInstRetired, Core: 0, Value: 250})
	if e.Instructions() != 250 {
		t.Errorf("instructions = %d, want 250 (latest value, not sum)", e.Instructions())
	}
}

// TestBankedEquivalence: the 4-bank emulator must produce exactly the
// miss count of a monolithic cache of the same total size, for any
// trace (line-interleaved banking partitions the set space exactly).
func TestBankedEquivalence(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mono, err := cache.New(llc(1 << 18))
		if err != nil {
			return false
		}
		banked, err := New(Config{LLC: llc(1 << 18), Banks: 4})
		if err != nil {
			return false
		}
		banked.OnMsg(fsb.Message{Kind: fsb.MsgStart})
		for i := 0; i < 20000; i++ {
			addr := mem.Addr(0x4000_0000 + rng.Intn(1<<20))
			kind := mem.Kind(rng.Intn(2))
			mono.Access(addr, 8, kind, 0)
			banked.OnRef(trace.Ref{Addr: addr, Size: 8, Kind: kind})
		}
		ms, bs := mono.Stats(), banked.Stats()
		return ms.Misses == bs.Misses && ms.Accesses == bs.Accesses &&
			ms.Writebacks == bs.Writebacks
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestBankedEquivalenceAcrossBankCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	addrs := make([]mem.Addr, 30000)
	for i := range addrs {
		addrs[i] = mem.Addr(0x4000_0000 + rng.Intn(1<<21))
	}
	var miss []uint64
	for _, banks := range []int{1, 2, 4, 8} {
		e, err := New(Config{LLC: llc(1 << 19), Banks: banks})
		if err != nil {
			t.Fatal(err)
		}
		e.OnMsg(fsb.Message{Kind: fsb.MsgStart})
		for _, a := range addrs {
			e.OnRef(trace.Ref{Addr: a, Size: 8, Kind: mem.Load})
		}
		miss = append(miss, e.Stats().Misses)
	}
	for i := 1; i < len(miss); i++ {
		if miss[i] != miss[0] {
			t.Errorf("bank count changed miss count: %v", miss)
		}
	}
}

func TestPrivateOrganizationIsolatesCores(t *testing.T) {
	e := newEmu(t, Config{LLC: llc(1 << 20), PrivatePerCore: 4})
	e.OnMsg(fsb.Message{Kind: fsb.MsgStart})
	// Core 0 warms a line; core 1 touching the same address must miss
	// (its private slice has no copy).
	e.OnRef(trace.Ref{Addr: 0x4000_0000, Size: 8, Kind: mem.Load, Core: 0})
	e.OnRef(trace.Ref{Addr: 0x4000_0000, Size: 8, Kind: mem.Load, Core: 1})
	if got := e.Stats().Misses; got != 2 {
		t.Errorf("private slices shared a line: %d misses, want 2", got)
	}
	// Re-access by core 0 hits its own slice.
	e.OnRef(trace.Ref{Addr: 0x4000_0000, Size: 8, Kind: mem.Load, Core: 0})
	if got := e.Stats().Misses; got != 2 {
		t.Errorf("core 0 lost its own line: %d misses", got)
	}
}

func TestPrivateOrganizationDividesCapacity(t *testing.T) {
	shared := newEmu(t, Config{LLC: llc(64 << 10)})
	private := newEmu(t, Config{LLC: llc(64 << 10), PrivatePerCore: 4})
	shared.OnMsg(fsb.Message{Kind: fsb.MsgStart})
	private.OnMsg(fsb.Message{Kind: fsb.MsgStart})
	// One core streams 32 KB repeatedly: fits the shared 64 KB but not
	// its 16 KB private slice.
	for pass := 0; pass < 4; pass++ {
		for a := 0; a < 32<<10; a += 64 {
			r := trace.Ref{Addr: mem.Addr(0x4000_0000 + a), Size: 8, Kind: mem.Load}
			shared.OnRef(r)
			private.OnRef(r)
		}
	}
	if shared.Stats().Misses >= private.Stats().Misses {
		t.Errorf("capacity division not visible: shared %d vs private %d misses",
			shared.Stats().Misses, private.Stats().Misses)
	}
}

func TestCBSampling(t *testing.T) {
	// 1 MHz clock and 500us period -> one sample per 500 cycles.
	e := newEmu(t, Config{LLC: llc(1 << 20), ClockHz: 1e6})
	e.OnMsg(fsb.Message{Kind: fsb.MsgStart})
	e.OnRef(trace.Ref{Addr: 0x4000_0000, Size: 8, Kind: mem.Load})
	e.OnMsg(fsb.Message{Kind: fsb.MsgCycles, Value: 499})
	if len(e.Samples()) != 0 {
		t.Fatal("sampled before the period elapsed")
	}
	e.OnMsg(fsb.Message{Kind: fsb.MsgCycles, Value: 1750})
	samples := e.Samples()
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3 (500, 1000, 1500)", len(samples))
	}
	if samples[0].Cycles != 500 || samples[2].Cycles != 1500 {
		t.Errorf("sample cycle stamps wrong: %+v", samples)
	}
	if samples[0].Misses != 1 {
		t.Errorf("sample did not capture the miss: %+v", samples[0])
	}
}

// TestSamplesReturnsCopy pins the aliasing contract: mutating the slice
// Samples returns must not corrupt the emulator's own sample log, and a
// sample recorded after the call must not leak into the earlier slice.
func TestSamplesReturnsCopy(t *testing.T) {
	e := newEmu(t, Config{LLC: llc(1 << 20), ClockHz: 1e6})
	e.OnMsg(fsb.Message{Kind: fsb.MsgStart})
	e.OnRef(trace.Ref{Addr: 0x4000_0000, Size: 8, Kind: mem.Load})
	e.OnMsg(fsb.Message{Kind: fsb.MsgCycles, Value: 500})
	first := e.Samples()
	if len(first) != 1 {
		t.Fatalf("got %d samples, want 1", len(first))
	}
	first[0].Misses = 999
	if got := e.Samples()[0].Misses; got == 999 {
		t.Error("caller mutation visible through a second Samples call")
	}
	e.OnMsg(fsb.Message{Kind: fsb.MsgCycles, Value: 1000})
	if len(e.Samples()) != 2 {
		t.Fatal("second sample not recorded")
	}
	if len(first) != 1 {
		t.Errorf("earlier snapshot grew to %d samples", len(first))
	}
}

func TestSplitAccessAcrossLines(t *testing.T) {
	e := newEmu(t, Config{LLC: llc(1 << 20)})
	e.OnMsg(fsb.Message{Kind: fsb.MsgStart})
	// 16-byte access straddling a 64 B boundary: two line lookups.
	e.OnRef(trace.Ref{Addr: 0x4000_0038, Size: 16, Kind: mem.Load})
	if got := e.Stats().Accesses; got != 2 {
		t.Errorf("straddling access performed %d lookups, want 2", got)
	}
}

func TestPerCoreAttribution(t *testing.T) {
	e := newEmu(t, Config{LLC: llc(1 << 20)})
	e.OnMsg(fsb.Message{Kind: fsb.MsgStart})
	e.OnRef(trace.Ref{Addr: 0x4000_0000, Size: 8, Kind: mem.Load, Core: 5})
	e.OnRef(trace.Ref{Addr: 0x4000_1000, Size: 8, Kind: mem.Load, Core: 6})
	s := e.Stats()
	if s.PerCoreMisses[5] != 1 || s.PerCoreMisses[6] != 1 {
		t.Error("per-core miss attribution lost through banking")
	}
}

func TestReset(t *testing.T) {
	e := newEmu(t, Config{LLC: llc(1 << 20), ClockHz: 1e6})
	e.OnMsg(fsb.Message{Kind: fsb.MsgStart})
	e.OnRef(trace.Ref{Addr: 0x4000_0000, Size: 8, Kind: mem.Load})
	e.OnMsg(fsb.Message{Kind: fsb.MsgCycles, Value: 10_000})
	e.Reset()
	if e.Stats().Accesses != 0 || len(e.Samples()) != 0 || e.InWindow() || e.Instructions() != 0 {
		t.Error("Reset left state behind")
	}
}

func BenchmarkOnRefHit(b *testing.B) {
	e, _ := New(Config{LLC: llc(1 << 20)})
	e.OnMsg(fsb.Message{Kind: fsb.MsgStart})
	e.OnRef(trace.Ref{Addr: 0x4000_0000, Size: 8, Kind: mem.Load})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.OnRef(trace.Ref{Addr: 0x4000_0000, Size: 8, Kind: mem.Load})
	}
}
