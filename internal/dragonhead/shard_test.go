package dragonhead

import (
	"math/rand"
	"reflect"
	"testing"

	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
)

// shardTrafficEmu drives one emulator through a stream with every AF
// pathology: window toggles, straddlers, control messages as raw
// transactions, CB boundaries, retired-instruction updates.
func shardTraffic(e *Emulator, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	e.OnMsg(fsb.Message{Kind: fsb.MsgStart})
	cycles := uint64(0)
	for i := 0; i < 30000; i++ {
		size := uint8(1 << rng.Intn(4))
		if rng.Intn(64) == 0 {
			size = 255 // straddler
		}
		e.OnRef(trace.Ref{
			Addr: mem.Addr(0x4000_0000 + rng.Intn(1<<21)),
			Size: size,
			Kind: mem.Kind(rng.Intn(2)),
			Core: uint8(rng.Intn(8)),
		})
		switch {
		case i%500 == 250:
			cycles += uint64(200 + rng.Intn(800))
			e.OnMsg(fsb.Message{Kind: fsb.MsgCycles, Value: cycles})
		case i%997 == 0:
			e.OnMsg(fsb.Message{Kind: fsb.MsgInstRetired, Core: uint8(i % 4), Value: uint64(i * 100)})
		case i%1777 == 0:
			e.OnMsg(fsb.Message{Kind: fsb.MsgStop})
		case i%1777 == 5:
			e.OnMsg(fsb.Message{Kind: fsb.MsgStart})
		}
	}
	e.OnMsg(fsb.Message{Kind: fsb.MsgStop})
	e.Finalize()
}

// TestShardedEquivalence: every published number — Stats (including
// per-core arrays), CB Samples, MPKI, the AF drop count — must be
// bit-identical across shard counts, per the bank-interleave argument
// in shard.go.
func TestShardedEquivalence(t *testing.T) {
	cfg := Config{LLC: llc(1 << 19), Banks: 8, ClockHz: 1e6}
	serial := newEmu(t, cfg)
	shardTraffic(serial, 7)
	for _, shards := range []int{2, 4, 8} {
		scfg := cfg
		scfg.Shards = shards
		sharded := newEmu(t, scfg)
		if sharded.Shards() != shards {
			t.Fatalf("Shards() = %d, want %d", sharded.Shards(), shards)
		}
		shardTraffic(sharded, 7)
		if !reflect.DeepEqual(serial.Stats(), sharded.Stats()) {
			t.Errorf("shards=%d: Stats diverge", shards)
		}
		if !reflect.DeepEqual(serial.Samples(), sharded.Samples()) {
			t.Errorf("shards=%d: Samples diverge (%d vs %d)",
				shards, len(serial.Samples()), len(sharded.Samples()))
		}
		if serial.MPKI() != sharded.MPKI() {
			t.Errorf("shards=%d: MPKI %v vs %v", shards, serial.MPKI(), sharded.MPKI())
		}
		if serial.Ignored() != sharded.Ignored() {
			t.Errorf("shards=%d: Ignored %d vs %d", shards, serial.Ignored(), sharded.Ignored())
		}
		for b := 0; b < serial.Banks(); b++ {
			if serial.BankStats(b) != sharded.BankStats(b) {
				t.Errorf("shards=%d: bank %d stats diverge", shards, b)
			}
		}
	}
}

// TestShardedViaBatchedBus: sharding composes with batched bus delivery
// (the producer goroutine is then a bus worker) and bus.Close seals
// everything through Finalize.
func TestShardedViaBatchedBus(t *testing.T) {
	run := func(e *Emulator) {
		bus := fsb.NewBatchedBus(64)
		bus.Attach(e)
		bus.Msg(fsb.Message{Kind: fsb.MsgStart})
		for i := 0; i < 20000; i++ {
			bus.Ref(trace.Ref{Addr: mem.Addr(0x4000_0000 + i*192), Size: 8, Kind: mem.Load, Core: uint8(i % 4)})
			if i%1000 == 999 {
				bus.Msg(fsb.Message{Kind: fsb.MsgCycles, Value: uint64(i)})
			}
		}
		bus.Msg(fsb.Message{Kind: fsb.MsgInstRetired, Core: 0, Value: 123_000})
		bus.Msg(fsb.Message{Kind: fsb.MsgStop})
		if err := bus.Close(); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{LLC: llc(1 << 18), ClockHz: 1e6}
	serial := newEmu(t, cfg)
	run(serial)
	scfg := cfg
	scfg.Shards = 4
	sharded := newEmu(t, scfg)
	run(sharded)
	if serial.Stats() != sharded.Stats() {
		t.Error("stats diverge through batched bus")
	}
	if !reflect.DeepEqual(serial.Samples(), sharded.Samples()) {
		t.Error("samples diverge through batched bus")
	}
}

// TestShardConfigNormalization pins the option semantics: non-power-of-
// two rejected, counts above Banks clamped, private organization forces
// serial.
func TestShardConfigNormalization(t *testing.T) {
	if _, err := New(Config{LLC: llc(1 << 20), Shards: 3}); err == nil {
		t.Error("non-power-of-two shard count accepted")
	}
	e := newEmu(t, Config{LLC: llc(1 << 20), Banks: 4, Shards: 16})
	if e.Shards() != 4 {
		t.Errorf("shards not clamped to banks: %d", e.Shards())
	}
	e = newEmu(t, Config{LLC: llc(1 << 20), PrivatePerCore: 4, Shards: 8})
	if e.Shards() != 1 {
		t.Errorf("private organization did not force serial: %d shards", e.Shards())
	}
}

// TestShardedReadsPanicUntilFinalize: once events are in flight to the
// shard workers, every counter read must fail loudly until Finalize.
func TestShardedReadsPanicUntilFinalize(t *testing.T) {
	e := newEmu(t, Config{LLC: llc(1 << 20), Shards: 4})
	e.OnMsg(fsb.Message{Kind: fsb.MsgStart})
	e.OnRef(trace.Ref{Addr: 0x4000_0000, Size: 8, Kind: mem.Load})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Stats did not panic while shard workers own the banks")
			}
		}()
		e.Stats()
	}()
	e.Finalize()
	if e.Stats().Accesses != 1 {
		t.Error("access lost through the sharded path")
	}
}

// TestShardedResetAndRerun: Finalize seals a run, Reset clears it, and
// the sharder lazily respawns for the next run.
func TestShardedResetAndRerun(t *testing.T) {
	e := newEmu(t, Config{LLC: llc(1 << 19), Shards: 2, ClockHz: 1e6})
	shardTraffic(e, 1)
	want := e.Stats()
	wantSamples := e.Samples()
	e.Reset()
	if e.Stats().Accesses != 0 || len(e.Samples()) != 0 {
		t.Fatal("Reset left sharded state behind")
	}
	shardTraffic(e, 1)
	if e.Stats() != want {
		t.Error("rerun after Reset diverged from first run")
	}
	if !reflect.DeepEqual(e.Samples(), wantSamples) {
		t.Error("rerun samples diverged from first run")
	}
}
