// Intra-run bank sharding: one emulated run spread across worker
// goroutines without changing a single published number.
//
// The physical board already partitions the LLC by address interleave —
// four CC FPGAs each own every fourth line and never communicate during
// emulation. The sharded execution path exploits exactly that hardware
// property in software: the AF stage (window gating, message decode,
// line regulation) stays on the producer goroutine, and each regulated
// line request is routed over an fsb.Sharder to the worker owning its
// bank. Because bank selection uses the low line-number bits and
// nshards divides the bank count, shard = blk mod nshards is a coarser
// cut of the same interleave: every bank's request subsequence arrives
// at its owning worker in exact producer order, so each bank's cache
// state — and therefore every Stats field, per-bank and merged — is
// bit-identical to serial execution.
//
// CB sampling is the one piece of state that reads across banks
// mid-run. Each shard carries a replica of the sampling state machine,
// driven by the broadcast cycles-completed messages (the only message
// kind shards see): when a replica crosses a 500 µs boundary it
// snapshots its own banks' cumulative counters. The producer keeps the
// sample skeletons (boundary cycles + instructions retired, both
// producer-owned state), and Finalize sums the per-shard partials into
// them. Every replica sees the same message values in the same order,
// so all shards cross identical boundaries and the merge is a straight
// index-wise sum — deterministic, and equal to what the serial CB
// would have read at the same point in the stream.
package dragonhead

import (
	"fmt"

	"cmpmem/internal/cache"
	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
)

// shardBatch is the sharder's publish granularity. Smaller than
// fsb.DefaultBatch: the stream splits nshards ways, and the CB merge
// wants sample boundaries to flush reasonably promptly.
const shardBatch = 1024

// shardSample is one shard's cumulative counter snapshot at a CB
// boundary, merged into the producer's sample skeleton at Finalize.
type shardSample struct {
	accesses uint64
	misses   uint64
}

// emuShard consumes one address partition of the line-request stream.
// It owns banks b with b mod nshards == id; no other goroutine touches
// those caches between the first routed event and Sharder.Close.
type emuShard struct {
	e     *Emulator
	owned []*cache.Cache

	// CB sampling replica, driven only by broadcast MsgCycles.
	cycles       uint64
	nextSampleAt uint64
	partials     []shardSample
}

// OnRef implements fsb.Snooper for shard delivery. The event's Addr
// carries the raw block number (the AF already regulated to line
// granularity), so the bank select here is the same computation
// lookupLine does serially.
func (s *emuShard) OnRef(r trace.Ref) {
	blk := uint64(r.Addr)
	bank := s.e.banks[blk&s.e.bankMask]
	bank.Touch(mem.Addr(blk>>s.e.bankShift)<<s.e.lineShift, r.Kind, r.Core)
}

// OnMsg implements fsb.Snooper: the sampling replica. Only MsgCycles is
// broadcast to shards; everything else is AF/CB producer state.
func (s *emuShard) OnMsg(m fsb.Message) {
	if m.Kind != fsb.MsgCycles {
		return
	}
	if m.Value > s.cycles {
		s.cycles = m.Value
	}
	for s.cycles >= s.nextSampleAt {
		var acc, miss uint64
		for _, b := range s.owned {
			st := b.Stats()
			acc += st.Accesses
			miss += st.Misses
		}
		s.partials = append(s.partials, shardSample{accesses: acc, misses: miss})
		s.nextSampleAt += s.e.cyclesPerTick
	}
}

// ensureSharder lazily spins up the shard workers on the first event of
// a run, so a finalized (and possibly Reset) emulator can run again.
func (e *Emulator) ensureSharder() {
	if e.sharder != nil {
		return
	}
	n := e.nshards
	consumers := make([]fsb.Snooper, n)
	e.shardCons = make([]*emuShard, n)
	for s := 0; s < n; s++ {
		sh := &emuShard{e: e, nextSampleAt: e.cyclesPerTick}
		for b := s; b < len(e.banks); b += n {
			sh.owned = append(sh.owned, e.banks[b])
		}
		e.shardCons[s] = sh
		consumers[s] = sh
	}
	e.sharder = fsb.NewSharder(consumers, shardBatch)
	if e.cfg.Telemetry != nil {
		e.sharder.Instrument(e.cfg.Telemetry, "core_shard")
	}
	e.sharder.TraceSpan(e.cfg.Trace)
}

// closeSharder drains the shard workers and merges their CB partials
// into the producer's sample skeletons. A worker panic (a bug in the
// cache model) propagates as a panic here: sharded emulation must fail
// loudly, never publish half-merged counters.
func (e *Emulator) closeSharder() {
	if e.sharder == nil {
		return
	}
	err := e.sharder.Close()
	e.sharder = nil
	if err != nil {
		panic(fmt.Sprintf("dragonhead: sharded delivery failed: %v", err))
	}
	for si, sh := range e.shardCons {
		if len(sh.partials) != len(e.samples) {
			panic(fmt.Sprintf(
				"dragonhead: shard %d crossed %d CB boundaries, producer %d (sampling replicas diverged)",
				si, len(sh.partials), len(e.samples)))
		}
		for i, p := range sh.partials {
			e.samples[i].Accesses += p.accesses
			e.samples[i].Misses += p.misses
		}
	}
	e.shardCons = nil
}
