// Package softsdv models the execution-driven half of the paper's
// co-simulation platform: Intel's SoftSDV full-system simulator running
// in DEX (direct-execution) mode.
//
// The real SoftSDV uses VMX to run guest code natively, time-slicing N
// virtual cores onto one physical processor; a driver regains control at
// each slice boundary, saves core state, and schedules the next virtual
// core. The cache emulator snooping the bus sees the interleaved,
// core-ID-tagged access stream.
//
// The model reproduces exactly that structure. Each virtual core's
// program runs as a goroutine ("native execution"); the Scheduler grants
// instruction quanta round-robin. Only one guest goroutine ever runs at
// a time — just like DEX on a uniprocessor host — so guest programs may
// share data structures without host-level synchronization; they
// coordinate through the scheduler's Barrier primitive, which parks a
// virtual core until its peers arrive.
//
// At every slice boundary the scheduler emits the co-simulation message
// protocol on the bus: core-ID before the slice's transactions,
// instructions-retired and cycles-completed after, and stop/start
// around injected "host noise" (the SoftSDV process and host OS
// activity the paper's address filter must exclude).
package softsdv

import (
	"errors"
	"fmt"
	"math/rand"

	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/telemetry"
	"cmpmem/internal/trace"
)

// DefaultQuantum is the default DEX time slice in instructions.
const DefaultQuantum = 50_000

// Config describes the virtual platform.
type Config struct {
	// Cores is the number of virtual cores (1..32 in the paper's
	// platform, up to 64 HW threads supported).
	Cores int
	// Quantum is the DEX time slice in instructions.
	Quantum uint64
	// HostNoiseRefs, if non-zero, injects that many host/simulator
	// memory references between slices, outside the emulation window.
	HostNoiseRefs int
	// Seed drives the host-noise generator.
	Seed int64
	// Telemetry, when non-nil, registers the engine's counters
	// (instructions retired, slice switches) into the registry; deltas
	// push once per DEX slice, never per instruction.
	Telemetry *telemetry.Registry
}

// MaxCores is the largest virtual platform. The paper's DEX driver
// supported up to 64 hardware threads; the software engine extends to
// 128 so the paper's 128-core projections (Section 4.3) can be run
// rather than extrapolated.
const MaxCores = 128

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Cores < 1 || c.Cores > MaxCores {
		return fmt.Errorf("softsdv: cores must be in [1,%d], got %d", MaxCores, c.Cores)
	}
	return nil
}

// Program is a guest workload: Run is the body of one virtual core's
// thread. core ranges over [0, Cores).
type Program interface {
	Run(t *Thread, core int)
}

// ProgramFunc adapts a function to the Program interface.
type ProgramFunc func(t *Thread, core int)

// Run implements Program.
func (f ProgramFunc) Run(t *Thread, core int) { f(t, core) }

// threadState tracks where a virtual core is in its lifecycle.
type threadState uint8

const (
	stateReady threadState = iota
	stateBlocked
	stateDone
)

// Thread is the guest-visible execution context of one virtual core.
// It implements mem.Recorder, so workload kernels pass it directly to
// the typed buffer accessors in internal/mem.
type Thread struct {
	core    uint8
	sched   *Scheduler
	buf     *trace.Buffer
	inst    uint64 // cumulative instructions retired
	loads   uint64
	stores  uint64
	slice   uint64 // instructions executed in the current quantum
	state   threadState
	killed  bool
	noYield int
	resume  chan struct{}
	yielded chan struct{}
	err     any // recovered panic from the guest body, if any
}

// errKilled is the panic value used to unwind abandoned guest
// goroutines during error teardown.
var errKilled = errors.New("softsdv: thread killed during teardown")

// Core returns the virtual core number.
func (t *Thread) Core() int { return int(t.core) }

// Instructions returns cumulative instructions retired.
func (t *Thread) Instructions() uint64 { return t.inst }

// Loads and Stores return cumulative memory-instruction counts.
func (t *Thread) Loads() uint64 { return t.loads }

// Stores returns cumulative store instructions.
func (t *Thread) Stores() uint64 { return t.stores }

// Access implements mem.Recorder: one memory instruction.
func (t *Thread) Access(addr mem.Addr, size uint8, kind mem.Kind) {
	t.buf.Append(trace.Ref{Addr: addr, Core: t.core, Size: size, Kind: kind})
	t.inst++
	t.slice++
	if kind == mem.Load {
		t.loads++
	} else {
		t.stores++
	}
	if t.slice >= t.sched.cfg.Quantum && t.noYield == 0 {
		t.yield()
	}
}

// Exec implements mem.Recorder: n non-memory instructions.
func (t *Thread) Exec(n uint64) {
	t.inst += n
	t.slice += n
	if t.slice >= t.sched.cfg.Quantum && t.noYield == 0 {
		t.yield()
	}
}

// Critical executes f atomically with respect to DEX scheduling: the
// time slice cannot end inside f. This models a short lock-held region
// (e.g. inserting into a shared tree); guest code that performs
// read-modify-write on shared data across multiple traced accesses must
// wrap it in Critical, exactly as it would take a lock on real
// hardware. The deferred quantum check fires on exit, so a thread
// cannot starve the platform by chaining critical sections.
func (t *Thread) Critical(f func()) {
	t.noYield++
	defer func() {
		t.noYield--
		if t.slice >= t.sched.cfg.Quantum && t.noYield == 0 {
			t.yield()
		}
	}()
	f()
}

// yield suspends the goroutine until the scheduler grants another slice.
func (t *Thread) yield() {
	t.yielded <- struct{}{}
	<-t.resume
	if t.killed {
		panic(errKilled)
	}
}

// park blocks the thread (barrier wait): it gives up the slice and will
// not be scheduled again until unblocked.
func (t *Thread) park() {
	t.state = stateBlocked
	t.yield()
}

// Barrier is a scheduler-integrated rendezvous for guest threads.
// Guest code must use it instead of host synchronization: the DEX
// scheduler runs one virtual core at a time, so blocking on a host
// primitive would deadlock the platform.
type Barrier struct {
	sched   *Scheduler
	parties int
	waiting []*Thread
}

// NewBarrier returns a barrier for the given number of threads.
func (s *Scheduler) NewBarrier(parties int) *Barrier {
	return &Barrier{sched: s, parties: parties}
}

// Wait parks t until all parties have arrived. The last arrival releases
// everyone and continues without parking.
func (b *Barrier) Wait(t *Thread) {
	if len(b.waiting)+1 == b.parties {
		for _, w := range b.waiting {
			w.state = stateReady
		}
		b.waiting = b.waiting[:0]
		// The releasing thread keeps its slice but still accounts a
		// synchronization instruction.
		t.Exec(1)
		return
	}
	b.waiting = append(b.waiting, t)
	t.Exec(1)
	t.park()
}

// Scheduler is the DEX driver: it multiplexes virtual cores onto the
// (single) simulation thread and drives the co-simulation protocol.
type Scheduler struct {
	cfg     Config
	bus     *fsb.Bus
	threads []*Thread
	cycles  uint64
	slices  uint64
	noise   *rand.Rand

	// Telemetry handles (nil = disabled, no-op Adds).
	telInst   *telemetry.Counter // softsdv_instructions_total
	telSlices *telemetry.Counter // softsdv_slice_switches_total
}

// NewScheduler builds a scheduler for the given platform.
func NewScheduler(cfg Config, bus *fsb.Bus) (*Scheduler, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Quantum == 0 {
		cfg.Quantum = DefaultQuantum
	}
	return &Scheduler{
		cfg:       cfg,
		bus:       bus,
		noise:     rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
		telInst:   cfg.Telemetry.Counter("softsdv_instructions_total"),
		telSlices: cfg.Telemetry.Counter("softsdv_slice_switches_total"),
	}, nil
}

// Config returns the platform configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// Cycles returns total simulated cycles completed. The functional DEX
// model retires one instruction per cycle; detailed timing is the
// hierarchy model's job (internal/hier).
func (s *Scheduler) Cycles() uint64 { return s.cycles }

// Slices returns how many DEX time slices have been dispatched.
func (s *Scheduler) Slices() uint64 { return s.slices }

// Instructions returns total instructions retired across cores.
func (s *Scheduler) Instructions() uint64 {
	var n uint64
	for _, t := range s.threads {
		n += t.inst
	}
	return n
}

// MemoryInstructions returns total load and store instruction counts
// across cores (the Table 2 instruction-mix numerators).
func (s *Scheduler) MemoryInstructions() (loads, stores uint64) {
	for _, t := range s.threads {
		loads += t.loads
		stores += t.stores
	}
	return loads, stores
}

// ErrDeadlock reports that every live virtual core is parked.
var ErrDeadlock = errors.New("softsdv: all runnable cores are blocked (guest deadlock)")

// Run executes the program to completion on the virtual platform,
// emitting the full co-simulation protocol on the bus. It returns an
// error on guest deadlock or if a guest body panics.
func (s *Scheduler) Run(p Program) error {
	s.threads = make([]*Thread, s.cfg.Cores)
	for i := range s.threads {
		t := &Thread{
			core:    uint8(i),
			sched:   s,
			buf:     trace.NewBuffer(int(s.cfg.Quantum)),
			resume:  make(chan struct{}),
			yielded: make(chan struct{}),
		}
		s.threads[i] = t
		go func(core int) {
			defer func() {
				if r := recover(); r != nil {
					t.err = r
				}
				t.state = stateDone
				t.yielded <- struct{}{}
			}()
			<-t.resume // wait for the first slice grant
			p.Run(t, core)
		}(i)
	}

	live := len(s.threads)
	for live > 0 {
		progressed := false
		for _, t := range s.threads {
			if t.state != stateReady {
				continue
			}
			progressed = true
			s.dispatch(t)
			if t.state == stateDone {
				live--
				if t.err != nil {
					s.drain()
					return fmt.Errorf("softsdv: core %d panicked: %v", t.core, t.err)
				}
			}
		}
		if !progressed {
			s.drain()
			return ErrDeadlock
		}
	}
	return nil
}

// dispatch grants one slice to t and flushes its traffic to the bus.
func (s *Scheduler) dispatch(t *Thread) {
	s.slices++
	t.slice = 0
	t.buf.Reset()
	t.resume <- struct{}{}
	<-t.yielded

	// Slice boundary: emit the protocol. The emulation window opens for
	// the guest's transactions and closes for host noise.
	s.bus.Msg(fsb.Message{Kind: fsb.MsgStart})
	s.bus.Msg(fsb.Message{Kind: fsb.MsgCoreID, Core: t.core})
	for _, r := range t.buf.Refs() {
		s.bus.Ref(r)
	}
	s.cycles += t.slice
	s.telInst.Add(t.slice)
	s.telSlices.Inc()
	s.bus.Msg(fsb.Message{Kind: fsb.MsgInstRetired, Core: t.core, Value: t.inst})
	s.bus.Msg(fsb.Message{Kind: fsb.MsgCycles, Value: s.cycles})
	s.bus.Msg(fsb.Message{Kind: fsb.MsgStop})

	for i := 0; i < s.cfg.HostNoiseRefs; i++ {
		// Host/simulator activity: addresses in a window no guest arena
		// occupies (below spaceBase), random-walk pattern.
		addr := mem.Addr(0x10_0000 + s.noise.Intn(1<<24))
		kind := mem.Load
		if s.noise.Intn(4) == 0 {
			kind = mem.Store
		}
		s.bus.Ref(trace.Ref{Addr: addr, Core: t.core, Size: 8, Kind: kind})
	}
}

// drain unblocks and discards any still-parked goroutines so they do not
// leak after an error return.
func (s *Scheduler) drain() {
	for _, t := range s.threads {
		if t.state == stateDone {
			continue
		}
		// The goroutine is parked in yield(); wake it with the kill
		// flag set so it unwinds via panic and its deferred recover
		// signals completion. This keeps error paths goroutine-clean.
		t.killed = true
		t.resume <- struct{}{}
		<-t.yielded
	}
}
