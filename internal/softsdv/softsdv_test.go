package softsdv

import (
	"errors"
	"testing"

	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
)

// collector records bus traffic for assertions.
type collector struct {
	refs []trace.Ref
	msgs []fsb.Message
}

func (c *collector) OnRef(r trace.Ref) { c.refs = append(c.refs, r) }
func (c *collector) OnMsg(m fsb.Message) {
	c.msgs = append(c.msgs, m)
}

func newSched(t *testing.T, cfg Config) (*Scheduler, *collector) {
	t.Helper()
	bus := fsb.NewBus()
	col := &collector{}
	bus.Attach(col)
	s, err := NewScheduler(cfg, bus)
	if err != nil {
		t.Fatal(err)
	}
	return s, col
}

func TestConfigValidation(t *testing.T) {
	bus := fsb.NewBus()
	if _, err := NewScheduler(Config{Cores: 0}, bus); err == nil {
		t.Error("0 cores accepted")
	}
	if _, err := NewScheduler(Config{Cores: 129}, bus); err == nil {
		t.Error("129 cores accepted")
	}
}

func TestSingleThreadRuns(t *testing.T) {
	s, col := newSched(t, Config{Cores: 1, Quantum: 10})
	err := s.Run(ProgramFunc(func(th *Thread, core int) {
		for i := 0; i < 25; i++ {
			th.Access(mem.Addr(0x1000+i*8), 8, mem.Load)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	if s.Instructions() != 25 {
		t.Errorf("instructions = %d, want 25", s.Instructions())
	}
	if len(col.refs) != 25 {
		t.Errorf("bus saw %d refs, want 25", len(col.refs))
	}
	// Quantum 10 with 25 instructions = 3 slices.
	if s.Slices() != 3 {
		t.Errorf("slices = %d, want 3", s.Slices())
	}
}

func TestInstructionCountsPerThread(t *testing.T) {
	s, _ := newSched(t, Config{Cores: 2, Quantum: 100})
	err := s.Run(ProgramFunc(func(th *Thread, core int) {
		th.Access(0x100, 8, mem.Load)
		th.Access(0x108, 8, mem.Store)
		th.Exec(10)
	}))
	if err != nil {
		t.Fatal(err)
	}
	loads, stores := s.MemoryInstructions()
	if loads != 2 || stores != 2 {
		t.Errorf("loads=%d stores=%d, want 2, 2", loads, stores)
	}
	if s.Instructions() != 24 {
		t.Errorf("instructions = %d, want 24", s.Instructions())
	}
}

// TestProtocolOrder: each slice must emit Start, CoreID, refs,
// InstRetired, Cycles, Stop in that order.
func TestProtocolOrder(t *testing.T) {
	bus := fsb.NewBus()
	col := &collector{}
	bus.Attach(col)
	s, _ := NewScheduler(Config{Cores: 1, Quantum: 1000}, bus)
	if err := s.Run(ProgramFunc(func(th *Thread, core int) {
		th.Access(0x100, 8, mem.Load)
	})); err != nil {
		t.Fatal(err)
	}
	kinds := make([]fsb.MsgKind, 0, len(col.msgs))
	for _, m := range col.msgs {
		kinds = append(kinds, m.Kind)
	}
	want := []fsb.MsgKind{fsb.MsgStart, fsb.MsgCoreID, fsb.MsgInstRetired, fsb.MsgCycles, fsb.MsgStop}
	if len(kinds) != len(want) {
		t.Fatalf("got %d messages %v, want %v", len(kinds), kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("message %d = %v, want %v (all: %v)", i, kinds[i], want[i], kinds)
		}
	}
}

// TestRoundRobinFairness: cores alternate slices; every core's refs are
// tagged with its own id.
func TestRoundRobinFairness(t *testing.T) {
	s, col := newSched(t, Config{Cores: 4, Quantum: 5})
	err := s.Run(ProgramFunc(func(th *Thread, core int) {
		for i := 0; i < 20; i++ {
			th.Access(mem.Addr(0x1000*uint64(core+1)+uint64(i)*8), 8, mem.Load)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	perCore := map[uint8]int{}
	for _, r := range col.refs {
		perCore[r.Core]++
		// Address range identifies the issuing guest body.
		wantBase := mem.Addr(0x1000 * uint64(r.Core+1))
		if r.Addr < wantBase || r.Addr >= wantBase+0x1000 {
			t.Fatalf("core %d issued address %#x outside its range", r.Core, uint64(r.Addr))
		}
	}
	for c := uint8(0); c < 4; c++ {
		if perCore[c] != 20 {
			t.Errorf("core %d issued %d refs, want 20", c, perCore[c])
		}
	}
}

// TestConservation: instructions reported via InstRetired messages match
// the scheduler's totals exactly at the end of the run.
func TestConservation(t *testing.T) {
	s, col := newSched(t, Config{Cores: 3, Quantum: 7})
	err := s.Run(ProgramFunc(func(th *Thread, core int) {
		for i := 0; i < 50+core*13; i++ {
			th.Exec(1)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	last := map[uint8]uint64{}
	for _, m := range col.msgs {
		if m.Kind == fsb.MsgInstRetired {
			last[m.Core] = m.Value
		}
	}
	var total uint64
	for _, v := range last {
		total += v
	}
	if total != s.Instructions() {
		t.Errorf("protocol total %d != scheduler total %d", total, s.Instructions())
	}
}

func TestBarrier(t *testing.T) {
	s, _ := newSched(t, Config{Cores: 4, Quantum: 1000})
	var log []int
	b := s.NewBarrier(4)
	err := s.Run(ProgramFunc(func(th *Thread, core int) {
		log = append(log, core) // phase 1 arrivals
		b.Wait(th)
		log = append(log, 10+core) // phase 2: strictly after all arrivals
		b.Wait(th)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(log) != 8 {
		t.Fatalf("log = %v", log)
	}
	for _, v := range log[:4] {
		if v >= 10 {
			t.Fatalf("phase 2 entry before all phase 1 arrivals: %v", log)
		}
	}
	for _, v := range log[4:] {
		if v < 10 {
			t.Fatalf("phase interleaving violated barrier: %v", log)
		}
	}
}

func TestBarrierManyRounds(t *testing.T) {
	s, _ := newSched(t, Config{Cores: 8, Quantum: 50})
	b := s.NewBarrier(8)
	counters := make([]int, 8)
	err := s.Run(ProgramFunc(func(th *Thread, core int) {
		for round := 0; round < 100; round++ {
			counters[core]++
			// All counters must be within one round of each other at
			// every barrier.
			b.Wait(th)
			for _, c := range counters {
				if c != counters[core] {
					panic("barrier round skew")
				}
			}
			b.Wait(th)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	s, _ := newSched(t, Config{Cores: 2, Quantum: 100})
	b := s.NewBarrier(3) // one party will never arrive
	err := s.Run(ProgramFunc(func(th *Thread, core int) {
		b.Wait(th)
	}))
	if !errors.Is(err, ErrDeadlock) {
		t.Errorf("got %v, want ErrDeadlock", err)
	}
}

func TestGuestPanicPropagates(t *testing.T) {
	s, _ := newSched(t, Config{Cores: 2, Quantum: 100})
	err := s.Run(ProgramFunc(func(th *Thread, core int) {
		if core == 1 {
			panic("guest bug")
		}
		th.Exec(1)
	}))
	if err == nil {
		t.Fatal("expected error from guest panic")
	}
}

// windowTracker counts refs inside vs outside the emulation window, in
// bus delivery order (the same logic as Dragonhead's AF).
type windowTracker struct {
	window        bool
	inWin, outWin int
}

func (w *windowTracker) OnRef(r trace.Ref) {
	if w.window {
		w.inWin++
	} else {
		w.outWin++
	}
}

func (w *windowTracker) OnMsg(m fsb.Message) {
	switch m.Kind {
	case fsb.MsgStart:
		w.window = true
	case fsb.MsgStop:
		w.window = false
	}
}

func TestHostNoiseOutsideWindow(t *testing.T) {
	bus := fsb.NewBus()
	wt := &windowTracker{}
	bus.Attach(wt)
	s, _ := NewScheduler(Config{Cores: 1, Quantum: 100, HostNoiseRefs: 5, Seed: 3}, bus)
	if err := s.Run(ProgramFunc(func(th *Thread, core int) {
		th.Access(0x4000_0000, 8, mem.Load)
	})); err != nil {
		t.Fatal(err)
	}
	if wt.inWin != 1 {
		t.Errorf("in-window refs = %d, want 1 (the guest access)", wt.inWin)
	}
	if wt.outWin != 5 {
		t.Errorf("out-of-window refs = %d, want 5 (host noise)", wt.outWin)
	}
}

func TestThreadAccessors(t *testing.T) {
	s, _ := newSched(t, Config{Cores: 1, Quantum: 100})
	err := s.Run(ProgramFunc(func(th *Thread, core int) {
		if th.Core() != 0 || core != 0 {
			panic("core id mismatch")
		}
		th.Access(0x10, 4, mem.Load)
		th.Access(0x20, 4, mem.Store)
		if th.Loads() != 1 || th.Stores() != 1 || th.Instructions() != 2 {
			panic("thread counters wrong")
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
}

func TestDefaultQuantum(t *testing.T) {
	bus := fsb.NewBus()
	s, err := NewScheduler(Config{Cores: 1}, bus)
	if err != nil {
		t.Fatal(err)
	}
	if s.Config().Quantum != DefaultQuantum {
		t.Errorf("quantum = %d, want %d", s.Config().Quantum, DefaultQuantum)
	}
}

func TestCyclesAdvance(t *testing.T) {
	s, _ := newSched(t, Config{Cores: 2, Quantum: 10})
	if err := s.Run(ProgramFunc(func(th *Thread, core int) {
		th.Exec(100)
	})); err != nil {
		t.Fatal(err)
	}
	if s.Cycles() != 200 {
		t.Errorf("cycles = %d, want 200 (functional 1 IPC)", s.Cycles())
	}
}
