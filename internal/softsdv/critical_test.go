package softsdv

import (
	"testing"

	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
)

// rmwProgram increments a shared counter n times per core, optionally
// under Critical sections. With a tiny quantum, unprotected
// read-modify-write loses updates when a slice ends between the load
// and the store — exactly the anomaly Critical models away (a lock on
// real hardware).
func rmwProgram(counter mem.Int64s, n int, protected bool) ProgramFunc {
	return func(t *Thread, core int) {
		for i := 0; i < n; i++ {
			if protected {
				t.Critical(func() {
					v := counter.At(t, 0)
					t.Exec(3) // work inside the critical section
					counter.Set(t, 0, v+1)
				})
			} else {
				v := counter.At(t, 0)
				t.Exec(3)
				counter.Set(t, 0, v+1)
			}
		}
	}
}

func runRMW(t *testing.T, protected bool) int64 {
	t.Helper()
	sp := mem.NewSpace()
	counter := sp.NewArena("ctr", 64).Int64s(1)
	bus := fsb.NewBus()
	s, err := NewScheduler(Config{Cores: 4, Quantum: 7}, bus)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(rmwProgram(counter, 200, protected)); err != nil {
		t.Fatal(err)
	}
	return counter.Raw()[0]
}

func TestCriticalPreventsLostUpdates(t *testing.T) {
	if got := runRMW(t, true); got != 800 {
		t.Errorf("protected counter = %d, want 800", got)
	}
}

func TestUnprotectedRMWLosesUpdates(t *testing.T) {
	// This documents the hazard Critical exists for: with a 7-instruction
	// quantum and a 5-instruction RMW, slices regularly split the RMW.
	if got := runRMW(t, false); got >= 800 {
		t.Errorf("unprotected counter = %d; expected lost updates under tiny quanta", got)
	}
}

func TestCriticalDefersYieldToExit(t *testing.T) {
	bus := fsb.NewBus()
	s, _ := NewScheduler(Config{Cores: 2, Quantum: 4}, bus)
	var insideSlices []uint64
	err := s.Run(ProgramFunc(func(th *Thread, core int) {
		th.Critical(func() {
			start := s.Slices()
			for i := 0; i < 20; i++ {
				th.Exec(1) // far beyond the quantum
			}
			// No dispatch can have happened while inside.
			insideSlices = append(insideSlices, s.Slices()-start)
		})
	}))
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range insideSlices {
		if d != 0 {
			t.Errorf("core %d: %d slice switches inside a critical section", i, d)
		}
	}
}

func TestCriticalNests(t *testing.T) {
	bus := fsb.NewBus()
	s, _ := NewScheduler(Config{Cores: 1, Quantum: 2}, bus)
	err := s.Run(ProgramFunc(func(th *Thread, core int) {
		th.Critical(func() {
			th.Critical(func() {
				th.Exec(10)
			})
			th.Exec(10) // still inside the outer section
		})
		th.Exec(1)
	}))
	if err != nil {
		t.Fatal(err)
	}
}

func TestCriticalAccountsInstructions(t *testing.T) {
	bus := fsb.NewBus()
	s, _ := NewScheduler(Config{Cores: 1, Quantum: 1000}, bus)
	if err := s.Run(ProgramFunc(func(th *Thread, core int) {
		th.Critical(func() { th.Exec(42) })
	})); err != nil {
		t.Fatal(err)
	}
	if s.Instructions() != 42 {
		t.Errorf("instructions = %d, want 42", s.Instructions())
	}
}
