// The content-addressed result cache: spec hash → marshaled
// SweepResult. Results are pure — the spec names everything that
// determines them bit-for-bit — so a hit returns the stored bytes
// instantly with no re-validation. Same key discipline as the
// tracestore, one level up: the tracestore dedupes executions of the
// same capture, the result cache dedupes entire sweeps.

package server

import (
	"container/list"
	"sync"

	"cmpmem/internal/telemetry"
)

// DefaultResultCacheBytes is the default in-memory result budget.
// Results are small (a few KB to a few hundred KB of JSON per sweep),
// so 256 MiB holds on the order of 10^4-10^6 distinct experiments.
const DefaultResultCacheBytes = 256 << 20

// ResultCacheStats reports cache effectiveness for /v1/statusz.
type ResultCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     uint64 `json:"resident_bytes"`
}

// resultCache is a byte-budgeted LRU of marshaled results.
type resultCache struct {
	mu       sync.Mutex
	maxBytes uint64
	entries  map[string]*rcEntry
	lru      *list.List // front = MRU; values are *rcEntry
	bytes    uint64
	stats    ResultCacheStats

	telHits      *telemetry.Counter // cosimd_result_cache_hits_total
	telMisses    *telemetry.Counter // cosimd_result_cache_misses_total
	telEvictions *telemetry.Counter // cosimd_result_cache_evictions_total
	telBytes     *telemetry.Gauge   // cosimd_result_cache_bytes
}

type rcEntry struct {
	hash string
	body []byte
	elem *list.Element
}

// newResultCache builds a cache with the given budget (0 selects the
// default) registered into r (nil disables telemetry).
func newResultCache(maxBytes uint64, r *telemetry.Registry) *resultCache {
	if maxBytes == 0 {
		maxBytes = DefaultResultCacheBytes
	}
	return &resultCache{
		maxBytes:     maxBytes,
		entries:      make(map[string]*rcEntry),
		lru:          list.New(),
		telHits:      r.Counter("cosimd_result_cache_hits_total"),
		telMisses:    r.Counter("cosimd_result_cache_misses_total"),
		telEvictions: r.Counter("cosimd_result_cache_evictions_total"),
		telBytes:     r.Gauge("cosimd_result_cache_bytes"),
	}
}

// Get returns the stored result body for hash. The bytes are shared
// and must be treated as immutable by callers.
func (c *resultCache) Get(hash string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[hash]
	if !ok {
		c.stats.Misses++
		c.telMisses.Inc()
		return nil, false
	}
	c.lru.MoveToFront(e.elem)
	c.stats.Hits++
	c.telHits.Inc()
	return e.body, true
}

// Put stores body under hash, evicting LRU entries past the budget.
// A body alone exceeding the budget is not stored at all.
func (c *resultCache) Put(hash string, body []byte) {
	if uint64(len(body)) > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[hash]; ok {
		// Results are pure: a re-Put of the same hash carries identical
		// bytes, so just refresh recency.
		c.lru.MoveToFront(e.elem)
		return
	}
	e := &rcEntry{hash: hash, body: body}
	e.elem = c.lru.PushFront(e)
	c.entries[hash] = e
	c.bytes += uint64(len(body))
	for c.bytes > c.maxBytes && c.lru.Len() > 1 {
		victim := c.lru.Back().Value.(*rcEntry)
		c.lru.Remove(victim.elem)
		delete(c.entries, victim.hash)
		c.bytes -= uint64(len(victim.body))
		c.stats.Evictions++
		c.telEvictions.Inc()
	}
	c.telBytes.Set(int64(c.bytes))
}

// Stats returns a point-in-time snapshot.
func (c *resultCache) Stats() ResultCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = len(c.entries)
	st.Bytes = c.bytes
	return st
}
