package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cmpmem/internal/core"
	"cmpmem/internal/telemetry"
)

// tinySpecJSON builds a fast spec: SNP at 1/512 scale on 2 threads.
func tinySpecJSON(seed int64, sizes ...uint64) string {
	var cfgs []string
	for _, sz := range sizes {
		cfgs = append(cfgs, fmt.Sprintf(`{"size_bytes":%d,"line_size":64,"assoc":4}`, sz))
	}
	return fmt.Sprintf(`{
		"workload": "SNP", "seed": %d, "scale": %g,
		"platform": {"threads": 2},
		"grids": [[%s]]
	}`, seed, 1.0/512, strings.Join(cfgs, ","))
}

// testServer spins up a Server plus its httptest front end.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	s := New(cfg)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

// submit POSTs a spec and returns the decoded 201 status.
func submit(t *testing.T, ts *httptest.Server, tenant, spec string) JobStatus {
	t.Helper()
	st, code := submitCode(t, ts, tenant, spec)
	if code != http.StatusCreated {
		t.Fatalf("POST /v1/sweeps = %d, want 201", code)
	}
	return st
}

func submitCode(t *testing.T, ts *httptest.Server, tenant, spec string) (JobStatus, int) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/sweeps", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode 201 body: %v", err)
		}
	}
	return st, resp.StatusCode
}

// await polls a job to its terminal state.
func await(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s at deadline", id, st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServedResultBitMatchesCombinedSweep is acceptance criterion (a):
// the result bytes a job returns equal a locally marshaled SweepResult
// built from a direct CombinedSweep call on the same spec.
func TestServedResultBitMatchesCombinedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real sweep")
	}
	_, ts := testServer(t, Config{Workers: 1})
	specJSON := tinySpecJSON(3, 1<<18, 1<<20)
	st := await(t, ts, submit(t, ts, "bitmatch", specJSON).ID)
	if st.State != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}

	spec, err := DecodeSpec(strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	name, p, pc, grids, specOpts, err := spec.runArgs()
	if err != nil {
		t.Fatal(err)
	}
	results, sum, err := core.CombinedSweep(name, p, pc, grids, specOpts...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(&SweepResult{
		Workload: name,
		SpecHash: spec.Hash(),
		Engine:   spec.Engine,
		Summary:  sum,
		Grids:    results,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal([]byte(st.Result), want) {
		t.Errorf("served result does not bit-match CombinedSweep:\nserved: %.200s\ndirect: %.200s", st.Result, want)
	}
}

// TestConcurrentIdenticalSpecsExecuteOnce is acceptance criterion (b):
// two tenants submitting the same spec at the same time cost one trace
// execution — the second rides the tracestore's single-flight.
func TestConcurrentIdenticalSpecsExecuteOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real sweep")
	}
	var barrier sync.WaitGroup
	barrier.Add(2)
	s, ts := testServer(t, Config{Workers: 2})
	// Hold both jobs at the starting line so neither can finish (and
	// populate the result cache) before the other begins executing.
	s.preRun = func(*job) {
		barrier.Done()
		barrier.Wait()
	}
	specJSON := tinySpecJSON(5, 1<<18)
	id1 := submit(t, ts, "alice", specJSON).ID
	id2 := submit(t, ts, "bob", specJSON).ID
	st1 := await(t, ts, id1)
	st2 := await(t, ts, id2)
	if st1.State != StateDone || st2.State != StateDone {
		t.Fatalf("jobs failed: %q / %q", st1.Error, st2.Error)
	}
	if !bytes.Equal(st1.Result, st2.Result) {
		t.Error("identical specs returned different result bytes")
	}
	stats := s.StoreStats()
	if stats.Executions() != 1 {
		t.Errorf("trace executions = %d, want 1 (single-flight)", stats.Executions())
	}
	if stats.Waits+stats.Hits < 1 {
		t.Errorf("no evidence of sharing: waits=%d hits=%d", stats.Waits, stats.Hits)
	}
}

// TestAdmissionControl429 is acceptance criterion (c): a submit past
// the queue cap is rejected with 429 and a Retry-After hint.
func TestAdmissionControl429(t *testing.T) {
	gate := make(chan struct{})
	s, ts := testServer(t, Config{Workers: 1, QueueCap: 1})
	s.preRun = func(*job) { <-gate }
	defer close(gate)

	spec := tinySpecJSON(9, 1<<18)
	first := submit(t, ts, "capped", spec)
	// Wait for the single worker to dequeue the first job (and park on
	// the gate), so the queue slot is provably free again.
	for i := 0; s.queue.Depth() != 0; i++ {
		if i > 500 {
			t.Fatal("worker never dequeued the first job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	submit(t, ts, "capped", tinySpecJSON(10, 1<<18)) // fills the only queue slot

	req, _ := http.NewRequest("POST", ts.URL+"/v1/sweeps", strings.NewReader(tinySpecJSON(11, 1<<18)))
	req.Header.Set("X-Tenant", "capped")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// The rejected job must not be queryable.
	if first.ID == "" {
		t.Fatal("first job had no id")
	}
}

// TestSSEStreamTerminatesWithDone is acceptance criterion (d): the
// events stream carries the job lifecycle and ends after a final done
// event (the server closes the stream; reads hit EOF).
func TestSSEStreamTerminatesWithDone(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real sweep")
	}
	_, ts := testServer(t, Config{Workers: 1})
	id := submit(t, ts, "sse", tinySpecJSON(13, 1<<18, 1<<19)).ID

	client := &http.Client{Timeout: 120 * time.Second}
	resp, err := client.Get(ts.URL + "/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var events []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() { // terminates only because the server closes the stream
		if line := sc.Text(); strings.HasPrefix(line, "event: ") {
			events = append(events, strings.TrimPrefix(line, "event: "))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("no events received")
	}
	if got := events[len(events)-1]; got != StateDone {
		t.Fatalf("final event = %q, want done (sequence: %v)", got, events)
	}
	if events[0] != StateQueued {
		t.Errorf("first event = %q, want queued", events[0])
	}
	seen := map[string]bool{}
	for _, e := range events {
		seen[e] = true
	}
	if !seen["config"] {
		t.Errorf("no per-config completion events in %v", events)
	}
	// A late subscriber gets the full history replayed and the same
	// terminal event, then EOF.
	resp2, err := client.Get(ts.URL + "/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var replay []string
	sc2 := bufio.NewScanner(resp2.Body)
	for sc2.Scan() {
		if line := sc2.Text(); strings.HasPrefix(line, "event: ") {
			replay = append(replay, strings.TrimPrefix(line, "event: "))
		}
	}
	if len(replay) != len(events) {
		t.Errorf("history replay has %d events, live stream had %d", len(replay), len(events))
	}
}

// TestResultCacheServesRepeats: a repeated spec completes instantly
// from the result cache, marked cached, with identical bytes.
func TestResultCacheServesRepeats(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real sweep")
	}
	_, ts := testServer(t, Config{Workers: 1})
	spec := tinySpecJSON(17, 1<<18)
	st1 := await(t, ts, submit(t, ts, "first", spec).ID)
	if st1.State != StateDone {
		t.Fatalf("first job failed: %s", st1.Error)
	}
	st2 := submit(t, ts, "second", spec)
	if st2.State != StateDone || !st2.Cached {
		t.Fatalf("repeat = state %s cached %v, want instant cached done", st2.State, st2.Cached)
	}
	if !bytes.Equal(st1.Result, st2.Result) {
		t.Error("cached result differs from original")
	}
}

// TestBadRequests: malformed specs and oversized tenants are 400s, an
// unknown job is a 404, and /v1 endpoints answer.
func TestBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	if _, code := submitCode(t, ts, "t", `{"workload":"NOPE"}`); code != http.StatusBadRequest {
		t.Errorf("bad spec = %d, want 400", code)
	}
	if _, code := submitCode(t, ts, strings.Repeat("x", 100), tinySpecJSON(1, 1<<18)); code != http.StatusBadRequest {
		t.Errorf("oversize tenant = %d, want 400", code)
	}
	resp, err := http.Get(ts.URL + "/v1/sweeps/no-such-job")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job = %d, want 404", resp.StatusCode)
	}
	for _, ep := range []string{"/v1/healthz", "/v1/version", "/v1/statusz", "/metrics"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s = %d", ep, resp.StatusCode)
		}
	}
}

// TestShutdownFailsQueuedJobs: jobs still queued at shutdown terminate
// failed instead of hanging their watchers.
func TestShutdownFailsQueuedJobs(t *testing.T) {
	gate := make(chan struct{})
	reg := telemetry.NewRegistry()
	s := New(Config{Workers: 1, QueueCap: 4, Registry: reg})
	s.preRun = func(*job) { <-gate }
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	running := submit(t, ts, "t", tinySpecJSON(21, 1<<18))
	for i := 0; s.queue.Depth() != 0; i++ {
		if i > 500 {
			t.Fatal("worker never dequeued")
		}
		time.Sleep(5 * time.Millisecond)
	}
	queued := submit(t, ts, "t", tinySpecJSON(22, 1<<18))

	// Shutdown drains the queue (failing the queued job) before it waits
	// on workers; only then release the gate so the worker can finish —
	// otherwise the worker could legitimately pop the queued job first.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	shutErr := make(chan error, 1)
	go func() { shutErr <- s.Shutdown(ctx) }()
	for i := 0; !s.lookup(queued.ID).isTerminal(); i++ {
		if i > 500 {
			t.Fatal("shutdown never failed the queued job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(gate)
	if err := <-shutErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := s.lookup(queued.ID).status(); st.State != StateFailed {
		t.Errorf("queued job state after shutdown = %s, want failed", st.State)
	}
	// The running job was released by the gate before shutdown waited,
	// so it must have finished one way or the other.
	if st := s.lookup(running.ID).status(); st.State != StateDone && st.State != StateFailed {
		t.Errorf("running job state after shutdown = %s, want terminal", st.State)
	}
}
