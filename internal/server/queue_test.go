package server

import (
	"errors"
	"testing"

	"cmpmem/internal/telemetry"
)

func testJob(tenant string) *job {
	return &job{id: "j-" + tenant, tenant: tenant, done: make(chan struct{})}
}

func TestQueueAdmissionCap(t *testing.T) {
	q := newFairQueue(2, nil, telemetry.NewRegistry())
	if err := q.Push(testJob("a")); err != nil {
		t.Fatalf("push 1: %v", err)
	}
	if err := q.Push(testJob("b")); err != nil {
		t.Fatalf("push 2: %v", err)
	}
	if err := q.Push(testJob("c")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("push past cap: got %v, want ErrQueueFull", err)
	}
	// Popping frees a slot.
	if _, ok := q.Pop(); !ok {
		t.Fatal("pop failed")
	}
	if err := q.Push(testJob("c")); err != nil {
		t.Fatalf("push after pop: %v", err)
	}
}

func TestQueueFIFOWithinTenant(t *testing.T) {
	q := newFairQueue(8, nil, telemetry.NewRegistry())
	for i := 0; i < 4; i++ {
		j := testJob("t")
		j.id = string(rune('a' + i))
		if err := q.Push(j); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		j, ok := q.Pop()
		if !ok || j.id != string(rune('a'+i)) {
			t.Fatalf("pop %d = %q, want %q", i, j.id, string(rune('a'+i)))
		}
	}
}

func TestQueueWeightedFairness(t *testing.T) {
	q := newFairQueue(16, map[string]int{"heavy": 2, "light": 1}, telemetry.NewRegistry())
	for i := 0; i < 6; i++ {
		if err := q.Push(testJob("heavy")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := q.Push(testJob("light")); err != nil {
			t.Fatal(err)
		}
	}
	// DRR with weights 2:1 serves heavy,heavy,light per round.
	want := []string{"heavy", "heavy", "light", "heavy", "heavy", "light", "heavy", "heavy", "light"}
	for i, w := range want {
		j, ok := q.Pop()
		if !ok {
			t.Fatalf("pop %d: queue empty", i)
		}
		if j.tenant != w {
			t.Fatalf("pop %d = %s, want %s", i, j.tenant, w)
		}
	}
	if q.Depth() != 0 {
		t.Fatalf("depth = %d after draining", q.Depth())
	}
}

func TestQueueNoStarvation(t *testing.T) {
	// A tenant with a deep backlog must not lock out a late arrival.
	q := newFairQueue(32, nil, telemetry.NewRegistry())
	for i := 0; i < 10; i++ {
		if err := q.Push(testJob("greedy")); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Push(testJob("late")); err != nil {
		t.Fatal(err)
	}
	seenLate := false
	for i := 0; i < 3; i++ {
		j, _ := q.Pop()
		if j.tenant == "late" {
			seenLate = true
		}
	}
	if !seenLate {
		t.Fatal("late tenant not served within one round of equal weights")
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := newFairQueue(8, nil, telemetry.NewRegistry())
	for i := 0; i < 3; i++ {
		if err := q.Push(testJob("t")); err != nil {
			t.Fatal(err)
		}
	}
	popped := make(chan bool, 1)
	go func() {
		_, ok := q.Pop()
		// Drain the rest so the blocked-Pop case below is reached.
		for ok {
			_, ok = q.Pop()
		}
		popped <- ok
	}()
	drained := q.Close()
	// The concurrent popper may have taken some jobs first; together
	// they must account for all three exactly once.
	if ok := <-popped; ok {
		t.Fatal("Pop returned ok after Close on empty queue")
	}
	if len(drained) > 3 {
		t.Fatalf("Close returned %d jobs, pushed only 3", len(drained))
	}
	if err := q.Push(testJob("t")); err == nil {
		t.Fatal("Push accepted after Close")
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop returned a job after Close drained everything")
	}
}
