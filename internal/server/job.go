// Job records and their event streams.
//
// A job is one accepted sweep: a spec, a tenant, a state machine
// (queued → capturing/replaying/running → done/failed), and an
// append-only event log. SSE subscribers get the full history replayed
// on attach and live events after, so a client that connects late (or
// reconnects) sees the same stream as one that connected at submit
// time; the final "done"/"failed" event closes every stream.

package server

import (
	"encoding/json"
	"sync"
	"time"

	"cmpmem/internal/telemetry"
)

// Job states, in submission order. Capturing and replaying surface the
// core progress phases; a live (non-replayed) execution reports
// "running".
const (
	StateQueued    = "queued"
	StateCapturing = "capturing"
	// StateSampling is the fast tier's fingerprint + cluster pass; the
	// representative replay that follows reports StateReplaying.
	StateSampling  = "sampling"
	StateReplaying = "replaying"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
)

// Event is one SSE frame: the event name plus a JSON-marshaled payload.
type Event struct {
	// ID is the 1-based position in the job's event log, rendered as
	// the SSE id field so clients can resume with Last-Event-ID.
	ID uint64 `json:"id"`
	// Name is the SSE event type: a state name or "config".
	Name string `json:"event"`
	// Data is the payload rendered into the SSE data field.
	Data eventData `json:"data"`
}

// eventData is the payload schema shared by all events.
type eventData struct {
	Job    string `json:"job"`
	State  string `json:"state"`
	Config string `json:"config,omitempty"` // per-config completion events
	Done   int    `json:"done,omitempty"`   // configs completed so far
	Total  int    `json:"total,omitempty"`  // configs in the sweep
	Error  string `json:"error,omitempty"`  // failed only
}

// JobStatus is the JSON body of GET /v1/sweeps/{id}.
type JobStatus struct {
	ID       string          `json:"id"`
	Tenant   string          `json:"tenant"`
	State    string          `json:"state"`
	SpecHash string          `json:"spec_hash"`
	Cached   bool            `json:"cached,omitempty"` // answered from the result cache
	Created  time.Time       `json:"created"`
	Started  *time.Time      `json:"started,omitempty"`
	Finished *time.Time      `json:"finished,omitempty"`
	Error    string          `json:"error,omitempty"`
	Result   json.RawMessage `json:"result,omitempty"` // marshaled SweepResult when done
	// TraceID and Trace expose the request's span tree once the job is
	// terminal (live trees mutate concurrently and are withheld).
	TraceID string          `json:"trace_id,omitempty"`
	Trace   *telemetry.Span `json:"trace,omitempty"`
	// Profile references the slow-request CPU profile file, when one
	// was captured for this job.
	Profile string `json:"profile,omitempty"`
}

// job is the server-side record behind one sweep id.
type job struct {
	id     string
	tenant string
	spec   *SweepSpec

	mu       sync.Mutex
	state    string
	cached   bool
	created  time.Time
	started  time.Time
	finished time.Time
	err      string
	result   []byte // marshaled SweepResult (shared with the result cache)

	events []Event // full history, replayed to late subscribers
	subs   map[chan Event]struct{}
	done   chan struct{} // closed on the terminal event

	// trace is the request-scoped trace opened at admission; queueSpan
	// covers admission-to-dequeue. Span internals synchronize
	// themselves; the pointers are written once before the job is
	// visible to workers. profile is the slow-request capture reference.
	trace     *telemetry.Trace
	queueSpan *telemetry.Span
	profile   string
}

func newJob(id, tenant string, spec *SweepSpec, now time.Time) *job {
	return &job{
		id:      id,
		tenant:  tenant,
		spec:    spec,
		state:   StateQueued,
		created: now,
		subs:    make(map[chan Event]struct{}),
		done:    make(chan struct{}),
	}
}

// emit appends ev to the history and fans it out to live subscribers.
// Subscriber channels are buffered; a subscriber that stops draining
// loses events rather than blocking the worker (SSE clients that care
// reconnect and get the history replay).
func (j *job) emit(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.isTerminalLocked() {
		return
	}
	ev.ID = uint64(len(j.events)) + 1
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	if ev.Name == StateDone || ev.Name == StateFailed {
		close(j.done)
	}
}

// isTerminalLocked reports whether the terminal event has been emitted.
func (j *job) isTerminalLocked() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// setState transitions the job and emits the matching event. Repeated
// transitions to the current state are suppressed so a 256-config
// replay does not emit 256 "replaying" frames.
func (j *job) setState(state string) {
	j.mu.Lock()
	if j.state == state || j.isTerminalLocked() {
		j.mu.Unlock()
		return
	}
	j.state = state
	data := eventData{Job: j.id, State: state}
	j.mu.Unlock()
	j.emit(Event{Name: state, Data: data})
}

// configDone emits a per-config completion event.
func (j *job) configDone(config string, done, total int) {
	j.mu.Lock()
	state := j.state
	j.mu.Unlock()
	j.emit(Event{Name: "config", Data: eventData{
		Job: j.id, State: state, Config: config, Done: done, Total: total,
	}})
}

// finish marks the job done with the marshaled result.
func (j *job) finish(result []byte, cached bool, now time.Time) {
	j.mu.Lock()
	j.state = StateDone
	j.result = result
	j.cached = cached
	j.finished = now
	data := eventData{Job: j.id, State: StateDone}
	j.mu.Unlock()
	j.emit(Event{Name: StateDone, Data: data})
}

// fail marks the job failed.
func (j *job) fail(err error, now time.Time) {
	j.mu.Lock()
	j.state = StateFailed
	j.err = err.Error()
	j.finished = now
	data := eventData{Job: j.id, State: StateFailed, Error: j.err}
	j.mu.Unlock()
	j.emit(Event{Name: StateFailed, Data: data})
}

// markStarted records the dequeue time.
func (j *job) markStarted(now time.Time) {
	j.mu.Lock()
	j.started = now
	j.mu.Unlock()
}

// setProfile records the slow-request profile reference.
func (j *job) setProfile(path string) {
	j.mu.Lock()
	j.profile = path
	j.mu.Unlock()
}

// subscribe returns the event history so far plus a channel carrying
// subsequent events, and an unsubscribe func. If the job is already
// terminal the channel is returned closed.
func (j *job) subscribe() (history []Event, live <-chan Event, cancel func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	history = append([]Event(nil), j.events...)
	ch := make(chan Event, 64)
	if j.isTerminalLocked() {
		close(ch)
		return history, ch, func() {}
	}
	j.subs[ch] = struct{}{}
	return history, ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// status snapshots the job for GET /v1/sweeps/{id}.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:       j.id,
		Tenant:   j.tenant,
		State:    j.state,
		SpecHash: j.spec.Hash(),
		Cached:   j.cached,
		Created:  j.created,
		Error:    j.err,
		Result:   json.RawMessage(j.result),
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	st.Profile = j.profile
	// The span tree is exposed only after the terminal event: a live
	// tree is still being mutated by the worker, and a sealed one is
	// safe to share by value.
	if j.trace != nil && j.isTerminalLocked() {
		st.TraceID = j.trace.ID
		st.Trace = j.trace.Root
	}
	return st
}
