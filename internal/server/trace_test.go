package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"cmpmem/internal/telemetry"
)

// TestRequestTraceReconciles is the tracing acceptance criterion: a
// completed job exposes a sealed span tree whose serving phases —
// queue wait, cache lookups, and the execution tree — account for the
// request's measured wall latency, and the same phases land in the
// cosimd_phase_* histograms, statusz percentiles, and the manifest
// stream.
func TestRequestTraceReconciles(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real sweep")
	}
	dir := t.TempDir()
	manifestPath := filepath.Join(dir, "manifest.jsonl")
	man, err := telemetry.OpenManifestFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	defer man.Close()
	reg := telemetry.NewRegistry()
	s, ts := testServer(t, Config{Workers: 1, Registry: reg, Manifest: man})

	st := await(t, ts, submit(t, ts, "tracer", tinySpecJSON(31, 1<<18, 1<<19)).ID)
	if st.State != StateDone {
		t.Fatalf("job failed: %s", st.Error)
	}
	if st.TraceID == "" || st.Trace == nil {
		t.Fatal("terminal job must expose its trace")
	}
	root := st.Trace
	if root.Name != "request" {
		t.Fatalf("root span = %q, want request", root.Name)
	}
	if root.WallNS == 0 {
		t.Fatal("root span not sealed")
	}
	if root.Attrs["tenant"] != "tracer" || root.Attrs["job"] != st.ID {
		t.Errorf("root attrs = %v", root.Attrs)
	}
	if root.Find(phaseQueueWait) == nil {
		t.Error("no queue_wait span")
	}
	if root.Find(phaseCacheLookup) == nil {
		t.Error("no cache_lookup span")
	}
	sweep := sweepSpanOf(root)
	if sweep == nil || !strings.HasPrefix(sweep.Name, "plansweep/") {
		t.Fatalf("sweep span = %+v, want plansweep/*", sweep)
	}
	if sweep.Find("store") == nil || sweep.Find("capture") == nil {
		t.Error("execution tree missing store/capture spans")
	}

	// Reconciliation: the root's serial children partition the request
	// timeline up to handler overhead (result marshaling, event emits).
	sum := root.SerialChildSum()
	gap := root.WallNS - sum
	if sum > root.WallNS {
		t.Fatalf("children (%d ns) exceed root (%d ns)", sum, root.WallNS)
	}
	// Tolerance: 25% of root or 20ms, whichever is larger — fixed
	// per-request overheads dominate on a deliberately tiny sweep.
	tol := root.WallNS / 4
	if tol < 20_000_000 {
		tol = 20_000_000
	}
	if gap > tol {
		t.Errorf("unattributed time %d ns of %d ns root exceeds tolerance %d ns", gap, root.WallNS, tol)
	}

	// Phase histograms: aggregate and per-tenant queue_wait observed.
	if n := reg.Histogram("cosimd_phase_queue_wait_micros").Snapshot().Count; n == 0 {
		t.Error("queue_wait histogram empty")
	}
	if n := reg.Histogram("cosimd_phase_queue_wait_micros_tenant_tracer").Snapshot().Count; n == 0 {
		t.Error("per-tenant queue_wait histogram empty")
	}

	// statusz folds the same histograms into percentiles.
	resp, err := http.Get(ts.URL + "/v1/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var stz Statusz
	err = json.NewDecoder(resp.Body).Decode(&stz)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := stz.QueueWait["all"]; !ok {
		t.Errorf("statusz queue_wait missing aggregate: %v", stz.QueueWait)
	}
	if p, ok := stz.QueueWait["tracer"]; !ok || p.Count == 0 {
		t.Errorf("statusz queue_wait missing tenant: %v", stz.QueueWait)
	}

	// The manifest stream carries the same trace, correlated by ID.
	data, err := os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	var m telemetry.Manifest
	found := false
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("manifest line: %v", err)
		}
		if m.Kind == "request" && m.Job == st.ID {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no request manifest for the job")
	}
	if m.TraceID != st.TraceID || m.Tenant != "tracer" || m.Trace == nil {
		t.Errorf("manifest correlation = %+v", m)
	}
	if m.DurationNS != root.WallNS {
		t.Errorf("manifest duration %d != root wall %d", m.DurationNS, root.WallNS)
	}

	_ = s // shutdown via cleanup
}

// TestCachedRequestTrace: a result served straight from the cache still
// gets a sealed trace — cache_lookup plus nothing else — and the status
// exposes it immediately.
func TestCachedRequestTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real sweep")
	}
	_, ts := testServer(t, Config{Workers: 1})
	spec := tinySpecJSON(37, 1<<18)
	first := await(t, ts, submit(t, ts, "warm", spec).ID)
	if first.State != StateDone {
		t.Fatalf("warmup failed: %s", first.Error)
	}
	st := submit(t, ts, "warm", spec)
	if !st.Cached {
		t.Fatal("repeat not served from cache")
	}
	if st.Trace == nil || st.Trace.WallNS == 0 {
		t.Fatal("cached request must still carry a sealed trace")
	}
	if st.Trace.Find(phaseCacheLookup) == nil {
		t.Error("cached request trace missing cache_lookup span")
	}
	if sweepSpanOf(st.Trace) != nil {
		t.Error("cache-served request must have no execution span")
	}
}

// sseFrames reads an SSE stream to EOF, returning (id, event) pairs.
func sseFrames(t *testing.T, resp *http.Response) (ids []uint64, names []string) {
	t.Helper()
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var lastID uint64
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			n, err := strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q: %v", line, err)
			}
			lastID = n
		case strings.HasPrefix(line, "event: "):
			ids = append(ids, lastID)
			names = append(names, strings.TrimPrefix(line, "event: "))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	return ids, names
}

// TestSSEResumeLastEventID is the reconnect satellite: a client that
// reconnects with Last-Event-ID receives exactly the frames after that
// id — no losses, no duplicates.
func TestSSEResumeLastEventID(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real sweep")
	}
	_, ts := testServer(t, Config{Workers: 1})
	id := submit(t, ts, "resume", tinySpecJSON(41, 1<<18, 1<<19, 1<<20)).ID

	client := &http.Client{Timeout: 120 * time.Second}
	resp, err := client.Get(ts.URL + "/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	fullIDs, fullNames := sseFrames(t, resp)
	if len(fullIDs) < 3 {
		t.Fatalf("need a few frames to test resume, got %d", len(fullIDs))
	}
	// IDs must be the contiguous 1-based event-log positions.
	for i, got := range fullIDs {
		if got != uint64(i)+1 {
			t.Fatalf("frame %d has id %d, want %d (ids: %v)", i, got, i+1, fullIDs)
		}
	}

	// Reconnect as if the connection dropped mid-stream.
	cut := fullIDs[len(fullIDs)/2]
	req, err := http.NewRequest("GET", ts.URL+"/v1/sweeps/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Last-Event-ID", strconv.FormatUint(cut, 10))
	resp2, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resumeIDs, resumeNames := sseFrames(t, resp2)

	wantIDs := fullIDs[cut:]
	if len(resumeIDs) != len(wantIDs) {
		t.Fatalf("resume returned %d frames %v, want %d %v", len(resumeIDs), resumeIDs, len(wantIDs), wantIDs)
	}
	for i := range wantIDs {
		if resumeIDs[i] != wantIDs[i] || resumeNames[i] != fullNames[int(cut)+i] {
			t.Fatalf("resume frame %d = (%d,%s), want (%d,%s)",
				i, resumeIDs[i], resumeNames[i], wantIDs[i], fullNames[int(cut)+i])
		}
	}
	if resumeNames[len(resumeNames)-1] != StateDone {
		t.Errorf("resume must still end with done, got %q", resumeNames[len(resumeNames)-1])
	}

	// A client that already saw everything gets an empty stream and EOF.
	req3, _ := http.NewRequest("GET", ts.URL+"/v1/sweeps/"+id+"/events", nil)
	req3.Header.Set("Last-Event-ID", strconv.FormatUint(fullIDs[len(fullIDs)-1], 10))
	resp3, err := client.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	caughtUp, _ := sseFrames(t, resp3)
	if len(caughtUp) != 0 {
		t.Errorf("caught-up resume replayed %v", caughtUp)
	}
}

// TestSlowProfilerThreshold exercises the slow-request capture gate
// without real profiles: fast requests return no reference, slow ones
// bump the counter, and only one capture runs at a time.
func TestSlowProfilerThreshold(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := newSlowProfiler(50*time.Millisecond, "", reg) // no dir: counter only
	if got := p.maybeCapture("j1", 10*time.Millisecond); got != "" {
		t.Errorf("fast request captured %q", got)
	}
	if got := reg.Counter("cosimd_slow_requests_total").Value(); got != 0 {
		t.Errorf("fast request counted as slow: %d", got)
	}
	if got := p.maybeCapture("j2", 80*time.Millisecond); got != "" {
		t.Errorf("dirless profiler returned a path %q", got)
	}
	if got := reg.Counter("cosimd_slow_requests_total").Value(); got != 1 {
		t.Errorf("slow count = %d, want 1", got)
	}
	var disabled *slowProfiler
	if disabled.maybeCapture("j3", time.Hour) != "" {
		t.Error("nil profiler must be inert")
	}

	dir := t.TempDir()
	p2 := newSlowProfiler(time.Millisecond, dir, reg)
	path := p2.maybeCapture("j4", time.Second)
	if path == "" {
		t.Fatal("slow request with a dir must start a capture")
	}
	if filepath.Dir(path) != dir || !strings.Contains(path, "j4") {
		t.Errorf("profile path = %q", path)
	}
	// While the first capture is busy, further slow requests count but
	// do not start a second capture.
	if p2.maybeCapture("j5", time.Second) != "" {
		t.Error("concurrent capture must be suppressed")
	}
	// The background capture eventually writes the file and clears busy.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(path); err == nil && !p2.busy.Load() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("profile %s never completed", path)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestTraceWithheldWhileLive: a running job's status must not expose
// its (still-mutating) span tree.
func TestTraceWithheldWhileLive(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{Workers: 1, Registry: telemetry.NewRegistry()})
	s.preRun = func(*job) { <-gate }
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer close(gate)

	st := submit(t, ts, "live", tinySpecJSON(43, 1<<18))
	if st.Trace != nil || st.TraceID != "" {
		t.Error("queued job must not expose its live trace")
	}
	resp, err := http.Get(ts.URL + "/v1/sweeps/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var again JobStatus
	err = json.NewDecoder(resp.Body).Decode(&again)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if again.Trace != nil {
		t.Error("live job status must not expose its trace")
	}
}
