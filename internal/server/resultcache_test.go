package server

import (
	"bytes"
	"fmt"
	"testing"

	"cmpmem/internal/telemetry"
)

func TestResultCacheHitMiss(t *testing.T) {
	c := newResultCache(1<<20, telemetry.NewRegistry())
	if _, ok := c.Get("absent"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("k1", []byte("result-1"))
	got, ok := c.Get("k1")
	if !ok || !bytes.Equal(got, []byte("result-1")) {
		t.Fatalf("Get(k1) = %q, %v", got, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	// Budget fits two 8-byte bodies; the third insert evicts the LRU.
	c := newResultCache(16, telemetry.NewRegistry())
	c.Put("a", []byte("aaaaaaaa"))
	c.Put("b", []byte("bbbbbbbb"))
	c.Get("a") // a becomes MRU; b is now the LRU victim
	c.Put("c", []byte("cccccccc"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("MRU entry a was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("new entry c missing")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestResultCacheOversizeAndBudget(t *testing.T) {
	c := newResultCache(8, telemetry.NewRegistry())
	c.Put("big", make([]byte, 9))
	if _, ok := c.Get("big"); ok {
		t.Fatal("oversize body was stored")
	}
	// Bytes never exceed the budget across many inserts.
	for i := 0; i < 32; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte("1234"))
		if st := c.Stats(); st.Bytes > 8 {
			t.Fatalf("resident bytes %d exceed budget 8", st.Bytes)
		}
	}
}

func TestResultCacheRePutRefreshes(t *testing.T) {
	c := newResultCache(16, telemetry.NewRegistry())
	c.Put("a", []byte("aaaaaaaa"))
	c.Put("b", []byte("bbbbbbbb"))
	c.Put("a", []byte("aaaaaaaa")) // refresh recency, no double count
	if st := c.Stats(); st.Bytes != 16 || st.Entries != 2 {
		t.Fatalf("stats after re-put = %+v", st)
	}
	c.Put("c", []byte("cccccccc"))
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should be the eviction victim after a's refresh")
	}
}
