// Server-level sampling tests: the accuracy tier is part of a spec's
// identity (sampled and exact results must never share a cache entry),
// and a sampled job's SSE stream surfaces the sampling phase.

package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// samplingSpecJSON is tinySpecJSON plus an explicit sampling tier.
func samplingSpecJSON(seed int64, mode string, sizes ...uint64) string {
	var cfgs []string
	for _, sz := range sizes {
		cfgs = append(cfgs, fmt.Sprintf(`{"size_bytes":%d,"line_size":64,"assoc":4}`, sz))
	}
	return fmt.Sprintf(`{
		"workload": "SNP", "seed": %d, "scale": %g,
		"platform": {"threads": 2},
		"sampling": %q,
		"grids": [[%s]]
	}`, seed, 1.0/512, mode, strings.Join(cfgs, ","))
}

// TestSamplingSpecIdentity: specs differing only in the sampling tier
// hash to distinct cache keys, while "off" (explicit or omitted)
// hashes identically to the pre-sampling wire form.
func TestSamplingSpecIdentity(t *testing.T) {
	exact, err := DecodeSpec(strings.NewReader(tinySpecJSON(23, 1<<18)))
	if err != nil {
		t.Fatal(err)
	}
	off, err := DecodeSpec(strings.NewReader(samplingSpecJSON(23, "off", 1<<18)))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := DecodeSpec(strings.NewReader(samplingSpecJSON(23, "fast", 1<<18)))
	if err != nil {
		t.Fatal(err)
	}
	if exact.Hash() != off.Hash() {
		t.Errorf("explicit sampling=off changed the hash: %s != %s", off.Hash(), exact.Hash())
	}
	if fast.Hash() == exact.Hash() {
		t.Errorf("sampling=fast hashes like the exact spec (%s): sampled and exact results would collide", fast.Hash())
	}
	if _, err := DecodeSpec(strings.NewReader(samplingSpecJSON(23, "bogus", 1<<18))); err == nil {
		t.Error("unknown sampling mode accepted")
	}
}

// TestSamplingDistinctCachedResults runs the same experiment exact and
// fast: both complete, the bodies differ (the sampled one carries
// SamplingEstimate records), each repeat is served from its own cache
// entry, and the sampled job's event stream reports the sampling phase.
func TestSamplingDistinctCachedResults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real sweep")
	}
	_, ts := testServer(t, Config{Workers: 1})
	exactJSON := tinySpecJSON(29, 1<<18)
	fastJSON := samplingSpecJSON(29, "fast", 1<<18)

	stExact := await(t, ts, submit(t, ts, "exact", exactJSON).ID)
	fastID := submit(t, ts, "fast", fastJSON).ID
	stFast := await(t, ts, fastID)
	if stExact.State != StateDone || stFast.State != StateDone {
		t.Fatalf("jobs failed: exact=%q fast=%q", stExact.Error, stFast.Error)
	}
	if bytes.Equal(stExact.Result, stFast.Result) {
		t.Error("sampled and exact runs returned identical result bytes")
	}

	// The sampled body carries a sampling record per result; the exact
	// body must carry none.
	type rec struct {
		Grids [][]struct {
			Sampling *json.RawMessage `json:"Sampling"`
		} `json:"grids"`
	}
	var exactRes, fastRes rec
	if err := json.Unmarshal(stExact.Result, &exactRes); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(stFast.Result, &fastRes); err != nil {
		t.Fatal(err)
	}
	if len(fastRes.Grids) == 0 || len(fastRes.Grids[0]) == 0 || fastRes.Grids[0][0].Sampling == nil {
		t.Error("sampled result body has no SamplingEstimate record")
	}
	if len(exactRes.Grids) == 0 || len(exactRes.Grids[0]) == 0 || exactRes.Grids[0][0].Sampling != nil {
		t.Error("exact result body unexpectedly carries a SamplingEstimate record")
	}

	// Repeats hit their own cache entries.
	reFast := submit(t, ts, "fast-again", fastJSON)
	if reFast.State != StateDone || !reFast.Cached {
		t.Fatalf("fast repeat = state %s cached %v, want instant cached done", reFast.State, reFast.Cached)
	}
	if !bytes.Equal(reFast.Result, stFast.Result) {
		t.Error("cached sampled result differs from original")
	}
	reExact := submit(t, ts, "exact-again", exactJSON)
	if reExact.State != StateDone || !reExact.Cached {
		t.Fatalf("exact repeat = state %s cached %v, want instant cached done", reExact.State, reExact.Cached)
	}
	if bytes.Equal(reExact.Result, reFast.Result) {
		t.Error("exact repeat was served the sampled result")
	}

	// The sampled job's event history includes the sampling phase.
	client := &http.Client{Timeout: 60 * time.Second}
	resp, err := client.Get(ts.URL + "/v1/sweeps/" + fastID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	seen := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if line := sc.Text(); strings.HasPrefix(line, "event: ") {
			seen[strings.TrimPrefix(line, "event: ")] = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if !seen[StateSampling] {
		t.Errorf("sampled job's event stream never reported %q (saw %v)", StateSampling, seen)
	}
	if !seen[StateDone] {
		t.Errorf("event stream never reported done (saw %v)", seen)
	}
}
