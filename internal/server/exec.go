// Package server is the multi-tenant co-simulation sweep service:
// the serving layer that turns the CLI reproduction into a long-lived
// system many experiments target concurrently.
//
// The paper's operational model already is a service: one SoftSDV
// execution feeds a reprogrammable Dragonhead board, and the expensive
// resource — the captured FSB stream — is shared across every cache
// configuration applied to it. cosimd extends that sharing across
// users: every job on the server draws from one process-wide
// tracestore (single-flight, so N concurrent tenants requesting the
// same workload capture pay for one execution) and pure results are
// memoized in a content-addressed result cache keyed by the canonical
// spec hash, so a repeated experiment costs one map lookup.
//
// The request path is: admission control (bounded queue, 429 +
// Retry-After past the cap) → per-tenant weighted fair queuing (DRR
// over tenant FIFOs, so one greedy tenant cannot starve the rest) →
// a bounded worker pool running CombinedSweep → the shared tracestore
// and result cache. Progress streams to clients over SSE (queued →
// capturing → replaying → per-config completion → done), fed by the
// core progress hooks and a per-job telemetry.Sink; /metrics exposes
// the cosimd_* counters alongside the simulator's own.
package server

import (
	"context"

	"cmpmem/internal/core"
	"cmpmem/internal/telemetry"
)

// SweepResult is the JSON result of one sweep: CombinedSweep's return
// values under stable names, plus the identity that produced them. The
// server stores exactly this marshaled form in the result cache, and
// cosim's `sweep` subcommand prints the same — so server and CLI
// output diff byte-for-byte for the same spec.
type SweepResult struct {
	Workload string `json:"workload"`
	SpecHash string `json:"spec_hash"`
	Engine   string `json:"engine"`
	// Summary is the execution-side totals (identical whether the run
	// was captured live or replayed from the store).
	Summary core.RunSummary `json:"summary"`
	// Grids mirror the request's geometry grids element for element.
	Grids [][]core.LLCResult `json:"grids"`
}

// ExecuteSpec answers one normalized spec with a direct CombinedSweep
// call. It is the single execution path shared by the server's workers
// and the cosim CLI's `sweep` subcommand — the parity that lets CI
// diff a served result against a locally computed one. Options passed
// by the caller (trace store, telemetry, progress hooks, server-side
// parallelism defaults) are applied first; the spec's own options
// (engine, explicit shards/batch) are applied last and win.
func ExecuteSpec(spec *SweepSpec, opts ...core.RunOption) (*SweepResult, error) {
	return ExecuteSpecCtx(context.Background(), spec, opts...)
}

// ExecuteSpecCtx is ExecuteSpec under a context: when ctx carries a
// telemetry.Trace (a cosimd request trace), the sweep's span tree is
// rooted under it via core.WithParentSpan, so the request's trace
// contains the complete execution breakdown. A bare context behaves
// exactly like ExecuteSpec.
func ExecuteSpecCtx(ctx context.Context, spec *SweepSpec, opts ...core.RunOption) (*SweepResult, error) {
	if sp := telemetry.SpanFromContext(ctx); sp != nil {
		opts = append([]core.RunOption{core.WithParentSpan(sp)}, opts...)
	}
	name, p, pc, grids, specOpts, err := spec.runArgs()
	if err != nil {
		return nil, err
	}
	all := make([]core.RunOption, 0, len(opts)+len(specOpts))
	all = append(all, opts...)
	all = append(all, specOpts...)
	results, sum, err := core.CombinedSweep(name, p, pc, grids, all...)
	if err != nil {
		return nil, err
	}
	return &SweepResult{
		Workload: name,
		SpecHash: spec.Hash(),
		Engine:   spec.Engine,
		Summary:  sum,
		Grids:    results,
	}, nil
}
