package server

import (
	"bytes"
	"strings"
	"testing"

	"cmpmem/internal/softsdv"
	"cmpmem/internal/workloads"
)

const minimalSpec = `{
	"workload": "snp",
	"seed": 7,
	"grids": [[{"size_bytes": 262144, "line_size": 64, "assoc": 8}]]
}`

func TestDecodeSpecDefaults(t *testing.T) {
	spec, err := DecodeSpec(strings.NewReader(minimalSpec))
	if err != nil {
		t.Fatalf("DecodeSpec: %v", err)
	}
	if spec.Workload != "SNP" {
		t.Errorf("workload not case-folded: %q", spec.Workload)
	}
	if spec.Scale != workloads.DefaultScale {
		t.Errorf("scale default = %v, want %v", spec.Scale, workloads.DefaultScale)
	}
	if spec.Platform.Threads != 8 {
		t.Errorf("threads default = %d, want 8", spec.Platform.Threads)
	}
	if spec.Platform.Quantum != softsdv.DefaultQuantum {
		t.Errorf("quantum default = %d, want %d", spec.Platform.Quantum, softsdv.DefaultQuantum)
	}
	if spec.Engine != "auto" {
		t.Errorf("engine default = %q, want auto", spec.Engine)
	}
	if got := spec.Grids[0][0].Name; got != "llc-262144B-64B-8w" {
		t.Errorf("config name default = %q", got)
	}
	if spec.Grids[0][0].Repl != "lru" {
		t.Errorf("repl default = %q, want lru", spec.Grids[0][0].Repl)
	}
}

func TestDecodeSpecRejects(t *testing.T) {
	cases := map[string]string{
		"empty":           `{}`,
		"unknown field":   `{"workload":"SNP","grids":[[{"size_bytes":65536,"line_size":64,"assoc":4}]],"bogus":1}`,
		"trailing data":   minimalSpec + ` {"again": true}`,
		"bad workload":    `{"workload":"NOPE","grids":[[{"size_bytes":65536,"line_size":64,"assoc":4}]]}`,
		"no grids":        `{"workload":"SNP"}`,
		"empty grid":      `{"workload":"SNP","grids":[[]]}`,
		"bad repl":        `{"workload":"SNP","grids":[[{"size_bytes":65536,"line_size":64,"assoc":4,"repl":"mru"}]]}`,
		"bad geometry":    `{"workload":"SNP","grids":[[{"size_bytes":65537,"line_size":64,"assoc":4}]]}`,
		"threads too big": `{"workload":"SNP","platform":{"threads":4096},"grids":[[{"size_bytes":65536,"line_size":64,"assoc":4}]]}`,
		"scale too big":   `{"workload":"SNP","scale":100,"grids":[[{"size_bytes":65536,"line_size":64,"assoc":4}]]}`,
		"bad engine":      `{"workload":"SNP","engine":"warp","grids":[[{"size_bytes":65536,"line_size":64,"assoc":4}]]}`,
		"not json":        `hello`,
	}
	for name, body := range cases {
		if _, err := DecodeSpec(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted, want error", name)
		}
	}
}

func TestSpecHashIdentity(t *testing.T) {
	base := func() *SweepSpec {
		s, err := DecodeSpec(strings.NewReader(minimalSpec))
		if err != nil {
			t.Fatalf("DecodeSpec: %v", err)
		}
		return s
	}
	h := base().Hash()

	// Wall-clock knobs stay out of the identity.
	s := base()
	s.Shards, s.Batch = 16, 4096
	if s.Hash() != h {
		t.Errorf("shards/batch changed the hash")
	}
	// Explicit defaults hash like omitted ones.
	explicit := `{
		"workload": "SNP", "seed": 7, "scale": ` + "0.0625" + `,
		"platform": {"threads": 8},
		"engine": "auto",
		"grids": [[{"size_bytes": 262144, "line_size": 64, "assoc": 8, "repl": "lru"}]]
	}`
	se, err := DecodeSpec(strings.NewReader(explicit))
	if err != nil {
		t.Fatalf("explicit spec: %v", err)
	}
	if se.Hash() != h {
		t.Errorf("explicit defaults hash %s, zero defaults hash %s", se.Hash(), h)
	}
	// Identity fields change the hash.
	for name, mut := range map[string]func(*SweepSpec){
		"seed":    func(s *SweepSpec) { s.Seed++ },
		"engine":  func(s *SweepSpec) { s.Engine = "emulate" },
		"threads": func(s *SweepSpec) { s.Platform.Threads = 16 },
		"grid":    func(s *SweepSpec) { s.Grids[0][0].Assoc = 4 },
	} {
		s := base()
		mut(s)
		if s.Hash() == h {
			t.Errorf("%s mutation kept the hash", name)
		}
	}
}

// FuzzSpecDecode is the decoder's safety property: arbitrary bytes
// either decode into a spec that validates clean, or are rejected with
// an error — never a panic (the HTTP layer turns every error into 400).
func FuzzSpecDecode(f *testing.F) {
	f.Add([]byte(minimalSpec))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"workload":"FIMI","seed":-1,"scale":1e308,"grids":[[{"size_bytes":18446744073709551615,"line_size":0,"assoc":-1}]]}`))
	f.Add([]byte(`{"workload":"SNP","grids":[[{"size_bytes":65536,"line_size":64,"assoc":4,"repl":"fifo","sector_size":128}]],"engine":"oracle","shards":4,"batch":512}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`null`))
	f.Add([]byte("\x00\xff\xfe"))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeSpec(bytes.NewReader(data))
		if err != nil {
			return
		}
		// An accepted spec must be internally consistent: validation
		// holds, normalization is idempotent, and the hash is stable.
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("accepted spec fails Validate: %v", verr)
		}
		h := spec.Hash()
		spec.Normalize()
		if spec.Hash() != h {
			t.Fatalf("Normalize not idempotent: hash %s -> %s", h, spec.Hash())
		}
		if _, _, _, _, _, err := spec.runArgs(); err != nil {
			t.Fatalf("accepted spec fails runArgs: %v", err)
		}
	})
}
