// Request tracing: every accepted sweep carries a telemetry.Trace from
// the HTTP edge to its terminal event. The root span ("request") gets
// one child per serving phase — queue_wait (admission to dequeue),
// cache_lookup (result-cache probes), and the execution tree that
// core hangs under it via WithParentSpan (plansweep/store/capture/
// replay/collect, plus concurrent shard spans) — so the phase durations
// reconcile against the request's measured wall latency.
//
// The same phases feed cosimd_phase_*_micros histograms, both aggregate
// and per-tenant (the registry's name-suffix idiom, as with
// cosimd_tenant_queue_depth_*), which /v1/statusz folds into queue-wait
// percentiles. Requests slower than Config.SlowTrace additionally
// trigger a short CPU profile of the live process, attached to the job
// as a file reference.

package server

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cmpmem/internal/telemetry"
)

// Phase names of the serving path (the execution-side phases — capture,
// replay, collect — come from core's span vocabulary).
const (
	phaseQueueWait   = "queue_wait"
	phaseCapture     = "capture"
	phaseAnalytic    = "analytic"
	phaseEmulate     = "emulate"
	phaseCacheLookup = "cache_lookup"
)

// phaseRecorder observes per-phase latencies into aggregate and
// per-tenant histograms and remembers which tenants it has seen (for
// the statusz percentile listing).
type phaseRecorder struct {
	reg *telemetry.Registry

	mu      sync.Mutex
	tenants map[string]struct{}
}

func newPhaseRecorder(reg *telemetry.Registry) *phaseRecorder {
	return &phaseRecorder{reg: reg, tenants: make(map[string]struct{})}
}

// observe records one phase duration for a tenant.
func (p *phaseRecorder) observe(phase, tenant string, d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := uint64(d.Microseconds())
	p.reg.Histogram("cosimd_phase_" + phase + "_micros").Observe(us)
	p.reg.Histogram("cosimd_phase_" + phase + "_micros_tenant_" + sanitizeTenant(tenant)).Observe(us)
	p.mu.Lock()
	p.tenants[tenant] = struct{}{}
	p.mu.Unlock()
}

// Percentiles is a p50/p95/p99 reading (microseconds) of one phase
// histogram; estimates carry the pow2-bucket factor-of-two resolution.
type Percentiles struct {
	Count uint64 `json:"count"`
	P50   uint64 `json:"p50_micros"`
	P95   uint64 `json:"p95_micros"`
	P99   uint64 `json:"p99_micros"`
}

// queueWaitPercentiles returns the per-tenant (plus "all" aggregate)
// queue-wait percentile table for /v1/statusz.
func (p *phaseRecorder) queueWaitPercentiles() map[string]Percentiles {
	out := make(map[string]Percentiles)
	add := func(key, histName string) {
		snap := p.reg.Histogram(histName).Snapshot()
		if snap.Count == 0 {
			return
		}
		out[key] = Percentiles{
			Count: snap.Count,
			P50:   snap.Quantile(0.50),
			P95:   snap.Quantile(0.95),
			P99:   snap.Quantile(0.99),
		}
	}
	add("all", "cosimd_phase_"+phaseQueueWait+"_micros")
	p.mu.Lock()
	tenants := make([]string, 0, len(p.tenants))
	for t := range p.tenants {
		tenants = append(tenants, t)
	}
	p.mu.Unlock()
	for _, t := range tenants {
		add(t, "cosimd_phase_"+phaseQueueWait+"_micros_tenant_"+sanitizeTenant(t))
	}
	return out
}

// slowProfileDuration is how long a slow-request CPU profile samples
// the live process. The profile covers the requests *after* the slow
// one — a completed request cannot be profiled retroactively — which is
// the right diagnostic for a persistently slow server.
const slowProfileDuration = time.Second

// slowProfiler captures at most one CPU profile at a time when a
// request exceeds the slow threshold.
type slowProfiler struct {
	threshold time.Duration
	dir       string
	busy      atomic.Bool
	count     *telemetry.Counter // cosimd_slow_requests_total
}

func newSlowProfiler(threshold time.Duration, dir string, reg *telemetry.Registry) *slowProfiler {
	return &slowProfiler{
		threshold: threshold,
		dir:       dir,
		count:     reg.Counter("cosimd_slow_requests_total"),
	}
}

// maybeCapture checks wall against the threshold; on a slow request it
// bumps the slow counter and — if no capture is in flight — starts a
// background CPU profile, returning the file path reference to attach
// to the job. Returns "" when the request was fast, profiling is
// disabled, or a capture is already running.
func (p *slowProfiler) maybeCapture(jobID string, wall time.Duration) string {
	if p == nil || p.threshold <= 0 || wall < p.threshold {
		return ""
	}
	p.count.Inc()
	if p.dir == "" || !p.busy.CompareAndSwap(false, true) {
		return ""
	}
	path := filepath.Join(p.dir, "slow-"+jobID+".pprof")
	go func() {
		defer p.busy.Store(false)
		f, err := os.Create(path)
		if err != nil {
			return
		}
		defer f.Close()
		// StartCPUProfile fails if something else (the pprof HTTP
		// endpoint) is already profiling; the reference then points at
		// an empty file, which is honest about what happened.
		if err := pprof.StartCPUProfile(f); err != nil {
			return
		}
		time.Sleep(slowProfileDuration)
		pprof.StopCPUProfile()
	}()
	return path
}

// annotateRequestSpan stamps the request root span with its identity
// attributes.
func annotateRequestSpan(root *telemetry.Span, j *job) {
	root.SetAttr("job", j.id)
	root.SetAttr("tenant", j.tenant)
	root.SetAttr("spec", j.spec.Hash())
	root.SetAttr("workload", j.spec.Workload)
}

// sweepSpanOf returns the execution child of the request root (the
// span core opened under WithParentSpan: plansweep/*, llcsweep/*, or
// hier/*), or nil on cache-served requests.
func sweepSpanOf(root *telemetry.Span) *telemetry.Span {
	if root == nil {
		return nil
	}
	for _, c := range root.Children {
		switch c.Name {
		case phaseQueueWait, phaseCacheLookup:
			continue
		}
		return c
	}
	return nil
}

// recordRequestPhases folds a finished request's span tree into the
// phase histograms: queue_wait and cache_lookup from their serving
// spans, capture from the store's capture child, and the compute pass
// into the analytic or emulate histogram depending on whether the plan
// had emulation legs (both legs ride one bus pass, so their wall time
// is attributed to the heavier engine rather than split arbitrarily).
func (s *Server) recordRequestPhases(j *job, root *telemetry.Span) {
	if root == nil {
		return
	}
	for _, c := range root.Children {
		switch c.Name {
		case phaseQueueWait:
			s.phases.observe(phaseQueueWait, j.tenant, time.Duration(c.WallNS))
		case phaseCacheLookup:
			s.phases.observe(phaseCacheLookup, j.tenant, time.Duration(c.WallNS))
		}
	}
	sweep := sweepSpanOf(root)
	if sweep == nil {
		return
	}
	if cap := sweep.Find(phaseCapture); cap != nil {
		s.phases.observe(phaseCapture, j.tenant, time.Duration(cap.WallNS))
	}
	phase := phaseAnalytic
	if n, err := strconv.Atoi(sweep.Attrs["emulated_configs"]); err == nil && n > 0 {
		phase = phaseEmulate
	} else if sweep.Attrs["emulated_configs"] == "" && sweep.Attrs["analytic_configs"] == "" {
		// llcsweep/hier trees (no planner attrs) are pure emulation.
		phase = phaseEmulate
	}
	s.phases.observe(phase, j.tenant, time.Duration(sweep.WallNS))
}

// emitRequestManifest appends the request's span tree to the manifest
// stream (when cosimd was started with one). Called after sealTrace and
// before the terminal finish/fail event, so a client that has observed
// a job's completion can rely on its manifest line being on disk.
func (s *Server) emitRequestManifest(j *job, tr *telemetry.Trace, jobErr error) {
	if s.man == nil || tr == nil {
		return
	}
	m := &telemetry.Manifest{
		Kind:       "request",
		Workload:   j.spec.Workload,
		Seed:       j.spec.Seed,
		Scale:      j.spec.Scale,
		Tenant:     j.tenant,
		Job:        j.id,
		TraceID:    tr.ID,
		DurationNS: tr.Root.WallNS,
		Trace:      tr.Root,
	}
	if jobErr != nil {
		m.Kind = "request_failed"
	}
	if err := s.man.Emit(m); err != nil {
		fmt.Fprintf(os.Stderr, "cosimd: manifest emit: %v\n", err)
	}
}
