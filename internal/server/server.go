// The HTTP service: routing, admission, the worker pool, and the
// process-wide shared state (tracestore + result cache) every job
// draws from.

package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"cmpmem/internal/core"
	"cmpmem/internal/telemetry"
	"cmpmem/internal/tracestore"
)

// Defaults for Config zero values.
const (
	DefaultWorkers    = 2
	DefaultRetainJobs = 4096
	// DefaultRetryAfter is the Retry-After hint on 429 responses.
	DefaultRetryAfter = 2 * time.Second
)

// Config shapes a Server. Zero values select the documented defaults.
type Config struct {
	// Workers bounds how many sweeps execute concurrently.
	Workers int
	// QueueCap bounds the admission queue (jobs waiting past the pool).
	QueueCap int
	// TenantWeights maps tenant names to DRR weights (default 1 each).
	TenantWeights map[string]int
	// ResultCacheBytes budgets the content-addressed result cache.
	ResultCacheBytes uint64
	// TraceStoreBytes and TraceDir budget the shared tracestore
	// (0, "" = tracestore defaults: 1 GiB resident, no disk spill).
	TraceStoreBytes uint64
	TraceDir        string
	// RetainJobs bounds how many finished jobs stay queryable.
	RetainJobs int
	// Registry receives the cosimd_* metrics (nil = a fresh registry).
	Registry *telemetry.Registry
	// Manifest, when non-nil, receives one JSONL record per completed
	// request (kind "request", span tree attached) in addition to the
	// sweep manifests core emits through the sink.
	Manifest *telemetry.ManifestWriter
	// SlowTrace, when > 0, marks requests slower than this as slow:
	// they bump cosimd_slow_requests_total and (with ProfileDir set)
	// trigger a CPU profile capture attached to the job by reference.
	SlowTrace time.Duration
	// ProfileDir is where slow-request CPU profiles land.
	ProfileDir string
}

// Server is the cosimd service: an http.Handler plus the worker pool
// behind it. Construct with New, launch workers with Start, mount
// Handler, stop with Shutdown.
type Server struct {
	cfg     Config
	reg     *telemetry.Registry
	sink    *telemetry.Sink
	store   *tracestore.Store
	results *resultCache
	queue   *fairQueue
	man     *telemetry.ManifestWriter
	phases  *phaseRecorder
	slow    *slowProfiler

	mu    sync.Mutex
	jobs  map[string]*job
	order []string // ids in creation order, for retention
	seq   uint64

	wg       sync.WaitGroup
	shutdown chan struct{}
	stopOnce sync.Once

	// preRun, when set, runs in the worker goroutine after a job is
	// dequeued and before it executes. Tests use it to hold workers at
	// a barrier so queue occupancy is deterministic.
	preRun func(*job)

	mAccepted *telemetry.Counter   // cosimd_jobs_accepted_total
	mDone     *telemetry.Counter   // cosimd_jobs_done_total
	mFailed   *telemetry.Counter   // cosimd_jobs_failed_total
	mCached   *telemetry.Counter   // cosimd_jobs_cached_total
	mRejected *telemetry.Counter   // cosimd_admission_rejected_total
	mRunning  *telemetry.Gauge     // cosimd_jobs_running
	mRequests *telemetry.Counter   // cosimd_http_requests_total
	mLatency  *telemetry.Histogram // cosimd_http_request_micros
}

// New builds a Server from cfg. No goroutines start until Start.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.RetainJobs <= 0 {
		cfg.RetainJobs = DefaultRetainJobs
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	store := tracestore.New(cfg.TraceStoreBytes, cfg.TraceDir)
	store.Instrument(reg)
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		sink:     telemetry.NewSink(reg, cfg.Manifest, nil),
		store:    store,
		results:  newResultCache(cfg.ResultCacheBytes, reg),
		queue:    newFairQueue(cfg.QueueCap, cfg.TenantWeights, reg),
		man:      cfg.Manifest,
		phases:   newPhaseRecorder(reg),
		slow:     newSlowProfiler(cfg.SlowTrace, cfg.ProfileDir, reg),
		jobs:     make(map[string]*job),
		shutdown: make(chan struct{}),

		mAccepted: reg.Counter("cosimd_jobs_accepted_total"),
		mDone:     reg.Counter("cosimd_jobs_done_total"),
		mFailed:   reg.Counter("cosimd_jobs_failed_total"),
		mCached:   reg.Counter("cosimd_jobs_cached_total"),
		mRejected: reg.Counter("cosimd_admission_rejected_total"),
		mRunning:  reg.Gauge("cosimd_jobs_running"),
		mRequests: reg.Counter("cosimd_http_requests_total"),
		mLatency:  reg.Histogram("cosimd_http_request_micros"),
	}
	return s
}

// Registry returns the server's metric registry.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// StoreStats snapshots the shared tracestore (the dedupe evidence:
// Misses counts actual executions, Waits counts single-flight joins).
func (s *Server) StoreStats() tracestore.Stats { return s.store.StatsSnapshot() }

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				j, ok := s.queue.Pop()
				if !ok {
					return
				}
				s.runJob(j)
			}
		}()
	}
}

// Shutdown stops admission, fails still-queued jobs, and waits for
// in-flight sweeps to finish (or ctx to expire). Safe to call once.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	s.stopOnce.Do(func() {
		close(s.shutdown)
		for _, j := range s.queue.Close() {
			errDrain := fmt.Errorf("server shutting down")
			j.queueSpan.End()
			s.sealTrace(j)
			s.emitRequestManifest(j, j.trace, errDrain)
			j.fail(errDrain, time.Now())
			s.mFailed.Inc()
		}
		done := make(chan struct{})
		go func() { s.wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-ctx.Done():
			err = ctx.Err()
		}
	})
	return err
}

// Handler returns the routed HTTP handler, /metrics included.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/version", s.handleVersion)
	mux.HandleFunc("GET /v1/statusz", s.handleStatusz)
	mux.Handle("/metrics", telemetry.Handler(s.reg))
	return s.instrument(mux)
}

// instrument wraps the mux with the request counter and latency
// histogram (microseconds, pow2 buckets).
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		s.mRequests.Inc()
		s.mLatency.Observe(uint64(time.Since(start).Microseconds()))
	})
}

// tenantFrom extracts and bounds the X-Tenant header.
func tenantFrom(r *http.Request) (string, error) {
	t := r.Header.Get("X-Tenant")
	if t == "" {
		t = "default"
	}
	if len(t) > maxTenantLen {
		return "", fmt.Errorf("X-Tenant longer than %d bytes", maxTenantLen)
	}
	return t, nil
}

// handleSubmit is POST /v1/sweeps: decode → admission → 201 or 429.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	tenant, err := tenantFrom(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	spec, err := DecodeSpec(http.MaxBytesReader(w, r.Body, MaxSpecBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	hash := spec.Hash()
	now := time.Now()
	j := newJob(s.nextID(hash), tenant, spec, now)

	// Open the request trace and put it on the context: the admission
	// path below reads it back via telemetry.FromContext, and the job
	// carries it past this handler's lifetime (the HTTP exchange ends
	// at the 201; the trace ends at the terminal event).
	j.trace = telemetry.NewTrace("request")
	annotateRequestSpan(j.trace.Root, j)
	ctx := telemetry.ContextWith(r.Context(), j.trace)

	// A cached result completes the job at admission: no queue slot, no
	// worker, one map lookup.
	if body, ok := s.lookupResult(ctx, hash); ok {
		s.registerJob(j)
		j.emit(Event{Name: StateQueued, Data: eventData{Job: j.id, State: StateQueued}})
		j.markStarted(now)
		s.sealTrace(j)
		s.emitRequestManifest(j, j.trace, nil)
		j.finish(body, true, time.Now())
		s.mAccepted.Inc()
		s.mCached.Inc()
		s.mDone.Inc()
		s.respondAccepted(w, j)
		return
	}

	s.registerJob(j)
	j.emit(Event{Name: StateQueued, Data: eventData{Job: j.id, State: StateQueued}})
	j.queueSpan = j.trace.Child(phaseQueueWait)
	if err := s.queue.Push(j); err != nil {
		s.dropJob(j.id)
		s.mRejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int(DefaultRetryAfter/time.Second)))
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	}
	s.mAccepted.Inc()
	s.respondAccepted(w, j)
}

// lookupResult probes the result cache under a cache_lookup span read
// from the request context.
func (s *Server) lookupResult(ctx context.Context, hash string) ([]byte, bool) {
	sp := telemetry.FromContext(ctx).Child(phaseCacheLookup)
	body, ok := s.results.Get(hash)
	sp.SetAttr("hit", strconv.FormatBool(ok))
	sp.End()
	return body, ok
}

// sealTrace ends the request trace, applies the slow-request check,
// and folds the phase durations into the cosimd_phase_* histograms.
// Must run before the terminal finish/fail event so GET /v1/sweeps/{id}
// only ever exposes sealed trees.
func (s *Server) sealTrace(j *job) {
	if j.trace == nil {
		return
	}
	j.trace.End()
	root := j.trace.Root
	if path := s.slow.maybeCapture(j.id, time.Duration(root.WallNS)); path != "" {
		j.setProfile(path)
		root.SetAttr("slow_profile", path)
	}
	s.recordRequestPhases(j, root)
}

// respondAccepted writes the 201 envelope.
func (s *Server) respondAccepted(w http.ResponseWriter, j *job) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/sweeps/"+j.id)
	w.WriteHeader(http.StatusCreated)
	json.NewEncoder(w).Encode(j.status())
}

// handleStatus is GET /v1/sweeps/{id}.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such sweep")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.status())
}

// handleEvents is GET /v1/sweeps/{id}/events: the SSE stream. The full
// history replays on attach, live events follow, and the stream closes
// after the terminal done/failed event. A reconnecting client that
// sends Last-Event-ID resumes exactly after the last frame it saw:
// event IDs are the 1-based positions in the job's append-only log, and
// subscribe hands back the history and the live registration under one
// lock, so the resumed stream neither drops nor duplicates events.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no such sweep")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	var lastID uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			lastID = n
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	history, live, cancel := j.subscribe()
	defer cancel()
	for _, ev := range history {
		if ev.ID <= lastID {
			continue
		}
		if err := writeSSE(w, ev); err != nil {
			return
		}
	}
	flusher.Flush()
	for {
		select {
		case ev, open := <-live:
			if !open {
				return // job was terminal at subscribe; history had the final event
			}
			if ev.ID <= lastID {
				continue // defensive: live IDs always exceed history's
			}
			if err := writeSSE(w, ev); err != nil {
				return
			}
			flusher.Flush()
			if ev.Name == StateDone || ev.Name == StateFailed {
				return
			}
		case <-r.Context().Done():
			return
		case <-s.shutdown:
			return
		}
	}
}

// writeSSE renders one frame in text/event-stream format, id field
// included so clients can resume via Last-Event-ID.
func writeSSE(w http.ResponseWriter, ev Event) error {
	data, err := json.Marshal(ev.Data)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Name, data)
	return err
}

// handleHealthz is GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}

// handleVersion is GET /v1/version.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"git_rev": telemetry.GitRev()})
}

// Statusz is the GET /v1/statusz body: the shared-state snapshot load
// generators read to compute dedupe ratios.
type Statusz struct {
	Jobs struct {
		Accepted uint64 `json:"accepted"`
		Done     uint64 `json:"done"`
		Failed   uint64 `json:"failed"`
		Cached   uint64 `json:"cached"`
		Rejected uint64 `json:"rejected"`
		Running  int64  `json:"running"`
	} `json:"jobs"`
	QueueDepth int            `json:"queue_depth"`
	Tenants    map[string]int `json:"tenant_queue_depths,omitempty"`
	// QueueWait holds per-tenant (plus "all") queue-wait percentiles
	// computed from the cosimd_phase_queue_wait_micros histograms.
	QueueWait   map[string]Percentiles `json:"queue_wait_micros,omitempty"`
	TraceStore  tracestore.Stats       `json:"trace_store"`
	ResultCache ResultCacheStats       `json:"result_cache"`
}

// handleStatusz is GET /v1/statusz.
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	var st Statusz
	st.Jobs.Accepted = s.mAccepted.Value()
	st.Jobs.Done = s.mDone.Value()
	st.Jobs.Failed = s.mFailed.Value()
	st.Jobs.Cached = s.mCached.Value()
	st.Jobs.Rejected = s.mRejected.Value()
	st.Jobs.Running = s.mRunning.Value()
	st.QueueDepth = s.queue.Depth()
	st.Tenants = s.queue.TenantDepths()
	st.QueueWait = s.phases.queueWaitPercentiles()
	st.TraceStore = s.store.StatsSnapshot()
	st.ResultCache = s.results.Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// nextID mints a job id: a monotonic sequence plus the spec hash
// prefix, so ids are unique and self-describing.
func (s *Server) nextID(hash string) string {
	s.mu.Lock()
	s.seq++
	n := s.seq
	s.mu.Unlock()
	return fmt.Sprintf("job-%06d-%s", n, hash[:8])
}

// registerJob records j and applies the retention bound: the oldest
// finished jobs past RetainJobs are dropped (running and queued jobs
// are never evicted).
func (s *Server) registerJob(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if len(s.order) <= s.cfg.RetainJobs {
		return
	}
	keep := s.order[:0]
	evictable := len(s.order) - s.cfg.RetainJobs
	for _, id := range s.order {
		old := s.jobs[id]
		if evictable > 0 && old != nil && old.isTerminal() {
			delete(s.jobs, id)
			evictable--
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
}

// dropJob removes a job that was never admitted.
func (s *Server) dropJob(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	if n := len(s.order); n > 0 && s.order[n-1] == id {
		s.order = s.order[:n-1]
	}
}

// lookup finds a job by id.
func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// isTerminal reports whether the job has emitted its final event.
func (j *job) isTerminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.isTerminalLocked()
}

// runJob executes one dequeued job on a worker: result-cache check,
// then ExecuteSpec against the shared tracestore with progress mapped
// onto job states and per-config SSE events.
func (s *Server) runJob(j *job) {
	j.markStarted(time.Now())
	j.queueSpan.End()
	if s.preRun != nil {
		s.preRun(j)
	}
	// The request trace rides a fresh context here — the submit
	// handler's context died with the 201 response, the job did not.
	ctx := telemetry.ContextWith(context.Background(), j.trace)
	hash := j.spec.Hash()
	// The result may have landed while this job sat in the queue
	// (another tenant ran the same spec first).
	if body, ok := s.lookupResult(ctx, hash); ok {
		s.sealTrace(j)
		s.emitRequestManifest(j, j.trace, nil)
		j.finish(body, true, time.Now())
		s.mCached.Inc()
		s.mDone.Inc()
		return
	}
	s.mRunning.Add(1)
	defer s.mRunning.Add(-1)
	res, err := ExecuteSpecCtx(ctx, j.spec,
		core.WithTraceReuse(s.store),
		core.WithTelemetry(s.sink),
		core.WithProgress(func(pr core.Progress) {
			switch pr.Phase {
			case core.PhaseCapture:
				j.setState(StateCapturing)
			case core.PhaseSample:
				j.setState(StateSampling)
			case core.PhaseReplay:
				j.setState(StateReplaying)
			case core.PhaseExecute:
				j.setState(StateRunning)
			case core.PhaseConfig:
				j.configDone(pr.Config, pr.Done, pr.Total)
			}
		}),
	)
	if err != nil {
		s.sealTrace(j)
		s.emitRequestManifest(j, j.trace, err)
		j.fail(err, time.Now())
		s.mFailed.Inc()
		return
	}
	body, err := json.Marshal(res)
	if err != nil {
		err = fmt.Errorf("marshal result: %w", err)
		s.sealTrace(j)
		s.emitRequestManifest(j, j.trace, err)
		j.fail(err, time.Now())
		s.mFailed.Inc()
		return
	}
	s.results.Put(hash, body)
	s.sealTrace(j)
	s.emitRequestManifest(j, j.trace, nil)
	j.finish(body, false, time.Now())
	s.mDone.Inc()
}
