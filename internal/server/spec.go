// Experiment specs: the wire form of one sweep request.
//
// A spec names everything that determines a CombinedSweep's results
// bit-for-bit — workload, dataset parameters, platform shape, the
// geometry grids, and the execution engine — plus the wall-clock-only
// knobs (shards, bus batch) that tune how fast the answer is computed
// without changing a single bit of it. The split matters: the identity
// fields feed the canonical content hash that keys the result cache,
// while the wall-clock knobs are deliberately excluded, so two tenants
// asking for the same experiment at different parallelism settings
// share one cached result.

package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"cmpmem/internal/cache"
	"cmpmem/internal/core"
	"cmpmem/internal/softsdv"
	"cmpmem/internal/workloads"
	"cmpmem/internal/workloads/registry"
)

// Decode limits: a spec is a small description of work, never bulk
// data, so the bounds are generous for real use and tight for abuse.
const (
	// MaxSpecBytes bounds the request body.
	MaxSpecBytes = 1 << 20
	// MaxSpecConfigs bounds the flattened geometry grid.
	MaxSpecConfigs = 256
	// MaxThreads bounds the virtual core count (the projection studies
	// go to 128; 512 leaves headroom without inviting absurd builds).
	MaxThreads = 512
	// MaxScale bounds the footprint scale (1.0 = paper-sized).
	MaxScale = 4.0
	// maxTenantLen bounds the X-Tenant header.
	maxTenantLen = 64
)

// SweepSpec is one sweep request: the JSON body of POST /v1/sweeps and
// the input of cosim's `sweep` subcommand. Zero values select the
// documented defaults (Normalize makes them explicit).
type SweepSpec struct {
	// Workload is the registry name ("FIMI", "SNP", ...; case-insensitive).
	Workload string `json:"workload"`
	// Seed and Scale are the dataset parameters (workloads.Params).
	Seed  int64   `json:"seed"`
	Scale float64 `json:"scale,omitempty"`
	// Platform shapes the virtual CMP.
	Platform PlatformSpec `json:"platform"`
	// Grids are the geometry grids to answer; results mirror them
	// element for element (CombinedSweep's contract).
	Grids [][]ConfigSpec `json:"grids"`
	// Engine selects the sweep execution engine: "auto" (default),
	// "emulate", or "oracle". Results are bit-identical across engines.
	Engine string `json:"engine,omitempty"`
	// Sampling selects the accuracy tier: "off" (default, exact) or
	// "fast" (representative-interval sampling with confidence
	// intervals). Unlike Engine it CHANGES the numbers, so it is part of
	// the spec's identity — sampled and exact results never share a
	// cache entry.
	Sampling string `json:"sampling,omitempty"`
	// Shards and Batch are wall-clock knobs (intra-run bank sharding,
	// batched bus delivery). They never change results and are excluded
	// from the content hash; 0 defers to the server's defaults.
	Shards int `json:"shards,omitempty"`
	Batch  int `json:"batch,omitempty"`
}

// PlatformSpec mirrors core.PlatformConfig on the wire.
type PlatformSpec struct {
	// Threads is the virtual core count (0 selects the 8-core SCMP).
	Threads int `json:"threads"`
	// Quantum is the DEX slice in instructions (0 = default).
	Quantum uint64 `json:"quantum,omitempty"`
	// Noise injects host bus noise between slices.
	Noise int `json:"noise,omitempty"`
	// Seed drives the platform's noise generator.
	Seed int64 `json:"seed,omitempty"`
}

// ConfigSpec mirrors cache.Config on the wire.
type ConfigSpec struct {
	Name       string `json:"name,omitempty"`
	SizeBytes  uint64 `json:"size_bytes"`
	LineSize   uint64 `json:"line_size"`
	Assoc      int    `json:"assoc"`
	Repl       string `json:"repl,omitempty"` // "lru" (default) | "fifo" | "random"
	SectorSize uint64 `json:"sector_size,omitempty"`
}

// parseRepl maps the wire vocabulary to a replacement policy.
func parseRepl(s string) (cache.Policy, error) {
	switch strings.ToLower(s) {
	case "", "lru":
		return cache.LRU, nil
	case "fifo":
		return cache.FIFO, nil
	case "random":
		return cache.Random, nil
	default:
		return 0, fmt.Errorf("unknown replacement policy %q (want lru, fifo, or random)", s)
	}
}

// replName renders a policy back into the wire vocabulary.
func replName(p cache.Policy) string { return strings.ToLower(p.String()) }

// DecodeSpec reads, normalizes, and validates one spec from r. The
// decoder is strict — unknown fields, trailing garbage, or any
// validation failure reject the spec with a descriptive error (the
// HTTP layer maps every error to 400; the decoder never panics, which
// FuzzSpecDecode enforces).
func DecodeSpec(r io.Reader) (*SweepSpec, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxSpecBytes+1))
	dec.DisallowUnknownFields()
	spec := &SweepSpec{}
	if err := dec.Decode(spec); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("spec: trailing data after JSON object")
	}
	spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// Normalize fills defaulted fields in place so that behaviorally
// identical specs (zero vs explicit defaults, case-folded names) hash
// identically. Idempotent.
func (s *SweepSpec) Normalize() {
	s.Workload = strings.ToUpper(strings.TrimSpace(s.Workload))
	if s.Scale == 0 {
		s.Scale = workloads.DefaultScale
	}
	if s.Platform.Threads == 0 {
		s.Platform.Threads = 8
	}
	if s.Platform.Quantum == 0 {
		s.Platform.Quantum = softsdv.DefaultQuantum
	}
	if s.Engine == "" {
		s.Engine = core.EngineAuto.String()
	}
	s.Engine = strings.ToLower(s.Engine)
	if s.Sampling == "" {
		s.Sampling = core.SamplingOff.String()
	}
	s.Sampling = strings.ToLower(s.Sampling)
	for gi := range s.Grids {
		for ci := range s.Grids[gi] {
			c := &s.Grids[gi][ci]
			if p, err := parseRepl(c.Repl); err == nil {
				c.Repl = replName(p)
			}
			if c.Name == "" {
				c.Name = fmt.Sprintf("llc-%dB-%dB-%dw", c.SizeBytes, c.LineSize, c.Assoc)
			}
		}
	}
}

// Validate checks the normalized spec. It is cheap — no datasets are
// built, no memory proportional to the requested work is allocated —
// so the admission path can run it on every request.
func (s *SweepSpec) Validate() error {
	if s.Workload == "" {
		return fmt.Errorf("spec: missing workload")
	}
	found := false
	for _, n := range registry.Names() {
		if n == s.Workload {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("spec: unknown workload %q (want one of %s)",
			s.Workload, strings.Join(registry.Names(), ", "))
	}
	if !(s.Scale > 0 && s.Scale <= MaxScale) {
		return fmt.Errorf("spec: scale %v out of range (0, %v]", s.Scale, MaxScale)
	}
	if s.Platform.Threads < 1 || s.Platform.Threads > MaxThreads {
		return fmt.Errorf("spec: platform threads %d out of range [1, %d]", s.Platform.Threads, MaxThreads)
	}
	if s.Platform.Noise < 0 || s.Platform.Noise > 1<<20 {
		return fmt.Errorf("spec: platform noise %d out of range [0, %d]", s.Platform.Noise, 1<<20)
	}
	if _, err := core.ParseEngine(s.Engine); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if _, err := core.ParseSampling(s.Sampling); err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if s.Shards < 0 || s.Shards > 64 {
		return fmt.Errorf("spec: shards %d out of range [0, 64]", s.Shards)
	}
	if s.Batch < 0 || s.Batch > 1<<20 {
		return fmt.Errorf("spec: batch %d out of range [0, %d]", s.Batch, 1<<20)
	}
	if len(s.Grids) == 0 {
		return fmt.Errorf("spec: no geometry grids")
	}
	total := 0
	for gi, g := range s.Grids {
		if len(g) == 0 {
			return fmt.Errorf("spec: grid %d is empty", gi)
		}
		total += len(g)
		for ci, c := range g {
			cfg, err := c.cacheConfig()
			if err != nil {
				return fmt.Errorf("spec: grid %d config %d: %w", gi, ci, err)
			}
			if err := cfg.Validate(); err != nil {
				return fmt.Errorf("spec: grid %d config %d: %w", gi, ci, err)
			}
		}
	}
	if total > MaxSpecConfigs {
		return fmt.Errorf("spec: %d configs exceed the per-sweep limit of %d", total, MaxSpecConfigs)
	}
	return nil
}

// cacheConfig converts one wire config into the simulator's type.
func (c ConfigSpec) cacheConfig() (cache.Config, error) {
	repl, err := parseRepl(c.Repl)
	if err != nil {
		return cache.Config{}, err
	}
	return cache.Config{
		Name:       c.Name,
		Size:       c.SizeBytes,
		LineSize:   c.LineSize,
		Assoc:      c.Assoc,
		Repl:       repl,
		SectorSize: c.SectorSize,
	}, nil
}

// ConfigCount returns the flattened grid size.
func (s *SweepSpec) ConfigCount() int {
	n := 0
	for _, g := range s.Grids {
		n += len(g)
	}
	return n
}

// specIdentity is the canonical content of a spec: every field that
// determines the result bit-for-bit, and nothing else. Shards and
// Batch are wall-clock knobs and stay out; Engine stays in (engines
// are proven bit-identical, but keying by the full request keeps a
// cache entry auditable against exactly the spec that produced it).
type specIdentity struct {
	Workload string         `json:"w"`
	Seed     int64          `json:"s"`
	Scale    float64        `json:"sc"`
	Platform PlatformSpec   `json:"p"`
	Grids    [][]ConfigSpec `json:"g"`
	Engine   string         `json:"e"`
	// Sampling is identity, not a wall-clock knob: a sampled result is
	// an estimate and must never be served for an exact request (or vice
	// versa). Omitted when off so pre-sampling cache keys stay stable.
	Sampling string `json:"sm,omitempty"`
}

// Hash returns the canonical content hash of the normalized spec — the
// key of the result cache. Two specs hash equal iff their identity
// fields (workload, params, platform, seed, geometry grids, engine)
// are equal after normalization.
func (s *SweepSpec) Hash() string {
	id := specIdentity{
		Workload: s.Workload,
		Seed:     s.Seed,
		Scale:    s.Scale,
		Platform: s.Platform,
		Grids:    s.Grids,
		Engine:   s.Engine,
	}
	if s.Sampling != core.SamplingOff.String() {
		id.Sampling = s.Sampling
	}
	b, err := json.Marshal(id)
	if err != nil {
		// Marshal of a plain value type cannot fail; keep the signature
		// ergonomic and make any future regression loud.
		panic("server: spec hash: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:16])
}

// runArgs lowers the spec into CombinedSweep's argument list plus the
// run options the spec itself carries (engine, then the wall-clock
// knobs when explicitly set).
func (s *SweepSpec) runArgs() (name string, p workloads.Params, pc core.PlatformConfig, grids [][]cache.Config, opts []core.RunOption, err error) {
	engine, err := core.ParseEngine(s.Engine)
	if err != nil {
		return "", workloads.Params{}, core.PlatformConfig{}, nil, nil, err
	}
	grids = make([][]cache.Config, len(s.Grids))
	for gi, g := range s.Grids {
		grids[gi] = make([]cache.Config, len(g))
		for ci, c := range g {
			if grids[gi][ci], err = c.cacheConfig(); err != nil {
				return "", workloads.Params{}, core.PlatformConfig{}, nil, nil, err
			}
		}
	}
	sampling, err := core.ParseSampling(s.Sampling)
	if err != nil {
		return "", workloads.Params{}, core.PlatformConfig{}, nil, nil, err
	}
	opts = []core.RunOption{core.WithEngine(engine)}
	if sampling != core.SamplingOff {
		opts = append(opts, core.WithSampling(sampling))
	}
	if s.Shards > 0 {
		opts = append(opts, core.WithBankShards(s.Shards))
	}
	if s.Batch > 0 {
		opts = append(opts, core.WithBusBatch(s.Batch))
	}
	return s.Workload,
		workloads.Params{Seed: s.Seed, Scale: s.Scale},
		core.PlatformConfig{
			Threads:       s.Platform.Threads,
			Quantum:       s.Platform.Quantum,
			HostNoiseRefs: s.Platform.Noise,
			Seed:          s.Platform.Seed,
		},
		grids, opts, nil
}
