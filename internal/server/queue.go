// Admission control and per-tenant weighted fair queuing.
//
// The queue is the server's only unbounded-pressure point, so it is
// bounded: past the global cap, Push fails and the HTTP layer answers
// 429 with Retry-After — load sheds at the door instead of growing an
// invisible backlog. Under the cap, jobs wait in per-tenant FIFOs and
// workers pop by deficit round robin: each scheduling round grants
// every backlogged tenant credits equal to its weight, so over time a
// weight-2 tenant receives twice the service of a weight-1 tenant and
// no tenant starves regardless of how fast another one submits.

package server

import (
	"errors"
	"fmt"
	"sync"

	"cmpmem/internal/telemetry"
)

// ErrQueueFull is returned by Push when admission control rejects a
// job (the HTTP layer maps it to 429 + Retry-After).
var ErrQueueFull = errors.New("server: sweep queue is full")

// errQueueClosed is returned by Push after Close.
var errQueueClosed = errors.New("server: sweep queue is closed")

// DefaultQueueCap is the default global queue bound.
const DefaultQueueCap = 256

// tenantQueue is one tenant's FIFO plus its DRR scheduling state.
type tenantQueue struct {
	jobs    []*job
	weight  int
	credits int
	gauge   *telemetry.Gauge // cosimd_tenant_queue_depth_<tenant>
}

// fairQueue is the bounded, weighted-fair job queue.
type fairQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	cap     int
	size    int
	closed  bool
	weights map[string]int // configured tenant weights (default 1)
	tenants map[string]*tenantQueue
	active  []string // tenants with queued work, in rotation order
	rr      int      // rotation cursor into active
	reg     *telemetry.Registry
	depth   *telemetry.Gauge // cosimd_queue_depth
}

// newFairQueue builds a queue with the given global cap (0 selects
// DefaultQueueCap) and tenant weights (nil = every tenant weight 1).
func newFairQueue(cap int, weights map[string]int, reg *telemetry.Registry) *fairQueue {
	if cap <= 0 {
		cap = DefaultQueueCap
	}
	q := &fairQueue{
		cap:     cap,
		weights: weights,
		tenants: make(map[string]*tenantQueue),
		reg:     reg,
		depth:   reg.Gauge("cosimd_queue_depth"),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// tenantWeight resolves a tenant's configured weight (>= 1).
func (q *fairQueue) tenantWeight(tenant string) int {
	if w, ok := q.weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}

// sanitizeTenant maps a tenant name into the metric-name charset.
func sanitizeTenant(t string) string {
	b := []byte(t)
	for i, c := range b {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
		if !ok {
			b[i] = '_'
		}
	}
	return string(b)
}

// Push enqueues j for its tenant, or fails with ErrQueueFull when the
// global cap is reached (admission control never blocks the caller).
func (q *fairQueue) Push(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errQueueClosed
	}
	if q.size >= q.cap {
		return ErrQueueFull
	}
	tq, ok := q.tenants[j.tenant]
	if !ok {
		tq = &tenantQueue{
			weight: q.tenantWeight(j.tenant),
			gauge:  q.reg.Gauge("cosimd_tenant_queue_depth_" + sanitizeTenant(j.tenant)),
		}
		q.tenants[j.tenant] = tq
	}
	if len(tq.jobs) == 0 {
		q.active = append(q.active, j.tenant)
	}
	tq.jobs = append(tq.jobs, j)
	q.size++
	tq.gauge.Set(int64(len(tq.jobs)))
	q.depth.Set(int64(q.size))
	q.cond.Signal()
	return nil
}

// Pop blocks until a job is available and returns the next one under
// deficit round robin, or (nil, false) once the queue is closed and
// drained. Single- and multi-consumer safe.
func (q *fairQueue) Pop() (*job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.size == 0 {
			if q.closed {
				return nil, false
			}
			q.cond.Wait()
			continue
		}
		if j := q.popLocked(); j != nil {
			return j, true
		}
		// Every backlogged tenant has exhausted its credits: start a new
		// scheduling round by replenishing credits to the weights.
		for _, t := range q.active {
			tq := q.tenants[t]
			tq.credits = tq.weight
		}
	}
}

// popLocked serves one job from the first tenant (in rotation order
// from the cursor) that has both work and credits, or nil when the
// round is exhausted.
func (q *fairQueue) popLocked() *job {
	n := len(q.active)
	for i := 0; i < n; i++ {
		idx := (q.rr + i) % n
		t := q.active[idx]
		tq := q.tenants[t]
		if tq.credits <= 0 {
			continue
		}
		tq.credits--
		j := tq.jobs[0]
		tq.jobs = tq.jobs[1:]
		q.size--
		tq.gauge.Set(int64(len(tq.jobs)))
		q.depth.Set(int64(q.size))
		if len(tq.jobs) == 0 {
			// Tenant drained: leave the rotation (it re-enters on its
			// next Push with fresh position and zero credits, so a
			// bursty tenant cannot bank service from an idle period).
			tq.credits = 0
			q.active = append(q.active[:idx:idx], q.active[idx+1:]...)
			if n--; n > 0 {
				q.rr = idx % n
			} else {
				q.rr = 0
			}
		} else {
			// Stay on this tenant while it has credits, then move on.
			if tq.credits == 0 {
				q.rr = (idx + 1) % n
			} else {
				q.rr = idx
			}
		}
		return j
	}
	return nil
}

// Depth returns the current queued-job count.
func (q *fairQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// TenantDepths snapshots the per-tenant queue depths.
func (q *fairQueue) TenantDepths() map[string]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make(map[string]int, len(q.tenants))
	for t, tq := range q.tenants {
		if len(tq.jobs) > 0 {
			out[t] = len(tq.jobs)
		}
	}
	return out
}

// Close rejects future pushes, wakes every blocked Pop, and returns
// the jobs still queued so the caller can fail them loudly.
func (q *fairQueue) Close() []*job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	var drained []*job
	for _, t := range q.active {
		tq := q.tenants[t]
		drained = append(drained, tq.jobs...)
		tq.jobs = nil
		tq.gauge.Set(0)
	}
	q.active = nil
	q.size = 0
	q.depth.Set(0)
	q.cond.Broadcast()
	return drained
}

// String renders the queue state for diagnostics.
func (q *fairQueue) String() string {
	q.mu.Lock()
	defer q.mu.Unlock()
	return fmt.Sprintf("fairQueue{size=%d cap=%d tenants=%d}", q.size, q.cap, len(q.active))
}
