package cache

import (
	"math/rand"
	"reflect"
	"testing"

	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
)

// randRefs builds a reference stream with the pathologies the batch
// path must route correctly: mixed cores (run-length flushing), mixed
// kinds, straddling references, and zero sizes.
func randRefs(rng *rand.Rand, n int) []trace.Ref {
	refs := make([]trace.Ref, n)
	core := uint8(0)
	for i := range refs {
		if rng.Intn(16) == 0 {
			core = uint8(rng.Intn(8))
		}
		kind := mem.Load
		if rng.Intn(4) == 0 {
			kind = mem.Store
		}
		size := uint8(1 << rng.Intn(4))
		switch rng.Intn(32) {
		case 0:
			size = 0 // zero-size clamp path
		case 1:
			size = 255 // straddler bait
		}
		refs[i] = trace.Ref{
			Addr: mem.Addr(rng.Intn(1 << 16)),
			Size: size,
			Kind: kind,
			Core: core,
		}
	}
	return refs
}

// TestAccessBatchEquivalence pins AccessBatch to the per-ref path:
// identical miss count, identical full Stats (including per-core
// arrays), and identical snapshots, across geometries, policies,
// sectored lines, and batch sizes.
func TestAccessBatchEquivalence(t *testing.T) {
	configs := []Config{
		{Name: "llc", Size: 1 << 14, LineSize: 64, Assoc: 16},
		{Name: "small", Size: 1 << 12, LineSize: 64, Assoc: 4},
		{Name: "fifo", Size: 1 << 13, LineSize: 64, Assoc: 8, Repl: FIFO},
		{Name: "rand", Size: 1 << 13, LineSize: 64, Assoc: 8, Repl: Random},
		{Name: "bigline", Size: 1 << 14, LineSize: 256, Assoc: 8},
		{Name: "sector", Size: 1 << 14, LineSize: 256, Assoc: 8, SectorSize: 64},
		{Name: "fullyassoc", Size: 1 << 13, LineSize: 64, Assoc: 0},
	}
	for _, cfg := range configs {
		for _, batch := range []int{1, 7, 64, 1024} {
			rng := rand.New(rand.NewSource(42))
			refs := randRefs(rng, 4096)

			serial, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			batched, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}

			wantMiss := 0
			for _, r := range refs {
				wantMiss += serial.AccessRef(r)
			}
			gotMiss := 0
			for off := 0; off < len(refs); off += batch {
				end := off + batch
				if end > len(refs) {
					end = len(refs)
				}
				gotMiss += batched.AccessBatch(refs[off:end])
			}

			if gotMiss != wantMiss {
				t.Errorf("%s batch=%d: misses %d, want %d", cfg.Name, batch, gotMiss, wantMiss)
			}
			if !reflect.DeepEqual(*serial.Stats(), *batched.Stats()) {
				t.Errorf("%s batch=%d: Stats diverge: %+v vs %+v",
					cfg.Name, batch, *serial.Stats(), *batched.Stats())
			}
			if !reflect.DeepEqual(serial.Snapshot(), batched.Snapshot()) {
				t.Errorf("%s batch=%d: snapshots diverge", cfg.Name, batch)
			}
		}
	}
}

// TestAccessBatchWithPrefetch exercises the pfLive-gated flag path: a
// prefetched line's first demand hit must clear the prefetch bit even
// when reached through the batch loop's load fast path.
func TestAccessBatchWithPrefetch(t *testing.T) {
	c, err := New(Config{Name: "pf", Size: 1 << 12, LineSize: 64, Assoc: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Fill(0x1000, 0) {
		t.Fatal("Fill of empty cache returned false")
	}
	if c.AccessBatch([]trace.Ref{{Addr: 0x1000, Size: 8, Kind: mem.Load, Core: 0}}) != 0 {
		t.Fatal("prefetched line should hit")
	}
	// The PF bit must have been cleared by the batch hit: a later
	// TouchPF reports no prefetch attribution.
	if _, pfHit := c.TouchPF(0x1000, mem.Load, 0); pfHit {
		t.Error("prefetch bit survived a demand hit through AccessBatch")
	}
}
