package cache

import (
	"math/rand"
	"testing"

	"cmpmem/internal/mem"
)

func sectoredCfg(lineSize, sectorSize uint64) Config {
	return Config{Name: "sec", Size: 16 * lineSize, LineSize: lineSize,
		Assoc: 4, SectorSize: sectorSize}
}

func TestSectorValidation(t *testing.T) {
	bad := []Config{
		sectoredCfg(256, 48),  // non-power-of-two sector
		sectoredCfg(256, 512), // sector > line
		{Name: "s", Size: 1 << 20, LineSize: 8192, Assoc: 4, SectorSize: 64}, // >64 sectors
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad sector config %d accepted", i)
		}
	}
	if err := sectoredCfg(256, 64).Validate(); err != nil {
		t.Errorf("valid sectored config rejected: %v", err)
	}
}

func TestSectorMissOnResidentLine(t *testing.T) {
	c, err := New(sectoredCfg(256, 64))
	if err != nil {
		t.Fatal(err)
	}
	// Touch sector 0 of line 0: tag miss + sector fetch.
	if m := c.Access(0, 8, mem.Load, 0); m != 1 {
		t.Fatalf("first access misses = %d", m)
	}
	// Same sector again: pure hit.
	if m := c.Access(8, 8, mem.Load, 0); m != 0 {
		t.Fatalf("same-sector access missed")
	}
	// Sector 2 of the same line: tag hit, sector miss.
	if m := c.Access(128, 8, mem.Load, 0); m != 1 {
		t.Fatalf("different-sector access misses = %d, want 1", m)
	}
	s := c.Stats()
	if s.SectorFetches != 2 {
		t.Errorf("sector fetches = %d, want 2", s.SectorFetches)
	}
	if s.TrafficBytes != 2*64 {
		t.Errorf("traffic = %d, want 128 (two 64B sectors)", s.TrafficBytes)
	}
}

// TestSectoringSavesTraffic: sparse accesses (one word per 256 B) on a
// 256 B-line cache move 4x less data when sectored at 64 B, while an
// unsectored cache pays the full line each time.
func TestSectoringSavesTraffic(t *testing.T) {
	plain, _ := New(Config{Name: "p", Size: 1 << 14, LineSize: 256, Assoc: 4})
	sect, _ := New(Config{Name: "s", Size: 1 << 14, LineSize: 256, Assoc: 4, SectorSize: 64})
	for i := 0; i < 1000; i++ {
		addr := mem.Addr(i * 256) // one access per line
		plain.Access(addr, 8, mem.Load, 0)
		sect.Access(addr, 8, mem.Load, 0)
	}
	pt, st := plain.Stats().TrafficBytes, sect.Stats().TrafficBytes
	if st*4 != pt {
		t.Errorf("sectored traffic %d, plain %d; want exactly 4x saving", st, pt)
	}
}

// TestSectoredKeepsSpatialLocality: dense streaming touches every
// sector, so sectored and plain caches end with the same traffic.
func TestSectoredDenseTrafficEqual(t *testing.T) {
	plain, _ := New(Config{Name: "p", Size: 1 << 14, LineSize: 256, Assoc: 4})
	sect, _ := New(Config{Name: "s", Size: 1 << 14, LineSize: 256, Assoc: 4, SectorSize: 64})
	for a := 0; a < 1<<16; a += 64 {
		plain.Access(mem.Addr(a), 8, mem.Load, 0)
		sect.Access(mem.Addr(a), 8, mem.Load, 0)
	}
	if plain.Stats().TrafficBytes != sect.Stats().TrafficBytes {
		t.Errorf("dense traffic differs: plain %d vs sectored %d",
			plain.Stats().TrafficBytes, sect.Stats().TrafficBytes)
	}
	// But the sectored cache pays more (sector) misses for the same
	// data, since each sector fetch counts.
	if sect.Stats().Misses < plain.Stats().Misses {
		t.Error("sectored cache cannot miss less on dense streams")
	}
}

// TestSectorEqualsLineDegenerates: SectorSize == LineSize must behave
// exactly like an unsectored cache.
func TestSectorEqualsLineDegenerates(t *testing.T) {
	plain, _ := New(Config{Name: "p", Size: 1 << 13, LineSize: 128, Assoc: 4})
	sect, _ := New(Config{Name: "s", Size: 1 << 13, LineSize: 128, Assoc: 4, SectorSize: 128})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20000; i++ {
		addr := mem.Addr(rng.Intn(1 << 15))
		kind := mem.Kind(rng.Intn(2))
		plain.Access(addr, 8, kind, 0)
		sect.Access(addr, 8, kind, 0)
	}
	ps, ss := plain.Stats(), sect.Stats()
	if ps.Misses != ss.Misses || ps.Accesses != ss.Accesses ||
		ps.TrafficBytes != ss.TrafficBytes {
		t.Errorf("degenerate sectoring differs: %+v vs %+v", ps.Misses, ss.Misses)
	}
}

// TestSectorStraddle: an access crossing a sector boundary touches both
// sectors.
func TestSectorStraddle(t *testing.T) {
	c, _ := New(sectoredCfg(256, 64))
	if m := c.Access(60, 8, mem.Load, 0); m != 2 {
		t.Errorf("sector-straddling access missed %d, want 2", m)
	}
	if c.Stats().Accesses != 2 {
		t.Errorf("straddle counts %d accesses, want 2", c.Stats().Accesses)
	}
}

func TestSectorFillMakesWholeLineValid(t *testing.T) {
	c, _ := New(sectoredCfg(256, 64))
	if !c.Fill(0, 0) {
		t.Fatal("fill failed")
	}
	// Every sector of the prefetched line must hit.
	for off := 0; off < 256; off += 64 {
		if m := c.Access(mem.Addr(off), 8, mem.Load, 0); m != 0 {
			t.Errorf("sector at %d missed after full-line prefetch", off)
		}
	}
}

func TestUnsectoredTrafficAccounting(t *testing.T) {
	c, _ := New(Config{Name: "t", Size: 128, LineSize: 64, Assoc: 1})
	c.Access(0, 8, mem.Store, 0)  // miss: +64 fill
	c.Access(128, 8, mem.Load, 0) // miss: +64 fill, evicts dirty: +64 wb
	s := c.Stats()
	if s.TrafficBytes != 3*64 {
		t.Errorf("traffic = %d, want 192", s.TrafficBytes)
	}
}
