// Package cache implements the configurable set-associative cache model
// that backs both the Dragonhead LLC emulator and the per-core L1/L2
// hierarchy. It matches the algorithm space of the paper's FPGA emulator:
// cache sizes from 1 MB-equivalent down to small L1s, line sizes from
// 64 B to 4096 B, and true-LRU replacement. Write policy is
// write-back/write-allocate.
//
// The set metadata is laid out data-oriented (struct-of-arrays): tags,
// replacement ranks, dirty/prefetch flags, and sector bitmasks live in
// separate flat arrays, so the lookup loop walks densely packed 8-byte
// tags (an 8-way set is exactly one cache line of tag state) instead of
// striding over 24-byte line structs. For associativities up to 64 the
// LRU state is a packed rank vector — one byte per way, eight ways per
// 64-bit word — updated with branch-free compare-mask (SWAR) arithmetic
// instead of rotating the ways: a hit promotes in O(assoc/8) ALU ops
// with no data movement, which is what lifts cache.Access into the
// several-hundred-Mrefs/s range (see DESIGN.md §11).
package cache

import (
	"fmt"
	"math/bits"

	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
)

// MaxCores bounds the per-core statistics arrays. The paper scales
// virtual platforms from 1 to 32 cores and projects to 128.
const MaxCores = 128

// Policy selects the replacement algorithm. The paper's FPGA emulator
// shipped with true LRU but could be reprogrammed with "different kinds
// of cache algorithms"; the software model offers the classic trio.
type Policy uint8

const (
	// LRU is true least-recently-used (the paper's configuration).
	LRU Policy = iota
	// FIFO evicts in fill order, ignoring hits.
	FIFO
	// Random evicts a pseudo-random way (deterministic xorshift).
	Random
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "Random"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Config describes one cache.
type Config struct {
	// Name labels the cache in reports ("LLC", "DL1", ...).
	Name string
	// Size is the total capacity in bytes.
	Size uint64
	// LineSize is the block size in bytes; must be a power of two.
	LineSize uint64
	// Assoc is the set associativity. 0 means fully associative.
	Assoc int
	// Repl is the replacement policy (zero value = LRU).
	Repl Policy
	// SectorSize, if non-zero, makes lines sectored: tags are kept at
	// LineSize granularity but data transfers at SectorSize granularity
	// with per-sector valid bits. Sectoring keeps the spatial-locality
	// benefit of the paper's large lines (Figure 7) without paying the
	// full-line bandwidth on sparse accesses. Must be a power of two
	// dividing LineSize, with at most 64 sectors per line.
	SectorSize uint64
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.Size == 0 {
		return fmt.Errorf("cache %q: size must be positive", c.Name)
	}
	if c.LineSize == 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %q: line size %d is not a power of two", c.Name, c.LineSize)
	}
	if c.LineSize < 2 {
		// A line shift of at least one guarantees block numbers never
		// reach the reserved invalid-tag sentinel.
		return fmt.Errorf("cache %q: line size %d below minimum of 2 bytes", c.Name, c.LineSize)
	}
	if c.Size%c.LineSize != 0 {
		return fmt.Errorf("cache %q: size %d not a multiple of line size %d", c.Name, c.Size, c.LineSize)
	}
	lines := c.Size / c.LineSize
	assoc := uint64(c.Assoc)
	if c.Assoc == 0 {
		assoc = lines // fully associative
	}
	if assoc > lines {
		return fmt.Errorf("cache %q: associativity %d exceeds %d lines", c.Name, c.Assoc, lines)
	}
	if lines%assoc != 0 {
		return fmt.Errorf("cache %q: %d lines not divisible by associativity %d", c.Name, lines, assoc)
	}
	sets := lines / assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d is not a power of two", c.Name, sets)
	}
	if c.Repl > Random {
		return fmt.Errorf("cache %q: unknown replacement policy %d", c.Name, c.Repl)
	}
	if c.SectorSize != 0 {
		if c.SectorSize&(c.SectorSize-1) != 0 {
			return fmt.Errorf("cache %q: sector size %d is not a power of two", c.Name, c.SectorSize)
		}
		if c.LineSize%c.SectorSize != 0 {
			return fmt.Errorf("cache %q: sector size %d does not divide line size %d",
				c.Name, c.SectorSize, c.LineSize)
		}
		if c.LineSize/c.SectorSize > 64 {
			return fmt.Errorf("cache %q: more than 64 sectors per line", c.Name)
		}
	}
	return nil
}

// Stats holds event counters for one cache, in aggregate and per core.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Loads      uint64
	Stores     uint64
	LoadMisses uint64
	Writebacks uint64
	Evictions  uint64
	// SectorFetches counts data transfers (one per miss; for sectored
	// caches, also one per sector fill into a resident line).
	SectorFetches uint64
	// TrafficBytes is the fill+writeback traffic this cache generated
	// toward the next level.
	TrafficBytes uint64

	// PerCore indexes accesses/misses by issuing core.
	PerCoreAccesses [MaxCores]uint64
	PerCoreMisses   [MaxCores]uint64
}

// MissRate returns misses/accesses, or 0 for an idle cache.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// MPKI returns misses per 1000 of the given instruction count.
func (s *Stats) MPKI(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.Misses) * 1000 / float64(instructions)
}

// invalidTag marks an empty way. Line numbers are addresses shifted
// right by lineShift >= 1 (Validate requires LineSize >= 2), so no
// reachable block number collides with the sentinel — which lets the
// lookup loop test one word per way instead of a valid bit plus a tag.
const invalidTag = ^uint64(0)

// Per-way flag bits (the flags array).
const (
	// flagDirty marks a modified line (write-back on eviction).
	flagDirty = 1 << 0
	// flagPF marks a line inserted by a prefetch and not yet demand-hit;
	// the timing model charges such first hits a late-prefetch latency.
	flagPF = 1 << 1
)

// SWAR constants for the packed-rank LRU update: one rank byte per way,
// eight ways per 64-bit word. All real ranks are < 128, so byte-wise
// unsigned compares reduce to masked subtraction with no inter-byte
// borrow.
const (
	swarL = 0x0101010101010101 // low bit of every byte
	swarH = 0x8080808080808080 // high bit of every byte
	// fillerRank pads the unused bytes of a set's last rank word when
	// assoc is not a multiple of 8. It is >= any real associativity
	// (<= 64) so filler bytes never compare below a promotion rank and
	// never match the victim rank — the SWAR ops leave them untouched.
	fillerRank = 0x7f
)

// maxRankAssoc bounds the packed-rank (SWAR) representation: rank bytes
// hold values < assoc, and the compare-mask arithmetic needs them under
// 0x80. Larger associativities (the fully-associative analysis configs)
// fall back to physically recency-ordered ways.
const maxRankAssoc = 64

// Cache is a set-associative write-back cache. The metadata is a
// struct-of-arrays: tags, flags, sector masks, and replacement ranks in
// separate flat slices indexed set*assoc+way.
//
// Two replacement-state representations share the layout:
//
//   - assoc <= 64 (every real LLC/L1/L2 geometry): ways sit at fixed
//     positions and recency lives in a packed rank vector, one byte per
//     way (0 = MRU, assoc-1 = the LRU victim). A hit promotes with
//     branch-free compare-mask arithmetic — for assoc <= 8 a single
//     64-bit word update — instead of rotating line metadata.
//   - assoc > 64: ways are kept physically in recency order (index 0 =
//     MRU) and a hit rotates the flat arrays, exactly the pre-rank
//     behavior.
//
// Both produce identical statistics and snapshots; the differential
// oracle suite in internal/verify pins them against an independent
// reference model.
type Cache struct {
	// Hot lookup state first: every access reads these, so they share
	// the Cache struct's first cache lines instead of sitting behind
	// the multi-KB Stats block.
	setMask   uint64
	lineShift uint
	assoc     int
	repl      Policy // copy of cfg.Repl on the hot line
	rankPath  bool   // packed-rank replacement state (assoc <= 64)
	rankWords int    // 64-bit rank words per set (rank path)
	// pfLive counts resident lines with the prefetch bit set. While it
	// is zero — always, unless a prefetcher is wired in front — a load
	// hit has no flag side effects (nothing to clear, nothing to
	// dirty), so the fast path skips the flags array read entirely.
	pfLive int

	tags    []uint64 // nsets*assoc block numbers (invalidTag = empty)
	flags   []uint8  // nsets*assoc flagDirty|flagPF bits
	sectors []uint64 // nsets*assoc per-sector valid masks; nil unless sectored
	ranks   []uint64 // nsets*rankWords packed rank bytes (rank path only)
	// mruTag/mru cache each set's most recent hit or fill (rank path
	// only): the block number and the way holding it. Fixed way
	// positions lose the old recency-ordered layout's property that
	// temporally local hits sit at scan index 0; the hint restores the
	// one-compare fast path — and because the hint holds the tag
	// itself, a repeat access is a single independent load from an
	// 8-byte-per-set array rather than a dependent walk into the tag
	// array. A hint hit under LRU needs no promotion: the hinted way
	// was rank 0 when hinted and only loses rank 0 to an event that
	// rewrites the hint (Invalidate clears it).
	mruTag []uint64
	mru    []uint8

	sectorShift uint   // == lineShift when unsectored
	secPerLine  uint64 // 1 when unsectored
	rng         uint64 // xorshift state for the Random policy
	cfg         Config
	stats       Stats
}

// New builds a cache from cfg. It returns an error if cfg is invalid.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lines := cfg.Size / cfg.LineSize
	assoc := cfg.Assoc
	if assoc == 0 {
		assoc = int(lines)
	}
	nsets := lines / uint64(assoc)
	c := &Cache{
		cfg:      cfg,
		repl:     cfg.Repl,
		assoc:    assoc,
		setMask:  nsets - 1,
		rankPath: assoc <= maxRankAssoc,
		rng:      cfg.Size ^ cfg.LineSize<<20 ^ 0x9E3779B97F4A7C15,
	}
	for s := cfg.LineSize; s > 1; s >>= 1 {
		c.lineShift++
	}
	c.sectorShift = c.lineShift
	c.secPerLine = 1
	if cfg.SectorSize != 0 {
		c.sectorShift = 0
		for s := cfg.SectorSize; s > 1; s >>= 1 {
			c.sectorShift++
		}
		c.secPerLine = cfg.LineSize / cfg.SectorSize
	}
	c.tags = make([]uint64, lines)
	c.flags = make([]uint8, lines)
	if c.secPerLine > 1 {
		c.sectors = make([]uint64, lines)
	}
	if c.rankPath {
		c.rankWords = (assoc + 7) / 8
		c.ranks = make([]uint64, nsets*uint64(c.rankWords))
		c.mruTag = make([]uint64, nsets)
		c.mru = make([]uint8, nsets)
	}
	c.clear()
	return c, nil
}

// clear resets the metadata arrays to the empty-cache state.
func (c *Cache) clear() {
	c.pfLive = 0
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	for i := range c.flags {
		c.flags[i] = 0
	}
	for i := range c.sectors {
		c.sectors[i] = 0
	}
	for i := range c.mruTag {
		c.mruTag[i] = invalidTag
		c.mru[i] = 0
	}
	if c.rankPath {
		nsets := len(c.tags) / c.assoc
		for s := 0; s < nsets; s++ {
			for k := 0; k < c.rankWords; k++ {
				var w uint64
				for b := 0; b < 8; b++ {
					way := k*8 + b
					r := uint64(fillerRank)
					if way < c.assoc {
						// Empty ways start in way order: way assoc-1 holds
						// the LRU rank, so fills consume invalid ways first
						// — the same victim sequence as recency-order fill.
						r = uint64(way)
					}
					w |= r << (8 * b)
				}
				c.ranks[s*c.rankWords+k] = w
			}
		}
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a pointer to the live counters. Callers must not retain
// it across Reset.
func (c *Cache) Stats() *Stats { return &c.stats }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	c.clear()
	c.stats = Stats{}
}

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr mem.Addr) mem.Addr {
	return addr &^ mem.Addr(c.cfg.LineSize-1)
}

// Access performs one reference of the given size, splitting it across
// cache lines (and sectors, when sectored) when it straddles a
// boundary. It returns the number of misses incurred.
func (c *Cache) Access(addr mem.Addr, size uint8, kind mem.Kind, core uint8) int {
	// One bound covers both off-ramps: a zero size wraps the end offset
	// to 2^64-1, and a straddling reference pushes it past the line —
	// either way accessSlow takes over (as it does for sectored caches).
	endOff := uint64(addr)&(c.cfg.LineSize-1) + uint64(size) - 1
	if c.sectors != nil || endOff >= c.cfg.LineSize {
		return c.accessSlow(addr, size, kind, core)
	}
	blk := uint64(addr) >> c.lineShift
	// The overwhelmingly common case — an unsectored cache and a
	// reference inside one line — runs here with no further calls:
	// the same counters, replacement updates, and flag effects as
	// touchLine with secBit 1, with the sector plumbing and the
	// prefetch-attribution return compiled out. Touch and AccessBatch
	// land here too, so the emulator's per-event cost is this body
	// plus one call frame.
	set := blk & c.setMask
	base := int(set) * c.assoc
	st := &c.stats
	st.Accesses++
	st.PerCoreAccesses[core]++
	if kind == mem.Load {
		st.Loads++
	} else {
		st.Stores++
	}

	if c.rankPath {
		if c.mruTag[set] == blk {
			// Repeat access: rank already 0 under LRU, no tag-array walk.
			if kind == mem.Load && c.pfLive == 0 {
				return 0 // no flag side effects possible
			}
			c.hitFlags(base+int(c.mru[set]), kind)
			return 0
		}
		tags := c.tags[base : base+c.assoc]
		for i, t := range tags {
			if t != blk {
				continue
			}
			if c.repl == LRU {
				c.promote(int(set), i)
			}
			c.mruTag[set] = blk
			c.mru[set] = uint8(i)
			if kind != mem.Load || c.pfLive != 0 {
				c.hitFlags(base+i, kind)
			}
			return 0
		}
	} else {
		tags := c.tags[base : base+c.assoc]
		for i, t := range tags {
			if t != blk {
				continue
			}
			if c.repl == LRU && i > 0 {
				c.rotate(base, i)
				i = 0
			}
			if kind != mem.Load || c.pfLive != 0 {
				c.hitFlags(base+i, kind)
			}
			return 0
		}
	}

	c.missAccounting(kind, core)
	st.SectorFetches++
	st.TrafficBytes += c.cfg.LineSize
	c.insert(int(set), base, blk, kind == mem.Store, false, 1)
	return 1
}

// accessSlow handles sectored caches, straddling references, and the
// zero-size clamp — everything off the Access fast path.
func (c *Cache) accessSlow(addr mem.Addr, size uint8, kind mem.Kind, core uint8) int {
	// A zero-size reference still probes one byte: without the clamp,
	// addr+size-1 underflows and either skips the access entirely or
	// (at addr 0) walks the whole address space.
	if size == 0 {
		size = 1
	}
	first := uint64(addr) >> c.sectorShift
	last := (uint64(addr) + uint64(size) - 1) >> c.sectorShift
	misses := 0
	for s := first; s <= last; s++ {
		blk := s >> (c.lineShift - c.sectorShift)
		secBit := uint64(1) << (s & (c.secPerLine - 1))
		if miss, _ := c.touchLine(blk, secBit, kind, core); miss {
			misses++
		}
	}
	return misses
}

// hitFlags applies the flag side effects of a hit on the way at flat
// index idx: clear the prefetch bit (bookkeeping pfLive), set dirty on
// stores, and write the byte back only when it changed.
func (c *Cache) hitFlags(idx int, kind mem.Kind) {
	f := c.flags[idx]
	nf := f &^ flagPF
	if kind == mem.Store {
		nf |= flagDirty
	}
	if nf != f {
		if f&flagPF != 0 {
			c.pfLive--
		}
		c.flags[idx] = nf
	}
}

// secBitOf returns the sector valid-bit for addr (1 when unsectored).
func (c *Cache) secBitOf(addr mem.Addr) uint64 {
	if c.secPerLine == 1 {
		return 1
	}
	return 1 << ((uint64(addr) >> c.sectorShift) & (c.secPerLine - 1))
}

// AccessRef performs the reference described by r.
func (c *Cache) AccessRef(r trace.Ref) int {
	return c.Access(r.Addr, r.Size, r.Kind, r.Core)
}

// AccessBatch applies a batch of references in order and returns the
// total misses incurred. It is the data-oriented hot-path entry point:
// the replay engine decodes 64 refs at a time from the v2 stream
// (trace.StreamPlayer.NextBatch) and applies them here. Final
// statistics are identical to calling AccessRef per element — but
// because no observer can read Stats mid-call, the access/load/store
// and per-core counters accumulate in registers across the batch
// (per-core as run-lengths, exploiting that the DEX scheduler emits
// long single-core runs) instead of paying three read-modify-write
// dependency chains through memory per reference.
func (c *Cache) AccessBatch(refs []trace.Ref) int {
	misses := 0
	if !c.rankPath || c.sectors != nil {
		for i := range refs {
			misses += c.Access(refs[i].Addr, refs[i].Size, refs[i].Kind, refs[i].Core)
		}
		return misses
	}
	st := &c.stats
	lineSize := c.cfg.LineSize
	var nAcc, nLoad, pcN uint64
	var pcCore uint8
	for i := range refs {
		r := &refs[i]
		endOff := uint64(r.Addr)&(lineSize-1) + uint64(r.Size) - 1
		if endOff >= lineSize {
			// Straddler or zero size: the slow path does its own exact
			// accounting, so this ref stays out of the deferred tallies.
			misses += c.accessSlow(r.Addr, r.Size, r.Kind, r.Core)
			continue
		}
		nAcc++
		if r.Kind == mem.Load {
			nLoad++
		}
		if r.Core != pcCore {
			st.PerCoreAccesses[pcCore] += pcN
			pcCore = r.Core
			pcN = 0
		}
		pcN++
		blk := uint64(r.Addr) >> c.lineShift
		set := blk & c.setMask
		if c.mruTag[set] == blk {
			if r.Kind == mem.Load && c.pfLive == 0 {
				continue
			}
			c.hitFlags(int(set)*c.assoc+int(c.mru[set]), r.Kind)
			continue
		}
		base := int(set) * c.assoc
		tags := c.tags[base : base+c.assoc]
		hit := false
		for w, t := range tags {
			if t != blk {
				continue
			}
			if c.repl == LRU {
				c.promote(int(set), w)
			}
			c.mruTag[set] = blk
			c.mru[set] = uint8(w)
			if r.Kind != mem.Load || c.pfLive != 0 {
				c.hitFlags(base+w, r.Kind)
			}
			hit = true
			break
		}
		if hit {
			continue
		}
		// Miss-side counters are rare enough to stay direct.
		st.Misses++
		st.PerCoreMisses[r.Core]++
		if r.Kind == mem.Load {
			st.LoadMisses++
		}
		st.SectorFetches++
		st.TrafficBytes += lineSize
		c.insert(int(set), base, blk, r.Kind == mem.Store, false, 1)
		misses++
	}
	st.Accesses += nAcc
	st.Loads += nLoad
	st.Stores += nAcc - nLoad
	st.PerCoreAccesses[pcCore] += pcN
	return misses
}

// Touch performs a line-granular access (used by prefetchers and by
// upper levels forwarding whole-line fills). It returns true on miss.
func (c *Cache) Touch(addr mem.Addr, kind mem.Kind, core uint8) bool {
	// A size-1 access is exactly a line-granular touch: same set, same
	// sector bit, never straddles.
	return c.Access(addr, 1, kind, core) != 0
}

// TouchPF is Touch plus prefetch attribution: pfHit reports that the
// access is the first demand hit on a line a prefetch brought in.
func (c *Cache) TouchPF(addr mem.Addr, kind mem.Kind, core uint8) (miss, pfHit bool) {
	return c.touchLine(uint64(addr)>>c.lineShift, c.secBitOf(addr), kind, core)
}

// Contains reports whether the line holding addr is resident, without
// touching LRU state or counters.
func (c *Cache) Contains(addr mem.Addr) bool {
	blk := uint64(addr) >> c.lineShift
	base := int(blk&c.setMask) * c.assoc
	tags := c.tags[base : base+c.assoc]
	for _, t := range tags {
		if t == blk {
			return true
		}
	}
	return false
}

// touchLine performs the lookup and returns (miss, first-hit-on-prefetch).
// secBit identifies the accessed sector within the line (always 1 for
// unsectored caches).
func (c *Cache) touchLine(blk uint64, secBit uint64, kind mem.Kind, core uint8) (bool, bool) {
	set := blk & c.setMask
	base := int(set) * c.assoc
	st := &c.stats
	st.Accesses++
	st.PerCoreAccesses[core]++
	if kind == mem.Load {
		st.Loads++
	} else {
		st.Stores++
	}

	tags := c.tags[base : base+c.assoc]
	way := -1
	if c.rankPath {
		// Repeat-access fast path (see the mruTag field comment).
		if c.mruTag[set] == blk {
			way = int(c.mru[set])
		} else {
			for i, t := range tags {
				if t != blk {
					continue
				}
				if c.repl == LRU {
					c.promote(int(set), i)
				}
				c.mruTag[set] = blk
				c.mru[set] = uint8(i)
				way = i
				break
			}
		}
	} else {
		for i, t := range tags {
			if t != blk {
				continue
			}
			if c.repl == LRU && i > 0 {
				c.rotate(base, i)
				i = 0
			}
			way = i
			break
		}
	}
	if way >= 0 {
		// Hit effects, inlined (hitWay stays the out-of-line shape for
		// the sectored tag-hit case): clear the prefetch bit, set dirty
		// on stores, and write the flag byte back only when it changed —
		// the steady state is a pure load.
		idx := base + way
		f := c.flags[idx]
		pfHit := f&flagPF != 0
		nf := f &^ flagPF
		if kind == mem.Store {
			nf |= flagDirty
		}
		if nf != f {
			if pfHit {
				c.pfLive--
			}
			c.flags[idx] = nf
		}
		if c.sectors != nil && c.sectors[idx]&secBit == 0 {
			// Tag hit, data absent: fetch just this sector.
			c.sectors[idx] |= secBit
			c.missAccounting(kind, core)
			st.SectorFetches++
			st.TrafficBytes += c.cfg.SectorSize
			return true, pfHit
		}
		return false, pfHit
	}

	// Miss: pick a victim per policy, evict, fill one sector (or the
	// whole line when unsectored).
	c.missAccounting(kind, core)
	st.SectorFetches++
	if c.secPerLine > 1 {
		st.TrafficBytes += c.cfg.SectorSize
	} else {
		st.TrafficBytes += c.cfg.LineSize
	}
	c.insert(int(set), base, blk, kind == mem.Store, false, secBit)
	return true, false
}

// promote moves way's rank to 0 (MRU), aging every way that was more
// recent. The update is compare-mask (SWAR) arithmetic over the set's
// packed rank words — for assoc <= 8, one word and no loop-carried
// branches: bytes below the hit rank gain one, the hit byte clears.
func (c *Cache) promote(set, way int) {
	base := set * c.rankWords
	word := base + way>>3
	shift := uint(way&7) * 8
	r := (c.ranks[word] >> shift) & 0xff
	if r == 0 {
		return // already MRU — the common case for these workloads
	}
	rb := uint64(swarL) * r
	for k := base; k < base+c.rankWords; k++ {
		x := c.ranks[k]
		lt := ^((x | swarH) - rb) & swarH // high bit set where rank < r
		c.ranks[k] = x + lt>>7
	}
	c.ranks[word] &^= 0xff << shift
}

// rotate moves way i of the set at base to slot 0, shifting [0,i) down —
// the recency-order path for assoc > 64. Operating on the flat arrays,
// the copies move 8-byte tags and 1-byte flags instead of line structs.
func (c *Cache) rotate(base, i int) {
	tag := c.tags[base+i]
	copy(c.tags[base+1:base+i+1], c.tags[base:base+i])
	c.tags[base] = tag
	f := c.flags[base+i]
	copy(c.flags[base+1:base+i+1], c.flags[base:base+i])
	c.flags[base] = f
	if c.sectors != nil {
		s := c.sectors[base+i]
		copy(c.sectors[base+1:base+i+1], c.sectors[base:base+i])
		c.sectors[base] = s
	}
}

// missAccounting bumps the miss counters.
func (c *Cache) missAccounting(kind mem.Kind, core uint8) {
	c.stats.Misses++
	c.stats.PerCoreMisses[core]++
	if kind == mem.Load {
		c.stats.LoadMisses++
	}
}

// insert places a new line in the set, evicting per the replacement
// policy. For LRU and FIFO the newcomer becomes rank 0 / slot 0 and
// every other way ages by one; Random replaces a pseudo-random way in
// place without touching recency state.
func (c *Cache) insert(set, base int, blk uint64, dirty, pf bool, secBits uint64) {
	var idx int
	switch {
	case c.repl == Random:
		idx = base + c.randWay(c.assoc)
	case c.rankPath:
		idx = base + c.victimAndAge(set)
	default:
		idx = base + c.assoc - 1
	}
	if c.rankPath {
		c.mruTag[set] = blk
		c.mru[set] = uint8(idx - base)
	}
	if c.tags[idx] != invalidTag {
		c.stats.Evictions++
		if c.flags[idx]&flagDirty != 0 {
			c.stats.Writebacks++
			c.stats.TrafficBytes += c.cfg.LineSize
		}
		if c.flags[idx]&flagPF != 0 {
			c.pfLive--
		}
	}
	if pf {
		c.pfLive++
	}
	if !c.rankPath && c.repl != Random {
		// Order path: shift the set down one slot and fill slot 0.
		copy(c.tags[base+1:base+c.assoc], c.tags[base:base+c.assoc-1])
		copy(c.flags[base+1:base+c.assoc], c.flags[base:base+c.assoc-1])
		if c.sectors != nil {
			copy(c.sectors[base+1:base+c.assoc], c.sectors[base:base+c.assoc-1])
		}
		idx = base
	}
	c.tags[idx] = blk
	var f uint8
	if dirty {
		f |= flagDirty
	}
	if pf {
		f |= flagPF
	}
	c.flags[idx] = f
	if c.sectors != nil {
		c.sectors[idx] = secBits
	}
}

// victimAndAge finds the LRU way (rank assoc-1), ages every real way by
// one, and returns the victim's way index with its rank cleared to 0 —
// the rank-path fill. One SWAR pass over the set's rank words does both
// the equality scan and the increment.
func (c *Cache) victimAndAge(set int) int {
	base := set * c.rankWords
	tgt := uint64(swarL) * uint64(c.assoc-1)
	ab := uint64(swarL) * uint64(c.assoc)
	victim := -1
	for k := 0; k < c.rankWords; k++ {
		x := c.ranks[base+k]
		if victim < 0 {
			// Zero-byte scan on x ^ tgt: exactly one byte matches (ranks
			// are a permutation of 0..assoc-1; filler bytes never match).
			y := x ^ tgt
			if z := (y - swarL) & ^y & swarH; z != 0 {
				victim = k*8 + bits.TrailingZeros64(z)/8
			}
		}
		lt := ^((x | swarH) - ab) & swarH // every real way ranks < assoc
		c.ranks[base+k] = x + lt>>7
	}
	c.ranks[base+victim>>3] &^= 0xff << (uint(victim&7) * 8)
	return victim
}

// randWay returns a deterministic pseudo-random way index.
func (c *Cache) randWay(n int) int {
	c.rng ^= c.rng << 13
	c.rng ^= c.rng >> 7
	c.rng ^= c.rng << 17
	return int(c.rng % uint64(n))
}

// Fill inserts the line containing addr as clean at MRU without touching
// the demand counters — the path prefetch fills take. It returns false
// if the line was already resident (the prefetch was useless); a
// resident line is left in place with its LRU position unchanged, as
// hardware prefetchers do not promote on redundant fills.
func (c *Cache) Fill(addr mem.Addr, core uint8) bool {
	blk := uint64(addr) >> c.lineShift
	set := blk & c.setMask
	base := int(set) * c.assoc
	tags := c.tags[base : base+c.assoc]
	for _, t := range tags {
		if t == blk {
			return false
		}
	}
	// Prefetches transfer the whole line (all sectors valid).
	c.stats.SectorFetches++
	c.stats.TrafficBytes += c.cfg.LineSize
	c.insert(int(set), base, blk, false, true, ^uint64(0))
	return true
}

// Invalidate drops the line containing addr if present, returning whether
// it was resident and dirty (i.e. a writeback would be required).
func (c *Cache) Invalidate(addr mem.Addr) (resident, dirty bool) {
	blk := uint64(addr) >> c.lineShift
	set := int(blk & c.setMask)
	base := set * c.assoc
	for i := 0; i < c.assoc; i++ {
		idx := base + i
		if c.tags[idx] != blk {
			continue
		}
		d := c.flags[idx]&flagDirty != 0
		if c.flags[idx]&flagPF != 0 {
			c.pfLive--
		}
		if c.rankPath {
			c.mruTag[set] = invalidTag
			// The dropped way becomes the next victim: ways behind it
			// close the gap, it takes rank assoc-1. Cold path — a plain
			// byte loop keeps it obvious.
			r := c.rankOf(set, i)
			for j := 0; j < c.assoc; j++ {
				if rj := c.rankOf(set, j); rj > r && rj < c.assoc {
					c.setRank(set, j, rj-1)
				}
			}
			c.setRank(set, i, c.assoc-1)
			c.tags[idx] = invalidTag
			c.flags[idx] = 0
			if c.sectors != nil {
				c.sectors[idx] = 0
			}
		} else {
			copy(c.tags[idx:base+c.assoc], c.tags[idx+1:base+c.assoc])
			copy(c.flags[idx:base+c.assoc], c.flags[idx+1:base+c.assoc])
			if c.sectors != nil {
				copy(c.sectors[idx:base+c.assoc], c.sectors[idx+1:base+c.assoc])
			}
			last := base + c.assoc - 1
			c.tags[last] = invalidTag
			c.flags[last] = 0
			if c.sectors != nil {
				c.sectors[last] = 0
			}
		}
		return true, d
	}
	return false, false
}

// rankOf reads the packed rank byte of one way (rank path only).
func (c *Cache) rankOf(set, way int) int {
	w := c.ranks[set*c.rankWords+way>>3]
	return int((w >> (uint(way&7) * 8)) & 0xff)
}

// setRank writes the packed rank byte of one way (rank path only).
func (c *Cache) setRank(set, way, r int) {
	idx := set*c.rankWords + way>>3
	shift := uint(way&7) * 8
	c.ranks[idx] = c.ranks[idx]&^(0xff<<shift) | uint64(r)<<shift
}

// Snapshot dumps the resident line tags of every set. For the LRU and
// FIFO policies the per-set order is the replacement order (index 0 =
// MRU / newest fill, last = victim); invalid ways are omitted. The
// independent reference model in internal/verify compares this against
// its own state for bit-exact agreement.
func (c *Cache) Snapshot() [][]uint64 {
	nsets := len(c.tags) / c.assoc
	out := make([][]uint64, nsets)
	byRank := c.rankPath && c.repl != Random
	scratch := make([]uint64, c.assoc)
	for s := 0; s < nsets; s++ {
		base := s * c.assoc
		if byRank {
			for i := range scratch {
				scratch[i] = invalidTag
			}
			for w := 0; w < c.assoc; w++ {
				scratch[c.rankOf(s, w)] = c.tags[base+w]
			}
		} else {
			copy(scratch, c.tags[base:base+c.assoc])
		}
		tags := make([]uint64, 0, c.assoc)
		for _, t := range scratch {
			if t != invalidTag {
				tags = append(tags, t)
			}
		}
		out[s] = tags
	}
	return out
}

// ResidentLines returns the number of valid lines (for occupancy tests).
func (c *Cache) ResidentLines() int {
	n := 0
	for _, t := range c.tags {
		if t != invalidTag {
			n++
		}
	}
	return n
}
