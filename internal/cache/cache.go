// Package cache implements the configurable set-associative cache model
// that backs both the Dragonhead LLC emulator and the per-core L1/L2
// hierarchy. It matches the algorithm space of the paper's FPGA emulator:
// cache sizes from 1 MB-equivalent down to small L1s, line sizes from
// 64 B to 4096 B, and true-LRU replacement. Write policy is
// write-back/write-allocate.
package cache

import (
	"fmt"

	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
)

// MaxCores bounds the per-core statistics arrays. The paper scales
// virtual platforms from 1 to 32 cores and projects to 128.
const MaxCores = 128

// Policy selects the replacement algorithm. The paper's FPGA emulator
// shipped with true LRU but could be reprogrammed with "different kinds
// of cache algorithms"; the software model offers the classic trio.
type Policy uint8

const (
	// LRU is true least-recently-used (the paper's configuration).
	LRU Policy = iota
	// FIFO evicts in fill order, ignoring hits.
	FIFO
	// Random evicts a pseudo-random way (deterministic xorshift).
	Random
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "Random"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// Config describes one cache.
type Config struct {
	// Name labels the cache in reports ("LLC", "DL1", ...).
	Name string
	// Size is the total capacity in bytes.
	Size uint64
	// LineSize is the block size in bytes; must be a power of two.
	LineSize uint64
	// Assoc is the set associativity. 0 means fully associative.
	Assoc int
	// Repl is the replacement policy (zero value = LRU).
	Repl Policy
	// SectorSize, if non-zero, makes lines sectored: tags are kept at
	// LineSize granularity but data transfers at SectorSize granularity
	// with per-sector valid bits. Sectoring keeps the spatial-locality
	// benefit of the paper's large lines (Figure 7) without paying the
	// full-line bandwidth on sparse accesses. Must be a power of two
	// dividing LineSize, with at most 64 sectors per line.
	SectorSize uint64
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.Size == 0 {
		return fmt.Errorf("cache %q: size must be positive", c.Name)
	}
	if c.LineSize == 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %q: line size %d is not a power of two", c.Name, c.LineSize)
	}
	if c.LineSize < 2 {
		// A line shift of at least one guarantees block numbers never
		// reach the reserved invalid-tag sentinel.
		return fmt.Errorf("cache %q: line size %d below minimum of 2 bytes", c.Name, c.LineSize)
	}
	if c.Size%c.LineSize != 0 {
		return fmt.Errorf("cache %q: size %d not a multiple of line size %d", c.Name, c.Size, c.LineSize)
	}
	lines := c.Size / c.LineSize
	assoc := uint64(c.Assoc)
	if c.Assoc == 0 {
		assoc = lines // fully associative
	}
	if assoc > lines {
		return fmt.Errorf("cache %q: associativity %d exceeds %d lines", c.Name, c.Assoc, lines)
	}
	if lines%assoc != 0 {
		return fmt.Errorf("cache %q: %d lines not divisible by associativity %d", c.Name, lines, assoc)
	}
	sets := lines / assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d is not a power of two", c.Name, sets)
	}
	if c.Repl > Random {
		return fmt.Errorf("cache %q: unknown replacement policy %d", c.Name, c.Repl)
	}
	if c.SectorSize != 0 {
		if c.SectorSize&(c.SectorSize-1) != 0 {
			return fmt.Errorf("cache %q: sector size %d is not a power of two", c.Name, c.SectorSize)
		}
		if c.LineSize%c.SectorSize != 0 {
			return fmt.Errorf("cache %q: sector size %d does not divide line size %d",
				c.Name, c.SectorSize, c.LineSize)
		}
		if c.LineSize/c.SectorSize > 64 {
			return fmt.Errorf("cache %q: more than 64 sectors per line", c.Name)
		}
	}
	return nil
}

// Stats holds event counters for one cache, in aggregate and per core.
type Stats struct {
	Accesses   uint64
	Misses     uint64
	Loads      uint64
	Stores     uint64
	LoadMisses uint64
	Writebacks uint64
	Evictions  uint64
	// SectorFetches counts data transfers (one per miss; for sectored
	// caches, also one per sector fill into a resident line).
	SectorFetches uint64
	// TrafficBytes is the fill+writeback traffic this cache generated
	// toward the next level.
	TrafficBytes uint64

	// PerCore indexes accesses/misses by issuing core.
	PerCoreAccesses [MaxCores]uint64
	PerCoreMisses   [MaxCores]uint64
}

// MissRate returns misses/accesses, or 0 for an idle cache.
func (s *Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// MPKI returns misses per 1000 of the given instruction count.
func (s *Stats) MPKI(instructions uint64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(s.Misses) * 1000 / float64(instructions)
}

// invalidTag marks an empty way. Line numbers are addresses shifted
// right by lineShift >= 1 (Validate requires LineSize >= 2), so no
// reachable block number collides with the sentinel — which lets the
// lookup loop test one word per way instead of a valid bit plus a tag.
const invalidTag = ^uint64(0)

// line is one cache line's metadata. An empty way holds invalidTag.
type line struct {
	tag   uint64
	dirty bool
	// pf marks a line inserted by a prefetch and not yet demand-hit;
	// the timing model charges such first hits a late-prefetch latency.
	pf bool
	// sectors is the per-sector valid bitmask (sectored caches only;
	// all-ones semantics for unsectored lines are implicit).
	sectors uint64
}

// Cache is a set-associative write-back cache with true-LRU replacement.
// Within each set, ways are kept in recency order (index 0 = MRU), which
// makes LRU exact and keeps lookups branch-cheap for the small
// associativities used here.
type Cache struct {
	cfg         Config
	lineShift   uint
	sectorShift uint   // == lineShift when unsectored
	secPerLine  uint64 // 1 when unsectored
	setMask     uint64
	assoc       int
	sets        [][]line
	stats       Stats
	rng         uint64 // xorshift state for the Random policy
}

// New builds a cache from cfg. It returns an error if cfg is invalid.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	lines := cfg.Size / cfg.LineSize
	assoc := cfg.Assoc
	if assoc == 0 {
		assoc = int(lines)
	}
	nsets := lines / uint64(assoc)
	c := &Cache{
		cfg:     cfg,
		assoc:   assoc,
		setMask: nsets - 1,
		sets:    make([][]line, nsets),
		rng:     cfg.Size ^ cfg.LineSize<<20 ^ 0x9E3779B97F4A7C15,
	}
	for s := cfg.LineSize; s > 1; s >>= 1 {
		c.lineShift++
	}
	c.sectorShift = c.lineShift
	c.secPerLine = 1
	if cfg.SectorSize != 0 {
		c.sectorShift = 0
		for s := cfg.SectorSize; s > 1; s >>= 1 {
			c.sectorShift++
		}
		c.secPerLine = cfg.LineSize / cfg.SectorSize
	}
	backing := make([]line, lines)
	for i := range backing {
		backing[i].tag = invalidTag
	}
	for i := range c.sets {
		c.sets[i] = backing[uint64(i)*uint64(assoc) : uint64(i+1)*uint64(assoc)]
	}
	return c, nil
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a pointer to the live counters. Callers must not retain
// it across Reset.
func (c *Cache) Stats() *Stats { return &c.stats }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = line{tag: invalidTag}
		}
	}
	c.stats = Stats{}
}

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr mem.Addr) mem.Addr {
	return addr &^ mem.Addr(c.cfg.LineSize-1)
}

// Access performs one reference of the given size, splitting it across
// cache lines (and sectors, when sectored) when it straddles a
// boundary. It returns the number of misses incurred.
func (c *Cache) Access(addr mem.Addr, size uint8, kind mem.Kind, core uint8) int {
	// A zero-size reference still probes one byte: without the clamp,
	// addr+size-1 underflows and either skips the access entirely or
	// (at addr 0) walks the whole address space.
	if size == 0 {
		size = 1
	}
	first := uint64(addr) >> c.sectorShift
	last := (uint64(addr) + uint64(size) - 1) >> c.sectorShift
	misses := 0
	for s := first; s <= last; s++ {
		blk := s >> (c.lineShift - c.sectorShift)
		secBit := uint64(1) << (s & (c.secPerLine - 1))
		if miss, _ := c.touchLine(blk, secBit, kind, core); miss {
			misses++
		}
	}
	return misses
}

// secBitOf returns the sector valid-bit for addr (1 when unsectored).
func (c *Cache) secBitOf(addr mem.Addr) uint64 {
	if c.secPerLine == 1 {
		return 1
	}
	return 1 << ((uint64(addr) >> c.sectorShift) & (c.secPerLine - 1))
}

// AccessRef performs the reference described by r.
func (c *Cache) AccessRef(r trace.Ref) int {
	return c.Access(r.Addr, r.Size, r.Kind, r.Core)
}

// Touch performs a line-granular access (used by prefetchers and by
// upper levels forwarding whole-line fills). It returns true on miss.
func (c *Cache) Touch(addr mem.Addr, kind mem.Kind, core uint8) bool {
	miss, _ := c.touchLine(uint64(addr)>>c.lineShift, c.secBitOf(addr), kind, core)
	return miss
}

// TouchPF is Touch plus prefetch attribution: pfHit reports that the
// access is the first demand hit on a line a prefetch brought in.
func (c *Cache) TouchPF(addr mem.Addr, kind mem.Kind, core uint8) (miss, pfHit bool) {
	return c.touchLine(uint64(addr)>>c.lineShift, c.secBitOf(addr), kind, core)
}

// Contains reports whether the line holding addr is resident, without
// touching LRU state or counters.
func (c *Cache) Contains(addr mem.Addr) bool {
	blk := uint64(addr) >> c.lineShift
	set := c.sets[blk&c.setMask]
	for i := range set {
		if set[i].tag == blk {
			return true
		}
	}
	return false
}

// touchLine performs the lookup and returns (miss, first-hit-on-prefetch).
// secBit identifies the accessed sector within the line (always 1 for
// unsectored caches).
func (c *Cache) touchLine(blk uint64, secBit uint64, kind mem.Kind, core uint8) (bool, bool) {
	set := c.sets[blk&c.setMask]
	st := &c.stats
	st.Accesses++
	st.PerCoreAccesses[core]++
	if kind == mem.Load {
		st.Loads++
	} else {
		st.Stores++
	}

	for i := range set {
		if set[i].tag != blk {
			continue
		}
		if c.cfg.Repl == LRU && i > 0 {
			// Rotate [0,i] right to move way i to MRU. The i == 0 fast
			// path (the common case for these workloads) skips the copy.
			hit := set[i]
			copy(set[1:i+1], set[0:i])
			set[0] = hit
			return c.hitLine(&set[0], secBit, kind, core)
		}
		return c.hitLine(&set[i], secBit, kind, core)
	}

	// Miss: pick a victim per policy, evict, fill one sector (or the
	// whole line when unsectored).
	c.missAccounting(kind, core)
	st.SectorFetches++
	if c.secPerLine > 1 {
		st.TrafficBytes += c.cfg.SectorSize
	} else {
		st.TrafficBytes += c.cfg.LineSize
	}
	c.insert(set, line{tag: blk, dirty: kind == mem.Store, sectors: secBit})
	return true, false
}

// hitLine applies the hit-side effects to the resident line l and
// returns (sector-miss, first-hit-on-prefetch).
func (c *Cache) hitLine(l *line, secBit uint64, kind mem.Kind, core uint8) (bool, bool) {
	pfHit := l.pf
	l.pf = false
	if kind == mem.Store {
		l.dirty = true
	}
	if c.secPerLine > 1 && l.sectors&secBit == 0 {
		// Tag hit, data absent: fetch just this sector.
		l.sectors |= secBit
		c.missAccounting(kind, core)
		c.stats.SectorFetches++
		c.stats.TrafficBytes += c.cfg.SectorSize
		return true, pfHit
	}
	return false, pfHit
}

// missAccounting bumps the miss counters.
func (c *Cache) missAccounting(kind mem.Kind, core uint8) {
	c.stats.Misses++
	c.stats.PerCoreMisses[core]++
	if kind == mem.Load {
		c.stats.LoadMisses++
	}
}

// insert places a new line, evicting per the replacement policy. For
// LRU and FIFO the set is kept in recency/fill order (slot 0 newest,
// last slot the victim); Random replaces in place.
func (c *Cache) insert(set []line, nl line) {
	victimIdx := len(set) - 1
	if c.cfg.Repl == Random {
		victimIdx = c.randWay(len(set))
	}
	victim := set[victimIdx]
	if victim.tag != invalidTag {
		c.stats.Evictions++
		if victim.dirty {
			c.stats.Writebacks++
			c.stats.TrafficBytes += c.cfg.LineSize
		}
	}
	if c.cfg.Repl == Random {
		set[victimIdx] = nl
		return
	}
	copy(set[1:], set[0:len(set)-1])
	set[0] = nl
}

// randWay returns a deterministic pseudo-random way index.
func (c *Cache) randWay(n int) int {
	c.rng ^= c.rng << 13
	c.rng ^= c.rng >> 7
	c.rng ^= c.rng << 17
	return int(c.rng % uint64(n))
}

// Fill inserts the line containing addr as clean at MRU without touching
// the demand counters — the path prefetch fills take. It returns false
// if the line was already resident (the prefetch was useless); a
// resident line is left in place with its LRU position unchanged, as
// hardware prefetchers do not promote on redundant fills.
func (c *Cache) Fill(addr mem.Addr, core uint8) bool {
	blk := uint64(addr) >> c.lineShift
	set := c.sets[blk&c.setMask]
	for i := range set {
		if set[i].tag == blk {
			return false
		}
	}
	// Prefetches transfer the whole line (all sectors valid).
	c.stats.SectorFetches++
	c.stats.TrafficBytes += c.cfg.LineSize
	c.insert(set, line{tag: blk, pf: true, sectors: ^uint64(0)})
	return true
}

// Invalidate drops the line containing addr if present, returning whether
// it was resident and dirty (i.e. a writeback would be required).
func (c *Cache) Invalidate(addr mem.Addr) (resident, dirty bool) {
	blk := uint64(addr) >> c.lineShift
	set := c.sets[blk&c.setMask]
	for i := range set {
		if set[i].tag == blk {
			d := set[i].dirty
			copy(set[i:], set[i+1:])
			set[len(set)-1] = line{tag: invalidTag}
			return true, d
		}
	}
	return false, false
}

// Snapshot dumps the resident line tags of every set. For the LRU and
// FIFO policies the per-set order is the replacement order (index 0 =
// MRU / newest fill, last = victim); invalid ways are omitted. The
// independent reference model in internal/verify compares this against
// its own state for bit-exact agreement.
func (c *Cache) Snapshot() [][]uint64 {
	out := make([][]uint64, len(c.sets))
	for i, set := range c.sets {
		tags := make([]uint64, 0, len(set))
		for _, l := range set {
			if l.tag != invalidTag {
				tags = append(tags, l.tag)
			}
		}
		out[i] = tags
	}
	return out
}

// ResidentLines returns the number of valid lines (for occupancy tests).
func (c *Cache) ResidentLines() int {
	n := 0
	for _, set := range c.sets {
		for _, l := range set {
			if l.tag != invalidTag {
				n++
			}
		}
	}
	return n
}
