package cache

import (
	"math/rand"
	"testing"

	"cmpmem/internal/mem"
)

func policyCfg(p Policy) Config {
	return Config{Name: "p", Size: 4 * 64, LineSize: 64, Assoc: 0, Repl: p}
}

func TestPolicyString(t *testing.T) {
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" || Random.String() != "Random" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy must still render")
	}
}

func TestValidateRejectsUnknownPolicy(t *testing.T) {
	cfg := policyCfg(Policy(7))
	if err := cfg.Validate(); err == nil {
		t.Error("unknown policy accepted")
	}
}

// TestFIFOIgnoresHits: the classic FIFO-vs-LRU discriminator. Fill a
// 4-line cache with A B C D, re-touch A (hit), then add E. LRU evicts
// B (A was refreshed); FIFO evicts A (oldest fill).
func TestFIFOIgnoresHits(t *testing.T) {
	A, B := mem.Addr(0), mem.Addr(64)
	addrs := []mem.Addr{0, 64, 128, 192}

	lru, _ := New(policyCfg(LRU))
	fifo, _ := New(policyCfg(FIFO))
	for _, c := range []*Cache{lru, fifo} {
		for _, a := range addrs {
			c.Access(a, 8, mem.Load, 0)
		}
		c.Access(A, 8, mem.Load, 0)   // hit: refresh under LRU only
		c.Access(256, 8, mem.Load, 0) // force one eviction
	}
	if !lru.Contains(A) || lru.Contains(B) {
		t.Error("LRU should keep refreshed A and evict B")
	}
	if fifo.Contains(A) || !fifo.Contains(B) {
		t.Error("FIFO should evict oldest-filled A and keep B")
	}
}

func TestRandomPolicyDeterministic(t *testing.T) {
	run := func() uint64 {
		c, _ := New(Config{Name: "r", Size: 1 << 12, LineSize: 64, Assoc: 4, Repl: Random})
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 20000; i++ {
			c.Access(mem.Addr(rng.Intn(1<<16))&^63, 8, mem.Load, 0)
		}
		return c.Stats().Misses
	}
	if run() != run() {
		t.Error("Random policy not deterministic across identical runs")
	}
}

// TestLRUBeatsRandomOnReuse: on a looping working set slightly larger
// than the cache, LRU and FIFO thrash (cyclic worst case) while Random
// retains a fraction — the classic result.
func TestRandomBeatsLRUOnCyclicThrash(t *testing.T) {
	mk := func(p Policy) *Cache {
		c, _ := New(Config{Name: "x", Size: 64 * 64, LineSize: 64, Assoc: 0, Repl: p})
		return c
	}
	lru, fifo, rnd := mk(LRU), mk(FIFO), mk(Random)
	// 80-line loop over a 64-line cache, many passes.
	for pass := 0; pass < 30; pass++ {
		for i := 0; i < 80; i++ {
			a := mem.Addr(i * 64)
			lru.Access(a, 8, mem.Load, 0)
			fifo.Access(a, 8, mem.Load, 0)
			rnd.Access(a, 8, mem.Load, 0)
		}
	}
	if lru.Stats().Misses != lru.Stats().Accesses {
		t.Errorf("LRU should miss every access on a cyclic over-capacity loop: %d/%d",
			lru.Stats().Misses, lru.Stats().Accesses)
	}
	if fifo.Stats().Misses != fifo.Stats().Accesses {
		t.Error("FIFO should thrash like LRU on a cyclic loop")
	}
	if rnd.Stats().Misses >= lru.Stats().Misses {
		t.Errorf("Random (%d misses) should beat LRU (%d) on cyclic thrash",
			rnd.Stats().Misses, lru.Stats().Misses)
	}
}

// TestPoliciesShareAccounting: hit/miss bookkeeping fields stay
// consistent across policies.
func TestPoliciesShareAccounting(t *testing.T) {
	for _, p := range []Policy{LRU, FIFO, Random} {
		c, _ := New(Config{Name: "a", Size: 1 << 10, LineSize: 64, Assoc: 4, Repl: p})
		for i := 0; i < 1000; i++ {
			c.Access(mem.Addr((i*37)%2048)&^7, 8, mem.Kind(i%2), 0)
		}
		s := c.Stats()
		if s.Loads+s.Stores != s.Accesses {
			t.Errorf("%v: loads+stores != accesses", p)
		}
		if s.Misses > s.Accesses {
			t.Errorf("%v: more misses than accesses", p)
		}
		if s.Writebacks > s.Evictions {
			t.Errorf("%v: more writebacks than evictions", p)
		}
		if got := c.ResidentLines(); got > 16 {
			t.Errorf("%v: %d resident lines in a 16-line cache", p, got)
		}
	}
}

// TestFIFODirtyUpdateInPlace: a store hit must mark the line dirty even
// though FIFO does not reorder.
func TestFIFODirtyUpdateInPlace(t *testing.T) {
	c, _ := New(policyCfg(FIFO))
	c.Access(0, 8, mem.Load, 0)
	c.Access(0, 8, mem.Store, 0) // hit: set dirty in place
	for a := 64; a <= 4*64; a += 64 {
		c.Access(mem.Addr(a), 8, mem.Load, 0)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("dirty bit lost on FIFO hit: %d writebacks", c.Stats().Writebacks)
	}
}
