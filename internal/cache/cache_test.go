package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"cmpmem/internal/mem"
)

func cfg(size, line uint64, assoc int) Config {
	return Config{Name: "t", Size: size, LineSize: line, Assoc: assoc}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		c  Config
		ok bool
	}{
		{cfg(1<<20, 64, 16), true},
		{cfg(1<<20, 64, 0), true},   // fully associative
		{cfg(0, 64, 4), false},      // zero size
		{cfg(1<<20, 48, 4), false},  // non-power-of-two line
		{cfg(1<<20, 0, 4), false},   // zero line
		{cfg(100, 64, 4), false},    // size not multiple of line
		{cfg(1<<10, 64, 32), false}, // assoc > lines
		{cfg(3<<10, 64, 16), false}, // non-pow2 sets
		{cfg(64, 64, 1), true},      // single line
	}
	for i, tc := range cases {
		err := tc.c.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("case %d (%+v): err=%v, want ok=%v", i, tc.c, err, tc.ok)
		}
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(cfg(100, 64, 4)); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestBasicHitMiss(t *testing.T) {
	c, err := New(cfg(1<<12, 64, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Access(0x1000, 8, mem.Load, 0); got != 1 {
		t.Errorf("first access misses = %d, want 1", got)
	}
	if got := c.Access(0x1000, 8, mem.Load, 0); got != 0 {
		t.Errorf("second access misses = %d, want 0", got)
	}
	if got := c.Access(0x1038, 8, mem.Load, 0); got != 0 {
		t.Errorf("same-line access misses = %d, want 0", got)
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Misses != 1 {
		t.Errorf("stats: %d accesses %d misses, want 3/1", s.Accesses, s.Misses)
	}
}

func TestStraddlingAccess(t *testing.T) {
	c, _ := New(cfg(1<<12, 64, 4))
	// 8 bytes starting at line_end-4 touches two lines.
	misses := c.Access(0x103C, 8, mem.Load, 0)
	if misses != 2 {
		t.Errorf("straddling access missed %d lines, want 2", misses)
	}
	if c.Stats().Accesses != 2 {
		t.Errorf("straddle counts %d accesses, want 2", c.Stats().Accesses)
	}
}

func TestLRUOrder(t *testing.T) {
	// 2-way cache, one set: lines A,B,C map to set 0.
	c, _ := New(cfg(128, 64, 2))
	A, B, C := mem.Addr(0), mem.Addr(128), mem.Addr(256)
	c.Access(A, 8, mem.Load, 0)
	c.Access(B, 8, mem.Load, 0)
	c.Access(A, 8, mem.Load, 0) // A is MRU
	c.Access(C, 8, mem.Load, 0) // evicts B (LRU)
	if !c.Contains(A) {
		t.Error("A should be resident")
	}
	if c.Contains(B) {
		t.Error("B should have been evicted (LRU)")
	}
	if !c.Contains(C) {
		t.Error("C should be resident")
	}
}

func TestWritebackAccounting(t *testing.T) {
	c, _ := New(cfg(128, 64, 1)) // direct-mapped, 2 sets
	c.Access(0, 8, mem.Store, 0)
	c.Access(128, 8, mem.Load, 0) // evicts dirty line 0
	s := c.Stats()
	if s.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", s.Writebacks)
	}
	c.Access(256, 8, mem.Load, 0) // evicts clean line 128
	if c.Stats().Writebacks != 1 {
		t.Errorf("clean eviction must not write back")
	}
}

func TestDirtyBitSurvivesHits(t *testing.T) {
	c, _ := New(cfg(128, 64, 2))
	c.Access(0, 8, mem.Store, 0)
	c.Access(0, 8, mem.Load, 0) // hit must not clear dirty
	c.Access(128, 8, mem.Load, 0)
	c.Access(256, 8, mem.Load, 0) // evicts line 0 (LRU)
	if c.Stats().Writebacks != 1 {
		t.Error("dirty bit lost across a hit")
	}
}

func TestPerCoreStats(t *testing.T) {
	c, _ := New(cfg(1<<12, 64, 4))
	c.Access(0, 8, mem.Load, 3)
	c.Access(0, 8, mem.Load, 7)
	s := c.Stats()
	if s.PerCoreAccesses[3] != 1 || s.PerCoreAccesses[7] != 1 {
		t.Error("per-core access attribution wrong")
	}
	if s.PerCoreMisses[3] != 1 || s.PerCoreMisses[7] != 0 {
		t.Error("per-core miss attribution wrong")
	}
}

func TestInvalidate(t *testing.T) {
	c, _ := New(cfg(1<<12, 64, 4))
	c.Access(0x40, 8, mem.Store, 0)
	res, dirty := c.Invalidate(0x40)
	if !res || !dirty {
		t.Errorf("Invalidate = (%v,%v), want (true,true)", res, dirty)
	}
	if c.Contains(0x40) {
		t.Error("line still resident after Invalidate")
	}
	res, _ = c.Invalidate(0x40)
	if res {
		t.Error("second Invalidate should find nothing")
	}
}

func TestFill(t *testing.T) {
	c, _ := New(cfg(1<<12, 64, 4))
	if !c.Fill(0x80, 0) {
		t.Error("Fill of absent line should insert")
	}
	if c.Fill(0x80, 0) {
		t.Error("Fill of resident line should report false")
	}
	if got := c.Access(0x80, 8, mem.Load, 0); got != 0 {
		t.Error("demand access after Fill should hit")
	}
	if c.Stats().Accesses != 1 {
		t.Error("Fill must not count as a demand access")
	}
}

func TestReset(t *testing.T) {
	c, _ := New(cfg(1<<12, 64, 4))
	c.Access(0, 8, mem.Load, 0)
	c.Reset()
	if c.Stats().Accesses != 0 || c.ResidentLines() != 0 {
		t.Error("Reset left state behind")
	}
}

// TestInclusionProperty: for fully-associative LRU, a larger cache's
// resident set always contains a smaller cache's (the stack property),
// hence misses(small) >= misses(large) for every trace prefix.
func TestInclusionProperty(t *testing.T) {
	check := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		small, _ := New(cfg(4*64, 64, 0))
		large, _ := New(cfg(16*64, 64, 0))
		for i := 0; i < int(n)+50; i++ {
			addr := mem.Addr(rng.Intn(64) * 64)
			kind := mem.Kind(rng.Intn(2))
			small.Access(addr, 8, kind, 0)
			large.Access(addr, 8, kind, 0)
			if small.Stats().Misses < large.Stats().Misses {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestAssocMonotonicity: with fixed size, higher associativity never
// increases misses for an LRU cache on these simple strided patterns
// (not true for arbitrary traces, so we use linear scans).
func TestAssocMonotonicityOnScans(t *testing.T) {
	for _, assoc := range []int{1, 2, 4, 8} {
		c1, _ := New(cfg(1<<12, 64, assoc))
		c2, _ := New(cfg(1<<12, 64, assoc*2))
		for rep := 0; rep < 3; rep++ {
			for a := 0; a < 1<<13; a += 64 {
				c1.Access(mem.Addr(a), 8, mem.Load, 0)
				c2.Access(mem.Addr(a), 8, mem.Load, 0)
			}
		}
		if c2.Stats().Misses > c1.Stats().Misses {
			t.Errorf("assoc %d->%d increased misses on scan: %d -> %d",
				assoc, assoc*2, c1.Stats().Misses, c2.Stats().Misses)
		}
	}
}

func TestStatsHelpers(t *testing.T) {
	s := Stats{Accesses: 200, Misses: 50}
	if got := s.MissRate(); got != 0.25 {
		t.Errorf("MissRate = %v, want 0.25", got)
	}
	if got := s.MPKI(10000); got != 5 {
		t.Errorf("MPKI = %v, want 5", got)
	}
	var zero Stats
	if zero.MissRate() != 0 || zero.MPKI(0) != 0 {
		t.Error("zero stats should yield zero rates")
	}
}

func TestResidentLinesBounded(t *testing.T) {
	c, _ := New(cfg(1<<10, 64, 4)) // 16 lines
	for a := 0; a < 1<<16; a += 64 {
		c.Access(mem.Addr(a), 8, mem.Load, 0)
	}
	if got := c.ResidentLines(); got != 16 {
		t.Errorf("resident lines = %d, want 16 (full)", got)
	}
}

func TestFullyAssociativeEviction(t *testing.T) {
	c, _ := New(cfg(4*64, 64, 0)) // 4 lines, fully associative
	for i := 0; i < 4; i++ {
		c.Access(mem.Addr(i*64), 8, mem.Load, 0)
	}
	c.Access(0, 8, mem.Load, 0)              // refresh line 0
	c.Access(mem.Addr(4*64), 8, mem.Load, 0) // evicts line 1 (LRU)
	if !c.Contains(0) {
		t.Error("MRU-refreshed line evicted")
	}
	if c.Contains(64) {
		t.Error("LRU line not evicted")
	}
}

func BenchmarkAccessHit(b *testing.B) {
	c, _ := New(cfg(1<<20, 64, 16))
	c.Access(0x40, 8, mem.Load, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x40, 8, mem.Load, 0)
	}
}

func BenchmarkAccessStream(b *testing.B) {
	c, _ := New(cfg(1<<20, 64, 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(mem.Addr(i*64), 8, mem.Load, 0)
	}
}

func TestZeroSizeAccess(t *testing.T) {
	// A zero-size reference must behave like a one-byte probe, not
	// underflow addr+size-1 and skip (or, at address 0, sweep the whole
	// address space).
	c, _ := New(cfg(1<<12, 64, 4))
	if got := c.Access(0x2000, 0, mem.Load, 0); got != 1 {
		t.Errorf("zero-size first access misses = %d, want 1", got)
	}
	if got := c.Access(0x2000, 0, mem.Load, 0); got != 0 {
		t.Errorf("zero-size second access misses = %d, want 0", got)
	}
	if s := c.Stats(); s.Accesses != 2 || s.Misses != 1 {
		t.Errorf("stats after zero-size accesses: %+v, want 2 accesses / 1 miss", s)
	}
	// The historically catastrophic case: address 0, size 0.
	done := make(chan int, 1)
	go func() { done <- c.Access(0, 0, mem.Store, 1) }()
	select {
	case got := <-done:
		if got != 1 {
			t.Errorf("Access(0, 0) misses = %d, want 1", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Access(0, 0) did not return (address-space sweep)")
	}
}

func TestLineSizeOneRejected(t *testing.T) {
	// LineSize 1 would let block numbers reach the invalid-tag sentinel.
	if err := cfg(64, 1, 4).Validate(); err == nil {
		t.Error("LineSize 1 accepted")
	}
}

func TestBlockZeroNotSpuriouslyResident(t *testing.T) {
	// Empty ways must not report residency for block number 0 — a
	// zero-value tag would. Guards the invalid-tag sentinel.
	c, _ := New(cfg(1<<12, 64, 4))
	if c.Contains(0) {
		t.Fatal("empty cache claims to contain address 0")
	}
	if got := c.Access(0, 8, mem.Load, 0); got != 1 {
		t.Errorf("first access to address 0 misses = %d, want 1", got)
	}
	if !c.Contains(0) {
		t.Error("address 0 not resident after access")
	}
	c.Reset()
	if c.Contains(0) || c.ResidentLines() != 0 {
		t.Error("Reset left address 0 resident")
	}
}
