package verify

import (
	"testing"

	"cmpmem/internal/cache"
	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
)

// refGen is a deterministic xorshift reference generator producing a
// mix of sequential runs, strided walks, and random touches — enough
// locality structure to exercise hits, conflict misses, and capacity
// misses at the tiny cache sizes the tests use.
type refGen struct{ state uint64 }

func newRefGen(seed uint64) *refGen {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &refGen{state: seed}
}

func (g *refGen) next() uint64 {
	g.state ^= g.state << 13
	g.state ^= g.state >> 7
	g.state ^= g.state << 17
	return g.state
}

func (g *refGen) refs(n int) []trace.Ref {
	refs := make([]trace.Ref, 0, n)
	var base uint64
	for len(refs) < n {
		switch g.next() % 4 {
		case 0: // new random region
			base = g.next() % (1 << 20)
		case 1: // sequential run
			for i := 0; i < 16 && len(refs) < n; i++ {
				refs = append(refs, trace.Ref{Addr: mem.Addr(base + uint64(i)*8), Size: 8, Kind: mem.Load, Core: uint8(g.next() % 4)})
			}
		case 2: // strided walk (crosses sets)
			for i := 0; i < 8 && len(refs) < n; i++ {
				refs = append(refs, trace.Ref{Addr: mem.Addr(base + uint64(i)*256), Size: 4, Kind: mem.Store, Core: uint8(g.next() % 4)})
			}
		case 3: // single random touch, sometimes line-straddling
			sz := uint8(1 << (g.next() % 4))
			if g.next()%8 == 0 {
				sz = 64
			}
			refs = append(refs, trace.Ref{Addr: mem.Addr(g.next() % (1 << 20)), Size: sz, Kind: mem.Kind(g.next() % 2), Core: uint8(g.next() % 4)})
		}
	}
	return refs
}

// oracleGeometries is the grid the differential tests cross-check:
// several sizes and associativities at one line size.
func oracleGeometries() []cache.Config {
	var cfgs []cache.Config
	for _, size := range []uint64{4 << 10, 16 << 10, 64 << 10} {
		for _, assoc := range []int{1, 2, 8} {
			cfgs = append(cfgs, cache.Config{
				Name: "t", Size: size, LineSize: 64, Assoc: assoc, Repl: cache.LRU,
			})
		}
	}
	return cfgs
}

// deliver feeds a window-wrapped stream to the snoopers: start, the
// refs, stop.
func deliver(refs []trace.Ref, snoopers ...fsb.Snooper) {
	for _, s := range snoopers {
		s.OnMsg(fsb.Message{Kind: fsb.MsgStart})
	}
	for _, r := range refs {
		for _, s := range snoopers {
			s.OnRef(r)
		}
	}
	for _, s := range snoopers {
		s.OnMsg(fsb.Message{Kind: fsb.MsgStop})
	}
}

// TestOracleDifferential is the tentpole property in miniature: the
// stack-distance oracle, the production cache, and the naive reference
// cache must agree exactly — misses, accesses, and (cache vs ref) full
// replacement state — on the same stream, for every geometry at once.
func TestOracleDifferential(t *testing.T) {
	refs := newRefGen(7).refs(20000)

	oracle, err := NewOracle(64)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := oracleGeometries()
	type pair struct {
		cfg  cache.Config
		c    *cache.Cache
		ref  *RefCache
		cBus *BusAdapter
		rBus *BusAdapter
	}
	var pairs []pair
	snoopers := []fsb.Snooper{oracle}
	for _, cfg := range cfgs {
		if err := oracle.AddConfig(cfg); err != nil {
			t.Fatal(err)
		}
		c, err := cache.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rc, err := NewRefCache(cfg.Size, cfg.LineSize, cfg.Assoc)
		if err != nil {
			t.Fatal(err)
		}
		p := pair{cfg: cfg, c: c, ref: rc, cBus: &BusAdapter{Target: c}, rBus: &BusAdapter{Target: rc}}
		pairs = append(pairs, p)
		snoopers = append(snoopers, p.cBus, p.rBus)
	}

	deliver(refs, snoopers...)

	for _, p := range pairs {
		st := p.c.Stats()
		want, err := oracle.MissesForConfig(p.cfg)
		if err != nil {
			t.Fatal(err)
		}
		if st.Misses != want {
			t.Errorf("%d B/%d-way: cache %d misses, oracle predicts %d", p.cfg.Size, p.cfg.Assoc, st.Misses, want)
		}
		if p.ref.Misses() != want {
			t.Errorf("%d B/%d-way: ref cache %d misses, oracle predicts %d", p.cfg.Size, p.cfg.Assoc, p.ref.Misses(), want)
		}
		if st.Accesses != oracle.Accesses() {
			t.Errorf("%d B/%d-way: cache saw %d accesses, oracle %d", p.cfg.Size, p.cfg.Assoc, st.Accesses, oracle.Accesses())
		}
		if p.ref.Accesses() != st.Accesses {
			t.Errorf("%d B/%d-way: ref cache saw %d accesses, cache %d", p.cfg.Size, p.cfg.Assoc, p.ref.Accesses(), st.Accesses)
		}
		if err := DiffSnapshots(p.c.Snapshot(), p.ref.Snapshot()); err != nil {
			t.Errorf("%d B/%d-way: %v", p.cfg.Size, p.cfg.Assoc, err)
		}
	}
}

// TestOracleWindowGating checks the oracle drops exactly what the AF
// stage drops: pre-start traffic, post-stop traffic, and control
// messages.
func TestOracleWindowGating(t *testing.T) {
	oracle, _ := NewOracle(64)
	if err := oracle.AddGeometry(16, 2); err != nil {
		t.Fatal(err)
	}

	// Before the window opens: invisible.
	oracle.OnRef(trace.Ref{Addr: 0x1000, Size: 8, Kind: mem.Load})
	if oracle.Accesses() != 0 {
		t.Fatalf("pre-window ref counted: %d accesses", oracle.Accesses())
	}
	oracle.OnMsg(fsb.Message{Kind: fsb.MsgStart})
	// A control message encoded as a transaction: invisible.
	oracle.OnRef(fsb.EncodeMessage(fsb.Message{Kind: fsb.MsgCycles, Value: 99}))
	if oracle.Accesses() != 0 {
		t.Fatalf("message transaction counted: %d accesses", oracle.Accesses())
	}
	// In-window line-straddling ref: two line-granular requests.
	oracle.OnRef(trace.Ref{Addr: 0x103C, Size: 16, Kind: mem.Load})
	if oracle.Accesses() != 2 {
		t.Fatalf("straddling ref made %d requests, want 2", oracle.Accesses())
	}
	oracle.OnMsg(fsb.Message{Kind: fsb.MsgStop})
	oracle.OnRef(trace.Ref{Addr: 0x2000, Size: 8, Kind: mem.Load})
	if oracle.Accesses() != 2 {
		t.Fatalf("post-window ref counted: %d accesses", oracle.Accesses())
	}
}

// TestOracleInclusionAcrossAssoc checks Mattson's theorem end to end:
// at a fixed set count, predicted misses are non-increasing in
// associativity — and the MonotoneMisses invariant accepts the curve.
func TestOracleInclusionAcrossAssoc(t *testing.T) {
	oracle, _ := NewOracle(64)
	const sets = 64
	for _, a := range []int{1, 2, 4, 8, 16} {
		if err := oracle.AddGeometry(sets, a); err != nil {
			t.Fatal(err)
		}
	}
	deliver(newRefGen(42).refs(30000), oracle)

	var points []MissPoint
	for _, a := range []int{1, 2, 4, 8, 16} {
		m, err := oracle.Misses(sets, a)
		if err != nil {
			t.Fatal(err)
		}
		points = append(points, MissPoint{Label: label(a), Capacity: uint64(a), Misses: m})
	}
	if err := MonotoneMisses(points); err != nil {
		t.Fatal(err)
	}
	// And the curve must not be degenerate: the smallest cache misses
	// strictly more than the biggest on a working set this size.
	if points[0].Misses <= points[len(points)-1].Misses {
		t.Fatalf("miss curve is flat: %v", points)
	}
}

func label(assoc int) string {
	return "assoc-" + string(rune('0'+assoc%10))
}

// TestOracleMisuse covers the guard rails: bad line sizes, bad
// geometries, late registration, unknown queries.
func TestOracleMisuse(t *testing.T) {
	if _, err := NewOracle(0); err == nil {
		t.Error("line size 0 accepted")
	}
	if _, err := NewOracle(48); err == nil {
		t.Error("non-power-of-two line size accepted")
	}
	oracle, _ := NewOracle(64)
	if err := oracle.AddGeometry(3, 2); err == nil {
		t.Error("non-power-of-two set count accepted")
	}
	if err := oracle.AddGeometry(4, 0); err == nil {
		t.Error("associativity 0 accepted")
	}
	if err := oracle.AddConfig(cache.Config{Name: "x", Size: 1 << 12, LineSize: 32, Assoc: 2}); err == nil {
		t.Error("mismatched line size accepted")
	}
	if _, err := oracle.Misses(128, 2); err == nil {
		t.Error("unregistered set count answered")
	}
	oracle.AddGeometry(4, 2)
	oracle.OnMsg(fsb.Message{Kind: fsb.MsgStart})
	oracle.OnRef(trace.Ref{Addr: 0, Size: 1, Kind: mem.Load})
	if err := oracle.AddGeometry(8, 2); err == nil {
		t.Error("AddGeometry accepted after recording started")
	}
	if _, err := oracle.Misses(4, 4); err == nil {
		t.Error("associativity beyond registered max answered")
	}
}

// TestRefCacheFullyAssociative checks the assoc-0 convention matches a
// fully-associative production cache.
func TestRefCacheFullyAssociative(t *testing.T) {
	refs := newRefGen(11).refs(5000)
	cfg := cache.Config{Name: "fa", Size: 8 << 10, LineSize: 64, Assoc: 0}
	c, err := cache.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewRefCache(cfg.Size, cfg.LineSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	deliver(refs, &BusAdapter{Target: c}, &BusAdapter{Target: rc})
	st := c.Stats()
	if st.Misses != rc.Misses() || st.Accesses != rc.Accesses() {
		t.Fatalf("fully-associative divergence: cache %d/%d, ref %d/%d",
			st.Misses, st.Accesses, rc.Misses(), rc.Accesses())
	}
	if err := DiffSnapshots(c.Snapshot(), rc.Snapshot()); err != nil {
		t.Fatal(err)
	}
}

// TestRefCacheMisuse covers RefCache construction guards.
func TestRefCacheMisuse(t *testing.T) {
	cases := []struct {
		size, line uint64
		assoc      int
	}{
		{0, 64, 2},       // zero size
		{1 << 12, 0, 2},  // zero line
		{1 << 12, 48, 2}, // non-power-of-two line
		{100, 64, 2},     // size not multiple of line
		{1 << 12, 64, 7}, // assoc does not divide lines
		{3 << 12, 64, 1}, // set count not a power of two
	}
	for _, c := range cases {
		if _, err := NewRefCache(c.size, c.line, c.assoc); err == nil {
			t.Errorf("NewRefCache(%d,%d,%d) accepted", c.size, c.line, c.assoc)
		}
	}
}
