package verify

import (
	"testing"

	"cmpmem/internal/cache"
	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
)

// FuzzVerifyOracle feeds an arbitrary access sequence to all three
// independent LRU implementations — the production cache, the naive
// reference cache, and the stack-distance oracle — and requires exact
// agreement on accesses, misses, and (cache vs reference) replacement
// state. The fuzzer explores the adversarial corner the random tests
// cannot: pathological conflict patterns, straddling sizes, and
// aliasing address bits.
func FuzzVerifyOracle(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 255, 0, 16, 32})
	f.Add([]byte("sequential-ish input covering a few lines"))
	f.Add(bytesRamp(256))

	cfgs := []cache.Config{
		{Name: "dm", Size: 1 << 10, LineSize: 64, Assoc: 1},
		{Name: "sa", Size: 2 << 10, LineSize: 64, Assoc: 4},
		{Name: "fa", Size: 1 << 10, LineSize: 64, Assoc: 0},
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		oracle, err := NewOracle(64)
		if err != nil {
			t.Fatal(err)
		}
		type model struct {
			cfg cache.Config
			c   *cache.Cache
			ref *RefCache
		}
		var models []model
		for _, cfg := range cfgs {
			if err := oracle.AddConfig(cfg); err != nil {
				t.Fatal(err)
			}
			c, err := cache.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rc, err := NewRefCache(cfg.Size, cfg.LineSize, cfg.Assoc)
			if err != nil {
				t.Fatal(err)
			}
			models = append(models, model{cfg, c, rc})
		}
		oracle.OnMsg(fsb.Message{Kind: fsb.MsgStart})

		// Decode the fuzz input as a stream of accesses: 4 bytes form a
		// 16-bit address (dense enough to alias), a size, and a kind.
		// The oracle consumes the refs through its exported AF front
		// end, which applies the same size clamp and line split the
		// caches do internally.
		for i := 0; i+3 < len(data); i += 4 {
			addr := mem.Addr(uint64(data[i]) | uint64(data[i+1])<<8)
			size := data[i+2]
			kind := mem.Kind(data[i+3] & 1)
			oracle.OnRef(trace.Ref{Addr: addr, Size: size, Kind: kind})
			for _, m := range models {
				m.c.Access(addr, size, kind, 0)
				m.ref.Access(addr, size, kind, 0)
			}
		}

		for _, m := range models {
			st := m.c.Stats()
			want, err := oracle.MissesForConfig(m.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if st.Misses != want {
				t.Fatalf("%s: cache %d misses, oracle predicts %d", m.cfg.Name, st.Misses, want)
			}
			if m.ref.Misses() != want {
				t.Fatalf("%s: ref cache %d misses, oracle predicts %d", m.cfg.Name, m.ref.Misses(), want)
			}
			if st.Accesses != oracle.Accesses() || m.ref.Accesses() != oracle.Accesses() {
				t.Fatalf("%s: access counts diverge: cache %d, ref %d, oracle %d",
					m.cfg.Name, st.Accesses, m.ref.Accesses(), oracle.Accesses())
			}
			if err := DiffSnapshots(m.c.Snapshot(), m.ref.Snapshot()); err != nil {
				t.Fatalf("%s: %v", m.cfg.Name, err)
			}
		}
	})
}

func bytesRamp(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i * 13)
	}
	return b
}
