// Package verify is the correctness layer of the co-simulation toolkit:
// differential oracles, metamorphic invariants, and fault injection.
//
// The paper's contribution is a set of numbers (Table 2 miss rates, the
// Figure 4-6 MPKI curves, the 8-64 MB working-set knees), so the repo's
// credibility rests on the cache model and the replay/telemetry plumbing
// being provably correct — not merely race-clean and fast. This package
// provides three independent ways to catch a wrong number:
//
//   - Differential oracles. A per-set Mattson stack-distance oracle
//     (Oracle) predicts, from one pass over a trace, the exact LRU miss
//     count of every registered associativity/size at once; and a naive
//     O(assoc) reference cache (RefCache) reproduces the full replacement
//     state for bit-exact comparison against internal/cache. Agreement is
//     required to be exact — zero delta — because every model is
//     deterministic.
//
//   - Metamorphic invariants. Executable properties that must hold
//     across sweeps regardless of the numbers themselves: LRU inclusion
//     (misses non-increasing in capacity), bank-interleave neutrality
//     (the AF/CC banked pipeline must equal the monolithic cache for any
//     bank count), delivery-order neutrality (serial == batched == replay,
//     checked via fsb.StreamDigest), and conservation (telemetry counter
//     sums equal the run-summary totals).
//
//   - Fault injection. FaultFS perturbs the trace store's spill I/O,
//     Corrupt flips trace-codec bytes, and DropSnooper loses bus events —
//     and the assertions require the system to either degrade gracefully
//     (re-execute instead of replay) or fail loudly. Returning silently
//     wrong miss counts is the one outcome that must be impossible.
//
// The orchestration that runs these checks over real workloads lives in
// internal/core (core.VerifyAll) and is exposed as `cosim -verify`.
package verify
