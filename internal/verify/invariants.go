// Metamorphic invariants: properties the simulator must satisfy
// regardless of what the numbers are.
//
// A differential oracle catches a wrong miss count only where the
// oracle runs. Metamorphic relations catch a whole class of wrongness
// everywhere: if misses ever increase when capacity grows at a fixed
// set count, or a banked pipeline disagrees with its monolithic
// equivalent, or the telemetry counters fail to add up to the run
// totals, something is broken no matter which side is "right".

package verify

import (
	"fmt"

	"cmpmem/internal/cache"
)

// MissPoint is one point of a capacity sweep.
type MissPoint struct {
	Label    string // human-readable capacity ("8MB", "assoc 4", ...)
	Capacity uint64 // bytes (or any monotone stand-in); informational
	Misses   uint64
}

// MonotoneMisses checks LRU inclusion across a sweep ordered by
// increasing capacity: the miss count must never increase. For true-LRU
// caches growing associativity at a fixed set count this is Mattson's
// theorem; for the paper's size sweeps (fixed associativity, growing
// set count) it is the sanity floor every one of Figures 4-6 rests on.
func MonotoneMisses(points []MissPoint) error {
	for i := 1; i < len(points); i++ {
		if points[i].Misses > points[i-1].Misses {
			return fmt.Errorf("verify: misses increased with capacity: %s had %d misses, larger %s has %d",
				points[i-1].Label, points[i-1].Misses, points[i].Label, points[i].Misses)
		}
	}
	return nil
}

// DiffStats compares the miss-relevant counters of two cache stats and
// returns a field-by-field description of every mismatch (nil when
// equal). Writebacks and traffic are included: the bank interleave and
// delivery order must not change what the memory system sees either.
func DiffStats(what string, a, b cache.Stats) error {
	var diffs []string
	add := func(field string, x, y uint64) {
		if x != y {
			diffs = append(diffs, fmt.Sprintf("%s %d != %d", field, x, y))
		}
	}
	add("accesses", a.Accesses, b.Accesses)
	add("misses", a.Misses, b.Misses)
	add("loads", a.Loads, b.Loads)
	add("stores", a.Stores, b.Stores)
	add("load-misses", a.LoadMisses, b.LoadMisses)
	add("writebacks", a.Writebacks, b.Writebacks)
	add("evictions", a.Evictions, b.Evictions)
	add("sector-fetches", a.SectorFetches, b.SectorFetches)
	add("traffic-bytes", a.TrafficBytes, b.TrafficBytes)
	for c := range a.PerCoreAccesses {
		add(fmt.Sprintf("core%d-accesses", c), a.PerCoreAccesses[c], b.PerCoreAccesses[c])
		add(fmt.Sprintf("core%d-misses", c), a.PerCoreMisses[c], b.PerCoreMisses[c])
	}
	if len(diffs) == 0 {
		return nil
	}
	return fmt.Errorf("verify: %s stats diverge: %v", what, diffs)
}

// BankPartition checks that per-bank stats are an exact partition of
// the aggregate: every counter summed over banks equals the total. A
// reference lost between the AF and a CC bank shows up here.
func BankPartition(total cache.Stats, banks []cache.Stats) error {
	var sum cache.Stats
	for _, b := range banks {
		sum.Accesses += b.Accesses
		sum.Misses += b.Misses
		sum.Loads += b.Loads
		sum.Stores += b.Stores
		sum.LoadMisses += b.LoadMisses
		sum.Writebacks += b.Writebacks
		sum.Evictions += b.Evictions
		sum.SectorFetches += b.SectorFetches
		sum.TrafficBytes += b.TrafficBytes
		for c := range b.PerCoreAccesses {
			sum.PerCoreAccesses[c] += b.PerCoreAccesses[c]
			sum.PerCoreMisses[c] += b.PerCoreMisses[c]
		}
	}
	return DiffStats("bank partition", total, sum)
}

// DiffSnapshots compares full replacement state dumped by
// cache.Cache.Snapshot / RefCache.Snapshot: same set count, and every
// set holding identical tags in identical recency order.
func DiffSnapshots(a, b [][]uint64) error {
	if len(a) != len(b) {
		return fmt.Errorf("verify: snapshot set counts diverge: %d != %d", len(a), len(b))
	}
	for s := range a {
		if len(a[s]) != len(b[s]) {
			return fmt.Errorf("verify: set %d occupancy diverges: %d != %d lines", s, len(a[s]), len(b[s]))
		}
		for w := range a[s] {
			if a[s][w] != b[s][w] {
				return fmt.Errorf("verify: set %d way %d diverges: tag %#x != %#x", s, w, a[s][w], b[s][w])
			}
		}
	}
	return nil
}

// Conserve checks one conservation identity: a derived total must equal
// its ground truth exactly.
func Conserve(what string, got, want uint64) error {
	if got != want {
		return fmt.Errorf("verify: %s not conserved: got %d, want %d", what, got, want)
	}
	return nil
}
