// Fault injection: controlled corruption of the I/O and delivery paths.
//
// The replay substrate's promise is "bit-identical or loudly absent":
// a trace that cannot be decoded must cause re-execution (graceful
// degradation) or a returned error — never a silently wrong miss count.
// These injectors create the failures the promise is about: spill-file
// I/O errors and byte corruption (FaultFS), codec corruption (Corrupt),
// and lost bus events (DropSnooper).

package verify

import (
	"bytes"
	"fmt"
	"io"
	"sync"

	"cmpmem/internal/fsb"
	"cmpmem/internal/trace"
	"cmpmem/internal/tracestore"
)

// FaultFS implements tracestore.FS over an in-memory filesystem with
// switchable failure modes. All methods are safe for concurrent use.
type FaultFS struct {
	mu    sync.Mutex
	files map[string][]byte

	// Failure switches. Each counts how often it fired.
	FailMkdir   bool
	FailCreate  bool
	FailWrite   bool
	FailRename  bool
	FailOpen    bool
	CorruptRead bool // XOR CorruptMask into the byte at CorruptOff on Open
	CorruptOff  int
	CorruptMask byte

	// Op counters (reads under Counts).
	mkdirs, creates, renames, opens, removes, faults uint64
}

// NewFaultFS returns an empty in-memory filesystem with no faults armed.
func NewFaultFS() *FaultFS {
	return &FaultFS{files: make(map[string][]byte)}
}

// Counts reports (total ops, faults fired) so tests can assert the
// injected path was actually exercised.
func (f *FaultFS) Counts() (ops, faults uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mkdirs + f.creates + f.renames + f.opens + f.removes, f.faults
}

// Files returns the names currently stored.
func (f *FaultFS) Files() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.files))
	for n := range f.files {
		names = append(names, n)
	}
	return names
}

// MkdirAll implements tracestore.FS (directories are implicit here).
func (f *FaultFS) MkdirAll(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mkdirs++
	if f.FailMkdir {
		f.faults++
		return fmt.Errorf("faultfs: injected mkdir failure for %q", dir)
	}
	return nil
}

// CreateTemp implements tracestore.FS.
func (f *FaultFS) CreateTemp(dir, pattern string) (tracestore.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.creates++
	if f.FailCreate {
		f.faults++
		return nil, fmt.Errorf("faultfs: injected create failure in %q", dir)
	}
	name := fmt.Sprintf("%s/%s.%d", dir, pattern, f.creates)
	f.files[name] = nil
	return &faultFile{fs: f, name: name}, nil
}

// Rename implements tracestore.FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.renames++
	if f.FailRename {
		f.faults++
		return fmt.Errorf("faultfs: injected rename failure %q -> %q", oldpath, newpath)
	}
	data, ok := f.files[oldpath]
	if !ok {
		return fmt.Errorf("faultfs: rename source %q does not exist", oldpath)
	}
	delete(f.files, oldpath)
	f.files[newpath] = data
	return nil
}

// Open implements tracestore.FS, applying read corruption when armed.
func (f *FaultFS) Open(name string) (io.ReadCloser, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.opens++
	if f.FailOpen {
		f.faults++
		return nil, fmt.Errorf("faultfs: injected open failure for %q", name)
	}
	data, ok := f.files[name]
	if !ok {
		return nil, fmt.Errorf("faultfs: %q does not exist", name)
	}
	buf := append([]byte(nil), data...)
	if f.CorruptRead && f.CorruptOff < len(buf) {
		f.faults++
		buf[f.CorruptOff] ^= f.CorruptMask
	}
	return io.NopCloser(bytes.NewReader(buf)), nil
}

// Remove implements tracestore.FS.
func (f *FaultFS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.removes++
	delete(f.files, name)
	return nil
}

// faultFile is an open handle on a FaultFS file.
type faultFile struct {
	fs   *FaultFS
	name string
	buf  []byte
}

// Write implements io.Writer, honoring the write-failure switch.
func (w *faultFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	if w.fs.FailWrite {
		w.fs.faults++
		return 0, fmt.Errorf("faultfs: injected write failure for %q", w.name)
	}
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// Close implements io.Closer, publishing the buffered contents.
func (w *faultFile) Close() error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	w.fs.files[w.name] = w.buf
	return nil
}

// Name implements tracestore.File.
func (w *faultFile) Name() string { return w.name }

// Corrupt returns a copy of data with the byte at off XORed with mask.
// An offset past the end returns an unmodified copy (so fuzzers can
// probe freely).
func Corrupt(data []byte, off int, mask byte) []byte {
	out := append([]byte(nil), data...)
	if off >= 0 && off < len(out) && mask != 0 {
		out[off] ^= mask
	}
	return out
}

// DropSnooper forwards bus traffic to Inner but silently drops every
// DropEvery-th event (1-based count across refs and messages) — the
// lost-transaction fault a digest or conservation check must catch.
// Finalize and AttachAsync are forwarded so the inner snooper keeps its
// lifecycle guarantees even while losing data.
type DropSnooper struct {
	Inner     fsb.Snooper
	DropEvery uint64
	seen      uint64
	dropped   uint64
}

// Dropped returns the number of events withheld from Inner.
func (d *DropSnooper) Dropped() uint64 { return d.dropped }

// OnRef implements fsb.Snooper.
func (d *DropSnooper) OnRef(r trace.Ref) {
	d.seen++
	if d.DropEvery > 0 && d.seen%d.DropEvery == 0 {
		d.dropped++
		return
	}
	d.Inner.OnRef(r)
}

// OnMsg implements fsb.Snooper.
func (d *DropSnooper) OnMsg(m fsb.Message) {
	d.seen++
	if d.DropEvery > 0 && d.seen%d.DropEvery == 0 {
		d.dropped++
		return
	}
	d.Inner.OnMsg(m)
}

// Finalize implements fsb.Finalizer by forwarding.
func (d *DropSnooper) Finalize() {
	if f, ok := d.Inner.(fsb.Finalizer); ok {
		f.Finalize()
	}
}

// AttachAsync implements fsb.AsyncSnooper by forwarding.
func (d *DropSnooper) AttachAsync() {
	if a, ok := d.Inner.(fsb.AsyncSnooper); ok {
		a.AttachAsync()
	}
}
