package verify

import (
	"testing"

	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
	"cmpmem/internal/tracestore"
)

// makeTrace records a small deterministic stream and seals it.
func makeTrace(t *testing.T, n int) *tracestore.Trace {
	t.Helper()
	rec := tracestore.NewRecorder()
	rec.Add(fsb.EncodeMessage(fsb.Message{Kind: fsb.MsgStart}))
	g := newRefGen(5)
	for _, r := range g.refs(n) {
		rec.Add(r)
	}
	rec.Add(fsb.EncodeMessage(fsb.Message{Kind: fsb.MsgStop}))
	tr, err := rec.Finish(tracestore.Summary{Workload: "synthetic", Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// digestTrace replays a trace through a StreamDigest.
func digestTrace(t *testing.T, tr *tracestore.Trace) (sum, events uint64) {
	t.Helper()
	p, err := tr.Player()
	if err != nil {
		t.Fatal(err)
	}
	d := fsb.NewStreamDigest()
	for r, ok := p.Next(); ok; r, ok = p.Next() {
		d.OnRef(r)
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	return d.Sum(), d.Events()
}

// storeKey is the fixed key the fault tests memoize under.
var storeKey = tracestore.Key{Workload: "synthetic", Seed: 1, Scale: 0.01, Threads: 2, Quantum: 100}

// executeCounter wraps a trace as a Store execute function, counting
// invocations.
func executeCounter(tr *tracestore.Trace, n *int) func() (*tracestore.Trace, error) {
	return func() (*tracestore.Trace, error) {
		*n++
		return tr, nil
	}
}

// TestSpillRoundTripThroughFaultFS checks the no-fault path end to end
// on the injectable filesystem: execute once, spill, and serve the
// second store from disk bit-identically.
func TestSpillRoundTripThroughFaultFS(t *testing.T) {
	ffs := NewFaultFS()
	tr := makeTrace(t, 500)
	wantSum, wantEvents := digestTrace(t, tr)

	execs := 0
	s1 := tracestore.New(0, "spill")
	s1.SetFS(ffs)
	if _, err := s1.Do(storeKey, executeCounter(tr, &execs)); err != nil {
		t.Fatal(err)
	}
	if execs != 1 {
		t.Fatalf("first store executed %d times, want 1", execs)
	}
	if len(ffs.Files()) == 0 {
		t.Fatal("no spill file written")
	}

	// A fresh store sharing the filesystem must hit disk, not execute.
	s2 := tracestore.New(0, "spill")
	s2.SetFS(ffs)
	got, err := s2.Do(storeKey, executeCounter(tr, &execs))
	if err != nil {
		t.Fatal(err)
	}
	if execs != 1 {
		t.Fatalf("disk hit still executed (%d executions)", execs)
	}
	if st := s2.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats = %+v, want 1 disk hit", st)
	}
	gotSum, gotEvents := digestTrace(t, got)
	if gotSum != wantSum || gotEvents != wantEvents {
		t.Fatalf("disk-loaded stream digest %#x/%d != live %#x/%d", gotSum, gotEvents, wantSum, wantEvents)
	}
}

// TestSpillWriteFaultsDegradeGracefully checks that every write-side
// fault leaves the store fully functional: Do succeeds, the result is
// correct, and the only cost is that the next process re-executes.
func TestSpillWriteFaultsDegradeGracefully(t *testing.T) {
	tr := makeTrace(t, 200)
	wantSum, _ := digestTrace(t, tr)

	arm := []struct {
		name string
		set  func(*FaultFS)
	}{
		{"mkdir", func(f *FaultFS) { f.FailMkdir = true }},
		{"create", func(f *FaultFS) { f.FailCreate = true }},
		{"write", func(f *FaultFS) { f.FailWrite = true }},
		{"rename", func(f *FaultFS) { f.FailRename = true }},
	}
	for _, tc := range arm {
		t.Run(tc.name, func(t *testing.T) {
			ffs := NewFaultFS()
			tc.set(ffs)
			execs := 0
			s := tracestore.New(0, "spill")
			s.SetFS(ffs)
			got, err := s.Do(storeKey, executeCounter(tr, &execs))
			if err != nil {
				t.Fatalf("write fault leaked into Do: %v", err)
			}
			if gotSum, _ := digestTrace(t, got); gotSum != wantSum {
				t.Fatalf("write fault corrupted the returned stream")
			}
			if _, faults := ffs.Counts(); faults == 0 {
				t.Fatal("fault switch never fired — the test exercised nothing")
			}
			// The failed spill must not leave a loadable file behind.
			execs2 := 0
			s2 := tracestore.New(0, "spill")
			s2.SetFS(ffs)
			if _, err := s2.Do(storeKey, executeCounter(tr, &execs2)); err != nil {
				t.Fatal(err)
			}
			if execs2 != 1 {
				t.Fatalf("second store executed %d times, want 1 (re-execute after failed spill)", execs2)
			}
		})
	}
}

// TestSpillReadFaultsDegradeGracefully injects open failures and
// single-byte corruption at every interesting offset of a real spill
// file, and requires the store to re-execute — never to replay a
// corrupted stream.
func TestSpillReadFaultsDegradeGracefully(t *testing.T) {
	tr := makeTrace(t, 300)
	wantSum, _ := digestTrace(t, tr)

	// Build one good spill file to corrupt.
	seed := NewFaultFS()
	s0 := tracestore.New(0, "spill")
	s0.SetFS(seed)
	execs0 := 0
	if _, err := s0.Do(storeKey, executeCounter(tr, &execs0)); err != nil {
		t.Fatal(err)
	}
	files := seed.Files()
	if len(files) != 1 {
		t.Fatalf("expected 1 spill file, have %v", files)
	}

	t.Run("open-failure", func(t *testing.T) {
		ffs := NewFaultFS()
		ffs.FailOpen = true
		execs := 0
		s := tracestore.New(0, "spill")
		s.SetFS(ffs)
		if _, err := s.Do(storeKey, executeCounter(tr, &execs)); err != nil {
			t.Fatal(err)
		}
		if execs != 1 {
			t.Fatalf("open fault: executed %d times, want 1", execs)
		}
	})

	// Corrupt one byte at a sweep of offsets spanning magic, header,
	// checksum, and stream body. Every case must re-execute (the spill
	// is rejected) and the served stream must digest identically.
	spillLen := func() int {
		rc, err := seed.Open(files[0])
		if err != nil {
			t.Fatal(err)
		}
		defer rc.Close()
		n := 0
		buf := make([]byte, 4096)
		for {
			k, err := rc.Read(buf)
			n += k
			if err != nil {
				break
			}
		}
		return n
	}()
	offsets := []int{0, 4, 9, 40, 90, 100, spillLen / 2, spillLen - 1}
	for _, off := range offsets {
		if off < 0 || off >= spillLen {
			continue
		}
		ffs := NewFaultFS()
		// Share the good file, then arm corruption on read.
		rc, _ := seed.Open(files[0])
		data := make([]byte, 0, spillLen)
		buf := make([]byte, 4096)
		for {
			k, err := rc.Read(buf)
			data = append(data, buf[:k]...)
			if err != nil {
				break
			}
		}
		rc.Close()
		f, err := ffs.CreateTemp("spill", "seed")
		if err != nil {
			t.Fatal(err)
		}
		f.Write(data)
		f.Close()
		if err := ffs.Rename(f.Name(), files[0]); err != nil {
			t.Fatal(err)
		}
		ffs.CorruptRead = true
		ffs.CorruptOff = off
		ffs.CorruptMask = 0x40

		execs := 0
		s := tracestore.New(0, "spill")
		s.SetFS(ffs)
		got, err := s.Do(storeKey, executeCounter(tr, &execs))
		if err != nil {
			t.Fatalf("offset %d: corruption leaked into Do: %v", off, err)
		}
		if execs != 1 {
			t.Fatalf("offset %d: corrupted spill replayed instead of re-executing", off)
		}
		if gotSum, _ := digestTrace(t, got); gotSum != wantSum {
			t.Fatalf("offset %d: served stream corrupted", off)
		}
	}
}

// TestCorruptTraceFailsLoudly corrupts in-memory v2 streams across the
// whole byte range and requires the decoder to either error or produce
// a stream that differs from the original — never a silent bit-exact
// lie. (Detecting the difference is the caller's job via digests or the
// spill checksum; this test confirms the information to detect it
// exists.)
func TestCorruptTraceFailsLoudly(t *testing.T) {
	tr := makeTrace(t, 100)
	enc := tr.Encoded()
	origSum, origEvents := digestTrace(t, tr)

	for off := 0; off < len(enc); off += 7 {
		bad := tracestore.NewTrace(tr.Summary, Corrupt(enc, off, 0x81))
		p, err := bad.Player()
		if err != nil {
			continue // header corruption rejected at construction: loud.
		}
		d := fsb.NewStreamDigest()
		for r, ok := p.Next(); ok; r, ok = p.Next() {
			d.OnRef(r)
		}
		if p.Err() != nil {
			continue // decode error: loud.
		}
		if d.Sum() == origSum && d.Events() == origEvents {
			t.Fatalf("offset %d: corrupted stream decoded bit-identically to the original", off)
		}
	}
}

// TestDropSnooperDetection checks a lossy delivery path is always
// distinguishable: the digest of a dropped stream differs, and the
// event count conservation check fails by exactly the dropped count.
func TestDropSnooperDetection(t *testing.T) {
	refs := newRefGen(3).refs(1000)

	clean := fsb.NewStreamDigest()
	deliver(refs, clean)

	inner := fsb.NewStreamDigest()
	drop := &DropSnooper{Inner: inner, DropEvery: 97}
	deliver(refs, drop)

	if drop.Dropped() == 0 {
		t.Fatal("DropSnooper dropped nothing")
	}
	if inner.Sum() == clean.Sum() {
		t.Fatal("digest failed to detect dropped events")
	}
	if err := Conserve("delivered events", inner.Events()+drop.Dropped(), clean.Events()); err != nil {
		t.Fatal(err)
	}
	// DropEvery 0 must be a transparent passthrough.
	inner2 := fsb.NewStreamDigest()
	deliver(refs, &DropSnooper{Inner: inner2})
	if inner2.Sum() != clean.Sum() || inner2.Events() != clean.Events() {
		t.Fatal("DropEvery=0 is not a transparent passthrough")
	}
}

// TestDropSnooperForwardsLifecycle checks Finalize/AttachAsync reach
// the inner snooper through the fault wrapper.
func TestDropSnooperForwardsLifecycle(t *testing.T) {
	rec := &lifecycleRecorder{}
	d := &DropSnooper{Inner: rec, DropEvery: 2}
	d.AttachAsync()
	d.OnRef(trace.Ref{Addr: 1, Size: 1, Kind: mem.Load})
	d.OnMsg(fsb.Message{Kind: fsb.MsgStart})
	d.Finalize()
	if !rec.attached || !rec.finalized {
		t.Fatalf("lifecycle not forwarded: attached=%v finalized=%v", rec.attached, rec.finalized)
	}
	if rec.events != 1 {
		t.Fatalf("inner saw %d events, want 1 (second dropped)", rec.events)
	}
}

type lifecycleRecorder struct {
	events    int
	attached  bool
	finalized bool
}

func (l *lifecycleRecorder) OnRef(trace.Ref)   { l.events++ }
func (l *lifecycleRecorder) OnMsg(fsb.Message) { l.events++ }
func (l *lifecycleRecorder) Finalize()         { l.finalized = true }
func (l *lifecycleRecorder) AttachAsync()      { l.attached = true }
