// The stack-distance oracle moved to internal/oracle when PR 6 promoted
// it from a cross-checking aid to the analytic engine behind the sweep
// planner. verify remains a consumer: the differential tests drive the
// engine as one more independent model alongside cache.Cache and
// RefCache. The alias keeps the established verify vocabulary — an
// "oracle" here is the thing simulations are checked against.

package verify

import "cmpmem/internal/oracle"

// Oracle predicts exact LRU miss counts for a family of set-associative
// geometries sharing one line size. It is the analytic engine from
// internal/oracle under its verification-role name.
type Oracle = oracle.Engine

// NewOracle returns an oracle for the given line size (a power of two,
// at least 2 — the same constraint cache.Config imposes).
func NewOracle(lineSize uint64) (*Oracle, error) {
	return oracle.New(lineSize)
}
