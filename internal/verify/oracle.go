// The stack-distance oracle: exact LRU miss counts for every registered
// cache geometry from one pass over the reference stream.
//
// Mattson's inclusion property says an LRU stack of depth A holds
// exactly the A most recently used lines, so a reference hits in an
// A-way set iff its stack distance within that set is < A. Partitioning
// line addresses by set index therefore turns one per-set reuse-distance
// histogram into the exact miss count of *every* associativity at that
// set count simultaneously — the classic single-pass answer to "simulate
// all cache sizes at once" that internal/stackdist already implements
// for the fully-associative case. The oracle simply maintains one
// stackdist.Analyzer per set, per registered set count.
//
// The oracle mirrors the Dragonhead AF stage bit for bit: it honors the
// start/stop emulation window, ignores control-message transactions, and
// regulates each reference into line-granular requests. Because the CC
// bank interleave is an exact partition of the monolithic set space
// (bank = low line bits, bank-local set = next bits), the oracle's
// monolithic set indexing predicts the banked pipeline too — which is
// precisely the cross-check cosim -verify runs.

package verify

import (
	"fmt"

	"cmpmem/internal/cache"
	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/stackdist"
	"cmpmem/internal/trace"
)

// setFamily holds the per-set analyzers of one set count.
type setFamily struct {
	sets     uint64
	setMask  uint64
	maxAssoc int
	perSet   map[uint64]*stackdist.Analyzer
}

// Oracle predicts exact LRU miss counts for a family of set-associative
// geometries sharing one line size. Register every geometry with
// AddGeometry before streaming references; then drive the oracle as an
// fsb.Snooper (live bus or replay) or via Record, and read predictions
// with Misses.
type Oracle struct {
	lineSize  uint64
	lineShift uint
	window    bool
	accesses  uint64
	families  map[uint64]*setFamily
}

// NewOracle returns an oracle for the given line size (a power of two,
// at least 2 — the same constraint cache.Config imposes).
func NewOracle(lineSize uint64) (*Oracle, error) {
	if lineSize < 2 || lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("verify: line size %d is not a power of two >= 2", lineSize)
	}
	o := &Oracle{lineSize: lineSize, families: make(map[uint64]*setFamily)}
	for s := lineSize; s > 1; s >>= 1 {
		o.lineShift++
	}
	return o, nil
}

// AddGeometry registers a (set count, associativity) pair to predict.
// Multiple associativities at one set count share a single analyzer
// family, so adding them is free. Must be called before any reference
// is recorded.
func (o *Oracle) AddGeometry(sets uint64, assoc int) error {
	if o.accesses > 0 {
		return fmt.Errorf("verify: AddGeometry after recording started")
	}
	if sets == 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("verify: set count %d is not a power of two", sets)
	}
	if assoc < 1 {
		return fmt.Errorf("verify: associativity %d below 1", assoc)
	}
	f := o.families[sets]
	if f == nil {
		f = &setFamily{sets: sets, setMask: sets - 1, perSet: make(map[uint64]*stackdist.Analyzer)}
		o.families[sets] = f
	}
	if assoc > f.maxAssoc {
		f.maxAssoc = assoc
	}
	return nil
}

// AddConfig registers the geometry of a concrete cache configuration.
func (o *Oracle) AddConfig(cfg cache.Config) error {
	sets, assoc, err := o.geometry(cfg)
	if err != nil {
		return err
	}
	return o.AddGeometry(sets, assoc)
}

// geometry derives (sets, assoc) from cfg and validates it against the
// oracle's line size.
func (o *Oracle) geometry(cfg cache.Config) (uint64, int, error) {
	if cfg.LineSize != o.lineSize {
		return 0, 0, fmt.Errorf("verify: config %q line size %d != oracle line size %d",
			cfg.Name, cfg.LineSize, o.lineSize)
	}
	if err := cfg.Validate(); err != nil {
		return 0, 0, err
	}
	lines := cfg.Size / cfg.LineSize
	assoc := cfg.Assoc
	if assoc == 0 {
		assoc = int(lines)
	}
	return lines / uint64(assoc), assoc, nil
}

// Record processes one line-granular request to block number blk.
func (o *Oracle) record(blk uint64) {
	o.accesses++
	for _, f := range o.families {
		set := blk & f.setMask
		a := f.perSet[set]
		if a == nil {
			// Line size 1 makes the analyzer's distances line-granular:
			// the oracle already shifted addresses to block numbers.
			a = stackdist.New(1, f.maxAssoc)
			f.perSet[set] = a
		}
		// Within a set, distinct blocks are distinct lines; the stack
		// distance of blk among its set-mates is its LRU depth there.
		a.Record(mem.Addr(blk))
	}
}

// OnRef implements fsb.Snooper: the AF stage. Control-message
// transactions never reach the cache pipeline; out-of-window
// transactions are host noise and are dropped; everything else is
// regulated into line-granular requests exactly like Dragonhead.
func (o *Oracle) OnRef(r trace.Ref) {
	if fsb.IsMessage(r) {
		return
	}
	if !o.window {
		return
	}
	size := r.Size
	if size == 0 {
		size = 1
	}
	first := uint64(r.Addr) >> o.lineShift
	last := (uint64(r.Addr) + uint64(size) - 1) >> o.lineShift
	for blk := first; blk <= last; blk++ {
		o.record(blk)
	}
}

// OnMsg implements fsb.Snooper: only the emulation window matters to a
// replacement-state oracle.
func (o *Oracle) OnMsg(m fsb.Message) {
	switch m.Kind {
	case fsb.MsgStart:
		o.window = true
	case fsb.MsgStop:
		o.window = false
	}
}

// Accesses returns the number of in-window line-granular requests seen —
// which must equal the Accesses counter of every cache it predicts.
func (o *Oracle) Accesses() uint64 { return o.accesses }

// Misses returns the exact LRU miss count for the registered geometry.
func (o *Oracle) Misses(sets uint64, assoc int) (uint64, error) {
	f := o.families[sets]
	if f == nil {
		return 0, fmt.Errorf("verify: set count %d was never registered", sets)
	}
	if assoc < 1 || assoc > f.maxAssoc {
		return 0, fmt.Errorf("verify: associativity %d outside registered range [1,%d]", assoc, f.maxAssoc)
	}
	var misses uint64
	for _, a := range f.perSet {
		misses += a.MissesForLines(assoc)
	}
	return misses, nil
}

// MissesForConfig returns the exact LRU miss count predicted for cfg.
func (o *Oracle) MissesForConfig(cfg cache.Config) (uint64, error) {
	sets, assoc, err := o.geometry(cfg)
	if err != nil {
		return 0, err
	}
	return o.Misses(sets, assoc)
}
