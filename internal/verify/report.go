// The verification report: a flat list of named pass/fail findings.
//
// cosim -verify runs dozens of checks across workloads, geometries, and
// fault scenarios; the report gives them one shape that renders as a
// terminal summary for humans and as JSON for the CI artifact.

package verify

import (
	"encoding/json"
	"fmt"
	"io"
)

// Finding is one check's outcome.
type Finding struct {
	Check  string `json:"check"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// Report accumulates findings.
type Report struct {
	Findings []Finding `json:"findings"`
}

// Passf records a passing finding.
func (r *Report) Passf(check, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{Check: check, OK: true, Detail: fmt.Sprintf(format, args...)})
}

// Failf records a failing finding.
func (r *Report) Failf(check, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{Check: check, OK: false, Detail: fmt.Sprintf(format, args...)})
}

// Check records err as a finding: pass when nil, fail with the error
// text otherwise.
func (r *Report) Check(check string, err error) {
	if err != nil {
		r.Failf(check, "%v", err)
		return
	}
	r.Passf(check, "ok")
}

// Merge appends another report's findings.
func (r *Report) Merge(other *Report) {
	r.Findings = append(r.Findings, other.Findings...)
}

// OK reports whether every finding passed (vacuously true when empty).
func (r *Report) OK() bool {
	for _, f := range r.Findings {
		if !f.OK {
			return false
		}
	}
	return true
}

// Counts returns (passed, failed).
func (r *Report) Counts() (passed, failed int) {
	for _, f := range r.Findings {
		if f.OK {
			passed++
		} else {
			failed++
		}
	}
	return
}

// Render writes the human-readable summary. Failures print first so
// they are visible even when the pass list scrolls.
func (r *Report) Render(w io.Writer) {
	passed, failed := r.Counts()
	for _, f := range r.Findings {
		if !f.OK {
			fmt.Fprintf(w, "FAIL %-48s %s\n", f.Check, f.Detail)
		}
	}
	for _, f := range r.Findings {
		if f.OK {
			fmt.Fprintf(w, "ok   %-48s %s\n", f.Check, f.Detail)
		}
	}
	fmt.Fprintf(w, "\nverify: %d checks, %d passed, %d failed\n", passed+failed, passed, failed)
}

// WriteJSON writes the report as indented JSON (the CI artifact form).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
