package verify

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cmpmem/internal/cache"
)

func TestMonotoneMisses(t *testing.T) {
	good := []MissPoint{{"4MB", 4, 100}, {"8MB", 8, 100}, {"16MB", 16, 40}}
	if err := MonotoneMisses(good); err != nil {
		t.Errorf("monotone curve rejected: %v", err)
	}
	bad := []MissPoint{{"4MB", 4, 100}, {"8MB", 8, 120}}
	if err := MonotoneMisses(bad); err == nil {
		t.Error("non-monotone curve accepted")
	}
	if err := MonotoneMisses(nil); err != nil {
		t.Errorf("empty curve rejected: %v", err)
	}
}

func TestDiffStats(t *testing.T) {
	a := cache.Stats{Accesses: 10, Misses: 3, Loads: 7, Stores: 3}
	if err := DiffStats("same", a, a); err != nil {
		t.Errorf("identical stats diverge: %v", err)
	}
	b := a
	b.Misses = 4
	err := DiffStats("diff", a, b)
	if err == nil {
		t.Fatal("divergent stats accepted")
	}
	if !strings.Contains(err.Error(), "misses 3 != 4") {
		t.Errorf("diff does not name the field: %v", err)
	}
	c := a
	c.PerCoreMisses[2] = 1
	if err := DiffStats("core", a, c); err == nil {
		t.Error("per-core divergence accepted")
	}
}

func TestBankPartition(t *testing.T) {
	banks := []cache.Stats{
		{Accesses: 6, Misses: 2, Loads: 4, Stores: 2},
		{Accesses: 4, Misses: 1, Loads: 3, Stores: 1},
	}
	total := cache.Stats{Accesses: 10, Misses: 3, Loads: 7, Stores: 3}
	if err := BankPartition(total, banks); err != nil {
		t.Errorf("exact partition rejected: %v", err)
	}
	total.Misses = 4 // one miss lost between AF and banks
	if err := BankPartition(total, banks); err == nil {
		t.Error("lossy partition accepted")
	}
}

func TestDiffSnapshots(t *testing.T) {
	a := [][]uint64{{1, 2}, {3}}
	if err := DiffSnapshots(a, [][]uint64{{1, 2}, {3}}); err != nil {
		t.Errorf("identical snapshots diverge: %v", err)
	}
	if err := DiffSnapshots(a, [][]uint64{{1, 2}}); err == nil {
		t.Error("set-count mismatch accepted")
	}
	if err := DiffSnapshots(a, [][]uint64{{1}, {3}}); err == nil {
		t.Error("occupancy mismatch accepted")
	}
	if err := DiffSnapshots(a, [][]uint64{{2, 1}, {3}}); err == nil {
		t.Error("recency-order mismatch accepted")
	}
}

func TestReport(t *testing.T) {
	var r Report
	if !r.OK() {
		t.Error("empty report not OK")
	}
	r.Passf("check-a", "matched %d workloads", 8)
	r.Check("check-b", nil)
	if !r.OK() {
		t.Error("all-pass report not OK")
	}
	r.Failf("check-c", "delta %d", 3)
	r.Check("check-d", Conserve("x", 1, 2))
	if r.OK() {
		t.Error("failing report reported OK")
	}
	passed, failed := r.Counts()
	if passed != 2 || failed != 2 {
		t.Errorf("counts = %d/%d, want 2/2", passed, failed)
	}

	var other Report
	other.Passf("check-e", "ok")
	r.Merge(&other)
	if p, _ := r.Counts(); p != 3 {
		t.Errorf("merge lost findings: %d passed", p)
	}

	var buf bytes.Buffer
	r.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "FAIL check-c") || !strings.Contains(out, "5 checks, 3 passed, 2 failed") {
		t.Errorf("render output wrong:\n%s", out)
	}
	// Failures must print before passes.
	if strings.Index(out, "FAIL") > strings.Index(out, "ok ") {
		t.Error("failures not rendered first")
	}

	buf.Reset()
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded Report
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Findings) != len(r.Findings) {
		t.Errorf("JSON round trip lost findings: %d != %d", len(decoded.Findings), len(r.Findings))
	}
}
