// The reference cache: a deliberately naive LRU model for differential
// testing of internal/cache.
//
// internal/cache earns its speed with tricks — recency-ordered way
// slices, sentinel tags instead of valid bits, rotate-on-hit fast
// paths. RefCache spends none of that cleverness: per-way timestamp
// counters, a linear victim scan, no fast paths. The two
// implementations share nothing but the LRU specification, so bit-exact
// agreement of their miss counts *and* full replacement state (Snapshot)
// is strong evidence both implement it.

package verify

import (
	"fmt"
	"sort"

	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
)

// refLine is one way of the reference cache.
type refLine struct {
	tag   uint64
	valid bool
	stamp uint64 // global access counter at last touch; larger = more recent
}

// RefCache is a set-associative true-LRU cache modeled with explicit
// timestamps. It intentionally mirrors the counting semantics of
// cache.Cache for unsectored caches: references split line-granularly,
// one access and at most one miss counted per line touched.
type RefCache struct {
	lineShift uint
	setMask   uint64
	assoc     int
	sets      [][]refLine
	clock     uint64

	accesses   uint64
	misses     uint64
	loads      uint64
	stores     uint64
	loadMisses uint64
}

// NewRefCache builds a reference cache of the given total size, line
// size, and associativity (assoc 0 = fully associative).
func NewRefCache(size, lineSize uint64, assoc int) (*RefCache, error) {
	if lineSize < 2 || lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("verify: ref cache line size %d is not a power of two >= 2", lineSize)
	}
	if size == 0 || size%lineSize != 0 {
		return nil, fmt.Errorf("verify: ref cache size %d not a positive multiple of line size %d", size, lineSize)
	}
	lines := size / lineSize
	if assoc == 0 {
		assoc = int(lines)
	}
	if uint64(assoc) > lines || lines%uint64(assoc) != 0 {
		return nil, fmt.Errorf("verify: ref cache associativity %d does not divide %d lines", assoc, lines)
	}
	nsets := lines / uint64(assoc)
	if nsets&(nsets-1) != 0 {
		return nil, fmt.Errorf("verify: ref cache set count %d is not a power of two", nsets)
	}
	c := &RefCache{setMask: nsets - 1, assoc: assoc, sets: make([][]refLine, nsets)}
	for s := lineSize; s > 1; s >>= 1 {
		c.lineShift++
	}
	backing := make([]refLine, lines)
	for i := range c.sets {
		c.sets[i] = backing[uint64(i)*uint64(assoc) : (uint64(i)+1)*uint64(assoc)]
	}
	return c, nil
}

// touch performs one line-granular access to block blk and reports miss.
func (c *RefCache) touch(blk uint64, kind mem.Kind) bool {
	c.clock++
	c.accesses++
	if kind == mem.Load {
		c.loads++
	} else {
		c.stores++
	}
	set := c.sets[blk&c.setMask]
	for i := range set {
		if set[i].valid && set[i].tag == blk {
			set[i].stamp = c.clock
			return false
		}
	}
	c.misses++
	if kind == mem.Load {
		c.loadMisses++
	}
	// Victim = first invalid way, else the smallest timestamp (true LRU).
	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if victim < 0 || set[i].stamp < set[victim].stamp {
			victim = i
		}
	}
	set[victim] = refLine{tag: blk, valid: true, stamp: c.clock}
	return true
}

// Access performs one reference, splitting it across lines when it
// straddles a boundary — the same shape as cache.Cache.Access. It
// returns the number of misses incurred.
func (c *RefCache) Access(addr mem.Addr, size uint8, kind mem.Kind, core uint8) int {
	if size == 0 {
		size = 1
	}
	first := uint64(addr) >> c.lineShift
	last := (uint64(addr) + uint64(size) - 1) >> c.lineShift
	misses := 0
	for blk := first; blk <= last; blk++ {
		if c.touch(blk, kind) {
			misses++
		}
	}
	return misses
}

// Accesses returns the number of line-granular accesses performed.
func (c *RefCache) Accesses() uint64 { return c.accesses }

// Misses returns the number of line-granular misses.
func (c *RefCache) Misses() uint64 { return c.misses }

// Loads returns the number of load accesses.
func (c *RefCache) Loads() uint64 { return c.loads }

// Stores returns the number of store accesses.
func (c *RefCache) Stores() uint64 { return c.stores }

// LoadMisses returns the number of load misses.
func (c *RefCache) LoadMisses() uint64 { return c.loadMisses }

// Snapshot dumps the resident line tags of every set ordered most
// recently used first — the same shape cache.Cache.Snapshot produces
// for the LRU policy, enabling bit-exact state comparison.
func (c *RefCache) Snapshot() [][]uint64 {
	out := make([][]uint64, len(c.sets))
	for i, set := range c.sets {
		ways := make([]refLine, 0, len(set))
		for _, l := range set {
			if l.valid {
				ways = append(ways, l)
			}
		}
		sort.Slice(ways, func(a, b int) bool { return ways[a].stamp > ways[b].stamp })
		tags := make([]uint64, len(ways))
		for j, l := range ways {
			tags[j] = l.tag
		}
		out[i] = tags
	}
	return out
}

// Accessor is the byte-addressed access interface shared by cache.Cache
// and RefCache — the seam differential tests drive both models through.
type Accessor interface {
	Access(addr mem.Addr, size uint8, kind mem.Kind, core uint8) int
}

// BusAdapter turns any Accessor into an fsb.Snooper with the Dragonhead
// AF's front-end semantics: control messages are consumed, transactions
// outside the start/stop emulation window are dropped, and everything
// else is forwarded untouched (the Accessor does its own line split).
type BusAdapter struct {
	Target Accessor
	window bool
}

// OnRef implements fsb.Snooper.
func (b *BusAdapter) OnRef(r trace.Ref) {
	if fsb.IsMessage(r) || !b.window {
		return
	}
	b.Target.Access(r.Addr, r.Size, r.Kind, r.Core)
}

// OnMsg implements fsb.Snooper.
func (b *BusAdapter) OnMsg(m fsb.Message) {
	switch m.Kind {
	case fsb.MsgStart:
		b.window = true
	case fsb.MsgStop:
		b.window = false
	}
}
