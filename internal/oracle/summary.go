package oracle

import (
	"fmt"
	"math"
)

// DistanceSummary condenses a set family's merged reuse-distance
// histogram into the numbers traceinfo -stackdist prints. Percentiles
// are over reuse (non-cold) distances, in lines; -1 means the
// percentile lies beyond the tracked histogram depth.
type DistanceSummary struct {
	// Requests is the number of in-window line-granular requests.
	Requests uint64
	// Distinct is the number of distinct lines touched.
	Distinct uint64
	// Cold counts first-touch (compulsory-miss) requests.
	Cold uint64
	// Depth is the histogram depth in lines: distances >= Depth are
	// only known to be "deeper", not exactly.
	Depth int
	// P50, P90, P99 are reuse-distance percentiles in lines (-1 when
	// beyond Depth).
	P50, P90, P99 int
}

// Reuse returns the number of non-cold requests.
func (s DistanceSummary) Reuse() uint64 { return s.Requests - s.Cold }

// Summary merges the per-set histograms of one registered set count
// into a DistanceSummary. With sets == 1 the distances are plain
// fully-associative reuse distances — the traceinfo use case.
func (e *Engine) Summary(sets uint64) (DistanceSummary, error) {
	f := e.families[sets]
	if f == nil {
		return DistanceSummary{}, fmt.Errorf("oracle: set count %d was never registered", sets)
	}
	merged := make([]uint64, f.maxAssoc)
	var s DistanceSummary
	s.Depth = f.maxAssoc
	s.Requests = e.accesses
	s.Distinct = uint64(len(e.seen))
	if f.fast {
		for set := uint64(0); set < f.sets; set++ {
			s.Cold += f.cold[set]
			base := int(set) * f.maxAssoc
			for d := 0; d < f.maxAssoc; d++ {
				merged[d] += f.hist[base+d]
			}
		}
	} else {
		for _, a := range f.perSet {
			s.Cold += a.Cold()
			hist, _ := a.Histogram() // overflow mass is Reuse - sum(merged)
			for d, n := range hist {
				merged[d] += n
			}
		}
	}
	s.P50 = percentile(merged, s.Reuse(), 0.50)
	s.P90 = percentile(merged, s.Reuse(), 0.90)
	s.P99 = percentile(merged, s.Reuse(), 0.99)
	return s, nil
}

// percentile returns the smallest distance d such that at least
// ceil(q*total) reuse requests had distance <= d, or -1 when that rank
// falls into the beyond-depth overflow.
func percentile(hist []uint64, total uint64, q float64) int {
	if total == 0 {
		return -1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for d, n := range hist {
		cum += n
		if cum >= rank {
			return d
		}
	}
	return -1
}
