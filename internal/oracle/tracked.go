package oracle

import (
	"fmt"

	"cmpmem/internal/cache"
)

// Sample is one CB counter snapshot for a tracked geometry, field-wise
// identical to dragonhead.Sample so planner-answered series can be
// compared (and converted) bit for bit.
type Sample struct {
	// Cycles is the cumulative cycles-completed at collection time.
	Cycles uint64
	// Instructions is the cumulative instructions retired (all cores).
	Instructions uint64
	// Accesses and Misses are cumulative LLC counters.
	Accesses uint64
	Misses   uint64
}

// Tracked is a per-configuration handle returned by Track: it carries
// running counters (misses, per-core misses, gap-observed writebacks,
// CB samples) for one geometry and reconstructs the geometry's full
// cache.Stats on demand.
type Tracked struct {
	eng     *Engine
	fam     *setFamily
	bit     uint64 // this geometry's bit in the engine's dirty bitmasks
	cfg     cache.Config
	sets    uint64
	assoc   int
	assoc32 uint32

	misses        uint64
	loadMisses    uint64
	writebacks    uint64 // evictions-while-dirty observed at reuse time
	perCoreMisses [cache.MaxCores]uint64
	samples       []Sample
}

// Track registers cfg for full-Stats reconstruction and returns its
// handle. Only LRU, unsectored configurations qualify: inclusion (and
// with it the whole analytic derivation) holds for true LRU only, and
// sector valid bits add per-sector fill state the stack profile cannot
// see. Must be called before any reference is recorded.
func (e *Engine) Track(cfg cache.Config) (*Tracked, error) {
	if cfg.Repl != cache.LRU {
		return nil, fmt.Errorf("oracle: config %q uses %v replacement; only LRU is analytically expressible", cfg.Name, cfg.Repl)
	}
	if cfg.SectorSize != 0 {
		return nil, fmt.Errorf("oracle: config %q is sectored; sector fill state is not analytically expressible", cfg.Name)
	}
	sets, assoc, err := e.geometry(cfg)
	if err != nil {
		return nil, err
	}
	if e.trackedCount >= maxTracked {
		return nil, fmt.Errorf("oracle: more than %d tracked geometries in one engine", maxTracked)
	}
	if err := e.AddGeometry(sets, assoc); err != nil {
		return nil, err
	}
	f := e.families[sets]
	t := &Tracked{
		eng:     e,
		fam:     f,
		bit:     1 << uint(e.trackedCount),
		cfg:     cfg,
		sets:    sets,
		assoc:   assoc,
		assoc32: uint32(assoc),
	}
	e.trackedCount++
	f.tracked = append(f.tracked, t)
	return t, nil
}

// Config returns the configuration this handle tracks.
func (t *Tracked) Config() cache.Config { return t.cfg }

// Misses returns the running miss count.
func (t *Tracked) Misses() uint64 { return t.misses }

// Samples returns a copy of the CB time series collected so far
// (empty unless EnableSampling was called).
func (t *Tracked) Samples() []Sample {
	out := make([]Sample, len(t.samples))
	copy(out, t.samples)
	return out
}

// MPKI returns misses per 1000 retired instructions, mirroring
// dragonhead.Emulator.MPKI.
func (t *Tracked) MPKI() float64 {
	inst := t.eng.instructions()
	if inst == 0 {
		return 0
	}
	return float64(t.misses) * 1000 / float64(inst)
}

// Stats reconstructs the full cache.Stats the simulated cache would
// report, without having simulated it:
//
//   - Accesses/Loads/Stores/PerCoreAccesses are geometry-independent
//     stream counters.
//   - Misses/LoadMisses/PerCoreMisses follow from inclusion (distance
//     >= assoc, or cold).
//   - SectorFetches = Misses (unsectored: one line fill per miss).
//   - Evictions: a set's i-th miss evicts iff i > assoc (the first
//     assoc fills take invalid ways), so each set contributes
//     max(0, misses_set - assoc).
//   - Writebacks: gap-observed writebacks (counted in record at reuse
//     time) plus lines that end the trace dirty and evicted — those
//     left the cache dirty after their last access, with no reuse left
//     to observe it. A line is still resident at the end iff its final
//     stack depth is < assoc, which both representations can answer:
//     the bounded stack holds the maxAssoc >= assoc shallowest lines
//     exactly, and the Fenwick path enumerates final depths directly.
//   - TrafficBytes = LineSize x (fills + writebacks).
//
// Stats walks the family's per-set state and the engine's dirty map;
// call it after the stream is delivered (not a hot-path accessor).
func (t *Tracked) Stats() cache.Stats {
	e := t.eng
	s := cache.Stats{
		Accesses:        e.accesses,
		Misses:          t.misses,
		Loads:           e.loads,
		Stores:          e.stores,
		LoadMisses:      t.loadMisses,
		SectorFetches:   t.misses,
		PerCoreAccesses: e.perCoreAccesses,
		PerCoreMisses:   t.perCoreMisses,
	}
	f := t.fam
	assoc := uint64(t.assoc)
	wb := t.writebacks
	if f.fast {
		for set := uint64(0); set < f.sets; set++ {
			if m := f.setMisses(set, t.assoc); m > assoc {
				s.Evictions += m - assoc
			}
		}
		// Dirty lines evicted after their last access: all dirty lines,
		// minus the ones still resident (within the first assoc stack
		// positions of their set).
		var dirty, resident uint64
		for _, mask := range e.seen {
			if mask&t.bit != 0 {
				dirty++
			}
		}
		for set := uint64(0); set < f.sets; set++ {
			base := int(set) * f.maxAssoc
			n := int(f.depth[set])
			if n > t.assoc {
				n = t.assoc
			}
			for _, blk := range f.stack[base : base+n] {
				if e.seen[blk]&t.bit != 0 {
					resident++
				}
			}
		}
		wb += dirty - resident
	} else {
		for _, a := range f.perSet {
			if m := a.MissesForLines(t.assoc); m > assoc {
				s.Evictions += m - assoc
			}
			a.FinalDepths(func(blk uint64, depth int) {
				if depth >= t.assoc && e.seen[blk]&t.bit != 0 {
					wb++
				}
			})
		}
	}
	s.Writebacks = wb
	s.TrafficBytes = e.lineSize * (t.misses + wb)
	return s
}
