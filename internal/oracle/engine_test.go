package oracle

import (
	"testing"

	"cmpmem/internal/cache"
	"cmpmem/internal/dragonhead"
	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
)

// refGen is a deterministic xorshift reference generator producing a
// mix of sequential runs, strided walks, and random touches — the same
// locality structure the verify differential tests use.
type refGen struct{ state uint64 }

func newRefGen(seed uint64) *refGen {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &refGen{state: seed}
}

func (g *refGen) next() uint64 {
	g.state ^= g.state << 13
	g.state ^= g.state >> 7
	g.state ^= g.state << 17
	return g.state
}

func (g *refGen) refs(n int) []trace.Ref {
	refs := make([]trace.Ref, 0, n)
	var base uint64
	for len(refs) < n {
		switch g.next() % 4 {
		case 0:
			base = g.next() % (1 << 20)
		case 1:
			for i := 0; i < 16 && len(refs) < n; i++ {
				refs = append(refs, trace.Ref{Addr: mem.Addr(base + uint64(i)*8), Size: 8, Kind: mem.Load, Core: uint8(g.next() % 4)})
			}
		case 2:
			for i := 0; i < 8 && len(refs) < n; i++ {
				refs = append(refs, trace.Ref{Addr: mem.Addr(base + uint64(i)*256), Size: 4, Kind: mem.Store, Core: uint8(g.next() % 4)})
			}
		case 3:
			sz := uint8(1 << (g.next() % 4))
			if g.next()%8 == 0 {
				sz = 64
			}
			refs = append(refs, trace.Ref{Addr: mem.Addr(g.next() % (1 << 20)), Size: sz, Kind: mem.Kind(g.next() % 2), Core: uint8(g.next() % 4)})
		}
	}
	return refs
}

func deliver(refs []trace.Ref, snoopers ...fsb.Snooper) {
	for _, s := range snoopers {
		s.OnMsg(fsb.Message{Kind: fsb.MsgStart})
	}
	for _, r := range refs {
		for _, s := range snoopers {
			s.OnRef(r)
		}
	}
	for _, s := range snoopers {
		s.OnMsg(fsb.Message{Kind: fsb.MsgStop})
	}
}

// trackedConfigs is the grid the full-Stats differential covers:
// direct-mapped through fully-associative, across sizes, at one line
// size — every analytically expressible shape.
func trackedConfigs() []cache.Config {
	var cfgs []cache.Config
	for _, size := range []uint64{4 << 10, 16 << 10, 64 << 10} {
		for _, assoc := range []int{1, 2, 8} {
			cfgs = append(cfgs, cache.Config{Name: "t", Size: size, LineSize: 64, Assoc: assoc, Repl: cache.LRU})
		}
	}
	cfgs = append(cfgs, cache.Config{Name: "fa", Size: 8 << 10, LineSize: 64, Assoc: 0, Repl: cache.LRU})
	return cfgs
}

// TestTrackedStatsDifferential is the load-bearing property of the
// analytic engine: for every tracked geometry, the reconstructed
// cache.Stats — all fields, including evictions, writebacks, traffic,
// and both per-core arrays — must equal what the production cache
// reports after simulating the identical stream.
func TestTrackedStatsDifferential(t *testing.T) {
	for _, seed := range []uint64{7, 42, 1234} {
		refs := newRefGen(seed).refs(20000)
		eng, err := New(64)
		if err != nil {
			t.Fatal(err)
		}
		type pair struct {
			tr *Tracked
			c  *cache.Cache
		}
		var pairs []pair
		for _, cfg := range trackedConfigs() {
			tr, err := eng.Track(cfg)
			if err != nil {
				t.Fatal(err)
			}
			c, err := cache.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			pairs = append(pairs, pair{tr, c})
		}

		eng.OnMsg(fsb.Message{Kind: fsb.MsgStart})
		for _, r := range refs {
			eng.OnRef(r)
			for _, p := range pairs {
				p.c.Access(r.Addr, r.Size, r.Kind, r.Core)
			}
		}
		eng.OnMsg(fsb.Message{Kind: fsb.MsgStop})

		for _, p := range pairs {
			got := p.tr.Stats()
			want := *p.c.Stats()
			if got != want {
				t.Errorf("seed %d, %d B/%d-way: analytic stats diverge\n got %+v\nwant %+v",
					seed, p.tr.cfg.Size, p.tr.cfg.Assoc, got, want)
			}
		}
	}
}

// TestTrackedWritebackByHand pins the writeback derivation on streams
// small enough to verify on paper (direct-mapped, one set).
func TestTrackedWritebackByHand(t *testing.T) {
	cfg := cache.Config{Name: "dm", Size: 64, LineSize: 64, Assoc: 1, Repl: cache.LRU}
	cases := []struct {
		name             string
		refs             []trace.Ref
		wantMisses       uint64
		wantEvict        uint64
		wantWB           uint64
		wantTrafficBytes uint64
	}{
		{
			// Store A, load B (evicts dirty A -> wb), load A (evicts
			// clean B). A's refetch is clean; final resident A clean.
			name: "gap-observed writeback",
			refs: []trace.Ref{
				{Addr: 0, Size: 1, Kind: mem.Store},
				{Addr: 64, Size: 1, Kind: mem.Load},
				{Addr: 0, Size: 1, Kind: mem.Load},
			},
			wantMisses: 3, wantEvict: 2, wantWB: 1, wantTrafficBytes: 64 * 4,
		},
		{
			// Store A, store B: A is evicted dirty but never reused —
			// only the end-of-trace sweep can see that writeback.
			name: "residual writeback",
			refs: []trace.Ref{
				{Addr: 0, Size: 1, Kind: mem.Store},
				{Addr: 64, Size: 1, Kind: mem.Store},
			},
			wantMisses: 2, wantEvict: 1, wantWB: 1, wantTrafficBytes: 64 * 3,
		},
		{
			// Load A, store A (dirties resident line), load B (evicts
			// dirty A), load A: hit-side dirtying must be observed.
			name: "dirtied by hit",
			refs: []trace.Ref{
				{Addr: 0, Size: 1, Kind: mem.Load},
				{Addr: 0, Size: 1, Kind: mem.Store},
				{Addr: 64, Size: 1, Kind: mem.Load},
				{Addr: 0, Size: 1, Kind: mem.Load},
			},
			wantMisses: 3, wantEvict: 2, wantWB: 1, wantTrafficBytes: 64 * 4,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, _ := New(64)
			tr, err := eng.Track(cfg)
			if err != nil {
				t.Fatal(err)
			}
			c, _ := cache.New(cfg)
			deliver(tc.refs, eng, &busAdapter{c})
			got := tr.Stats()
			if got.Misses != tc.wantMisses || got.Evictions != tc.wantEvict ||
				got.Writebacks != tc.wantWB || got.TrafficBytes != tc.wantTrafficBytes {
				t.Errorf("analytic: misses=%d evict=%d wb=%d traffic=%d, want %d/%d/%d/%d",
					got.Misses, got.Evictions, got.Writebacks, got.TrafficBytes,
					tc.wantMisses, tc.wantEvict, tc.wantWB, tc.wantTrafficBytes)
			}
			if want := *c.Stats(); got != want {
				t.Errorf("diverges from simulation:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// busAdapter drives a cache.Cache from a snooper stream with the same
// window gating the engine applies.
type busAdapter struct{ c *cache.Cache }

func (b *busAdapter) OnRef(r trace.Ref) { b.c.Access(r.Addr, r.Size, r.Kind, r.Core) }
func (b *busAdapter) OnMsg(fsb.Message) {}

// TestSamplesMatchDragonhead checks the CB mirror: with sampling
// enabled, the engine's per-sample series for a tracked geometry is
// element-wise identical to the banked Dragonhead emulator's on the
// same interleaved ref/message stream — the property that lets the
// planner answer Fig 8-style curves analytically.
func TestSamplesMatchDragonhead(t *testing.T) {
	llc := cache.Config{Name: "LLC", Size: 64 << 10, LineSize: 64, Assoc: 8, Repl: cache.LRU}
	emu, err := dragonhead.New(dragonhead.Config{LLC: llc, Banks: 4, ClockHz: 1e6, SamplePeriod: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.EnableSampling(1e6, 1e-3); err != nil {
		t.Fatal(err)
	}
	tr, err := eng.Track(llc)
	if err != nil {
		t.Fatal(err)
	}

	g := newRefGen(99)
	refs := g.refs(30000)
	snoopers := []fsb.Snooper{emu, eng}
	for _, s := range snoopers {
		s.OnMsg(fsb.Message{Kind: fsb.MsgStart})
	}
	var cycles uint64
	for i, r := range refs {
		for _, s := range snoopers {
			s.OnRef(r)
		}
		if i%64 == 0 {
			cycles += 200 + g.next()%1800 // crosses 0..2 sample boundaries
			for _, s := range snoopers {
				s.OnMsg(fsb.Message{Kind: fsb.MsgInstRetired, Core: uint8(i % 4), Value: uint64(i) * 3})
				s.OnMsg(fsb.Message{Kind: fsb.MsgCycles, Value: cycles})
			}
		}
	}
	for _, s := range snoopers {
		s.OnMsg(fsb.Message{Kind: fsb.MsgStop})
	}

	want := emu.Samples()
	got := tr.Samples()
	if len(want) == 0 {
		t.Fatal("no samples collected; stream too short for the period")
	}
	if len(got) != len(want) {
		t.Fatalf("sample counts diverge: analytic %d, emulated %d", len(got), len(want))
	}
	for i := range want {
		g := dragonhead.Sample(got[i])
		if g != want[i] {
			t.Fatalf("sample %d diverges: analytic %+v, emulated %+v", i, g, want[i])
		}
	}
	st := emu.Stats()
	if tr.Misses() != st.Misses || eng.Accesses() != st.Accesses {
		t.Fatalf("totals diverge: analytic %d/%d, emulated %d/%d",
			tr.Misses(), eng.Accesses(), st.Misses, st.Accesses)
	}
	if eng.Ignored() != emu.Ignored() {
		t.Fatalf("ignored diverge: analytic %d, emulated %d", eng.Ignored(), emu.Ignored())
	}
	if eng.Instructions() != emu.Instructions() {
		t.Fatalf("instructions diverge: analytic %d, emulated %d", eng.Instructions(), emu.Instructions())
	}
	if tr.MPKI() != emu.MPKI() {
		t.Fatalf("MPKI diverges: analytic %g, emulated %g", tr.MPKI(), emu.MPKI())
	}
}

// TestSummaryByHand pins the traceinfo -stackdist numbers on a stream
// small enough to check on paper.
func TestSummaryByHand(t *testing.T) {
	eng, _ := New(64)
	if err := eng.AddGeometry(1, 64); err != nil {
		t.Fatal(err)
	}
	eng.OnMsg(fsb.Message{Kind: fsb.MsgStart})
	// Touch lines 0..9 (10 cold), then re-touch line 0 (distance 9),
	// then line 9 twice (distances 1 then 0).
	for i := 0; i < 10; i++ {
		eng.OnRef(trace.Ref{Addr: mem.Addr(i * 64), Size: 1, Kind: mem.Load})
	}
	eng.OnRef(trace.Ref{Addr: 0, Size: 1, Kind: mem.Load})
	eng.OnRef(trace.Ref{Addr: 9 * 64, Size: 1, Kind: mem.Load})
	eng.OnRef(trace.Ref{Addr: 9 * 64, Size: 1, Kind: mem.Load})
	eng.OnMsg(fsb.Message{Kind: fsb.MsgStop})

	s, err := eng.Summary(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Requests != 13 || s.Cold != 10 || s.Distinct != 10 || s.Reuse() != 3 {
		t.Fatalf("summary counts wrong: %+v", s)
	}
	// Reuse distances sorted: [0, 1, 9]. p50 -> rank 2 -> 1; p90/p99 ->
	// rank 3 -> 9.
	if s.P50 != 1 || s.P90 != 9 || s.P99 != 9 {
		t.Fatalf("percentiles wrong: p50=%d p90=%d p99=%d", s.P50, s.P90, s.P99)
	}
	if _, err := eng.Summary(2); err == nil {
		t.Error("unregistered set count answered")
	}
}

// TestEngineMisuse covers the guard rails specific to the engine (the
// shared oracle guards are covered by internal/verify's tests).
func TestEngineMisuse(t *testing.T) {
	if _, err := New(48); err == nil {
		t.Error("non-power-of-two line size accepted")
	}
	eng, _ := New(64)
	if _, err := eng.Track(cache.Config{Name: "f", Size: 1 << 12, LineSize: 64, Assoc: 2, Repl: cache.FIFO}); err == nil {
		t.Error("FIFO config tracked")
	}
	if _, err := eng.Track(cache.Config{Name: "s", Size: 1 << 12, LineSize: 64, Assoc: 2, SectorSize: 16}); err == nil {
		t.Error("sectored config tracked")
	}
	if _, err := eng.Track(cache.Config{Name: "l", Size: 1 << 12, LineSize: 128, Assoc: 2}); err == nil {
		t.Error("mismatched line size tracked")
	}
	if err := eng.EnableSampling(0, 1e-3); err == nil {
		t.Error("zero clock accepted")
	}
	eng.OnMsg(fsb.Message{Kind: fsb.MsgStart})
	eng.OnRef(trace.Ref{Addr: 0, Size: 1, Kind: mem.Load})
	if err := eng.EnableSampling(1e6, 1e-3); err == nil {
		t.Error("EnableSampling accepted after recording started")
	}
	if _, err := eng.Track(cache.Config{Name: "late", Size: 1 << 12, LineSize: 64, Assoc: 2}); err == nil {
		t.Error("Track accepted after recording started")
	}

	// The engine-wide dirty bitmask caps tracked geometries at 64.
	eng2, _ := New(64)
	var err error
	for a := 0; a <= maxTracked; a++ {
		cfg := cache.Config{Name: "n", Size: 64 << 10, LineSize: 64, Assoc: 16}
		_, err = eng2.Track(cfg)
	}
	if err == nil {
		t.Error("more than 64 tracked geometries in one engine accepted")
	}
}
