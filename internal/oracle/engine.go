// Package oracle is the analytic cache engine: exact LRU results for
// every registered cache geometry from one pass over the reference
// stream, via Mattson stack-distance analysis.
//
// Mattson's inclusion property says an LRU stack of depth A holds
// exactly the A most recently used lines, so a reference hits in an
// A-way set iff its stack distance within that set is < A. Partitioning
// line addresses by set index therefore turns one per-set reuse-distance
// histogram into the exact miss count of *every* associativity at that
// set count simultaneously — the classic single-pass answer to "simulate
// all cache sizes at once" that internal/stackdist already implements
// for the fully-associative case.
//
// Each registered set count is a "family". A family only ever needs
// distances resolved up to its deepest registered associativity, which
// picks between two per-set representations:
//
//   - Shallow families (the planner's set-associative sweeps, typically
//     8-16 ways) keep a bounded LRU recency stack per set in one flat
//     array: the stack holds the maxAssoc most recently used blocks of
//     the set, so a block's index IS its Mattson distance and anything
//     absent is provably deeper. A lookup is a short linear scan plus a
//     move-to-front copy — no maps, no trees, cache-friendly.
//   - Deep families (fully-associative geometries, traceinfo's
//     million-line reuse summaries) fall back to one Fenwick-tree
//     stackdist.Analyzer per set, O(log n) per reference at any depth.
//
// Cold detection and dirty state are line-granular and therefore shared
// by every family: the engine keeps a single block -> dirty-bitmask map
// whose presence doubles as the first-touch set, so the per-reference
// map traffic is one lookup regardless of how many geometries are
// registered.
//
// The engine mirrors the Dragonhead AF and CB stages bit for bit: it
// honors the start/stop emulation window, decodes control-message
// transactions, regulates each reference into line-granular requests,
// and (when sampling is enabled) snapshots cumulative counters on the
// same MsgCycles crossings as the CB, so per-sample miss series match
// the emulator exactly. Because the CC bank interleave is an exact
// partition of the monolithic set space, the engine's monolithic set
// indexing predicts the banked pipeline too — which is precisely the
// cross-check cosim -verify runs.
//
// Beyond miss counts, a Tracked handle (see Track) reconstructs the
// full cache.Stats of an LRU, unsectored geometry — including
// evictions and dirty writebacks — without simulating it: inclusion
// pins down exactly which accesses miss, eviction counts follow from
// per-set fill counts, and writebacks from a per-line dirty bitmask
// resolved at the evicted line's next reuse (or at end of trace via
// the final stack depth).
package oracle

import (
	"fmt"

	"cmpmem/internal/cache"
	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/stackdist"
	"cmpmem/internal/trace"
)

// maxTracked bounds Track handles per engine: the per-line dirty state
// is a single uint64 bitmask, one bit per tracked geometry.
const maxTracked = 64

// fastDepth is the deepest family served by the bounded-stack fast
// path; beyond it the move-to-front copy would outgrow the Fenwick
// analyzer's O(log n).
const fastDepth = 256

// fastBudget caps the fast path's flat-array footprint (entries =
// sets x maxAssoc; two uint64 arrays of that length).
const fastBudget = 1 << 22

// deepDist is the distance reported by a fast family for a reused block
// deeper than its stack: not exact, but provably >= maxAssoc, which is
// all any consumer of that family may ask about. Distinct from
// stackdist.Infinite so cold and deep-reuse stay distinguishable (the
// dirty-writeback accounting needs that).
const deepDist = uint32(stackdist.Infinite - 1)

// setFamily holds the per-set distance state of one set count, plus the
// Tracked handles (geometries wanting full Stats) that share it.
type setFamily struct {
	sets     uint64
	setMask  uint64
	maxAssoc int

	tracked []*Tracked

	// Representation, chosen at freeze time (first recorded request).
	fast bool

	// Fast path: per-set bounded LRU stacks and distance histograms in
	// flat arrays, sets x maxAssoc each; depth/deep/cold are per set.
	stack []uint64
	hist  []uint64
	depth []int32
	deep  []uint64
	cold  []uint64

	// Slow path: one Fenwick analyzer per touched set.
	perSet map[uint64]*stackdist.Analyzer
}

// freeze picks the family's representation; no geometry may be added
// afterwards (the engine guards on accesses > 0).
func (f *setFamily) freeze() {
	entries := f.sets * uint64(f.maxAssoc)
	if f.maxAssoc <= fastDepth && entries <= fastBudget {
		f.fast = true
		f.stack = make([]uint64, entries)
		f.hist = make([]uint64, entries)
		f.depth = make([]int32, f.sets)
		f.deep = make([]uint64, f.sets)
		f.cold = make([]uint64, f.sets)
		return
	}
	f.perSet = make(map[uint64]*stackdist.Analyzer)
}

// touchFast records one request in the bounded-stack representation and
// returns its distance: the exact stack index when resident, deepDist
// for a too-deep reuse, Infinite for a cold touch.
func (f *setFamily) touchFast(set, blk uint64, cold bool) uint32 {
	base := int(set) * f.maxAssoc
	n := int(f.depth[set])
	s := f.stack[base : base+n]
	for i, b := range s {
		if b == blk {
			copy(s[1:i+1], s[:i])
			s[0] = blk
			f.hist[base+i]++
			return uint32(i)
		}
	}
	// Not resident within maxAssoc: grow the stack if it still has
	// room, then push the block on top (the LRU block falls off).
	if n < f.maxAssoc {
		f.depth[set] = int32(n + 1)
		s = f.stack[base : base+n+1]
	}
	copy(s[1:], s[:len(s)-1])
	s[0] = blk
	if cold {
		f.cold[set]++
		return stackdist.Infinite
	}
	f.deep[set]++
	return deepDist
}

// touchSlow records one request in the Fenwick representation.
func (f *setFamily) touchSlow(set uint64, blk uint64) uint32 {
	a := f.perSet[set]
	if a == nil {
		// Line size 1 makes the analyzer's distances line-granular:
		// the engine already shifted addresses to block numbers.
		a = stackdist.New(1, f.maxAssoc)
		f.perSet[set] = a
	}
	// Within a set, distinct blocks are distinct lines; the stack
	// distance of blk among its set-mates is its LRU depth there.
	return a.Record(mem.Addr(blk))
}

// setMisses returns the exact miss count of one set at the given
// associativity (cold + deeper-than-assoc reuses).
func (f *setFamily) setMisses(set uint64, assoc int) uint64 {
	if f.fast {
		m := f.cold[set] + f.deep[set]
		base := int(set) * f.maxAssoc
		for d := assoc; d < f.maxAssoc; d++ {
			m += f.hist[base+d]
		}
		return m
	}
	if a := f.perSet[set]; a != nil {
		return a.MissesForLines(assoc)
	}
	return 0
}

// Engine predicts exact LRU results for a family of set-associative
// geometries sharing one line size. Register every geometry with
// AddGeometry/AddConfig/Track before streaming references; then drive
// the engine as an fsb.Snooper (live bus or replay) and read
// predictions with Misses, MissesForConfig, or Tracked.Stats.
type Engine struct {
	lineSize  uint64
	lineShift uint

	// AF state.
	window  bool
	ignored uint64

	// Stream-wide counters (geometry-independent: every LRU cache at
	// this line size observes the same line-granular request stream).
	accesses        uint64
	loads           uint64
	stores          uint64
	perCoreAccesses [cache.MaxCores]uint64

	families map[uint64]*setFamily
	famList  []*setFamily // stable iteration, no map-order cost per ref
	frozen   bool

	// seen maps block number -> dirty bitmask (one bit per tracked
	// geometry, engine-wide). Presence doubles as the first-touch set,
	// so cold detection and dirty state cost one lookup per request.
	seen         map[uint64]uint64
	trackedCount int

	// CB state (EnableSampling).
	instRetired   [cache.MaxCores]uint64
	cycles        uint64
	sampling      bool
	nextSampleAt  uint64
	cyclesPerTick uint64
}

// New returns an engine for the given line size (a power of two, at
// least 2 — the same constraint cache.Config imposes).
func New(lineSize uint64) (*Engine, error) {
	if lineSize < 2 || lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("oracle: line size %d is not a power of two >= 2", lineSize)
	}
	e := &Engine{
		lineSize: lineSize,
		families: make(map[uint64]*setFamily),
		seen:     make(map[uint64]uint64),
	}
	for s := lineSize; s > 1; s >>= 1 {
		e.lineShift++
	}
	return e, nil
}

// LineSize returns the line size every registered geometry shares.
func (e *Engine) LineSize() uint64 { return e.lineSize }

// AddGeometry registers a (set count, associativity) pair to predict.
// Multiple associativities at one set count share a single analyzer
// family, so adding them is free. Must be called before any reference
// is recorded.
func (e *Engine) AddGeometry(sets uint64, assoc int) error {
	if e.accesses > 0 {
		return fmt.Errorf("oracle: AddGeometry after recording started")
	}
	if sets == 0 || sets&(sets-1) != 0 {
		return fmt.Errorf("oracle: set count %d is not a power of two", sets)
	}
	if assoc < 1 {
		return fmt.Errorf("oracle: associativity %d below 1", assoc)
	}
	f := e.families[sets]
	if f == nil {
		f = &setFamily{sets: sets, setMask: sets - 1}
		e.families[sets] = f
		e.famList = append(e.famList, f)
	}
	if assoc > f.maxAssoc {
		f.maxAssoc = assoc
	}
	return nil
}

// AddConfig registers the geometry of a concrete cache configuration.
func (e *Engine) AddConfig(cfg cache.Config) error {
	sets, assoc, err := e.geometry(cfg)
	if err != nil {
		return err
	}
	return e.AddGeometry(sets, assoc)
}

// geometry derives (sets, assoc) from cfg and validates it against the
// engine's line size.
func (e *Engine) geometry(cfg cache.Config) (uint64, int, error) {
	if cfg.LineSize != e.lineSize {
		return 0, 0, fmt.Errorf("oracle: config %q line size %d != engine line size %d",
			cfg.Name, cfg.LineSize, e.lineSize)
	}
	if err := cfg.Validate(); err != nil {
		return 0, 0, err
	}
	lines := cfg.Size / cfg.LineSize
	assoc := cfg.Assoc
	if assoc == 0 {
		assoc = int(lines)
	}
	return lines / uint64(assoc), assoc, nil
}

// EnableSampling turns on the CB mirror: on every MsgCycles crossing of
// the sample period, each Tracked geometry snapshots its cumulative
// counters, exactly as the Dragonhead CB does. Must be called before
// any event is recorded.
func (e *Engine) EnableSampling(clockHz, samplePeriod float64) error {
	if e.accesses > 0 || e.cycles > 0 {
		return fmt.Errorf("oracle: EnableSampling after recording started")
	}
	if clockHz <= 0 || samplePeriod <= 0 {
		return fmt.Errorf("oracle: sampling needs positive clock (%g Hz) and period (%g s)", clockHz, samplePeriod)
	}
	e.cyclesPerTick = uint64(samplePeriod * clockHz)
	if e.cyclesPerTick == 0 {
		e.cyclesPerTick = 1
	}
	e.nextSampleAt = e.cyclesPerTick
	e.sampling = true
	return nil
}

// record processes one line-granular request to block number blk.
func (e *Engine) record(blk uint64, kind mem.Kind, core uint8) {
	if !e.frozen {
		for _, f := range e.famList {
			f.freeze()
		}
		e.frozen = true
	}
	e.accesses++
	e.perCoreAccesses[core]++
	store := kind == mem.Store
	if store {
		e.stores++
	} else {
		e.loads++
	}
	mask, seenBefore := e.seen[blk]
	newMask := mask
	for _, f := range e.famList {
		set := blk & f.setMask
		var d uint32
		if f.fast {
			d = f.touchFast(set, blk, !seenBefore)
		} else {
			d = f.touchSlow(set, blk)
		}
		// Apply the outcome to every tracked geometry of the family. By
		// inclusion, the request misses in an A-way geometry iff its
		// distance is >= A (cold and deep always qualify). A non-cold
		// miss whose line was dirty at its previous access means the
		// line was evicted dirty during the reuse gap: exactly one
		// writeback of the simulated cache, charged here at reuse time.
		for _, t := range f.tracked {
			if d >= t.assoc32 {
				t.misses++
				t.perCoreMisses[core]++
				if !store {
					t.loadMisses++
				}
				if d != stackdist.Infinite && mask&t.bit != 0 {
					t.writebacks++
				}
				// Refill resets the dirty bit to the filling access's kind.
				if store {
					newMask |= t.bit
				} else {
					newMask &^= t.bit
				}
			} else if store {
				newMask |= t.bit
			}
		}
	}
	if !seenBefore || newMask != mask {
		e.seen[blk] = newMask
	}
}

// OnRef implements fsb.Snooper: the AF stage. Control-message
// transactions are decoded and routed to OnMsg (raw codec streams carry
// them inline); out-of-window transactions are host noise and are
// dropped; everything else is regulated into line-granular requests
// exactly like Dragonhead.
func (e *Engine) OnRef(r trace.Ref) {
	if fsb.IsMessage(r) {
		if m, ok := fsb.DecodeMessage(r); ok {
			e.OnMsg(m)
		}
		return
	}
	if !e.window {
		e.ignored++
		return
	}
	size := r.Size
	if size == 0 {
		size = 1
	}
	first := uint64(r.Addr) >> e.lineShift
	last := (uint64(r.Addr) + uint64(size) - 1) >> e.lineShift
	for blk := first; blk <= last; blk++ {
		e.record(blk, r.Kind, r.Core)
	}
}

// OnMsg implements fsb.Snooper: the AF window plus the CB counter
// mirror (instructions retired, cycle-driven sample collection).
func (e *Engine) OnMsg(m fsb.Message) {
	switch m.Kind {
	case fsb.MsgStart:
		e.window = true
	case fsb.MsgStop:
		e.window = false
	case fsb.MsgInstRetired:
		e.instRetired[m.Core] = m.Value
	case fsb.MsgCycles:
		if m.Value > e.cycles {
			e.cycles = m.Value
		}
		if !e.sampling {
			return
		}
		for e.cycles >= e.nextSampleAt {
			e.collect()
			e.nextSampleAt += e.cyclesPerTick
		}
	}
}

// collect snapshots cumulative counters into every Tracked geometry —
// the CB host read, mirrored.
func (e *Engine) collect() {
	inst := e.instructions()
	for _, f := range e.famList {
		for _, t := range f.tracked {
			t.samples = append(t.samples, Sample{
				Cycles:       e.nextSampleAt,
				Instructions: inst,
				Accesses:     e.accesses,
				Misses:       t.misses,
			})
		}
	}
}

// Accesses returns the number of in-window line-granular requests seen —
// which must equal the Accesses counter of every cache it predicts.
func (e *Engine) Accesses() uint64 { return e.accesses }

// Ignored returns the number of transactions dropped outside the
// start/stop window, mirroring Dragonhead's AF counter.
func (e *Engine) Ignored() uint64 { return e.ignored }

// Instructions returns the total instructions retired across cores, per
// the latest inst-retired messages.
func (e *Engine) Instructions() uint64 { return e.instructions() }

func (e *Engine) instructions() uint64 {
	var total uint64
	for _, v := range e.instRetired {
		total += v
	}
	return total
}

// Misses returns the exact LRU miss count for the registered geometry.
func (e *Engine) Misses(sets uint64, assoc int) (uint64, error) {
	f := e.families[sets]
	if f == nil {
		return 0, fmt.Errorf("oracle: set count %d was never registered", sets)
	}
	if assoc < 1 || assoc > f.maxAssoc {
		return 0, fmt.Errorf("oracle: associativity %d outside registered range [1,%d]", assoc, f.maxAssoc)
	}
	var misses uint64
	if f.fast {
		for set := uint64(0); set < f.sets; set++ {
			misses += f.setMisses(set, assoc)
		}
		return misses, nil
	}
	for _, a := range f.perSet {
		misses += a.MissesForLines(assoc)
	}
	return misses, nil
}

// MissesForConfig returns the exact LRU miss count predicted for cfg.
func (e *Engine) MissesForConfig(cfg cache.Config) (uint64, error) {
	sets, assoc, err := e.geometry(cfg)
	if err != nil {
		return 0, err
	}
	return e.Misses(sets, assoc)
}
