// Package sampling implements representative-interval trace sampling —
// the approximate fast tier of the sweep engines (ROADMAP item 1, after
// Bueno et al., "Improving the Representativeness of Simulation
// Intervals for the Cache Memory System").
//
// A captured bus-event stream is sliced into fixed-length intervals of
// in-window memory transactions. Each interval is fingerprinted with
// the features that determine cache behavior — a log2-bucketed stack-
// distance histogram (whole-trace reuse distances, so an interval's
// fingerprint reflects the history it executes under), the interval's
// line footprint, cold-touch count, and load/store mix. The
// fingerprints are clustered with a deterministic k-means; one
// representative interval per cluster is then actually replayed
// (preceded by a configurable warmup prefix) and its per-config
// cache.Stats delta is scaled by the cluster weight to extrapolate
// full-trace statistics, with a confidence interval derived from the
// intra-cluster variance of a capacity-proxy miss estimate.
//
// The package computes plans and extrapolations only; the replay
// machinery that measures representative windows lives in core (the
// owner of the trace substrate). Everything here is deterministic for
// a fixed Params.Seed.
package sampling

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/stackdist"
	"cmpmem/internal/trace"
)

// LineSize is the fingerprinting granularity: reuse distances,
// footprints, and the capacity proxy are all counted in 64 B lines —
// the paper's fixed LLC line size — independent of the geometries the
// plan is later applied to (capacities convert via Size/LineSize).
const LineSize = 64

// NumBuckets is the stack-distance histogram resolution: bucket 0 holds
// distance 0, bucket b >= 1 holds [2^(b-1), 2^b). The top bucket
// absorbs everything deeper (2^26 lines = 4 GiB of 64 B-line footprint,
// far beyond any simulated working set).
const NumBuckets = 28

// minIntervalRefs floors the derived interval length: intervals shorter
// than this have too little reuse signal to fingerprint meaningfully.
const minIntervalRefs = 1024

// Params tunes the sampler. The zero value is not runnable; use Fast()
// or fill TargetIntervals/MaxClusters explicitly (withDefaults patches
// the statistical knobs).
type Params struct {
	// IntervalRefs fixes the interval length in in-window memory
	// transactions. 0 derives it from the stream size so the trace
	// splits into about TargetIntervals intervals.
	IntervalRefs uint64 `json:"interval_refs,omitempty"`
	// TargetIntervals is the interval count the derived length aims
	// for. Larger = finer phase resolution, more clustering input.
	TargetIntervals int `json:"target_intervals"`
	// MaxClusters bounds the k of k-means — the number of
	// representative intervals that will actually be replayed.
	MaxClusters int `json:"max_clusters"`
	// Warmup is the number of preceding intervals replayed (unmeasured)
	// before each representative to reconstruct cache state.
	Warmup int `json:"warmup"`
	// Seed makes the clustering deterministic: it picks the first
	// k-means center. Same fingerprints + same seed = same plan.
	Seed int64 `json:"seed"`
	// Z scales the confidence half-width in units of the extrapolation
	// standard deviation (0 selects the default).
	Z float64 `json:"z,omitempty"`
	// MinRelCI floors the reported relative half-width: the sampler
	// never claims to be more accurate than this (0 = default).
	MinRelCI float64 `json:"min_rel_ci,omitempty"`
}

// Fast returns the preset behind WithSampling(SamplingFast): ~160
// intervals, 16 clusters, one warmup interval per representative —
// replaying at most 16*(1+1)/160 = 20% of the trace on streams large
// enough to leave the exact-fallback regime.
func Fast() Params {
	return Params{
		TargetIntervals: 160,
		MaxClusters:     16,
		Warmup:          1,
		Seed:            1,
	}
}

// defaultZ and defaultMinRelCI are the statistical defaults, tuned
// against the exact oracle on all 8 workloads (see DESIGN.md §14): a
// wide multiplier on the proxy variance plus a floor that absorbs
// proxy-model misfit when clusters look deceptively homogeneous.
const (
	defaultZ        = 4.0
	defaultMinRelCI = 0.08
)

// minAbsCI is the absolute floor on the miss-count half-width: below
// this few misses, counting noise dominates any model.
const minAbsCI = 64.0

// withDefaults fills the statistical knobs.
func (p Params) withDefaults() Params {
	if p.TargetIntervals <= 0 {
		p.TargetIntervals = 160
	}
	if p.MaxClusters <= 0 {
		p.MaxClusters = 16
	}
	if p.Warmup < 0 {
		p.Warmup = 0
	}
	if p.Z <= 0 {
		p.Z = defaultZ
	}
	if p.MinRelCI <= 0 {
		p.MinRelCI = defaultMinRelCI
	}
	return p
}

// Fingerprint is one interval's cache-relevant feature set. All counts
// are at LineSize granularity except Refs/Loads/Stores, which count
// pre-regulation bus transactions (the unit interval boundaries are
// defined in, so fingerprinting and measuring agree on where intervals
// start regardless of any config's line size).
type Fingerprint struct {
	// Refs counts in-window memory transactions.
	Refs uint64 `json:"refs"`
	// Loads and Stores split Refs by kind.
	Loads  uint64 `json:"loads"`
	Stores uint64 `json:"stores"`
	// Blocks counts line-granular accesses (transactions straddling a
	// line boundary contribute one per touched line).
	Blocks uint64 `json:"blocks"`
	// Cold counts first-ever touches of a line (whole-trace cold).
	Cold uint64 `json:"cold"`
	// Footprint counts distinct lines touched within the interval.
	Footprint uint64 `json:"footprint"`
	// Hist is the log2-bucketed whole-trace stack-distance histogram of
	// the interval's non-cold block accesses.
	Hist [NumBuckets]uint64 `json:"hist"`
	// HistStale counts the subset of Hist whose line was last touched
	// more than Params.Warmup intervals before this one — the accesses
	// whose hit/miss outcome a sampled replay can get wrong, because
	// their reuse reaches past the warmup horizon into skipped stream.
	HistStale [NumBuckets]uint64 `json:"hist_stale"`
}

// ProxyMisses estimates the interval's miss count in a fully
// associative LRU cache of capLines lines, from the bucketed histogram:
// cold touches always miss, finite distances >= capLines miss, and the
// bucket straddling capLines contributes pro rata. This is the
// per-interval signal the confidence interval is computed from — a
// capacity proxy, not the true set-associative count.
func (fp *Fingerprint) ProxyMisses(capLines uint64) float64 {
	m := float64(fp.Cold)
	for b := 0; b < NumBuckets; b++ {
		if n := fp.Hist[b]; n > 0 {
			m += float64(n) * missFrac(b, capLines)
		}
	}
	return m
}

// SpuriousHits bounds the misses a sampled replay of this interval can
// report that the full-history replay would not: accesses that would
// hit at capLines lines of capacity (finite distance below capacity)
// but whose previous touch lies beyond the warmup horizon — the warmup
// prefix cannot have restored their line, so only carried-over state
// separates them from a spurious miss.
func (fp *Fingerprint) SpuriousHits(capLines uint64) float64 {
	var s float64
	for b := 0; b < NumBuckets; b++ {
		if n := fp.HistStale[b]; n > 0 {
			s += float64(n) * (1 - missFrac(b, capLines))
		}
	}
	return s
}

// missFrac returns the fraction of bucket b's distance range at or
// beyond a capacity of capLines lines.
func missFrac(b int, capLines uint64) float64 {
	lo, hi := bucketRange(b)
	switch {
	case lo >= capLines || b == NumBuckets-1 && hi < capLines:
		// Entirely at or beyond capacity (the open-ended top bucket
		// counts fully unless capacity clears its floor — in which case
		// its true depths are unknown and counting them as misses stays
		// conservative).
		return 1
	case hi < capLines:
		return 0
	default:
		return float64(hi-capLines+1) / float64(hi-lo+1)
	}
}

// bucketRange returns the inclusive distance range [lo, hi] of bucket b.
func bucketRange(b int) (lo, hi uint64) {
	if b == 0 {
		return 0, 0
	}
	return 1 << (b - 1), 1<<b - 1
}

// Interval is one fingerprinted slice of the stream, [Start, End) in
// in-window transaction index.
type Interval struct {
	Start uint64      `json:"start"`
	End   uint64      `json:"end"`
	FP    Fingerprint `json:"fp"`
}

// Cluster is one k-means cluster of the plan: the interval index that
// represents it and the number of intervals it stands for.
type Cluster struct {
	Representative int    `json:"representative"`
	Weight         uint64 `json:"weight"`
}

// Plan is a complete sample plan: the fingerprinted intervals, their
// cluster assignment, and the representatives to replay. A Plan (plus
// the measured per-cluster cache.Stats deltas) is everything the
// extrapolator needs.
type Plan struct {
	// Params is the (defaulted) parameter set the plan was built with.
	Params Params `json:"params"`
	// LineSize is the fingerprinting granularity (capacity conversions
	// divide config sizes by it).
	LineSize uint64 `json:"line_size"`
	// TotalRefs is the stream's in-window transaction count; Ignored
	// counts out-of-window transactions (the AF drop count).
	TotalRefs uint64 `json:"total_refs"`
	Ignored   uint64 `json:"ignored"`
	// Intervals partitions [0, TotalRefs) contiguously.
	Intervals []Interval `json:"intervals"`
	// Assign maps each interval to its cluster.
	Assign []int `json:"assign"`
	// Clusters lists the representatives, ordered by representative
	// interval index (so replay windows are already in stream order).
	Clusters []Cluster `json:"clusters"`
	// Exact marks the degenerate plan in which every interval is its
	// own singleton cluster: replaying it measures the entire stream
	// contiguously and the extrapolation is bit-exact, CI width zero.
	Exact bool `json:"exact"`
}

// Validate checks the plan's structural invariants — the guard the
// extrapolator runs before trusting boundaries and weights from any
// source (FuzzSamplePlan feeds it garbage on purpose).
func (p *Plan) Validate() error {
	if p == nil {
		return fmt.Errorf("sampling: nil plan")
	}
	if len(p.Intervals) == 0 {
		if p.TotalRefs != 0 || len(p.Assign) != 0 || len(p.Clusters) != 0 {
			return fmt.Errorf("sampling: empty plan with %d refs, %d assignments, %d clusters",
				p.TotalRefs, len(p.Assign), len(p.Clusters))
		}
		return nil
	}
	if p.LineSize == 0 {
		return fmt.Errorf("sampling: plan has no line size")
	}
	if len(p.Assign) != len(p.Intervals) {
		return fmt.Errorf("sampling: %d assignments for %d intervals", len(p.Assign), len(p.Intervals))
	}
	var pos uint64
	for i, iv := range p.Intervals {
		if iv.Start != pos || iv.End <= iv.Start {
			return fmt.Errorf("sampling: interval %d spans [%d, %d), want contiguous from %d", i, iv.Start, iv.End, pos)
		}
		pos = iv.End
	}
	if pos != p.TotalRefs {
		return fmt.Errorf("sampling: intervals cover %d refs, plan claims %d", pos, p.TotalRefs)
	}
	counts := make([]uint64, len(p.Clusters))
	for i, c := range p.Assign {
		if c < 0 || c >= len(p.Clusters) {
			return fmt.Errorf("sampling: interval %d assigned to cluster %d of %d", i, c, len(p.Clusters))
		}
		counts[c]++
	}
	for c, cl := range p.Clusters {
		if cl.Representative < 0 || cl.Representative >= len(p.Intervals) {
			return fmt.Errorf("sampling: cluster %d representative %d out of range", c, cl.Representative)
		}
		if p.Assign[cl.Representative] != c {
			return fmt.Errorf("sampling: cluster %d representative %d is assigned to cluster %d",
				c, cl.Representative, p.Assign[cl.Representative])
		}
		if cl.Weight == 0 || cl.Weight != counts[c] {
			return fmt.Errorf("sampling: cluster %d weight %d, but %d intervals assigned", c, cl.Weight, counts[c])
		}
	}
	return nil
}

// Window is one replay window of the plan: feed the cache from Feed,
// snapshot at MeasureStart, and take the measured delta at End. Windows
// come sorted by stream position with non-overlapping feed ranges.
type Window struct {
	Feed         uint64
	MeasureStart uint64
	End          uint64
	Cluster      int
}

// Windows derives the replay windows: each cluster's representative
// interval, preceded by up to Params.Warmup whole intervals of
// unmeasured warmup. Warmup ranges are clamped so consecutive windows
// never re-feed a region an earlier window already replayed (cache
// state carries over, which is strictly better warmup than a reset).
func (p *Plan) Windows() []Window {
	wins := make([]Window, 0, len(p.Clusters))
	for c, cl := range p.Clusters {
		rep := cl.Representative
		warm := rep - p.Params.Warmup
		if warm < 0 {
			warm = 0
		}
		wins = append(wins, Window{
			Feed:         p.Intervals[warm].Start,
			MeasureStart: p.Intervals[rep].Start,
			End:          p.Intervals[rep].End,
			Cluster:      c,
		})
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i].MeasureStart < wins[j].MeasureStart })
	for i := 1; i < len(wins); i++ {
		if wins[i].Feed < wins[i-1].End {
			wins[i].Feed = wins[i-1].End
		}
	}
	return wins
}

// ReplayedRefs returns the number of in-window transactions the plan's
// windows replay (warmup included) — the cost the fast tier pays,
// against TotalRefs for the exact path.
func (p *Plan) ReplayedRefs() uint64 {
	var n uint64
	for _, w := range p.Windows() {
		n += w.End - w.Feed
	}
	return n
}

// Fingerprinter slices and fingerprints a bus-event stream. It
// implements fsb.Snooper with exactly the oracle engine's reference
// semantics — message transactions decode to control messages, the
// MsgStart/MsgStop window gates everything, zero sizes count as one
// byte, and straddling transactions touch every covered line — so the
// transaction indices it assigns match what any other snooper of the
// same stream observes.
type Fingerprinter struct {
	params Params
	ivlen  uint64

	lineShift uint
	window    bool
	ignored   uint64

	sd     *stackdist.Analyzer
	lastIv map[uint64]uint64 // line -> 1 + ordinal of the interval that last touched it

	cur       Fingerprint
	intervals []Interval
}

// NewFingerprinter builds a fingerprinter for one stream. hintRefs is
// the expected stream length in bus events (tracestore.Summary's
// BusEvents): the interval length is derived from it up front so
// fingerprinting is single-pass.
func NewFingerprinter(p Params, hintRefs uint64) *Fingerprinter {
	p = p.withDefaults()
	ivlen := p.IntervalRefs
	if ivlen == 0 {
		ivlen = hintRefs / uint64(p.TargetIntervals)
		if ivlen < minIntervalRefs {
			ivlen = minIntervalRefs
		}
	}
	f := &Fingerprinter{
		params: p,
		ivlen:  ivlen,
		// maxLines=1: only Record's returned distances are used, never
		// the analyzer's own histogram, so keep it minimal.
		sd:     stackdist.New(LineSize, 1),
		lastIv: make(map[uint64]uint64),
	}
	for s := uint64(LineSize); s > 1; s >>= 1 {
		f.lineShift++
	}
	return f
}

// OnRef implements fsb.Snooper.
func (f *Fingerprinter) OnRef(r trace.Ref) {
	if fsb.IsMessage(r) {
		if m, ok := fsb.DecodeMessage(r); ok {
			f.OnMsg(m)
		}
		return
	}
	if !f.window {
		f.ignored++
		return
	}
	if f.cur.Refs == f.ivlen {
		f.closeInterval()
	}
	f.cur.Refs++
	if r.Kind == mem.Store {
		f.cur.Stores++
	} else {
		f.cur.Loads++
	}
	size := r.Size
	if size == 0 {
		size = 1
	}
	first := uint64(r.Addr) >> f.lineShift
	last := (uint64(r.Addr) + uint64(size) - 1) >> f.lineShift
	iv := uint64(len(f.intervals)) + 1
	warm := uint64(f.params.Warmup)
	for blk := first; blk <= last; blk++ {
		f.cur.Blocks++
		prev := f.lastIv[blk]
		d := f.sd.Record(mem.Addr(blk << f.lineShift))
		if d == stackdist.Infinite {
			f.cur.Cold++
		} else {
			b := bits.Len64(uint64(d))
			if b >= NumBuckets {
				b = NumBuckets - 1
			}
			f.cur.Hist[b]++
			if prev != 0 && iv-prev > warm {
				f.cur.HistStale[b]++
			}
		}
		if prev != iv {
			f.lastIv[blk] = iv
			f.cur.Footprint++
		}
	}
}

// OnMsg implements fsb.Snooper.
func (f *Fingerprinter) OnMsg(m fsb.Message) {
	switch m.Kind {
	case fsb.MsgStart:
		f.window = true
	case fsb.MsgStop:
		f.window = false
	}
}

// closeInterval seals the current interval.
func (f *Fingerprinter) closeInterval() {
	start := uint64(0)
	if n := len(f.intervals); n > 0 {
		start = f.intervals[n-1].End
	}
	f.intervals = append(f.intervals, Interval{Start: start, End: start + f.cur.Refs, FP: f.cur})
	f.cur = Fingerprint{}
}

// Build seals the stream and clusters the fingerprints into a Plan.
// Streams too short to amortize sampling — fewer intervals than the
// plan would replay anyway — degrade to the exact plan (every interval
// a singleton cluster), which measures the whole stream contiguously
// and extrapolates bit-exactly.
func (f *Fingerprinter) Build() (*Plan, error) {
	if f.cur.Refs > 0 {
		f.closeInterval()
	}
	p := &Plan{
		Params:    f.params,
		LineSize:  LineSize,
		Ignored:   f.ignored,
		Intervals: f.intervals,
	}
	if n := len(f.intervals); n > 0 {
		p.TotalRefs = f.intervals[n-1].End
	}
	n := len(p.Intervals)
	if n == 0 {
		p.Exact = true
		return p, nil
	}

	// Exact fallback: when the cluster budget (representatives plus
	// their warmup prefixes) covers the stream anyway, sampling saves
	// nothing — return the bit-exact all-singleton plan instead.
	if n <= f.params.MaxClusters*(1+f.params.Warmup) {
		p.Exact = true
		p.Assign = make([]int, n)
		p.Clusters = make([]Cluster, n)
		for i := range p.Clusters {
			p.Assign[i] = i
			p.Clusters[i] = Cluster{Representative: i, Weight: 1}
		}
		return p, nil
	}

	// A short tail interval (fewer refs than the rest) is forced into
	// its own singleton cluster: its per-ref behavior is not comparable
	// and its weight must stay exactly 1.
	m := n
	tail := -1
	if p.Intervals[n-1].FP.Refs != f.ivlen {
		m = n - 1
		tail = n - 1
	}

	assign, reps := kmeans(features(p.Intervals[:m]), f.params.MaxClusters, f.params.Seed)
	p.Assign = make([]int, n)
	copy(p.Assign, assign)
	p.Clusters = make([]Cluster, len(reps))
	for c, rep := range reps {
		p.Clusters[c] = Cluster{Representative: rep}
	}
	if tail >= 0 {
		p.Assign[tail] = len(p.Clusters)
		p.Clusters = append(p.Clusters, Cluster{Representative: tail})
	}
	for _, c := range p.Assign {
		p.Clusters[c].Weight++
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("sampling: built an invalid plan: %w", err)
	}
	return p, nil
}

// features turns fingerprints into z-score-normalized vectors: per-ref
// load/store mix plus per-block cold, footprint, and distance-bucket
// shares. Normalizing per interval first makes the vectors compare
// behavior, not length; z-scoring then weights every dimension equally.
func features(ivs []Interval) [][]float64 {
	const dims = NumBuckets + 4
	vecs := make([][]float64, len(ivs))
	for i, iv := range ivs {
		v := make([]float64, dims)
		refs := float64(iv.FP.Refs)
		if refs == 0 {
			refs = 1
		}
		blocks := float64(iv.FP.Blocks)
		if blocks == 0 {
			blocks = 1
		}
		v[0] = float64(iv.FP.Loads) / refs
		v[1] = float64(iv.FP.Stores) / refs
		v[2] = float64(iv.FP.Cold) / blocks
		v[3] = float64(iv.FP.Footprint) / blocks
		for b := 0; b < NumBuckets; b++ {
			v[4+b] = float64(iv.FP.Hist[b]) / blocks
		}
		vecs[i] = v
	}
	// z-score each dimension; zero-variance dimensions collapse to 0.
	for d := 0; d < dims; d++ {
		var sum, sumsq float64
		for _, v := range vecs {
			sum += v[d]
			sumsq += v[d] * v[d]
		}
		n := float64(len(vecs))
		mean := sum / n
		variance := sumsq/n - mean*mean
		if variance < 1e-12 {
			for _, v := range vecs {
				v[d] = 0
			}
			continue
		}
		inv := 1 / math.Sqrt(variance)
		for _, v := range vecs {
			v[d] = (v[d] - mean) * inv
		}
	}
	return vecs
}

// kmeans clusters the vectors into at most k clusters and returns the
// assignment plus one representative index per cluster (the member
// closest to its centroid). Fully deterministic: the seed picks the
// first center, farthest-point seeding picks the rest, Lloyd iterations
// break every tie toward the lowest index, and empty clusters are
// dropped.
func kmeans(vecs [][]float64, k int, seed int64) (assign []int, reps []int) {
	n := len(vecs)
	if k > n {
		k = n
	}
	centers := make([][]float64, 0, k)
	chosen := make([]int, 0, k)
	first := int(uint64(seed) % uint64(n))
	chosen = append(chosen, first)
	centers = append(centers, append([]float64(nil), vecs[first]...))
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = sqDist(vecs[i], centers[0])
	}
	for len(centers) < k {
		best, bestD := -1, -1.0
		for i := 0; i < n; i++ {
			if minDist[i] > bestD {
				best, bestD = i, minDist[i]
			}
		}
		if bestD <= 0 {
			break // remaining points coincide with a center
		}
		chosen = append(chosen, best)
		c := append([]float64(nil), vecs[best]...)
		centers = append(centers, c)
		for i := 0; i < n; i++ {
			if d := sqDist(vecs[i], c); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	k = len(centers)

	assign = make([]int, n)
	for iter := 0; iter < 50; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, sqDist(vecs[i], centers[0])
			for c := 1; c < k; c++ {
				if d := sqDist(vecs[i], centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids; drop clusters that emptied (renumbering
		// deterministically by old index order).
		counts := make([]int, k)
		sums := make([][]float64, k)
		for c := range sums {
			sums[c] = make([]float64, len(vecs[0]))
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			for d, x := range vecs[i] {
				sums[c][d] += x
			}
		}
		remap := make([]int, k)
		kept := 0
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				remap[c] = -1
				continue
			}
			remap[c] = kept
			inv := 1 / float64(counts[c])
			for d := range sums[c] {
				sums[c][d] *= inv
			}
			centers[kept] = sums[c]
			kept++
		}
		if kept < k {
			k = kept
			for i := 0; i < n; i++ {
				assign[i] = remap[assign[i]]
			}
		}
	}

	reps = make([]int, k)
	bestD := make([]float64, k)
	for c := range reps {
		reps[c] = -1
	}
	for i := 0; i < n; i++ {
		c := assign[i]
		d := sqDist(vecs[i], centers[c])
		if reps[c] < 0 || d < bestD[c] {
			reps[c], bestD[c] = i, d
		}
	}
	return assign, reps
}

// sqDist is the squared Euclidean distance.
func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
