// FuzzSamplePlan hardens the extrapolator against untrusted plans: a
// Plan is a plain data structure that could arrive from a file or a
// wire, so malformed boundaries, assignments, and weights must be
// rejected with an error — never a panic — and accepted plans must
// conserve the weighted counts exactly.

package sampling

import (
	"encoding/json"
	"testing"

	"cmpmem/internal/cache"
)

// fuzzInput is the decoded fuzz payload: an arbitrary plan, the
// measured deltas, and a config size for the estimate path.
type fuzzInput struct {
	Plan    Plan          `json:"plan"`
	Deltas  []cache.Stats `json:"deltas"`
	CfgSize uint64        `json:"cfg_size"`
}

func FuzzSamplePlan(f *testing.F) {
	// Seed with a well-formed sampled plan plus targeted corruptions.
	valid := fuzzInput{CfgSize: 1 << 20}
	{
		fp := NewFingerprinter(Params{IntervalRefs: 1024, MaxClusters: 2, Seed: 1}, 0)
		synthStream(fp, 8, 1024)
		p, err := fp.Build()
		if err != nil {
			f.Fatal(err)
		}
		valid.Plan = *p
		valid.Deltas = make([]cache.Stats, len(p.Clusters))
		for i := range valid.Deltas {
			valid.Deltas[i] = cache.Stats{Accesses: 1024, Misses: uint64(10 * (i + 1))}
		}
	}
	add := func(in fuzzInput) {
		b, err := json.Marshal(in)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	add(valid)
	{
		in := valid
		in.Plan.Clusters = append([]Cluster(nil), in.Plan.Clusters...)
		in.Plan.Clusters[0].Weight = 1 << 60 // weight/assignment mismatch
		add(in)
	}
	{
		in := valid
		in.Plan.Intervals = append([]Interval(nil), in.Plan.Intervals...)
		in.Plan.Intervals[0].End = 0 // broken boundary
		add(in)
	}
	{
		in := valid
		in.Deltas = in.Deltas[:1] // delta count mismatch
		add(in)
	}
	add(fuzzInput{}) // empty everything

	f.Fuzz(func(t *testing.T, data []byte) {
		var in fuzzInput
		if err := json.Unmarshal(data, &in); err != nil {
			return
		}
		p := &in.Plan

		// Validate and Extrapolate must never panic, whatever the shape.
		stats, err := Extrapolate(p, in.Deltas)
		if err == nil {
			// Accepted plans conserve the weighted counts exactly:
			// recompute the weighted sums independently (same uint64
			// wrapping semantics as the extrapolator).
			var wantAcc, wantMiss uint64
			for c := range p.Clusters {
				wantAcc += p.Clusters[c].Weight * in.Deltas[c].Accesses
				wantMiss += p.Clusters[c].Weight * in.Deltas[c].Misses
			}
			if stats.Accesses != wantAcc || stats.Misses != wantMiss {
				t.Fatalf("extrapolation does not conserve counts: got %d/%d, want %d/%d",
					stats.Accesses, stats.Misses, wantAcc, wantMiss)
			}
		}

		est, err := p.Estimate(in.Deltas, in.CfgSize)
		if err != nil {
			return
		}
		if est.MissLow > est.MissHigh {
			t.Fatalf("inverted CI [%d, %d]", est.MissLow, est.MissHigh)
		}
		if est.MissLow > est.Stats.Misses || est.MissHigh < est.Stats.Misses {
			t.Fatalf("CI [%d, %d] does not bracket estimate %d", est.MissLow, est.MissHigh, est.Stats.Misses)
		}
		if est.MissRelCI < 0 {
			t.Fatalf("negative relative CI %v", est.MissRelCI)
		}

		// Windows on a validated plan must stay in bounds.
		if p.Validate() == nil {
			for _, w := range p.Windows() {
				if w.Feed > w.MeasureStart || w.MeasureStart >= w.End || w.End > p.TotalRefs {
					t.Fatalf("window out of bounds: %+v (total %d)", w, p.TotalRefs)
				}
			}
		}
	})
}
