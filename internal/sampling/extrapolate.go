// Extrapolation: scale measured per-cluster cache.Stats deltas by
// cluster weights into full-trace statistics, and attach a confidence
// interval to the miss count.
//
// The extrapolation itself is pure integer arithmetic — every Stats
// field (including the per-core arrays) is Σ_c weight_c × delta_c — so
// conservation properties hold exactly: an all-singleton (Exact) plan
// reproduces the full-trace statistics bit for bit.
//
// The confidence interval comes from the fingerprints, not the
// measurement: each interval's capacity-proxy miss count (fully
// associative LRU at the config's line-equivalent capacity, from the
// bucketed stack-distance histogram) gives a per-cluster population
// variance; the classic cluster-sampling variance Σ n_c² σ_c² of the
// weighted total, expressed relative to the proxy total, scales the
// true miss estimate. Z and MinRelCI (Params) then widen the interval
// for proxy-model misfit — the margin DESIGN.md §14 justifies and the
// verify suite grades against the exact oracle.

package sampling

import (
	"fmt"
	"math"

	"cmpmem/internal/cache"
)

// StatsDelta returns after - before, field by field. Counters are
// monotone over a replay, so the subtraction never wraps in real use;
// on adversarial input it wraps like any uint64 arithmetic (the fuzz
// target only demands no panic and exact conservation).
func StatsDelta(after, before *cache.Stats) cache.Stats {
	d := cache.Stats{
		Accesses:      after.Accesses - before.Accesses,
		Misses:        after.Misses - before.Misses,
		Loads:         after.Loads - before.Loads,
		Stores:        after.Stores - before.Stores,
		LoadMisses:    after.LoadMisses - before.LoadMisses,
		Writebacks:    after.Writebacks - before.Writebacks,
		Evictions:     after.Evictions - before.Evictions,
		SectorFetches: after.SectorFetches - before.SectorFetches,
		TrafficBytes:  after.TrafficBytes - before.TrafficBytes,
	}
	for i := range d.PerCoreAccesses {
		d.PerCoreAccesses[i] = after.PerCoreAccesses[i] - before.PerCoreAccesses[i]
		d.PerCoreMisses[i] = after.PerCoreMisses[i] - before.PerCoreMisses[i]
	}
	return d
}

// addScaled accumulates dst += w * src, field by field.
func addScaled(dst *cache.Stats, src *cache.Stats, w uint64) {
	dst.Accesses += w * src.Accesses
	dst.Misses += w * src.Misses
	dst.Loads += w * src.Loads
	dst.Stores += w * src.Stores
	dst.LoadMisses += w * src.LoadMisses
	dst.Writebacks += w * src.Writebacks
	dst.Evictions += w * src.Evictions
	dst.SectorFetches += w * src.SectorFetches
	dst.TrafficBytes += w * src.TrafficBytes
	for i := range dst.PerCoreAccesses {
		dst.PerCoreAccesses[i] += w * src.PerCoreAccesses[i]
		dst.PerCoreMisses[i] += w * src.PerCoreMisses[i]
	}
}

// Extrapolate scales the per-cluster measured deltas by the plan's
// cluster weights into full-trace statistics. The plan is validated
// first; malformed plans or a mismatched delta count return an error,
// never panic.
func Extrapolate(p *Plan, deltas []cache.Stats) (cache.Stats, error) {
	if err := p.Validate(); err != nil {
		return cache.Stats{}, err
	}
	if len(deltas) != len(p.Clusters) {
		return cache.Stats{}, fmt.Errorf("sampling: %d deltas for %d clusters", len(deltas), len(p.Clusters))
	}
	var out cache.Stats
	for c := range p.Clusters {
		addScaled(&out, &deltas[c], p.Clusters[c].Weight)
	}
	return out, nil
}

// Estimate is one config's extrapolated result: the full-trace Stats
// plus the miss-count confidence interval.
type Estimate struct {
	Stats     cache.Stats
	MissLow   uint64
	MissHigh  uint64
	MissRelCI float64
}

// Estimate extrapolates the deltas and derives the miss confidence
// interval for a cache of cfgSize bytes (capacity converts to lines at
// the plan's fingerprint line size). Exact plans report a zero-width
// interval — they are bit-exact by construction.
func (p *Plan) Estimate(deltas []cache.Stats, cfgSize uint64) (Estimate, error) {
	stats, err := Extrapolate(p, deltas)
	if err != nil {
		return Estimate{}, err
	}
	if p.Exact {
		return Estimate{Stats: stats, MissLow: stats.Misses, MissHigh: stats.Misses}, nil
	}
	pr := p.Params.withDefaults()
	var capLines uint64
	if p.LineSize > 0 {
		capLines = cfgSize / p.LineSize
	}

	// Per-cluster mean and population variance of the proxy misses.
	k := len(p.Clusters)
	sum := make([]float64, k)
	sumsq := make([]float64, k)
	for i, c := range p.Assign {
		m := p.Intervals[i].FP.ProxyMisses(capLines)
		sum[c] += m
		sumsq[c] += m * m
	}
	var proxyTotal, variance float64
	for c := 0; c < k; c++ {
		n := float64(p.Clusters[c].Weight)
		mean := sum[c] / n
		v := sumsq[c]/n - mean*mean
		if v < 0 {
			v = 0
		}
		proxyTotal += n * mean
		variance += n * n * v
	}

	// Relative half-width in proxy space, applied to the true estimate
	// (scale-invariant: a proxy that over- or under-counts uniformly
	// cancels out), floored by the model-misfit margin.
	est := float64(stats.Misses)
	rel := 1.0
	if proxyTotal > 0 {
		rel = pr.Z * math.Sqrt(variance) / proxyTotal
	}
	if rel < pr.MinRelCI {
		rel = pr.MinRelCI
	}
	half := rel * est
	if half < minAbsCI {
		half = minAbsCI
	}

	// Warmup-bias bound. The measured windows can only OVER-count
	// misses relative to the full-history replay: an access whose reuse
	// reaches past the warmup horizon may find its line missing even
	// though exact replay would hit. The fingerprints bound this per
	// measured window (SpuriousHits), so the interval extends further
	// down than up by the weighted bound over the representatives.
	var bias float64
	for c := range p.Clusters {
		rep := p.Clusters[c].Representative
		bias += float64(p.Clusters[c].Weight) *
			p.Intervals[rep].FP.SpuriousHits(capLines)
	}

	low := est - half - bias
	if low < 0 {
		low = 0
	}
	e := Estimate{
		Stats:    stats,
		MissLow:  uint64(low),
		MissHigh: uint64(math.Ceil(est + half)),
	}
	if w := math.Max(est-low, half); est > 0 {
		e.MissRelCI = w / est
	} else if w > 0 {
		e.MissRelCI = 1
	}
	return e, nil
}
