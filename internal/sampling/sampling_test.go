// Property and metamorphic tests for the sampler: plans are
// deterministic for a fixed seed, weights conserve the interval count,
// a single-cluster plan degenerates to whole-trace weights, short
// streams fall back to the bit-exact plan, and the extrapolator is an
// exact inverse on exact plans.

package sampling

import (
	"reflect"
	"testing"

	"cmpmem/internal/cache"
	"cmpmem/internal/fsb"
	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
)

// synthStream drives a deterministic phased access pattern through the
// fingerprinter: `phases` phases of `refs` transactions each, cycling
// through four distinct working sets so k-means has real structure.
func synthStream(f *Fingerprinter, phases, refs int) {
	f.OnRef(fsb.EncodeMessage(fsb.Message{Kind: fsb.MsgStart}))
	x := uint64(12345)
	for p := 0; p < phases; p++ {
		base := uint64(p%4+1) << 24
		for i := 0; i < refs; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			addr := base + (x>>33)%(1<<18)
			kind := mem.Load
			if x&7 == 0 {
				kind = mem.Store
			}
			f.OnRef(trace.Ref{Addr: mem.Addr(addr &^ 7), Size: 8, Kind: kind})
		}
	}
	f.OnRef(fsb.EncodeMessage(fsb.Message{Kind: fsb.MsgStop}))
}

// sampledParams yields a plan that genuinely samples (no exact
// fallback) on a 64-interval synthetic stream.
func sampledParams() Params {
	return Params{IntervalRefs: 1024, MaxClusters: 4, Warmup: 1, Seed: 7}
}

func buildPlan(t *testing.T, p Params, phases, refs int) *Plan {
	t.Helper()
	f := NewFingerprinter(p, 0)
	synthStream(f, phases, refs)
	plan, err := f.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatalf("built plan fails its own Validate: %v", err)
	}
	return plan
}

func TestPlanDeterministic(t *testing.T) {
	a := buildPlan(t, sampledParams(), 64, 1024)
	b := buildPlan(t, sampledParams(), 64, 1024)
	if a.Exact {
		t.Fatal("plan fell back to exact; test needs a sampled plan")
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same stream + same seed produced different plans")
	}
}

func TestPlanSeedSensitivity(t *testing.T) {
	// Different seeds may legitimately converge to the same clustering;
	// the property that matters is that each is internally valid and
	// both conserve the interval count.
	for _, seed := range []int64{1, 2, 99} {
		p := sampledParams()
		p.Seed = seed
		plan := buildPlan(t, p, 64, 1024)
		var sum uint64
		for _, c := range plan.Clusters {
			sum += c.Weight
		}
		if sum != uint64(len(plan.Intervals)) {
			t.Errorf("seed %d: cluster weights sum to %d, want %d intervals", seed, sum, len(plan.Intervals))
		}
	}
}

func TestSingleClusterIsWholeTraceWeight(t *testing.T) {
	p := Params{IntervalRefs: 1024, MaxClusters: 1, Warmup: 0, Seed: 3}
	plan := buildPlan(t, p, 16, 1024)
	if plan.Exact {
		t.Fatal("plan fell back to exact; test needs a sampled plan")
	}
	// 16 equal intervals, one cluster allowed: the single representative
	// stands for the entire stream.
	if len(plan.Clusters) != 1 {
		t.Fatalf("MaxClusters=1 built %d clusters", len(plan.Clusters))
	}
	if w := plan.Clusters[0].Weight; w != uint64(len(plan.Intervals)) {
		t.Errorf("single cluster weight %d, want %d (whole trace)", w, len(plan.Intervals))
	}
	// Extrapolation then scales the one measured delta by the whole
	// interval count.
	delta := cache.Stats{Accesses: 10, Misses: 3}
	out, err := Extrapolate(plan, []cache.Stats{delta})
	if err != nil {
		t.Fatal(err)
	}
	n := uint64(len(plan.Intervals))
	if out.Accesses != 10*n || out.Misses != 3*n {
		t.Errorf("extrapolated %d/%d, want %d/%d", out.Accesses, out.Misses, 10*n, 3*n)
	}
}

func TestExactFallback(t *testing.T) {
	// 3 intervals with a 16-cluster budget: sampling saves nothing, the
	// plan must degrade to bit-exact singletons.
	p := Params{IntervalRefs: 1024, MaxClusters: 16, Warmup: 1, Seed: 1}
	plan := buildPlan(t, p, 3, 1024)
	if !plan.Exact {
		t.Fatal("short stream did not fall back to the exact plan")
	}
	if len(plan.Clusters) != len(plan.Intervals) {
		t.Fatalf("exact plan has %d clusters for %d intervals", len(plan.Clusters), len(plan.Intervals))
	}
	// Windows must tile the stream contiguously (state carries over, so
	// replay is exactly a full-trace replay).
	wins := plan.Windows()
	var pos uint64
	for _, w := range wins {
		if w.Feed != pos || w.MeasureStart != w.Feed {
			t.Fatalf("exact window [%d,%d,%d) not contiguous from %d", w.Feed, w.MeasureStart, w.End, pos)
		}
		pos = w.End
	}
	if pos != plan.TotalRefs {
		t.Fatalf("exact windows cover %d refs, want %d", pos, plan.TotalRefs)
	}
	if got := plan.ReplayedRefs(); got != plan.TotalRefs {
		t.Errorf("exact plan replays %d of %d refs", got, plan.TotalRefs)
	}

	// The extrapolation of per-interval deltas is the plain sum, and the
	// estimate reports a zero-width interval.
	deltas := make([]cache.Stats, len(plan.Clusters))
	var wantMiss uint64
	for i := range deltas {
		deltas[i] = cache.Stats{Accesses: uint64(100 + i), Misses: uint64(10 + i)}
		wantMiss += deltas[i].Misses
	}
	est, err := plan.Estimate(deltas, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if est.Stats.Misses != wantMiss {
		t.Errorf("exact extrapolation %d misses, want %d", est.Stats.Misses, wantMiss)
	}
	if est.MissLow != wantMiss || est.MissHigh != wantMiss || est.MissRelCI != 0 {
		t.Errorf("exact estimate CI [%d,%d] rel=%v, want zero width", est.MissLow, est.MissHigh, est.MissRelCI)
	}
}

func TestWindowsInvariants(t *testing.T) {
	plan := buildPlan(t, sampledParams(), 64, 1024)
	wins := plan.Windows()
	if len(wins) != len(plan.Clusters) {
		t.Fatalf("%d windows for %d clusters", len(wins), len(plan.Clusters))
	}
	var prevEnd uint64
	for i, w := range wins {
		if w.Feed > w.MeasureStart || w.MeasureStart >= w.End {
			t.Fatalf("window %d malformed: feed=%d measure=%d end=%d", i, w.Feed, w.MeasureStart, w.End)
		}
		if w.Feed < prevEnd {
			t.Fatalf("window %d feed %d overlaps previous end %d", i, w.Feed, prevEnd)
		}
		prevEnd = w.End
	}
	if r := plan.ReplayedRefs(); r > plan.TotalRefs {
		t.Errorf("plan replays %d refs of a %d-ref stream", r, plan.TotalRefs)
	}
}

func TestIgnoredOutOfWindowRefs(t *testing.T) {
	f := NewFingerprinter(Params{IntervalRefs: 1024}, 0)
	// Host noise before MsgStart must be counted as ignored, not
	// fingerprinted.
	for i := 0; i < 10; i++ {
		f.OnRef(trace.Ref{Addr: mem.Addr(i * 64), Size: 8, Kind: mem.Load})
	}
	synthStream(f, 2, 1024)
	plan, err := f.Build()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Ignored != 10 {
		t.Errorf("ignored = %d, want 10", plan.Ignored)
	}
	if plan.TotalRefs != 2*1024 {
		t.Errorf("total refs = %d, want %d", plan.TotalRefs, 2*1024)
	}
}

func TestProxyMissesMonotone(t *testing.T) {
	plan := buildPlan(t, sampledParams(), 64, 1024)
	fp := &plan.Intervals[0].FP
	prev := fp.ProxyMisses(1)
	for _, capLines := range []uint64{16, 256, 4096, 1 << 16, 1 << 24} {
		m := fp.ProxyMisses(capLines)
		if m > prev+1e-9 {
			t.Fatalf("proxy misses grew with capacity: %v lines -> %v, had %v", capLines, m, prev)
		}
		prev = m
	}
	if got := fp.ProxyMisses(1 << 30); got != float64(fp.Cold) {
		t.Errorf("proxy misses at huge capacity = %v, want cold count %d", got, fp.Cold)
	}
}

func TestEstimateBracketsPointEstimate(t *testing.T) {
	plan := buildPlan(t, sampledParams(), 64, 1024)
	if plan.Exact {
		t.Fatal("need a sampled plan")
	}
	deltas := make([]cache.Stats, len(plan.Clusters))
	for i := range deltas {
		deltas[i] = cache.Stats{Accesses: 1024, Misses: uint64(50 * (i + 1))}
	}
	est, err := plan.Estimate(deltas, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if est.MissLow > est.Stats.Misses || est.MissHigh < est.Stats.Misses {
		t.Errorf("CI [%d,%d] does not bracket the estimate %d", est.MissLow, est.MissHigh, est.Stats.Misses)
	}
	if est.MissRelCI <= 0 {
		t.Errorf("sampled estimate reports rel CI %v, want > 0", est.MissRelCI)
	}
}

func TestExtrapolateRejectsMalformed(t *testing.T) {
	plan := buildPlan(t, sampledParams(), 64, 1024)
	if _, err := Extrapolate(plan, make([]cache.Stats, len(plan.Clusters)+1)); err == nil {
		t.Error("mismatched delta count accepted")
	}
	bad := *plan
	bad.Clusters = append([]Cluster(nil), plan.Clusters...)
	bad.Clusters[0].Weight++
	if _, err := Extrapolate(&bad, make([]cache.Stats, len(bad.Clusters))); err == nil {
		t.Error("inconsistent cluster weight accepted")
	}
	var nilPlan *Plan
	if _, err := Extrapolate(nilPlan, nil); err == nil {
		t.Error("nil plan accepted")
	}
}

func TestStatsDeltaRoundTrip(t *testing.T) {
	before := cache.Stats{Accesses: 100, Misses: 7, Loads: 60, Stores: 40, TrafficBytes: 4096}
	before.PerCoreAccesses[0] = 100
	after := before
	after.Accesses += 50
	after.Misses += 3
	after.Loads += 30
	after.Stores += 20
	after.TrafficBytes += 1024
	after.PerCoreAccesses[0] += 50
	d := StatsDelta(&after, &before)
	if d.Accesses != 50 || d.Misses != 3 || d.Loads != 30 || d.Stores != 20 ||
		d.TrafficBytes != 1024 || d.PerCoreAccesses[0] != 50 {
		t.Errorf("delta = %+v", d)
	}
}
