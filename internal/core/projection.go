// The paper's forward-looking analyses, run rather than extrapolated:
//
//   - Section 4.3 projects each workload's working set to a 128-core
//     CMP and concludes that 5 of the 8 workloads would benefit from a
//     large DRAM-based last-level cache. Projection128 measures the
//     working sets directly (the software engine scales to 128 virtual
//     cores; the paper's DEX driver stopped at 64).
//   - The conclusions argue for DRAM LLCs (eDRAM, off-die DRAM,
//     3D-stacking). DRAMCacheStudy quantifies the claim with the timing
//     model: execution cycles without an LLC vs with a large-but-slow
//     DRAM LLC.

package core

import (
	"fmt"

	"cmpmem/internal/cache"
	"cmpmem/internal/dragonhead"
	"cmpmem/internal/fsb"
	"cmpmem/internal/hier"
	"cmpmem/internal/stackdist"
	"cmpmem/internal/trace"
	"cmpmem/internal/workloads"
	"cmpmem/internal/workloads/registry"
)

// dragonheadConfig builds an emulator config for one LLC, shared
// (privateSlices 0) or private-per-core.
func dragonheadConfig(llc cache.Config, privateSlices int) dragonhead.Config {
	cfg := dragonhead.DefaultConfig(llc)
	cfg.PrivatePerCore = privateSlices
	return cfg
}

// ProjectionRow reports one workload's measured working set at a given
// core count.
type ProjectionRow struct {
	Workload string
	Cores    int
	// WorkingSetPaperMB is the stack-distance working set (miss ratio
	// under 2% of references) converted to paper-equivalent megabytes.
	WorkingSetPaperMB float64
	// DistinctPaperMB is the total footprint touched.
	DistinctPaperMB float64
	// WantsDRAMCache applies the paper's criterion: a working set
	// beyond 32 MB paper-equivalent calls for a DRAM LLC.
	WantsDRAMCache bool
}

// dramThresholdPaperMB is the paper's criterion: workloads whose
// working set exceeds 32 MB on large CMPs are "certain to be good
// candidates for large DRAM caches".
const dramThresholdPaperMB = 32

// Projection128 measures every workload's working set on very large
// CMPs (default 128 cores) with single-pass stack-distance analysis,
// one capture run per pool worker.
func Projection128(p workloads.Params, cores int, opts ...RunOption) ([]ProjectionRow, error) {
	p = p.WithDefaults()
	ro := applyOpts(opts)
	if cores == 0 {
		cores = 128
	}
	rows := make([]ProjectionRow, len(registry.Names()))
	err := forEachWorkload(ro, func(i int, name string) error {
		an := stackdist.New(64, 1<<22)
		_, err := TraceCapture(name, p, PlatformConfig{Threads: cores, Seed: p.Seed},
			func(r trace.Ref) { an.Record(r.Addr) }, opts...)
		if err != nil {
			return fmt.Errorf("projection %s: %w", name, err)
		}
		// 0.5% miss ratio marks the knee: line-granular workloads touch
		// a new line every ~20 references, so a looser threshold would
		// call a pure stream "cache-resident".
		lines := an.WorkingSetLines(0.005)
		wsBytes := float64(lines) * 64
		if lines < 0 {
			wsBytes = float64(an.DistinctLines()) * 64
		}
		toPaperMB := func(b float64) float64 { return b / p.Scale / (1 << 20) }
		ws := toPaperMB(wsBytes)
		rows[i] = ProjectionRow{
			Workload:          name,
			Cores:             cores,
			WorkingSetPaperMB: ws,
			DistinctPaperMB:   toPaperMB(float64(an.DistinctLines()) * 64),
			WantsDRAMCache:    ws > dramThresholdPaperMB,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// LLCOrgRow compares the shared LLC organization against private
// per-core slices of the same total capacity.
type LLCOrgRow struct {
	Workload    string
	SharedMPKI  float64
	PrivateMPKI float64
}

// SharedVsPrivate runs every workload on the given core count with the
// same total LLC capacity organized two ways: one shared cache (the
// paper's Dragonhead configuration) vs per-core private slices. Both
// emulators snoop the same execution. Shared wins for the
// shared-working-set workloads (one copy of the shared structure
// instead of N); private is competitive only for the private-working-
// set video workloads.
func SharedVsPrivate(p workloads.Params, cores int, paperMB int, opts ...RunOption) ([]LLCOrgRow, error) {
	p = p.WithDefaults()
	ro := applyOpts(opts)
	if cores == 0 {
		cores = 8
	}
	if paperMB == 0 {
		paperMB = 32
	}
	llc := cache.Config{
		Name:     fmt.Sprintf("LLC-%dMB", paperMB),
		Size:     scaledCacheBytes(paperMB, p.Scale),
		LineSize: 64,
		Assoc:    LLCAssoc,
	}
	rows := make([]LLCOrgRow, len(registry.Names()))
	err := forEachWorkload(ro, func(i int, name string) error {
		shared, err := dragonhead.New(dragonheadConfig(llc, 0))
		if err != nil {
			return err
		}
		private, err := dragonhead.New(dragonheadConfig(llc, cores))
		if err != nil {
			return err
		}
		if _, err := runNamed(name, p, PlatformConfig{Threads: cores, Seed: p.Seed}, ro,
			[]fsb.Snooper{shared, private}); err != nil {
			return fmt.Errorf("llc organization %s: %w", name, err)
		}
		rows[i] = LLCOrgRow{
			Workload:    name,
			SharedMPKI:  shared.MPKI(),
			PrivateMPKI: private.MPKI(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// DRAMCacheRow reports the effect of adding a large DRAM LLC to one
// workload on a large CMP.
type DRAMCacheRow struct {
	Workload string
	// GainSRAMPct is the cycle reduction from an 8 MB-paper SRAM LLC.
	GainSRAMPct float64
	// GainDRAMPct is the cycle reduction from a 256 MB-paper DRAM LLC.
	GainDRAMPct float64
	// L3MissRateDRAM is the DRAM LLC's miss rate (how much of the
	// working set it captured).
	L3MissRateDRAM float64
}

// DRAMCacheStudy runs every workload on the given core count three
// ways — no LLC, a small fast SRAM LLC, and a large slow DRAM LLC —
// and reports the cycle gains. It quantifies the paper's conclusion
// that large DRAM caches serve the big-working-set workloads.
func DRAMCacheStudy(p workloads.Params, cores int, opts ...RunOption) ([]DRAMCacheRow, error) {
	p = p.WithDefaults()
	ro := applyOpts(opts)
	if cores == 0 {
		cores = 32
	}
	scaled := func(paperMB int) uint64 {
		return scaledCacheBytes(paperMB, p.Scale)
	}
	sramCfg := cache.Config{Name: "L3-SRAM-8MB", Size: scaled(8), LineSize: 64, Assoc: 16}
	dramCfg := cache.Config{Name: "L3-DRAM-256MB", Size: scaled(256), LineSize: 64, Assoc: 16}

	run := func(name string, l3 *cache.Config, l3Hit float64) (HierResult, error) {
		hc := hier.Xeon16(cores, p.Scale, nil)
		hc.L3 = l3
		hc.Lat.L3Hit = l3Hit
		return RunHier(name, p, PlatformConfig{Threads: cores, Seed: p.Seed}, hc, opts...)
	}

	rows := make([]DRAMCacheRow, len(registry.Names()))
	err := forEachWorkload(ro, func(i int, name string) error {
		none, err := run(name, nil, 0)
		if err != nil {
			return fmt.Errorf("dram study %s (no LLC): %w", name, err)
		}
		sram, err := run(name, &sramCfg, 40)
		if err != nil {
			return fmt.Errorf("dram study %s (SRAM): %w", name, err)
		}
		dram, err := run(name, &dramCfg, 120)
		if err != nil {
			return fmt.Errorf("dram study %s (DRAM): %w", name, err)
		}
		var missRate float64
		if acc := dram.L3.Accesses; acc > 0 {
			missRate = float64(dram.L3.Misses) / float64(acc)
		}
		rows[i] = DRAMCacheRow{
			Workload:       name,
			GainSRAMPct:    (none.Cycles/sram.Cycles - 1) * 100,
			GainDRAMPct:    (none.Cycles/dram.Cycles - 1) * 100,
			L3MissRateDRAM: missRate,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
