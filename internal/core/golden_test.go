package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cmpmem/internal/workloads"
)

// update rewrites the golden fixtures instead of comparing against
// them: go test ./internal/core/ -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden fixtures")

// goldenParams pins the fixture inputs. Changing them invalidates the
// fixtures — regenerate with -update and review the diff.
func goldenParams() workloads.Params { return workloads.Params{Seed: 3, Scale: 0.002} }

// goldenCompare marshals got and either rewrites or byte-compares the
// fixture. encoding/json emits the shortest float64 form that parses
// back exactly, so the comparison is bit-exact for every metric.
func goldenCompare(t *testing.T, name string, got any) {
	t.Helper()
	data, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(data))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture %s (regenerate with -update): %v", path, err)
	}
	if !bytes.Equal(data, want) {
		t.Errorf("%s drifted from the golden fixture.\nIf the change is intended, regenerate with -update and review.\n got: %s\nwant: %s",
			name, data, want)
	}
}

// TestGoldenTable2 pins Table 2 (single-threaded workload
// characteristics) at the golden parameters. Any change to the workload
// kernels, the hierarchy model, the scheduler interleave, or the
// scaling rules shows up here as an exact diff.
func TestGoldenTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs are slow")
	}
	rows, err := Table2(goldenParams())
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "table2.json", rows)
}

// TestGoldenFig8 pins Figure 8 (hardware-prefetch gains, serial and
// 16-thread) at the golden parameters.
func TestGoldenFig8(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs are slow")
	}
	rows, err := Fig8(goldenParams())
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "fig8.json", rows)
}

// TestGoldenCacheSweepPlanner proves the sweep planner byte-matches an
// emulation-authored fixture: with -update the Figure 4 series is
// regenerated through the legacy per-config emulation path, while the
// regular run produces it through the analytic planner — so the
// comparison is planner output vs checked-in emulated output, exact to
// the JSON byte.
func TestGoldenCacheSweepPlanner(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs are slow")
	}
	engine := EngineAuto
	if *update {
		engine = EngineEmulate
	}
	series, err := CacheSweep(goldenParams(), 8, WithEngine(engine))
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "cachesweep_scmp.json", series)
}

// TestGoldenPlannerNeutralExhibits re-runs the hierarchy-based golden
// exhibits with the planner engine selected: RunHier always emulates
// (per-level timing and prefetch are outside the stack-distance
// profile), so the engine option must be a no-op there — the same
// fixtures must match byte for byte.
func TestGoldenPlannerNeutralExhibits(t *testing.T) {
	if testing.Short() {
		t.Skip("golden runs are slow")
	}
	if *update {
		t.Skip("fixtures are authored by the emulation-path tests")
	}
	rows2, err := Table2(goldenParams(), WithEngine(EngineAuto))
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "table2.json", rows2)
	rows8, err := Fig8(goldenParams(), WithEngine(EngineAuto))
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "fig8.json", rows8)
}
