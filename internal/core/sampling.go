// The approximate fast tier: sampled sweeps. WithSampling routes
// LLCSweep / CombinedSweep / plannedSweep through sampledSweep, which
// fingerprints the captured stream once (internal/sampling), replays
// only the plan's representative windows into one cache per canonical
// geometry, and extrapolates full-trace statistics with confidence
// intervals. Unlike every other run option, sampling changes results —
// they become estimates — which is why the mode is part of a spec's
// cache identity in the server and of LLCResult via the Sampling field.

package core

import (
	"fmt"
	"strconv"
	"time"

	"cmpmem/internal/cache"
	"cmpmem/internal/fsb"
	"cmpmem/internal/sampling"
	"cmpmem/internal/trace"
	"cmpmem/internal/tracestore"
	"cmpmem/internal/workloads"
)

// SamplingMode selects the sweep accuracy tier.
type SamplingMode int

const (
	// SamplingOff is the exact path (the zero value: existing callers
	// are untouched).
	SamplingOff SamplingMode = iota
	// SamplingFast replays representative intervals under the
	// sampling.Fast preset and extrapolates with confidence intervals.
	SamplingFast
	// SamplingCustom uses caller-supplied sampling.Params
	// (WithSamplingParams sets it).
	SamplingCustom
)

// String names the mode (the -sampling flag vocabulary).
func (m SamplingMode) String() string {
	switch m {
	case SamplingOff:
		return "off"
	case SamplingFast:
		return "fast"
	case SamplingCustom:
		return "custom"
	default:
		return fmt.Sprintf("sampling(%d)", int(m))
	}
}

// ParseSampling parses the -sampling flag vocabulary ("custom" is not
// parseable — it exists only through WithSamplingParams).
func ParseSampling(s string) (SamplingMode, error) {
	switch s {
	case "off", "":
		return SamplingOff, nil
	case "fast":
		return SamplingFast, nil
	default:
		return 0, fmt.Errorf("core: unknown sampling mode %q (want off or fast)", s)
	}
}

// WithSampling selects the sweep accuracy tier. SamplingOff (the
// default) computes exact statistics; SamplingFast replays only
// representative trace intervals and extrapolates, attaching a
// SamplingEstimate with confidence intervals to every LLCResult.
// Unlike the wall-clock options, sampling changes the returned numbers.
func WithSampling(m SamplingMode) RunOption {
	return func(o *runOpts) { o.sampling = m }
}

// WithSamplingParams enables sampling with explicit parameters
// (SamplingCustom). Zero statistical fields default as documented on
// sampling.Params.
func WithSamplingParams(p sampling.Params) RunOption {
	return func(o *runOpts) {
		o.sampling = SamplingCustom
		o.sparams = &p
	}
}

// SamplingEstimate is the per-result record of a sampled sweep: how
// much of the trace was replayed and how far the miss estimate may sit
// from the exact count. Attached to LLCResult.Sampling (nil on exact
// sweeps).
type SamplingEstimate struct {
	// Mode is the tier that produced the estimate ("fast" or "custom").
	Mode string `json:"mode"`
	// Exact marks the degenerate plan that measured the whole stream:
	// the stats are bit-exact and the interval has zero width.
	Exact bool `json:"exact"`
	// Intervals and Clusters describe the plan.
	Intervals int `json:"intervals"`
	Clusters  int `json:"clusters"`
	// ReplayedRefs / TotalRefs is the fraction of in-window
	// transactions actually replayed.
	ReplayedRefs uint64 `json:"replayed_refs"`
	TotalRefs    uint64 `json:"total_refs"`
	// [MissLow, MissHigh] is the miss-count confidence interval;
	// MissRelCI is its half-width relative to the estimate.
	MissLow   uint64  `json:"miss_low"`
	MissHigh  uint64  `json:"miss_high"`
	MissRelCI float64 `json:"miss_rel_ci"`
}

// samplingParams resolves the active parameter set.
func (o runOpts) samplingParams() sampling.Params {
	if o.sampling == SamplingCustom && o.sparams != nil {
		return *o.sparams
	}
	return sampling.Fast()
}

// sampledSweep is the fast-tier sweep executor behind WithSampling:
// capture (or reuse) the trace, fingerprint + cluster it, replay only
// the plan's windows into one cache per canonical geometry, and fan
// extrapolated results back out in caller order.
func sampledSweep(name string, p workloads.Params, pc PlatformConfig, grids [][]cache.Config, ro runOpts) ([]cache.Config, []LLCResult, RunSummary, error) {
	var flat []cache.Config
	for _, g := range grids {
		flat = append(flat, g...)
	}
	params := ro.samplingParams()
	store := ro.store
	if store == nil {
		// Sampling is replay-shaped by construction; without a caller
		// store the capture is memoized privately for this sweep.
		store = tracestore.New(0, "")
	}

	ro.span = ro.rootSpan("sampledsweep/" + name)
	start := time.Now()

	lookup := ro.span.StartChild("store")
	tr, outcome, err := store.DoOutcome(traceKey(name, p, pc), func() (*tracestore.Trace, error) {
		ro.step(Progress{Phase: PhaseCapture})
		cro := ro
		cro.span = lookup.StartChild("capture")
		defer cro.span.End()
		return captureTrace(name, p, pc, cro)
	})
	lookup.SetAttr("outcome", outcome.String())
	lookup.End()
	if err != nil {
		return nil, nil, RunSummary{}, err
	}
	sum := RunSummary{
		Workload:     tr.Summary.Workload,
		Threads:      tr.Summary.Threads,
		Instructions: tr.Summary.Instructions,
		Loads:        tr.Summary.Loads,
		Stores:       tr.Summary.Stores,
		BusEvents:    tr.Summary.BusEvents,
	}

	// Phase 1: fingerprint the stream and build the sample plan.
	ro.step(Progress{Phase: PhaseSample})
	sampSpan := ro.span.StartChild("sampling")
	fpSpan := sampSpan.StartChild("fingerprint")
	fp := sampling.NewFingerprinter(params, tr.Summary.BusEvents)
	fro := ro
	fro.batch = 0 // single snooper: synchronous delivery is the fast path
	if err := replayTrace(tr, fro, []fsb.Snooper{fp}); err != nil {
		return nil, nil, RunSummary{}, err
	}
	fpSpan.End()
	clSpan := sampSpan.StartChild("cluster")
	plan, err := fp.Build()
	clSpan.End()
	if err != nil {
		return nil, nil, RunSummary{}, err
	}
	replayed := plan.ReplayedRefs()
	reg := ro.tel.Registry()
	reg.Counter("core_sampling_intervals_total").Add(uint64(len(plan.Intervals)))
	reg.Counter("core_sampling_clusters_total").Add(uint64(len(plan.Clusters)))
	reg.Counter("core_sampling_replayed_refs_total").Add(replayed)
	sampSpan.SetAttr("intervals", strconv.Itoa(len(plan.Intervals)))
	sampSpan.SetAttr("clusters", strconv.Itoa(len(plan.Clusters)))
	sampSpan.SetAttr("replayed_refs", strconv.FormatUint(replayed, 10))
	sampSpan.SetAttr("exact", strconv.FormatBool(plan.Exact))
	sampSpan.End()

	// Dedupe canonical geometries: one measured cache per behavioral
	// identity, duplicates copy the canonical estimate (the planner's
	// geomKey contract).
	canonical := make(map[geomKey]int, len(flat))
	canonOf := make([]int, len(flat))
	var canonIdx []int
	caches := make(map[int]*cache.Cache, len(flat))
	for i, cfg := range flat {
		k := geomKey{cfg.Size, cfg.LineSize, cfg.Assoc, cfg.Repl, cfg.SectorSize}
		if first, ok := canonical[k]; ok {
			canonOf[i] = first
			continue
		}
		canonical[k] = i
		canonOf[i] = i
		c, err := cache.New(cfg)
		if err != nil {
			return nil, nil, RunSummary{}, fmt.Errorf("core: LLC %s: %w", cfg.Name, err)
		}
		caches[i] = c
		canonIdx = append(canonIdx, i)
	}

	// Phase 2: measure the plan's windows in one pass over the stream.
	ro.step(Progress{Phase: PhaseReplay})
	meas := ro.span.StartChild("measure")
	ordered := make([]*cache.Cache, len(canonIdx))
	for j, i := range canonIdx {
		ordered[j] = caches[i]
	}
	deltas, err := measureWindows(tr, plan.Windows(), ordered, len(plan.Clusters))
	meas.End()
	if err != nil {
		return nil, nil, RunSummary{}, err
	}

	// Phase 3: extrapolate per canonical geometry and fan out.
	collect := ro.span.StartChild("collect")
	ests := make(map[int]*sampling.Estimate, len(canonIdx))
	for j, i := range canonIdx {
		perCluster := make([]cache.Stats, len(plan.Clusters))
		for c := range perCluster {
			perCluster[c] = deltas[c][j]
		}
		e, err := plan.Estimate(perCluster, flat[i].Size)
		if err != nil {
			return nil, nil, RunSummary{}, err
		}
		ests[i] = &e
	}
	results := make([]LLCResult, len(flat))
	for i := range flat {
		e := ests[canonOf[i]]
		results[i] = LLCResult{
			LLC:          flat[i],
			Stats:        e.Stats,
			Instructions: sum.Instructions,
			MPKI:         e.Stats.MPKI(sum.Instructions),
			Ignored:      plan.Ignored,
			Sampling: &SamplingEstimate{
				Mode:         ro.sampling.String(),
				Exact:        plan.Exact,
				Intervals:    len(plan.Intervals),
				Clusters:     len(plan.Clusters),
				ReplayedRefs: replayed,
				TotalRefs:    plan.TotalRefs,
				MissLow:      e.MissLow,
				MissHigh:     e.MissHigh,
				MissRelCI:    e.MissRelCI,
			},
		}
		ro.step(Progress{Phase: PhaseConfig, Config: flat[i].Name, Done: i + 1, Total: len(flat)})
	}
	collect.End()
	ro.span.End()
	ro.reportSweep("sampledsweep", name, p, pc, sum, results, time.Since(start))
	return flat, results, sum, nil
}

// measureWindows replays only the plan's windows from the stored
// stream, feeding every cache from each window's warmup start and
// snapshotting around its measured range. Transaction indexing mirrors
// the fingerprinter exactly: in-window, pre-regulation memory
// transactions, messages and out-of-window refs skipped. Cache state
// deliberately carries over between windows — never reset — so the
// warmup prefix tops up real (if stale) contents.
func measureWindows(tr *tracestore.Trace, wins []sampling.Window, caches []*cache.Cache, nclusters int) ([][]cache.Stats, error) {
	deltas := make([][]cache.Stats, nclusters)
	for c := range deltas {
		deltas[c] = make([]cache.Stats, len(caches))
	}
	if len(wins) == 0 || len(caches) == 0 {
		return deltas, nil
	}
	p, err := tr.Player()
	if err != nil {
		return nil, err
	}
	snaps := make([]cache.Stats, len(caches))
	finalize := func(cluster int) {
		for k, c := range caches {
			deltas[cluster][k] = sampling.StatsDelta(c.Stats(), &snaps[k])
		}
	}
	var (
		buf       [replayBatch]trace.Ref
		window    bool
		t         uint64 // in-window transaction index
		wi        int
		measuring bool
	)
	for wi < len(wins) {
		n := p.NextBatch(buf[:])
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			r := buf[i]
			if m, ok := fsb.DecodeMessage(r); ok {
				switch m.Kind {
				case fsb.MsgStart:
					window = true
				case fsb.MsgStop:
					window = false
				}
				continue
			}
			if !window {
				continue
			}
			if wi < len(wins) && measuring && t >= wins[wi].End {
				finalize(wins[wi].Cluster)
				measuring = false
				wi++
			}
			if wi < len(wins) {
				w := &wins[wi]
				if !measuring && t == w.MeasureStart {
					for k, c := range caches {
						snaps[k] = *c.Stats()
					}
					measuring = true
				}
				if t >= w.Feed && t < w.End {
					for _, c := range caches {
						c.AccessRef(r)
					}
				}
			}
			t++
		}
	}
	if measuring && wi < len(wins) {
		// The last window ends exactly at stream end: no later
		// transaction arrived to trigger the boundary.
		finalize(wins[wi].Cluster)
	}
	return deltas, p.Err()
}
