package core

import (
	"testing"

	"cmpmem/internal/cache"
	"cmpmem/internal/workloads"
)

// tinyParams shrinks every workload far below harness scale so the
// whole suite stays fast.
func tinyParams() workloads.Params {
	return workloads.Params{Seed: 42, Scale: 1.0 / 512}
}

// tinyLLCs is a 3-point cache sweep for smoke tests.
func tinyLLCs() []cache.Config {
	return []cache.Config{
		{Name: "LLC-16K", Size: 16 << 10, LineSize: 64, Assoc: 8},
		{Name: "LLC-64K", Size: 64 << 10, LineSize: 64, Assoc: 8},
		{Name: "LLC-256K", Size: 256 << 10, LineSize: 64, Assoc: 8},
	}
}

// TestSmokeAllWorkloads runs every workload end to end on a 4-core
// platform with a small LLC sweep attached.
func TestSmokeAllWorkloads(t *testing.T) {
	for _, name := range []string{"SNP", "SVM-RFE", "RSEARCH", "FIMI", "PLSA", "MDS", "SHOT", "VIEWTYPE"} {
		name := name
		t.Run(name, func(t *testing.T) {
			results, sum, err := LLCSweep(name, tinyParams(), PlatformConfig{Threads: 4, Seed: 1}, tinyLLCs())
			if err != nil {
				t.Fatalf("LLCSweep: %v", err)
			}
			if sum.Instructions == 0 {
				t.Fatalf("no instructions retired")
			}
			if sum.Loads+sum.Stores == 0 {
				t.Fatalf("no memory instructions")
			}
			t.Logf("%s: %d instructions, %d loads, %d stores", name, sum.Instructions, sum.Loads, sum.Stores)
			var prev uint64 = ^uint64(0)
			for _, r := range results {
				if r.Stats.Accesses == 0 {
					t.Errorf("LLC %s saw no accesses", r.LLC.Name)
				}
				if r.Instructions != sum.Instructions {
					t.Errorf("LLC %s instructions %d != run %d", r.LLC.Name, r.Instructions, sum.Instructions)
				}
				t.Logf("  %-9s misses=%-9d mpki=%.2f", r.LLC.Name, r.Stats.Misses, r.MPKI)
				_ = prev
			}
		})
	}
}
