package core

import (
	"reflect"
	"strings"
	"testing"

	"cmpmem/internal/cache"
	"cmpmem/internal/verify"
)

// TestSerialParallelEquivalence is the concurrency pipeline's ground
// truth: the same workload + seed swept with synchronous in-goroutine
// bus delivery and with batched per-snooper fan-out must produce
// bit-identical cache.Stats, CB Samples, and MPKI for every config.
// Per-snooper total order is preserved by construction (one SPSC
// channel per emulator, batches published in order), so any divergence
// here is a real pipeline bug, not nondeterminism.
func TestSerialParallelEquivalence(t *testing.T) {
	platforms := []struct {
		name string
		pc   PlatformConfig
	}{
		{"SCMP", SCMP()},
		{"MCMP", MCMP()},
	}
	for _, wl := range []string{"FIMI", "SNP"} {
		for _, plat := range platforms {
			wl, plat := wl, plat
			t.Run(wl+"/"+plat.name, func(t *testing.T) {
				pc := plat.pc
				pc.Seed = 7
				serial, ssum, err := LLCSweep(wl, tinyParams(), pc, tinyLLCs())
				if err != nil {
					t.Fatal(err)
				}
				// A small batch forces many publishes (partial final
				// batch included) — the hardest case for ordering.
				batched, bsum, err := LLCSweep(wl, tinyParams(), pc, tinyLLCs(), WithBusBatch(64))
				if err != nil {
					t.Fatal(err)
				}
				if ssum != bsum {
					t.Errorf("run summaries diverge:\nserial  %+v\nbatched %+v", ssum, bsum)
				}
				if len(serial) != len(batched) {
					t.Fatalf("result counts diverge: %d vs %d", len(serial), len(batched))
				}
				for i := range serial {
					s, b := serial[i], batched[i]
					if err := verify.DiffStats("serial vs batched", s.Stats, b.Stats); err != nil {
						t.Errorf("%s: %v", s.LLC.Name, err)
					}
					if s.MPKI != b.MPKI {
						t.Errorf("%s: MPKI diverges: %v vs %v", s.LLC.Name, s.MPKI, b.MPKI)
					}
					if s.Instructions != b.Instructions || s.Ignored != b.Ignored {
						t.Errorf("%s: counters diverge: inst %d/%d ignored %d/%d",
							s.LLC.Name, s.Instructions, b.Instructions, s.Ignored, b.Ignored)
					}
					if !reflect.DeepEqual(s.Samples, b.Samples) {
						t.Errorf("%s: CB samples diverge (%d vs %d samples)",
							s.LLC.Name, len(s.Samples), len(b.Samples))
					}
				}
			})
		}
	}
}

// TestCacheSweepParallelEquivalence: the exhibit orchestrator must give
// identical series serial vs on the worker pool with batched buses.
func TestCacheSweepParallelEquivalence(t *testing.T) {
	p := tinyParams()
	serial, err := CacheSweep(p, 4, WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := CacheSweep(p, 4, WithParallelism(4), WithBusBatch(256))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("cache sweep series diverge between serial and parallel orchestration:\nserial  %+v\nparallel %+v",
			serial, parallel)
	}
}

// TestBankShrinkTooSmall: a cache too small to hold one set per line
// must be rejected with a clear error, not a bank-count underflow.
func TestBankShrinkTooSmall(t *testing.T) {
	// 512 B cache, 64 B lines => 8 lines; assoc 16 > lines => 0 sets.
	bad := []cache.Config{{Name: "LLC-tiny", Size: 512, LineSize: 64, Assoc: 16}}
	_, _, err := LLCSweep("PLSA", tinyParams(), PlatformConfig{Threads: 1}, bad)
	if err == nil {
		t.Fatal("zero-set cache accepted")
	}
	if !strings.Contains(err.Error(), "too small for line size") {
		t.Errorf("unclear error for zero-set cache: %v", err)
	}
}

// TestBankShrinkClampsToOne: a one-set cache runs on a single bank
// instead of failing or underflowing to zero banks.
func TestBankShrinkClampsToOne(t *testing.T) {
	one := cache.Config{Name: "LLC-1set", Size: 1 << 10, LineSize: 64, Assoc: 16}
	cfg, err := bankedConfig(one)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Banks != 1 {
		t.Fatalf("banks = %d, want 1", cfg.Banks)
	}
	results, _, err := LLCSweep("PLSA", tinyParams(), PlatformConfig{Threads: 1}, []cache.Config{one})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Stats.Accesses == 0 {
		t.Error("one-set LLC saw no accesses")
	}
}
