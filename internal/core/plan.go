// The sweep planner: compile an experiment grid into analytic and
// emulation legs, then answer the whole grid in one trace pass.
//
// The paper's operational flow reprograms the Dragonhead board once per
// cache configuration — a 14-experiment CacheSweep + LineSweep session
// is 14 snooping passes. The planner collapses that: it partitions the
// flattened grid into configs the Mattson engine answers analytically
// (LRU, unsectored, at the plan's line size — one stack-distance
// profile answers every size x assoc point at once) and configs that
// still need cycle-level emulation (other line sizes, sectored lines,
// non-LRU policies), deduplicates geometries that appear in several
// sub-sweeps, and attaches the one analytic engine plus the remaining
// emulators to a single bus pass. With the trace substrate the whole
// session costs one capture plus one replay; results are bit-identical
// to emulating every config, which `cosim -verify` proves on demand.

package core

import (
	"fmt"
	"strconv"
	"time"

	"cmpmem/internal/cache"
	"cmpmem/internal/dragonhead"
	"cmpmem/internal/fsb"
	"cmpmem/internal/oracle"
	"cmpmem/internal/workloads"
)

// Engine selects how a sweep answers its cache configurations.
type Engine int

const (
	// EngineEmulate is the legacy path: one Dragonhead emulator per
	// config, no planning. The zero value, so existing callers are
	// untouched.
	EngineEmulate Engine = iota
	// EngineAuto plans the sweep: analytically expressible configs are
	// answered by the Mattson engine, the rest by emulation, duplicates
	// by neither.
	EngineAuto
	// EngineOracle requires every config to be analytically
	// answerable and fails the sweep otherwise — the strict mode CI
	// uses to keep the analytic path honest.
	EngineOracle
)

// String names the engine selection (the -engine flag vocabulary).
func (e Engine) String() string {
	switch e {
	case EngineEmulate:
		return "emulate"
	case EngineAuto:
		return "auto"
	case EngineOracle:
		return "oracle"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// ParseEngine parses the -engine flag vocabulary.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "emulate":
		return EngineEmulate, nil
	case "auto":
		return EngineAuto, nil
	case "oracle":
		return EngineOracle, nil
	default:
		return 0, fmt.Errorf("core: unknown engine %q (want auto, emulate, or oracle)", s)
	}
}

// WithEngine selects the sweep execution engine. The default
// (EngineEmulate) reproduces the legacy per-config emulation exactly;
// EngineAuto and EngineOracle route eligible configs through the
// analytic engine. Results are bit-identical across engines — the
// option changes wall-clock, never statistics.
func WithEngine(e Engine) RunOption {
	return func(o *runOpts) { o.engine, o.engineSet = e, true }
}

// geomKey is the behavioral identity of a cache config: two configs
// with equal keys produce identical statistics on any stream, whatever
// their names.
type geomKey struct {
	Size       uint64
	LineSize   uint64
	Assoc      int
	Repl       cache.Policy
	SectorSize uint64
}

// PlanEntry records how one config of the flattened grid is answered.
type PlanEntry struct {
	// Analytic is true when the canonical config is answered by the
	// Mattson engine rather than an emulator.
	Analytic bool
	// Canonical is the index (into the flattened grid) of the config
	// that actually computes this entry's numbers. Entries whose
	// Canonical differs from their own index are duplicates: they copy
	// the canonical result under their own name.
	Canonical int
}

// SweepPlan is the compiled execution plan of one sweep.
type SweepPlan struct {
	// Configs is the flattened input grid, in caller order.
	Configs []cache.Config
	// Entries has one record per config, same order.
	Entries []PlanEntry
	// LineSize is the analytic leg's line size (0 when the plan has no
	// analytic leg).
	LineSize uint64
	// Analytic and Emulated list the canonical config indices of each
	// leg, in first-appearance order.
	Analytic []int
	// Emulated holds what the profile cannot express: other line
	// sizes, sectored lines, non-LRU policies, invalid geometries
	// (those fail in the emulator constructor with the legacy error).
	Emulated []int
}

// Passes returns how many snooping passes over the trace the plan
// needs: one combined pass when any config must be answered, zero for
// an empty grid. The per-config baseline this saves against is
// len(Configs) passes — the reprogram-per-experiment hardware flow.
func (p *SweepPlan) Passes() int {
	if len(p.Analytic)+len(p.Emulated) == 0 {
		return 0
	}
	return 1
}

// analyticEligible reports whether the Mattson engine can express cfg
// at all (line-size agreement is decided plan-wide, not here): true
// LRU only — inclusion does not hold for FIFO or Random — and
// unsectored only, because per-sector valid bits add fill state a
// stack profile cannot see.
func analyticEligible(cfg cache.Config) bool {
	return cfg.Repl == cache.LRU && cfg.SectorSize == 0 && cfg.Validate() == nil
}

// PlanSweep compiles a flattened config grid into a SweepPlan under
// the given engine policy. EngineEmulate sends every canonical config
// to the emulation leg (duplicates still dedupe); EngineAuto picks the
// dominant line size among eligible configs and answers that family
// analytically; EngineOracle additionally fails if any config cannot
// be answered analytically.
func PlanSweep(configs []cache.Config, engine Engine) (*SweepPlan, error) {
	plan := &SweepPlan{
		Configs: append([]cache.Config(nil), configs...),
		Entries: make([]PlanEntry, len(configs)),
	}

	// Pass 1: dedupe by behavioral geometry.
	canonical := make(map[geomKey]int, len(configs))
	for i, cfg := range configs {
		k := geomKey{cfg.Size, cfg.LineSize, cfg.Assoc, cfg.Repl, cfg.SectorSize}
		if first, ok := canonical[k]; ok {
			plan.Entries[i] = PlanEntry{Canonical: first}
			continue
		}
		canonical[k] = i
		plan.Entries[i] = PlanEntry{Canonical: i}
	}

	// Pass 2: choose the analytic line size — the one answering the
	// most canonical configs (ties to the smaller size, so the choice
	// is deterministic). One engine holds one line-granular profile;
	// a config at any other line size re-blocks the stream and goes to
	// the emulation leg.
	if engine != EngineEmulate {
		counts := make(map[uint64]int)
		for i, cfg := range configs {
			if plan.Entries[i].Canonical == i && analyticEligible(cfg) {
				counts[cfg.LineSize]++
			}
		}
		for ls, n := range counts {
			best := counts[plan.LineSize]
			if plan.LineSize == 0 || n > best || (n == best && ls < plan.LineSize) {
				plan.LineSize = ls
			}
		}
	}

	// Pass 3: partition canonical configs into legs.
	for i, cfg := range configs {
		if plan.Entries[i].Canonical != i {
			continue
		}
		analytic := engine != EngineEmulate && analyticEligible(cfg) && cfg.LineSize == plan.LineSize
		if !analytic && engine == EngineOracle {
			return nil, fmt.Errorf(
				"core: -engine=oracle: config %q (line %d B, %v%s) is not analytically answerable in a plan at %d B lines",
				cfg.Name, cfg.LineSize, cfg.Repl, sectoredNote(cfg), plan.LineSize)
		}
		plan.Entries[i].Analytic = analytic
		if analytic {
			plan.Analytic = append(plan.Analytic, i)
		} else {
			plan.Emulated = append(plan.Emulated, i)
		}
	}
	return plan, nil
}

func sectoredNote(cfg cache.Config) string {
	if cfg.SectorSize != 0 {
		return ", sectored"
	}
	return ""
}

// planClockHz is the CB sampling clock of the analytic leg — the same
// 3.0 GHz Xeon reference clock dragonhead.DefaultConfig uses, so
// analytic per-sample series land on identical cycle boundaries.
const planClockHz = 3e9

// CombinedSweep runs the named workload once while answering several
// config grids — e.g. the Figure 4-6 cache sweep plus the Figure 7
// line sweep — in a single planned pass. Geometries shared across
// grids are computed once; the result slices mirror the input grids
// element for element, each config under its own name. The engine
// defaults to EngineAuto (pass WithEngine(EngineEmulate) to plan with
// emulators only; deduplication and the single pass remain).
func CombinedSweep(name string, p workloads.Params, pc PlatformConfig, grids [][]cache.Config, opts ...RunOption) ([][]LLCResult, RunSummary, error) {
	ro := applyOpts(opts)
	if !ro.engineSet {
		ro.engine = EngineAuto
	}
	_, results, sum, err := plannedSweep(name, p, pc, grids, ro)
	if err != nil {
		return nil, RunSummary{}, err
	}
	out := make([][]LLCResult, len(grids))
	k := 0
	for gi, g := range grids {
		out[gi] = results[k : k+len(g) : k+len(g)]
		k += len(g)
	}
	return out, sum, nil
}

// plannedSweep is the planner-backed sweep executor shared by LLCSweep
// (under WithEngine) and CombinedSweep: compile the plan, build one
// analytic engine plus the emulation leg, answer everything in a
// single bus pass, then fan results back out to the caller's order.
func plannedSweep(name string, p workloads.Params, pc PlatformConfig, grids [][]cache.Config, ro runOpts) ([]cache.Config, []LLCResult, RunSummary, error) {
	if ro.sampling != SamplingOff {
		// The fast tier replaces both legs: representative-interval
		// replay with extrapolated (approximate) statistics.
		return sampledSweep(name, p, pc, grids, ro)
	}
	var flat []cache.Config
	for _, g := range grids {
		flat = append(flat, g...)
	}
	plan, err := PlanSweep(flat, ro.engine)
	if err != nil {
		return nil, nil, RunSummary{}, err
	}

	ro.span = ro.rootSpan("plansweep/" + name)
	ro.span.SetAttr("analytic_configs", strconv.Itoa(len(plan.Analytic)))
	ro.span.SetAttr("emulated_configs", strconv.Itoa(len(plan.Emulated)))
	start := time.Now()
	cfgSpan := ro.span.StartChild("configure")
	reg := ro.tel.Registry()
	reg.Counter("core_plan_analytic_configs_total").Add(uint64(len(plan.Analytic)))
	reg.Counter("core_plan_emulated_configs_total").Add(uint64(len(plan.Emulated)))
	reg.Counter("core_plan_deduped_configs_total").Add(uint64(len(flat) - len(plan.Analytic) - len(plan.Emulated)))
	if saved := len(flat) - plan.Passes(); saved > 0 {
		reg.Counter("core_plan_passes_saved_total").Add(uint64(saved))
	}

	var eng *oracle.Engine
	tracked := make(map[int]*oracle.Tracked, len(plan.Analytic))
	var snoopers []fsb.Snooper
	if len(plan.Analytic) > 0 {
		if eng, err = oracle.New(plan.LineSize); err != nil {
			return nil, nil, RunSummary{}, err
		}
		if err := eng.EnableSampling(planClockHz, dragonhead.DefaultSamplePeriod); err != nil {
			return nil, nil, RunSummary{}, err
		}
		for _, i := range plan.Analytic {
			if tracked[i], err = eng.Track(flat[i]); err != nil {
				return nil, nil, RunSummary{}, fmt.Errorf("core: LLC %s: %w", flat[i].Name, err)
			}
		}
		snoopers = append(snoopers, eng)
	}
	emus := make(map[int]*dragonhead.Emulator, len(plan.Emulated))
	for _, i := range plan.Emulated {
		dcfg, err := bankedConfig(flat[i])
		if err != nil {
			return nil, nil, RunSummary{}, err
		}
		dcfg.Shards = ro.shardCount(dcfg.Banks)
		dcfg.Telemetry = reg
		dcfg.Trace = ro.span
		e, err := dragonhead.New(dcfg)
		if err != nil {
			return nil, nil, RunSummary{}, fmt.Errorf("core: LLC %s: %w", flat[i].Name, err)
		}
		emus[i] = e
		snoopers = append(snoopers, e)
	}
	cfgSpan.End()

	sum, err := runNamed(name, p, pc, ro, snoopers)
	if err != nil {
		return nil, nil, RunSummary{}, err
	}

	collect := ro.span.StartChild("collect")
	results := make([]LLCResult, len(flat))
	for i := range flat {
		can := plan.Entries[i].Canonical
		if t, ok := tracked[can]; ok {
			results[i] = LLCResult{
				LLC:          flat[i],
				Stats:        t.Stats(),
				Instructions: eng.Instructions(),
				MPKI:         t.MPKI(),
				Samples:      toDragonheadSamples(t.Samples()),
				Ignored:      eng.Ignored(),
			}
		} else {
			e := emus[can]
			results[i] = LLCResult{
				LLC:          flat[i],
				Stats:        e.Stats(),
				Instructions: e.Instructions(),
				MPKI:         e.MPKI(),
				Samples:      e.Samples(),
				Ignored:      e.Ignored(),
			}
		}
		ro.step(Progress{Phase: PhaseConfig, Config: flat[i].Name, Done: i + 1, Total: len(flat)})
	}
	collect.End()
	ro.span.End()
	ro.reportSweep("plansweep", name, p, pc, sum, results, time.Since(start))
	return flat, results, sum, nil
}

// toDragonheadSamples converts the engine's CB series into the
// emulator's sample type (the structs are field-wise identical; the
// conversion exists so LLCResult keeps a single sample vocabulary).
func toDragonheadSamples(in []oracle.Sample) []dragonhead.Sample {
	out := make([]dragonhead.Sample, len(in))
	for i, s := range in {
		out[i] = dragonhead.Sample(s)
	}
	return out
}
