// Verification orchestration: run the internal/verify oracles,
// invariants, and fault injectors against real workload executions.
//
// This is the `cosim -verify` backend. Each workload executes once
// (memoized in a local trace store) and is then replayed through every
// checker; two extra live runs per workload pin the serial == batched
// == replay delivery equality. The checks are exact — every comparison
// demands zero delta, because everything here is deterministic.

package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"cmpmem/internal/cache"
	"cmpmem/internal/dragonhead"
	"cmpmem/internal/fsb"
	"cmpmem/internal/telemetry"
	"cmpmem/internal/tracestore"
	"cmpmem/internal/verify"
	"cmpmem/internal/workloads"
	"cmpmem/internal/workloads/registry"
)

// VerifyConfig selects what VerifyAll covers.
type VerifyConfig struct {
	// Workloads restricts the sweep (nil = every registered workload).
	Workloads []string
	// Threads is the platform core count (0 = 4: enough to exercise the
	// multi-threaded interleave without tripling runtimes).
	Threads int
}

// verifyPaperMB are the paper-unit LLC sizes the oracle cross-checks
// (a subset of the Figure 4 sweep: small, knee, large).
var verifyPaperMB = []int{4, 16, 64}

// verifyAssocs are the associativities checked at every size.
var verifyAssocs = []int{8, 16}

// verifyConfigs builds the oracle-checked LLC grid at the given scale.
func verifyConfigs(scale float64) []cache.Config {
	out := make([]cache.Config, 0, len(verifyPaperMB)*len(verifyAssocs))
	for _, mb := range verifyPaperMB {
		for _, assoc := range verifyAssocs {
			out = append(out, cache.Config{
				Name:     fmt.Sprintf("LLC-%dMB/%dway", mb, assoc),
				Size:     scaledCacheBytes(mb, scale),
				LineSize: 64,
				Assoc:    assoc,
			})
		}
	}
	return out
}

// VerifyAll runs the full verification suite and returns the report.
// An error is returned only for infrastructure failures (unknown
// workload, broken run); check failures land in the report.
func VerifyAll(p workloads.Params, vc VerifyConfig, opts ...RunOption) (*verify.Report, error) {
	p = p.WithDefaults()
	names := vc.Workloads
	if len(names) == 0 {
		names = registry.Names()
	}
	threads := vc.Threads
	if threads == 0 {
		threads = 4
	}
	pc := PlatformConfig{Threads: threads, Seed: p.Seed}

	// One shared in-memory store: each workload executes once, every
	// checker replays.
	store := tracestore.New(0, "")

	rep := &verify.Report{}
	for _, name := range names {
		if err := verifyWorkload(rep, name, p, pc, store, opts); err != nil {
			return nil, fmt.Errorf("verify %s: %w", name, err)
		}
	}
	if err := verifyConservation(rep, names[0], p, pc); err != nil {
		return nil, fmt.Errorf("verify conservation: %w", err)
	}
	if err := verifyPlanner(rep, names[0], p, pc, store, opts); err != nil {
		return nil, fmt.Errorf("verify planner: %w", err)
	}
	if err := verifyFaults(rep, names[0], p, pc); err != nil {
		return nil, fmt.Errorf("verify faults: %w", err)
	}
	return rep, nil
}

// verifyWorkload runs the per-workload legs: the oracle differential,
// the bank-interleave neutrality, the intra-run sharding neutrality,
// and the delivery equivalence.
func verifyWorkload(rep *verify.Report, name string, p workloads.Params, pc PlatformConfig, store *tracestore.Store, opts []RunOption) error {
	cfgs := verifyConfigs(p.Scale)
	ro := applyOpts(opts)
	ro.store = store

	// --- Leg 1: differential oracle over the replayed stream ----------
	oracle, err := verify.NewOracle(64)
	if err != nil {
		return err
	}
	emus := make([]*dragonhead.Emulator, len(cfgs))
	refs := make([]*verify.RefCache, len(cfgs))
	snoopers := []fsb.Snooper{oracle}
	caches := make([]*cache.Cache, len(cfgs))
	for i, llc := range cfgs {
		if err := oracle.AddConfig(llc); err != nil {
			return err
		}
		dcfg, err := bankedConfig(llc)
		if err != nil {
			return err
		}
		if emus[i], err = dragonhead.New(dcfg); err != nil {
			return err
		}
		if caches[i], err = cache.New(llc); err != nil {
			return err
		}
		if refs[i], err = verify.NewRefCache(llc.Size, llc.LineSize, llc.Assoc); err != nil {
			return err
		}
		snoopers = append(snoopers, emus[i],
			&verify.BusAdapter{Target: caches[i]}, &verify.BusAdapter{Target: refs[i]})
	}
	replayDigest := fsb.NewStreamDigest()
	snoopers = append(snoopers, replayDigest)
	replaySum, err := runNamed(name, p, pc, ro, snoopers)
	if err != nil {
		return err
	}

	for i, llc := range cfgs {
		st := emus[i].Stats()
		id := name + "/" + llc.Name

		want, err := oracle.MissesForConfig(llc)
		if err != nil {
			return err
		}
		if st.Misses == want {
			rep.Passf("oracle/"+id, "%d misses, exact", st.Misses)
		} else {
			rep.Failf("oracle/"+id, "dragonhead %d misses, oracle predicts %d (delta %+d)",
				st.Misses, want, int64(st.Misses)-int64(want))
		}
		rep.Check("oracle-accesses/"+id, verify.Conserve("line requests", st.Accesses, oracle.Accesses()))

		// The monolithic cache and the naive reference cache saw the
		// same stream through the same AF gating: full differential.
		mono := caches[i].Stats()
		rep.Check("banked-vs-monolithic/"+id, verify.DiffStats("banked vs monolithic", st, *mono))
		if refs[i].Misses() == want {
			rep.Passf("refcache/"+id, "%d misses, exact", refs[i].Misses())
		} else {
			rep.Failf("refcache/"+id, "reference cache %d misses, oracle predicts %d", refs[i].Misses(), want)
		}
		rep.Check("state/"+id, verify.DiffSnapshots(caches[i].Snapshot(), refs[i].Snapshot()))

		banks := make([]cache.Stats, emus[i].Banks())
		for b := range banks {
			banks[b] = emus[i].BankStats(b)
		}
		rep.Check("bank-partition/"+id, verify.BankPartition(st, banks))
	}

	// LRU inclusion along both axes the oracle proves: associativity at
	// fixed sets (Mattson), and the Figure 4 size axis at fixed assoc.
	for _, assoc := range verifyAssocs {
		var points []verify.MissPoint
		for _, mb := range verifyPaperMB {
			llc := cache.Config{Size: scaledCacheBytes(mb, p.Scale), LineSize: 64, Assoc: assoc}
			m, err := oracle.MissesForConfig(llc)
			if err != nil {
				return err
			}
			points = append(points, verify.MissPoint{
				Label: fmt.Sprintf("%dMB/%dway", mb, assoc), Capacity: llc.Size, Misses: m})
		}
		rep.Check(fmt.Sprintf("lru-inclusion/%s/%dway", name, assoc), verify.MonotoneMisses(points))
	}

	// --- Leg 1b: sampled fast tier graded against the oracle -----------
	// The approximate tier's whole contract is its error bound: for every
	// geometry, the exact miss count (known here from the oracle) must
	// fall inside the confidence interval the sampled sweep reports.
	sres, _, err := LLCSweep(name, p, pc, cfgs,
		append(append([]RunOption{}, opts...), WithTraceReuse(store), WithSampling(SamplingFast))...)
	if err != nil {
		return err
	}
	for i, llc := range cfgs {
		want, err := oracle.MissesForConfig(llc)
		if err != nil {
			return err
		}
		r := sres[i]
		id := fmt.Sprintf("sampling/%s/%s", name, llc.Name)
		switch {
		case r.Sampling == nil:
			rep.Failf(id, "sampled sweep returned no sampling record")
		case want < r.Sampling.MissLow || want > r.Sampling.MissHigh:
			rep.Failf(id, "exact %d misses outside reported CI [%d, %d] (estimate %d, %d/%d refs replayed)",
				want, r.Sampling.MissLow, r.Sampling.MissHigh, r.Stats.Misses,
				r.Sampling.ReplayedRefs, r.Sampling.TotalRefs)
		case r.Sampling.Exact && r.Stats.Misses != want:
			rep.Failf(id, "exact-fallback plan reports %d misses, oracle predicts %d", r.Stats.Misses, want)
		default:
			rep.Passf(id, "estimate %d, exact %d in CI [%d, %d] (%d/%d refs replayed)",
				r.Stats.Misses, want, r.Sampling.MissLow, r.Sampling.MissHigh,
				r.Sampling.ReplayedRefs, r.Sampling.TotalRefs)
		}
	}

	// --- Leg 2: bank-interleave neutrality -----------------------------
	// The same stream through 1, 2, and 4 CC banks must be
	// indistinguishable (the banked mapping is an exact partition of the
	// monolithic set space).
	neutral := cfgs[len(cfgs)-1] // largest grid entry: most sets to split
	neutralSets := neutral.Size / neutral.LineSize / uint64(neutral.Assoc)
	var variants []*dragonhead.Emulator
	var vsnoop []fsb.Snooper
	for _, banks := range []int{1, 2, 4} {
		if uint64(banks) > neutralSets {
			continue // cannot split further than one set per bank
		}
		dcfg, err := bankedConfig(neutral)
		if err != nil {
			return err
		}
		dcfg.Banks = banks
		e, err := dragonhead.New(dcfg)
		if err != nil {
			return err
		}
		variants = append(variants, e)
		vsnoop = append(vsnoop, e)
	}
	if _, err := runNamed(name, p, pc, ro, vsnoop); err != nil {
		return err
	}
	base := variants[0].Stats()
	for _, e := range variants[1:] {
		rep.Check(fmt.Sprintf("bank-neutrality/%s/%dbanks", name, e.Banks()),
			verify.DiffStats(fmt.Sprintf("1 bank vs %d banks", e.Banks()), base, e.Stats()))
	}

	// --- Leg 3: intra-run sharding neutrality --------------------------
	// The same stream through the serial and the sharded (2- and 4-way)
	// execution paths of one emulator configuration must agree on every
	// published number: Stats, the CB sample series, MPKI, and the AF
	// drop count.
	shardBase, err := bankedConfig(neutral)
	if err != nil {
		return err
	}
	serialEmu, err := dragonhead.New(shardBase)
	if err != nil {
		return err
	}
	ssnoop := []fsb.Snooper{serialEmu}
	var shardedEmus []*dragonhead.Emulator
	for _, shards := range []int{2, 4} {
		if shards > shardBase.Banks {
			continue
		}
		scfg := shardBase
		scfg.Shards = shards
		e, err := dragonhead.New(scfg)
		if err != nil {
			return err
		}
		shardedEmus = append(shardedEmus, e)
		ssnoop = append(ssnoop, e)
	}
	if _, err := runNamed(name, p, pc, ro, ssnoop); err != nil {
		return err
	}
	for _, e := range shardedEmus {
		id := fmt.Sprintf("shard-neutrality/%s/%dshards", name, e.Shards())
		if err := verify.DiffStats(
			fmt.Sprintf("serial vs %d shards", e.Shards()), serialEmu.Stats(), e.Stats()); err != nil {
			rep.Check(id, err)
			continue
		}
		switch {
		case e.MPKI() != serialEmu.MPKI() || e.Ignored() != serialEmu.Ignored():
			rep.Failf(id, "MPKI/ignored diverge: %g/%d != %g/%d",
				e.MPKI(), e.Ignored(), serialEmu.MPKI(), serialEmu.Ignored())
		case !sameSamples(e.Samples(), serialEmu.Samples()):
			rep.Failf(id, "CB sample series diverges (%d vs %d samples)",
				len(e.Samples()), len(serialEmu.Samples()))
		default:
			rep.Passf(id, "stats, %d CB samples, MPKI %.4g bit-identical",
				len(serialEmu.Samples()), serialEmu.MPKI())
		}
	}

	// --- Leg 4: serial == batched == replay ----------------------------
	rep.Merge(verifyDelivery(name, p, pc, replaySum, replayDigest, opts))
	return nil
}

// verifyDelivery is the reusable delivery-equality checker: the same
// run under synchronous live delivery, batched live delivery, and
// store replay must produce one digest, one event count, and one run
// summary. replaySum/replayDigest come from a store-served run the
// caller already made.
func verifyDelivery(name string, p workloads.Params, pc PlatformConfig, replaySum RunSummary, replayDigest *fsb.StreamDigest, opts []RunOption) *verify.Report {
	rep := &verify.Report{}
	run := func(ro runOpts) (RunSummary, *fsb.StreamDigest, error) {
		d := fsb.NewStreamDigest()
		sum, err := runNamed(name, p, pc, ro, []fsb.Snooper{d})
		return sum, d, err
	}
	serialRO := applyOpts(opts)
	serialRO.store, serialRO.batch = nil, 0
	serialSum, serialDigest, err := run(serialRO)
	if err != nil {
		rep.Failf("delivery/"+name, "serial live run failed: %v", err)
		return rep
	}
	batchRO := serialRO
	batchRO.batch = 64 // small batches force many publishes — worst case
	batchSum, batchDigest, err := run(batchRO)
	if err != nil {
		rep.Failf("delivery/"+name, "batched live run failed: %v", err)
		return rep
	}

	check := func(mode string, sum RunSummary, d *fsb.StreamDigest) {
		id := fmt.Sprintf("delivery/%s/serial-vs-%s", name, mode)
		switch {
		case sum != serialSum:
			rep.Failf(id, "run summaries diverge: %+v != %+v", sum, serialSum)
		case d.Sum() != serialDigest.Sum() || d.Events() != serialDigest.Events():
			rep.Failf(id, "stream digest %#x/%d events != %#x/%d",
				d.Sum(), d.Events(), serialDigest.Sum(), serialDigest.Events())
		default:
			rep.Passf(id, "digest %#x over %d events", d.Sum(), d.Events())
		}
	}
	check("batched", batchSum, batchDigest)
	check("replay", replaySum, replayDigest)
	return rep
}

// verifyConservation runs one live sweep with a private telemetry
// registry and checks that every derived total adds up: the manifest
// mirrors the RunSummary and per-LLC results bit-for-bit, and the
// bus/emulator counters equal the API-visible totals.
func verifyConservation(rep *verify.Report, name string, p workloads.Params, pc PlatformConfig) error {
	reg := telemetry.NewRegistry()
	var buf bytes.Buffer
	sink := telemetry.NewSink(reg, telemetry.NewManifestWriter(&buf), nil)

	llcs := verifyConfigs(p.Scale)[:2]
	results, sum, err := LLCSweep(name, p, pc, llcs, WithTelemetry(sink))
	if err != nil {
		return err
	}

	var m telemetry.Manifest
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &m); err != nil {
		return fmt.Errorf("parsing manifest: %w", err)
	}
	if m.Summary == nil {
		rep.Failf("manifest/"+name, "manifest has no summary block")
		return nil
	}
	manifestTotals := RunSummary{Workload: sum.Workload, Threads: sum.Threads,
		Instructions: m.Summary.Instructions, Loads: m.Summary.Loads,
		Stores: m.Summary.Stores, BusEvents: m.Summary.BusEvents}
	if manifestTotals == sum {
		rep.Passf("manifest-summary/"+name, "totals mirror RunSummary")
	} else {
		rep.Failf("manifest-summary/"+name, "manifest %+v != summary %+v", *m.Summary, sum)
	}
	if len(m.LLCs) != len(results) {
		rep.Failf("manifest-llcs/"+name, "%d manifest records != %d results", len(m.LLCs), len(results))
	} else {
		ok := true
		for i, r := range results {
			lr := m.LLCs[i]
			if lr.Accesses != r.Stats.Accesses || lr.Misses != r.Stats.Misses || lr.MPKI != r.MPKI {
				rep.Failf("manifest-llcs/"+name, "record %d: %+v != result accesses=%d misses=%d mpki=%g",
					i, lr, r.Stats.Accesses, r.Stats.Misses, r.MPKI)
				ok = false
			}
		}
		if ok {
			rep.Passf("manifest-llcs/"+name, "%d LLC records bit-match results", len(results))
		}
	}

	snap := reg.Snapshot()
	rep.Check("counter/fsb_events/"+name,
		verify.Conserve("fsb_events_total", snap.Counters["fsb_events_total"], sum.BusEvents))
	var ccAcc, ccMiss, wantAcc, wantMiss uint64
	for n, v := range snap.Counters {
		if !strings.HasPrefix(n, "dragonhead_cc") {
			continue
		}
		if strings.HasSuffix(n, "_accesses_total") {
			ccAcc += v
		} else if strings.HasSuffix(n, "_misses_total") {
			ccMiss += v
		}
	}
	for _, r := range results {
		wantAcc += r.Stats.Accesses
		wantMiss += r.Stats.Misses
	}
	rep.Check("counter/cc_accesses/"+name, verify.Conserve("dragonhead CC accesses", ccAcc, wantAcc))
	rep.Check("counter/cc_misses/"+name, verify.Conserve("dragonhead CC misses", ccMiss, wantMiss))

	// Sharded leg: the same sweep through the intra-run sharded path
	// must produce identical results, and the sharder's routed-ref
	// counter must conserve against the emulators' access totals (every
	// in-window line request is routed to exactly one shard).
	sreg := telemetry.NewRegistry()
	var sbuf bytes.Buffer
	ssink := telemetry.NewSink(sreg, telemetry.NewManifestWriter(&sbuf), nil)
	sresults, _, err := LLCSweep(name, p, pc, llcs, WithTelemetry(ssink), WithBankShards(2))
	if err != nil {
		return err
	}
	for i, r := range results {
		rep.Check("sharded-sweep/"+name+"/"+r.LLC.Name,
			verify.DiffStats("serial vs sharded sweep", r.Stats, sresults[i].Stats))
	}
	ssnap := sreg.Snapshot()
	// Only emulators with >= 2 banks actually shard (a cache small
	// enough to shrink to one bank runs serial); the routed-ref counter
	// conserves against exactly those emulators' access totals.
	var sAcc uint64
	for i, r := range sresults {
		dcfg, err := bankedConfig(llcs[i])
		if err != nil {
			return err
		}
		if dcfg.Banks >= 2 {
			sAcc += r.Stats.Accesses
		}
	}
	rep.Check("counter/shard_refs/"+name,
		verify.Conserve("core_shard_refs_total", ssnap.Counters["core_shard_refs_total"], sAcc))
	return nil
}

// verifyPlanner is the sweep planner's verification gate: the paper's
// combined CacheSweep + LineSweep grid executed through the planner
// must be bit-identical — full Stats, the per-sample CB series,
// instruction totals, MPKI, and the AF ignore count — to the legacy
// per-config emulation sweeps over the same memoized trace. When the
// caller forced -engine=oracle the line-size grid is excluded (strict
// mode refuses it by design) and the gate covers the cache sweep.
func verifyPlanner(rep *verify.Report, name string, p workloads.Params, pc PlatformConfig, store *tracestore.Store, opts []RunOption) error {
	ro := applyOpts(opts)
	engine := ro.engine
	if !ro.engineSet || engine == EngineEmulate {
		engine = EngineAuto
	}
	grids := [][]cache.Config{CacheSweepConfigs(p.Scale), LineSweepConfigs(p.Scale)}
	if engine == EngineOracle {
		grids = grids[:1]
	}

	base := []RunOption{WithTraceReuse(store)}
	legacy := make([][]LLCResult, len(grids))
	var legacySum RunSummary
	for gi, grid := range grids {
		res, sum, err := LLCSweep(name, p, pc, grid, base...)
		if err != nil {
			return err
		}
		legacy[gi], legacySum = res, sum
	}
	planned, plannedSum, err := CombinedSweep(name, p, pc, grids, append(base, WithEngine(engine))...)
	if err != nil {
		return err
	}

	if plannedSum == legacySum {
		rep.Passf("planner-summary/"+name, "run summary identical under %s", engine)
	} else {
		rep.Failf("planner-summary/"+name, "planner summary %+v != emulation %+v", plannedSum, legacySum)
	}
	for gi, grid := range grids {
		for i, llc := range grid {
			id := fmt.Sprintf("planner/%s/%s", name, llc.Name)
			want, got := legacy[gi][i], planned[gi][i]
			if err := verify.DiffStats("planner vs emulation", want.Stats, got.Stats); err != nil {
				rep.Check(id, err)
				continue
			}
			switch {
			case got.Instructions != want.Instructions || got.MPKI != want.MPKI || got.Ignored != want.Ignored:
				rep.Failf(id, "inst/MPKI/ignored diverge: %d/%g/%d != %d/%g/%d",
					got.Instructions, got.MPKI, got.Ignored,
					want.Instructions, want.MPKI, want.Ignored)
			case !sameSamples(got.Samples, want.Samples):
				rep.Failf(id, "CB sample series diverges (%d vs %d samples)",
					len(got.Samples), len(want.Samples))
			case len(want.Samples) == 0:
				// A stream shorter than one CB sample period legitimately
				// yields no samples; the totals above are still exact.
				rep.Passf(id, "stats and MPKI %.4g bit-identical (stream shorter than one CB sample period)",
					want.MPKI)
			default:
				rep.Passf(id, "stats, %d CB samples, MPKI %.4g all bit-identical",
					len(want.Samples), want.MPKI)
			}
		}
	}
	return nil
}

// sameSamples reports element-wise equality of two CB sample series.
func sameSamples(a, b []dragonhead.Sample) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// verifyFaults exercises the injected-failure paths end to end: spill
// I/O corruption must force a recompute that yields the identical
// stream, and a lossy snooper must be detectable by digest and event
// count.
func verifyFaults(rep *verify.Report, name string, p workloads.Params, pc PlatformConfig) error {
	run := func(store *tracestore.Store) (RunSummary, *fsb.StreamDigest, *tracestore.Stats, error) {
		d := fsb.NewStreamDigest()
		ro := runOpts{store: store}
		sum, err := runNamed(name, p, pc, ro, []fsb.Snooper{d})
		if err != nil {
			return RunSummary{}, nil, nil, err
		}
		st := store.Stats()
		return sum, d, &st, nil
	}

	// Baseline: capture + spill through the fault filesystem (no faults
	// armed), then serve a second store from the spill file.
	ffs := verify.NewFaultFS()
	s1 := tracestore.New(0, "spill")
	s1.SetFS(ffs)
	cleanSum, cleanDigest, _, err := run(s1)
	if err != nil {
		return err
	}
	files := ffs.Files()
	if len(files) != 1 {
		rep.Failf("fault/spill-written/"+name, "expected 1 spill file, have %d", len(files))
		return nil
	}
	rep.Passf("fault/spill-written/"+name, "captured and spilled %d bus events", cleanSum.BusEvents)

	s2 := tracestore.New(0, "spill")
	s2.SetFS(ffs)
	diskSum, diskDigest, diskStats, err := run(s2)
	if err != nil {
		return err
	}
	if diskStats.DiskHits == 1 && diskSum == cleanSum && diskDigest.Sum() == cleanDigest.Sum() {
		rep.Passf("fault/spill-replay/"+name, "disk-served stream bit-identical (digest %#x)", diskDigest.Sum())
	} else {
		rep.Failf("fault/spill-replay/"+name, "disk hits=%d, sum match=%v, digest match=%v",
			diskStats.DiskHits, diskSum == cleanSum, diskDigest.Sum() == cleanDigest.Sum())
	}

	// Corrupt the spill mid-file: the store must fall back to
	// re-execution and still produce the identical stream.
	ffs.CorruptRead = true
	ffs.CorruptOff = 200
	ffs.CorruptMask = 0x20
	s3 := tracestore.New(0, "spill")
	s3.SetFS(ffs)
	corruptSum, corruptDigest, corruptStats, err := run(s3)
	if err != nil {
		return err
	}
	switch {
	case corruptStats.DiskHits != 0:
		rep.Failf("fault/spill-corrupt/"+name, "corrupted spill was served as a disk hit")
	case corruptSum != cleanSum || corruptDigest.Sum() != cleanDigest.Sum():
		rep.Failf("fault/spill-corrupt/"+name, "recomputed stream diverges from the clean run")
	default:
		rep.Passf("fault/spill-corrupt/"+name, "corrupt spill rejected; recompute bit-identical")
	}

	// Open failure: same graceful degradation.
	ffs.CorruptRead = false
	ffs.FailOpen = true
	s4 := tracestore.New(0, "spill")
	s4.SetFS(ffs)
	openSum, openDigest, openStats, err := run(s4)
	if err != nil {
		return err
	}
	if openStats.DiskHits == 0 && openSum == cleanSum && openDigest.Sum() == cleanDigest.Sum() {
		rep.Passf("fault/spill-open-fail/"+name, "open failure degraded to recompute")
	} else {
		rep.Failf("fault/spill-open-fail/"+name, "open failure not handled gracefully")
	}

	// Lossy delivery: a snooper that silently drops events must be
	// caught by the digest and by event-count conservation.
	lossTarget := fsb.NewStreamDigest()
	drop := &verify.DropSnooper{Inner: lossTarget, DropEvery: 101}
	witness := fsb.NewStreamDigest()
	if _, err := runNamed(name, p, pc, runOpts{}, []fsb.Snooper{drop, witness}); err != nil {
		return err
	}
	switch {
	case drop.Dropped() == 0:
		rep.Failf("fault/drop-detect/"+name, "drop injector never fired")
	case lossTarget.Sum() == witness.Sum():
		rep.Failf("fault/drop-detect/"+name, "digest failed to expose %d dropped events", drop.Dropped())
	case lossTarget.Events()+drop.Dropped() != witness.Events():
		rep.Failf("fault/drop-detect/"+name, "event counts do not reconcile: %d delivered + %d dropped != %d",
			lossTarget.Events(), drop.Dropped(), witness.Events())
	default:
		rep.Passf("fault/drop-detect/"+name, "%d dropped events exposed by digest and count", drop.Dropped())
	}
	return nil
}
