package core

import (
	"strings"
	"testing"

	"cmpmem/internal/cache"
	"cmpmem/internal/dragonhead"
	"cmpmem/internal/hier"
	"cmpmem/internal/trace"
	"cmpmem/internal/workloads"
)

func TestRunUnknownWorkload(t *testing.T) {
	_, err := Run("BOGUS", tinyParams(), PlatformConfig{Threads: 1})
	if err == nil || !strings.Contains(err.Error(), "BOGUS") {
		t.Fatalf("unknown workload: err = %v", err)
	}
}

func TestLLCSweepRejectsBadConfig(t *testing.T) {
	bad := []cache.Config{{Name: "x", Size: 100, LineSize: 64, Assoc: 1}}
	if _, _, err := LLCSweep("PLSA", tinyParams(), PlatformConfig{Threads: 1}, bad); err == nil {
		t.Fatal("invalid LLC config accepted")
	}
}

func TestRunDefaultsToOneThread(t *testing.T) {
	sum, err := Run("PLSA", tinyParams(), PlatformConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Threads != 1 {
		t.Errorf("threads = %d, want 1", sum.Threads)
	}
}

func TestRunHierProfile(t *testing.T) {
	res, err := RunHier("PLSA", tinyParams(), PlatformConfig{Threads: 1}, hier.PentiumIV(1.0/512))
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.IPC > 2 {
		t.Errorf("implausible IPC %v", res.IPC)
	}
	if res.L1.Accesses == 0 {
		t.Error("hierarchy saw no accesses")
	}
	if res.Cycles <= float64(res.Summary.Instructions)*0.5 {
		t.Errorf("cycles %v below any possible execution time", res.Cycles)
	}
}

func TestRunHierRejectsBadConfig(t *testing.T) {
	bad := hier.PentiumIV(1)
	bad.Cores = 0
	if _, err := RunHier("PLSA", tinyParams(), PlatformConfig{Threads: 1}, bad); err == nil {
		t.Fatal("invalid hierarchy accepted")
	}
}

func TestTraceCaptureWindowed(t *testing.T) {
	var refs int
	sum, err := TraceCapture("PLSA", tinyParams(), PlatformConfig{Threads: 2, HostNoiseRefs: 7, Seed: 1},
		func(r trace.Ref) { refs++ })
	if err != nil {
		t.Fatal(err)
	}
	if refs == 0 {
		t.Fatal("no references captured")
	}
	// All captured references are guest memory instructions; host noise
	// outside the window must be excluded, so the count matches the
	// scheduler's memory-instruction totals exactly.
	if uint64(refs) != sum.Loads+sum.Stores {
		t.Errorf("captured %d refs, scheduler counted %d memory instructions",
			refs, sum.Loads+sum.Stores)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	r1, s1, err := LLCSweep("SNP", tinyParams(), PlatformConfig{Threads: 2, Seed: 9}, tinyLLCs())
	if err != nil {
		t.Fatal(err)
	}
	r2, s2, err := LLCSweep("SNP", tinyParams(), PlatformConfig{Threads: 2, Seed: 9}, tinyLLCs())
	if err != nil {
		t.Fatal(err)
	}
	if s1.Instructions != s2.Instructions || s1.BusEvents != s2.BusEvents {
		t.Errorf("summaries differ: %+v vs %+v", s1, s2)
	}
	for i := range r1 {
		if r1[i].Stats.Misses != r2[i].Stats.Misses {
			t.Errorf("cache %d misses differ: %d vs %d", i, r1[i].Stats.Misses, r2[i].Stats.Misses)
		}
	}
}

func TestCacheSweepConfigsScaling(t *testing.T) {
	cfgs := CacheSweepConfigs(1.0 / 16)
	if len(cfgs) != len(PaperCacheSizesMB) {
		t.Fatalf("got %d configs", len(cfgs))
	}
	// 4 MB paper at 1/16 = 256 KB simulated.
	if cfgs[0].Size != 256<<10 {
		t.Errorf("first config %d bytes, want 256KB", cfgs[0].Size)
	}
	if cfgs[6].Size != 16<<20 {
		t.Errorf("last config %d bytes, want 16MB", cfgs[6].Size)
	}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}

func TestLineSweepConfigs(t *testing.T) {
	cfgs := LineSweepConfigs(1.0 / 16)
	if len(cfgs) != len(PaperLineSizes) {
		t.Fatalf("got %d configs", len(cfgs))
	}
	for i, c := range cfgs {
		if c.LineSize != PaperLineSizes[i] {
			t.Errorf("config %d line %d, want %d", i, c.LineSize, PaperLineSizes[i])
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
		if c.Size != cfgs[0].Size {
			t.Error("line sweep must hold cache size constant")
		}
	}
}

func TestTable1Complete(t *testing.T) {
	rows := Table1(workloads.Params{Seed: 1, Scale: 1.0 / 512})
	if len(rows) != 8 {
		t.Fatalf("Table 1 has %d rows, want 8", len(rows))
	}
	for _, r := range rows {
		if r.Parameters == "" || r.DataSize == "" {
			t.Errorf("%s: incomplete row", r.Workload)
		}
	}
}

// TestSamplesMonotone: CB samples must be cumulative and ordered.
func TestSamplesMonotone(t *testing.T) {
	results, _, err := LLCSweep("FIMI", tinyParams(), PlatformConfig{Threads: 2, Seed: 1}, tinyLLCs())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		var prev dragonhead.Sample
		for i, s := range r.Samples {
			if i > 0 && (s.Cycles <= prev.Cycles || s.Misses < prev.Misses ||
				s.Instructions < prev.Instructions) {
				t.Fatalf("%s: sample %d not monotone: %+v after %+v", r.LLC.Name, i, s, prev)
			}
			prev = s
		}
	}
}
