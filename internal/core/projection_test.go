package core

import (
	"testing"

	"cmpmem/internal/workloads"
)

// TestProjection128Shapes checks the Section 4.3 projection at reduced
// scale and core count (kept fast; the full 128-core projection runs
// via `cosim proj128`): private-working-set workloads dwarf the
// shared-working-set ones, and the paper's DRAM-cache candidates are
// flagged.
func TestProjectionShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("projection is too slow for -short")
	}
	p := workloads.Params{Seed: 1, Scale: 1.0 / 128}
	rows, err := Projection128(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ProjectionRow{}
	for _, r := range rows {
		byName[r.Workload] = r
		if r.WorkingSetPaperMB <= 0 {
			t.Errorf("%s: no working set measured", r.Workload)
		}
		if r.WorkingSetPaperMB > r.DistinctPaperMB*1.01 {
			t.Errorf("%s: working set %f exceeds footprint %f",
				r.Workload, r.WorkingSetPaperMB, r.DistinctPaperMB)
		}
	}
	// PLSA's working set is tiny; SHOT's scales with cores and must be
	// far larger.
	if byName["SHOT"].WorkingSetPaperMB < 10*byName["PLSA"].WorkingSetPaperMB {
		t.Errorf("SHOT working set (%.0fMB) not far above PLSA's (%.0fMB)",
			byName["SHOT"].WorkingSetPaperMB, byName["PLSA"].WorkingSetPaperMB)
	}
	// The paper's five DRAM-cache candidates must be flagged.
	for _, name := range []string{"SNP", "FIMI", "RSEARCH", "SHOT", "VIEWTYPE"} {
		if !byName[name].WantsDRAMCache {
			t.Errorf("%s: not flagged as a DRAM-cache candidate (WS %.0fMB)",
				name, byName[name].WorkingSetPaperMB)
		}
	}
	// PLSA never needs one.
	if byName["PLSA"].WantsDRAMCache {
		t.Error("PLSA flagged as a DRAM-cache candidate")
	}
}

// TestDRAMCacheStudyShapes verifies the conclusions' claim: the
// big-working-set workloads gain substantially from a large DRAM LLC,
// while the cache-resident ones are indifferent.
func TestDRAMCacheStudyShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("DRAM study is too slow for -short")
	}
	p := workloads.Params{Seed: 1, Scale: 1.0 / 64}
	rows, err := DRAMCacheStudy(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]DRAMCacheRow{}
	for _, r := range rows {
		byName[r.Workload] = r
	}
	for _, name := range []string{"MDS", "SNP", "FIMI"} {
		if byName[name].GainDRAMPct < 10 {
			t.Errorf("%s: DRAM LLC gain only %+.1f%%, expected substantial",
				name, byName[name].GainDRAMPct)
		}
	}
	// PLSA fits its private caches: the DRAM LLC must be near-neutral.
	if g := byName["PLSA"].GainDRAMPct; g > 30 || g < -10 {
		t.Errorf("PLSA DRAM gain %+.1f%% implausible for a cache-resident workload", g)
	}
}

// TestSharedVsPrivateShapes: the shared organization must beat private
// slices for shared-working-set workloads and tie for private-working-
// set ones (DESIGN.md's related-work study).
func TestSharedVsPrivateShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := SharedVsPrivate(workloads.Params{Seed: 1, Scale: 1.0 / 128}, 8, 32)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]LLCOrgRow{}
	for _, r := range rows {
		byName[r.Workload] = r
	}
	for _, name := range []string{"SNP", "MDS"} {
		r := byName[name]
		if r.PrivateMPKI <= r.SharedMPKI {
			t.Errorf("%s: private (%.2f) not worse than shared (%.2f) for a shared working set",
				name, r.PrivateMPKI, r.SharedMPKI)
		}
	}
	for _, name := range []string{"SHOT", "VIEWTYPE"} {
		r := byName[name]
		if r.SharedMPKI == 0 {
			continue
		}
		if ratio := r.PrivateMPKI / r.SharedMPKI; ratio > 1.3 {
			t.Errorf("%s: private/shared ratio %.2f too high for private working sets", name, ratio)
		}
	}
}

func TestProjectionDefaultCores(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// cores=0 defaults to 128 and must run end to end at tiny scale.
	rows, err := Projection128(workloads.Params{Seed: 1, Scale: 1.0 / 512}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Cores != 128 {
			t.Fatalf("cores = %d, want 128", r.Cores)
		}
	}
}
