package core

import (
	"testing"

	"cmpmem/internal/metrics"
	"cmpmem/internal/workloads"
)

// shapeParams runs the shape tests at 1/32 scale: half the harness
// default, fast enough for CI while preserving every relative shape
// (workloads and cache sweeps scale together).
func shapeParams() workloads.Params {
	return workloads.Params{Seed: 1, Scale: 1.0 / 32}
}

// seriesByName indexes sweep output.
func seriesByName(ss []metrics.Series) map[string]*metrics.Series {
	out := make(map[string]*metrics.Series, len(ss))
	for i := range ss {
		out[ss[i].Name] = &ss[i]
	}
	return out
}

// TestFigure4Shapes verifies the paper's headline cache-size findings on
// the 8-core SCMP: monotone-non-increasing curves, a flat MDS curve
// (its sparse matrix exceeds every cache), near-flat small-working-set
// workloads (SVM-RFE/PLSA/RSEARCH), and a SHOT knee at 32 MB
// paper-equivalent.
func TestFigure4Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("cache sweep is too slow for -short")
	}
	series, err := CacheSweep(shapeParams(), 8)
	if err != nil {
		t.Fatal(err)
	}
	byName := seriesByName(series)

	for _, s := range series {
		for i := 1; i < len(s.Points); i++ {
			// Allow 5% jitter: set-associative curves are not strictly
			// monotone.
			if s.Points[i].Y > s.Points[i-1].Y*1.05 {
				t.Errorf("%s: MPKI rises with cache size at %g MB: %.3f -> %.3f",
					s.Name, s.Points[i].X, s.Points[i-1].Y, s.Points[i].Y)
			}
		}
	}

	if f := byName["MDS"].Flatness(); f > 2.0 {
		t.Errorf("MDS curve not flat: max/min = %.2f (paper: no benefit from any size)", f)
	}
	if f := byName["PLSA"].Flatness(); f > 1.5 {
		t.Errorf("PLSA curve not flat: max/min = %.2f", f)
	}
	// RSEARCH's fixed-size per-thread tables (k-mer filter, DP tile) do
	// not shrink with the footprint scale, so at 1/32 the curve is less
	// flat than at harness scale (1/16), where max/min is ~1.01.
	if f := byName["RSEARCH"].Flatness(); f > 3.0 {
		t.Errorf("RSEARCH curve not flat on SCMP: max/min = %.2f (4 MB working set)", f)
	}

	// SHOT: large at 16, small at 64 (knee at 32 MB paper-equivalent).
	shot := byName["SHOT"]
	y16, _ := shot.YAt(16)
	y64, _ := shot.YAt(64)
	if y16 < 4*y64 {
		t.Errorf("SHOT knee missing: MPKI(16MB)=%.2f vs MPKI(64MB)=%.2f", y16, y64)
	}
}

// TestThreadScalingShapes verifies Section 4.3's two sharing categories
// across SCMP -> LCMP: shared-working-set workloads are invariant with
// thread count; private-working-set workloads' knees move right
// (working set grows with cores).
func TestThreadScalingShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("cache sweeps are too slow for -short")
	}
	p := shapeParams()
	s8, err := CacheSweep(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	s32, err := CacheSweep(p, 32)
	if err != nil {
		t.Fatal(err)
	}
	b8, b32 := seriesByName(s8), seriesByName(s32)

	// Category (a): invariant curves (compare at the 32 MB point). The
	// bound is loose because per-thread bookkeeping buffers do not
	// shrink with scale; at harness scale (1/16) these workloads move
	// by less than 15%.
	for _, name := range []string{"SNP", "SVM-RFE", "MDS", "PLSA"} {
		y8, _ := b8[name].YAt(32)
		y32, _ := b32[name].YAt(32)
		if y8 == 0 {
			continue
		}
		if y32 < y8*0.3 || y32 > y8*3 {
			t.Errorf("%s: shared-WS workload changed with threads: MPKI(8c)=%.2f MPKI(32c)=%.2f",
				name, y8, y32)
		}
	}

	// Private working sets: SHOT's 8-core knee point must still be
	// expensive at 32 cores (the working set quadrupled).
	shotY8, _ := b8["SHOT"].YAt(64)   // past the 8-core knee: cheap
	shotY32, _ := b32["SHOT"].YAt(64) // before the 32-core knee: expensive
	if shotY32 < 4*shotY8 {
		t.Errorf("SHOT working set did not grow with threads: MPKI(64MB)@8c=%.2f @32c=%.2f",
			shotY8, shotY32)
	}

	// Mixed category: FIMI misses grow with thread count at mid sizes.
	fimi8, _ := b8["FIMI"].YAt(32)
	fimi32, _ := b32["FIMI"].YAt(32)
	if fimi32 <= fimi8 {
		t.Errorf("FIMI misses did not grow with threads: %.2f -> %.2f", fimi8, fimi32)
	}
}

// TestFigure7Shapes verifies the line-size study: every workload
// improves from 64 B to 256 B, and the streaming workloads improve
// close to linearly.
func TestFigure7Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("line sweep is too slow for -short")
	}
	series, err := LineSweep(shapeParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range series {
		y64, _ := s.YAt(64)
		y256, _ := s.YAt(256)
		if y64 == 0 {
			continue
		}
		if y256 >= y64 {
			t.Errorf("%s: no benefit from 64B -> 256B lines: %.3f -> %.3f", s.Name, y64, y256)
		}
	}
	// Streaming workloads: near-linear reduction (>= 3x over 4x line).
	for _, name := range []string{"MDS", "SHOT", "PLSA"} {
		for _, s := range series {
			if s.Name != name {
				continue
			}
			y64, _ := s.YAt(64)
			y256, _ := s.YAt(256)
			if y64 > 0 && y64/y256 < 3 {
				t.Errorf("%s: streaming miss reduction only %.2fx from 64B to 256B", name, y64/y256)
			}
		}
	}
}

// TestFigure8Shapes verifies the prefetching study's robust findings:
// prefetching never hurts materially, the serial gains peak in the
// paper's reported range, and the bandwidth-saturated workloads
// (SNP, MDS) gain less in 16-thread mode while SHOT gains more.
func TestFigure8Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("prefetch study is too slow for -short")
	}
	rows, err := Fig8(shapeParams())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig8Row{}
	var peak float64
	for _, r := range rows {
		byName[r.Workload] = r
		if r.SerialGainPct > peak {
			peak = r.SerialGainPct
		}
		if r.SerialGainPct < -2 || r.ParallelGainPct < -2 {
			t.Errorf("%s: prefetching hurt: serial %+.1f%% parallel %+.1f%%",
				r.Workload, r.SerialGainPct, r.ParallelGainPct)
		}
	}
	if peak < 5 || peak > 80 {
		t.Errorf("peak serial gain %.1f%% outside plausible range (paper: up to ~33%%)", peak)
	}
	for _, name := range []string{"SNP", "MDS"} {
		r := byName[name]
		if r.ParallelGainPct >= r.SerialGainPct {
			t.Errorf("%s: parallel gain %+.1f%% not below serial %+.1f%% (bus contention)",
				name, r.ParallelGainPct, r.SerialGainPct)
		}
	}
	if r := byName["SHOT"]; r.ParallelGainPct <= r.SerialGainPct {
		t.Errorf("SHOT: parallel gain %+.1f%% not above serial %+.1f%%",
			r.ParallelGainPct, r.SerialGainPct)
	}
}

// TestTable2Shapes verifies the single-threaded profile's robust
// orderings: PLSA has the highest memory-instruction share and the
// lowest DL2 miss rate; MDS is among the slowest (lowest IPC); every
// workload is memory-intensive (>= 40% memory instructions); reads
// dominate writes.
func TestTable2Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("table 2 profiling is too slow for -short")
	}
	rows, err := Table2(shapeParams())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Workload] = r
		if r.PctMem < 35 {
			t.Errorf("%s: only %.1f%% memory instructions (paper: roughly half or more)",
				r.Workload, r.PctMem)
		}
		if r.PctMemRead <= r.PctMem/2 {
			t.Errorf("%s: reads are not the majority of memory instructions (%.1f%% of %.1f%%)",
				r.Workload, r.PctMemRead, r.PctMem)
		}
		if r.IPC <= 0 {
			t.Errorf("%s: IPC = %v", r.Workload, r.IPC)
		}
	}
	plsa := byName["PLSA"]
	for _, r := range rows {
		if r.Workload != "PLSA" && r.PctMem > plsa.PctMem {
			t.Errorf("%s memory share %.1f%% exceeds PLSA's %.1f%% (paper: PLSA highest at 83%%)",
				r.Workload, r.PctMem, plsa.PctMem)
		}
		if r.Workload != "PLSA" && r.DL2MissPer1k < plsa.DL2MissPer1k {
			t.Errorf("%s DL2 MPKI %.2f below PLSA's %.2f (paper: PLSA lowest)",
				r.Workload, r.DL2MissPer1k, plsa.DL2MissPer1k)
		}
	}
	if mds := byName["MDS"]; mds.IPC > plsa.IPC {
		t.Errorf("MDS IPC %.2f above PLSA's %.2f (paper: MDS 0.06 vs PLSA 1.08)",
			mds.IPC, plsa.IPC)
	}
}
