// Grading tests for the approximate fast tier: the sampled sweep's
// error bound is checked against the exact oracle on every registered
// workload and every verify geometry, the replay fraction is pinned to
// the fast-tier budget, and warmup length is metamorphically required
// not to hurt accuracy.

package core

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"cmpmem/internal/cache"
	"cmpmem/internal/fsb"
	"cmpmem/internal/sampling"
	"cmpmem/internal/tracestore"
	"cmpmem/internal/verify"
	"cmpmem/internal/workloads"
	"cmpmem/internal/workloads/registry"
)

// samplingGradeParams mirrors the CI verify job's scale/seed so the
// grading here and `cosim -verify`'s sampling leg see the same streams.
func samplingGradeParams() workloads.Params {
	return workloads.Params{Seed: 3, Scale: 0.002}
}

// samplingErrorRow is one (workload, config) grading record of the JSON
// error report artifact.
type samplingErrorRow struct {
	Workload     string  `json:"workload"`
	Config       string  `json:"config"`
	ExactMisses  uint64  `json:"exact_misses"`
	EstMisses    uint64  `json:"est_misses"`
	MissLow      uint64  `json:"miss_low"`
	MissHigh     uint64  `json:"miss_high"`
	MissRelCI    float64 `json:"miss_rel_ci"`
	RelError     float64 `json:"rel_error"`
	ExactPlan    bool    `json:"exact_plan"`
	ReplayedRefs uint64  `json:"replayed_refs"`
	TotalRefs    uint64  `json:"total_refs"`
	InCI         bool    `json:"in_ci"`
}

// exactOracleMisses replays one workload through the differential
// oracle and returns the exact miss count per config (memoizing the
// capture in store so the sampled sweep reuses the same stream).
func exactOracleMisses(t *testing.T, name string, p workloads.Params, pc PlatformConfig, store *tracestore.Store, cfgs []cache.Config) []uint64 {
	t.Helper()
	oracle, err := verify.NewOracle(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, llc := range cfgs {
		if err := oracle.AddConfig(llc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := runNamed(name, p, pc, runOpts{store: store}, []fsb.Snooper{oracle}); err != nil {
		t.Fatalf("%s: oracle replay: %v", name, err)
	}
	out := make([]uint64, len(cfgs))
	for i, llc := range cfgs {
		if out[i], err = oracle.MissesForConfig(llc); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestSamplingErrorBounds grades the fast tier against the exact
// oracle on all registered workloads and all verify geometries: the
// exact miss count must fall inside the reported confidence interval,
// and the interval must stay sanely narrow (its width bounded by a
// small fraction of the extrapolated access total). The per-row
// results are written as a JSON artifact, -verify-out style, to
// COSIM_SAMPLING_REPORT when set (a temp file otherwise).
func TestSamplingErrorBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-workload sweep grading is not a -short test")
	}
	p := samplingGradeParams()
	pc := PlatformConfig{Threads: 4, Seed: p.Seed}
	cfgs := verifyConfigs(p.Scale)

	var rows []samplingErrorRow
	for _, name := range registry.Names() {
		store := tracestore.New(0, "")
		exact := exactOracleMisses(t, name, p, pc, store, cfgs)
		sres, _, err := LLCSweep(name, p, pc, cfgs,
			WithTraceReuse(store), WithSampling(SamplingFast))
		if err != nil {
			t.Fatalf("%s: sampled sweep: %v", name, err)
		}
		for i, llc := range cfgs {
			r := sres[i]
			if r.Sampling == nil {
				t.Fatalf("%s/%s: sampled sweep attached no SamplingEstimate", name, llc.Name)
			}
			s := r.Sampling
			row := samplingErrorRow{
				Workload:     name,
				Config:       llc.Name,
				ExactMisses:  exact[i],
				EstMisses:    r.Stats.Misses,
				MissLow:      s.MissLow,
				MissHigh:     s.MissHigh,
				MissRelCI:    s.MissRelCI,
				ExactPlan:    s.Exact,
				ReplayedRefs: s.ReplayedRefs,
				TotalRefs:    s.TotalRefs,
				InCI:         exact[i] >= s.MissLow && exact[i] <= s.MissHigh,
			}
			if exact[i] > 0 {
				row.RelError = math.Abs(float64(r.Stats.Misses)-float64(exact[i])) / float64(exact[i])
			}
			rows = append(rows, row)

			id := fmt.Sprintf("%s/%s", name, llc.Name)
			if !row.InCI {
				t.Errorf("%s: exact %d misses outside CI [%d, %d] (estimate %d)",
					id, exact[i], s.MissLow, s.MissHigh, r.Stats.Misses)
			}
			if s.Exact {
				if r.Stats.Misses != exact[i] {
					t.Errorf("%s: exact-fallback plan reports %d misses, oracle %d", id, r.Stats.Misses, exact[i])
				}
				continue
			}
			// Sane-width cap: an interval claiming more than 5% of all
			// line requests as miss uncertainty (plus the absolute floor
			// for tiny-miss workloads) is useless as an estimate.
			width := float64(s.MissHigh - s.MissLow)
			cap := 0.05*float64(r.Stats.Accesses) + 256
			if width > cap {
				t.Errorf("%s: CI width %.0f exceeds the sane cap %.0f (accesses %d)",
					id, width, cap, r.Stats.Accesses)
			}
		}
	}

	out := os.Getenv("COSIM_SAMPLING_REPORT")
	if out == "" {
		out = filepath.Join(t.TempDir(), "sampling_error_report.json")
	}
	blob, err := json.MarshalIndent(struct {
		Scale float64            `json:"scale"`
		Seed  int64              `json:"seed"`
		Rows  []samplingErrorRow `json:"rows"`
	}{p.Scale, p.Seed, rows}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("sampling error report: %d rows -> %s", len(rows), out)
}

// TestSampledSweepReplayFraction pins the fast tier's budget on the
// paper's MDS flow: a fast-mode sweep must replay at most 25% of the
// full trace's in-window transactions.
func TestSampledSweepReplayFraction(t *testing.T) {
	if testing.Short() {
		t.Skip("not a -short test")
	}
	p := samplingGradeParams()
	pc := PlatformConfig{Threads: 4, Seed: p.Seed}
	res, _, err := LLCSweep("MDS", p, pc, verifyConfigs(p.Scale), WithSampling(SamplingFast))
	if err != nil {
		t.Fatal(err)
	}
	s := res[0].Sampling
	if s == nil {
		t.Fatal("no sampling estimate")
	}
	if s.Exact {
		t.Fatalf("MDS at scale %g fell back to the exact plan (%d intervals); the budget check needs real sampling",
			p.Scale, s.Intervals)
	}
	if 4*s.ReplayedRefs > s.TotalRefs {
		t.Errorf("fast tier replayed %d of %d refs (%.1f%%), budget is 25%%",
			s.ReplayedRefs, s.TotalRefs, 100*float64(s.ReplayedRefs)/float64(s.TotalRefs))
	}
	t.Logf("MDS fast tier: %d/%d refs replayed (%.1f%%), %d intervals, %d clusters",
		s.ReplayedRefs, s.TotalRefs, 100*float64(s.ReplayedRefs)/float64(s.TotalRefs),
		s.Intervals, s.Clusters)
}

// TestSamplingWarmupMonotonic is the metamorphic warmup property: on a
// reference workload and geometry, lengthening the warmup prefix never
// makes the realized error meaningfully worse — more replayed history
// can only improve cache-state reconstruction.
func TestSamplingWarmupMonotonic(t *testing.T) {
	if testing.Short() {
		t.Skip("not a -short test")
	}
	p := samplingGradeParams()
	pc := PlatformConfig{Threads: 4, Seed: p.Seed}
	// 16 MB/8way: the mid-capacity geometry, where warmup state
	// reconstruction has real leverage (at 4 MB the window itself
	// overwrites most state; at 64 MB cold misses dominate).
	cfgs := verifyConfigs(p.Scale)[2:3]
	store := tracestore.New(0, "")
	exact := exactOracleMisses(t, "SNP", p, pc, store, cfgs)

	relErr := func(warmup int) float64 {
		params := sampling.Fast()
		params.Warmup = warmup
		res, _, err := LLCSweep("SNP", p, pc, cfgs,
			WithTraceReuse(store), WithSamplingParams(params))
		if err != nil {
			t.Fatalf("warmup %d: %v", warmup, err)
		}
		if res[0].Sampling == nil || res[0].Sampling.Exact {
			t.Fatalf("warmup %d: plan degenerated to exact; property needs real sampling", warmup)
		}
		return math.Abs(float64(res[0].Stats.Misses)-float64(exact[0])) / float64(exact[0])
	}

	e0 := relErr(0)
	e2 := relErr(2)
	t.Logf("SNP %s: rel error %.4f at warmup 0, %.4f at warmup 2 (exact %d)", cfgs[0].Name, e0, e2, exact[0])
	// Tolerance absorbs clustering noise: windows shift when warmup
	// changes, so equality is not exact even when state reconstruction
	// is already perfect.
	if e2 > e0+0.05 {
		t.Errorf("longer warmup worsened the error: %.4f (warmup 2) > %.4f (warmup 0) + 0.05", e2, e0)
	}
}
