// Package core is the hardware-software co-simulation orchestrator —
// the paper's primary contribution. It wires the SoftSDV DEX execution
// engine to one or more Dragonhead cache emulators (and optionally to
// the timing hierarchy) over a shared front-side bus, runs a workload to
// completion, and synchronizes the two time domains through the
// instructions-retired and cycles-completed messages.
//
// Because the software bus broadcasts to every attached snooper, a
// single workload execution can drive an arbitrary number of cache
// configurations simultaneously — the whole cache-size sweep of
// Figure 4 costs one run per workload.
package core

import (
	"fmt"

	"cmpmem/internal/cache"
	"cmpmem/internal/dragonhead"
	"cmpmem/internal/fsb"
	"cmpmem/internal/hier"
	"cmpmem/internal/mem"
	"cmpmem/internal/softsdv"
	"cmpmem/internal/trace"
	"cmpmem/internal/workloads"
	"cmpmem/internal/workloads/registry"
)

// PlatformConfig describes the simulated CMP platform.
type PlatformConfig struct {
	// Threads is the virtual core count (8 = SCMP, 16 = MCMP,
	// 32 = LCMP).
	Threads int
	// Quantum is the DEX slice in instructions (0 = default).
	Quantum uint64
	// HostNoiseRefs injects host/simulator bus noise between slices
	// (exercises the start/stop window; excluded from measurements).
	HostNoiseRefs int
	// Seed drives the platform's noise generator.
	Seed int64
}

// SCMP, MCMP, and LCMP are the paper's three platform sizes.
func SCMP() PlatformConfig { return PlatformConfig{Threads: 8} }

// MCMP is the 16-core platform.
func MCMP() PlatformConfig { return PlatformConfig{Threads: 16} }

// LCMP is the 32-core platform.
func LCMP() PlatformConfig { return PlatformConfig{Threads: 32} }

// LLCResult is the outcome of one emulated LLC configuration.
type LLCResult struct {
	LLC          cache.Config
	Stats        cache.Stats
	Instructions uint64
	MPKI         float64
	Samples      []dragonhead.Sample
	Ignored      uint64
}

// RunSummary captures execution-side totals of a run.
type RunSummary struct {
	Workload     string
	Threads      int
	Instructions uint64
	Loads        uint64
	Stores       uint64
	BusEvents    uint64
}

// Run executes the named workload once on the platform, with the given
// extra snoopers attached to the bus, and returns the execution summary.
// It is the common core of every experiment runner.
func Run(name string, p workloads.Params, pc PlatformConfig, snoopers ...fsb.Snooper) (RunSummary, error) {
	w, err := registry.New(name, p)
	if err != nil {
		return RunSummary{}, err
	}
	return RunWorkload(w, pc, snoopers...)
}

// RunWorkload executes a pre-built workload value. Workload instances
// are single-use: construct a fresh one per run.
func RunWorkload(w workloads.Workload, pc PlatformConfig, snoopers ...fsb.Snooper) (RunSummary, error) {
	if pc.Threads == 0 {
		pc.Threads = 1
	}
	bus := fsb.NewBus()
	for _, s := range snoopers {
		bus.Attach(s)
	}
	sched, err := softsdv.NewScheduler(softsdv.Config{
		Cores:         pc.Threads,
		Quantum:       pc.Quantum,
		HostNoiseRefs: pc.HostNoiseRefs,
		Seed:          pc.Seed,
	}, bus)
	if err != nil {
		return RunSummary{}, err
	}
	sp := mem.NewSpace()
	prog, err := w.Build(sp, sched, pc.Threads)
	if err != nil {
		return RunSummary{}, fmt.Errorf("core: building %s: %w", w.Name(), err)
	}
	if err := sched.Run(prog); err != nil {
		return RunSummary{}, fmt.Errorf("core: running %s: %w", w.Name(), err)
	}
	loads, stores := sched.MemoryInstructions()
	return RunSummary{
		Workload:     w.Name(),
		Threads:      pc.Threads,
		Instructions: sched.Instructions(),
		Loads:        loads,
		Stores:       stores,
		BusEvents:    bus.Events(),
	}, nil
}

// LLCSweep runs the named workload once while emulating every given LLC
// configuration in parallel on the bus (one Dragonhead per config).
func LLCSweep(name string, p workloads.Params, pc PlatformConfig, llcs []cache.Config) ([]LLCResult, RunSummary, error) {
	emus := make([]*dragonhead.Emulator, len(llcs))
	snoopers := make([]fsb.Snooper, len(llcs))
	for i, llc := range llcs {
		cfg := dragonhead.DefaultConfig(llc)
		// Tiny scaled caches (large lines at small Scale) may have
		// fewer sets than the physical board's four CC banks; shrink
		// the banking to fit (exact-equivalence makes this free).
		if assoc := uint64(llc.Assoc); assoc > 0 {
			sets := llc.Size / llc.LineSize / assoc
			for uint64(cfg.Banks) > sets {
				cfg.Banks /= 2
			}
		}
		e, err := dragonhead.New(cfg)
		if err != nil {
			return nil, RunSummary{}, fmt.Errorf("core: LLC %s: %w", llc.Name, err)
		}
		emus[i] = e
		snoopers[i] = e
	}
	sum, err := Run(name, p, pc, snoopers...)
	if err != nil {
		return nil, RunSummary{}, err
	}
	out := make([]LLCResult, len(llcs))
	for i, e := range emus {
		out[i] = LLCResult{
			LLC:          e.Config().LLC,
			Stats:        e.Stats(),
			Instructions: e.Instructions(),
			MPKI:         e.MPKI(),
			Samples:      e.Samples(),
			Ignored:      e.Ignored(),
		}
	}
	return out, sum, nil
}

// HierResult is the outcome of a timing-hierarchy run.
type HierResult struct {
	Summary       RunSummary
	IPC           float64
	Cycles        float64
	L1            cache.Stats
	L2            cache.Stats
	L3            cache.Stats // zero unless the config had an L3
	Prefetches    hier.PrefetchReport
	Invalidations uint64 // zero unless the config was Coherent
}

// RunHier executes the named workload against the per-core L1/L2 timing
// model (the Table 2 profiler and Figure 8 testbed).
func RunHier(name string, p workloads.Params, pc PlatformConfig, hc hier.Config) (HierResult, error) {
	m, err := hier.New(hc)
	if err != nil {
		return HierResult{}, err
	}
	sum, err := Run(name, p, pc, m)
	if err != nil {
		return HierResult{}, err
	}
	return HierResult{
		Summary:       sum,
		IPC:           m.IPC(),
		Cycles:        m.Cycles(),
		L1:            m.L1Stats(),
		L2:            m.L2Stats(),
		L3:            m.L3Stats(),
		Prefetches:    m.Prefetches(),
		Invalidations: m.Invalidations(),
	}, nil
}

// TraceCapture runs the named workload and forwards every in-window
// memory transaction to fn (message transactions excluded). It is the
// basis of cmd/tracegen and the stack-distance analyses.
func TraceCapture(name string, p workloads.Params, pc PlatformConfig, fn func(trace.Ref)) (RunSummary, error) {
	cap := &captureSnooper{fn: fn}
	return Run(name, p, pc, cap)
}

// captureSnooper honors the start/stop window like Dragonhead's AF.
type captureSnooper struct {
	fn     func(trace.Ref)
	window bool
}

// OnRef implements fsb.Snooper.
func (c *captureSnooper) OnRef(r trace.Ref) {
	if fsb.IsMessage(r) {
		return
	}
	if c.window {
		c.fn(r)
	}
}

// OnMsg implements fsb.Snooper.
func (c *captureSnooper) OnMsg(m fsb.Message) {
	switch m.Kind {
	case fsb.MsgStart:
		c.window = true
	case fsb.MsgStop:
		c.window = false
	}
}
