// Package core is the hardware-software co-simulation orchestrator —
// the paper's primary contribution. It wires the SoftSDV DEX execution
// engine to one or more Dragonhead cache emulators (and optionally to
// the timing hierarchy) over a shared front-side bus, runs a workload to
// completion, and synchronizes the two time domains through the
// instructions-retired and cycles-completed messages.
//
// Because the software bus broadcasts to every attached snooper, a
// single workload execution can drive an arbitrary number of cache
// configurations simultaneously — the whole cache-size sweep of
// Figure 4 costs one run per workload.
package core

import (
	"fmt"
	"time"

	"cmpmem/internal/cache"
	"cmpmem/internal/dragonhead"
	"cmpmem/internal/fsb"
	"cmpmem/internal/hier"
	"cmpmem/internal/mem"
	"cmpmem/internal/softsdv"
	"cmpmem/internal/telemetry"
	"cmpmem/internal/trace"
	"cmpmem/internal/workloads"
	"cmpmem/internal/workloads/registry"
)

// PlatformConfig describes the simulated CMP platform.
type PlatformConfig struct {
	// Threads is the virtual core count (8 = SCMP, 16 = MCMP,
	// 32 = LCMP).
	Threads int
	// Quantum is the DEX slice in instructions (0 = default).
	Quantum uint64
	// HostNoiseRefs injects host/simulator bus noise between slices
	// (exercises the start/stop window; excluded from measurements).
	HostNoiseRefs int
	// Seed drives the platform's noise generator.
	Seed int64
}

// SCMP, MCMP, and LCMP are the paper's three platform sizes.
func SCMP() PlatformConfig { return PlatformConfig{Threads: 8} }

// MCMP is the 16-core platform.
func MCMP() PlatformConfig { return PlatformConfig{Threads: 16} }

// LCMP is the 32-core platform.
func LCMP() PlatformConfig { return PlatformConfig{Threads: 32} }

// LLCResult is the outcome of one emulated LLC configuration.
type LLCResult struct {
	LLC          cache.Config
	Stats        cache.Stats
	Instructions uint64
	MPKI         float64
	Samples      []dragonhead.Sample
	Ignored      uint64
	// Sampling is set only by sampled sweeps (WithSampling): Stats are
	// then weighted extrapolations from representative intervals and
	// this record carries the replay fraction and the miss-count
	// confidence interval. Sampled sweeps emit no CB sample series —
	// time-domain samples cannot be stitched from disjoint windows.
	Sampling *SamplingEstimate `json:"Sampling,omitempty"`
}

// RunSummary captures execution-side totals of a run.
type RunSummary struct {
	Workload     string
	Threads      int
	Instructions uint64
	Loads        uint64
	Stores       uint64
	BusEvents    uint64
}

// Run executes the named workload once on the platform, with the given
// extra snoopers attached to the bus, and returns the execution summary.
// It is the common core of every experiment runner.
func Run(name string, p workloads.Params, pc PlatformConfig, snoopers ...fsb.Snooper) (RunSummary, error) {
	return runNamed(name, p, pc, runOpts{}, snoopers)
}

// runNamed is Run with explicit concurrency and reuse options. With a
// trace store configured it serves the run from the memoized bus-event
// stream (executing only on the first request for the key); otherwise
// it executes live.
func runNamed(name string, p workloads.Params, pc PlatformConfig, ro runOpts, snoopers []fsb.Snooper) (RunSummary, error) {
	if ro.store != nil {
		return runReplayed(name, p, pc, ro, snoopers)
	}
	return runNamedLive(name, p, pc, ro, snoopers)
}

// runNamedLive always executes the guest simulation. The progress hook
// sees PhaseExecute only on direct live runs: capture runs strip the
// hook (runReplayed already reported PhaseCapture for them).
func runNamedLive(name string, p workloads.Params, pc PlatformConfig, ro runOpts, snoopers []fsb.Snooper) (RunSummary, error) {
	ro.step(Progress{Phase: PhaseExecute})
	w, err := registry.New(name, p)
	if err != nil {
		return RunSummary{}, err
	}
	return runWorkload(w, pc, ro, snoopers)
}

// RunWorkload executes a pre-built workload value. Workload instances
// are single-use: construct a fresh one per run.
func RunWorkload(w workloads.Workload, pc PlatformConfig, snoopers ...fsb.Snooper) (RunSummary, error) {
	return runWorkload(w, pc, runOpts{}, snoopers)
}

// runWorkload owns the bus lifecycle of one execution: build, attach,
// run, then Close — which on a batched bus flushes remaining batches,
// joins the per-snooper delivery workers, and finalizes the snoopers so
// their counters are sealed before any caller reads them.
func runWorkload(w workloads.Workload, pc PlatformConfig, ro runOpts, snoopers []fsb.Snooper) (RunSummary, error) {
	if pc.Threads == 0 {
		pc.Threads = 1
	}
	bus := ro.newBus()
	for _, s := range snoopers {
		bus.Attach(s)
	}
	sched, err := softsdv.NewScheduler(softsdv.Config{
		Cores:         pc.Threads,
		Quantum:       pc.Quantum,
		HostNoiseRefs: pc.HostNoiseRefs,
		Seed:          pc.Seed,
		Telemetry:     ro.tel.Registry(),
	}, bus)
	if err != nil {
		bus.Close()
		return RunSummary{}, err
	}
	build := ro.span.StartChild("build")
	sp := mem.NewSpace()
	prog, err := w.Build(sp, sched, pc.Threads)
	build.End()
	if err != nil {
		bus.Close()
		return RunSummary{}, fmt.Errorf("core: building %s: %w", w.Name(), err)
	}
	// "execute" covers the DEX capture plus bus fan-out and snooping;
	// "drain" is the batched bus's flush-and-join tail.
	exec := ro.span.StartChild("execute")
	runErr := sched.Run(prog)
	exec.End()
	drain := ro.span.StartChild("drain")
	// Close unconditionally: the delivery workers must be joined even on
	// an execution error, or they would leak and later stats reads race.
	closeErr := bus.Close()
	drain.End()
	if runErr != nil {
		return RunSummary{}, fmt.Errorf("core: running %s: %w", w.Name(), runErr)
	}
	if closeErr != nil {
		return RunSummary{}, fmt.Errorf("core: running %s: %w", w.Name(), closeErr)
	}
	loads, stores := sched.MemoryInstructions()
	return RunSummary{
		Workload:     w.Name(),
		Threads:      pc.Threads,
		Instructions: sched.Instructions(),
		Loads:        loads,
		Stores:       stores,
		BusEvents:    bus.Events(),
	}, nil
}

// bankedConfig fits the physical board's CC banking to one LLC: tiny
// scaled caches (large lines at small Scale) may have fewer sets than
// the four banks, so the banking shrinks to fit (exact-equivalence
// makes this free). Banks never drops below one; a cache too small to
// hold even one set per line is rejected here with a clear error
// instead of surfacing a confusing failure from dragonhead.New.
func bankedConfig(llc cache.Config) (dragonhead.Config, error) {
	cfg := dragonhead.DefaultConfig(llc)
	lines := uint64(0)
	if llc.LineSize > 0 {
		lines = llc.Size / llc.LineSize
	}
	sets := lines
	if assoc := uint64(llc.Assoc); assoc > 0 && lines > 0 {
		sets = lines / assoc
	}
	if sets == 0 {
		return dragonhead.Config{}, fmt.Errorf(
			"core: LLC %s: cache too small for line size (size %d B, line %d B, assoc %d leaves no sets)",
			llc.Name, llc.Size, llc.LineSize, llc.Assoc)
	}
	for cfg.Banks > 1 && uint64(cfg.Banks) > sets {
		cfg.Banks /= 2
	}
	return cfg, nil
}

// LLCSweep runs the named workload once while emulating every given LLC
// configuration in parallel on the bus (one Dragonhead per config).
// With WithBusBatch, each emulator consumes the stream on its own
// worker goroutine — the paper's decoupled FPGA consumers — and the
// whole sweep costs about one emulator's wall-clock instead of N.
func LLCSweep(name string, p workloads.Params, pc PlatformConfig, llcs []cache.Config, opts ...RunOption) ([]LLCResult, RunSummary, error) {
	ro := applyOpts(opts)
	if ro.engine != EngineEmulate || ro.sampling != SamplingOff {
		// Planner path (WithEngine(EngineAuto|EngineOracle)): answer
		// analytically expressible configs with the Mattson engine,
		// emulate the rest, dedupe duplicates — bit-identical results.
		// With WithSampling, plannedSweep further routes to the
		// fast tier, whatever the engine.
		_, results, sum, err := plannedSweep(name, p, pc, [][]cache.Config{llcs}, ro)
		return results, sum, err
	}
	ro.span = ro.rootSpan("llcsweep/" + name)
	start := time.Now()
	cfgSpan := ro.span.StartChild("configure")
	emus := make([]*dragonhead.Emulator, len(llcs))
	snoopers := make([]fsb.Snooper, len(llcs))
	for i, llc := range llcs {
		cfg, err := bankedConfig(llc)
		if err != nil {
			return nil, RunSummary{}, err
		}
		cfg.Shards = ro.shardCount(cfg.Banks)
		cfg.Telemetry = ro.tel.Registry()
		cfg.Trace = ro.span
		e, err := dragonhead.New(cfg)
		if err != nil {
			return nil, RunSummary{}, fmt.Errorf("core: LLC %s: %w", llc.Name, err)
		}
		emus[i] = e
		snoopers[i] = e
	}
	cfgSpan.End()
	sum, err := runNamed(name, p, pc, ro, snoopers)
	if err != nil {
		return nil, RunSummary{}, err
	}
	collect := ro.span.StartChild("collect")
	out := make([]LLCResult, len(llcs))
	for i, e := range emus {
		out[i] = LLCResult{
			LLC:          e.Config().LLC,
			Stats:        e.Stats(),
			Instructions: e.Instructions(),
			MPKI:         e.MPKI(),
			Samples:      e.Samples(),
			Ignored:      e.Ignored(),
		}
		ro.step(Progress{Phase: PhaseConfig, Config: llcs[i].Name, Done: i + 1, Total: len(llcs)})
	}
	collect.End()
	ro.span.End()
	ro.reportSweep("llcsweep", name, p, pc, sum, out, time.Since(start))
	return out, sum, nil
}

// reportSweep emits the sweep's run manifest and progress line. The
// manifest's Summary mirrors RunSummary field-for-field and the LLC
// records carry the exact access/miss totals of the returned results, so
// downstream consumers can bit-match the manifest against the API.
func (o runOpts) reportSweep(kind, name string, p workloads.Params, pc PlatformConfig, sum RunSummary, res []LLCResult, d time.Duration) {
	if o.tel == nil {
		return
	}
	m := telemetry.Manifest{
		Kind:       kind,
		Workload:   name,
		Threads:    pc.Threads,
		Seed:       pc.Seed,
		Scale:      p.Scale,
		Quantum:    pc.Quantum,
		DurationNS: uint64(d.Nanoseconds()),
		Summary: &telemetry.RunTotals{
			Instructions: sum.Instructions,
			Loads:        sum.Loads,
			Stores:       sum.Stores,
			BusEvents:    sum.BusEvents,
		},
		Trace: o.span,
	}
	var acc, miss uint64
	for _, r := range res {
		acc += r.Stats.Accesses
		miss += r.Stats.Misses
		m.LLCs = append(m.LLCs, telemetry.LLCRecord{
			Name:      r.LLC.Name,
			SizeBytes: r.LLC.Size,
			LineSize:  r.LLC.LineSize,
			Assoc:     r.LLC.Assoc,
			Accesses:  r.Stats.Accesses,
			Misses:    r.Stats.Misses,
			MPKI:      r.MPKI,
			Samples:   len(r.Samples),
		})
	}
	o.tel.Emit(&m)
	missPct := 0.0
	if acc > 0 {
		missPct = 100 * float64(miss) / float64(acc)
	}
	o.tel.Stepf("%s llcs=%d %s miss=%.2f%%", name, len(res), rateString(sum.BusEvents, d), missPct)
}

// rateString renders a bus-event throughput as "N Mrefs/s".
func rateString(events uint64, d time.Duration) string {
	secs := d.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	return fmt.Sprintf("%.1f Mrefs/s", float64(events)/secs/1e6)
}

// HierResult is the outcome of a timing-hierarchy run.
type HierResult struct {
	Summary       RunSummary
	IPC           float64
	Cycles        float64
	L1            cache.Stats
	L2            cache.Stats
	L3            cache.Stats // zero unless the config had an L3
	Prefetches    hier.PrefetchReport
	Invalidations uint64 // zero unless the config was Coherent
}

// RunHier executes the named workload against the per-core L1/L2 timing
// model (the Table 2 profiler and Figure 8 testbed). WithBusBatch
// pipelines the timing model against the execution engine on a second
// goroutine; WithParallelism has no effect on a single run.
func RunHier(name string, p workloads.Params, pc PlatformConfig, hc hier.Config, opts ...RunOption) (HierResult, error) {
	ro := applyOpts(opts)
	ro.span = ro.rootSpan("hier/" + name)
	start := time.Now()
	m, err := hier.New(hc)
	if err != nil {
		return HierResult{}, err
	}
	sum, err := runNamed(name, p, pc, ro, []fsb.Snooper{m})
	if err != nil {
		return HierResult{}, err
	}
	res := HierResult{
		Summary:       sum,
		IPC:           m.IPC(),
		Cycles:        m.Cycles(),
		L1:            m.L1Stats(),
		L2:            m.L2Stats(),
		L3:            m.L3Stats(),
		Prefetches:    m.Prefetches(),
		Invalidations: m.Invalidations(),
	}
	ro.span.End()
	ro.reportHier(name, p, pc, res, time.Since(start))
	return res, nil
}

// reportHier emits the timing run's manifest and progress line.
func (o runOpts) reportHier(name string, p workloads.Params, pc PlatformConfig, res HierResult, d time.Duration) {
	if o.tel == nil {
		return
	}
	sum := res.Summary
	o.tel.Emit(&telemetry.Manifest{
		Kind:       "hier",
		Workload:   name,
		Threads:    pc.Threads,
		Seed:       pc.Seed,
		Scale:      p.Scale,
		Quantum:    pc.Quantum,
		DurationNS: uint64(d.Nanoseconds()),
		Summary: &telemetry.RunTotals{
			Instructions: sum.Instructions,
			Loads:        sum.Loads,
			Stores:       sum.Stores,
			BusEvents:    sum.BusEvents,
		},
		Hier: map[string]float64{
			"ipc":       res.IPC,
			"cycles":    res.Cycles,
			"l1_misses": float64(res.L1.Misses),
			"l2_misses": float64(res.L2.Misses),
		},
		Trace: o.span,
	})
	o.tel.Stepf("%s hier ipc=%.3f %s", name, res.IPC, rateString(sum.BusEvents, d))
}

// TraceCapture runs the named workload and forwards every in-window
// memory transaction to fn (message transactions excluded). It is the
// basis of cmd/tracegen and the stack-distance analyses. With
// WithTraceReuse the forwarded stream is served from the memoized
// capture and is identical to a live run's.
func TraceCapture(name string, p workloads.Params, pc PlatformConfig, fn func(trace.Ref), opts ...RunOption) (RunSummary, error) {
	cap := &captureSnooper{fn: fn}
	return runNamed(name, p, pc, applyOpts(opts), []fsb.Snooper{cap})
}

// captureSnooper honors the start/stop window like Dragonhead's AF.
type captureSnooper struct {
	fn     func(trace.Ref)
	window bool
}

// OnRef implements fsb.Snooper.
func (c *captureSnooper) OnRef(r trace.Ref) {
	if fsb.IsMessage(r) {
		return
	}
	if c.window {
		c.fn(r)
	}
}

// OnMsg implements fsb.Snooper.
func (c *captureSnooper) OnMsg(m fsb.Message) {
	switch m.Kind {
	case fsb.MsgStart:
		c.window = true
	case fsb.MsgStop:
		c.window = false
	}
}
