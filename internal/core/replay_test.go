package core

import (
	"reflect"
	"testing"

	"cmpmem/internal/fsb"
	"cmpmem/internal/hier"
	"cmpmem/internal/trace"
	"cmpmem/internal/tracestore"
	"cmpmem/internal/workloads/registry"
)

// requireLLCResultsEqual asserts bit-identical results per config.
func requireLLCResultsEqual(t *testing.T, tag string, live, replay []LLCResult) {
	t.Helper()
	if len(live) != len(replay) {
		t.Fatalf("%s: result counts diverge: %d vs %d", tag, len(live), len(replay))
	}
	for i := range live {
		l, r := live[i], replay[i]
		if l.Stats != r.Stats {
			t.Errorf("%s/%s: Stats diverge:\nlive   %+v\nreplay %+v", tag, l.LLC.Name, l.Stats, r.Stats)
		}
		if l.MPKI != r.MPKI {
			t.Errorf("%s/%s: MPKI diverges: %v vs %v", tag, l.LLC.Name, l.MPKI, r.MPKI)
		}
		if l.Instructions != r.Instructions || l.Ignored != r.Ignored {
			t.Errorf("%s/%s: counters diverge: inst %d/%d ignored %d/%d",
				tag, l.LLC.Name, l.Instructions, r.Instructions, l.Ignored, r.Ignored)
		}
		if !reflect.DeepEqual(l.Samples, r.Samples) {
			t.Errorf("%s/%s: CB samples diverge (%d vs %d samples)",
				tag, l.LLC.Name, len(l.Samples), len(r.Samples))
		}
	}
}

// TestReplayEquivalenceAllWorkloads is the replay substrate's ground
// truth: for every registered workload on the SCMP platform, a sweep
// served from the memoized trace must be bit-identical — Stats, MPKI,
// CB Samples, instruction and ignored counters, and the RunSummary —
// to a live execution. The sweep runs twice against the store, and the
// second pass must be a pure store hit (zero further executions).
func TestReplayEquivalenceAllWorkloads(t *testing.T) {
	pc := SCMP()
	pc.Seed = 7
	pc.HostNoiseRefs = 16 // exercise out-of-window traffic through capture
	for _, wl := range registry.Names() {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			live, lsum, err := LLCSweep(wl, tinyParams(), pc, tinyLLCs())
			if err != nil {
				t.Fatal(err)
			}
			store := tracestore.New(0, "")
			for pass := 1; pass <= 2; pass++ {
				replay, rsum, err := LLCSweep(wl, tinyParams(), pc, tinyLLCs(), WithTraceReuse(store))
				if err != nil {
					t.Fatal(err)
				}
				if lsum != rsum {
					t.Errorf("pass %d: run summaries diverge:\nlive   %+v\nreplay %+v", pass, lsum, rsum)
				}
				requireLLCResultsEqual(t, wl, live, replay)
			}
			st := store.Stats()
			if st.Misses != 1 {
				t.Errorf("store executed %d times, want exactly 1", st.Misses)
			}
			if st.Hits != 1 {
				t.Errorf("store hits = %d, want 1 (second sweep must replay)", st.Hits)
			}
		})
	}
}

// TestReplayBatchedBusEquivalence: replay composes with the batched
// per-snooper fan-out — the memoized stream delivered through
// NewBatchedBus must match synchronous live delivery bit-for-bit.
func TestReplayBatchedBusEquivalence(t *testing.T) {
	pc := MCMP()
	pc.Seed = 3
	live, lsum, err := LLCSweep("FIMI", tinyParams(), pc, tinyLLCs())
	if err != nil {
		t.Fatal(err)
	}
	store := tracestore.New(0, "")
	replay, rsum, err := LLCSweep("FIMI", tinyParams(), pc, tinyLLCs(),
		WithTraceReuse(store), WithBusBatch(64))
	if err != nil {
		t.Fatal(err)
	}
	if lsum != rsum {
		t.Errorf("run summaries diverge:\nlive   %+v\nreplay %+v", lsum, rsum)
	}
	requireLLCResultsEqual(t, "FIMI-batched", live, replay)
}

// TestReplayHierEquivalence: the timing hierarchy (Table 2 / Figure 8
// substrate) must be insensitive to replay as well.
func TestReplayHierEquivalence(t *testing.T) {
	p := tinyParams()
	pc := SCMP()
	pc.Seed = 11
	hc := hier.Xeon16(pc.Threads, p.Scale, nil)
	live, err := RunHier("SNP", p, pc, hc)
	if err != nil {
		t.Fatal(err)
	}
	store := tracestore.New(0, "")
	for pass := 1; pass <= 2; pass++ {
		replay, err := RunHier("SNP", p, pc, hc, WithTraceReuse(store))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(live, replay) {
			t.Errorf("pass %d: hierarchy results diverge:\nlive   %+v\nreplay %+v", pass, live, replay)
		}
	}
	if st := store.Stats(); st.Misses != 1 || st.Hits != 1 {
		t.Errorf("store stats = %+v, want 1 miss + 1 hit", st)
	}
}

// TestReplayTraceCaptureEquivalence: TraceCapture through the store
// must forward exactly the live in-window stream.
func TestReplayTraceCaptureEquivalence(t *testing.T) {
	p := tinyParams()
	pc := SCMP()
	pc.Seed = 5
	var live []trace.Ref
	lsum, err := TraceCapture("SVM-RFE", p, pc, func(r trace.Ref) { live = append(live, r) })
	if err != nil {
		t.Fatal(err)
	}
	store := tracestore.New(0, "")
	var replay []trace.Ref
	rsum, err := TraceCapture("SVM-RFE", p, pc, func(r trace.Ref) { replay = append(replay, r) },
		WithTraceReuse(store))
	if err != nil {
		t.Fatal(err)
	}
	if lsum != rsum {
		t.Errorf("run summaries diverge:\nlive   %+v\nreplay %+v", lsum, rsum)
	}
	if len(live) != len(replay) {
		t.Fatalf("captured stream lengths diverge: %d vs %d", len(live), len(replay))
	}
	for i := range live {
		if live[i] != replay[i] {
			t.Fatalf("ref %d diverges: %+v vs %+v", i, live[i], replay[i])
		}
	}
	if len(live) == 0 {
		t.Fatal("capture forwarded no refs")
	}
}

// TestReplaySharedAcrossExperiments: one store shared by different
// experiment shapes (sweep, hierarchy, capture) on the same key still
// executes exactly once.
func TestReplaySharedAcrossExperiments(t *testing.T) {
	p := tinyParams()
	pc := SCMP()
	pc.Seed = 9
	store := tracestore.New(0, "")
	if _, _, err := LLCSweep("MDS", p, pc, tinyLLCs(), WithTraceReuse(store)); err != nil {
		t.Fatal(err)
	}
	hc := hier.Xeon16(pc.Threads, p.Scale, nil)
	if _, err := RunHier("MDS", p, pc, hc, WithTraceReuse(store)); err != nil {
		t.Fatal(err)
	}
	n := 0
	if _, err := TraceCapture("MDS", p, pc, func(trace.Ref) { n++ }, WithTraceReuse(store)); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("capture through shared store forwarded no refs")
	}
	st := store.Stats()
	if st.Misses != 1 {
		t.Errorf("workload executed %d times across 3 experiment shapes, want 1", st.Misses)
	}
	if st.Hits != 2 {
		t.Errorf("store hits = %d, want 2", st.Hits)
	}
}

// TestReplayBusPublic: the exported ReplayBus drives an arbitrary
// snooper set from a raw stream and reports the delivered event count.
// sliceRecorder collects the raw event stream for equivalence checks
// (the production busRecorder encodes on the fly and has no slice).
type sliceRecorder struct {
	events []trace.Ref
}

func (s *sliceRecorder) OnRef(r trace.Ref)   { s.events = append(s.events, r) }
func (s *sliceRecorder) OnMsg(m fsb.Message) { s.events = append(s.events, fsb.EncodeMessage(m)) }

func TestReplayBusPublic(t *testing.T) {
	rec := &sliceRecorder{}
	sum, err := Run("FIMI", tinyParams(), PlatformConfig{Threads: 2, Seed: 1}, rec)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(rec.events)) != sum.BusEvents {
		t.Fatalf("recorder saw %d events, summary says %d", len(rec.events), sum.BusEvents)
	}
	replayRec := &sliceRecorder{}
	n, err := ReplayBus(rec.events, []fsb.Snooper{replayRec}, WithBusBatch(32))
	if err != nil {
		t.Fatal(err)
	}
	if n != sum.BusEvents {
		t.Errorf("ReplayBus delivered %d events, want %d", n, sum.BusEvents)
	}
	if !reflect.DeepEqual(rec.events, replayRec.events) {
		t.Error("replayed stream diverges from the original")
	}
}
