package core

import (
	"strings"
	"testing"

	"cmpmem/internal/workloads"
)

// TestVerifyAllTiny runs the full verification suite on two workloads
// at tiny scale and requires every check to pass. This is the tentpole
// property in-repo: the oracle, the production caches, the banked
// emulator, the replay substrate, and the telemetry accounting all
// agree exactly on real workload streams.
func TestVerifyAllTiny(t *testing.T) {
	rep, err := VerifyAll(tinyParams(), VerifyConfig{Workloads: []string{"FIMI", "SNP"}})
	if err != nil {
		t.Fatal(err)
	}
	passed, failed := rep.Counts()
	if passed == 0 {
		t.Fatal("verification ran no checks")
	}
	planner := 0
	for _, f := range rep.Findings {
		if !f.OK {
			t.Errorf("FAIL %s: %s", f.Check, f.Detail)
		}
		if strings.HasPrefix(f.Check, "planner") {
			planner++
		}
	}
	if planner == 0 {
		t.Error("suite ran no planner bit-equality checks")
	}
	t.Logf("verify: %d checks passed, %d failed", passed, failed)
}

// TestVerifyAllUnknownWorkload checks infrastructure failures surface
// as errors, not as report findings.
func TestVerifyAllUnknownWorkload(t *testing.T) {
	_, err := VerifyAll(tinyParams(), VerifyConfig{Workloads: []string{"NO-SUCH"}})
	if err == nil || !strings.Contains(err.Error(), "NO-SUCH") {
		t.Fatalf("unknown workload not rejected: %v", err)
	}
}

// TestVerifyConfigsScale checks the oracle grid respects the scale
// knob and stays within the registered line size.
func TestVerifyConfigsScale(t *testing.T) {
	cfgs := verifyConfigs(1.0 / 512)
	if len(cfgs) != len(verifyPaperMB)*len(verifyAssocs) {
		t.Fatalf("grid has %d entries", len(cfgs))
	}
	for _, c := range cfgs {
		if c.LineSize != 64 {
			t.Errorf("%s: line size %d", c.Name, c.LineSize)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	// Larger paper sizes must not collapse below smaller ones.
	if cfgs[0].Size > cfgs[len(cfgs)-1].Size {
		t.Errorf("grid not monotone: %d .. %d", cfgs[0].Size, cfgs[len(cfgs)-1].Size)
	}
}

// TestVerifyAllDefaultsThreads checks the zero-value config picks a
// multi-threaded platform (the interleave is part of what we verify).
func TestVerifyAllDefaultsThreads(t *testing.T) {
	p := workloads.Params{Seed: 9, Scale: 1.0 / 512}
	rep, err := VerifyAll(p, VerifyConfig{Workloads: []string{"SHOT"}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		for _, f := range rep.Findings {
			if !f.OK {
				t.Errorf("FAIL %s: %s", f.Check, f.Detail)
			}
		}
	}
}
