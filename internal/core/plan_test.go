package core

import (
	"bytes"
	"fmt"
	"testing"

	"cmpmem/internal/cache"
	"cmpmem/internal/telemetry"
	"cmpmem/internal/tracestore"
)

// planGen deterministically generates config grids covering every
// planner-relevant shape: duplicate geometries (under differing names),
// several line sizes, non-LRU policies, sectored lines, and
// fully-associative entries.
type planGen struct{ state uint64 }

func (g *planGen) next() uint64 {
	g.state ^= g.state << 13
	g.state ^= g.state >> 7
	g.state ^= g.state << 17
	return g.state
}

func (g *planGen) config(i int) cache.Config {
	sizes := []uint64{4 << 10, 16 << 10, 64 << 10, 256 << 10}
	lines := []uint64{64, 64, 64, 128, 256} // 64 B dominant, like the paper
	assocs := []int{1, 2, 8, 16, 0}
	cfg := cache.Config{
		Name:     fmt.Sprintf("cfg-%d", i),
		Size:     sizes[g.next()%uint64(len(sizes))],
		LineSize: lines[g.next()%uint64(len(lines))],
		Assoc:    assocs[g.next()%uint64(len(assocs))],
	}
	if g.next()%8 == 0 {
		cfg.Repl = cache.FIFO
	}
	if g.next()%8 == 0 {
		cfg.SectorSize = 16
	}
	return cfg
}

// TestPlanSweepPartitionProperty is the planner's core property: for
// any grid, under any engine policy, every config is answered exactly
// once — the plan is exhaustive (each entry resolves to a canonical
// config that sits in exactly one leg) and disjoint (the legs share no
// index, duplicates join no leg, and a canonical index appears in its
// leg exactly once).
func TestPlanSweepPartitionProperty(t *testing.T) {
	g := &planGen{state: 0x9E3779B97F4A7C15}
	for trial := 0; trial < 200; trial++ {
		n := int(g.next()%20) + 1
		configs := make([]cache.Config, n)
		for i := range configs {
			configs[i] = g.config(i)
		}
		for _, engine := range []Engine{EngineEmulate, EngineAuto} {
			plan, err := PlanSweep(configs, engine)
			if err != nil {
				t.Fatalf("trial %d engine %v: %v", trial, engine, err)
			}
			if len(plan.Entries) != n || len(plan.Configs) != n {
				t.Fatalf("trial %d: plan covers %d/%d entries for %d configs",
					trial, len(plan.Entries), len(plan.Configs), n)
			}
			leg := make(map[int]string) // canonical index -> leg name
			for _, i := range plan.Analytic {
				if prev, dup := leg[i]; dup {
					t.Fatalf("trial %d: config %d in analytic leg and %s", trial, i, prev)
				}
				leg[i] = "analytic"
			}
			for _, i := range plan.Emulated {
				if prev, dup := leg[i]; dup {
					t.Fatalf("trial %d: config %d in emulated leg and %s", trial, i, prev)
				}
				leg[i] = "emulated"
			}
			answered := 0
			for i, e := range plan.Entries {
				can := e.Canonical
				if can < 0 || can >= n {
					t.Fatalf("trial %d: entry %d canonical %d out of range", trial, i, can)
				}
				if plan.Entries[can].Canonical != can {
					t.Fatalf("trial %d: entry %d's canonical %d is itself an alias", trial, i, can)
				}
				a, b := configs[i], configs[can]
				a.Name, b.Name = "", ""
				if a != b {
					t.Fatalf("trial %d: entry %d aliased to a different geometry %d", trial, i, can)
				}
				if can != i {
					if _, inLeg := leg[i]; inLeg {
						t.Fatalf("trial %d: duplicate %d joined a leg", trial, i)
					}
					continue
				}
				answered++
				got, inLeg := leg[i]
				if !inLeg {
					t.Fatalf("trial %d: canonical config %d answered by no leg", trial, i)
				}
				if engine == EngineEmulate && got != "emulated" {
					t.Fatalf("trial %d: EngineEmulate sent config %d to %s", trial, i, got)
				}
				if got == "analytic" {
					if !analyticEligible(configs[i]) || configs[i].LineSize != plan.LineSize {
						t.Fatalf("trial %d: ineligible config %+v in analytic leg (plan line %d)",
							trial, configs[i], plan.LineSize)
					}
				}
				if e.Analytic != (got == "analytic") {
					t.Fatalf("trial %d: entry %d Analytic=%v but leg is %s", trial, i, e.Analytic, got)
				}
			}
			if answered != len(plan.Analytic)+len(plan.Emulated) {
				t.Fatalf("trial %d: %d canonical configs but legs hold %d+%d",
					trial, answered, len(plan.Analytic), len(plan.Emulated))
			}
			if plan.Passes() > 1 || (n > 0 && plan.Passes() != 1) {
				t.Fatalf("trial %d: plan wants %d passes", trial, plan.Passes())
			}
		}
	}
}

// TestPlanSweepOracleStrict checks EngineOracle rejects anything the
// analytic engine cannot answer, and accepts a pure 64 B LRU grid.
func TestPlanSweepOracleStrict(t *testing.T) {
	if _, err := PlanSweep(CacheSweepConfigs(1.0/512), EngineOracle); err != nil {
		t.Errorf("pure cache sweep rejected: %v", err)
	}
	if _, err := PlanSweep(LineSweepConfigs(1.0/512), EngineOracle); err == nil {
		t.Error("line-size sweep accepted by -engine=oracle")
	}
	fifo := []cache.Config{{Name: "f", Size: 1 << 14, LineSize: 64, Assoc: 2, Repl: cache.FIFO}}
	if _, err := PlanSweep(fifo, EngineOracle); err == nil {
		t.Error("FIFO grid accepted by -engine=oracle")
	}
	sectored := []cache.Config{{Name: "s", Size: 1 << 14, LineSize: 64, Assoc: 2, SectorSize: 16}}
	if _, err := PlanSweep(sectored, EngineOracle); err == nil {
		t.Error("sectored grid accepted by -engine=oracle")
	}
}

// TestParseEngine covers the flag vocabulary round trip.
func TestParseEngine(t *testing.T) {
	for _, e := range []Engine{EngineEmulate, EngineAuto, EngineOracle} {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("round trip %v: got %v, err %v", e, got, err)
		}
	}
	if _, err := ParseEngine("fpga"); err == nil {
		t.Error("unknown engine accepted")
	}
}

// mixedGrid exercises every planner decision in one sweep: analytic
// configs (64 B LRU), an emulation-required line size, a non-LRU
// policy, and a duplicate geometry under another name.
func mixedGrid() []cache.Config {
	return []cache.Config{
		{Name: "LLC-16K", Size: 16 << 10, LineSize: 64, Assoc: 8},
		{Name: "LLC-64K", Size: 64 << 10, LineSize: 64, Assoc: 8},
		{Name: "LLC-64K/128B", Size: 64 << 10, LineSize: 128, Assoc: 8},
		{Name: "LLC-64K/fifo", Size: 64 << 10, LineSize: 64, Assoc: 8, Repl: cache.FIFO},
		{Name: "LLC-16K-again", Size: 16 << 10, LineSize: 64, Assoc: 8},
	}
}

func sameLLCResult(a, b LLCResult) bool {
	if a.Stats != b.Stats || a.Instructions != b.Instructions ||
		a.MPKI != b.MPKI || a.Ignored != b.Ignored || len(a.Samples) != len(b.Samples) {
		return false
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			return false
		}
	}
	return true
}

// TestPlannedSweepMatchesEmulation is the planner's bit-equality gate
// in miniature: the same sweep under EngineEmulate (legacy), under
// EngineAuto, and via CombinedSweep must produce identical LLCResults
// — stats, MPKI, per-sample series, everything — for every config,
// including the emulation-required and duplicate entries.
func TestPlannedSweepMatchesEmulation(t *testing.T) {
	grid := mixedGrid()
	pc := PlatformConfig{Threads: 2, Seed: 9}
	store := tracestore.New(0, "")
	reuse := WithTraceReuse(store)

	legacy, legacySum, err := LLCSweep("SNP", tinyParams(), pc, grid, reuse)
	if err != nil {
		t.Fatal(err)
	}
	planned, plannedSum, err := LLCSweep("SNP", tinyParams(), pc, grid, reuse, WithEngine(EngineAuto))
	if err != nil {
		t.Fatal(err)
	}
	combined, combinedSum, err := CombinedSweep("SNP", tinyParams(), pc,
		[][]cache.Config{grid[:2], grid[2:]}, reuse)
	if err != nil {
		t.Fatal(err)
	}
	if legacySum != plannedSum || legacySum != combinedSum {
		t.Fatalf("run summaries diverge: %+v / %+v / %+v", legacySum, plannedSum, combinedSum)
	}
	flatCombined := append(append([]LLCResult(nil), combined[0]...), combined[1]...)
	for i := range grid {
		if legacy[i].LLC != grid[i] || planned[i].LLC != grid[i] || flatCombined[i].LLC != grid[i] {
			t.Fatalf("config %d: LLC config not preserved", i)
		}
		if !sameLLCResult(legacy[i], planned[i]) {
			t.Errorf("%s: planned result diverges from emulation\n got %+v\nwant %+v",
				grid[i].Name, planned[i], legacy[i])
		}
		if !sameLLCResult(legacy[i], flatCombined[i]) {
			t.Errorf("%s: combined result diverges from emulation", grid[i].Name)
		}
		if len(legacy[i].Samples) == 0 {
			t.Errorf("%s: no CB samples — the series equality check is vacuous", grid[i].Name)
		}
	}
	// The duplicate must match its canonical entry exactly (modulo name).
	if !sameLLCResult(planned[0], planned[4]) {
		t.Error("duplicate config diverges from its canonical result")
	}
}

// TestCombinedSweepCounters checks the planner telemetry: the MDS-flow
// acceptance numbers (analytic/emulated/deduped splits and passes
// saved) land in the counter registry, and the manifest carries the
// plansweep kind.
func TestCombinedSweepCounters(t *testing.T) {
	grids := [][]cache.Config{CacheSweepConfigs(1.0 / 512), LineSweepConfigs(1.0 / 512)}
	reg := telemetry.NewRegistry()
	var buf bytes.Buffer
	sink := telemetry.NewSink(reg, telemetry.NewManifestWriter(&buf), nil)
	res, _, err := CombinedSweep("SNP", tinyParams(), PlatformConfig{Threads: 2, Seed: 1},
		grids, WithTelemetry(sink))
	if err != nil {
		t.Fatal(err)
	}
	if len(res[0]) != len(grids[0]) || len(res[1]) != len(grids[1]) {
		t.Fatalf("result shapes %d/%d do not mirror grids %d/%d",
			len(res[0]), len(res[1]), len(grids[0]), len(grids[1]))
	}
	snap := reg.Snapshot()
	// 14 configs: 7 cache-sweep (64 B) + 7 line-sweep, whose 64 B entry
	// duplicates the cache sweep's 32 MB point -> 13 canonicals: 7
	// analytic (64 B), 6 emulated (128..4096 B), 1 deduped, and 13 of
	// 14 passes saved by the single combined pass.
	checks := map[string]uint64{
		"core_plan_analytic_configs_total": 7,
		"core_plan_emulated_configs_total": 6,
		"core_plan_deduped_configs_total":  1,
		"core_plan_passes_saved_total":     13,
	}
	for name, want := range checks {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"kind":"plansweep"`)) {
		t.Errorf("manifest missing plansweep kind: %s", buf.Bytes())
	}
	// The deduped pair: cache sweep's 32 MB point and line sweep's 64 B
	// point share one geometry and must report identical numbers.
	if !sameLLCResult(res[0][3], res[1][0]) {
		t.Error("shared geometry across grids reports different results")
	}
}
