package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"cmpmem/internal/hier"
	"cmpmem/internal/telemetry"
	"cmpmem/internal/tracestore"
	"cmpmem/internal/workloads"
)

// sinkForTest builds a sink writing manifests into buf, with progress
// lines discarded into prog.
func sinkForTest(buf, prog *bytes.Buffer) *telemetry.Sink {
	return telemetry.NewSink(telemetry.NewRegistry(),
		telemetry.NewManifestWriter(buf), telemetry.NewProgress(prog))
}

// decodeManifests parses every JSONL record in buf.
func decodeManifests(t *testing.T, buf *bytes.Buffer) []telemetry.Manifest {
	t.Helper()
	var out []telemetry.Manifest
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m telemetry.Manifest
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("manifest line not JSON: %v\n%s", err, line)
		}
		out = append(out, m)
	}
	return out
}

// TestLLCSweepManifestBitMatch pins the acceptance contract: the
// manifest's summary and per-LLC miss totals are the exact values the
// API returned, not an approximation recomputed elsewhere.
func TestLLCSweepManifestBitMatch(t *testing.T) {
	var buf, prog bytes.Buffer
	sink := sinkForTest(&buf, &prog)
	p := workloads.Params{Seed: 3, Scale: 0.002}
	results, sum, err := LLCSweep("FIMI", p, PlatformConfig{Threads: 4, Seed: 3},
		CacheSweepConfigs(p.Scale)[:3], WithTelemetry(sink))
	if err != nil {
		t.Fatal(err)
	}
	ms := decodeManifests(t, &buf)
	if len(ms) != 1 {
		t.Fatalf("got %d manifests, want 1", len(ms))
	}
	m := ms[0]
	if m.Kind != "llcsweep" || m.Workload != "FIMI" || m.Threads != 4 {
		t.Errorf("manifest identity wrong: %+v", m)
	}
	want := telemetry.RunTotals{
		Instructions: sum.Instructions,
		Loads:        sum.Loads,
		Stores:       sum.Stores,
		BusEvents:    sum.BusEvents,
	}
	if m.Summary == nil || *m.Summary != want {
		t.Errorf("manifest summary %+v does not bit-match RunSummary %+v", m.Summary, want)
	}
	if len(m.LLCs) != len(results) {
		t.Fatalf("manifest has %d LLC records, want %d", len(m.LLCs), len(results))
	}
	for i, r := range results {
		if m.LLCs[i].Misses != r.Stats.Misses || m.LLCs[i].Accesses != r.Stats.Accesses {
			t.Errorf("LLC %d: manifest %d/%d misses/accesses, API %d/%d",
				i, m.LLCs[i].Misses, m.LLCs[i].Accesses, r.Stats.Misses, r.Stats.Accesses)
		}
	}
	if m.Counters == nil || len(m.Counters.Counters) == 0 {
		t.Error("manifest carries no counter snapshot")
	}
	if m.Counters != nil && m.Counters.Counters["softsdv_instructions_total"] != sum.Instructions {
		t.Errorf("softsdv counter %d != instructions %d",
			m.Counters.Counters["softsdv_instructions_total"], sum.Instructions)
	}
	if m.Trace == nil || m.Trace.Name != "llcsweep/FIMI" || m.Trace.WallNS == 0 {
		t.Errorf("span tree missing or unnamed: %+v", m.Trace)
	}
	if prog.Len() == 0 || !strings.Contains(prog.String(), "FIMI") {
		t.Errorf("no progress line printed: %q", prog.String())
	}
}

// spanNames flattens a span tree into name strings.
func spanNames(s *telemetry.Span, out *[]string) {
	if s == nil {
		return
	}
	*out = append(*out, s.Name)
	for _, c := range s.Children {
		spanNames(c, out)
	}
}

// TestReplaySpansAndEquivalence runs the same sweep live and memoized
// with telemetry attached: the numbers stay bit-identical, and the span
// trees name the phases each path actually took.
func TestReplaySpansAndEquivalence(t *testing.T) {
	p := workloads.Params{Seed: 3, Scale: 0.002}
	pc := PlatformConfig{Threads: 2, Seed: 3}
	cfgs := CacheSweepConfigs(p.Scale)[:2]

	var liveBuf, liveProg bytes.Buffer
	liveRes, liveSum, err := LLCSweep("SHOT", p, pc, cfgs, WithTelemetry(sinkForTest(&liveBuf, &liveProg)))
	if err != nil {
		t.Fatal(err)
	}

	store := tracestore.New(0, "")
	var capBuf, capProg bytes.Buffer
	memRes, memSum, err := LLCSweep("SHOT", p, pc, cfgs,
		WithTelemetry(sinkForTest(&capBuf, &capProg)), WithTraceReuse(store))
	if err != nil {
		t.Fatal(err)
	}
	if liveSum != memSum {
		t.Errorf("memoized summary diverged: %+v vs %+v", memSum, liveSum)
	}
	for i := range liveRes {
		if liveRes[i].Stats != memRes[i].Stats {
			t.Errorf("LLC %d stats diverged under replay", i)
		}
	}

	live := decodeManifests(t, &liveBuf)[0]
	var names []string
	spanNames(live.Trace, &names)
	for _, want := range []string{"configure", "execute", "collect"} {
		if !contains(names, want) {
			t.Errorf("live span tree missing %q: %v", want, names)
		}
	}

	mem := decodeManifests(t, &capBuf)[0]
	names = names[:0]
	spanNames(mem.Trace, &names)
	for _, want := range []string{"capture", "replay"} {
		if !contains(names, want) {
			t.Errorf("memoized span tree missing %q: %v", want, names)
		}
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// TestHierManifest checks the timing-model manifest kind.
func TestHierManifest(t *testing.T) {
	var buf, prog bytes.Buffer
	sink := sinkForTest(&buf, &prog)
	p := workloads.Params{Seed: 3, Scale: 0.002}
	res, err := RunHier("SHOT", p, PlatformConfig{Threads: 1, Seed: 3},
		hier.PentiumIV(p.Scale), WithTelemetry(sink))
	if err != nil {
		t.Fatal(err)
	}
	m := decodeManifests(t, &buf)[0]
	if m.Kind != "hier" {
		t.Errorf("kind = %q, want hier", m.Kind)
	}
	if m.Hier["ipc"] != res.IPC {
		t.Errorf("manifest ipc %v != result %v", m.Hier["ipc"], res.IPC)
	}
	if m.Summary == nil || m.Summary.Instructions != res.Summary.Instructions {
		t.Error("hier manifest summary does not match")
	}
}
