// Execute-once / replay-many: the memoized trace substrate.
//
// The paper's Dragonhead board snoops one FSB stream and feeds it to a
// reprogrammable cache configuration; re-running an experiment against
// a different configuration does not re-run the software. The replay
// substrate restores that property across experiment invocations: a
// named run's complete bus-event stream (memory transactions plus the
// control-message protocol, in exact delivery order) is captured once
// per (workload, params, platform, seed) key and replayed through any
// snooper set afterwards. Every published number — cache.Stats, CB
// Samples, MPKI, the run summary — depends only on that stream and the
// cache algorithm, so replayed results are bit-identical to live
// execution.

package core

import (
	"cmpmem/internal/fsb"
	"cmpmem/internal/softsdv"
	"cmpmem/internal/trace"
	"cmpmem/internal/tracestore"
	"cmpmem/internal/workloads"
)

// busRecorder captures the complete bus-event stream straight into the
// compact v2 codec (the raw []Ref form of a full run never
// materializes, keeping capture allocation-light and the memoized
// footprint ~4x smaller). Control messages are stored as their
// reserved-window transaction encoding (exactly how the paper's
// platform carries them on the physical FSB), so one flat stream holds
// everything and replay needs no side channel.
type busRecorder struct {
	rec *tracestore.Recorder
}

// OnRef implements fsb.Snooper.
func (b *busRecorder) OnRef(r trace.Ref) { b.rec.Add(r) }

// OnMsg implements fsb.Snooper.
func (b *busRecorder) OnMsg(m fsb.Message) { b.rec.Add(fsb.EncodeMessage(m)) }

// traceKey normalizes the run identity so equivalent configurations
// (zero vs explicit defaults) share one captured stream.
func traceKey(name string, p workloads.Params, pc PlatformConfig) tracestore.Key {
	p = p.WithDefaults()
	threads := pc.Threads
	if threads == 0 {
		threads = 1
	}
	quantum := pc.Quantum
	if quantum == 0 {
		quantum = softsdv.DefaultQuantum
	}
	return tracestore.Key{
		Workload: name,
		Seed:     p.Seed,
		Scale:    p.Scale,
		Threads:  threads,
		Quantum:  quantum,
		Noise:    pc.HostNoiseRefs,
		PlatSeed: pc.Seed,
	}
}

// captureTrace executes the named workload once with only the recorder
// on the bus (synchronous delivery: capture is a single consumer, so
// fan-out would only add handoffs) and returns the memoizable stream.
// Only the caller's telemetry sink and span carry over into the capture
// run; its store and batch options must not (capture IS the store fill,
// and the recorder is single-consumer).
func captureTrace(name string, p workloads.Params, pc PlatformConfig, ro runOpts) (*tracestore.Trace, error) {
	rec := &busRecorder{rec: tracestore.NewRecorder()}
	sum, err := runNamedLive(name, p, pc, runOpts{tel: ro.tel, span: ro.span}, []fsb.Snooper{rec})
	if err != nil {
		return nil, err
	}
	return rec.rec.Finish(tracestore.Summary{
		Workload:     sum.Workload,
		Threads:      sum.Threads,
		Instructions: sum.Instructions,
		Loads:        sum.Loads,
		Stores:       sum.Stores,
		BusEvents:    sum.BusEvents,
	})
}

// runReplayed serves one experiment run from the memoized store:
// execute on the first request for the key, replay on every other.
func runReplayed(name string, p workloads.Params, pc PlatformConfig, ro runOpts, snoopers []fsb.Snooper) (RunSummary, error) {
	// The store span covers the whole single-flight interaction — an
	// in-memory hit, a blocking wait behind another caller's capture, a
	// disk revival, or a fresh execution (which nests the capture span) —
	// and records which of those it was, so a slow request's tree says
	// where the time went, not just that Do took long.
	lookup := ro.span.StartChild("store")
	tr, outcome, err := ro.store.DoOutcome(traceKey(name, p, pc), func() (*tracestore.Trace, error) {
		ro.step(Progress{Phase: PhaseCapture})
		cro := ro
		cro.span = lookup.StartChild("capture")
		defer cro.span.End()
		return captureTrace(name, p, pc, cro)
	})
	lookup.SetAttr("outcome", outcome.String())
	lookup.End()
	if err != nil {
		return RunSummary{}, err
	}
	ro.step(Progress{Phase: PhaseReplay})
	replay := ro.span.StartChild("replay")
	err = replayTrace(tr, ro, snoopers)
	replay.End()
	if err != nil {
		return RunSummary{}, err
	}
	return RunSummary{
		Workload:     tr.Summary.Workload,
		Threads:      tr.Summary.Threads,
		Instructions: tr.Summary.Instructions,
		Loads:        tr.Summary.Loads,
		Stores:       tr.Summary.Stores,
		BusEvents:    tr.Summary.BusEvents,
	}, nil
}

// ReplayBus drives any snooper set from a captured bus-event stream, as
// if the original execution were happening live: message-window
// transactions are decoded back into control messages, everything else
// is delivered as a memory transaction, in captured order. The replay
// inner loop allocates nothing per reference, and the options compose
// with WithBusBatch — a batched replay fans the stream out across
// per-snooper workers exactly like a live batched run.
//
// It returns the number of bus events delivered.
func ReplayBus(stream []trace.Ref, snoopers []fsb.Snooper, opts ...RunOption) (uint64, error) {
	ro := applyOpts(opts)
	if err := replayStream(stream, ro, snoopers); err != nil {
		return 0, err
	}
	return uint64(len(stream)), nil
}

// replayStream drives the snoopers from an in-memory []Ref slice
// (public ReplayBus entry point).
func replayStream(stream []trace.Ref, ro runOpts, snoopers []fsb.Snooper) error {
	bus := ro.newBus()
	for _, s := range snoopers {
		bus.Attach(s)
	}
	p := trace.NewPlayer(stream)
	for r, ok := p.Next(); ok; r, ok = p.Next() {
		dispatch(bus, r)
	}
	return bus.Close()
}

// replayBatch is the decode granularity of the replay engine: 64
// records per NextBatch call keeps the v2 cursor state in registers
// across a whole batch while the working buffer (1 KB) stays resident
// in L1.
const replayBatch = 64

// replayTrace is the zero-alloc replay engine behind every memoized
// sweep: it decodes the stored v2 stream 64 records at a time
// (StreamPlayer.NextBatch) and feeds the bus, never materializing the
// stream as a slice.
func replayTrace(tr *tracestore.Trace, ro runOpts, snoopers []fsb.Snooper) error {
	p, err := tr.Player()
	if err != nil {
		return err
	}
	bus := ro.newBus()
	for _, s := range snoopers {
		bus.Attach(s)
	}
	var buf [replayBatch]trace.Ref
	for {
		n := p.NextBatch(buf[:])
		if n == 0 {
			break
		}
		for i := 0; i < n; i++ {
			dispatch(bus, buf[i])
		}
	}
	if err := p.Err(); err != nil {
		bus.Close()
		return err
	}
	return bus.Close()
}

// dispatch delivers one captured event as if the original execution
// were happening live: message-window transactions are decoded back
// into control messages, everything else is a memory transaction.
func dispatch(bus *fsb.Bus, r trace.Ref) {
	if m, isMsg := fsb.DecodeMessage(r); isMsg {
		bus.Msg(m)
	} else {
		bus.Ref(r)
	}
}
