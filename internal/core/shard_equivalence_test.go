package core

import (
	"reflect"
	"testing"

	"cmpmem/internal/dragonhead"
	"cmpmem/internal/fsb"
	"cmpmem/internal/tracestore"
	"cmpmem/internal/verify"
	"cmpmem/internal/workloads/registry"
)

// TestSerialShardedEquivalence is the sharded execution path's ground
// truth: every registered workload, run through 1, 2, 4, and 8 bank
// shards, must produce bit-identical Stats, CB Samples, MPKI, AF drop
// counts, and bus stream digests. The workload executes once per name
// (memoized trace store); each shard count replays the identical
// stream, so any divergence is a sharding bug, not nondeterminism.
func TestSerialShardedEquivalence(t *testing.T) {
	store := tracestore.New(0, "")
	pc := PlatformConfig{Threads: 4, Seed: 7}
	llc := tinyLLCs()[1] // 64 KB / 8-way: 128 sets, enough for 8 banks
	for _, wl := range registry.Names() {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			type outcome struct {
				res    LLCResult
				digest uint64
				events uint64
			}
			var base outcome
			for _, shards := range []int{1, 2, 4, 8} {
				dcfg, err := bankedConfig(llc)
				if err != nil {
					t.Fatal(err)
				}
				dcfg.Banks = 8 // so 8 shards really run 8-wide
				dcfg.Shards = shards
				emu, err := dragonhead.New(dcfg)
				if err != nil {
					t.Fatal(err)
				}
				if emu.Shards() != shards {
					t.Fatalf("emulator resolved %d shards, want %d", emu.Shards(), shards)
				}
				d := fsb.NewStreamDigest()
				if _, err := runNamed(wl, tinyParams(), pc, runOpts{store: store}, []fsb.Snooper{emu, d}); err != nil {
					t.Fatal(err)
				}
				got := outcome{
					res: LLCResult{
						Stats:        emu.Stats(),
						Instructions: emu.Instructions(),
						MPKI:         emu.MPKI(),
						Samples:      emu.Samples(),
						Ignored:      emu.Ignored(),
					},
					digest: d.Sum(),
					events: d.Events(),
				}
				if shards == 1 {
					base = got
					if base.res.Stats.Accesses == 0 {
						t.Fatalf("%s: serial baseline saw no accesses", wl)
					}
					continue
				}
				if err := verify.DiffStats("serial vs sharded", base.res.Stats, got.res.Stats); err != nil {
					t.Errorf("shards=%d: %v", shards, err)
				}
				if got.res.MPKI != base.res.MPKI || got.res.Ignored != base.res.Ignored ||
					got.res.Instructions != base.res.Instructions {
					t.Errorf("shards=%d: MPKI/ignored/inst diverge: %g/%d/%d != %g/%d/%d",
						shards, got.res.MPKI, got.res.Ignored, got.res.Instructions,
						base.res.MPKI, base.res.Ignored, base.res.Instructions)
				}
				if !reflect.DeepEqual(got.res.Samples, base.res.Samples) {
					t.Errorf("shards=%d: CB samples diverge (%d vs %d)",
						shards, len(got.res.Samples), len(base.res.Samples))
				}
				if got.digest != base.digest || got.events != base.events {
					t.Errorf("shards=%d: stream digest %#x/%d != %#x/%d",
						shards, got.digest, got.events, base.digest, base.events)
				}
			}
		})
	}
}

// TestLLCSweepShardedEquivalence: the WithBankShards option threads
// through the sweep runner and changes nothing but wall-clock.
func TestLLCSweepShardedEquivalence(t *testing.T) {
	pc := PlatformConfig{Threads: 4, Seed: 3}
	serial, ssum, err := LLCSweep("FIMI", tinyParams(), pc, tinyLLCs())
	if err != nil {
		t.Fatal(err)
	}
	sharded, shsum, err := LLCSweep("FIMI", tinyParams(), pc, tinyLLCs(), WithBankShards(0), WithBusBatch(64))
	if err != nil {
		t.Fatal(err)
	}
	if ssum != shsum {
		t.Errorf("run summaries diverge: %+v vs %+v", ssum, shsum)
	}
	for i := range serial {
		s, sh := serial[i], sharded[i]
		if err := verify.DiffStats("serial vs sharded", s.Stats, sh.Stats); err != nil {
			t.Errorf("%s: %v", s.LLC.Name, err)
		}
		if s.MPKI != sh.MPKI || !reflect.DeepEqual(s.Samples, sh.Samples) {
			t.Errorf("%s: MPKI or samples diverge", s.LLC.Name)
		}
	}
}

// TestShardCountResolution pins the WithBankShards auto semantics.
func TestShardCountResolution(t *testing.T) {
	cases := []struct {
		opt   int // WithBankShards argument (-1 = no option)
		banks int
		want  int
	}{
		{-1, 8, 1},  // option absent: serial
		{1, 8, 1},   // explicit serial
		{2, 8, 2},   // explicit
		{16, 4, 4},  // clamped to banks
		{0, 64, -1}, // auto: GOMAXPROCS-dependent, checked below
	}
	for _, c := range cases {
		var ro runOpts
		if c.opt >= 0 {
			WithBankShards(c.opt)(&ro)
		}
		got := ro.shardCount(c.banks)
		if c.want == -1 {
			if got < 1 || got > c.banks || got&(got-1) != 0 {
				t.Errorf("auto shardCount(%d) = %d: not a power of two in [1, banks]", c.banks, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("shards=%d banks=%d: got %d, want %d", c.opt, c.banks, got, c.want)
		}
	}
}
