// Experiment definitions: one runner per table/figure of the paper's
// evaluation section. Each returns plain data; rendering lives in
// internal/report.

package core

import (
	"fmt"

	"cmpmem/internal/cache"
	"cmpmem/internal/hier"
	"cmpmem/internal/metrics"
	"cmpmem/internal/par"
	"cmpmem/internal/prefetch"
	"cmpmem/internal/workloads"
	"cmpmem/internal/workloads/registry"
)

// forEachWorkload runs fn once per registered workload on the option
// set's bounded worker pool (default GOMAXPROCS). Runs are independent
// — each builds its own dataset, address space, and platform — and fn
// writes results by index, so ordering is deterministic and the first
// error cancels whatever has not started yet.
func forEachWorkload(ro runOpts, fn func(i int, name string) error) error {
	names := registry.Names()
	return par.ForEach(ro.workers(), len(names), func(i int) error {
		return fn(i, names[i])
	})
}

// PaperCacheSizesMB is the Figure 4-6 sweep in paper units.
var PaperCacheSizesMB = []int{4, 8, 16, 32, 64, 128, 256}

// PaperLineSizes is the Figure 7 sweep (bytes).
var PaperLineSizes = []uint64{64, 128, 256, 512, 1024, 2048, 4096}

// LLCAssoc is the emulated LLC associativity (the FPGA emulates a
// highly-associative shared LLC; 16 ways keeps conflict effects small).
const LLCAssoc = 16

// fig7PaperLLCMB is the LLC size of the line-size study (32 MB).
const fig7PaperLLCMB = 32

// CacheSweepConfigs returns the Figure 4-6 LLC configurations scaled by
// the workload scale: paper sizes 4-256 MB at 64 B lines.
func CacheSweepConfigs(scale float64) []cache.Config {
	if scale == 0 {
		scale = workloads.DefaultScale
	}
	out := make([]cache.Config, 0, len(PaperCacheSizesMB))
	for _, mb := range PaperCacheSizesMB {
		size := scaledCacheBytes(mb, scale)
		out = append(out, cache.Config{
			Name:     fmt.Sprintf("LLC-%dMB", mb),
			Size:     size,
			LineSize: 64,
			Assoc:    LLCAssoc,
		})
	}
	return out
}

// LineSweepConfigs returns the Figure 7 LLC configurations: a 32 MB
// paper-equivalent LLC at each line size.
func LineSweepConfigs(scale float64) []cache.Config {
	if scale == 0 {
		scale = workloads.DefaultScale
	}
	size := scaledCacheBytes(fig7PaperLLCMB, scale)
	out := make([]cache.Config, 0, len(PaperLineSizes))
	for _, ls := range PaperLineSizes {
		assoc := LLCAssoc
		for uint64(assoc) > size/ls {
			assoc /= 2
		}
		out = append(out, cache.Config{
			Name:     fmt.Sprintf("LLC-32MB/%dB", ls),
			Size:     size,
			LineSize: ls,
			Assoc:    assoc,
		})
	}
	return out
}

// scaledCacheBytes converts a paper-units cache size to simulated bytes,
// rounding to a power of two (set counts must stay powers of two).
func scaledCacheBytes(paperMB int, scale float64) uint64 {
	target := float64(paperMB) * float64(1<<20) * scale
	size := uint64(1) << 12
	for float64(size*2) <= target {
		size *= 2
	}
	return size
}

// Table1Row reproduces Table 1 (input parameters and datasets).
type Table1Row struct {
	Workload   string
	Parameters string
	DataSize   string
}

// Table1 returns the dataset descriptions at the configured scale.
func Table1(p workloads.Params) []Table1Row {
	rows := make([]Table1Row, 0, 8)
	for _, w := range registry.All(p) {
		params, size := w.Table1()
		rows = append(rows, Table1Row{Workload: w.Name(), Parameters: params, DataSize: size})
	}
	return rows
}

// Table2Row reproduces one row of Table 2 (workload characteristics,
// single-threaded on the P4-class profiling machine).
type Table2Row struct {
	Workload       string
	IPC            float64
	Instructions   uint64
	PctMem         float64
	PctMemRead     float64
	DL1AccessPer1k float64
	DL1MissPer1k   float64
	DL2MissPer1k   float64
}

// Table2 profiles every workload single-threaded through the P4
// hierarchy model, one profiling run per pool worker.
func Table2(p workloads.Params, opts ...RunOption) ([]Table2Row, error) {
	ro := applyOpts(opts)
	ro.tel.Expect(len(registry.Names()))
	rows := make([]Table2Row, len(registry.Names()))
	err := forEachWorkload(ro, func(i int, name string) error {
		res, err := RunHier(name, p, PlatformConfig{Threads: 1, Seed: p.Seed}, hier.PentiumIV(p.Scale), opts...)
		if err != nil {
			return fmt.Errorf("table2 %s: %w", name, err)
		}
		inst := res.Summary.Instructions
		memInst := res.Summary.Loads + res.Summary.Stores
		rows[i] = Table2Row{
			Workload:       name,
			IPC:            res.IPC,
			Instructions:   inst,
			PctMem:         100 * metrics.Rate(memInst, inst),
			PctMemRead:     100 * metrics.Rate(res.Summary.Loads, inst),
			DL1AccessPer1k: metrics.MPKI(res.L1.Accesses, inst),
			DL1MissPer1k:   metrics.MPKI(res.L1.Misses, inst),
			DL2MissPer1k:   metrics.MPKI(res.L2.Misses, inst),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// CacheSweep produces the Figure 4/5/6 series: LLC misses per 1000
// instructions as a function of (paper-equivalent) cache size, one
// series per workload, at the given core count.
func CacheSweep(p workloads.Params, cores int, opts ...RunOption) ([]metrics.Series, error) {
	p = p.WithDefaults()
	ro := applyOpts(opts)
	ro.tel.Expect(len(registry.Names()))
	configs := CacheSweepConfigs(p.Scale)
	out := make([]metrics.Series, len(registry.Names()))
	err := forEachWorkload(ro, func(i int, name string) error {
		results, _, err := LLCSweep(name, p, PlatformConfig{Threads: cores, Seed: p.Seed}, configs, opts...)
		if err != nil {
			return fmt.Errorf("cache sweep %s on %d cores: %w", name, cores, err)
		}
		s := metrics.Series{Name: name}
		for k, r := range results {
			s.Add(float64(PaperCacheSizesMB[k]), r.MPKI)
		}
		out[i] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// LineSweep produces the Figure 7 series: LLC MPKI vs line size on the
// 32-core LCMP with a 32 MB paper-equivalent LLC.
func LineSweep(p workloads.Params, opts ...RunOption) ([]metrics.Series, error) {
	p = p.WithDefaults()
	ro := applyOpts(opts)
	ro.tel.Expect(len(registry.Names()))
	configs := LineSweepConfigs(p.Scale)
	out := make([]metrics.Series, len(registry.Names()))
	err := forEachWorkload(ro, func(i int, name string) error {
		results, _, err := LLCSweep(name, p, PlatformConfig{Threads: 32, Seed: p.Seed}, configs, opts...)
		if err != nil {
			return fmt.Errorf("line sweep %s: %w", name, err)
		}
		s := metrics.Series{Name: name}
		for k, r := range results {
			s.Add(float64(PaperLineSizes[k]), r.MPKI)
		}
		out[i] = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig8Row reports the hardware-prefetching gain for one workload.
type Fig8Row struct {
	Workload        string
	SerialGainPct   float64
	ParallelGainPct float64
}

// Fig8Threads is the parallel mode of the prefetching study (the 16-way
// Unisys machine).
const Fig8Threads = 16

// Fig8 measures the performance gain of enabling the stride prefetcher
// on the Xeon-class hierarchy model, serial and 16-threaded.
func Fig8(p workloads.Params, opts ...RunOption) ([]Fig8Row, error) {
	p = p.WithDefaults()
	ro := applyOpts(opts)
	// Each workload costs four hierarchy runs (prefetch off/on, serial
	// and 16-thread), and each run prints its own progress step.
	ro.tel.Expect(4 * len(registry.Names()))
	rows := make([]Fig8Row, len(registry.Names()))
	err := forEachWorkload(ro, func(i int, name string) error {
		serial, err := prefetchGain(name, p, 1, opts)
		if err != nil {
			return fmt.Errorf("fig8 %s serial: %w", name, err)
		}
		par16, err := prefetchGain(name, p, Fig8Threads, opts)
		if err != nil {
			return fmt.Errorf("fig8 %s parallel: %w", name, err)
		}
		rows[i] = Fig8Row{Workload: name, SerialGainPct: serial, ParallelGainPct: par16}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// prefetchGain runs the workload with and without the prefetcher and
// returns the percentage cycle reduction.
func prefetchGain(name string, p workloads.Params, threads int, opts []RunOption) (float64, error) {
	pc := PlatformConfig{Threads: threads, Seed: p.Seed}
	off, err := RunHier(name, p, pc, hier.Xeon16(threads, p.Scale, nil), opts...)
	if err != nil {
		return 0, err
	}
	pf := prefetch.DefaultConfig(64)
	on, err := RunHier(name, p, pc, hier.Xeon16(threads, p.Scale, &pf), opts...)
	if err != nil {
		return 0, err
	}
	return metrics.SpeedupPct(off.Cycles, on.Cycles), nil
}
