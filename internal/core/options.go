// Run options: the concurrency and reuse knobs of the experiment
// runners.
//
// Two independent axes of parallelism mirror the paper's platform:
//
//   - Bus batching (WithBusBatch) decouples the producer from its
//     consumers inside ONE run: the execution engine publishes event
//     batches and each attached emulator drains its own bounded channel
//     on a dedicated worker, like the Dragonhead FPGAs passively
//     snooping the FSB in parallel with SoftSDV. Per-snooper delivery
//     order is total, so results are bit-identical to serial delivery.
//   - Experiment parallelism (WithParallelism) runs INDEPENDENT
//     (workload, platform, hierarchy-config) executions on a bounded
//     worker pool, like racking up several co-simulation platforms.
//
// Both default to conservative values: serial bus delivery, and a
// GOMAXPROCS-wide pool for the exhibit runners.
//
// A third axis removes redundant work entirely: WithTraceReuse memoizes
// each workload's captured bus-event stream in a tracestore.Store, so
// any number of experiments on the same (workload, params, platform,
// seed) tuple execute the guest simulation once and replay the stream
// everywhere else — exactly equivalent, because every published number
// depends only on the event stream and the cache algorithm.

package core

import (
	"runtime"

	"cmpmem/internal/fsb"
	"cmpmem/internal/sampling"
	"cmpmem/internal/telemetry"
	"cmpmem/internal/tracestore"
)

// RunOption configures the concurrency of an experiment runner. The
// zero set of options reproduces fully deterministic results; options
// only change wall-clock, never statistics.
type RunOption func(*runOpts)

// Progress phases, in the vocabulary a serving layer exposes to its
// clients: a run is captured once (PhaseCapture, only when the trace
// store has no stream for the key), replayed against the attached
// snoopers (PhaseReplay), or executed live without a store
// (PhaseExecute); each answered configuration then reports its
// completion (PhaseConfig).
const (
	PhaseCapture = "capture"
	PhaseReplay  = "replay"
	PhaseExecute = "execute"
	PhaseConfig  = "config"
	// PhaseSample is the fast tier's fingerprint + cluster pass
	// (WithSampling); the subsequent representative replay reports
	// PhaseReplay like any other replay.
	PhaseSample = "sampling"
)

// Progress is one job-visible phase transition of a run, delivered to
// the WithProgress hook. For PhaseConfig, Config names the completed
// configuration and Done/Total count the sweep's progress; the other
// phases carry only the phase itself.
type Progress struct {
	Phase  string
	Config string
	Done   int
	Total  int
}

// WithProgress registers a hook that observes the run's phase
// transitions: capture vs replay (so a caller can distinguish paying
// for an execution from reusing a memoized stream), live execution,
// and per-configuration completion during result collection. The hook
// is called synchronously from the run's own goroutine; it must not
// block. Observation only — statistics are bit-identical with or
// without it.
func WithProgress(fn func(Progress)) RunOption {
	return func(o *runOpts) { o.progress = fn }
}

// runOpts is the resolved option set.
type runOpts struct {
	// jobs bounds the worker pool for independent runs (0 = GOMAXPROCS).
	jobs int
	// batch is the bus batch size; 0 keeps synchronous in-goroutine
	// delivery, > 0 enables the batched per-snooper fan-out.
	batch int
	// store, when non-nil, memoizes captured event streams: named runs
	// execute once per key and replay everywhere else.
	store *tracestore.Store
	// tel, when non-nil, instruments the run: counters register into
	// the sink's registry, each experiment emits a span tree and a run
	// manifest, and sweeps print live progress lines. nil is the free
	// path (one branch per check site).
	tel *telemetry.Sink
	// span is the parent for this run's phase spans (set internally by
	// the experiment runners, nil when telemetry is off).
	span *telemetry.Span
	// parent, when non-nil, roots the runner's span tree under a
	// caller-owned span (a cosimd request trace) instead of opening a
	// fresh root on the telemetry sink. See WithParentSpan.
	parent *telemetry.Span
	// engine selects the sweep execution engine (see WithEngine); the
	// zero value is the legacy per-config emulation. engineSet records
	// whether the caller chose explicitly, so CombinedSweep can default
	// to planning while WithEngine(EngineEmulate) still means emulate.
	engine    Engine
	engineSet bool
	// shards selects intra-run bank sharding for the dragonhead
	// emulators: 0 = serial (the default), -1 = auto (resolved per
	// emulator by shardCount), >= 1 explicit.
	shards int
	// sampling selects the accuracy tier (see WithSampling). Unlike
	// every other option it changes results: sweeps return extrapolated
	// estimates with confidence intervals instead of exact statistics.
	sampling SamplingMode
	// sparams carries explicit sampler parameters for SamplingCustom.
	sparams *sampling.Params
	// progress, when non-nil, observes phase transitions (see
	// WithProgress). nil is the free path.
	progress func(Progress)
}

// step delivers one progress event to the hook (nil-safe).
func (o runOpts) step(pr Progress) {
	if o.progress != nil {
		o.progress(pr)
	}
}

// WithParallelism bounds how many independent workload runs an exhibit
// runner may execute concurrently. n <= 0 restores the default
// (GOMAXPROCS); n == 1 forces serial execution.
func WithParallelism(n int) RunOption {
	return func(o *runOpts) { o.jobs = n }
}

// WithBusBatch enables batched asynchronous bus delivery with the given
// events-per-batch inside each run (n <= 0 selects fsb.DefaultBatch).
// Each snooper then consumes the stream on its own worker goroutine;
// statistics remain bit-identical to synchronous delivery.
func WithBusBatch(n int) RunOption {
	return func(o *runOpts) {
		if n <= 0 {
			n = fsb.DefaultBatch
		}
		o.batch = n
	}
}

// DefaultTraceStore is the process-wide store WithTraceReuse(nil)
// selects: one capture per key across every experiment in the process,
// bounded by tracestore.DefaultMaxBytes, no disk spill.
var DefaultTraceStore = tracestore.New(0, "")

// WithTraceReuse memoizes each named workload execution's bus-event
// stream in s (nil selects DefaultTraceStore) and replays it for every
// later run with the same (workload, params, platform, seed) key.
// Replay is bit-identical to live execution — per-snooper delivery
// order is the captured order — so only wall-clock changes. Runs of
// pre-built workload values (RunWorkload) are never memoized: without a
// registry name their datasets have no stable identity.
func WithTraceReuse(s *tracestore.Store) RunOption {
	return func(o *runOpts) {
		if s == nil {
			s = DefaultTraceStore
		}
		o.store = s
	}
}

// WithTelemetry instruments every run made with this option set: the
// simulator's packages (softsdv, fsb, dragonhead, tracestore) register
// their counters into the sink's registry, each experiment emits a
// span tree plus a machine-readable run manifest, and the exhibit
// runners print live progress lines. Telemetry observes; statistics
// are bit-identical with or without it.
func WithTelemetry(s *telemetry.Sink) RunOption {
	return func(o *runOpts) { o.tel = s }
}

// WithParentSpan roots the run's span tree under s: the experiment
// runner's top span (llcsweep/…, plansweep/…, hier/…) becomes a child
// of s rather than a fresh root, so a request-scoped trace carried from
// an HTTP handler (telemetry.FromContext) contains the full execution
// tree. Works with or without WithTelemetry — spans record timing even
// when no sink is attached; a nil s is the free path.
func WithParentSpan(s *telemetry.Span) RunOption {
	return func(o *runOpts) { o.parent = s }
}

// rootSpan opens the runner's top-level span: a child of the propagated
// parent when one was supplied, else a fresh root on the sink (nil —
// free — when telemetry is off).
func (o runOpts) rootSpan(name string) *telemetry.Span {
	if o.parent != nil {
		return o.parent.StartChild(name)
	}
	return o.tel.StartSpan(name)
}

// WithBankShards spreads each Dragonhead emulator's bank lookups
// across n worker goroutines inside one run, partitioned by the same
// address-interleave bits that select the CC bank. Results are
// bit-identical to serial emulation — sharding is a wall-clock knob,
// like the other options. n == 0 selects auto (one shard per available
// CPU, capped at the bank count and rounded down to a power of two);
// n == 1 forces serial; larger values are clamped to the emulator's
// bank count. The private per-core organization always runs serial (it
// routes by core ID, not address).
func WithBankShards(n int) RunOption {
	return func(o *runOpts) {
		if n <= 0 {
			n = -1 // auto
		}
		o.shards = n
	}
}

// shardCount resolves the effective shard count for an emulator with
// the given bank count (dragonhead.New clamps again defensively).
func (o runOpts) shardCount(banks int) int {
	n := o.shards
	if n == 0 {
		return 1
	}
	if n < 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > banks {
		n = banks
	}
	for n&(n-1) != 0 {
		n &= n - 1 // round down to a power of two
	}
	if n < 1 {
		n = 1
	}
	return n
}

// applyOpts folds an option list into the resolved set.
func applyOpts(opts []RunOption) runOpts {
	var o runOpts
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// workers returns the bounded pool width for independent runs.
func (o runOpts) workers() int {
	if o.jobs > 0 {
		return o.jobs
	}
	return runtime.GOMAXPROCS(0)
}

// newBus builds the bus this option set calls for.
func (o runOpts) newBus() *fsb.Bus {
	var b *fsb.Bus
	if o.batch > 0 {
		b = fsb.NewBatchedBus(o.batch)
	} else {
		b = fsb.NewBus()
	}
	b.Instrument(o.tel.Registry())
	return b
}
