package traceutil

import (
	"bytes"
	"testing"

	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
)

func mkTrace(t *testing.T, refs []trace.Ref) *trace.Reader {
	t.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCollectBasics(t *testing.T) {
	refs := []trace.Ref{
		{Addr: 0x1000, Core: 0, Size: 8, Kind: mem.Load},
		{Addr: 0x1008, Core: 0, Size: 8, Kind: mem.Store},
		{Addr: 0x2000, Core: 1, Size: 8, Kind: mem.Load},
		{Addr: 0x1010, Core: 0, Size: 8, Kind: mem.Load},
	}
	s, err := Collect(mkTrace(t, refs))
	if err != nil {
		t.Fatal(err)
	}
	if s.Refs != 4 || s.Loads != 3 || s.Stores != 1 {
		t.Errorf("mix wrong: %+v", s)
	}
	if s.PerCore[0] != 3 || s.PerCore[1] != 1 {
		t.Errorf("per-core wrong: %v", s.PerCore)
	}
	// Lines: 0x1000>>6=64, 0x2000>>6=128 -> 2 distinct lines.
	if s.FootprintBytes != 2*64 {
		t.Errorf("footprint = %d, want 128", s.FootprintBytes)
	}
	// Core 0's transitions: +8, +8 -> all sequential.
	if s.SeqFraction != 1.0 {
		t.Errorf("seq fraction = %v, want 1.0", s.SeqFraction)
	}
}

func TestStrideHistogram(t *testing.T) {
	// Strides of exactly 256 bytes on one core.
	var refs []trace.Ref
	for i := 0; i < 10; i++ {
		refs = append(refs, trace.Ref{Addr: mem.Addr(i * 256), Core: 0, Size: 8, Kind: mem.Load})
	}
	s, err := Collect(mkTrace(t, refs))
	if err != nil {
		t.Fatal(err)
	}
	// 256 = 2^8 -> bucket 8.
	if s.StrideHist[8] != 9 {
		t.Errorf("stride bucket 8 = %d, want 9 (hist %v)", s.StrideHist[8], s.StrideHist[:10])
	}
	if s.DominantStride() != 256 {
		t.Errorf("dominant stride = %d, want 256", s.DominantStride())
	}
}

func TestInterleavedCoresDoNotPolluteStrides(t *testing.T) {
	// Two cores streaming distant regions: per-core strides stay small.
	var refs []trace.Ref
	for i := 0; i < 10; i++ {
		refs = append(refs,
			trace.Ref{Addr: mem.Addr(0x10000 + i*8), Core: 0, Size: 8, Kind: mem.Load},
			trace.Ref{Addr: mem.Addr(0x90000 + i*8), Core: 1, Size: 8, Kind: mem.Load},
		)
	}
	s, err := Collect(mkTrace(t, refs))
	if err != nil {
		t.Fatal(err)
	}
	if s.SeqFraction != 1.0 {
		t.Errorf("per-core stride tracking broken: seq fraction %v", s.SeqFraction)
	}
}

func TestWindows(t *testing.T) {
	var refs []trace.Ref
	// Window 1: 4 refs over 2 lines; window 2: 4 refs over 4 lines;
	// window 3 (partial): 1 store.
	for i := 0; i < 4; i++ {
		refs = append(refs, trace.Ref{Addr: mem.Addr((i % 2) * 64), Size: 8, Kind: mem.Load})
	}
	for i := 0; i < 4; i++ {
		refs = append(refs, trace.Ref{Addr: mem.Addr(0x1000 + i*64), Size: 8, Kind: mem.Load})
	}
	refs = append(refs, trace.Ref{Addr: 0x5000, Size: 8, Kind: mem.Store})

	ws, err := Windows(mkTrace(t, refs), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("got %d windows, want 3", len(ws))
	}
	if ws[0].DistinctBytes != 2*64 || ws[1].DistinctBytes != 4*64 {
		t.Errorf("window footprints wrong: %+v", ws[:2])
	}
	if ws[2].Refs != 1 || ws[2].StoreFraction != 1.0 {
		t.Errorf("partial window wrong: %+v", ws[2])
	}
}

func TestWindowsDefaultSize(t *testing.T) {
	ws, err := Windows(mkTrace(t, []trace.Ref{{Addr: 0, Size: 8}}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 1 {
		t.Fatalf("got %d windows", len(ws))
	}
}

func TestEmptyTrace(t *testing.T) {
	s, err := Collect(mkTrace(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	if s.Refs != 0 || s.FootprintBytes != 0 || s.SeqFraction != 0 {
		t.Errorf("empty trace stats: %+v", s)
	}
	ws, err := Windows(mkTrace(t, nil), 4)
	if err != nil || len(ws) != 0 {
		t.Errorf("empty trace windows: %v, %v", ws, err)
	}
}
