// Package traceutil analyzes captured memory-reference traces: access
// mix, footprints, stride distribution, and windowed working sets (the
// phase-behavior view that motivated the paper's run-to-completion
// methodology).
package traceutil

import (
	"io"
	"math/bits"

	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
)

// StrideBuckets is the number of power-of-two stride histogram buckets
// (bucket i covers strides in [2^i, 2^(i+1)); bucket 0 is stride 0-1).
const StrideBuckets = 32

// Stats summarizes one trace.
type Stats struct {
	Refs   uint64
	Loads  uint64
	Stores uint64
	// PerCore counts references by issuing core.
	PerCore map[uint8]uint64
	// FootprintBytes is the distinct-64B-line footprint.
	FootprintBytes uint64
	// SeqFraction is the fraction of consecutive same-core references
	// with a forward stride within one line (streaming indicator).
	SeqFraction float64
	// StrideHist buckets |addr - prevAddr| per core, by power of two.
	StrideHist [StrideBuckets]uint64
}

// Collector accumulates Stats incrementally (one pass, O(footprint)
// memory).
type Collector struct {
	stats    Stats
	lines    map[uint64]struct{}
	lastAddr map[uint8]mem.Addr
	seqHits  uint64
	seqBase  uint64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		lines:    make(map[uint64]struct{}, 1<<16),
		lastAddr: make(map[uint8]mem.Addr, 8),
	}
}

// Add accumulates one reference.
func (c *Collector) Add(r trace.Ref) {
	c.stats.Refs++
	if r.Kind == mem.Load {
		c.stats.Loads++
	} else {
		c.stats.Stores++
	}
	if c.stats.PerCore == nil {
		c.stats.PerCore = make(map[uint8]uint64, 8)
	}
	c.stats.PerCore[r.Core]++
	c.lines[uint64(r.Addr)>>6] = struct{}{}

	if prev, ok := c.lastAddr[r.Core]; ok {
		c.seqBase++
		var stride uint64
		if r.Addr >= prev {
			stride = uint64(r.Addr - prev)
			if stride <= 64 {
				c.seqHits++
			}
		} else {
			stride = uint64(prev - r.Addr)
		}
		bucket := 0
		if stride > 1 {
			bucket = bits.Len64(stride) - 1
		}
		if bucket >= StrideBuckets {
			bucket = StrideBuckets - 1
		}
		c.stats.StrideHist[bucket]++
	}
	c.lastAddr[r.Core] = r.Addr
}

// Stats finalizes and returns the summary.
func (c *Collector) Stats() Stats {
	s := c.stats
	s.FootprintBytes = uint64(len(c.lines)) * 64
	if c.seqBase > 0 {
		s.SeqFraction = float64(c.seqHits) / float64(c.seqBase)
	}
	return s
}

// Collect consumes a trace reader to completion.
func Collect(r *trace.Reader) (Stats, error) {
	c := NewCollector()
	for {
		ref, err := r.Read()
		if err == io.EOF {
			return c.Stats(), nil
		}
		if err != nil {
			return Stats{}, err
		}
		c.Add(ref)
	}
}

// WindowStat is the footprint of one fixed-size reference window — the
// phase-behavior timeline.
type WindowStat struct {
	// Refs is the window length (the final window may be shorter).
	Refs uint64
	// DistinctBytes is the 64 B-line footprint touched in the window.
	DistinctBytes uint64
	// StoreFraction is the stores share within the window.
	StoreFraction float64
}

// Windows segments the trace into windows of windowRefs references and
// reports each window's footprint.
func Windows(r *trace.Reader, windowRefs uint64) ([]WindowStat, error) {
	if windowRefs == 0 {
		windowRefs = 1 << 20
	}
	var out []WindowStat
	lines := make(map[uint64]struct{}, 1<<12)
	var n, stores uint64
	flush := func() {
		if n == 0 {
			return
		}
		out = append(out, WindowStat{
			Refs:          n,
			DistinctBytes: uint64(len(lines)) * 64,
			StoreFraction: float64(stores) / float64(n),
		})
		lines = make(map[uint64]struct{}, len(lines))
		n, stores = 0, 0
	}
	for {
		ref, err := r.Read()
		if err == io.EOF {
			flush()
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		lines[uint64(ref.Addr)>>6] = struct{}{}
		n++
		if ref.Kind == mem.Store {
			stores++
		}
		if n == windowRefs {
			flush()
		}
	}
}

// DominantStride returns the histogram bucket (as a byte count lower
// bound) holding the most transitions, ignoring the 0-1 bucket when a
// larger bucket is close (streaming workloads repeat within a line).
func (s *Stats) DominantStride() uint64 {
	best, bestCount := 0, uint64(0)
	for i, c := range s.StrideHist {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	if best == 0 {
		return 1
	}
	return 1 << best
}
