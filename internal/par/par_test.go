package par

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	for _, limit := range []int{0, 1, 2, 16} {
		var ran [64]int32
		err := ForEach(limit, len(ran), func(i int) error {
			atomic.AddInt32(&ran[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("limit=%d: %v", limit, err)
		}
		for i, n := range ran {
			if n != 1 {
				t.Fatalf("limit=%d: index %d ran %d times", limit, i, n)
			}
		}
	}
}

func TestForEachFirstError(t *testing.T) {
	want := errors.New("boom")
	err := ForEach(4, 32, func(i int) error {
		if i == 5 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestForEachSerialStopsAtError(t *testing.T) {
	var ran int
	err := ForEach(1, 10, func(i int) error {
		ran++
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error lost")
	}
	if ran != 4 {
		t.Fatalf("serial ForEach ran %d tasks after error, want 4", ran)
	}
}

func TestGroupCancelSkipsQueued(t *testing.T) {
	g := NewGroup(1)
	holding := make(chan struct{})
	release := make(chan struct{})
	var started int32
	g.Go(func() error {
		close(holding) // the failing task owns the only slot from here on
		<-release
		return errors.New("first fails")
	})
	<-holding
	for i := 0; i < 8; i++ {
		g.Go(func() error {
			atomic.AddInt32(&started, 1)
			return nil
		})
	}
	close(release)
	if err := g.Wait(); err == nil {
		t.Fatal("error lost")
	}
	// With limit 1, the failing task holds the only slot until release;
	// everything queued behind it must be skipped.
	if n := atomic.LoadInt32(&started); n != 0 {
		t.Fatalf("%d queued tasks ran after cancellation", n)
	}
	if !g.Canceled() {
		t.Fatal("group not marked canceled")
	}
}

func TestGroupConcurrencyBound(t *testing.T) {
	const limit = 3
	g := NewGroup(limit)
	var cur, max int32
	var mu sync.Mutex
	for i := 0; i < 50; i++ {
		g.Go(func() error {
			n := atomic.AddInt32(&cur, 1)
			mu.Lock()
			if n > max {
				max = n
			}
			mu.Unlock()
			atomic.AddInt32(&cur, -1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if max > limit {
		t.Fatalf("observed %d concurrent tasks, limit %d", max, limit)
	}
}

func TestWaitRepanics(t *testing.T) {
	g := NewGroup(2)
	g.Go(func() error { panic("kaboom") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic swallowed")
		}
		if !strings.Contains(r.(string), "kaboom") {
			t.Fatalf("panic value %v lost the cause", r)
		}
	}()
	g.Wait()
	t.Fatal("Wait returned after task panic")
}
