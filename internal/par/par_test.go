package par

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAll(t *testing.T) {
	for _, limit := range []int{0, 1, 2, 16} {
		var ran [64]int32
		err := ForEach(limit, len(ran), func(i int) error {
			atomic.AddInt32(&ran[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("limit=%d: %v", limit, err)
		}
		for i, n := range ran {
			if n != 1 {
				t.Fatalf("limit=%d: index %d ran %d times", limit, i, n)
			}
		}
	}
}

func TestForEachFirstError(t *testing.T) {
	want := errors.New("boom")
	err := ForEach(4, 32, func(i int) error {
		if i == 5 {
			return want
		}
		return nil
	})
	if !errors.Is(err, want) {
		t.Fatalf("err = %v, want %v", err, want)
	}
}

func TestForEachSerialStopsAtError(t *testing.T) {
	var ran int
	err := ForEach(1, 10, func(i int) error {
		ran++
		if i == 3 {
			return errors.New("stop")
		}
		return nil
	})
	if err == nil {
		t.Fatal("error lost")
	}
	if ran != 4 {
		t.Fatalf("serial ForEach ran %d tasks after error, want 4", ran)
	}
}

func TestGroupCancelSkipsQueued(t *testing.T) {
	g := NewGroup(1)
	holding := make(chan struct{})
	release := make(chan struct{})
	var started int32
	g.Go(func() error {
		close(holding) // the failing task owns the only slot from here on
		<-release
		return errors.New("first fails")
	})
	<-holding
	for i := 0; i < 8; i++ {
		g.Go(func() error {
			atomic.AddInt32(&started, 1)
			return nil
		})
	}
	close(release)
	if err := g.Wait(); err == nil {
		t.Fatal("error lost")
	}
	// With limit 1, the failing task holds the only slot until release;
	// everything queued behind it must be skipped.
	if n := atomic.LoadInt32(&started); n != 0 {
		t.Fatalf("%d queued tasks ran after cancellation", n)
	}
	if !g.Canceled() {
		t.Fatal("group not marked canceled")
	}
}

func TestGroupConcurrencyBound(t *testing.T) {
	const limit = 3
	g := NewGroup(limit)
	var cur, max int32
	var mu sync.Mutex
	for i := 0; i < 50; i++ {
		g.Go(func() error {
			n := atomic.AddInt32(&cur, 1)
			mu.Lock()
			if n > max {
				max = n
			}
			mu.Unlock()
			atomic.AddInt32(&cur, -1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if max > limit {
		t.Fatalf("observed %d concurrent tasks, limit %d", max, limit)
	}
}

func TestWaitRepanics(t *testing.T) {
	g := NewGroup(2)
	g.Go(func() error { panic("kaboom") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic swallowed")
		}
		if !strings.Contains(r.(string), "kaboom") {
			t.Fatalf("panic value %v lost the cause", r)
		}
	}()
	g.Wait()
	t.Fatal("Wait returned after task panic")
}

// TestGroupPanicCancelsQueued: a panicking worker mid-batch must cancel
// everything queued behind it, exactly like an error — and Wait still
// re-raises the panic after the skip.
func TestGroupPanicCancelsQueued(t *testing.T) {
	g := NewGroup(1)
	holding := make(chan struct{})
	release := make(chan struct{})
	var started int32
	g.Go(func() error {
		close(holding)
		<-release
		panic("mid-batch crash")
	})
	<-holding
	for i := 0; i < 8; i++ {
		g.Go(func() error {
			atomic.AddInt32(&started, 1)
			return nil
		})
	}
	close(release)
	defer func() {
		if recover() == nil {
			t.Fatal("panic swallowed")
		}
		if n := atomic.LoadInt32(&started); n != 0 {
			t.Fatalf("%d queued tasks ran after a panic", n)
		}
		if !g.Canceled() {
			t.Fatal("group not marked canceled after panic")
		}
	}()
	g.Wait()
}

// TestGroupPanicBeatsError: when both a panic and an error are
// recorded, Wait must re-raise the panic — losing a crash to a softer
// error would hide the real failure.
func TestGroupPanicBeatsError(t *testing.T) {
	g := NewGroup(2)
	errRecorded := make(chan struct{})
	g.Go(func() error {
		defer close(errRecorded)
		return errors.New("soft failure")
	})
	g.Go(func() error {
		<-errRecorded
		panic("hard failure")
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic lost to the earlier error")
		}
		if !strings.Contains(r.(string), "hard failure") {
			t.Fatalf("panic value %v lost the cause", r)
		}
	}()
	g.Wait()
}

// TestForEachPanicPropagates: a panic inside fn surfaces on the ForEach
// caller for both the serial (limit 1) and pooled paths.
func TestForEachPanicPropagates(t *testing.T) {
	for _, limit := range []int{1, 4} {
		limit := limit
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("limit=%d: panic swallowed", limit)
				}
			}()
			ForEach(limit, 8, func(i int) error {
				if i == 2 {
					panic("worker crash")
				}
				return nil
			})
			t.Errorf("limit=%d: ForEach returned after panic", limit)
		}()
	}
}

// TestGroupConcurrentErrors: many workers failing at once must record
// exactly one winner with no data race (run under -race) and never
// deadlock Wait.
func TestGroupConcurrentErrors(t *testing.T) {
	g := NewGroup(8)
	for i := 0; i < 64; i++ {
		i := i
		g.Go(func() error { return errors.New("task " + string(rune('A'+i%26))) })
	}
	err := g.Wait()
	if err == nil {
		t.Fatal("all errors lost")
	}
	if !strings.HasPrefix(err.Error(), "task ") {
		t.Fatalf("unexpected winner: %v", err)
	}
}
