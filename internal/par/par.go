// Package par provides the bounded-concurrency primitives the
// experiment runners are built on: an errgroup-style Group that runs
// tasks on a limited worker pool with first-error cancellation, and a
// ForEach helper for index-parallel loops with deterministic result
// placement.
//
// The cancellation model matches the co-simulation use case: every task
// is independent (one workload run), so "cancel" means "skip tasks that
// have not started yet" — a task already running is allowed to finish.
// The first error wins and is the one Wait returns; panics inside tasks
// are captured and re-raised on the goroutine that calls Wait, so a
// crashing workload takes down the experiment, not a bare worker.
package par

import (
	"fmt"
	"runtime"
	"sync"
)

// Group runs tasks with bounded concurrency and collects the first
// error. The zero value is not usable; construct with NewGroup.
type Group struct {
	sem chan struct{}
	wg  sync.WaitGroup

	mu       sync.Mutex
	err      error
	panicked any
	canceled bool
}

// NewGroup returns a group that runs at most limit tasks concurrently.
// limit <= 0 selects GOMAXPROCS.
func NewGroup(limit int) *Group {
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	return &Group{sem: make(chan struct{}, limit)}
}

// Go schedules fn. If the group has already recorded an error (or a
// panic), fn is skipped — queued work is cancelled, running work is
// left to finish.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		g.sem <- struct{}{}
		defer func() { <-g.sem }()
		if g.Canceled() {
			return
		}
		defer func() {
			if r := recover(); r != nil {
				g.mu.Lock()
				if g.panicked == nil {
					g.panicked = r
					g.canceled = true
				}
				g.mu.Unlock()
			}
		}()
		if err := fn(); err != nil {
			g.mu.Lock()
			if g.err == nil {
				g.err = err
				g.canceled = true
			}
			g.mu.Unlock()
		}
	}()
}

// Canceled reports whether an error or panic has been recorded and
// queued tasks will be skipped.
func (g *Group) Canceled() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.canceled
}

// Wait blocks until every scheduled task has finished or been skipped.
// It returns the first error; if a task panicked, the panic is re-raised
// here so it surfaces on the caller's goroutine.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.panicked != nil {
		panic(fmt.Sprintf("par: task panicked: %v", g.panicked))
	}
	return g.err
}

// ForEach runs fn(i) for every i in [0, n) with at most limit workers
// (limit <= 0 selects GOMAXPROCS) and returns the first error. Callers
// get deterministic result ordering by writing fn results into slot i
// of a pre-sized slice.
func ForEach(limit, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	// A serial loop needs no goroutines — and keeps single-threaded
	// callers trivially race-free.
	if limit == 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	g := NewGroup(limit)
	for i := 0; i < n; i++ {
		i := i
		g.Go(func() error { return fn(i) })
	}
	return g.Wait()
}
