// Package prefetch implements the stride-based hardware prefetcher used
// in the Figure 8 study. It mirrors the behaviour the paper attributes
// to the Xeon platform: per-core stream detectors that recognize constant
// strides in forward and backward directions and, once confident, run a
// configurable number of lines ahead of the demand stream.
package prefetch

import (
	"fmt"

	"cmpmem/internal/mem"
)

// Config tunes the prefetcher.
type Config struct {
	// TableSize is the number of stream-detector entries per core.
	TableSize int
	// Confidence is how many consecutive constant-stride accesses are
	// required before prefetches are issued.
	Confidence int
	// Degree is how many lines ahead to prefetch once confident.
	Degree int
	// LineSize is the cache line size prefetches are issued at.
	LineSize uint64
	// RegionBits selects the detector-indexing granularity: accesses in
	// the same 1<<RegionBits byte region train the same entry. 12 (4 KiB
	// pages) approximates PC-less region-based detection.
	RegionBits uint
}

// DefaultConfig matches a modest front-side-bus stride prefetcher.
func DefaultConfig(lineSize uint64) Config {
	return Config{
		TableSize:  16,
		Confidence: 2,
		Degree:     2,
		LineSize:   lineSize,
		RegionBits: 12,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.TableSize <= 0 {
		return fmt.Errorf("prefetch: table size must be positive, got %d", c.TableSize)
	}
	if c.Confidence < 1 {
		return fmt.Errorf("prefetch: confidence must be >= 1, got %d", c.Confidence)
	}
	if c.Degree < 1 {
		return fmt.Errorf("prefetch: degree must be >= 1, got %d", c.Degree)
	}
	if c.LineSize == 0 || c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("prefetch: line size %d is not a power of two", c.LineSize)
	}
	return nil
}

// entry is one stream detector.
type entry struct {
	valid      bool
	region     uint64
	lastLine   int64
	stride     int64
	confidence int
	lru        uint64
}

// Stats counts prefetcher activity.
type Stats struct {
	// Trainings is the number of accesses observed.
	Trainings uint64
	// Issued is the number of prefetch lines emitted.
	Issued uint64
	// Streams is the number of distinct streams that reached confidence.
	Streams uint64
}

// Prefetcher holds per-core stream tables.
type Prefetcher struct {
	cfg       Config
	lineShift uint
	tables    map[uint8][]entry
	clock     uint64
	stats     Stats
}

// New builds a prefetcher; returns an error for invalid configuration.
func New(cfg Config) (*Prefetcher, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Prefetcher{cfg: cfg, tables: make(map[uint8][]entry)}
	for s := cfg.LineSize; s > 1; s >>= 1 {
		p.lineShift++
	}
	return p, nil
}

// Stats returns a copy of the counters.
func (p *Prefetcher) Stats() Stats { return p.stats }

// Config returns the prefetcher's configuration.
func (p *Prefetcher) Config() Config { return p.cfg }

// Train observes one demand access by core at addr and appends up to
// Degree predicted line addresses to out, returning the extended slice.
// Predictions are line-aligned and strictly ahead of (or behind, for
// negative strides) the demand line.
func (p *Prefetcher) Train(core uint8, addr mem.Addr, out []mem.Addr) []mem.Addr {
	p.stats.Trainings++
	p.clock++
	line := int64(uint64(addr) >> p.lineShift)
	region := uint64(addr) >> p.cfg.RegionBits

	table := p.tables[core]
	if table == nil {
		table = make([]entry, p.cfg.TableSize)
		p.tables[core] = table
	}

	// Find the entry for this region, or a victim.
	idx := -1
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range table {
		if table[i].valid && table[i].region == region {
			idx = i
			break
		}
		if table[i].lru < oldest {
			oldest = table[i].lru
			victim = i
		}
	}
	if idx < 0 {
		table[victim] = entry{valid: true, region: region, lastLine: line, stride: 0, confidence: 0, lru: p.clock}
		return out
	}

	e := &table[idx]
	e.lru = p.clock
	stride := line - e.lastLine
	if stride == 0 {
		// Same line again: neither trains nor resets the detector.
		return out
	}
	if stride == e.stride {
		if e.confidence < p.cfg.Confidence {
			e.confidence++
			if e.confidence == p.cfg.Confidence {
				p.stats.Streams++
			}
		}
	} else {
		e.stride = stride
		e.confidence = 1
		if p.cfg.Confidence == 1 {
			p.stats.Streams++
		}
	}
	e.lastLine = line

	if e.confidence >= p.cfg.Confidence {
		for k := 1; k <= p.cfg.Degree; k++ {
			target := line + int64(k)*e.stride
			if target < 0 {
				break
			}
			out = append(out, mem.Addr(uint64(target))<<p.lineShift)
			p.stats.Issued++
		}
	}
	return out
}

// Reset clears all detector state and counters.
func (p *Prefetcher) Reset() {
	p.tables = make(map[uint8][]entry)
	p.clock = 0
	p.stats = Stats{}
}
