package prefetch

import (
	"testing"
	"testing/quick"

	"cmpmem/internal/mem"
)

func newPF(t *testing.T, cfg Config) *Prefetcher {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(64)
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	bad := []Config{
		{TableSize: 0, Confidence: 1, Degree: 1, LineSize: 64},
		{TableSize: 4, Confidence: 0, Degree: 1, LineSize: 64},
		{TableSize: 4, Confidence: 1, Degree: 0, LineSize: 64},
		{TableSize: 4, Confidence: 1, Degree: 1, LineSize: 48},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(bad[0]); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestForwardStrideDetection(t *testing.T) {
	p := newPF(t, Config{TableSize: 8, Confidence: 2, Degree: 2, LineSize: 64, RegionBits: 20})
	var out []mem.Addr
	// Unit-stride stream: lines 0,1,2,3...
	for i := 0; i < 3; i++ {
		out = p.Train(0, mem.Addr(i*64), out[:0])
	}
	// After 3 accesses (2 confirming strides), predictions fire.
	if len(out) != 2 {
		t.Fatalf("got %d predictions, want 2", len(out))
	}
	if out[0] != 3*64 || out[1] != 4*64 {
		t.Errorf("predictions %v, want [192 256]", out)
	}
}

func TestBackwardStrideDetection(t *testing.T) {
	p := newPF(t, Config{TableSize: 8, Confidence: 2, Degree: 1, LineSize: 64, RegionBits: 24})
	var out []mem.Addr
	start := 100
	for i := 0; i < 3; i++ {
		out = p.Train(0, mem.Addr((start-i)*64), out[:0])
	}
	if len(out) != 1 || out[0] != mem.Addr(97*64) {
		t.Errorf("backward prediction %v, want [97*64]", out)
	}
}

func TestLargeStride(t *testing.T) {
	p := newPF(t, Config{TableSize: 8, Confidence: 1, Degree: 1, LineSize: 64, RegionBits: 30})
	var out []mem.Addr
	p.Train(0, 0, nil)
	out = p.Train(0, mem.Addr(8*64), out[:0])
	if len(out) != 1 || out[0] != mem.Addr(16*64) {
		t.Errorf("stride-8 prediction %v, want [16*64]", out)
	}
}

func TestNoPredictionWithoutConfidence(t *testing.T) {
	p := newPF(t, Config{TableSize: 8, Confidence: 3, Degree: 4, LineSize: 64, RegionBits: 20})
	var out []mem.Addr
	out = p.Train(0, 0, out)
	out = p.Train(0, 64, out)
	out = p.Train(0, 128, out)
	if len(out) != 0 {
		t.Errorf("predicted %v before reaching confidence", out)
	}
}

func TestStrideChangeResetsConfidence(t *testing.T) {
	p := newPF(t, Config{TableSize: 8, Confidence: 2, Degree: 1, LineSize: 64, RegionBits: 20})
	var out []mem.Addr
	p.Train(0, 0, nil)
	p.Train(0, 64, nil)
	out = p.Train(0, 128, out[:0])
	if len(out) == 0 {
		t.Fatal("expected prediction on stable stride")
	}
	// Break the stride: jump far within region.
	out = p.Train(0, 64*50, out[:0])
	if len(out) != 0 {
		t.Errorf("prediction survived stride break: %v", out)
	}
}

func TestSameLineAccessIgnored(t *testing.T) {
	p := newPF(t, Config{TableSize: 8, Confidence: 2, Degree: 1, LineSize: 64, RegionBits: 20})
	p.Train(0, 0, nil)
	p.Train(0, 64, nil)
	p.Train(0, 64+8, nil) // same line, different offset
	out := p.Train(0, 128, nil)
	if len(out) == 0 {
		t.Error("same-line re-access should not reset the detector")
	}
}

func TestPerCoreIsolation(t *testing.T) {
	p := newPF(t, Config{TableSize: 8, Confidence: 2, Degree: 1, LineSize: 64, RegionBits: 20})
	// Core 0 trains a stream; core 1's interleaved accesses to the same
	// region must not disturb it (per-core tables).
	var out []mem.Addr
	p.Train(0, 0, nil)
	p.Train(1, 64*7, nil)
	p.Train(0, 64, nil)
	p.Train(1, 64*3, nil)
	out = p.Train(0, 128, out[:0])
	if len(out) != 1 {
		t.Errorf("core 0 stream lost: %v", out)
	}
}

func TestTableEviction(t *testing.T) {
	p := newPF(t, Config{TableSize: 2, Confidence: 1, Degree: 1, LineSize: 64, RegionBits: 12})
	// Touch 3 distinct regions: the LRU entry is evicted.
	p.Train(0, 0<<12, nil)
	p.Train(0, 1<<12, nil)
	p.Train(0, 2<<12, nil)
	st := p.Stats()
	if st.Trainings != 3 {
		t.Errorf("trainings = %d, want 3", st.Trainings)
	}
	// Region 0 was evicted: re-touching it allocates fresh (no stride).
	out := p.Train(0, 0<<12|64, nil)
	if len(out) != 0 {
		t.Errorf("evicted region retained state: %v", out)
	}
}

// TestNeverPrefetchNegative: predictions are always line-aligned,
// non-negative addresses.
func TestPredictionAlignmentProperty(t *testing.T) {
	p := newPF(t, DefaultConfig(64))
	check := func(addrs []uint32, core uint8) bool {
		var out []mem.Addr
		for _, a := range addrs {
			out = p.Train(core, mem.Addr(a), out[:0])
			for _, pred := range out {
				if uint64(pred)%64 != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStatsAndReset(t *testing.T) {
	p := newPF(t, Config{TableSize: 8, Confidence: 1, Degree: 2, LineSize: 64, RegionBits: 20})
	var out []mem.Addr
	for i := 0; i < 10; i++ {
		out = p.Train(0, mem.Addr(i*64), out[:0])
	}
	st := p.Stats()
	if st.Issued == 0 || st.Streams == 0 {
		t.Errorf("stats not accumulating: %+v", st)
	}
	p.Reset()
	if p.Stats() != (Stats{}) {
		t.Error("Reset left stats behind")
	}
}

func BenchmarkTrainStream(b *testing.B) {
	p, _ := New(DefaultConfig(64))
	var out []mem.Addr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = p.Train(0, mem.Addr(i*64), out[:0])
	}
	_ = out
}
