package mem

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestArenaAllocationAlignment(t *testing.T) {
	sp := NewSpace()
	a := sp.NewArena("test", 1<<20)
	f := a.Float64s(3)
	if f.Base()%8 != 0 {
		t.Errorf("Float64s base %#x not 8-aligned", uint64(f.Base()))
	}
	b := a.Bytes(5)
	i32 := a.Int32s(7)
	if i32.Base()%4 != 0 {
		t.Errorf("Int32s base %#x not 4-aligned", uint64(i32.Base()))
	}
	i64 := a.Int64s(2)
	if i64.Base()%8 != 0 {
		t.Errorf("Int64s base %#x not 8-aligned", uint64(i64.Base()))
	}
	_ = b
}

// TestArenaNonOverlap property: buffers allocated from one arena never
// overlap in guest address space.
func TestArenaNonOverlap(t *testing.T) {
	type span struct{ lo, hi uint64 }
	check := func(sizes []uint16) bool {
		sp := NewSpace()
		var total uint64
		for _, s := range sizes {
			total += uint64(s) + 16
		}
		a := sp.NewArena("q", total+64)
		var spans []span
		for i, s := range sizes {
			n := int(s)%64 + 1
			var lo, hi uint64
			switch i % 4 {
			case 0:
				b := a.Float64s(n)
				lo, hi = uint64(b.Base()), uint64(b.Base())+uint64(n)*8
			case 1:
				b := a.Int32s(n)
				lo, hi = uint64(b.Base()), uint64(b.Base())+uint64(n)*4
			case 2:
				b := a.Bytes(n)
				lo, hi = uint64(b.Base()), uint64(b.Base())+uint64(n)
			default:
				b := a.Int64s(n)
				lo, hi = uint64(b.Base()), uint64(b.Base())+uint64(n)*8
			}
			for _, sp := range spans {
				if lo < sp.hi && sp.lo < hi {
					return false
				}
			}
			spans = append(spans, span{lo, hi})
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestArenasDisjoint property: different arenas occupy disjoint ranges.
func TestArenasDisjoint(t *testing.T) {
	sp := NewSpace()
	a1 := sp.NewArena("a", 3<<20)
	a2 := sp.NewArena("b", 1<<10)
	a3 := sp.NewArena("c", 5<<20)
	arenas := []*Arena{a1, a2, a3}
	for i, x := range arenas {
		for j, y := range arenas {
			if i == j {
				continue
			}
			xLo, xHi := uint64(x.base), uint64(x.base)+x.Cap()
			yLo, yHi := uint64(y.base), uint64(y.base)+y.Cap()
			if xLo < yHi && yLo < xHi {
				t.Errorf("arenas %d and %d overlap: [%#x,%#x) vs [%#x,%#x)", i, j, xLo, xHi, yLo, yHi)
			}
		}
	}
}

func TestArenaExhaustionPanics(t *testing.T) {
	sp := NewSpace()
	a := sp.NewArena("small", 16)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on arena exhaustion")
		}
	}()
	a.Float64s(100)
}

func TestTypedAccessorsRoundTrip(t *testing.T) {
	sp := NewSpace()
	a := sp.NewArena("rt", 1<<16)
	var rec CountingRecorder

	f := a.Float64s(10)
	f.Set(&rec, 3, 2.5)
	if got := f.At(&rec, 3); got != 2.5 {
		t.Errorf("Float64s: got %v, want 2.5", got)
	}
	i := a.Int32s(10)
	i.Set(&rec, 9, -7)
	if got := i.At(&rec, 9); got != -7 {
		t.Errorf("Int32s: got %v, want -7", got)
	}
	b := a.Bytes(10)
	b.Set(&rec, 0, 0xAB)
	if got := b.At(&rec, 0); got != 0xAB {
		t.Errorf("Bytes: got %#x, want 0xAB", got)
	}
	l := a.Int64s(4)
	l.Set(&rec, 1, 1<<40)
	if got := l.At(&rec, 1); got != 1<<40 {
		t.Errorf("Int64s: got %v", got)
	}
	g := a.Float32s(4)
	g.Set(&rec, 2, 1.5)
	if got := g.At(&rec, 2); got != 1.5 {
		t.Errorf("Float32s: got %v", got)
	}
	if rec.Loads != 5 || rec.Stores != 5 {
		t.Errorf("recorder counted %d loads, %d stores; want 5, 5", rec.Loads, rec.Stores)
	}
}

// TestAddrArithmetic property: Addr(i) is base + i*elementSize.
func TestAddrArithmetic(t *testing.T) {
	sp := NewSpace()
	a := sp.NewArena("addr", 1<<20)
	f := a.Float64s(1000)
	check := func(i uint16) bool {
		idx := int(i) % 1000
		return f.Addr(idx) == f.Base()+Addr(idx)*8
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestSliceSharesAddresses(t *testing.T) {
	sp := NewSpace()
	a := sp.NewArena("slice", 1<<16)
	var rec CountingRecorder
	f := a.Float64s(100)
	sub := f.Slice(10, 20)
	if sub.Len() != 10 {
		t.Fatalf("sub len = %d, want 10", sub.Len())
	}
	if sub.Addr(0) != f.Addr(10) {
		t.Errorf("slice base mismatch: %#x vs %#x", uint64(sub.Addr(0)), uint64(f.Addr(10)))
	}
	sub.Set(&rec, 0, 9)
	if f.At(&rec, 10) != 9 {
		t.Error("slice write not visible through parent buffer")
	}
}

func TestSpaceFootprintAndMap(t *testing.T) {
	sp := NewSpace()
	a := sp.NewArena("fp", 1<<20)
	a.Bytes(1000)
	a.Int32s(100) // 400 bytes
	fp := sp.Footprint()
	if fp < 1400 {
		t.Errorf("footprint %d < 1400", fp)
	}
	m := sp.Map()
	if !strings.Contains(m, "fp") {
		t.Errorf("address map missing arena label: %q", m)
	}
}

func TestNopRecorder(t *testing.T) {
	var r NopRecorder
	r.Access(0x1000, 8, Load) // must not panic
	r.Exec(5)
}

func TestKindString(t *testing.T) {
	if Load.String() != "load" || Store.String() != "store" {
		t.Errorf("Kind strings wrong: %q, %q", Load.String(), Store.String())
	}
}

func TestRawBypassesRecorder(t *testing.T) {
	sp := NewSpace()
	a := sp.NewArena("raw", 1<<12)
	var rec CountingRecorder
	f := a.Float64s(8)
	f.Raw()[5] = 3.25
	if rec.Loads+rec.Stores != 0 {
		t.Error("Raw access must not be recorded")
	}
	if f.At(&rec, 5) != 3.25 {
		t.Error("Raw write not visible through accessor")
	}
}

func TestConcurrentArenaCreation(t *testing.T) {
	sp := NewSpace()
	done := make(chan *Arena, 16)
	for i := 0; i < 16; i++ {
		go func() { done <- sp.NewArena("conc", 1<<16) }()
	}
	seen := map[Addr]bool{}
	for i := 0; i < 16; i++ {
		a := <-done
		if seen[a.Base()] {
			t.Fatalf("duplicate arena base %#x", uint64(a.Base()))
		}
		seen[a.Base()] = true
	}
}

func BenchmarkFloat64At(b *testing.B) {
	sp := NewSpace()
	a := sp.NewArena("bench", 1<<20)
	f := a.Float64s(1024)
	var rec CountingRecorder
	r := rand.New(rand.NewSource(1))
	for i := range f.Raw() {
		f.Raw()[i] = r.Float64()
	}
	b.ResetTimer()
	var sum float64
	for i := 0; i < b.N; i++ {
		sum += f.At(&rec, i&1023)
	}
	_ = sum
}
