// Package mem provides the simulated guest address space used by all
// workloads.
//
// Workload kernels perform their real computation on ordinary Go slices,
// but every load and store goes through a typed accessor (Float64s.At,
// Int32s.Set, ...) that also reports the access — with a 64-bit guest
// address — to a Recorder. The co-simulation layers (SoftSDV, Dragonhead)
// consume that stream. This way the trace reflects the genuine data
// layout and reference order of the algorithm rather than a statistical
// approximation.
//
// Address space layout: each Space hands out arenas; each arena is a
// contiguous guest address range carved by a bump allocator. Arenas are
// aligned to 1 MiB so that per-thread private heaps land in disjoint
// address ranges, mirroring a real threaded allocator.
package mem

import (
	"fmt"
	"sort"
	"sync"
)

// Addr is a 64-bit guest physical address.
type Addr uint64

// Kind distinguishes loads from stores.
type Kind uint8

const (
	// Load is a memory read.
	Load Kind = iota
	// Store is a memory write.
	Store
)

// String returns "load" or "store".
func (k Kind) String() string {
	if k == Load {
		return "load"
	}
	return "store"
}

// Recorder receives every memory access performed through the typed
// accessors. Implementations must be cheap: they are invoked on the hot
// path of every simulated load and store.
type Recorder interface {
	// Access reports one memory reference of size bytes at addr.
	Access(addr Addr, size uint8, kind Kind)
	// Exec reports n non-memory instructions executed between accesses.
	Exec(n uint64)
}

// NopRecorder discards all events. Useful for running a kernel natively
// (e.g. to validate algorithmic results without simulation overhead).
type NopRecorder struct{}

// Access implements Recorder.
func (NopRecorder) Access(Addr, uint8, Kind) {}

// Exec implements Recorder.
func (NopRecorder) Exec(uint64) {}

// CountingRecorder tallies accesses; used in tests.
type CountingRecorder struct {
	Loads  uint64
	Stores uint64
	Execs  uint64
	Bytes  uint64
}

// Access implements Recorder.
func (c *CountingRecorder) Access(_ Addr, size uint8, kind Kind) {
	if kind == Load {
		c.Loads++
	} else {
		c.Stores++
	}
	c.Bytes += uint64(size)
}

// Exec implements Recorder.
func (c *CountingRecorder) Exec(n uint64) { c.Execs += n }

// arenaAlign is the alignment of every arena base (1 MiB).
const arenaAlign = 1 << 20

// spaceBase is the base of the first arena; chosen non-zero so that
// address 0 is never valid (helps catch uninitialized-buffer bugs).
const spaceBase = 1 << 30

// Space is a simulated guest address space. It is safe for concurrent
// arena creation; individual arenas are not safe for concurrent
// allocation (each simulated thread should own its private arena).
type Space struct {
	mu     sync.Mutex
	next   Addr
	arenas []*Arena
}

// NewSpace returns an empty address space.
func NewSpace() *Space {
	return &Space{next: spaceBase}
}

// NewArena reserves capacity bytes of guest address range under the given
// label. The label appears in the address-map dump and is purely
// diagnostic.
//
// Arena bases are staggered by a per-arena color offset. Without it,
// identical per-thread data structures would land at identical
// cache-set offsets (all arenas being 1 MiB-aligned) and N same-offset
// streams would conflict pathologically in an N/2-way cache — an
// artifact a real machine never sees because the OS maps physical pages
// quasi-randomly.
func (s *Space) NewArena(label string, capacity uint64) *Arena {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Color: a line-aligned pseudo-random offset below 1 MiB.
	color := Addr(uint64(len(s.arenas))*147573) % arenaAlign &^ 63
	base := s.next + color
	span := (Addr(capacity) + color + arenaAlign - 1) &^ (arenaAlign - 1)
	if span == 0 {
		span = arenaAlign
	}
	s.next += span
	a := &Arena{label: label, base: base, limit: base + Addr(capacity)}
	a.next = base
	s.arenas = append(s.arenas, a)
	return a
}

// Arenas returns all arenas in creation order.
func (s *Space) Arenas() []*Arena {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Arena, len(s.arenas))
	copy(out, s.arenas)
	return out
}

// Footprint returns the total allocated (not reserved) bytes across all
// arenas.
func (s *Space) Footprint() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var total uint64
	for _, a := range s.arenas {
		total += a.Used()
	}
	return total
}

// Map returns a human-readable address map, sorted by base address.
func (s *Space) Map() string {
	arenas := s.Arenas()
	sort.Slice(arenas, func(i, j int) bool { return arenas[i].base < arenas[j].base })
	out := ""
	for _, a := range arenas {
		out += fmt.Sprintf("%#012x..%#012x  %8.2f MiB  %s\n",
			uint64(a.base), uint64(a.limit), float64(a.Used())/(1<<20), a.label)
	}
	return out
}

// Arena is a contiguous guest address range with a bump allocator.
type Arena struct {
	label string
	base  Addr
	limit Addr
	next  Addr
}

// Label returns the diagnostic label the arena was created with.
func (a *Arena) Label() string { return a.label }

// Base returns the first address of the arena.
func (a *Arena) Base() Addr { return a.base }

// Used returns the number of bytes allocated so far.
func (a *Arena) Used() uint64 { return uint64(a.next - a.base) }

// Cap returns the reserved capacity in bytes.
func (a *Arena) Cap() uint64 { return uint64(a.limit - a.base) }

// alloc reserves size bytes aligned to align and returns the base
// address. It panics if the arena is exhausted: workload configurations
// size their arenas up front, so exhaustion is a programming error, not a
// runtime condition.
func (a *Arena) alloc(size uint64, align uint64) Addr {
	if align == 0 {
		align = 1
	}
	p := (uint64(a.next) + align - 1) &^ (align - 1)
	if Addr(p)+Addr(size) > a.limit {
		panic(fmt.Sprintf("mem: arena %q exhausted: need %d bytes, have %d",
			a.label, size, uint64(a.limit)-p))
	}
	a.next = Addr(p) + Addr(size)
	return Addr(p)
}

// Float64s allocates a float64 buffer of n elements.
func (a *Arena) Float64s(n int) Float64s {
	base := a.alloc(uint64(n)*8, 8)
	return Float64s{base: base, data: make([]float64, n)}
}

// Float32s allocates a float32 buffer of n elements.
func (a *Arena) Float32s(n int) Float32s {
	base := a.alloc(uint64(n)*4, 4)
	return Float32s{base: base, data: make([]float32, n)}
}

// Int32s allocates an int32 buffer of n elements.
func (a *Arena) Int32s(n int) Int32s {
	base := a.alloc(uint64(n)*4, 4)
	return Int32s{base: base, data: make([]int32, n)}
}

// Int64s allocates an int64 buffer of n elements.
func (a *Arena) Int64s(n int) Int64s {
	base := a.alloc(uint64(n)*8, 8)
	return Int64s{base: base, data: make([]int64, n)}
}

// Bytes allocates a byte buffer of n elements.
func (a *Arena) Bytes(n int) Bytes {
	base := a.alloc(uint64(n), 1)
	return Bytes{base: base, data: make([]byte, n)}
}

// Struct reserves size bytes for an opaque record (e.g. a tree node) and
// returns its guest address. The caller keeps the corresponding Go value
// itself; Struct only assigns it a location in the simulated space.
func (a *Arena) Struct(size uint64) Addr {
	return a.alloc(size, 8)
}

// Float64s is a float64 buffer bound to a guest address range.
type Float64s struct {
	base Addr
	data []float64
}

// Len returns the element count.
func (b Float64s) Len() int { return len(b.data) }

// Base returns the guest address of element 0.
func (b Float64s) Base() Addr { return b.base }

// Addr returns the guest address of element i.
func (b Float64s) Addr(i int) Addr { return b.base + Addr(i)*8 }

// At loads element i, reporting the access to r.
func (b Float64s) At(r Recorder, i int) float64 {
	r.Access(b.base+Addr(i)*8, 8, Load)
	return b.data[i]
}

// Set stores v into element i, reporting the access to r.
func (b Float64s) Set(r Recorder, i int, v float64) {
	r.Access(b.base+Addr(i)*8, 8, Store)
	b.data[i] = v
}

// Raw exposes the backing slice for initialization that should not be
// traced (e.g. dataset loading that the paper's start/stop window would
// exclude anyway).
func (b Float64s) Raw() []float64 { return b.data }

// Slice returns a sub-buffer covering [lo,hi).
func (b Float64s) Slice(lo, hi int) Float64s {
	return Float64s{base: b.base + Addr(lo)*8, data: b.data[lo:hi]}
}

// Float32s is a float32 buffer bound to a guest address range.
type Float32s struct {
	base Addr
	data []float32
}

// Len returns the element count.
func (b Float32s) Len() int { return len(b.data) }

// Base returns the guest address of element 0.
func (b Float32s) Base() Addr { return b.base }

// Addr returns the guest address of element i.
func (b Float32s) Addr(i int) Addr { return b.base + Addr(i)*4 }

// At loads element i, reporting the access to r.
func (b Float32s) At(r Recorder, i int) float32 {
	r.Access(b.base+Addr(i)*4, 4, Load)
	return b.data[i]
}

// Set stores v into element i, reporting the access to r.
func (b Float32s) Set(r Recorder, i int, v float32) {
	r.Access(b.base+Addr(i)*4, 4, Store)
	b.data[i] = v
}

// Raw exposes the backing slice without tracing.
func (b Float32s) Raw() []float32 { return b.data }

// Slice returns a sub-buffer covering [lo,hi).
func (b Float32s) Slice(lo, hi int) Float32s {
	return Float32s{base: b.base + Addr(lo)*4, data: b.data[lo:hi]}
}

// Int32s is an int32 buffer bound to a guest address range.
type Int32s struct {
	base Addr
	data []int32
}

// Len returns the element count.
func (b Int32s) Len() int { return len(b.data) }

// Base returns the guest address of element 0.
func (b Int32s) Base() Addr { return b.base }

// Addr returns the guest address of element i.
func (b Int32s) Addr(i int) Addr { return b.base + Addr(i)*4 }

// At loads element i, reporting the access to r.
func (b Int32s) At(r Recorder, i int) int32 {
	r.Access(b.base+Addr(i)*4, 4, Load)
	return b.data[i]
}

// Set stores v into element i, reporting the access to r.
func (b Int32s) Set(r Recorder, i int, v int32) {
	r.Access(b.base+Addr(i)*4, 4, Store)
	b.data[i] = v
}

// Raw exposes the backing slice without tracing.
func (b Int32s) Raw() []int32 { return b.data }

// Slice returns a sub-buffer covering [lo,hi).
func (b Int32s) Slice(lo, hi int) Int32s {
	return Int32s{base: b.base + Addr(lo)*4, data: b.data[lo:hi]}
}

// Int64s is an int64 buffer bound to a guest address range.
type Int64s struct {
	base Addr
	data []int64
}

// Len returns the element count.
func (b Int64s) Len() int { return len(b.data) }

// Base returns the guest address of element 0.
func (b Int64s) Base() Addr { return b.base }

// Addr returns the guest address of element i.
func (b Int64s) Addr(i int) Addr { return b.base + Addr(i)*8 }

// At loads element i, reporting the access to r.
func (b Int64s) At(r Recorder, i int) int64 {
	r.Access(b.base+Addr(i)*8, 8, Load)
	return b.data[i]
}

// Set stores v into element i, reporting the access to r.
func (b Int64s) Set(r Recorder, i int, v int64) {
	r.Access(b.base+Addr(i)*8, 8, Store)
	b.data[i] = v
}

// Raw exposes the backing slice without tracing.
func (b Int64s) Raw() []int64 { return b.data }

// Bytes is a byte buffer bound to a guest address range.
type Bytes struct {
	base Addr
	data []byte
}

// Len returns the element count.
func (b Bytes) Len() int { return len(b.data) }

// Base returns the guest address of element 0.
func (b Bytes) Base() Addr { return b.base }

// Addr returns the guest address of element i.
func (b Bytes) Addr(i int) Addr { return b.base + Addr(i) }

// At loads element i, reporting the access to r.
func (b Bytes) At(r Recorder, i int) byte {
	r.Access(b.base+Addr(i), 1, Load)
	return b.data[i]
}

// Set stores v into element i, reporting the access to r.
func (b Bytes) Set(r Recorder, i int, v byte) {
	r.Access(b.base+Addr(i), 1, Store)
	b.data[i] = v
}

// Raw exposes the backing slice without tracing.
func (b Bytes) Raw() []byte { return b.data }

// Slice returns a sub-buffer covering [lo,hi).
func (b Bytes) Slice(lo, hi int) Bytes {
	return Bytes{base: b.base + Addr(lo), data: b.data[lo:hi]}
}
