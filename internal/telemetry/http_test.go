package telemetry

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// promLine matches one Prometheus text-format sample or comment line.
var promLine = regexp.MustCompile(
	`^(# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-][0-9]+)?)$`)

func TestHandlerSurfaces(t *testing.T) {
	r := NewRegistry()
	r.Counter("fsb_events_total").Add(77)
	r.Gauge("tracestore_bytes_resident").Set(1024)
	r.Histogram("fsb_batch_occupancy").Observe(4096)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "fsb_events_total 77") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("invalid Prometheus text line: %q", line)
		}
	}

	code, body = get(t, srv, "/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	if _, ok := vars["cosim"]; !ok {
		t.Error("/debug/vars missing the cosim registry var")
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("/debug/vars missing standard expvar memstats")
	}
	var snap Snapshot
	if err := json.Unmarshal(vars["cosim"], &snap); err != nil {
		t.Fatalf("cosim var is not a Snapshot: %v", err)
	}
	if snap.Counters["fsb_events_total"] != 77 {
		t.Errorf("cosim snapshot = %+v", snap)
	}

	code, _ = get(t, srv, "/debug/pprof/cmdline")
	if code != 200 {
		t.Errorf("/debug/pprof/cmdline status %d", code)
	}
	code, body = get(t, srv, "/")
	if code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index page: %d %q", code, body)
	}
	code, _ = get(t, srv, "/nope")
	if code != 404 {
		t.Errorf("unknown path status %d", code)
	}
}
