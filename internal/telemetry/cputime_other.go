//go:build !(linux || darwin)

package telemetry

// processCPUNS is unavailable on this platform; spans report wall time
// only.
func processCPUNS() uint64 { return 0 }
