//go:build linux || darwin

package telemetry

import "syscall"

// processCPUNS returns the process's cumulative CPU time (user +
// system, all threads) in nanoseconds.
func processCPUNS() uint64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return tvNS(ru.Utime) + tvNS(ru.Stime)
}

func tvNS(tv syscall.Timeval) uint64 {
	return uint64(tv.Sec)*1e9 + uint64(tv.Usec)*1e3
}
