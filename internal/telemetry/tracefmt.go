// Span-tree rendering: folded-stack output (one line per stack path,
// flamegraph.pl / speedscope compatible) and a human-readable waterfall
// that shows phase start offsets, durations, and a proportional bar.
// Shared by `cosim trace` and cmd/tracedump.

package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteFolded renders the tree rooted at root as folded stacks: each
// line is "a;b;c <self-wall-ns>", where self time is the span's wall
// time not covered by its non-concurrent children. Concurrent children
// (shard workers) get their own stack lines but do not subtract from
// the parent, since they overlap it.
func WriteFolded(w io.Writer, root *Span) error {
	if root == nil {
		return nil
	}
	var walk func(path string, s *Span) error
	walk = func(path string, s *Span) error {
		if s == nil {
			return nil
		}
		name := strings.ReplaceAll(s.Name, ";", ",")
		if name == "" {
			name = "(unnamed)"
		}
		full := name
		if path != "" {
			full = path + ";" + name
		}
		self := s.WallNS
		for _, c := range s.Children {
			if c == nil || c.Attrs[AttrConcurrent] == "true" {
				continue
			}
			if c.WallNS >= self {
				self = 0
				break
			}
			self -= c.WallNS
		}
		if self > 0 || len(s.Children) == 0 {
			if _, err := fmt.Fprintf(w, "%s %d\n", full, self); err != nil {
				return err
			}
		}
		for _, c := range s.Children {
			if err := walk(full, c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk("", root)
}

// WriteWaterfall renders the tree as an indented timeline: one row per
// span with its offset from the root start (when both carry wall-clock
// anchors), duration, CPU time, a proportional bar, and attributes.
func WriteWaterfall(w io.Writer, root *Span) error {
	if root == nil {
		return nil
	}
	const barWidth = 24
	total := root.WallNS
	if total == 0 {
		total = 1
	}
	var walk func(s *Span, prefix string, last bool) error
	walk = func(s *Span, prefix string, last bool) error {
		if s == nil {
			return nil
		}
		branch, childPrefix := "", ""
		if s != root {
			if last {
				branch, childPrefix = prefix+"└─ ", prefix+"   "
			} else {
				branch, childPrefix = prefix+"├─ ", prefix+"│  "
			}
		}
		off := ""
		if s.StartUnixNS > 0 && root.StartUnixNS > 0 && s.StartUnixNS >= root.StartUnixNS {
			off = fmt.Sprintf(" @+%s", fmtNS(uint64(s.StartUnixNS-root.StartUnixNS)))
		}
		cpu := ""
		if s.CPUNS > 0 {
			cpu = fmt.Sprintf(" cpu=%s", fmtNS(s.CPUNS))
		}
		fill := int(uint64(barWidth) * s.WallNS / total)
		if fill > barWidth {
			fill = barWidth
		}
		if fill == 0 && s.WallNS > 0 {
			fill = 1
		}
		bar := strings.Repeat("█", fill) + strings.Repeat("·", barWidth-fill)
		attrs := ""
		if len(s.Attrs) > 0 {
			keys := make([]string, 0, len(s.Attrs))
			for k := range s.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			parts := make([]string, 0, len(keys))
			for _, k := range keys {
				parts = append(parts, k+"="+s.Attrs[k])
			}
			attrs = "  {" + strings.Join(parts, " ") + "}"
		}
		if _, err := fmt.Fprintf(w, "%-48s %s %10s%s%s%s\n",
			branch+s.Name, bar, fmtNS(s.WallNS), off, cpu, attrs); err != nil {
			return err
		}
		for i, c := range s.Children {
			if err := walk(c, childPrefix, i == len(s.Children)-1); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(root, "", true)
}

// fmtNS renders a nanosecond quantity at a human scale.
func fmtNS(ns uint64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
