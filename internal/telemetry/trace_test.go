package telemetry

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTraceContextRoundTrip(t *testing.T) {
	tr := NewTrace("request")
	if tr.ID == "" || len(tr.ID) != 16 {
		t.Fatalf("trace id = %q, want 16 hex digits", tr.ID)
	}
	if tr.Root == nil || tr.Root.Name != "request" {
		t.Fatalf("root = %+v", tr.Root)
	}
	ctx := ContextWith(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Error("FromContext must return the carried trace")
	}
	if SpanFromContext(ctx) != tr.Root {
		t.Error("SpanFromContext must return the trace root")
	}
	c := tr.Child("queue_wait")
	c.End()
	tr.End()
	if tr.Root.WallNS == 0 || c.WallNS == 0 {
		t.Error("ended trace spans must carry wall time")
	}
	if len(tr.Root.Children) != 1 || tr.Root.Children[0] != c {
		t.Errorf("children = %+v", tr.Root.Children)
	}
	// Distinct traces get distinct IDs.
	if NewTrace("x").ID == tr.ID {
		t.Error("two traces shared an ID")
	}
}

func TestNilTraceIsFree(t *testing.T) {
	var tr *Trace
	if sp := tr.Child("x"); sp != nil {
		t.Error("nil trace must hand out nil spans")
	}
	tr.End()
	ctx := ContextWith(context.Background(), tr)
	if FromContext(ctx) != nil || SpanFromContext(ctx) != nil {
		t.Error("a carried nil trace must read back as nil")
	}
	if FromContext(context.Background()) != nil {
		t.Error("an unadorned context must carry no trace")
	}
}

// TestDisabledTracingAllocatesNothing pins the disabled-path contract:
// every per-event operation on nil handles is allocation-free, so a
// server run without tracing pays nothing on the hot path.
func TestDisabledTracingAllocatesNothing(t *testing.T) {
	var tr *Trace
	var sp *Span
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		c := tr.Child("queue_wait")
		c.SetAttr("k", "v")
		c.End()
		g := sp.StartChild("capture")
		g.AddTimedChild("shard0", 0, 5)
		g.End()
		_ = sp.Find("x")
		_ = sp.SerialChildSum()
		_ = FromContext(ctx)
		_ = SpanFromContext(ctx)
		tr.End()
	}); n != 0 {
		t.Fatalf("disabled tracing allocated %.1f times per op, want 0", n)
	}
}

func TestSpanFindAndSerialChildSum(t *testing.T) {
	root := &Span{Name: "request", WallNS: 100}
	root.AddTimedChild("queue_wait", 0, 30)
	sweep := root.AddTimedChild("plansweep/SNP", 0, 60)
	store := sweep.AddTimedChild("store", 0, 50)
	store.AddTimedChild("capture", 0, 45)
	shards := sweep.AddTimedChild("shards", 0, 40)
	shards.SetAttr(AttrConcurrent, "true")
	if got := root.SerialChildSum(); got != 90 {
		t.Errorf("SerialChildSum = %d, want 90", got)
	}
	// The concurrent shards group must not count toward the sweep's sum.
	if got := sweep.SerialChildSum(); got != 50 {
		t.Errorf("sweep SerialChildSum = %d, want 50 (concurrent skipped)", got)
	}
	if f := root.Find("capture"); f == nil || f.WallNS != 45 {
		t.Errorf("Find(capture) = %+v", f)
	}
	if root.Find("nope") != nil {
		t.Error("Find must return nil for absent names")
	}
	// AddTimedChild clamps a zero duration to the measurable minimum.
	if z := root.AddTimedChild("zero", 0, 0); z.WallNS != 1 {
		t.Errorf("zero-duration timed child WallNS = %d, want 1", z.WallNS)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	// 90 fast observations and 10 slow ones: p50 lands in the fast
	// bucket, p99 in the slow one. Pow2 buckets give upper bounds.
	for i := 0; i < 90; i++ {
		h.Observe(100) // bucket le 127
	}
	for i := 0; i < 10; i++ {
		h.Observe(5000) // bucket le 8191
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.Quantile(0.50); got != 127 {
		t.Errorf("p50 = %d, want 127", got)
	}
	if got := s.Quantile(0.99); got != 8191 {
		t.Errorf("p99 = %d, want 8191", got)
	}
	// Degenerate and clamped inputs.
	if got := s.Quantile(0); got != 127 {
		t.Errorf("q=0 = %d, want first bucket bound", got)
	}
	if got := s.Quantile(2); got != 8191 {
		t.Errorf("q>1 = %d, want last bucket bound", got)
	}
	var empty HistSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d, want 0", got)
	}
	var nilH *Histogram
	if s := nilH.Snapshot(); s.Count != 0 {
		t.Error("nil histogram snapshot must be empty")
	}
}

func TestManifestRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.jsonl")
	// Entry-bounded: rotate after every 2 manifests.
	mw, err := OpenManifestFileLimits(path, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := mw.Emit(&Manifest{Kind: "run", Seed: int64(i)}); err != nil {
			t.Fatalf("emit %d: %v", i, err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	if got := mw.Rotations(); got != 2 {
		t.Errorf("rotations = %d, want 2", got)
	}
	if mw.Count() != 5 {
		t.Errorf("count = %d, want 5", mw.Count())
	}
	active, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rotated, err := os.ReadFile(path + ".1")
	if err != nil {
		t.Fatalf("rotated generation missing: %v", err)
	}
	// 5 entries at 2/file: generations hold [0,1] [2,3] [4]; the live
	// file has the newest single entry, the .1 file the previous pair.
	if n := strings.Count(string(active), "\n"); n != 1 {
		t.Errorf("active file has %d lines, want 1", n)
	}
	if n := strings.Count(string(rotated), "\n"); n != 2 {
		t.Errorf("rotated file has %d lines, want 2", n)
	}
}

func TestManifestRotationBySize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.jsonl")
	mw, err := OpenManifestFileLimits(path, 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := mw.Emit(&Manifest{Kind: "run"}); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()
	if mw.Rotations() == 0 {
		t.Error("size bound never triggered a rotation")
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Errorf("rotated file missing: %v", err)
	}
	// Re-opening an existing file picks up its size so the bound holds
	// across restarts.
	mw2, err := OpenManifestFileLimits(path, 300, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer mw2.Close()
	if mw2.fileBytes == 0 {
		t.Error("reopened writer must account for existing bytes")
	}
}

func TestWriteFolded(t *testing.T) {
	root := &Span{Name: "request", WallNS: 100}
	root.AddTimedChild("queue_wait", 0, 30)
	sweep := root.AddTimedChild("plansweep;SNP", 0, 60) // semicolon must escape
	shards := sweep.AddTimedChild("shards", 0, 55)
	shards.SetAttr(AttrConcurrent, "true")
	var sb strings.Builder
	if err := WriteFolded(&sb, root); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"request 10\n",            // 100 - 30 - 60 self
		"request;queue_wait 30\n", // leaf keeps its full time
		"request;plansweep,SNP 60\n",
		"request;plansweep,SNP;shards 55\n", // concurrent child still gets a line
	} {
		if !strings.Contains(out, want) {
			t.Errorf("folded output missing %q:\n%s", want, out)
		}
	}
	if err := WriteFolded(&sb, nil); err != nil {
		t.Errorf("nil root must be a no-op: %v", err)
	}
}

func TestWriteWaterfall(t *testing.T) {
	root := &Span{Name: "request", WallNS: 2_000_000, StartUnixNS: 1_000}
	c := root.AddTimedChild("queue_wait", 1_500, 500_000)
	c.SetAttr("tenant", "alice")
	var sb strings.Builder
	if err := WriteWaterfall(&sb, root); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"request", "└─ queue_wait", "2.00ms", "@+500ns", "{tenant=alice}"} {
		if !strings.Contains(out, want) {
			t.Errorf("waterfall missing %q:\n%s", want, out)
		}
	}
	if err := WriteWaterfall(&sb, nil); err != nil {
		t.Errorf("nil root must be a no-op: %v", err)
	}
}
