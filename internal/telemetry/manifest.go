// Machine-readable run manifests: one JSON object per experiment run,
// appended to a JSONL stream. A manifest records everything needed to
// regenerate or audit a BENCH_*.json entry — workload, parameters,
// platform, seed, git revision, wall/CPU time, the span tree, the
// execution-side totals, per-LLC results, and a counter snapshot — so
// benchmark records become generated output instead of hand-edited
// files.

package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// RunTotals mirrors the execution-side totals of a run (core.RunSummary
// without the import cycle). Fields are bit-exact integers: a manifest's
// totals must match the RunSummary the caller received.
type RunTotals struct {
	Instructions uint64 `json:"instructions"`
	Loads        uint64 `json:"loads"`
	Stores       uint64 `json:"stores"`
	BusEvents    uint64 `json:"bus_events"`
}

// LLCRecord is one emulated LLC configuration's outcome.
type LLCRecord struct {
	Name      string  `json:"name"`
	SizeBytes uint64  `json:"size_bytes"`
	LineSize  uint64  `json:"line_size"`
	Assoc     int     `json:"assoc"`
	Accesses  uint64  `json:"accesses"`
	Misses    uint64  `json:"misses"`
	MPKI      float64 `json:"mpki"`
	Samples   int     `json:"cb_samples"`
}

// Manifest is one run record. Emit stamps Time, GitRev, GoVersion,
// Host, and the counter snapshot; callers fill the rest.
type Manifest struct {
	Time     string  `json:"time"`
	Kind     string  `json:"kind"`
	Workload string  `json:"workload,omitempty"`
	Threads  int     `json:"threads,omitempty"`
	Seed     int64   `json:"seed"`
	Scale    float64 `json:"scale,omitempty"`
	Quantum  uint64  `json:"quantum,omitempty"`

	GitRev    string `json:"git_rev,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	Host      string `json:"host,omitempty"`

	DurationNS uint64 `json:"duration_ns"`

	Summary *RunTotals  `json:"summary,omitempty"`
	LLCs    []LLCRecord `json:"llcs,omitempty"`
	// Hier carries timing-hierarchy scalars (ipc, cycles, ...) for
	// RunHier manifests.
	Hier map[string]float64 `json:"hier,omitempty"`

	// Request-scoped manifests (kind "request", emitted by cosimd per
	// completed job) carry the correlation triple below.
	Tenant  string `json:"tenant,omitempty"`
	Job     string `json:"job,omitempty"`
	TraceID string `json:"trace_id,omitempty"`

	Trace    *Span     `json:"trace,omitempty"`
	Counters *Snapshot `json:"telemetry,omitempty"`
}

// ManifestWriter appends manifests to one JSONL stream. Safe for
// concurrent use (the parallel exhibit runners emit from pool workers).
//
// File-backed writers opened with rotation limits keep the stream
// bounded under a long-lived cosimd: when the active file would exceed
// maxBytes or maxEntries, it is renamed to path+".1" (replacing the
// previous generation) and a fresh file is started, so disk usage is
// capped at roughly twice the configured size.
type ManifestWriter struct {
	mu sync.Mutex
	w  io.Writer
	c  io.Closer // non-nil when the writer owns the file

	n uint64 // manifests written over the writer's lifetime

	// rotation state (file-backed writers with limits only)
	path       string
	maxBytes   uint64
	maxEntries uint64
	fileBytes  uint64 // bytes in the active file
	fileCount  uint64 // entries in the active file
	rotations  uint64
}

// NewManifestWriter wraps an existing stream.
func NewManifestWriter(w io.Writer) *ManifestWriter { return &ManifestWriter{w: w} }

// OpenManifestFile opens (or creates) path for appending and returns a
// writer that owns the file; Close releases it. The stream is unbounded
// — see OpenManifestFileLimits for rotation.
func OpenManifestFile(path string) (*ManifestWriter, error) {
	return OpenManifestFileLimits(path, 0, 0)
}

// OpenManifestFileLimits opens path for appending with rotation bounds:
// the active file is rotated to path+".1" before a write that would
// push it past maxBytes bytes or maxEntries entries. A zero limit means
// unlimited on that axis.
func OpenManifestFileLimits(path string, maxBytes, maxEntries uint64) (*ManifestWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	mw := &ManifestWriter{w: f, c: f, path: path, maxBytes: maxBytes, maxEntries: maxEntries}
	if st, err := f.Stat(); err == nil {
		mw.fileBytes = uint64(st.Size())
	}
	return mw, nil
}

// rotateLocked swaps the active file for a fresh one. Called with mu
// held; a rotation failure is returned to the caller of Emit and the
// writer keeps appending to the old file (degraded, not broken).
func (mw *ManifestWriter) rotateLocked() error {
	f, ok := mw.c.(*os.File)
	if !ok {
		return nil
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(mw.path, mw.path+".1"); err != nil {
		// Reopen the original so the stream keeps working.
		if re, rerr := os.OpenFile(mw.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); rerr == nil {
			mw.w, mw.c = re, re
		}
		return err
	}
	nf, err := os.OpenFile(mw.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	mw.w, mw.c = nf, nf
	mw.fileBytes, mw.fileCount = 0, 0
	mw.rotations++
	return nil
}

// Emit stamps and appends one manifest line. Nil-safe: a nil writer
// drops the manifest.
func (mw *ManifestWriter) Emit(m *Manifest) error {
	if mw == nil || m == nil {
		return nil
	}
	if m.Time == "" {
		m.Time = time.Now().UTC().Format(time.RFC3339Nano)
	}
	if m.GitRev == "" {
		m.GitRev = GitRev()
	}
	if m.GoVersion == "" {
		m.GoVersion = runtime.Version()
	}
	if m.Host == "" {
		m.Host = runtime.GOOS + "/" + runtime.GOARCH
	}
	line, err := json.Marshal(m)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	mw.mu.Lock()
	defer mw.mu.Unlock()
	if mw.path != "" && mw.fileCount > 0 &&
		((mw.maxBytes > 0 && mw.fileBytes+uint64(len(line)) > mw.maxBytes) ||
			(mw.maxEntries > 0 && mw.fileCount >= mw.maxEntries)) {
		if err := mw.rotateLocked(); err != nil {
			return err
		}
	}
	if _, err := mw.w.Write(line); err != nil {
		return err
	}
	mw.n++
	mw.fileBytes += uint64(len(line))
	mw.fileCount++
	return nil
}

// Count returns how many manifests have been written.
func (mw *ManifestWriter) Count() uint64 {
	if mw == nil {
		return 0
	}
	mw.mu.Lock()
	defer mw.mu.Unlock()
	return mw.n
}

// Rotations returns how many times the active file has been rotated.
func (mw *ManifestWriter) Rotations() uint64 {
	if mw == nil {
		return 0
	}
	mw.mu.Lock()
	defer mw.mu.Unlock()
	return mw.rotations
}

// Close releases the underlying file when the writer owns one.
func (mw *ManifestWriter) Close() error {
	if mw == nil || mw.c == nil {
		return nil
	}
	return mw.c.Close()
}

// gitRevOnce caches the build-info VCS revision lookup.
var gitRevOnce = sync.OnceValue(func() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev == "" {
		return ""
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + dirty
})

// GitRev returns the VCS revision baked into the binary ("" when built
// without VCS stamping, e.g. under `go test`).
func GitRev() string { return gitRevOnce() }
