// Span-style run tracing: every experiment run gets a tree of timed
// phases (capture → fan-out → snoop → collect) that lands in the run
// manifest, so "where did those four minutes go" has a recorded answer.

package telemetry

import (
	"sync"
	"time"
)

// Span is one timed phase of a run. Spans form a tree; children may be
// started from concurrent goroutines (the parallel exhibit runners).
// All methods are nil-safe: a nil span (telemetry disabled) produces
// nil children and free no-op Ends.
type Span struct {
	Name string `json:"name"`
	// WallNS is the wall-clock duration; CPUNS is the process CPU time
	// consumed while the span was open (user+system, all goroutines —
	// an upper bound for concurrent spans, exact for serial ones).
	WallNS   uint64            `json:"wall_ns"`
	CPUNS    uint64            `json:"cpu_ns,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*Span           `json:"children,omitempty"`

	start    time.Time
	cpuStart uint64
	mu       sync.Mutex
}

// StartSpan opens a root span.
func StartSpan(name string) *Span {
	return &Span{Name: name, start: time.Now(), cpuStart: processCPUNS()}
}

// StartChild opens a child span under s. Safe to call from multiple
// goroutines on the same parent.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := StartSpan(name)
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// End seals the span's timings. End is idempotent — the first call
// wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.WallNS == 0 {
		s.WallNS = uint64(time.Since(s.start))
		if s.WallNS == 0 {
			s.WallNS = 1 // a measured span is never exactly free
		}
		if cpu := processCPUNS(); cpu > s.cpuStart {
			s.CPUNS = cpu - s.cpuStart
		}
	}
}

// SetAttr records one key/value annotation on the span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]string)
	}
	s.Attrs[k] = v
}
