// Span-style run tracing: every experiment run gets a tree of timed
// phases (capture → fan-out → snoop → collect) that lands in the run
// manifest, so "where did those four minutes go" has a recorded answer.

package telemetry

import (
	"sync"
	"time"
)

// Span is one timed phase of a run. Spans form a tree; children may be
// started from concurrent goroutines (the parallel exhibit runners).
// All methods are nil-safe: a nil span (telemetry disabled) produces
// nil children and free no-op Ends.
type Span struct {
	Name string `json:"name"`
	// StartUnixNS anchors the span on the wall clock (Unix nanos), so a
	// rendered waterfall can show when each phase began relative to the
	// root, not just how long it ran.
	StartUnixNS int64 `json:"start_unix_ns,omitempty"`
	// WallNS is the wall-clock duration; CPUNS is the process CPU time
	// consumed while the span was open (user+system, all goroutines —
	// an upper bound for concurrent spans, exact for serial ones).
	WallNS   uint64            `json:"wall_ns"`
	CPUNS    uint64            `json:"cpu_ns,omitempty"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*Span           `json:"children,omitempty"`

	start    time.Time
	cpuStart uint64
	mu       sync.Mutex
}

// StartSpan opens a root span.
func StartSpan(name string) *Span {
	now := time.Now()
	return &Span{Name: name, StartUnixNS: now.UnixNano(), start: now, cpuStart: processCPUNS()}
}

// StartChild opens a child span under s. Safe to call from multiple
// goroutines on the same parent.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := StartSpan(name)
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// End seals the span's timings. End is idempotent — the first call
// wins.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.WallNS == 0 {
		s.WallNS = uint64(time.Since(s.start))
		if s.WallNS == 0 {
			s.WallNS = 1 // a measured span is never exactly free
		}
		if cpu := processCPUNS(); cpu > s.cpuStart {
			s.CPUNS = cpu - s.cpuStart
		}
	}
}

// SetAttr records one key/value annotation on the span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Attrs == nil {
		s.Attrs = make(map[string]string)
	}
	s.Attrs[k] = v
}

// AttrConcurrent marks spans that overlap their siblings in wall time
// (shard workers, pool goroutines). Reconciliation sums skip them:
// their duration is already covered by the enclosing serial phase.
const AttrConcurrent = "concurrent"

// AddTimedChild attaches an already-measured child span — a phase whose
// duration was accumulated out-of-band (per-shard busy time summed in
// the worker loop) and only becomes attachable after the fact. The
// child arrives sealed; startUnixNS may be zero when unknown.
func (s *Span) AddTimedChild(name string, startUnixNS int64, wallNS uint64) *Span {
	if s == nil {
		return nil
	}
	if wallNS == 0 {
		wallNS = 1
	}
	c := &Span{Name: name, StartUnixNS: startUnixNS, WallNS: wallNS}
	s.mu.Lock()
	s.Children = append(s.Children, c)
	s.mu.Unlock()
	return c
}

// Find returns the first span named name in a depth-first walk of the
// tree rooted at s (including s itself), or nil. Intended for sealed
// or decoded trees; it does not lock.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	if s.Name == name {
		return s
	}
	for _, c := range s.Children {
		if m := c.Find(name); m != nil {
			return m
		}
	}
	return nil
}

// SerialChildSum sums the wall time of s's direct children, skipping
// spans marked AttrConcurrent — the quantity that should reconcile
// against s.WallNS when the children partition the parent's timeline.
func (s *Span) SerialChildSum() uint64 {
	if s == nil {
		return 0
	}
	var sum uint64
	for _, c := range s.Children {
		if c == nil || c.Attrs[AttrConcurrent] == "true" {
			continue
		}
		sum += c.WallNS
	}
	return sum
}
