// Package telemetry is the observability substrate of the co-simulation
// toolkit: a lock-free counter/gauge/histogram registry the simulator's
// packages register into, span-style run tracing, machine-readable run
// manifests (JSONL), and an HTTP surface serving expvar-compatible
// JSON, Prometheus text format, and net/http/pprof.
//
// The paper's Dragonhead board is itself an observability instrument —
// a CB block samples cache counters every 500 µs and the measurement
// series is the contribution. This package applies the same idea to the
// simulator itself, so multi-minute sweeps stop running dark.
//
// Design rules:
//
//   - Disabled is free. Every handle type (*Counter, *Gauge,
//     *Histogram, *Span, *Sink, *Progress) is nil-safe: a nil receiver
//     is a no-op, so instrumented code pays one predictable branch when
//     telemetry is off. A nil *Registry hands out nil handles.
//   - Enabled is lock-free on the write path. Counters stripe their
//     value across per-goroutine-affine cache-line-padded atomic cells
//     and merge on read, so concurrent writers (the batched bus's
//     per-snooper workers, the parallel exhibit runners) never contend
//     on one cache line.
//   - Hot loops stay untouched. Instrumented packages push counter
//     deltas at natural batch boundaries (a DEX slice, a bus batch, a
//     CB sample), never per memory reference.
package telemetry

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// shardCount is the number of striped cells per counter: the smallest
// power of two covering GOMAXPROCS at package init, capped so huge
// hosts do not bloat every counter.
var shardCount = func() uint32 {
	n := runtime.GOMAXPROCS(0)
	c := uint32(1)
	for c < uint32(n) {
		c <<= 1
	}
	if c > 64 {
		c = 64
	}
	return c
}()

// cell is one padded counter stripe. The padding keeps two stripes from
// sharing a cache line, which would re-serialize concurrent writers.
type cell struct {
	n atomic.Uint64
	_ [56]byte
}

// shardHint returns a cheap goroutine-affine stripe index: goroutine
// stacks live in distinct address regions, so hashing the address of a
// stack local spreads goroutines across stripes without any runtime
// support or goroutine-local storage. Any index is correct — the hint
// only shapes contention, never the merged value.
func shardHint() uint32 {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	return uint32((uint64(p>>10) * 0x9E3779B97F4A7C15) >> 33)
}

// Counter is a monotonically increasing metric. The zero of a nil
// pointer is a no-op handle.
type Counter struct {
	name  string
	cells []cell
	mask  uint32
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.cells[shardHint()&c.mask].n.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value merges the stripes into the current total.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.cells {
		total += c.cells[i].n.Load()
	}
	return total
}

// Name returns the registered name ("" for a nil handle).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Gauge is a set-to-current-value metric (bytes resident, queue depth).
type Gauge struct {
	name string
	v    atomic.Int64
}

// Set stores the current value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the value by d (d may be negative).
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count of the power-of-two histogram:
// bucket i counts observations v with bits.Len64(v) == i, i.e.
// v in [2^(i-1), 2^i); bucket 0 counts v == 0.
const histBuckets = 65

// Histogram is a power-of-two-bucketed distribution (batch occupancy,
// queue depth). Observations are low-frequency (per batch, not per
// event), so buckets are plain atomics without striping.
type Histogram struct {
	name    string
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bitLen(v)].Add(1)
}

// bitLen is bits.Len64 without the import (and a named anchor for the
// bucket rule above).
func bitLen(v uint64) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}

// HistBucket is one non-empty histogram bucket: Count observations were
// <= UpperBound (per-bucket, not cumulative).
type HistBucket struct {
	UpperBound uint64 `json:"le"`
	Count      uint64 `json:"count"`
}

// HistSnapshot is a point-in-time histogram reading.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot captures a point-in-time reading of the histogram. A nil
// handle yields an empty snapshot.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	return h.snapshot()
}

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0,1]) from the power-of-two buckets: the bound of the first bucket
// whose cumulative count reaches ceil(q·Count). Precision is a factor
// of two by construction — right for "is p99 queue wait milliseconds
// or seconds", not for microsecond-exact SLO math.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	f := q * float64(s.Count)
	target := uint64(f)
	if float64(target) < f || target == 0 {
		target++ // ceil, and at least one observation
	}
	if target > s.Count {
		target = s.Count
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= target {
			return b.UpperBound
		}
	}
	return s.Buckets[len(s.Buckets)-1].UpperBound
}

// snapshot captures the histogram. Buckets include only non-empty bins.
func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := 0; i < histBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			ub := uint64(0)
			if i > 0 {
				ub = (uint64(1) << uint(i)) - 1
			}
			s.Buckets = append(s.Buckets, HistBucket{UpperBound: ub, Count: n})
		}
	}
	return s
}

// Registry is a named-metric registry. Registration takes a mutex
// (construction-time only); metric writes are lock-free. A nil registry
// hands out nil (no-op) handles, which is the disabled fast path.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name, cells: make([]cell, shardCount), mask: shardCount - 1}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h := &Histogram{name: name}
	r.histograms[name] = h
	return h
}

// Snapshot is a point-in-time reading of every registered metric.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot merges every metric. Counter totals are a sum of stripes
// read without a global barrier: each read is atomic, so a snapshot
// taken mid-run is approximately-now and never torn within a stripe.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// sortedKeys returns the sorted metric names of one kind (deterministic
// rendering for /metrics and tests).
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// defaultReg is the process-wide registry handed to packages that
// resolve their counters at construction time. It stays nil — the free
// path — until Enable or SetDefault.
var defaultReg atomic.Pointer[Registry]

// Default returns the process-wide registry, or nil when telemetry has
// not been enabled.
func Default() *Registry { return defaultReg.Load() }

// SetDefault installs r as the process-wide registry (nil disables).
func SetDefault(r *Registry) { defaultReg.Store(r) }

// Enable installs (once) and returns the process-wide registry. Calling
// it again returns the same registry, so counters accumulate across
// invocations in one process.
func Enable() *Registry {
	for {
		if r := defaultReg.Load(); r != nil {
			return r
		}
		r := NewRegistry()
		if defaultReg.CompareAndSwap(nil, r) {
			return r
		}
	}
}
