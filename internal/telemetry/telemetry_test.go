package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	if r.Counter("x_total") != c {
		t.Error("same name must return the same counter")
	}
	if c.Name() != "x_total" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestNilHandlesAreFree(t *testing.T) {
	var r *Registry
	c := r.Counter("a")
	g := r.Gauge("b")
	h := r.Histogram("c")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	// All no-ops, no panics.
	c.Inc()
	c.Add(7)
	g.Set(1)
	g.Add(-1)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 || c.Name() != "" {
		t.Error("nil handles must read as zero")
	}
	snap := r.Snapshot()
	if snap.Counters != nil {
		t.Error("nil registry snapshot must be empty")
	}
	var s *Span
	child := s.StartChild("x")
	if child != nil {
		t.Error("nil span must produce nil children")
	}
	child.End()
	child.SetAttr("k", "v")
	var sink *Sink
	if sink.Registry() != nil || sink.StartSpan("x") != nil {
		t.Error("nil sink must hand out nils")
	}
	if err := sink.Emit(&Manifest{}); err != nil {
		t.Error("nil sink Emit must be a no-op")
	}
	sink.Expect(3)
	sink.Stepf("ignored")
	var p *Progress
	p.Expect(1)
	p.Stepf("ignored")
	var mw *ManifestWriter
	if err := mw.Emit(&Manifest{}); err != nil || mw.Count() != 0 || mw.Close() != nil {
		t.Error("nil manifest writer must be a no-op")
	}
}

// The counter's merged total must be exact under concurrent writers —
// the stripes only shape contention.
func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("concurrent_total")
	const workers, per = 16, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value = %d, want %d", got, workers*per)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("resident_bytes")
	g.Set(100)
	g.Add(-30)
	if g.Value() != 70 {
		t.Fatalf("Value = %d", g.Value())
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("batch_occupancy")
	for _, v := range []uint64{0, 1, 2, 3, 4, 1024} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 6 || s.Sum != 1034 {
		t.Fatalf("snapshot = %+v", s)
	}
	// v=0 -> le 0; v=1 -> le 1; v=2,3 -> le 3; v=4 -> le 7; 1024 -> le 2047.
	want := []HistBucket{{0, 1}, {1, 1}, {3, 2}, {7, 1}, {2047, 1}}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Errorf("bucket %d = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
}

func TestSnapshotAndPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("events_total").Add(5)
	r.Gauge("depth").Set(-2)
	r.Histogram("occ").Observe(3)
	snap := r.Snapshot()
	if snap.Counters["events_total"] != 5 || snap.Gauges["depth"] != -2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	var buf bytes.Buffer
	WritePrometheus(&buf, r)
	out := buf.String()
	for _, want := range []string{
		"# TYPE events_total counter\nevents_total 5\n",
		"# TYPE depth gauge\ndepth -2\n",
		"# TYPE occ histogram\n",
		"occ_bucket{le=\"+Inf\"} 1\n",
		"occ_sum 3\n",
		"occ_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q in:\n%s", want, out)
		}
	}
	// Nil registry renders nothing.
	buf.Reset()
	WritePrometheus(&buf, nil)
	if buf.Len() != 0 {
		t.Error("nil registry must render empty")
	}
}

func TestPromName(t *testing.T) {
	if got := promName("fsb.batch occupancy/1"); got != "fsb_batch_occupancy_1" {
		t.Errorf("promName = %q", got)
	}
	if got := promName("0abc"); got != "_abc" {
		t.Errorf("leading digit must sanitize, got %q", got)
	}
}

func TestSpanTree(t *testing.T) {
	root := StartSpan("run")
	a := root.StartChild("capture")
	a.SetAttr("workload", "FIMI")
	a.End()
	b := root.StartChild("replay")
	b.End()
	b.End() // idempotent
	wall := b.WallNS
	root.End()
	if b.WallNS != wall {
		t.Error("second End must not re-measure")
	}
	if len(root.Children) != 2 || root.Children[0].Name != "capture" {
		t.Fatalf("children = %+v", root.Children)
	}
	if root.WallNS == 0 || a.WallNS == 0 {
		t.Error("ended spans must have non-zero wall time")
	}
	if a.Attrs["workload"] != "FIMI" {
		t.Error("attr lost")
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	root := StartSpan("sweep")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			root.StartChild("w").End()
		}()
	}
	wg.Wait()
	root.End()
	if len(root.Children) != 32 {
		t.Fatalf("children = %d, want 32", len(root.Children))
	}
}

func TestManifestWriter(t *testing.T) {
	var buf bytes.Buffer
	mw := NewManifestWriter(&buf)
	m := &Manifest{Kind: "llcsweep", Workload: "FIMI", Seed: 1,
		Summary: &RunTotals{Instructions: 123, BusEvents: 456}}
	if err := mw.Emit(m); err != nil {
		t.Fatal(err)
	}
	if mw.Count() != 1 {
		t.Fatalf("Count = %d", mw.Count())
	}
	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("manifest must be one JSONL line: %q", line)
	}
	var back Manifest
	if err := json.Unmarshal([]byte(line), &back); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if back.Workload != "FIMI" || back.Summary.Instructions != 123 {
		t.Errorf("round trip = %+v", back)
	}
	if back.Time == "" || back.GoVersion == "" || back.Host == "" {
		t.Error("Emit must stamp time/go_version/host")
	}
}

func TestSinkEmitAttachesSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(9)
	var buf bytes.Buffer
	s := NewSink(r, NewManifestWriter(&buf), nil)
	if err := s.Emit(&Manifest{Kind: "run"}); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters == nil || back.Counters.Counters["c_total"] != 9 {
		t.Errorf("snapshot not attached: %+v", back.Counters)
	}
}

func TestProgress(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(&buf)
	p.Expect(2)
	p.Stepf("fimi llc=%s", "16MB")
	p.Stepf("mds llc=%s", "16MB")
	out := buf.String()
	if !strings.Contains(out, "[1/2] fimi llc=16MB\n") ||
		!strings.Contains(out, "[2/2] mds llc=16MB\n") {
		t.Errorf("progress output:\n%s", out)
	}
	var unTotaled bytes.Buffer
	q := NewProgress(&unTotaled)
	q.Stepf("x")
	if !strings.Contains(unTotaled.String(), "[1] x\n") {
		t.Errorf("unknown total must render [k]: %q", unTotaled.String())
	}
}

func TestEnableIdempotent(t *testing.T) {
	// Do not disturb other tests: restore whatever was installed.
	prev := Default()
	defer SetDefault(prev)
	SetDefault(nil)
	a := Enable()
	b := Enable()
	if a == nil || a != b {
		t.Fatal("Enable must return one process-wide registry")
	}
	if Default() != a {
		t.Fatal("Enable must install the default registry")
	}
}

// BenchmarkCounterDisabled measures the disabled fast path: a nil
// counter must cost a branch, allocate nothing, and be immeasurably
// cheap next to any simulator work.
func BenchmarkCounterDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("off")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkCounterEnabled measures the single-goroutine enabled path.
func BenchmarkCounterEnabled(b *testing.B) {
	c := NewRegistry().Counter("on")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
	if c.Value() != uint64(b.N) {
		b.Fatal("merged total wrong")
	}
}

// BenchmarkCounterParallel measures contention across goroutines — the
// case the striping exists for.
func BenchmarkCounterParallel(b *testing.B) {
	c := NewRegistry().Counter("par")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}
