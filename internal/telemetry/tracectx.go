// Request-scoped trace propagation: a Trace binds a process-unique
// trace ID to a root span and rides a context.Context from the HTTP
// edge (cosimd's handlers) down through admission, execution, and the
// shard workers, so every phase a request touches lands in one tree.
//
// Like every other handle in this package, a nil *Trace is a valid
// disabled instrument: all methods no-op, Child returns nil spans, and
// FromContext on an unadorned context returns nil.

package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
)

// Trace is one request-scoped trace: an ID (for log/manifest
// correlation) plus the root span of the tree.
type Trace struct {
	ID   string `json:"id"`
	Root *Span  `json:"root"`
}

// NewTrace opens a trace with a fresh ID and a running root span.
func NewTrace(rootName string) *Trace {
	return &Trace{ID: NewTraceID(), Root: StartSpan(rootName)}
}

// NewTraceID returns a 16-hex-digit random trace identifier.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unheard of; degrade to a fixed
		// sentinel rather than plumbing an error through every caller.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Child opens a child span under the trace root ("" name is the
// caller's bug, not ours). Nil-safe.
func (t *Trace) Child(name string) *Span {
	if t == nil {
		return nil
	}
	return t.Root.StartChild(name)
}

// End seals the root span.
func (t *Trace) End() {
	if t == nil {
		return
	}
	t.Root.End()
}

// ctxKey is the private context key type for trace carriage.
type ctxKey struct{}

// ContextWith returns a context carrying t. A nil t is carried as-is,
// so the disabled path composes: FromContext then returns nil.
func ContextWith(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// SpanFromContext returns the root span of the trace carried by ctx,
// or nil — the handle instrumented code hangs children from.
func SpanFromContext(ctx context.Context) *Span {
	return FromContext(ctx).rootOrNil()
}

// rootOrNil is the nil-safe root accessor.
func (t *Trace) rootOrNil() *Span {
	if t == nil {
		return nil
	}
	return t.Root
}
