// Live HTTP surface: the -metrics-addr endpoint of cmd/cosim.
//
//	/metrics       Prometheus text exposition format
//	/debug/vars    expvar-compatible JSON (all published vars, incl.
//	               cmdline/memstats plus the "cosim" registry snapshot)
//	/debug/pprof/  the standard net/http/pprof profiles
//
// The handlers read the registry through Snapshot, so scraping a live
// sweep is lock-free with respect to the writers.

package telemetry

import (
	"context"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"
)

// Drain gracefully shuts srv down: it stops accepting connections and
// waits up to timeout for in-flight requests — an active /metrics
// scrape, a streaming SSE client — to complete before force-closing
// whatever remains. A signal handler that calls Drain instead of
// exiting keeps a mid-scrape Prometheus collector from recording a
// truncated exposition.
func Drain(srv *http.Server, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
		return err
	}
	return nil
}

// expvarOnce guards expvar.Publish, which panics on duplicate names;
// tests and repeated CLI invocations share one process.
var expvarOnce sync.Once

// PublishExpvar exposes the registry under the expvar var "cosim". The
// closure reads through Default-or-r at call time, so the first
// registry published stays live even if called again.
func PublishExpvar(r *Registry) {
	expvarOnce.Do(func() {
		expvar.Publish("cosim", expvar.Func(func() any { return r.Snapshot() }))
	})
}

// Handler serves the full observability surface for r.
func Handler(r *Registry) http.Handler {
	PublishExpvar(r)
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, r)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintln(w, "cosim telemetry: /metrics /debug/vars /debug/pprof/")
	})
	return mux
}

// promName sanitizes a metric name to the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format, names sorted for deterministic output.
// Histograms render with cumulative le buckets, _sum, and _count.
func WritePrometheus(w io.Writer, r *Registry) {
	if r == nil {
		return
	}
	snap := r.Snapshot()
	for _, name := range sortedKeys(snap.Counters) {
		n := promName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, snap.Counters[name])
	}
	for _, name := range sortedKeys(snap.Gauges) {
		n := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, snap.Gauges[name])
	}
	for _, name := range sortedKeys(snap.Histograms) {
		n := promName(name)
		h := snap.Histograms[name]
		fmt.Fprintf(w, "# TYPE %s histogram\n", n)
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, b.UpperBound, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n", n, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", n, h.Count)
	}
}
