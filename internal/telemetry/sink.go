// Sink bundles the three output channels of an instrumented session —
// the metric registry, the manifest stream, and the live progress line —
// behind one nil-safe handle that the experiment runners thread through
// their option set.

package telemetry

import (
	"fmt"
	"io"
	"sync"
)

// Progress prints "[k/n] msg" lines as long-running sweeps complete
// units of work, so multi-minute exhibits stop running dark. Nil-safe.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	done  int
	total int
}

// NewProgress returns a meter writing to w.
func NewProgress(w io.Writer) *Progress { return &Progress{w: w} }

// Expect adds n units to the denominator (exhibit runners declare their
// run count up front; unknown totals render as "[k]").
func (p *Progress) Expect(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.total += n
	p.mu.Unlock()
}

// Stepf completes one unit and prints its line.
func (p *Progress) Stepf(format string, args ...any) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	if p.total > 0 {
		fmt.Fprintf(p.w, "[%d/%d] ", p.done, p.total)
	} else {
		fmt.Fprintf(p.w, "[%d] ", p.done)
	}
	fmt.Fprintf(p.w, format, args...)
	fmt.Fprintln(p.w)
}

// Sink is the per-session telemetry handle. Any field may be absent; a
// nil *Sink disables everything at the cost of a nil check.
type Sink struct {
	reg  *Registry
	man  *ManifestWriter
	prog *Progress
}

// NewSink assembles a sink. Any argument may be nil.
func NewSink(reg *Registry, man *ManifestWriter, prog *Progress) *Sink {
	return &Sink{reg: reg, man: man, prog: prog}
}

// Registry returns the metric registry (nil when absent or s is nil).
func (s *Sink) Registry() *Registry {
	if s == nil {
		return nil
	}
	return s.reg
}

// StartSpan opens a root span, or returns nil when s is nil (nil spans
// propagate no-ops through the whole tree).
func (s *Sink) StartSpan(name string) *Span {
	if s == nil {
		return nil
	}
	return StartSpan(name)
}

// Emit stamps the manifest with the registry snapshot and appends it to
// the manifest stream (no-op without a stream).
func (s *Sink) Emit(m *Manifest) error {
	if s == nil || s.man == nil {
		return nil
	}
	if m.Counters == nil && s.reg != nil {
		snap := s.reg.Snapshot()
		m.Counters = &snap
	}
	return s.man.Emit(m)
}

// Expect forwards to the progress meter.
func (s *Sink) Expect(n int) {
	if s == nil {
		return
	}
	s.prog.Expect(n)
}

// Stepf forwards to the progress meter.
func (s *Sink) Stepf(format string, args ...any) {
	if s == nil {
		return
	}
	s.prog.Stepf(format, args...)
}
