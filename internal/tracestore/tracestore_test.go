package tracestore

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"cmpmem/internal/mem"
	"cmpmem/internal/trace"
)

// fakeTrace builds a deterministic stream keyed off n.
func fakeTrace(n int, events int) *Trace {
	rec := NewRecorder()
	for i := 0; i < events; i++ {
		rec.Add(trace.Ref{
			Addr: mem.Addr(0x1000*n + 8*i),
			Core: uint8(i % 4),
			Size: 8,
			Kind: mem.Kind(i % 2),
		})
	}
	tr, err := rec.Finish(Summary{
		Workload:     fmt.Sprintf("W%d", n),
		Threads:      4,
		Instructions: uint64(events * 3),
		Loads:        uint64(events / 2),
		Stores:       uint64(events - events/2),
	})
	if err != nil {
		panic(err)
	}
	return tr
}

// decodeAll replays the memoized stream back into a slice for
// comparisons.
func decodeAll(t testing.TB, tr *Trace) []trace.Ref {
	t.Helper()
	p, err := tr.Player()
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]trace.Ref, 0, tr.Summary.BusEvents)
	for r, ok := p.Next(); ok; r, ok = p.Next() {
		refs = append(refs, r)
	}
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	return refs
}

func key(n int) Key {
	return Key{Workload: fmt.Sprintf("W%d", n), Seed: 1, Scale: 0.25, Threads: 4, Quantum: 50000}
}

func TestDoMemoizes(t *testing.T) {
	s := New(0, "")
	var calls int32
	exec := func() (*Trace, error) {
		atomic.AddInt32(&calls, 1)
		return fakeTrace(1, 100), nil
	}
	a, err := s.Do(key(1), exec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Do(key(1), exec)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("execute ran %d times, want 1", calls)
	}
	if a != b {
		t.Error("second Do returned a different Trace pointer")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

func TestDoSingleFlight(t *testing.T) {
	s := New(0, "")
	var calls int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			tr, err := s.Do(key(7), func() (*Trace, error) {
				atomic.AddInt32(&calls, 1)
				return fakeTrace(7, 1000), nil
			})
			if err != nil || tr.Summary.BusEvents != 1000 {
				t.Errorf("Do: %v / %d events", err, tr.Summary.BusEvents)
			}
		}()
	}
	close(start)
	wg.Wait()
	if calls != 1 {
		t.Errorf("execute ran %d times under concurrency, want 1", calls)
	}
}

func TestDoPropagatesError(t *testing.T) {
	s := New(0, "")
	boom := errors.New("boom")
	if _, err := s.Do(key(2), func() (*Trace, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	// Errors are not memoized: the next Do retries.
	tr, err := s.Do(key(2), func() (*Trace, error) { return fakeTrace(2, 10), nil })
	if err != nil || tr == nil {
		t.Fatalf("retry after error failed: %v", err)
	}
}

func TestLRUEviction(t *testing.T) {
	// Budget fits ~2 of the 100-event traces (size measured, not
	// hard-coded, so codec tweaks don't invalidate the test).
	unit := fakeTrace(0, 100).SizeBytes()
	budget := unit*2 + unit/2
	s := New(budget, "")
	for n := 0; n < 4; n++ {
		n := n
		if _, err := s.Do(key(n), func() (*Trace, error) { return fakeTrace(n, 100), nil }); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions despite exceeding the budget")
	}
	if st.Bytes > budget {
		t.Errorf("resident bytes %d exceed budget %d", st.Bytes, budget)
	}
	// Most recent key must still be resident.
	var calls int32
	if _, err := s.Do(key(3), func() (*Trace, error) {
		atomic.AddInt32(&calls, 1)
		return fakeTrace(3, 100), nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Error("MRU entry was evicted")
	}
}

func TestDiskSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1 := New(0, dir)
	want := fakeTrace(5, 500)
	if _, err := s1.Do(key(5), func() (*Trace, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ctrace"))
	if err != nil || len(files) != 1 {
		t.Fatalf("spill files = %v (err %v), want exactly 1", files, err)
	}

	// A fresh store (fresh process, conceptually) must load from disk
	// without executing.
	s2 := New(0, dir)
	got, err := s2.Do(key(5), func() (*Trace, error) {
		t.Error("execute ran despite a valid spill file")
		return fakeTrace(5, 500), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Summary != want.Summary {
		t.Errorf("summary diverged through spill: got %+v want %+v", got.Summary, want.Summary)
	}
	gotRefs, wantRefs := decodeAll(t, got), decodeAll(t, want)
	if len(gotRefs) != len(wantRefs) {
		t.Fatalf("event count diverged: %d vs %d", len(gotRefs), len(wantRefs))
	}
	for i := range wantRefs {
		if gotRefs[i] != wantRefs[i] {
			t.Fatalf("event %d diverged: %+v vs %+v", i, gotRefs[i], wantRefs[i])
		}
	}
	if st := s2.Stats(); st.DiskHits != 1 {
		t.Errorf("stats = %+v, want 1 disk hit", st)
	}
}

func TestCorruptSpillRecomputes(t *testing.T) {
	dir := t.TempDir()
	s := New(0, dir)
	if _, err := s.Do(key(9), func() (*Trace, error) { return fakeTrace(9, 50), nil }); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.ctrace"))
	if len(files) != 1 {
		t.Fatal("no spill written")
	}
	if err := os.WriteFile(files[0], []byte("corrupted beyond repair"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := New(0, dir)
	var calls int32
	if _, err := s2.Do(key(9), func() (*Trace, error) {
		atomic.AddInt32(&calls, 1)
		return fakeTrace(9, 50), nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Error("corrupt spill was not recomputed")
	}
}

func TestSpillKeyMismatchIsMiss(t *testing.T) {
	// Force two keys onto the same file path by writing one key's file
	// under another key's name; the embedded key echo must reject it.
	dir := t.TempDir()
	s := New(0, dir)
	tr := fakeTrace(1, 20)
	f, err := os.Create(s.spillPath(key(2)))
	if err != nil {
		t.Fatal(err)
	}
	if err := writeSpillFile(f, key(1), tr); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got, ok := s.loadSpill(key(2)); ok || got != nil {
		t.Error("spill with mismatched key echo was accepted")
	}
}

// TestEvictionUnderSingleFlightRace hammers a store whose budget holds
// barely one entry with concurrent callers across several keys, so LRU
// eviction, single-flight coalescing, and re-execution all interleave.
// Every returned trace must still decode to exactly its key's stream —
// eviction may cost re-execution, never correctness. Run under -race.
func TestEvictionUnderSingleFlightRace(t *testing.T) {
	const (
		keys       = 4
		goroutines = 8
		rounds     = 25
	)
	want := make([]*Trace, keys)
	for n := range want {
		want[n] = fakeTrace(n, 50+n)
	}
	// Budget ~1.5 traces: every insert evicts whatever else is resident.
	s := New(want[0].SizeBytes()*3/2, "")

	var execs [keys]atomic.Uint64
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				n := (g + r) % keys
				tr, err := s.Do(key(n), func() (*Trace, error) {
					execs[n].Add(1)
					return want[n], nil
				})
				if err != nil {
					errs <- err
					return
				}
				got := decodeAll(t, tr)
				ref := decodeAll(t, want[n])
				if len(got) != len(ref) {
					errs <- fmt.Errorf("key %d: %d records, want %d", n, len(got), len(ref))
					return
				}
				for i := range got {
					if got[i] != ref[i] {
						errs <- fmt.Errorf("key %d record %d: %+v != %+v", n, i, got[i], ref[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Evictions == 0 {
		t.Fatal("no evictions — the budget did not constrain the store and the race went unexercised")
	}
	var total uint64
	for n := range execs {
		e := execs[n].Load()
		if e == 0 {
			t.Errorf("key %d never executed", n)
		}
		total += e
	}
	// Executions == misses (no spill dir: every eviction is a full loss),
	// and every Do call is accounted as exactly one hit or miss (waiters
	// coalesced into the winner's stat).
	if total != st.Misses {
		t.Errorf("%d executions != %d misses", total, st.Misses)
	}
	if st.Hits+st.Misses > goroutines*rounds {
		t.Errorf("stats overcount: %d hits + %d misses > %d calls", st.Hits, st.Misses, goroutines*rounds)
	}
}
