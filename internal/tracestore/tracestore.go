// Package tracestore memoizes captured bus-event streams so that every
// experiment touching the same (workload, params, platform, seed) tuple
// executes the guest-thread simulation at most once and replays the
// stream everywhere else — the paper's Dragonhead board applied many
// reprogrammed cache configurations to one snooped FSB stream; the
// store is the software equivalent across experiment invocations.
//
// The store is safe for concurrent use by the parallel exhibit
// orchestrator: per-key single-flight collapses simultaneous requests
// for the same stream into one execution, an in-memory LRU bounds the
// resident footprint, and an optional spill directory persists evicted
// (and freshly captured) streams in the compact v2 trace codec so later
// runs — even in a new process — skip execution entirely.
package tracestore

import (
	"bytes"
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"cmpmem/internal/telemetry"
	"cmpmem/internal/trace"
)

// Key identifies one captured stream: everything that determines the
// bus-event sequence bit-for-bit. Workload datasets derive from
// (Workload, Seed, Scale); the interleaving derives from the platform
// shape (Threads, Quantum) and the platform noise source (Noise,
// PlatSeed).
type Key struct {
	Workload string
	// Seed and Scale are the dataset parameters (workloads.Params).
	Seed  int64
	Scale float64
	// Threads, Quantum, Noise, and PlatSeed are the normalized platform
	// configuration.
	Threads  int
	Quantum  uint64
	Noise    int
	PlatSeed int64
}

// String renders the key for diagnostics and spill filenames.
func (k Key) String() string {
	return fmt.Sprintf("%s/seed%d/scale%g/t%d/q%d/n%d/ps%d",
		k.Workload, k.Seed, k.Scale, k.Threads, k.Quantum, k.Noise, k.PlatSeed)
}

// Summary carries the execution-side totals of the captured run, so a
// replayed experiment returns the identical RunSummary without
// re-deriving it.
type Summary struct {
	Workload     string
	Threads      int
	Instructions uint64
	Loads        uint64
	Stores       uint64
	BusEvents    uint64
}

// Trace is one memoized stream: the complete bus-event sequence (memory
// transactions plus control messages encoded as reserved-window
// transactions, in exact delivery order) and the run summary. The
// sequence is kept v2-encoded — roughly 4x smaller than a []Ref slice —
// and decoded on the fly during replay; Player returns an independent
// zero-allocation cursor, so one Trace serves any number of concurrent
// replays.
type Trace struct {
	Summary Summary
	enc     []byte // complete v2 trace stream, header included
}

// Player returns a fresh decode cursor over the stream.
func (t *Trace) Player() (*trace.StreamPlayer, error) {
	return trace.NewStreamPlayer(t.enc)
}

// Encoded returns a copy of the complete encoded stream (header
// included). The verification layer corrupts such copies to prove the
// decode path fails loudly; the store's own bytes stay immutable.
func (t *Trace) Encoded() []byte {
	return append([]byte(nil), t.enc...)
}

// NewTrace builds a Trace directly from an encoded stream (v1 or v2,
// header included) — the injection point for fault testing and for
// replaying externally captured streams. The encoding is validated
// lazily: a corrupt stream surfaces as a Player decode error.
func NewTrace(sum Summary, enc []byte) *Trace {
	return &Trace{Summary: sum, enc: enc}
}

// EncodedLen reports the stream's encoded size in bytes.
func (t *Trace) EncodedLen() int { return len(t.enc) }

// SizeBytes estimates the resident footprint of the trace.
func (t *Trace) SizeBytes() uint64 {
	return uint64(len(t.enc)) + 128
}

// Recorder accumulates a bus-event stream during live capture, encoding
// each event straight into the compact v2 codec — the raw []Ref form of
// a full run never materializes.
type Recorder struct {
	buf bytes.Buffer
	w   *trace.Writer
	n   uint64
	err error
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	r := &Recorder{}
	w, err := trace.NewWriterV2(&r.buf)
	r.w, r.err = w, err
	return r
}

// Add appends one event; errors are sticky and surface in Finish.
func (r *Recorder) Add(ref trace.Ref) {
	if r.err != nil {
		return
	}
	if err := r.w.Write(ref); err != nil {
		r.err = err
		return
	}
	r.n++
}

// Len reports how many events have been recorded.
func (r *Recorder) Len() uint64 { return r.n }

// Finish seals the stream and returns the memoizable trace.
func (r *Recorder) Finish(sum Summary) (*Trace, error) {
	if r.err != nil {
		return nil, r.err
	}
	if err := r.w.Flush(); err != nil {
		return nil, err
	}
	sum.BusEvents = r.n
	return &Trace{Summary: sum, enc: r.buf.Bytes()}, nil
}

// DefaultMaxBytes is the default in-memory budget: large enough to hold
// every stream of a full test/bench sweep, small enough to stay
// comfortable beside the workloads' own datasets.
const DefaultMaxBytes = 1 << 30

// Stats reports store effectiveness. The JSON form feeds the cosimd
// status endpoint and cosimload's dedupe-ratio report, which read the
// store directly instead of scraping the Prometheus text surface.
type Stats struct {
	// Hits served from memory; DiskHits served by decoding a spill
	// file; Misses executed the workload.
	Hits     uint64 `json:"hits"`
	DiskHits uint64 `json:"disk_hits"`
	Misses   uint64 `json:"misses"`
	// Waits counts single-flight collapses: a caller that found its key
	// already executing and waited for that execution instead of
	// starting another. N concurrent requests for one cold key cost one
	// Miss and N-1 Waits.
	Waits uint64 `json:"singleflight_waits"`
	// Evictions dropped an entry from memory (still on disk when a
	// spill directory is configured).
	Evictions uint64 `json:"evictions"`
	// Entries and Bytes describe current residency.
	Entries int    `json:"entries"`
	Bytes   uint64 `json:"resident_bytes"`
}

// Executions reports how many times the store actually ran a workload
// (cold misses), the denominator of any dedupe-ratio calculation.
func (s Stats) Executions() uint64 { return s.Misses }

// FS abstracts the spill directory's filesystem operations so the
// verification layer can inject I/O faults (verify.FaultFS). The
// default implementation is the real OS filesystem.
type FS interface {
	MkdirAll(dir string) error
	// CreateTemp creates a unique scratch file in dir.
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Open(name string) (io.ReadCloser, error)
	Remove(name string) error
}

// File is the writable handle CreateTemp returns.
type File interface {
	io.Writer
	io.Closer
	Name() string
}

// OSFS is the real-filesystem FS implementation (the default).
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// CreateTemp implements FS.
func (OSFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

// Rename implements FS.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Open implements FS.
func (OSFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Store is the memoized trace cache.
type Store struct {
	maxBytes uint64
	dir      string
	fs       FS

	mu       sync.Mutex
	entries  map[Key]*entry
	lru      *list.List // front = MRU; values are *entry
	inflight map[Key]*call
	bytes    uint64
	stats    Stats

	// Telemetry handles (nil = disabled). Store operations are
	// per-experiment, not per-event, so these increment directly.
	telHits      *telemetry.Counter // tracestore_hits_total
	telDiskHits  *telemetry.Counter // tracestore_disk_hits_total
	telMisses    *telemetry.Counter // tracestore_misses_total
	telWaits     *telemetry.Counter // tracestore_singleflight_waits_total
	telEvictions *telemetry.Counter // tracestore_evictions_total
	telSpilled   *telemetry.Counter // tracestore_spilled_bytes_total
	telResident  *telemetry.Gauge   // tracestore_bytes_resident
}

// Instrument registers the store's metrics into r (nil disables). New
// resolves against the process-wide default registry automatically;
// Instrument rebinds, e.g. for a store built before telemetry was
// enabled. Call it before the store sees concurrent traffic — the
// handles are read without the store lock on the hot path.
func (s *Store) Instrument(r *telemetry.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.telHits = r.Counter("tracestore_hits_total")
	s.telDiskHits = r.Counter("tracestore_disk_hits_total")
	s.telMisses = r.Counter("tracestore_misses_total")
	s.telWaits = r.Counter("tracestore_singleflight_waits_total")
	s.telEvictions = r.Counter("tracestore_evictions_total")
	s.telSpilled = r.Counter("tracestore_spilled_bytes_total")
	s.telResident = r.Gauge("tracestore_bytes_resident")
}

type entry struct {
	key  Key
	tr   *Trace
	elem *list.Element
}

type call struct {
	done chan struct{}
	tr   *Trace
	err  error
}

// New returns a store with the given in-memory byte budget (0 selects
// DefaultMaxBytes) and optional spill directory ("" disables spill).
func New(maxBytes uint64, dir string) *Store {
	if maxBytes == 0 {
		maxBytes = DefaultMaxBytes
	}
	s := &Store{
		maxBytes: maxBytes,
		dir:      dir,
		fs:       OSFS{},
		entries:  make(map[Key]*entry),
		lru:      list.New(),
		inflight: make(map[Key]*call),
	}
	s.Instrument(telemetry.Default())
	return s
}

// Dir returns the spill directory ("" when spilling is disabled).
func (s *Store) Dir() string { return s.dir }

// SetFS replaces the spill filesystem (fault injection; nil restores
// the OS filesystem). Call before the store sees traffic.
func (s *Store) SetFS(fs FS) {
	if fs == nil {
		fs = OSFS{}
	}
	s.mu.Lock()
	s.fs = fs
	s.mu.Unlock()
}

// spillFS reads the current filesystem handle under the lock.
func (s *Store) spillFS() FS {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fs
}

// StatsSnapshot returns a point-in-time reading of the store counters:
// hits, disk hits, misses (= workload executions), single-flight waits,
// evictions, and current residency. It is the programmatic equivalent
// of the tracestore_* Prometheus series, for callers — the cosimd
// status endpoint, cosimload's dedupe report — that want real numbers
// without scraping text.
func (s *Store) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.entries)
	st.Bytes = s.bytes
	return st
}

// Stats is the historical name of StatsSnapshot.
func (s *Store) Stats() Stats { return s.StatsSnapshot() }

// Outcome classifies how one Do/DoOutcome call was satisfied. Request
// tracing annotates the store span with it, so a slow request can say
// "blocked behind another tenant's capture" versus "executed fresh".
type Outcome uint8

const (
	// OutcomeHit: served from the in-memory LRU.
	OutcomeHit Outcome = iota
	// OutcomeWait: collapsed onto another caller's in-flight execution.
	OutcomeWait
	// OutcomeDisk: revived from a checksummed disk spill.
	OutcomeDisk
	// OutcomeMiss: executed the workload.
	OutcomeMiss
)

// String names the outcome for span attributes and logs.
func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeWait:
		return "wait"
	case OutcomeDisk:
		return "disk"
	default:
		return "miss"
	}
}

// Do returns the stream for k, computing it with execute exactly once
// per key: concurrent callers for the same key wait for the first
// execution instead of re-running the workload. The returned Trace is
// shared and immutable; each replay obtains its own cursor via Player.
func (s *Store) Do(k Key, execute func() (*Trace, error)) (*Trace, error) {
	tr, _, err := s.DoOutcome(k, execute)
	return tr, err
}

// DoOutcome is Do plus the classification of how the call was served —
// memory hit, single-flight wait, disk revival, or fresh execution.
func (s *Store) DoOutcome(k Key, execute func() (*Trace, error)) (*Trace, Outcome, error) {
	s.mu.Lock()
	if e, ok := s.entries[k]; ok {
		s.lru.MoveToFront(e.elem)
		s.stats.Hits++
		s.mu.Unlock()
		s.telHits.Inc()
		return e.tr, OutcomeHit, nil
	}
	if c, ok := s.inflight[k]; ok {
		s.stats.Waits++
		s.mu.Unlock()
		s.telWaits.Inc()
		<-c.done
		return c.tr, OutcomeWait, c.err
	}
	c := &call{done: make(chan struct{})}
	s.inflight[k] = c
	s.mu.Unlock()

	tr, fromDisk := s.loadSpill(k)
	var err error
	if tr == nil {
		tr, err = execute()
		if err == nil {
			s.writeSpill(k, tr) // best-effort persistence
		}
	}

	outcome := OutcomeMiss
	s.mu.Lock()
	delete(s.inflight, k)
	if err == nil {
		if fromDisk {
			outcome = OutcomeDisk
			s.stats.DiskHits++
			s.telDiskHits.Inc()
		} else {
			s.stats.Misses++
			s.telMisses.Inc()
		}
		s.insertLocked(k, tr)
	}
	c.tr, c.err = tr, err
	s.mu.Unlock()
	close(c.done)
	return tr, outcome, err
}

// insertLocked adds the entry and evicts LRU entries past the budget.
// The newly inserted entry may itself be evicted when it alone exceeds
// the budget — callers already hold the *Trace, so correctness is
// unaffected; only future reuse is.
func (s *Store) insertLocked(k Key, tr *Trace) {
	e := &entry{key: k, tr: tr}
	e.elem = s.lru.PushFront(e)
	s.entries[k] = e
	s.bytes += tr.SizeBytes()
	for s.bytes > s.maxBytes && s.lru.Len() > 0 {
		victim := s.lru.Back().Value.(*entry)
		s.lru.Remove(victim.elem)
		delete(s.entries, victim.key)
		s.bytes -= victim.tr.SizeBytes()
		s.stats.Evictions++
		s.telEvictions.Inc()
	}
	s.telResident.Set(int64(s.bytes))
}

// --- disk spill -------------------------------------------------------

// spillMagic heads a spill file: a checksum, then the store's own
// header (key echo + summary) followed by a v2-encoded trace stream.
// Version 2 added the checksum; files from older versions fail the
// magic check and degrade to a recompute.
var spillMagic = [8]byte{'C', 'M', 'P', 'S', 2, 0, 0, 0}

// payloadChecksum fingerprints everything after the checksum field —
// header and stream alike (FNV-1a). The codec's own structure catches
// most stream corruption — records that fail to decode, reserved bits,
// a wrong event count — but a bit flip inside a varint payload can
// decode into a *different valid stream*, and a flipped summary field
// has no structure at all. The checksum closes both holes: any spill
// corruption degrades to a recompute, never to wrong replayed numbers.
func payloadChecksum(parts ...[]byte) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write(p)
	}
	return h.Sum64()
}

// spillPath derives a stable filename from the key. The full key is
// echoed inside the file and verified on load, so a hash collision
// degrades to a recompute, never to a wrong stream.
func (s *Store) spillPath(k Key) string {
	h := fnv.New64a()
	fmt.Fprint(h, k.String())
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-':
			return r
		}
		return '_'
	}, k.Workload)
	return filepath.Join(s.dir, fmt.Sprintf("%s-%016x.ctrace", name, h.Sum64()))
}

// writeSpill persists the stream; failures are silent (the spill is an
// optimization, never a correctness dependency). The file is written to
// a temp name and renamed so concurrent processes see only whole files.
func (s *Store) writeSpill(k Key, tr *Trace) {
	if s.dir == "" {
		return
	}
	fs := s.spillFS()
	if err := fs.MkdirAll(s.dir); err != nil {
		return
	}
	path := s.spillPath(k)
	tmp, err := fs.CreateTemp(s.dir, ".ctrace-*")
	if err != nil {
		return
	}
	defer fs.Remove(tmp.Name())
	if err := writeSpillFile(tmp, k, tr); err != nil {
		tmp.Close()
		return
	}
	if err := tmp.Close(); err != nil {
		return
	}
	if fs.Rename(tmp.Name(), path) == nil {
		s.telSpilled.Add(uint64(len(tr.enc)))
	}
}

func writeSpillFile(w io.Writer, k Key, tr *Trace) error {
	var hdr bytes.Buffer
	if err := writeKeyAndSummary(&hdr, k, tr.Summary); err != nil {
		return err
	}
	if _, err := w.Write(spillMagic[:]); err != nil {
		return err
	}
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], payloadChecksum(hdr.Bytes(), tr.enc))
	if _, err := w.Write(sum[:]); err != nil {
		return err
	}
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return err
	}
	// The in-memory form is already a self-contained v2 stream.
	_, err := w.Write(tr.enc)
	return err
}

// loadSpill returns the stream from disk, or nil when absent/invalid.
func (s *Store) loadSpill(k Key) (*Trace, bool) {
	if s.dir == "" {
		return nil, false
	}
	f, err := s.spillFS().Open(s.spillPath(k))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	tr, err := readSpillFile(f, k)
	if err != nil {
		return nil, false
	}
	return tr, true
}

func readSpillFile(r io.Reader, want Key) (*Trace, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if magic != spillMagic {
		return nil, fmt.Errorf("tracestore: bad spill magic")
	}
	var sumBuf [8]byte
	if _, err := io.ReadFull(r, sumBuf[:]); err != nil {
		return nil, err
	}
	payload, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if got, recorded := payloadChecksum(payload), binary.LittleEndian.Uint64(sumBuf[:]); got != recorded {
		return nil, fmt.Errorf("tracestore: spill checksum %#x != recorded %#x", got, recorded)
	}
	body := bytes.NewReader(payload)
	k, sum, err := readKeyAndSummary(body)
	if err != nil {
		return nil, err
	}
	if k != want {
		return nil, fmt.Errorf("tracestore: spill key mismatch: have %v, want %v", k, want)
	}
	enc, err := io.ReadAll(body)
	if err != nil {
		return nil, err
	}
	// Verify the stream decodes cleanly and matches the recorded length
	// before trusting it — a corrupt spill degrades to a recompute.
	p, err := trace.NewStreamPlayer(enc)
	if err != nil {
		return nil, err
	}
	var n uint64
	for _, ok := p.Next(); ok; _, ok = p.Next() {
		n++
	}
	if err := p.Err(); err != nil {
		return nil, err
	}
	if n != sum.BusEvents {
		return nil, fmt.Errorf("tracestore: spill stream length %d != recorded %d",
			n, sum.BusEvents)
	}
	return &Trace{Summary: sum, enc: enc}, nil
}

// writeKeyAndSummary serializes the key echo and summary as fixed-width
// little-endian fields plus a length-prefixed workload name.
func writeKeyAndSummary(w io.Writer, k Key, sum Summary) error {
	name := []byte(k.Workload)
	if len(name) > math.MaxUint16 {
		return fmt.Errorf("tracestore: workload name too long")
	}
	fields := []uint64{
		uint64(k.Seed),
		math.Float64bits(k.Scale),
		uint64(k.Threads),
		k.Quantum,
		uint64(k.Noise),
		uint64(k.PlatSeed),
		uint64(sum.Threads),
		sum.Instructions,
		sum.Loads,
		sum.Stores,
		sum.BusEvents,
	}
	var buf [8]byte
	binary.LittleEndian.PutUint16(buf[:2], uint16(len(name)))
	if _, err := w.Write(buf[:2]); err != nil {
		return err
	}
	if _, err := w.Write(name); err != nil {
		return err
	}
	for _, f := range fields {
		binary.LittleEndian.PutUint64(buf[:], f)
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

func readKeyAndSummary(r io.Reader) (Key, Summary, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:2]); err != nil {
		return Key{}, Summary{}, err
	}
	name := make([]byte, binary.LittleEndian.Uint16(buf[:2]))
	if _, err := io.ReadFull(r, name); err != nil {
		return Key{}, Summary{}, err
	}
	fields := make([]uint64, 11)
	for i := range fields {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return Key{}, Summary{}, err
		}
		fields[i] = binary.LittleEndian.Uint64(buf[:])
	}
	k := Key{
		Workload: string(name),
		Seed:     int64(fields[0]),
		Scale:    math.Float64frombits(fields[1]),
		Threads:  int(fields[2]),
		Quantum:  fields[3],
		Noise:    int(fields[4]),
		PlatSeed: int64(fields[5]),
	}
	sum := Summary{
		Workload:     string(name),
		Threads:      int(fields[6]),
		Instructions: fields[7],
		Loads:        fields[8],
		Stores:       fields[9],
		BusEvents:    fields[10],
	}
	return k, sum, nil
}
