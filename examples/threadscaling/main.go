// Threadscaling reproduces the paper's Section 4.3 analysis: how the
// working set of a workload moves as the CMP grows from 8 to 16 to 32
// cores. Shared-working-set workloads (MDS) are invariant;
// private-working-set workloads (SHOT) double their footprint with the
// core count, pushing the miss-curve knee right.
package main

import (
	"fmt"
	"log"

	"cmpmem"
)

func main() {
	params := cmpmem.Params{Seed: 3}
	configs := cmpmem.CacheSweepConfigs(0)
	platforms := []struct {
		name string
		pc   cmpmem.PlatformConfig
	}{
		{"SCMP (8 cores)", cmpmem.SCMP()},
		{"MCMP (16 cores)", cmpmem.MCMP()},
		{"LCMP (32 cores)", cmpmem.LCMP()},
	}

	for _, workload := range []string{"MDS", "SHOT"} {
		fmt.Printf("%s — LLC misses per 1000 instructions:\n", workload)
		fmt.Printf("%-18s", "cache (paper-MB)")
		for _, mb := range cmpmem.PaperCacheSizesMB {
			fmt.Printf("%9d", mb)
		}
		fmt.Println()
		for _, plat := range platforms {
			results, _, err := cmpmem.LLCSweep(workload, params, plat.pc, configs)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-18s", plat.name)
			for _, r := range results {
				fmt.Printf("%9.2f", r.MPKI)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	fmt.Println("MDS rows barely move (all threads share one sparse matrix);")
	fmt.Println("SHOT's knee doubles with each platform (private frames per thread).")
}
