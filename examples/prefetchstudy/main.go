// Prefetchstudy reproduces the paper's Figure 8 experiment for a subset
// of workloads: the performance gain from enabling a stride-based
// hardware prefetcher on a Xeon-class shared-bus multiprocessor, in
// serial and 16-thread mode. The interesting contrast is between
// streaming workloads (SHOT benefits more in parallel — many clean
// streams and enough bandwidth) and bandwidth-bound ones (MDS benefits
// less in parallel — demand misses saturate the bus, so prefetches are
// dropped).
package main

import (
	"fmt"
	"log"

	"cmpmem"
	"cmpmem/internal/prefetch"
)

func main() {
	params := cmpmem.Params{Seed: 11}
	for _, name := range []string{"SHOT", "MDS", "SNP"} {
		fmt.Printf("%s:\n", name)
		for _, threads := range []int{1, 16} {
			pc := cmpmem.PlatformConfig{Threads: threads, Seed: 11}

			off, err := cmpmem.RunHier(name, params, pc,
				cmpmem.Xeon16(threads, params.Scale, nil))
			if err != nil {
				log.Fatal(err)
			}
			pf := prefetch.DefaultConfig(64)
			on, err := cmpmem.RunHier(name, params, pc,
				cmpmem.Xeon16(threads, params.Scale, &pf))
			if err != nil {
				log.Fatal(err)
			}

			gain := (off.Cycles/on.Cycles - 1) * 100
			fmt.Printf("  %2d thread(s): %+6.1f%%  (cycles %0.f -> %0.f; %d prefetches issued, %d dropped)\n",
				threads, gain, off.Cycles, on.Cycles,
				on.Prefetches.Issued, on.Prefetches.Dropped)
		}
	}
	fmt.Println("\nPer the paper: serial mode wins for high-miss-rate workloads (SNP, MDS)")
	fmt.Println("because their parallel demand traffic leaves no bus slots for prefetches.")
}
