// Dramcache runs the study behind the paper's central design
// conclusion — "large DRAM caches can be useful to address their large
// working-set sizes" — with the timing model: every workload on a
// 16-core CMP, with no LLC, with a small fast SRAM LLC, and with a
// large slow DRAM LLC.
package main

import (
	"fmt"
	"log"

	"cmpmem"
)

func main() {
	rows, err := cmpmem.DRAMCacheStudy(cmpmem.Params{Seed: 5}, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Cycle gain over no LLC (16 cores):")
	fmt.Printf("%-10s %14s %16s %14s\n", "workload", "8MB SRAM LLC", "256MB DRAM LLC", "DRAM missrate")
	for _, r := range rows {
		verdict := ""
		switch {
		case r.GainDRAMPct > r.GainSRAMPct+5:
			verdict = "<- wants the DRAM cache"
		case r.GainDRAMPct < -1:
			verdict = "<- DRAM hit slower than an overlapped stream miss"
		}
		fmt.Printf("%-10s %+13.1f%% %+15.1f%% %13.1f%%  %s\n",
			r.Workload, r.GainSRAMPct, r.GainDRAMPct, 100*r.L3MissRateDRAM, verdict)
	}
	fmt.Println("\nThe paper projected 5 of 8 workloads would need DRAM-class LLC capacity")
	fmt.Println("at high core counts; compare with `go run ./cmd/cosim proj128`.")
}
