// Cachesweep reproduces one line of the paper's Figure 4 for a chosen
// workload: LLC misses per 1000 instructions as the cache grows from
// 4 MB to 256 MB (paper-equivalent), measured in a single execution by
// attaching seven Dragonhead emulators to the same front-side bus.
//
//	go run ./examples/cachesweep [workload]
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"cmpmem"
)

func main() {
	name := "SHOT"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}

	params := cmpmem.Params{Seed: 7}
	configs := cmpmem.CacheSweepConfigs(0) // harness default scale
	results, summary, err := cmpmem.LLCSweep(name, params, cmpmem.SCMP(), configs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s on the 8-core SCMP — %d instructions, one execution, %d emulated caches\n\n",
		summary.Workload, summary.Instructions, len(results))
	fmt.Printf("%-22s %10s %12s\n", "cache (paper-equiv)", "MPKI", "misses")
	var max float64
	for _, r := range results {
		if r.MPKI > max {
			max = r.MPKI
		}
	}
	for i, r := range results {
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", int(40*r.MPKI/max))
		}
		fmt.Printf("%-22s %10.3f %12d  %s\n",
			fmt.Sprintf("%d MB", cmpmem.PaperCacheSizesMB[i]), r.MPKI, r.Stats.Misses, bar)
	}
	fmt.Println("\nThe knee of this curve is the workload's working-set size (Section 4.3).")
}
