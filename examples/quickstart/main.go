// Quickstart: run one data-mining workload (FIMI, frequent-itemset
// mining) to completion on the paper's 8-core small-scale CMP while a
// Dragonhead cache emulator measures the shared last-level cache, and
// print the misses per 1000 instructions — the paper's core metric.
package main

import (
	"fmt"
	"log"

	"cmpmem"
)

func main() {
	// One LLC configuration: a 16 MB paper-equivalent shared cache with
	// 64-byte lines (the harness runs at 1/16 footprint scale, so the
	// simulated cache is 1 MB).
	llc := cmpmem.CacheConfig{Name: "LLC-16MB", Size: 1 << 20, LineSize: 64, Assoc: 16}

	results, summary, err := cmpmem.LLCSweep(
		"FIMI",
		cmpmem.Params{Seed: 42},
		cmpmem.SCMP(),
		[]cmpmem.CacheConfig{llc},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload:       %s on %d cores\n", summary.Workload, summary.Threads)
	fmt.Printf("instructions:   %d (%.1f%% loads, %.1f%% stores)\n",
		summary.Instructions,
		100*float64(summary.Loads)/float64(summary.Instructions),
		100*float64(summary.Stores)/float64(summary.Instructions))
	r := results[0]
	fmt.Printf("LLC %s:    %d accesses, %d misses\n", r.LLC.Name, r.Stats.Accesses, r.Stats.Misses)
	fmt.Printf("LLC MPKI:       %.2f misses per 1000 instructions\n", r.MPKI)
	fmt.Printf("CB samples:     %d (counters collected every 500us of emulated time)\n", len(r.Samples))
}
