// Codec-size acceptance test: the v2 delta codec must compress the
// FIMI SCMP reference stream at least 4x better than the fixed 16-byte
// v1 records. The stream is the real thing — captured from a live
// 8-core run — so the asserted ratio tracks the actual delta
// distribution of the workloads, not a synthetic best case.
package cmpmem_test

import (
	"bytes"
	"testing"

	"cmpmem/internal/core"
	"cmpmem/internal/trace"
	"cmpmem/internal/workloads"
)

func TestV2CompressionRatioFIMI(t *testing.T) {
	var refs []trace.Ref
	_, err := core.TraceCapture("FIMI",
		workloads.Params{Seed: 1, Scale: 1.0 / 256},
		core.PlatformConfig{Threads: 8, Seed: 1},
		func(r trace.Ref) { refs = append(refs, r) })
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) < 10_000 {
		t.Fatalf("captured only %d refs; stream too small to be meaningful", len(refs))
	}
	encode := func(newW func(*bytes.Buffer) (*trace.Writer, error)) int {
		var buf bytes.Buffer
		w, err := newW(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range refs {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		return buf.Len()
	}
	v1 := encode(func(b *bytes.Buffer) (*trace.Writer, error) { return trace.NewWriter(b) })
	v2 := encode(func(b *bytes.Buffer) (*trace.Writer, error) { return trace.NewWriterV2(b) })
	ratio := float64(v1) / float64(v2)
	t.Logf("FIMI SCMP stream: %d refs, v1 %d B, v2 %d B, ratio %.2fx", len(refs), v1, v2, ratio)
	if ratio < 4 {
		t.Errorf("v2 compression ratio %.2fx below the required 4x (v1 %d B, v2 %d B)", ratio, v1, v2)
	}
	// Round-trip the v2 buffer to guard against a codec that shrinks by
	// dropping information.
	var buf bytes.Buffer
	w, _ := trace.NewWriterV2(&buf)
	for _, r := range refs {
		if err := w.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(refs) {
		t.Fatalf("v2 round trip lost records: %d vs %d", len(got), len(refs))
	}
	for i := range refs {
		if got[i] != refs[i] {
			t.Fatalf("v2 round trip corrupted record %d: %+v vs %+v", i, got[i], refs[i])
		}
	}
}
