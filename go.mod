module cmpmem

go 1.22
