package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// tinyArgs keeps CLI tests fast: 1/512-scale workloads.
func tinyArgs(rest ...string) []string {
	return append([]string{"-scale", "0.002", "-seed", "3"}, rest...)
}

func TestCLISubcommands(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end runs are slow")
	}
	cases := [][]string{
		tinyArgs("table1"),
		tinyArgs("table2"),
		tinyArgs("-j", "4", "-batch", "1024", "table2"),
		tinyArgs("-csv", "-workloads", "PLSA,SHOT", "fig4"),
		tinyArgs("-j", "2", "-batch", "256", "-csv", "-workloads", "PLSA,SHOT", "fig4"),
		tinyArgs("-workloads", "PLSA", "fig7"),
		tinyArgs("-workloads", "PLSA,MDS", "fig8"),
		tinyArgs("-workloads", "SHOT", "phases"),
		tinyArgs("-workloads", "PLSA,SHOT", "llcorg"),
		// Replay memoization across exhibits sharing one execution.
		tinyArgs("-replay", "-workloads", "PLSA", "fig4", "fig7"),
		tinyArgs("-replay=false", "-workloads", "SHOT", "fig4"),
		// The sweep planner: auto plans any grid; oracle is strict but
		// the cache sweep is fully analytic.
		tinyArgs("-engine", "auto", "-csv", "-workloads", "PLSA", "fig4", "fig7"),
		tinyArgs("-engine", "oracle", "-csv", "-workloads", "SHOT", "fig4"),
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("cosim %v: %v", args, err)
		}
	}
}

func TestCLITraceDirSpill(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	dir := t.TempDir()
	if err := run(tinyArgs("-trace-dir", dir, "-workloads", "PLSA", "-csv", "fig4")); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ctrace"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no spill files in -trace-dir (files %v, err %v)", files, err)
	}
}

func TestCLISVGOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	dir := t.TempDir()
	if err := run(tinyArgs("-workloads", "PLSA", "-svg", dir, "fig4")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig4.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty SVG written")
	}
}

// promLine matches every non-empty line of the Prometheus text format
// the handler emits: HELP/TYPE comments or "name[{labels}] value".
var promLine = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9.e+-]+|[0-9.e+-]+[eE][0-9+-]+)$`)

// scrapeCounters fetches /metrics and returns the plain counter samples
// (histogram series excluded), validating every line's format. A dial
// error returns nil: the sweep may have finished and closed the server
// between scrapes, which the caller tolerates.
func scrapeCounters(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q, want text/plain", ct)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid Prometheus text line: %q", line)
			continue
		}
		if strings.HasPrefix(line, "#") || strings.Contains(line, "{") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Errorf("unparseable sample %q: %v", line, err)
			continue
		}
		out[name] = f
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestCLIMetricsEndpoint drives a sweep with -metrics-addr and scrapes
// the live endpoints from the outside while it runs: Prometheus text
// validity, counter monotonicity across scrapes, expvar JSON, and the
// run manifest the flag implies.
func TestCLIMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	manifest := filepath.Join(t.TempDir(), "run.jsonl")
	started := time.Now()
	// Clear any listener address a previous run in this process stored,
	// so readiness below observes this run's bind, not a stale one.
	boundMetricsAddr.Store("")
	done := make(chan error, 1)
	go func() {
		done <- run(tinyArgs("-metrics-addr", "127.0.0.1:0", "-manifest", manifest,
			"-batch", "256", "fig4"))
	}()

	// Readiness: the listener binds synchronously before the sweep
	// starts, so poll for the address instead of sleeping a guessed
	// warm-up — scraping begins the moment the endpoint exists.
	var addr string
	for addr == "" {
		select {
		case err := <-done:
			t.Fatalf("sweep finished before the metrics listener bound (err=%v)", err)
		default:
		}
		if time.Since(started) > 2*time.Minute {
			t.Fatal("metrics listener never bound")
		}
		if a, _ := boundMetricsAddr.Load().(string); a != "" {
			addr = a
			break
		}
		time.Sleep(time.Millisecond)
	}

	// Scrape continuously while the sweep runs. The server closes when
	// run returns, so every check happens on live mid-run responses.
	var snaps []map[string]float64
	varsOK := false
	for running := true; running; {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			running = false
		default:
			if time.Since(started) > 2*time.Minute {
				t.Fatal("sweep did not finish")
			}
		}
		if m := scrapeCounters(t, "http://"+addr); m != nil {
			snaps = append(snaps, m)
		}
		if !varsOK {
			// expvar mirror: valid JSON containing the registry snapshot.
			if resp, err := http.Get("http://" + addr + "/debug/vars"); err == nil {
				var vars struct {
					Cosim struct {
						Counters map[string]uint64 `json:"counters"`
					} `json:"cosim"`
				}
				err = json.NewDecoder(resp.Body).Decode(&vars)
				resp.Body.Close()
				if err != nil {
					t.Fatalf("/debug/vars is not JSON: %v", err)
				}
				varsOK = len(vars.Cosim.Counters) > 0
			}
		}
		if running {
			time.Sleep(10 * time.Millisecond)
		}
	}
	if len(snaps) < 2 {
		t.Fatalf("got %d successful mid-run scrapes, want at least 2", len(snaps))
	}
	if !varsOK {
		t.Error("/debug/vars never served a non-empty cosim snapshot")
	}

	// Counters never decrease across successive scrapes, and the
	// simulator's own counters moved by the last one.
	for i := 1; i < len(snaps); i++ {
		for name, v1 := range snaps[i-1] {
			if v2, ok := snaps[i][name]; ok && v2 < v1 {
				t.Errorf("counter %s went backwards: %v -> %v", name, v1, v2)
			}
		}
	}
	final := snaps[len(snaps)-1]
	for _, name := range []string{"softsdv_instructions_total", "fsb_events_total", "dragonhead_cb_samples_total"} {
		if final[name] == 0 {
			t.Errorf("counter %s never incremented", name)
		}
	}
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 {
		t.Fatal("empty manifest")
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("manifest line %d is not JSON: %v", i+1, err)
		}
		if m["kind"] != "llcsweep" {
			t.Errorf("manifest line %d kind = %v, want llcsweep", i+1, m["kind"])
		}
	}
}

// TestCLIVerifyMode runs the -verify suite end to end on one cheap
// workload and checks the JSON artifact: well-formed findings, all
// passing, and a non-empty check list.
func TestCLIVerifyMode(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	out := filepath.Join(t.TempDir(), "verify.json")
	if err := run(tinyArgs("-verify", "-workloads", "SHOT", "-verify-out", out)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Findings []struct {
			Check  string `json:"check"`
			OK     bool   `json:"ok"`
			Detail string `json:"detail"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("verify artifact is not JSON: %v", err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("verify artifact has no findings")
	}
	planner := false
	for _, f := range rep.Findings {
		if !f.OK {
			t.Errorf("FAIL %s: %s", f.Check, f.Detail)
		}
		if f.Check == "" {
			t.Error("finding with empty check name")
		}
		if strings.HasPrefix(f.Check, "planner") {
			planner = true
		}
	}
	if !planner {
		t.Error("verify report has no planner bit-equality findings")
	}
}

func TestCLIErrors(t *testing.T) {
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{}); err == nil {
		t.Error("missing subcommand accepted")
	}
	if err := run([]string{"-verify", "-workloads", "NOPE"}); err == nil {
		t.Error("-verify with an empty workload selection accepted")
	}
	if err := run([]string{"-engine", "fpga", "table1"}); err == nil {
		t.Error("unknown -engine accepted")
	}
	// Strict oracle mode must refuse the line-size sweep (fig7) up
	// front: its configs change the line granularity the profile fixes.
	if err := run(tinyArgs("-engine", "oracle", "-workloads", "PLSA", "fig7")); err == nil {
		t.Error("-engine=oracle accepted a line-size sweep")
	}
}

func TestSelector(t *testing.T) {
	sel := selector("plsa, SHOT")
	if !sel("PLSA") || !sel("SHOT") || sel("MDS") {
		t.Error("selector filter wrong")
	}
	all := selector("")
	if !all("ANYTHING") {
		t.Error("empty selector must accept everything")
	}
}
