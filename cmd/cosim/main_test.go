package main

import (
	"os"
	"path/filepath"
	"testing"
)

// tinyArgs keeps CLI tests fast: 1/512-scale workloads.
func tinyArgs(rest ...string) []string {
	return append([]string{"-scale", "0.002", "-seed", "3"}, rest...)
}

func TestCLISubcommands(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end runs are slow")
	}
	cases := [][]string{
		tinyArgs("table1"),
		tinyArgs("table2"),
		tinyArgs("-j", "4", "-batch", "1024", "table2"),
		tinyArgs("-csv", "-workloads", "PLSA,SHOT", "fig4"),
		tinyArgs("-j", "2", "-batch", "256", "-csv", "-workloads", "PLSA,SHOT", "fig4"),
		tinyArgs("-workloads", "PLSA", "fig7"),
		tinyArgs("-workloads", "PLSA,MDS", "fig8"),
		tinyArgs("-workloads", "SHOT", "phases"),
		tinyArgs("-workloads", "PLSA,SHOT", "llcorg"),
		// Replay memoization across exhibits sharing one execution.
		tinyArgs("-replay", "-workloads", "PLSA", "fig4", "fig7"),
		tinyArgs("-replay=false", "-workloads", "SHOT", "fig4"),
	}
	for _, args := range cases {
		if err := run(args); err != nil {
			t.Errorf("cosim %v: %v", args, err)
		}
	}
}

func TestCLITraceDirSpill(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	dir := t.TempDir()
	if err := run(tinyArgs("-trace-dir", dir, "-workloads", "PLSA", "-csv", "fig4")); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.ctrace"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no spill files in -trace-dir (files %v, err %v)", files, err)
	}
}

func TestCLISVGOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	dir := t.TempDir()
	if err := run(tinyArgs("-workloads", "PLSA", "-svg", dir, "fig4")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig4.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Error("empty SVG written")
	}
}

func TestCLIErrors(t *testing.T) {
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{}); err == nil {
		t.Error("missing subcommand accepted")
	}
}

func TestSelector(t *testing.T) {
	sel := selector("plsa, SHOT")
	if !sel("PLSA") || !sel("SHOT") || sel("MDS") {
		t.Error("selector filter wrong")
	}
	all := selector("")
	if !all("ANYTHING") {
		t.Error("empty selector must accept everything")
	}
}
