// Command cosim regenerates every table and figure of the paper:
//
//	cosim table1          input parameters and datasets
//	cosim table2          single-threaded workload characteristics
//	cosim fig4            LLC MPKI vs cache size, 8-core SCMP
//	cosim fig5            LLC MPKI vs cache size, 16-core MCMP
//	cosim fig6            LLC MPKI vs cache size, 32-core LCMP
//	cosim fig7            LLC MPKI vs line size, LCMP with 32 MB LLC
//	cosim fig8            hardware-prefetching gains, serial & 16-thread
//	cosim all             everything above
//
// Beyond the paper's exhibits:
//
//	cosim proj128         Section 4.3's 128-core working-set projection,
//	                      measured instead of extrapolated
//	cosim dramcache       the conclusions' DRAM-LLC proposal, quantified
//	cosim phases          MPKI-over-time from the CB's 500us samples
//	cosim llcorg          shared vs private LLC organization, same capacity
//	cosim workingsets     stack-distance working sets on SCMP/MCMP/LCMP
//	cosim sweep           answer one JSON sweep spec (-spec file, or - for
//	                      stdin) and print the result JSON — the same
//	                      execution path and output bytes as cosimd, so a
//	                      served result diffs clean against a local run
//
// Flags:
//
//	-scale f    footprint scale relative to the paper (default 1/16)
//	-seed n     dataset seed (default 1)
//	-csv        emit CSV instead of tables/plots
//	-workloads  comma-separated subset (default: all eight)
//	-j n        run up to n independent workload executions concurrently
//	            (default GOMAXPROCS; 1 forces serial orchestration)
//	-batch n    deliver bus events to emulators in n-event batches on
//	            per-snooper worker goroutines (0 = synchronous delivery;
//	            results are bit-identical either way)
//	-replay     memoize each workload's captured bus-event stream and
//	            replay it across exhibits instead of re-executing
//	            (default true; results are bit-identical either way)
//	-trace-dir  spill captured streams to this directory in the compact
//	            v2 trace codec, so later invocations skip execution too
//	            (implies -replay)
//	-engine e   sweep execution engine: emulate (default; per-config
//	            cache emulation), auto (compile each sweep into one
//	            analytic stack-distance pass plus an emulation leg for
//	            configs the profile cannot express), or oracle (strict:
//	            error out if any config needs emulation); results are
//	            bit-identical across engines — run -verify to prove it
//	-sampling m approximate fast mode: off (default, exact) or fast
//	            (replay only representative trace intervals and
//	            extrapolate with confidence intervals; unlike -engine
//	            this CHANGES the numbers into estimates — every result
//	            carries its miss-count CI, and -verify grades the
//	            realized error against the exact oracle)
//	-metrics-addr addr
//	            serve live metrics over HTTP while exhibits run:
//	            /metrics (Prometheus text), /debug/vars (expvar JSON),
//	            /debug/pprof/* (profiling); also enables the per-sweep
//	            progress line on stderr and the run manifest
//	-manifest path
//	            append one JSON run manifest per exhibit run to this file
//	            (JSONL; defaults to cosim_manifest.jsonl when
//	            -metrics-addr is set)
//	-verify     run the verification suite instead of an exhibit:
//	            differential stack-distance oracles against the cache
//	            emulators, metamorphic invariants (LRU inclusion, bank
//	            neutrality, serial == batched == replay), telemetry
//	            conservation, and fault injection; exits non-zero if any
//	            check fails (honors -workloads, -scale, -seed)
//	-verify-out path
//	            with -verify, also write the report as JSON to this file
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"cmpmem/internal/cache"
	"cmpmem/internal/core"
	"cmpmem/internal/metrics"
	"cmpmem/internal/report"
	"cmpmem/internal/server"
	"cmpmem/internal/telemetry"
	"cmpmem/internal/tracestore"
	"cmpmem/internal/workloads"
	"cmpmem/internal/workloads/registry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cosim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cosim", flag.ContinueOnError)
	scale := fs.Float64("scale", workloads.DefaultScale, "footprint scale relative to the paper")
	seed := fs.Int64("seed", 1, "dataset seed")
	csv := fs.Bool("csv", false, "emit CSV instead of tables/plots")
	svgDir := fs.String("svg", "", "write figures as SVG files into this directory")
	subset := fs.String("workloads", "", "comma-separated workload subset")
	jobs := fs.Int("j", 0, "concurrent workload runs (0 = GOMAXPROCS, 1 = serial)")
	batch := fs.Int("batch", 0, "bus events per batch for parallel emulator delivery (0 = synchronous)")
	shards := fs.Int("shards", 0, "bank shards per emulator for intra-run parallel emulation (0 = auto: one per CPU up to the bank count; 1 = serial)")
	replay := fs.Bool("replay", true, "execute each workload once and replay its bus stream across exhibits")
	traceDir := fs.String("trace-dir", "", "spill captured bus streams to this directory (implies -replay)")
	engineName := fs.String("engine", core.EngineEmulate.String(), "sweep execution engine: emulate|auto|oracle")
	samplingName := fs.String("sampling", core.SamplingOff.String(), "accuracy tier: off (exact) or fast (sampled estimates with confidence intervals)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address during the run")
	manifestPath := fs.String("manifest", "", "append JSONL run manifests to this file (default cosim_manifest.jsonl with -metrics-addr)")
	verifyMode := fs.Bool("verify", false, "run the verification suite (oracles, invariants, fault injection) and exit")
	verifyOut := fs.String("verify-out", "", "with -verify, write the report as JSON to this file")
	specPath := fs.String("spec", "", "with the sweep subcommand, the JSON spec file (- reads stdin)")
	foldFlag := fs.Bool("fold", false, "with the trace subcommand, emit folded stacks instead of a waterfall")
	if err := fs.Parse(args); err != nil {
		return err
	}
	engine, err := core.ParseEngine(*engineName)
	if err != nil {
		return err
	}
	samplingMode, err := core.ParseSampling(*samplingName)
	if err != nil {
		return err
	}
	if *verifyMode {
		return runVerify(workloads.Params{Seed: *seed, Scale: *scale}, selector(*subset), *verifyOut, engine)
	}
	if fs.NArg() < 1 {
		fs.Usage()
		return fmt.Errorf("missing subcommand (table1|table2|fig4|fig5|fig6|fig7|fig8|all|sweep|trace)")
	}
	// The trace subcommand renders manifests instead of producing them,
	// so it bypasses telemetry setup (which would open the manifest file
	// for appending).
	if fs.Arg(0) == "trace" {
		in := *manifestPath
		if fs.NArg() > 1 {
			in = fs.Arg(1)
		}
		return traceCmd(in, *foldFlag)
	}
	p := workloads.Params{Seed: *seed, Scale: *scale}
	sel := selector(*subset)
	opts := []core.RunOption{core.WithParallelism(*jobs), core.WithEngine(engine)}
	if samplingMode != core.SamplingOff {
		opts = append(opts, core.WithSampling(samplingMode))
	}
	if *batch > 0 {
		opts = append(opts, core.WithBusBatch(*batch))
	}
	opts = append(opts, core.WithBankShards(*shards))
	// Telemetry must be enabled before the trace store is constructed so
	// the store registers its counters into the live default registry.
	telOpt, telClose, err := setupTelemetry(*metricsAddr, *manifestPath)
	if err != nil {
		return err
	}
	defer telClose()
	opts = append(opts, telOpt...)
	if *replay || *traceDir != "" {
		opts = append(opts, core.WithTraceReuse(tracestore.New(0, *traceDir)))
	}

	cmds := fs.Args()
	if len(cmds) == 1 && cmds[0] == "all" {
		cmds = []string{"table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig8"}
	}
	for _, cmd := range cmds {
		start := time.Now()
		var err error
		switch cmd {
		case "table1":
			err = table1(p, sel)
		case "table2":
			err = table2(p, sel, opts)
		case "fig4":
			err = figCache(p, sel, 8, *csv, *svgDir, opts)
		case "fig5":
			err = figCache(p, sel, 16, *csv, *svgDir, opts)
		case "fig6":
			err = figCache(p, sel, 32, *csv, *svgDir, opts)
		case "fig7":
			err = fig7(p, sel, *csv, *svgDir, opts)
		case "fig8":
			err = fig8(p, sel, opts)
		case "proj128":
			err = proj128(p, sel, opts)
		case "dramcache":
			err = dramcache(p, sel, opts)
		case "phases":
			err = phases(p, sel, *csv, opts)
		case "llcorg":
			err = llcorg(p, sel, opts)
		case "workingsets":
			err = workingsets(p, sel, opts)
		case "sweep":
			err = sweepCmd(*specPath, opts)
		default:
			err = fmt.Errorf("unknown subcommand %q", cmd)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", cmd, err)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n", cmd, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// runVerify executes the full verification suite (the `-verify` mode):
// oracle differentials, metamorphic invariants, conservation, and fault
// injection. The rendered report goes to stdout; an optional JSON copy
// goes to outPath (the CI artifact). A failed check is a non-zero exit.
// The engine selection reaches the planner gate: -engine=oracle checks
// the planner in strict mode over the oracle-answerable grid.
func runVerify(p workloads.Params, sel func(string) bool, outPath string, engine core.Engine) error {
	var names []string
	for _, n := range registry.Names() {
		if sel(n) {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return fmt.Errorf("-workloads selected nothing to verify")
	}
	start := time.Now()
	rep, err := core.VerifyAll(p, core.VerifyConfig{Workloads: names}, core.WithEngine(engine))
	if err != nil {
		return err
	}
	rep.Render(os.Stdout)
	fmt.Fprintf(os.Stderr, "[verify done in %v]\n", time.Since(start).Round(time.Millisecond))
	if outPath != "" {
		f, err := os.Create(outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", outPath)
	}
	if !rep.OK() {
		return fmt.Errorf("verification failed")
	}
	return nil
}

// boundMetricsAddr holds the address the metrics listener actually
// bound (resolving ":0"), for log lines and the in-package tests.
var boundMetricsAddr atomic.Value // string

// metricsDrainTimeout bounds how long a shutdown waits for in-flight
// /metrics scrapes before force-closing their connections.
const metricsDrainTimeout = 3 * time.Second

// setupTelemetry turns the -metrics-addr / -manifest flags into run
// options plus a cleanup function. Either flag alone enables the full
// substrate: counters, spans, manifests, and the stderr progress line.
func setupTelemetry(addr, manifestPath string) ([]core.RunOption, func(), error) {
	if addr == "" && manifestPath == "" {
		return nil, func() {}, nil
	}
	reg := telemetry.Enable()
	if manifestPath == "" {
		manifestPath = "cosim_manifest.jsonl"
	}
	man, err := telemetry.OpenManifestFile(manifestPath)
	if err != nil {
		return nil, nil, err
	}
	cleanup := func() { man.Close() }
	if addr != "" {
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			man.Close()
			return nil, nil, err
		}
		boundMetricsAddr.Store(ln.Addr().String())
		telemetry.PublishExpvar(reg)
		srv := &http.Server{Handler: telemetry.Handler(reg)}
		go srv.Serve(ln)
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics (manifests -> %s)\n",
			ln.Addr(), manifestPath)
		// A mid-sweep SIGINT/SIGTERM drains the metrics server (letting
		// an in-flight scrape finish) and flushes the manifest stream
		// instead of dying mid-write.
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
		go func() {
			if _, ok := <-sigc; !ok {
				return
			}
			fmt.Fprintln(os.Stderr, "telemetry: signal received, draining metrics server")
			telemetry.Drain(srv, metricsDrainTimeout)
			man.Close()
			os.Exit(130)
		}()
		cleanup = func() {
			signal.Stop(sigc)
			close(sigc)
			telemetry.Drain(srv, metricsDrainTimeout)
			man.Close()
		}
	}
	sink := telemetry.NewSink(reg, man, telemetry.NewProgress(os.Stderr))
	return []core.RunOption{core.WithTelemetry(sink)}, cleanup, nil
}

// sweepCmd answers one spec file through server.ExecuteSpec — the exact
// path cosimd's workers run — and prints the result JSON on stdout.
// The CLI's flag-derived options go in first; the spec's own fields
// (engine, shards, batch) are applied last and win, so the output is a
// pure function of the spec regardless of local flags.
func sweepCmd(specPath string, opts []core.RunOption) error {
	if specPath == "" {
		return fmt.Errorf("sweep: missing -spec file (use - for stdin)")
	}
	var in io.Reader = os.Stdin
	if specPath != "-" {
		f, err := os.Open(specPath)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	spec, err := server.DecodeSpec(in)
	if err != nil {
		return err
	}
	res, err := server.ExecuteSpec(spec, opts...)
	if err != nil {
		return err
	}
	body, err := json.Marshal(res)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(os.Stdout, "%s\n", body)
	return err
}

// traceCmd renders the span trees in a JSONL manifest stream (from
// -manifest, a file argument, or stdin with "-") as waterfalls, or as
// folded stacks with -fold. Each line may be a run manifest or a job
// status body; lines without a trace are skipped.
func traceCmd(path string, fold bool) error {
	var in io.Reader = os.Stdin
	if path != "" && path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	rendered := 0
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var m telemetry.Manifest
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		if m.Trace == nil {
			continue
		}
		if fold {
			if err := telemetry.WriteFolded(os.Stdout, m.Trace); err != nil {
				return err
			}
			rendered++
			continue
		}
		if rendered > 0 {
			fmt.Println()
		}
		fmt.Printf("# kind=%s workload=%s job=%s trace=%s\n", m.Kind, m.Workload, m.Job, m.TraceID)
		if err := telemetry.WriteWaterfall(os.Stdout, m.Trace); err != nil {
			return err
		}
		rendered++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if rendered == 0 {
		return fmt.Errorf("trace: no span trees found (is this a manifest stream?)")
	}
	return nil
}

// selector builds a name filter from the -workloads flag.
func selector(subset string) func(string) bool {
	if subset == "" {
		return func(string) bool { return true }
	}
	keep := map[string]bool{}
	for _, n := range strings.Split(subset, ",") {
		keep[strings.ToUpper(strings.TrimSpace(n))] = true
	}
	return func(name string) bool { return keep[strings.ToUpper(name)] }
}

func filterSeries(in []metrics.Series, sel func(string) bool) []metrics.Series {
	out := in[:0]
	for _, s := range in {
		if sel(s.Name) {
			out = append(out, s)
		}
	}
	return out
}

func table1(p workloads.Params, sel func(string) bool) error {
	t := &report.Table{
		Title:   "Table 1: Input parameters and datasets (scaled)",
		Headers: []string{"Workloads", "Parameters", "Size of Data Input"},
	}
	for _, row := range core.Table1(p) {
		if sel(row.Workload) {
			t.AddRow(row.Workload, row.Parameters, row.DataSize)
		}
	}
	return t.Render(os.Stdout)
}

func table2(p workloads.Params, sel func(string) bool, opts []core.RunOption) error {
	rows, err := core.Table2(p, opts...)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title: "Table 2: Workload characteristics (single-threaded, P4-class hierarchy)",
		Headers: []string{"Workloads", "IPC", "Inst Count (M)", "% Memory Inst",
			"% Memory Read", "DL1 Acc/1k", "DL1 Miss/1k", "DL2 Miss/1k"},
	}
	for _, r := range rows {
		if !sel(r.Workload) {
			continue
		}
		t.AddRow(r.Workload,
			fmt.Sprintf("%.2f", r.IPC),
			fmt.Sprintf("%.1f", float64(r.Instructions)/1e6),
			fmt.Sprintf("%.2f%%", r.PctMem),
			fmt.Sprintf("%.2f%%", r.PctMemRead),
			fmt.Sprintf("%.0f", r.DL1AccessPer1k),
			fmt.Sprintf("%.2f", r.DL1MissPer1k),
			fmt.Sprintf("%.2f", r.DL2MissPer1k))
	}
	return t.Render(os.Stdout)
}

func figCache(p workloads.Params, sel func(string) bool, cores int, csv bool, svgDir string, opts []core.RunOption) error {
	series, err := core.CacheSweep(p, cores, opts...)
	if err != nil {
		return err
	}
	series = filterSeries(series, sel)
	figNo := map[int]int{8: 4, 16: 5, 32: 6}[cores]
	title := fmt.Sprintf("Figure %d: LLC misses per 1000 instructions on %d cores", figNo, cores)
	if svgDir != "" {
		return writeSVG(svgDir, fmt.Sprintf("fig%d.svg", figNo), report.SVGOptions{
			Title: title, XLabel: "cache size (paper-equivalent MB)", YLabel: "MPKI", LogX: true,
		}, series)
	}
	if csv {
		return report.CSV(os.Stdout, "cache_MB_paper_equiv", series)
	}
	return report.Plot(os.Stdout, title, "cache size (paper-equivalent MB)", "MPKI", series, 16)
}

func fig7(p workloads.Params, sel func(string) bool, csv bool, svgDir string, opts []core.RunOption) error {
	series, err := core.LineSweep(p, opts...)
	if err != nil {
		return err
	}
	series = filterSeries(series, sel)
	title := "Figure 7: line size sensitivity on LCMP with 32MB LLC"
	if svgDir != "" {
		return writeSVG(svgDir, "fig7.svg", report.SVGOptions{
			Title: title, XLabel: "line size (bytes)", YLabel: "MPKI", LogX: true,
		}, series)
	}
	if csv {
		return report.CSV(os.Stdout, "line_bytes", series)
	}
	return report.Plot(os.Stdout, title, "line size (bytes)", "MPKI", series, 16)
}

// writeSVG renders one figure file and reports its path on stderr.
func writeSVG(dir, name string, opt report.SVGOptions, series []metrics.Series) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := report.SVG(f, opt, series); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func fig8(p workloads.Params, sel func(string) bool, opts []core.RunOption) error {
	rows, err := core.Fig8(p, opts...)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "Figure 8: performance gain of hardware prefetch",
		Headers: []string{"Workloads", "Serial gain", "16-thread gain"},
	}
	for _, r := range rows {
		if !sel(r.Workload) {
			continue
		}
		t.AddRow(r.Workload,
			fmt.Sprintf("%+.1f%%", r.SerialGainPct),
			fmt.Sprintf("%+.1f%%", r.ParallelGainPct))
	}
	return t.Render(os.Stdout)
}

func proj128(p workloads.Params, sel func(string) bool, opts []core.RunOption) error {
	rows, err := core.Projection128(p, 128, opts...)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title: "128-core projection: measured working sets (Section 4.3)",
		Headers: []string{"Workloads", "Working set (paper-equiv)",
			"Footprint (paper-equiv)", "Wants DRAM cache?"},
	}
	wants := 0
	for _, r := range rows {
		if !sel(r.Workload) {
			continue
		}
		verdict := "no (small LLC suffices)"
		if r.WantsDRAMCache {
			verdict = "YES (working set > 32MB)"
			wants++
		}
		t.AddRow(r.Workload,
			fmt.Sprintf("%.0fMB", r.WorkingSetPaperMB),
			fmt.Sprintf("%.0fMB", r.DistinctPaperMB),
			verdict)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("%d of %d workloads want a large DRAM cache at 128 cores (paper projected 5 of 8;\n"+
		"the paper's count excluded MDS, whose 300MB-class matrix exceeds even the DRAM-cache\n"+
		"capacities it considered — our criterion flags it too)\n",
		wants, len(rows))
	return nil
}

func dramcache(p workloads.Params, sel func(string) bool, opts []core.RunOption) error {
	rows, err := core.DRAMCacheStudy(p, 32, opts...)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title: "DRAM LLC study on LCMP (32 cores): cycle gain vs no LLC",
		Headers: []string{"Workloads", "8MB SRAM LLC", "256MB DRAM LLC",
			"DRAM LLC miss rate"},
	}
	for _, r := range rows {
		if !sel(r.Workload) {
			continue
		}
		t.AddRow(r.Workload,
			fmt.Sprintf("%+.1f%%", r.GainSRAMPct),
			fmt.Sprintf("%+.1f%%", r.GainDRAMPct),
			fmt.Sprintf("%.1f%%", 100*r.L3MissRateDRAM))
	}
	return t.Render(os.Stdout)
}

func workingsets(p workloads.Params, sel func(string) bool, opts []core.RunOption) error {
	t := &report.Table{
		Title: "Working sets by platform (stack distance, 0.5% miss-ratio knee, paper-equiv)",
		Headers: []string{"Workloads", "SCMP (8c)", "MCMP (16c)", "LCMP (32c)",
			"Category (Section 4.3)"},
	}
	cells := map[string][]string{}
	var names []string
	for _, cores := range []int{8, 16, 32} {
		rows, err := core.Projection128(p, cores, opts...)
		if err != nil {
			return err
		}
		for _, r := range rows {
			if !sel(r.Workload) {
				continue
			}
			if _, seen := cells[r.Workload]; !seen {
				names = append(names, r.Workload)
			}
			cells[r.Workload] = append(cells[r.Workload], fmt.Sprintf("%.0fMB", r.WorkingSetPaperMB))
		}
	}
	categories := map[string]string{
		"SNP": "shared", "SVM-RFE": "shared", "MDS": "shared", "PLSA": "shared",
		"FIMI": "mixed", "RSEARCH": "mixed",
		"SHOT": "private", "VIEWTYPE": "private",
	}
	for _, n := range names {
		row := append([]string{n}, cells[n]...)
		row = append(row, categories[n])
		t.AddRow(row...)
	}
	return t.Render(os.Stdout)
}

func llcorg(p workloads.Params, sel func(string) bool, opts []core.RunOption) error {
	rows, err := core.SharedVsPrivate(p, 8, 32, opts...)
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:   "LLC organization on SCMP (8 cores, 32MB paper-equiv total capacity)",
		Headers: []string{"Workloads", "Shared MPKI", "Private MPKI", "Private/Shared"},
	}
	for _, r := range rows {
		if !sel(r.Workload) {
			continue
		}
		ratio := "-"
		if r.SharedMPKI > 0 {
			ratio = fmt.Sprintf("%.2fx", r.PrivateMPKI/r.SharedMPKI)
		}
		t.AddRow(r.Workload,
			fmt.Sprintf("%.3f", r.SharedMPKI),
			fmt.Sprintf("%.3f", r.PrivateMPKI),
			ratio)
	}
	return t.Render(os.Stdout)
}

func phases(p workloads.Params, sel func(string) bool, csv bool, opts []core.RunOption) error {
	// One mid-size LLC; the CB samples give the miss-rate timeline.
	cfgs := core.CacheSweepConfigs(p.Scale)
	llc := cfgs[3] // the 32 MB paper-equivalent point
	var series []metrics.Series
	for _, name := range registry.Names() {
		if !sel(name) {
			continue
		}
		results, _, err := core.LLCSweep(name, p,
			core.PlatformConfig{Threads: 8, Seed: p.Seed},
			[]cache.Config{llc}, opts...)
		if err != nil {
			return err
		}
		s := metrics.Series{Name: name}
		var prev struct{ inst, misses uint64 }
		for i, smp := range results[0].Samples {
			dInst := smp.Instructions - prev.inst
			dMiss := smp.Misses - prev.misses
			if dInst > 0 {
				s.Add(float64(i), float64(dMiss)*1000/float64(dInst))
			}
			prev.inst, prev.misses = smp.Instructions, smp.Misses
		}
		series = append(series, s)
	}
	if csv {
		return report.CSV(os.Stdout, "sample_500us", series)
	}
	for _, s := range series {
		if err := report.Plot(os.Stdout,
			fmt.Sprintf("%s: LLC MPKI per 500us sample (32MB paper-equiv LLC, 8 cores)", s.Name),
			"sample", "interval MPKI", []metrics.Series{s}, 10); err != nil {
			return err
		}
	}
	return nil
}
